package farmer_test

import (
	"context"
	"net"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"farmer"
)

// serveLoopback runs farmer.Serve for a miner on a loopback listener.
func serveLoopback(t *testing.T, m *farmer.LocalMiner, cfg farmer.ServeConfig) (addr string, stop func()) {
	t.Helper()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- farmer.Serve(ctx, lis, m, cfg) }()
	return lis.Addr().String(), func() {
		cancel()
		if err := <-done; err != nil {
			t.Errorf("serve: %v", err)
		}
	}
}

// TestRemoteMinerFullSurface drives every Miner method through Dial against
// a served miner with a store, comparing against the server's local state.
func TestRemoteMinerFullSurface(t *testing.T) {
	dir := t.TempDir()
	tr, err := farmer.Generate(farmer.HP(3000))
	if err != nil {
		t.Fatal(err)
	}
	server, err := farmer.Open(farmer.ConfigFor(tr), farmer.WithShards(2),
		farmer.WithStore(filepath.Join(dir, "served.wal")))
	if err != nil {
		t.Fatal(err)
	}
	defer server.Close()
	addr, stop := serveLoopback(t, server, farmer.ServeConfig{})
	defer stop()

	ctx := context.Background()
	m, err := farmer.Dial(ctx, addr)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	if rtt, err := m.Ping(ctx); err != nil || rtt <= 0 {
		t.Fatalf("ping: rtt=%v err=%v", rtt, err)
	}
	for i := 0; i < 50; i++ {
		if err := m.Feed(ctx, &tr.Records[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.FeedBatch(ctx, tr.Records[50:]); err != nil {
		t.Fatal(err)
	}
	st, err := m.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if want, _ := server.Stats(ctx); st != want {
		t.Fatalf("remote stats %+v != local %+v", st, want)
	}
	for f := 0; f < tr.FileCount; f += 7 {
		want := server.CorrelatorList(farmer.FileID(f))
		got, err := m.CorrelatorList(ctx, farmer.FileID(f))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("file %d: remote list differs", f)
		}
		wantP, _ := server.Predict(ctx, farmer.FileID(f), 3)
		gotP, err := m.Predict(ctx, farmer.FileID(f), 3)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(wantP, gotP) {
			t.Fatalf("file %d: remote prediction differs", f)
		}
	}

	// Save persists remotely; Load on the already-fed server must be
	// refused (it would merge the model with itself and double-count Fed).
	if err := m.Save(ctx); err != nil {
		t.Fatal(err)
	}
	if err := m.Load(ctx); err == nil || !strings.Contains(err.Error(), "already ingested") {
		t.Fatalf("remote Load on a fed miner: %v", err)
	}
	if st2, err := m.Stats(ctx); err != nil || st2.Fed != uint64(len(tr.Records)) {
		t.Fatalf("fed counter disturbed by refused load: %+v err=%v", st2, err)
	}
}

// TestRemoteSaveWithoutStore: the remote error carries the server's
// ErrNoStore text and the connection survives.
func TestRemoteSaveWithoutStore(t *testing.T) {
	server, err := farmer.Open(farmer.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer server.Close()
	addr, stop := serveLoopback(t, server, farmer.ServeConfig{})
	defer stop()
	m, err := farmer.Dial(context.Background(), addr)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	err = m.Save(context.Background())
	if err == nil || !strings.Contains(err.Error(), farmer.ErrNoStore.Error()) {
		t.Fatalf("remote Save without store: %v", err)
	}
	if _, err := m.Ping(context.Background()); err != nil {
		t.Fatalf("connection dead after remote error: %v", err)
	}
}

// TestServeCheckpointTicker: a served miner with a checkpoint interval
// persists without any client asking.
func TestServeCheckpointTicker(t *testing.T) {
	dir := t.TempDir()
	wal := filepath.Join(dir, "ckpt.wal")
	tr, err := farmer.Generate(farmer.HP(2000))
	if err != nil {
		t.Fatal(err)
	}
	server, err := farmer.Open(farmer.ConfigFor(tr), farmer.WithShards(2), farmer.WithStore(wal))
	if err != nil {
		t.Fatal(err)
	}
	defer server.Close()
	addr, stop := serveLoopback(t, server, farmer.ServeConfig{Checkpoint: 20 * time.Millisecond})
	m, err := farmer.Dial(context.Background(), addr)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.FeedBatch(context.Background(), tr.Records); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		st, err := m.Stats(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if st.Fed == uint64(len(tr.Records)) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("server never ingested the batch")
		}
	}
	time.Sleep(60 * time.Millisecond) // at least one ticker checkpoint
	m.Close()
	stop()

	// The drain wrote a final checkpoint; a fresh miner loads it.
	m2, err := farmer.Open(farmer.ConfigFor(tr), farmer.WithStore(wal), farmer.WithLoad())
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	st, err := m2.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.Fed != uint64(len(tr.Records)) {
		t.Fatalf("checkpointed fed %d, want %d", st.Fed, len(tr.Records))
	}
}
