package farmer

// Catch-up cost, full snapshot vs delta replay, over a real loopback
// attach. Full ships the whole model (O(model) regardless of how little
// the follower missed); delta replays just the records the follower's
// checkpoint is behind by (O(missed)), which is the restart-lag case the
// resumable tail exists for.

import (
	"context"
	"net"
	"testing"
	"time"

	"farmer/internal/kvstore"
	"farmer/internal/rpc"
)

const benchCatchupRecords = 20000

func benchServeFollower(b *testing.B, m *LocalMiner) (addr string, stop func()) {
	b.Helper()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- Serve(ctx, lis, m, ServeConfig{Follower: true}) }()
	return lis.Addr().String(), func() {
		cancel()
		select {
		case <-done:
		case <-time.After(15 * time.Second):
			b.Fatal("follower serve did not drain")
		}
	}
}

// BenchmarkCatchupFull attaches a fresh, empty follower each iteration: the
// primary cuts and ships its entire state regardless of follower position.
func BenchmarkCatchupFull(b *testing.B) {
	tr, err := Generate(HP(benchCatchupRecords))
	if err != nil {
		b.Fatal(err)
	}
	cfg := ConfigFor(tr)
	ctx := context.Background()
	primary, err := Open(cfg, WithShards(2))
	if err != nil {
		b.Fatal(err)
	}
	defer primary.Close()
	if err := primary.FeedBatch(ctx, tr.Records); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		f, err := Open(cfg, WithShards(2))
		if err != nil {
			b.Fatal(err)
		}
		addr, stop := benchServeFollower(b, f)
		r := rpc.NewReplicator(primary.sm.Fed(), 0, nil)
		b.StartTimer()
		if err := r.Attach(ctx, addr, primary.catchupCut); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		if fed := f.sm.Fed(); fed != uint64(len(tr.Records)) {
			b.Fatalf("follower fed %d after full catch-up, want %d", fed, len(tr.Records))
		}
		r.Close()
		stop()
		f.Close()
		b.StartTimer()
	}
}

// BenchmarkCatchupDelta attaches a follower that restarted from a
// checkpoint tailN records behind the primary: the primary replays only
// those records from its resumable tail, O(missed) instead of O(model).
func BenchmarkCatchupDelta(b *testing.B) {
	const tailN = 512
	tr, err := Generate(HP(benchCatchupRecords))
	if err != nil {
		b.Fatal(err)
	}
	cfg := ConfigFor(tr)
	ctx := context.Background()
	base, tail := tr.Records[:len(tr.Records)-tailN], tr.Records[len(tr.Records)-tailN:]

	primary, err := Open(cfg, WithShards(2))
	if err != nil {
		b.Fatal(err)
	}
	defer primary.Close()
	if err := primary.FeedBatch(ctx, tr.Records); err != nil {
		b.Fatal(err)
	}

	// The followers all restart from the same checkpoint, cut at the base
	// boundary by a separate miner (deterministic mining makes its state
	// identical to the primary's own at that position).
	seeder, err := Open(cfg, WithShards(2))
	if err != nil {
		b.Fatal(err)
	}
	if err := seeder.FeedBatch(ctx, base); err != nil {
		b.Fatal(err)
	}
	seedStore, err := kvstore.Open("")
	if err != nil {
		b.Fatal(err)
	}
	defer seedStore.Close()
	if err := seeder.sm.SaveMerged(seedStore); err != nil {
		b.Fatal(err)
	}
	seeder.Close()

	fellBack := false
	cut := func() (rpc.CatchupCut, error) {
		fellBack = true
		return primary.catchupCut()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		f, err := Open(cfg, WithShards(2))
		if err != nil {
			b.Fatal(err)
		}
		if err := f.sm.LoadMerged(seedStore); err != nil {
			b.Fatal(err)
		}
		addr, stop := benchServeFollower(b, f)
		// Prime a replicator exactly as a restarted primary would stand:
		// position at the stream head with the last tailN records resumable.
		// The no-op mine skips local ingestion — the primary's model already
		// holds the whole stream.
		r := rpc.NewReplicator(uint64(len(base)), 0, nil)
		r.EnableDeltaCatchup(tailN*2, primary.catchupFingerprint)
		if err := r.Ingest(ctx, tail, func() error { return nil }); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if err := r.Attach(ctx, addr, cut); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		if fellBack {
			b.Fatal("delta catch-up fell back to a full snapshot")
		}
		if fed := f.sm.Fed(); fed != uint64(len(tr.Records)) {
			b.Fatalf("follower fed %d after delta catch-up, want %d", fed, len(tr.Records))
		}
		r.Close()
		stop()
		f.Close()
		b.StartTimer()
	}
}
