module farmer

go 1.24.0
