// Command farmerctl drives the FARMER reproduction from the command line:
// it regenerates the paper's figures and tables from the synthetic
// workloads and the storage-system simulator, and it talks to a live
// farmerd over the wire protocol.
//
// Usage:
//
//	farmerctl [flags] <experiment>...   regenerate evaluation artifacts
//	farmerctl serve [flags]             serve a miner on the wire (mini farmerd)
//	farmerctl ping  [flags]             round-trip a live farmerd and report latency
//	farmerctl tenants [flags]           list a multi-tenant farmerd's live tenants
//	farmerctl top   [flags]             live top-k correlated groups and ingest rates
//	farmerctl rebalance [flags]         move a daemon's lease and state to another farmerd
//
// Experiments: fig1 table2 fig3 fig5 fig6 fig7 fig8 table3 table4 ablation
// quality asynclat cluster all. fig3 accepts -trace (default runs all four
// traces).
//
// Every subcommand supports -h, reports errors on stderr prefixed with its
// name, and exits 0 on success, 1 on runtime failure, 2 on usage errors.
package main

import (
	"context"
	"crypto/tls"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"farmer"
	"farmer/internal/daemon"
	"farmer/internal/exp"
)

func main() {
	args := os.Args[1:]
	var code int
	switch {
	case len(args) > 0 && args[0] == "serve":
		code = runServe(args[1:])
	case len(args) > 0 && args[0] == "ping":
		code = runPing(args[1:])
	case len(args) > 0 && args[0] == "tenants":
		code = runTenants(args[1:])
	case len(args) > 0 && args[0] == "top":
		code = runTop(args[1:])
	case len(args) > 0 && args[0] == "rebalance":
		code = runRebalance(args[1:])
	default:
		code = runExperiments(args)
	}
	os.Exit(code)
}

// fail reports a runtime error in the subcommand's name and returns exit
// code 1; usage mistakes go through usageErr (code 2) instead.
func fail(cmd string, err error) int {
	fmt.Fprintf(os.Stderr, "farmerctl %s: %v\n", cmd, err)
	return 1
}

func usageErr(fs *flag.FlagSet, format string, args ...any) int {
	fmt.Fprintf(os.Stderr, "farmerctl %s: %s\n", fs.Name(), fmt.Sprintf(format, args...))
	fs.Usage()
	return 2
}

// newFlagSet builds a subcommand flag set with uniform -h/usage text.
func newFlagSet(name, oneLiner, argsHint string) *flag.FlagSet {
	fs := flag.NewFlagSet(name, flag.ExitOnError)
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "%s\n\nusage: farmerctl %s %s\n\nflags:\n", oneLiner, name, argsHint)
		fs.PrintDefaults()
	}
	return fs
}

// multiFlag collects a repeatable string flag (one -auth per token grant).
type multiFlag []string

func (m *multiFlag) String() string     { return strings.Join(*m, " ") }
func (m *multiFlag) Set(v string) error { *m = append(*m, v); return nil }

// dialFlags registers the client-side connection flags shared by ping and
// tenants; the returned builder turns them into farmer.Dial options.
func dialFlags(fs *flag.FlagSet) func() []farmer.DialOption {
	tenant := fs.String("tenant", "", "tenant id to address (empty = the default tenant)")
	token := fs.String("token", "", "bearer token for a farmerd running with -auth")
	insecure := fs.Bool("tls-insecure", false, "dial over TLS without verifying the server certificate")
	return func() []farmer.DialOption {
		var opts []farmer.DialOption
		if *tenant != "" {
			opts = append(opts, farmer.WithTenant(*tenant))
		}
		if *token != "" {
			opts = append(opts, farmer.WithToken(*token))
		}
		if *insecure {
			opts = append(opts, farmer.WithDialTLS(&tls.Config{InsecureSkipVerify: true}))
		}
		return opts
	}
}

// ------------------------------------------------------------------ serve

func runServe(args []string) int {
	fs := newFlagSet("serve", "serve a FARMER miner over the wire protocol (a minimal farmerd).", "[flags]")
	addr := fs.String("addr", "127.0.0.1:4727", "TCP listen address")
	storePath := fs.String("store", "", "write-ahead log path for persistent mined state")
	load := fs.Bool("load", false, "restore persisted state from -store at startup")
	shards := fs.Int("shards", 0, "miner shards (0/1 = single-lock)")
	partName := fs.String("partition", "stripe", "shard partitioner: stripe, hash or group")
	checkpoint := fs.Duration("checkpoint", 0, "periodic checkpoint interval (needs -store)")
	tlsCert := fs.String("tls-cert", "", "PEM certificate for serving over TLS (needs -tls-key)")
	tlsKey := fs.String("tls-key", "", "PEM private key for serving over TLS (needs -tls-cert)")
	var auth multiFlag
	fs.Var(&auth, "auth", "bearer-token grant token=tenant,tenant or token=* (repeatable; any -auth makes auth mandatory)")
	tenantsDir := fs.String("tenants-dir", "", "serve multiple tenants, each persisted under DIR/<tenant>/")
	fs.Parse(args)
	if fs.NArg() != 0 {
		return usageErr(fs, "unexpected arguments %q", fs.Args())
	}

	err := daemon.Run(context.Background(), daemon.Options{
		Addr:       *addr,
		StorePath:  *storePath,
		Load:       *load,
		Shards:     *shards,
		Partition:  *partName,
		Ckpt:       *checkpoint,
		TLSCert:    *tlsCert,
		TLSKey:     *tlsKey,
		Auth:       auth,
		TenantsDir: *tenantsDir,
		Logf: func(format string, a ...any) {
			fmt.Fprintf(os.Stderr, "farmerctl serve: "+format+"\n", a...)
		},
	})
	if errors.Is(err, daemon.ErrUsage) {
		return usageErr(fs, "%v", err)
	}
	if err != nil {
		return fail("serve", err)
	}
	return 0
}

// ------------------------------------------------------------------- ping

func runPing(args []string) int {
	fs := newFlagSet("ping", "round-trip a live farmerd and report wire latency.", "[flags]")
	addr := fs.String("addr", "127.0.0.1:4727", "farmerd TCP address")
	count := fs.Int("n", 5, "round trips to time")
	timeout := fs.Duration("timeout", 5*time.Second, "per-round-trip deadline")
	dial := dialFlags(fs)
	fs.Parse(args)
	if fs.NArg() != 0 {
		return usageErr(fs, "unexpected arguments %q", fs.Args())
	}
	if *count < 1 {
		return usageErr(fs, "-n %d must be >= 1", *count)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	m, err := farmer.Dial(ctx, *addr, dial()...)
	if err != nil {
		return fail("ping", err)
	}
	defer m.Close()

	var min, max, sum time.Duration
	for i := 0; i < *count; i++ {
		pctx, pcancel := context.WithTimeout(context.Background(), *timeout)
		rtt, err := m.Ping(pctx)
		pcancel()
		if err != nil {
			return fail("ping", fmt.Errorf("round trip %d: %w", i+1, err))
		}
		if i == 0 || rtt < min {
			min = rtt
		}
		if rtt > max {
			max = rtt
		}
		sum += rtt
	}
	sctx, scancel := context.WithTimeout(context.Background(), *timeout)
	st, err := m.Stats(sctx)
	scancel()
	if err != nil {
		return fail("ping", err)
	}
	fmt.Printf("%s: %d round trips, min %v avg %v max %v; miner fed=%d files=%d lists=%d\n",
		*addr, *count, min, sum/time.Duration(*count), max, st.Fed, st.TrackedFiles, st.Lists)
	return 0
}

// ---------------------------------------------------------------- tenants

func runTenants(args []string) int {
	fs := newFlagSet("tenants", "list a multi-tenant farmerd's live tenants and their stats.", "[flags]")
	addr := fs.String("addr", "127.0.0.1:4727", "farmerd TCP address")
	timeout := fs.Duration("timeout", 5*time.Second, "request deadline")
	dial := dialFlags(fs)
	fs.Parse(args)
	if fs.NArg() != 0 {
		return usageErr(fs, "unexpected arguments %q", fs.Args())
	}

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	m, err := farmer.Dial(ctx, *addr, dial()...)
	if err != nil {
		return fail("tenants", err)
	}
	defer m.Close()

	ts, err := m.Tenants(ctx)
	if err != nil {
		return fail("tenants", err)
	}
	// The observability frame supplies the columns the stats frame cannot:
	// wire-level feed accounting and checkpoint health. An older farmerd
	// that lacks MsgObs still lists — those columns just print "-".
	obsRows := map[string]farmer.TenantObs{}
	if rows, err := m.Obs(ctx, 0); err == nil {
		for _, r := range rows {
			obsRows[r.Name] = r
		}
	}
	fmt.Fprintf(topOut, "%-24s %12s %10s %10s %12s %12s %10s\n",
		"TENANT", "FED", "FILES", "LISTS", "MEMORY", "FEEDS", "CKPT-AGE")
	for _, t := range ts {
		name := t.Name
		if name == "" {
			name = "(default)"
		}
		fed := uint64(t.Stats.Fed)
		mem := uint64(t.Stats.MemoryBytes)
		feeds, ckptAge := "-", "-"
		if r, ok := obsRows[t.Name]; ok {
			fed, mem = r.Fed, r.MemoryBytes
			feeds = fmt.Sprintf("%d", r.FeedRecords)
			if r.CkptAgeMS != farmer.NeverCheckpointed {
				ckptAge = (time.Duration(r.CkptAgeMS) * time.Millisecond).Truncate(time.Second).String()
			}
		}
		fmt.Fprintf(topOut, "%-24s %12d %10d %10d %12d %12s %10s\n",
			name, fed, t.Stats.TrackedFiles, t.Stats.Lists, mem, feeds, ckptAge)
	}
	return 0
}

// -------------------------------------------------------------- rebalance

func runRebalance(args []string) int {
	fs := newFlagSet("rebalance", "move a daemon's write lease and mined state to another farmerd, live.", "[flags]")
	addr := fs.String("addr", "127.0.0.1:4727", "source farmerd TCP address (the current lease holder)")
	to := fs.String("to", "", "target farmerd TCP address, as reachable from the source (required)")
	timeout := fs.Duration("timeout", 2*time.Minute, "handoff deadline (shipping a large model takes a while)")
	dial := dialFlags(fs)
	fs.Parse(args)
	if fs.NArg() != 0 {
		return usageErr(fs, "unexpected arguments %q", fs.Args())
	}
	if *to == "" {
		return usageErr(fs, "-to is required")
	}

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	m, err := farmer.Dial(ctx, *addr, dial()...)
	if err != nil {
		return fail("rebalance", err)
	}
	defer m.Close()

	start := time.Now()
	if err := m.Handoff(ctx, *to); err != nil {
		// The handoff frame is sent exactly once; if the connection died
		// mid-call the transfer may or may not have landed. Point the
		// operator at the authoritative check instead of guessing.
		if errors.Is(err, farmer.ErrDisconnected) {
			return fail("rebalance", fmt.Errorf("%w — the handoff is in doubt: check `farmerctl top -addr %s` for the lease holder", err, *to))
		}
		return fail("rebalance", err)
	}
	fmt.Fprintf(topOut, "%s: handed off to %s in %v\n", *addr, *to, time.Since(start).Truncate(time.Millisecond))

	// Confirm from the target's mouth when it is reachable from here (the
	// -to address is resolved by the source, which may sit on another
	// network). Failure to confirm is not failure to hand off.
	tctx, tcancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer tcancel()
	if tm, err := farmer.Dial(tctx, *to, dial()...); err == nil {
		defer tm.Close()
		if info, err := tm.LeaseStatus(tctx); err == nil && info.Self {
			fmt.Fprintf(topOut, "%s: leading at epoch %d (ttl %v)\n",
				*to, info.Epoch, time.Duration(info.TTLMS)*time.Millisecond)
		}
	}
	return 0
}

// -------------------------------------------------------------------- top

// topOut is where top and tenants write their tables — a seam so tests can
// capture the rendered output.
var topOut io.Writer = os.Stdout

func runTop(args []string) int {
	fs := newFlagSet("top", "live top-k correlated groups and ingest rates from a farmerd.", "[flags]")
	addr := fs.String("addr", "127.0.0.1:4727", "farmerd TCP address")
	k := fs.Int("k", 10, "correlated groups to show per tenant")
	interval := fs.Duration("interval", 2*time.Second, "refresh interval")
	iters := fs.Int("n", 0, "refreshes before exiting (0 = until interrupted)")
	timeout := fs.Duration("timeout", 5*time.Second, "per-request deadline")
	dial := dialFlags(fs)
	fs.Parse(args)
	if fs.NArg() != 0 {
		return usageErr(fs, "unexpected arguments %q", fs.Args())
	}
	if *k < 1 {
		return usageErr(fs, "-k %d must be >= 1", *k)
	}
	if *iters < 0 {
		return usageErr(fs, "-n %d is negative", *iters)
	}

	dctx, cancel := context.WithTimeout(context.Background(), *timeout)
	m, err := farmer.Dial(dctx, *addr, dial()...)
	cancel()
	if err != nil {
		return fail("top", err)
	}
	defer m.Close()

	var prev map[string]farmer.TenantObs
	var prevAt time.Time
	for i := 0; *iters == 0 || i < *iters; i++ {
		if i > 0 {
			time.Sleep(*interval)
		}
		octx, ocancel := context.WithTimeout(context.Background(), *timeout)
		rows, err := m.Obs(octx, *k)
		ocancel()
		if err != nil {
			return fail("top", err)
		}
		now := time.Now()
		fmt.Fprint(topOut, renderTop(*addr, rows, prev, now.Sub(prevAt)))
		// Per-message wire latency rides its own frame; an older farmerd
		// that lacks it still renders the rest of the view.
		wctx, wcancel := context.WithTimeout(context.Background(), *timeout)
		ws, werr := m.WireStats(wctx)
		wcancel()
		if werr == nil {
			fmt.Fprint(topOut, renderWire(ws))
		}
		prev = make(map[string]farmer.TenantObs, len(rows))
		for _, r := range rows {
			prev[r.Name] = r
		}
		prevAt = now
	}
	return 0
}

// renderTop formats one refresh of the top view: a per-tenant status table
// (ingest position and rate, footprint, tap and checkpoint health,
// replication lag, prediction accuracy) followed by every tenant's top-k
// correlated groups by strength. prev is the previous sample (nil on the
// first refresh) and elapsed the time since it — together they turn the
// monotone counters into rates.
func renderTop(addr string, rows []farmer.TenantObs, prev map[string]farmer.TenantObs, elapsed time.Duration) string {
	var b strings.Builder
	fmt.Fprintf(&b, "farmerd %s — %s — %d tenant(s)\n", addr, time.Now().Format("15:04:05"), len(rows))
	fmt.Fprintf(&b, "%-16s %12s %10s %12s %8s %10s %8s %8s %8s\n",
		"TENANT", "FED", "RATE/S", "MEMORY", "TAP", "CKPT-AGE", "LAG", "ACC", "EPOCH")
	for _, r := range rows {
		name := r.Name
		if name == "" {
			name = "(default)"
		}
		rate := "-"
		if p, ok := prev[r.Name]; ok && elapsed > 0 && r.Fed >= p.Fed {
			rate = fmt.Sprintf("%.0f", float64(r.Fed-p.Fed)/elapsed.Seconds())
		}
		tap := fmt.Sprintf("%d", r.TapDepth)
		if r.TapDropped > 0 {
			tap += fmt.Sprintf("!%d", r.TapDropped)
		}
		ckptAge := "never"
		if r.CkptAgeMS != farmer.NeverCheckpointed {
			ckptAge = (time.Duration(r.CkptAgeMS) * time.Millisecond).Truncate(time.Second).String()
		}
		lag := "-"
		if r.Followers > 0 {
			lag = fmt.Sprintf("%d", r.ReplLagMax)
		}
		acc := "-"
		if r.PredPredicted > 0 {
			acc = fmt.Sprintf("%.1f%%", 100*float64(r.PredHits)/float64(r.PredPredicted))
		}
		epoch := "-"
		if r.LeaseEpoch > 0 {
			epoch = fmt.Sprintf("%d", r.LeaseEpoch)
		}
		fmt.Fprintf(&b, "%-16s %12d %10s %12d %8s %10s %8s %8s %8s\n",
			name, r.Fed, rate, r.MemoryBytes, tap, ckptAge, lag, acc, epoch)
	}
	b.WriteString(renderGroups(rows))
	return b.String()
}

// renderWire formats the daemon's per-message wire-latency accounting (the
// same numbers the farmer_rpc_latency_ns metrics histogram): request count
// and mean handler latency per message type since the daemon started.
func renderWire(stats []farmer.WireStat) string {
	var b strings.Builder
	wrote := false
	for _, s := range stats {
		if s.Count == 0 {
			continue
		}
		if !wrote {
			fmt.Fprintf(&b, "wire latency since start\n%-12s %12s %12s\n", "MSG", "COUNT", "AVG")
			wrote = true
		}
		fmt.Fprintf(&b, "%-12s %12d %12s\n", s.Type, s.Count, time.Duration(s.SumNS/s.Count))
	}
	return b.String()
}

// renderGroups formats every tenant's correlated groups, strongest first —
// the half of the top view the correctness test pins against a local
// model's TopGroups ranking.
func renderGroups(rows []farmer.TenantObs) string {
	var b strings.Builder
	for _, r := range rows {
		if len(r.Groups) == 0 {
			continue
		}
		name := r.Name
		if name == "" {
			name = "(default)"
		}
		fmt.Fprintf(&b, "top %d groups by strength — tenant %s\n", len(r.Groups), name)
		fmt.Fprintf(&b, "%4s %10s %10s %6s  %s\n", "#", "SEED", "STRENGTH", "SIZE", "FILES")
		for i, g := range r.Groups {
			files := make([]string, 0, min(len(g.Files), 8))
			for _, f := range g.Files[:min(len(g.Files), 8)] {
				files = append(files, fmt.Sprintf("%d", f))
			}
			suffix := ""
			if len(g.Files) > 8 {
				suffix = ",…"
			}
			fmt.Fprintf(&b, "%4d %10d %10.4f %6d  %s%s\n",
				i+1, g.Seed, g.Strength, len(g.Files), strings.Join(files, ","), suffix)
		}
	}
	return b.String()
}

// ------------------------------------------------------------ experiments

func runExperiments(args []string) int {
	fs := newFlagSet("", "farmerctl regenerates the FARMER paper's evaluation artifacts.", "[flags] <experiment>...")
	records := fs.Int("records", 30000, "records per generated trace")
	parallelism := fs.Int("parallel", 0, "max concurrent simulations (0 = GOMAXPROCS)")
	shards := fs.Int("shards", 0, "FARMER miner shards per MDS (0 = match MDS workers, 1 = single-lock)")
	servers := fs.Int("servers", 0, "metadata servers in the cluster experiment (0 = default 4)")
	asyncPrefetch := fs.Bool("async-prefetch", false, "run every simulated MDS with mining/prediction off the demand path")
	mineTime := fs.Duration("minetime", 0, "modeled per-record mining CPU cost inside each MDS (asynclat defaults to 1ms)")
	traceName := fs.String("trace", "", "trace for fig3/ablation (LLNL, INS, RES, HP; empty = all/HP)")
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), `farmerctl regenerates the FARMER paper's evaluation artifacts
and talks to a live farmerd.

usage: farmerctl [flags] <experiment>...
       farmerctl serve [flags]    (see farmerctl serve -h)
       farmerctl ping [flags]     (see farmerctl ping -h)

experiments:
  fig1     inter-file access probability per attribute (paper Fig. 1)
  table2   DPA vs IPA worked example (paper Table 2)
  fig3     hit ratio vs max_strength for p in {0,0.3,0.7,1} (paper Fig. 3)
  fig5     hit ratio per attribute combination (paper Fig. 5)
  fig6     response time vs max_strength on HP (paper Fig. 6)
  fig7     hit ratio: FARMER vs Nexus vs LRU (paper Fig. 7)
  fig8     response time: FARMER vs Nexus vs LRU (paper Fig. 8)
  table3   prefetching accuracy on HP (paper Table 3)
  table4   space overhead per trace (paper Table 4)
  ablation filtered vs unfiltered footprint (paper §3.3)
  quality  mining precision/recall/F1 vs ground truth (core claim)
  asynclat sync vs async prefetch pipeline demand latency (mining-heavy)
  cluster  multi-MDS cluster: global vs per-partition mining (-servers)
  all      everything above

flags:
`)
		fs.PrintDefaults()
	}
	fs.Parse(args)
	if fs.NArg() == 0 {
		return usageErr(fs, "no experiment given")
	}
	if *shards < 0 {
		return usageErr(fs, "-shards %d is negative", *shards)
	}
	if *mineTime < 0 {
		return usageErr(fs, "-minetime %v is negative", *mineTime)
	}
	if *servers < 0 {
		return usageErr(fs, "-servers %d is negative", *servers)
	}
	opt := exp.Options{
		Records:        *records,
		Parallelism:    *parallelism,
		Shards:         *shards,
		AsyncPrefetch:  *asyncPrefetch,
		MineTime:       *mineTime,
		ClusterServers: *servers,
	}

	cmds := fs.Args()
	if len(cmds) == 1 && cmds[0] == "all" {
		cmds = []string{"fig1", "table2", "fig3", "fig5", "fig6", "fig7", "fig8", "table3", "table4", "ablation", "quality", "asynclat", "cluster"}
	}

	var comparison []exp.PolicyRun
	needComparison := func() []exp.PolicyRun {
		if comparison == nil {
			comparison = exp.ComparePolicies(opt)
		}
		return comparison
	}

	for _, cmd := range cmds {
		switch strings.ToLower(cmd) {
		case "fig1":
			section("Figure 1 — inter-file access probability per attribute conditioning")
			fmt.Println(exp.Fig1(opt))
		case "table2":
			section("Table 2 — DPA vs IPA on the paper's worked example")
			fmt.Println(exp.Table2())
		case "fig3":
			traces := []string{"LLNL", "INS", "RES", "HP"}
			if *traceName != "" {
				traces = []string{*traceName}
			}
			for _, tr := range traces {
				section(fmt.Sprintf("Figure 3 — hit ratio vs max_strength per weight p (%s)", tr))
				fmt.Println(exp.Fig3(opt, tr))
			}
		case "fig5":
			section("Figure 5 — hit ratio per attribute combination")
			fmt.Println(exp.Fig5(opt))
		case "fig6":
			section("Figure 6 — avg response time vs max_strength (HP)")
			fmt.Println(exp.Fig6(opt))
		case "fig7":
			section("Figure 7 — cache hit ratio comparison")
			fmt.Println(exp.Fig7(needComparison()))
		case "fig8":
			section("Figure 8 — average response time comparison")
			fmt.Println(exp.Fig8(needComparison()))
		case "table3":
			section("Table 3 — prefetching accuracy (HP)")
			fmt.Println(exp.Table3(needComparison()))
		case "table4":
			section("Table 4 — FARMER space overhead (max_strength = 0.4)")
			fmt.Println(exp.Table4(opt))
		case "quality":
			section("Mining quality — precision/recall/F1 vs ground truth (k=4)")
			fmt.Println(exp.MiningQuality(opt))
		case "asynclat":
			section("Sync vs async pipeline — demand latency under mining-heavy load")
			fmt.Println(exp.AsyncLatency(exp.SyncVsAsync(opt)))
		case "cluster":
			section("Multi-MDS cluster — global vs per-partition mining")
			fmt.Println(exp.ClusterTable(exp.ClusterGlobalVsLocal(opt)))
		case "ablation":
			tr := *traceName
			if tr == "" {
				tr = "HP"
			}
			section(fmt.Sprintf("Ablation — threshold filtering footprint (%s)", tr))
			fmt.Println(exp.AblationFootprint(opt, tr))
		default:
			return usageErr(fs, "unknown experiment %q", cmd)
		}
	}
	return 0
}

func section(title string) {
	fmt.Printf("== %s ==\n", title)
}
