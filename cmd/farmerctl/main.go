// Command farmerctl regenerates the paper's figures and tables from the
// synthetic workloads and the storage-system simulator.
//
// Usage:
//
//	farmerctl [-records N] [-parallel N] [-shards N] [-servers N] <experiment>...
//
// Experiments: fig1 table2 fig3 fig5 fig6 fig7 fig8 table3 table4 ablation
// quality asynclat cluster all. fig3 accepts -trace (default runs all four
// traces).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"farmer/internal/exp"
)

func main() {
	records := flag.Int("records", 30000, "records per generated trace")
	parallelism := flag.Int("parallel", 0, "max concurrent simulations (0 = GOMAXPROCS)")
	shards := flag.Int("shards", 0, "FARMER miner shards per MDS (0 = match MDS workers, 1 = single-lock)")
	servers := flag.Int("servers", 0, "metadata servers in the cluster experiment (0 = default 4)")
	asyncPrefetch := flag.Bool("async-prefetch", false, "run every simulated MDS with mining/prediction off the demand path")
	mineTime := flag.Duration("minetime", 0, "modeled per-record mining CPU cost inside each MDS (asynclat defaults to 1ms)")
	traceName := flag.String("trace", "", "trace for fig3/ablation (LLNL, INS, RES, HP; empty = all/HP)")
	flag.Usage = usage
	flag.Parse()
	if flag.NArg() == 0 {
		usage()
		os.Exit(2)
	}
	if *shards < 0 {
		fmt.Fprintf(os.Stderr, "farmerctl: -shards %d is negative\n", *shards)
		os.Exit(2)
	}
	if *mineTime < 0 {
		fmt.Fprintf(os.Stderr, "farmerctl: -minetime %v is negative\n", *mineTime)
		os.Exit(2)
	}
	if *servers < 0 {
		fmt.Fprintf(os.Stderr, "farmerctl: -servers %d is negative\n", *servers)
		os.Exit(2)
	}
	opt := exp.Options{
		Records:        *records,
		Parallelism:    *parallelism,
		Shards:         *shards,
		AsyncPrefetch:  *asyncPrefetch,
		MineTime:       *mineTime,
		ClusterServers: *servers,
	}

	args := flag.Args()
	if len(args) == 1 && args[0] == "all" {
		args = []string{"fig1", "table2", "fig3", "fig5", "fig6", "fig7", "fig8", "table3", "table4", "ablation", "quality", "asynclat", "cluster"}
	}

	var comparison []exp.PolicyRun
	needComparison := func() []exp.PolicyRun {
		if comparison == nil {
			comparison = exp.ComparePolicies(opt)
		}
		return comparison
	}

	for _, cmd := range args {
		switch strings.ToLower(cmd) {
		case "fig1":
			section("Figure 1 — inter-file access probability per attribute conditioning")
			fmt.Println(exp.Fig1(opt))
		case "table2":
			section("Table 2 — DPA vs IPA on the paper's worked example")
			fmt.Println(exp.Table2())
		case "fig3":
			traces := []string{"LLNL", "INS", "RES", "HP"}
			if *traceName != "" {
				traces = []string{*traceName}
			}
			for _, tr := range traces {
				section(fmt.Sprintf("Figure 3 — hit ratio vs max_strength per weight p (%s)", tr))
				fmt.Println(exp.Fig3(opt, tr))
			}
		case "fig5":
			section("Figure 5 — hit ratio per attribute combination")
			fmt.Println(exp.Fig5(opt))
		case "fig6":
			section("Figure 6 — avg response time vs max_strength (HP)")
			fmt.Println(exp.Fig6(opt))
		case "fig7":
			section("Figure 7 — cache hit ratio comparison")
			fmt.Println(exp.Fig7(needComparison()))
		case "fig8":
			section("Figure 8 — average response time comparison")
			fmt.Println(exp.Fig8(needComparison()))
		case "table3":
			section("Table 3 — prefetching accuracy (HP)")
			fmt.Println(exp.Table3(needComparison()))
		case "table4":
			section("Table 4 — FARMER space overhead (max_strength = 0.4)")
			fmt.Println(exp.Table4(opt))
		case "quality":
			section("Mining quality — precision/recall/F1 vs ground truth (k=4)")
			fmt.Println(exp.MiningQuality(opt))
		case "asynclat":
			section("Sync vs async pipeline — demand latency under mining-heavy load")
			fmt.Println(exp.AsyncLatency(exp.SyncVsAsync(opt)))
		case "cluster":
			section("Multi-MDS cluster — global vs per-partition mining")
			fmt.Println(exp.ClusterTable(exp.ClusterGlobalVsLocal(opt)))
		case "ablation":
			tr := *traceName
			if tr == "" {
				tr = "HP"
			}
			section(fmt.Sprintf("Ablation — threshold filtering footprint (%s)", tr))
			fmt.Println(exp.AblationFootprint(opt, tr))
		default:
			fmt.Fprintf(os.Stderr, "farmerctl: unknown experiment %q\n", cmd)
			os.Exit(2)
		}
	}
}

func section(title string) {
	fmt.Printf("== %s ==\n", title)
}

func usage() {
	fmt.Fprintf(os.Stderr, `farmerctl regenerates the FARMER paper's evaluation artifacts.

usage: farmerctl [flags] <experiment>...

experiments:
  fig1     inter-file access probability per attribute (paper Fig. 1)
  table2   DPA vs IPA worked example (paper Table 2)
  fig3     hit ratio vs max_strength for p in {0,0.3,0.7,1} (paper Fig. 3)
  fig5     hit ratio per attribute combination (paper Fig. 5)
  fig6     response time vs max_strength on HP (paper Fig. 6)
  fig7     hit ratio: FARMER vs Nexus vs LRU (paper Fig. 7)
  fig8     response time: FARMER vs Nexus vs LRU (paper Fig. 8)
  table3   prefetching accuracy on HP (paper Table 3)
  table4   space overhead per trace (paper Table 4)
  ablation filtered vs unfiltered footprint (paper §3.3)
  quality  mining precision/recall/F1 vs ground truth (core claim)
  asynclat sync vs async prefetch pipeline demand latency (mining-heavy)
  cluster  multi-MDS cluster: global vs per-partition mining (-servers)
  all      everything above

flags:
`)
	flag.PrintDefaults()
}
