package main

import (
	"os"
	"syscall"
	"testing"
	"time"
)

func TestRunExperimentsExitCodes(t *testing.T) {
	if c := runExperiments(nil); c != 2 {
		t.Fatalf("no experiments: exit %d, want 2", c)
	}
	if c := runExperiments([]string{"nonsense"}); c != 2 {
		t.Fatalf("unknown experiment: exit %d, want 2", c)
	}
	if c := runExperiments([]string{"-shards", "-1", "fig1"}); c != 2 {
		t.Fatalf("negative shards: exit %d, want 2", c)
	}
	if c := runExperiments([]string{"-minetime", "-1s", "asynclat"}); c != 2 {
		t.Fatalf("negative minetime: exit %d, want 2", c)
	}
	if c := runExperiments([]string{"-servers", "-3", "cluster"}); c != 2 {
		t.Fatalf("negative servers: exit %d, want 2", c)
	}
	// table2 is the paper's worked example — cheap and deterministic.
	if c := runExperiments([]string{"table2"}); c != 0 {
		t.Fatalf("table2: exit %d, want 0", c)
	}
}

func TestPingExitCodes(t *testing.T) {
	if c := runPing([]string{"stray"}); c != 2 {
		t.Fatalf("stray argument: exit %d, want 2", c)
	}
	if c := runPing([]string{"-n", "0"}); c != 2 {
		t.Fatalf("zero count: exit %d, want 2", c)
	}
	if c := runPing([]string{"-addr", "127.0.0.1:1", "-timeout", "500ms"}); c != 1 {
		t.Fatalf("unreachable server: exit %d, want 1", c)
	}
}

func TestServeExitCodes(t *testing.T) {
	if c := runServe([]string{"stray"}); c != 2 {
		t.Fatalf("stray argument: exit %d, want 2", c)
	}
	if c := runServe([]string{"-partition", "bogus"}); c != 2 {
		t.Fatalf("bad partitioner: exit %d, want 2", c)
	}
	if c := runServe([]string{"-shards", "-1"}); c != 2 {
		t.Fatalf("negative shards: exit %d, want 2", c)
	}
	if c := runServe([]string{"-load"}); c != 2 {
		t.Fatalf("-load without -store: exit %d, want 2", c)
	}
	if c := runServe([]string{"-checkpoint", "1s"}); c != 2 {
		t.Fatalf("-checkpoint without -store: exit %d, want 2", c)
	}
}

func TestTenantsExitCodes(t *testing.T) {
	if c := runTenants([]string{"stray"}); c != 2 {
		t.Fatalf("stray argument: exit %d, want 2", c)
	}
	if c := runTenants([]string{"-addr", "127.0.0.1:1", "-timeout", "500ms"}); c != 1 {
		t.Fatalf("unreachable server: exit %d, want 1", c)
	}
}

// TestServePingTenantsAuthLoopback wires the multi-tenant edge end to end
// inside one binary: a serve with -tenants-dir and two -auth grants, pings
// under good and bad tokens/tenants, a tenants listing, then a clean
// SIGTERM drain.
func TestServePingTenantsAuthLoopback(t *testing.T) {
	const addr = "127.0.0.1:14736"
	code := make(chan int, 1)
	go func() {
		code <- runServe([]string{"-addr", addr, "-tenants-dir", t.TempDir(),
			"-auth", "root=*", "-auth", "alpha-token=alpha"})
	}()

	ping := func(extra ...string) int {
		return runPing(append([]string{"-addr", addr, "-n", "1", "-timeout", "2s"}, extra...))
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		if c := ping("-token", "root"); c == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("serve never answered an authorized ping")
		}
		time.Sleep(20 * time.Millisecond)
	}

	if c := ping(); c != 1 {
		t.Fatalf("unauthenticated ping: exit %d, want 1", c)
	}
	if c := ping("-token", "wrong"); c != 1 {
		t.Fatalf("unknown token: exit %d, want 1", c)
	}
	if c := ping("-token", "alpha-token", "-tenant", "beta"); c != 1 {
		t.Fatalf("out-of-grant tenant: exit %d, want 1", c)
	}
	if c := ping("-token", "alpha-token", "-tenant", "alpha"); c != 0 {
		t.Fatalf("granted tenant ping: exit %d, want 0", c)
	}
	if c := runTenants([]string{"-addr", addr, "-token", "root", "-timeout", "2s"}); c != 0 {
		t.Fatalf("tenants listing: exit %d, want 0", c)
	}

	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case c := <-code:
		if c != 0 {
			t.Fatalf("serve exited %d", c)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("serve did not drain on SIGTERM")
	}
}

// TestServePingLoopback wires the two subcommands together: serve in one
// goroutine, ping it, SIGTERM the serve, assert both exit zero.
func TestServePingLoopback(t *testing.T) {
	const addr = "127.0.0.1:14734"
	code := make(chan int, 1)
	go func() { code <- runServe([]string{"-addr", addr, "-shards", "2"}) }()

	deadline := time.Now().Add(10 * time.Second)
	for {
		if c := runPing([]string{"-addr", addr, "-n", "2", "-timeout", "2s"}); c == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("serve never answered ping")
		}
		time.Sleep(20 * time.Millisecond)
	}
	// runServe registered NotifyContext before blocking, so the signal is
	// intercepted rather than killing the test binary.
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case c := <-code:
		if c != 0 {
			t.Fatalf("serve exited %d", c)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("serve did not drain on SIGTERM")
	}
}
