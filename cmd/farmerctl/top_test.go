package main

import (
	"bytes"
	"context"
	"fmt"
	"net"
	"os"
	"strings"
	"testing"
	"time"

	"farmer"
)

func TestTopExitCodes(t *testing.T) {
	if c := runTop([]string{"stray"}); c != 2 {
		t.Fatalf("stray argument: exit %d, want 2", c)
	}
	if c := runTop([]string{"-k", "0"}); c != 2 {
		t.Fatalf("zero k: exit %d, want 2", c)
	}
	if c := runTop([]string{"-n", "-1"}); c != 2 {
		t.Fatalf("negative n: exit %d, want 2", c)
	}
	if c := runTop([]string{"-addr", "127.0.0.1:1", "-timeout", "500ms", "-n", "1"}); c != 1 {
		t.Fatalf("unreachable server: exit %d, want 1", c)
	}
}

// TestTopMatchesModelRanking replays a trace into a served miner over the
// wire, renders `farmerctl top -n 1`, and proves the printed top-k group
// ranking — seed, strength, and size, in order — identical to the served
// model's own TopGroups snapshot. The wire frame and the rendering must
// not reorder, drop, or re-round what the model mined.
func TestTopMatchesModelRanking(t *testing.T) {
	tr, err := farmer.Generate(farmer.HP(8000))
	if err != nil {
		t.Fatal(err)
	}
	cfg := farmer.ConfigFor(tr)
	cfg.Shards = 2
	miner, err := farmer.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer miner.Close()

	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- farmer.Serve(ctx, lis, miner, farmer.ServeConfig{}) }()

	addr := lis.Addr().String()
	cctx, ccancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer ccancel()
	client, err := farmer.Dial(cctx, addr)
	if err != nil {
		t.Fatal(err)
	}
	if err := client.FeedBatch(cctx, tr.Records); err != nil {
		t.Fatal(err)
	}
	client.Close()

	const k = 7
	var buf bytes.Buffer
	topOut = &buf
	defer func() { topOut = os.Stdout }()
	if c := runTop([]string{"-addr", addr, "-n", "1", "-k", fmt.Sprint(k)}); c != 0 {
		t.Fatalf("top exit %d, want 0\n%s", c, buf.String())
	}

	want := miner.Sharded().TopGroups(k)
	if len(want) == 0 {
		t.Fatal("model mined no groups — the trace is too small for the test to mean anything")
	}

	// Parse the rendered group table back out: rank, seed, strength, size.
	var got [][4]string
	inGroups := false
	for _, line := range strings.Split(buf.String(), "\n") {
		if strings.HasPrefix(line, "top ") && strings.Contains(line, "groups by strength") {
			inGroups = true
			continue
		}
		if !inGroups {
			continue
		}
		f := strings.Fields(line)
		if len(f) < 5 || f[0] == "#" {
			continue
		}
		got = append(got, [4]string{f[0], f[1], f[2], f[3]})
	}
	if len(got) != len(want) {
		t.Fatalf("top printed %d groups, model snapshot has %d\n%s", len(got), len(want), buf.String())
	}
	for i, g := range want {
		exp := [4]string{
			fmt.Sprint(i + 1),
			fmt.Sprint(g.Seed),
			fmt.Sprintf("%.4f", g.Strength),
			fmt.Sprint(len(g.Files)),
		}
		if got[i] != exp {
			t.Fatalf("group %d: top printed %v, model snapshot %v\n%s", i, got[i], exp, buf.String())
		}
	}

	cancel()
	if err := <-done; err != nil {
		t.Fatalf("serve: %v", err)
	}
}

// TestRenderTopBranches drives the status-row formatting through every
// conditional column: rates from a previous sample, tap drops, checkpoint
// age, follower lag, prediction accuracy, and the 8-file group elision.
func TestRenderTopBranches(t *testing.T) {
	rows := []farmer.TenantObs{
		{
			Name: "", Fed: 1500, MemoryBytes: 4096, TapDepth: 2, TapDropped: 3,
			CkptAgeMS: 61_000, Followers: 2, ReplLagMax: 17,
			PredPredicted: 10, PredHits: 4,
			Groups: []farmer.ObsGroup{{
				Seed: 5, Strength: 1.5,
				Files: []farmer.FileID{1, 2, 3, 4, 5, 6, 7, 8, 9, 10},
			}},
		},
		{Name: "idle", CkptAgeMS: farmer.NeverCheckpointed},
	}
	prev := map[string]farmer.TenantObs{"": {Fed: 500}}
	out := renderTop("x:1", rows, prev, 2*time.Second)
	for _, want := range []string{
		"(default)",
		" 500 ",             // (1500-500)/2s
		"2!3",               // tap depth + drops
		"1m1s",              // checkpoint age
		" 17 ",              // lag with followers
		"40.0%",             // 4/10 hits
		"never",             // the idle tenant never checkpointed
		"1,2,3,4,5,6,7,8,…", // 10-file group elided at 8
		"top 1 groups by strength — tenant (default)",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
	// No previous sample and no followers render placeholder dashes.
	if !strings.Contains(renderTop("x:1", rows[1:], nil, 0), " - ") {
		t.Fatal("placeholder dashes missing without prev/followers")
	}
}
