package main

import (
	"context"
	"os"
	"path/filepath"
	"syscall"
	"testing"
	"time"

	"farmer"
)

func TestPartitionerByName(t *testing.T) {
	for _, name := range []string{"stripe", "hash", "group"} {
		p, err := farmer.PartitionerByName(name)
		if err != nil || p == nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
	if _, err := farmer.PartitionerByName("bogus"); err == nil {
		t.Fatal("bogus partitioner accepted")
	}
}

// TestRunServeAndDrain runs the daemon in-process: serve, feed over the
// wire, SIGTERM, assert the clean-exit code and the final checkpoint.
func TestRunServeAndDrain(t *testing.T) {
	dir := t.TempDir()
	wal := filepath.Join(dir, "farmerd.wal")
	const addr = "127.0.0.1:14733"
	os.Args = []string{"farmerd",
		"-addr", addr,
		"-store", wal,
		"-load", "-repair",
		"-shards", "2",
		"-partition", "hash",
		"-checkpoint", "50ms",
		"-prefetch-k", "2",
	}
	code := make(chan int, 1)
	go func() { code <- run() }()

	// Wait for the listener, then drive it like any client.
	var m *farmer.RemoteMiner
	deadline := time.Now().Add(10 * time.Second)
	for {
		var err error
		m, err = farmer.Dial(context.Background(), addr)
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("farmerd never came up: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	tr, err := farmer.Generate(farmer.HP(1500))
	if err != nil {
		t.Fatal(err)
	}
	if err := m.FeedBatch(context.Background(), tr.Records); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Ping(context.Background()); err != nil {
		t.Fatal(err)
	}
	m.Close()

	// The daemon registered its signal handler before serving, so SIGTERM
	// reaches NotifyContext, not the test binary's default action.
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case c := <-code:
		if c != 0 {
			t.Fatalf("farmerd exited %d", c)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("farmerd did not drain on SIGTERM")
	}

	// Drain checkpointed: the mined state reloads.
	m2, err := farmer.Open(farmer.ConfigFor(tr), farmer.WithStore(wal), farmer.WithLoad())
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	st, err := m2.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.Fed != uint64(len(tr.Records)) {
		t.Fatalf("checkpoint fed %d, want %d", st.Fed, len(tr.Records))
	}
}

func TestRunUsageErrors(t *testing.T) {
	os.Args = []string{"farmerd", "stray-arg"}
	if c := run(); c != 2 {
		t.Fatalf("stray argument: exit %d, want 2", c)
	}
	os.Args = []string{"farmerd", "-partition", "bogus"}
	if c := run(); c != 2 {
		t.Fatalf("bad partitioner: exit %d, want 2", c)
	}
	os.Args = []string{"farmerd", "-shards", "-1"}
	if c := run(); c != 2 {
		t.Fatalf("negative shards: exit %d, want 2", c)
	}
	for _, flag := range []string{"-load", "-repair"} {
		os.Args = []string{"farmerd", flag}
		if c := run(); c != 2 {
			t.Fatalf("%s without -store: exit %d, want 2", flag, c)
		}
	}
	os.Args = []string{"farmerd", "-checkpoint", "1s"}
	if c := run(); c != 2 {
		t.Fatalf("-checkpoint without -store: exit %d, want 2", c)
	}
	os.Args = []string{"farmerd", "-follow", "-replicate-to", "127.0.0.1:1"}
	if c := run(); c != 2 {
		t.Fatalf("-follow with -replicate-to: exit %d, want 2", c)
	}
	// An unreachable follower is a runtime failure (exit 1), not usage.
	os.Args = []string{"farmerd", "-addr", "127.0.0.1:0", "-replicate-to", "127.0.0.1:1"}
	if c := run(); c != 1 {
		t.Fatalf("unreachable follower: exit %d, want 1", c)
	}
}
