// Command farmerd serves a FARMER miner on the wire: a daemon speaking the
// internal/rpc protocol that farmer.Dial clients, rpc.NetOwner dispatchers
// and `farmerctl ping` talk to. It is the process boundary the paper's
// in-MDS prototype never had — the miner runs here, the metadata service
// (or a replay harness, or another farmerd's dispatcher) runs elsewhere.
//
// Usage:
//
//	farmerd [-addr host:port] [-metrics-addr host:port]
//	        [-store wal] [-load] [-repair]
//	        [-shards N] [-partition stripe|hash|group]
//	        [-checkpoint D] [-prefetch-k K]
//	        [-weight P] [-strength S]
//	        [-replicate-to addr,addr...] [-follow] [-catchup-tail N]
//	        [-replica-token T] [-lease-ttl D] [-lease-peers addr,addr...]
//	        [-tls-cert cert.pem -tls-key key.pem]
//	        [-auth token=tenant,tenant]... [-tenants-dir DIR]
//	        [-max-tenants N] [-tenant-idle D]
//	        [-tenant-max-shards N] [-tenant-max-mailbox N] [-tenant-max-memory B]
//
// With -store, mined state is checkpointed every -checkpoint interval and
// once more on shutdown; -load restores the previous state at start, and
// -repair truncates a corrupt write-ahead log at its last intact record
// first (otherwise a corrupt log refuses to open). With -prefetch-k, the
// async prefetch pipeline is attached and its accounting is printed on
// exit. SIGINT/SIGTERM drain gracefully: in-flight requests finish,
// responses flush, the final checkpoint is written.
//
// With -replicate-to, this farmerd is a replication PRIMARY: each listed
// address must be a farmerd started with -follow, which is bootstrapped
// with a catch-up checkpoint at startup and then receives every acked
// record before the client's ack — so no acked record dies with the
// primary. A follower restarted with -load resumes from its own
// checkpoint, and the primary catches it up by replaying just the records
// it missed when its position is within the last -catchup-tail records,
// shipping a full cut otherwise. With -follow, this farmerd is a FOLLOWER:
// it serves reads, refuses writes until promoted, and accepts promotion
// (from a failing-over multi-address farmer.Dial client) only after its
// primary's link is gone. See DESIGN.md "Replication & failover".
//
// With -lease-ttl, writability is governed by an epoch-versioned LEASE
// instead of manual promotion: the primary renews its lease over the
// replication stream (renewal needs acks from a majority of configured
// followers), and a follower whose lease view expires elects itself at the
// next epoch once a majority of -lease-peers grant their vote. Writes
// against a deposed or lapsed daemon fail with a typed stale-epoch error
// that multi-address clients use to find the live lease holder, and
// `farmerctl rebalance` moves the lease (and the mined state) to another
// daemon without dropping a single acked record. See DESIGN.md "Leases,
// epochs & live handoff".
//
// With -tenants-dir, the daemon is MULTI-TENANT: frames carrying a tenant
// id lazily open one miner per tenant, persisted under DIR/<tenant>/, with
// per-tenant budgets (-max-tenants, -tenant-idle eviction,
// -tenant-max-shards/-tenant-max-mailbox/-tenant-max-memory). -tls-cert
// and -tls-key serve the protocol over TLS; each repeatable -auth grant
// maps a static bearer token to the tenants it may address ("*" = all),
// and any -auth makes authentication mandatory. -replica-token is the
// token this primary presents when its followers run with -auth.
//
// With -metrics-addr, the daemon additionally serves live metrics over
// plain HTTP on that address: GET /metrics is Prometheus text exposition
// (ingest rate, per-shard mailbox depth and drops, per-follower replication
// lag, checkpoint age, prediction accuracy), GET /metrics.json the same
// samples as JSON. The same numbers travel the wire protocol as the MsgObs
// frame behind `farmerctl top`.
//
// Exit codes: 0 clean shutdown, 1 runtime failure, 2 usage error.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"farmer"
	"farmer/internal/daemon"
)

func main() {
	os.Exit(run())
}

// splitAddrs parses the -replicate-to list, dropping empty segments so a
// trailing comma is not a usage error.
func splitAddrs(s string) []string {
	var out []string
	for _, a := range strings.Split(s, ",") {
		if a = strings.TrimSpace(a); a != "" {
			out = append(out, a)
		}
	}
	return out
}

// multiFlag collects a repeatable string flag (-auth can be given once per
// token grant, since tenant lists already use commas).
type multiFlag []string

func (m *multiFlag) String() string     { return strings.Join(*m, " ") }
func (m *multiFlag) Set(v string) error { *m = append(*m, v); return nil }

func run() int {
	fs := flag.NewFlagSet("farmerd", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:4727", "TCP listen address")
	metricsAddr := fs.String("metrics-addr", "", "HTTP listen address for the /metrics endpoint (empty = no endpoint)")
	storePath := fs.String("store", "", "write-ahead log path for persistent mined state (empty = volatile)")
	load := fs.Bool("load", false, "restore persisted state from -store at startup")
	repair := fs.Bool("repair", false, "truncate a corrupt -store log at its last intact record before opening")
	shards := fs.Int("shards", 0, "miner shards (0/1 = paper-exact single-lock path)")
	readStripes := fs.Int("read-stripes", 0, "striped Correlator-List read snapshot with this many lock stripes (0 = off)")
	partName := fs.String("partition", "stripe", "shard partitioner: stripe, hash or group")
	checkpoint := fs.Duration("checkpoint", 0, "periodic checkpoint interval (0 = only on shutdown; needs -store)")
	prefetchK := fs.Int("prefetch-k", 0, "attach the async prefetch pipeline with this prefetch degree (0 = off)")
	weight := fs.Float64("weight", farmer.DefaultConfig().Weight, "correlation weight p")
	strength := fs.Float64("strength", farmer.DefaultConfig().MaxStrength, "max_strength validity threshold")
	drain := fs.Duration("drain", 10*time.Second, "graceful shutdown drain timeout")
	replicateTo := fs.String("replicate-to", "", "comma-separated follower addresses to replicate to (serve as primary)")
	follow := fs.Bool("follow", false, "serve as a replication follower: reads only until promoted")
	catchupTail := fs.Int("catchup-tail", 0, "records a primary retains for delta catch-up of restarted followers (0 = default 65536, negative = full cuts only)")
	leaseTTL := fs.Duration("lease-ttl", 0, "epoch-versioned write lease TTL: writes require a live lease, expiry triggers follower self-election (0 = leases off)")
	leasePeers := fs.String("lease-peers", "", "comma-separated peer farmerd addresses that vote in lease elections (needs -lease-ttl)")
	replicaToken := fs.String("replica-token", "", "bearer token presented to -replicate-to followers running with -auth")
	tlsCert := fs.String("tls-cert", "", "PEM certificate for serving over TLS (needs -tls-key)")
	tlsKey := fs.String("tls-key", "", "PEM private key for serving over TLS (needs -tls-cert)")
	var auth multiFlag
	fs.Var(&auth, "auth", "bearer-token grant token=tenant,tenant or token=* (repeatable; any -auth makes auth mandatory)")
	tenantsDir := fs.String("tenants-dir", "", "serve multiple tenants, each persisted under DIR/<tenant>/ (empty = single-tenant)")
	maxTenants := fs.Int("max-tenants", 0, "cap on concurrently live named tenants (0 = unlimited; needs -tenants-dir)")
	tenantIdle := fs.Duration("tenant-idle", 0, "evict a tenant idle this long, checkpointing it first (0 = never; needs -tenants-dir)")
	tenantMaxShards := fs.Int("tenant-max-shards", 0, "per-tenant shard budget (0 = unlimited; needs -tenants-dir)")
	tenantMaxMailbox := fs.Int("tenant-max-mailbox", 0, "per-tenant prefetch mailbox depth budget (0 = unlimited; needs -tenants-dir)")
	tenantMaxMemory := fs.Int64("tenant-max-memory", 0, "per-tenant model footprint budget in bytes (0 = unlimited; needs -tenants-dir)")
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "farmerd serves a FARMER miner over the wire protocol.\n\nusage: farmerd [flags]\n\nflags:\n")
		fs.PrintDefaults()
	}
	fs.Parse(os.Args[1:])
	if fs.NArg() != 0 {
		fmt.Fprintf(os.Stderr, "farmerd: unexpected arguments %q\n", fs.Args())
		fs.Usage()
		return 2
	}

	logger := log.New(os.Stderr, "farmerd: ", log.LstdFlags)
	err := daemon.Run(context.Background(), daemon.Options{
		Addr:        *addr,
		MetricsAddr: *metricsAddr,
		StorePath:   *storePath,
		Load:        *load,
		Repair:      *repair,
		Shards:      *shards,
		ReadStripes: *readStripes,
		Partition:   *partName,
		Ckpt:        *checkpoint,
		PrefetchK:   *prefetchK,
		Weight:      weight,
		Strength:    strength,
		Drain:       *drain,
		ReplicateTo: splitAddrs(*replicateTo),
		Follow:      *follow,
		CatchupTail: *catchupTail,
		LeaseTTL:    *leaseTTL,
		LeasePeers:  splitAddrs(*leasePeers),

		TLSCert:      *tlsCert,
		TLSKey:       *tlsKey,
		Auth:         auth,
		ReplicaToken: *replicaToken,

		TenantsDir:       *tenantsDir,
		MaxTenants:       *maxTenants,
		TenantIdle:       *tenantIdle,
		TenantMaxShards:  *tenantMaxShards,
		TenantMaxMailbox: *tenantMaxMailbox,
		TenantMaxMemory:  *tenantMaxMemory,

		Logf: logger.Printf,
	})
	if errors.Is(err, daemon.ErrUsage) {
		fmt.Fprintf(os.Stderr, "farmerd: %v\n", err)
		fs.Usage()
		return 2
	}
	if err != nil {
		logger.Printf("%v", err)
		return 1
	}
	return 0
}
