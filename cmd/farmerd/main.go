// Command farmerd serves a FARMER miner on the wire: a daemon speaking the
// internal/rpc protocol that farmer.Dial clients, rpc.NetOwner dispatchers
// and `farmerctl ping` talk to. It is the process boundary the paper's
// in-MDS prototype never had — the miner runs here, the metadata service
// (or a replay harness, or another farmerd's dispatcher) runs elsewhere.
//
// Usage:
//
//	farmerd [-addr host:port] [-store wal] [-load] [-repair]
//	        [-shards N] [-partition stripe|hash|group]
//	        [-checkpoint D] [-prefetch-k K]
//	        [-weight P] [-strength S]
//	        [-replicate-to addr,addr...] [-follow]
//
// With -store, mined state is checkpointed every -checkpoint interval and
// once more on shutdown; -load restores the previous state at start, and
// -repair truncates a corrupt write-ahead log at its last intact record
// first (otherwise a corrupt log refuses to open). With -prefetch-k, the
// async prefetch pipeline is attached and its accounting is printed on
// exit. SIGINT/SIGTERM drain gracefully: in-flight requests finish,
// responses flush, the final checkpoint is written.
//
// With -replicate-to, this farmerd is a replication PRIMARY: each listed
// address must be a farmerd started with -follow, which is bootstrapped
// with a catch-up checkpoint at startup and then receives every acked
// record before the client's ack — so no acked record dies with the
// primary. With -follow, this farmerd is a FOLLOWER: it serves reads,
// refuses writes until promoted, and accepts promotion (from a failing-over
// multi-address farmer.Dial client) only after its primary's link is gone.
// See DESIGN.md "Replication & failover".
//
// Exit codes: 0 clean shutdown, 1 runtime failure, 2 usage error.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"farmer"
	"farmer/internal/daemon"
)

func main() {
	os.Exit(run())
}

// splitAddrs parses the -replicate-to list, dropping empty segments so a
// trailing comma is not a usage error.
func splitAddrs(s string) []string {
	var out []string
	for _, a := range strings.Split(s, ",") {
		if a = strings.TrimSpace(a); a != "" {
			out = append(out, a)
		}
	}
	return out
}

func run() int {
	fs := flag.NewFlagSet("farmerd", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:4727", "TCP listen address")
	storePath := fs.String("store", "", "write-ahead log path for persistent mined state (empty = volatile)")
	load := fs.Bool("load", false, "restore persisted state from -store at startup")
	repair := fs.Bool("repair", false, "truncate a corrupt -store log at its last intact record before opening")
	shards := fs.Int("shards", 0, "miner shards (0/1 = paper-exact single-lock path)")
	partName := fs.String("partition", "stripe", "shard partitioner: stripe, hash or group")
	checkpoint := fs.Duration("checkpoint", 0, "periodic checkpoint interval (0 = only on shutdown; needs -store)")
	prefetchK := fs.Int("prefetch-k", 0, "attach the async prefetch pipeline with this prefetch degree (0 = off)")
	weight := fs.Float64("weight", farmer.DefaultConfig().Weight, "correlation weight p")
	strength := fs.Float64("strength", farmer.DefaultConfig().MaxStrength, "max_strength validity threshold")
	drain := fs.Duration("drain", 10*time.Second, "graceful shutdown drain timeout")
	replicateTo := fs.String("replicate-to", "", "comma-separated follower addresses to replicate to (serve as primary)")
	follow := fs.Bool("follow", false, "serve as a replication follower: reads only until promoted")
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "farmerd serves a FARMER miner over the wire protocol.\n\nusage: farmerd [flags]\n\nflags:\n")
		fs.PrintDefaults()
	}
	fs.Parse(os.Args[1:])
	if fs.NArg() != 0 {
		fmt.Fprintf(os.Stderr, "farmerd: unexpected arguments %q\n", fs.Args())
		fs.Usage()
		return 2
	}

	logger := log.New(os.Stderr, "farmerd: ", log.LstdFlags)
	err := daemon.Run(context.Background(), daemon.Options{
		Addr:        *addr,
		StorePath:   *storePath,
		Load:        *load,
		Repair:      *repair,
		Shards:      *shards,
		Partition:   *partName,
		Ckpt:        *checkpoint,
		PrefetchK:   *prefetchK,
		Weight:      weight,
		Strength:    strength,
		Drain:       *drain,
		ReplicateTo: splitAddrs(*replicateTo),
		Follow:      *follow,
		Logf:        logger.Printf,
	})
	if errors.Is(err, daemon.ErrUsage) {
		fmt.Fprintf(os.Stderr, "farmerd: %v\n", err)
		fs.Usage()
		return 2
	}
	if err != nil {
		logger.Printf("%v", err)
		return 1
	}
	return 0
}
