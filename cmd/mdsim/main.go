// Command mdsim replays a trace (from a file or generated on the fly)
// through the simulated HUSt metadata server under a chosen prefetch policy
// and reports hit ratio, prefetching accuracy and response time.
//
// Usage:
//
//	mdsim -profile HP -records 50000 -policy farmer
//	mdsim -in trace.bin -policy nexus -cache 512
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"farmer/internal/core"
	"farmer/internal/hust"
	"farmer/internal/predictors"
	"farmer/internal/sim"
	"farmer/internal/trace"
	"farmer/internal/tracegen"
	"farmer/internal/vsm"
)

func main() {
	profile := flag.String("profile", "HP", "generate this workload profile (ignored with -in)")
	records := flag.Int("records", 50000, "records to generate (ignored with -in)")
	in := flag.String("in", "", "read a trace file instead of generating (text or binary)")
	policy := flag.String("policy", "farmer", "prefetch policy: farmer, nexus, lru, ls, pbs, puls, probgraph")
	cacheCap := flag.Int("cache", 256, "metadata cache capacity (entries)")
	prefetchK := flag.Int("k", 4, "prefetch degree")
	weight := flag.Float64("p", 0.7, "FARMER weight p")
	maxStrength := flag.Float64("strength", 0.4, "FARMER max_strength threshold")
	shards := flag.Int("shards", 0, "FARMER miner shards (0 = match MDS workers, 1 = single-lock)")
	asyncPrefetch := flag.Bool("async-prefetch", false, "mine and predict off the demand path (shard-worker station)")
	mineTime := flag.Duration("minetime", 0, "modeled per-record mining CPU cost (sync: on the demand path)")
	pfQueue := flag.Int("pfqueue", 0, "bound on queued prefetches, drop-oldest beyond (0 = unbounded)")
	flag.Parse()
	if *shards < 0 {
		fmt.Fprintf(os.Stderr, "mdsim: -shards %d is negative\n", *shards)
		os.Exit(2)
	}

	t, err := load(*in, *profile, *records)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mdsim: %v\n", err)
		os.Exit(1)
	}

	cfg := hust.DefaultReplayConfig()
	cfg.MDS.CacheCapacity = *cacheCap
	cfg.MDS.PrefetchK = *prefetchK
	cfg.MDS.AsyncPrefetch = *asyncPrefetch
	cfg.MDS.MineTime = *mineTime
	cfg.MDS.PrefetchQueue = *pfQueue
	if err := cfg.MDS.Validate(); err != nil {
		fmt.Fprintf(os.Stderr, "mdsim: %v\n", err)
		os.Exit(2)
	}

	factory := func(e *sim.Engine) (*hust.MDS, error) {
		if strings.EqualFold(*policy, "farmer") {
			mc := core.DefaultConfig()
			mc.Weight = *weight
			mc.MaxStrength = *maxStrength
			mc.Mask = vsm.DefaultMask(t.HasPaths)
			mc.Shards = *shards
			return hust.NewFARMERMDS(e, cfg.MDS, nil, mc)
		}
		p, err := buildPredictor(*policy)
		if err != nil {
			return nil, err
		}
		return hust.NewMDS(e, cfg.MDS, nil, p)
	}
	start := time.Now()
	res, err := hust.Replay(t, cfg, factory)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mdsim: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("trace=%s policy=%s records=%d wall=%v\n", res.Trace, res.Policy, res.Stats.Demand, time.Since(start).Round(time.Millisecond))
	fmt.Printf("  hit ratio          %.4f\n", res.Stats.Cache.HitRatio())
	fmt.Printf("  prefetch accuracy  %.4f (%d issued)\n", res.Stats.Cache.PrefetchAccuracy(), res.Stats.PrefetchIssued)
	fmt.Printf("  avg response       %v\n", res.Stats.AvgResponse)
	fmt.Printf("  p95 response       %v\n", res.Stats.P95Response)
	fmt.Printf("  avg demand wait    %v\n", res.Stats.AvgDemandWait)
	fmt.Printf("  MDS utilisation    %.3f\n", res.Stats.Utilization)
	fmt.Printf("  store reads        %d\n", res.Stats.StoreReads)
	fmt.Printf("  prefetch dropped   %d (of %d issued)\n", res.Stats.PrefetchDropped, res.Stats.PrefetchIssued)
	if *asyncPrefetch {
		fmt.Printf("  mining avg wait    %v (off the demand path)\n", res.Stats.MineAvgWait)
		fmt.Printf("  miner utilisation  %.3f (excluded from MDS utilisation)\n", res.Stats.MineUtilization)
	}
	fmt.Printf("  client avg (RTT)   %v\n", res.ClientAvg)
}

func load(in, profile string, records int) (*trace.Trace, error) {
	if in == "" {
		p, ok := tracegen.ByName(profile, records)
		if !ok {
			return nil, fmt.Errorf("unknown profile %q", profile)
		}
		return p.Generate()
	}
	f, err := os.Open(in)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if strings.HasSuffix(in, ".bin") {
		return trace.ReadBinary(f)
	}
	return trace.ReadText(f)
}

func buildPredictor(name string) (predictors.Predictor, error) {
	switch strings.ToLower(name) {
	case "nexus":
		return predictors.NewNexus(predictors.DefaultNexusConfig()), nil
	case "lru", "none":
		return predictors.NewNone(), nil
	case "ls":
		return predictors.NewLastSuccessor(), nil
	case "pbs":
		return predictors.NewPBS(), nil
	case "puls":
		return predictors.NewPULS(), nil
	case "probgraph":
		return predictors.NewProbabilityGraph(2, 0.1), nil
	default:
		return nil, fmt.Errorf("unknown policy %q", name)
	}
}
