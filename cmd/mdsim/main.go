// Command mdsim replays a trace (from a file or generated on the fly)
// through the simulated HUSt metadata server under a chosen prefetch policy
// and reports hit ratio, prefetching accuracy and response time.
//
// Usage:
//
//	mdsim -profile HP -records 50000 -policy farmer
//	mdsim -in trace.bin -policy nexus -cache 512
//	mdsim -servers 4 -global -partition hash -minetime 1ms
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"farmer/internal/core"
	"farmer/internal/hust"
	"farmer/internal/predictors"
	"farmer/internal/sim"
	"farmer/internal/trace"
	"farmer/internal/tracegen"
	"farmer/internal/vsm"
)

func main() {
	profile := flag.String("profile", "HP", "generate this workload profile (ignored with -in)")
	records := flag.Int("records", 50000, "records to generate (ignored with -in)")
	in := flag.String("in", "", "read a trace file instead of generating (text or binary)")
	policy := flag.String("policy", "farmer", "prefetch policy: farmer, nexus, lru, ls, pbs, puls, probgraph")
	cacheCap := flag.Int("cache", 256, "metadata cache capacity (entries)")
	prefetchK := flag.Int("k", 4, "prefetch degree")
	weight := flag.Float64("p", 0.7, "FARMER weight p")
	maxStrength := flag.Float64("strength", 0.4, "FARMER max_strength threshold")
	shards := flag.Int("shards", 0, "FARMER miner shards (0 = match MDS workers, 1 = single-lock)")
	asyncPrefetch := flag.Bool("async-prefetch", false, "mine and predict off the demand path (shard-worker station)")
	mineTime := flag.Duration("minetime", 0, "modeled per-record mining CPU cost (sync: on the demand path)")
	pfQueue := flag.Int("pfqueue", 0, "bound on queued prefetches, drop-oldest beyond (0 = unbounded)")
	servers := flag.Int("servers", 1, "metadata servers (>1 replays a multi-MDS cluster)")
	global := flag.Bool("global", false, "mine the global model across the cluster (requires -servers > 1, farmer policy)")
	partName := flag.String("partition", "hash", "cluster partitioner: hash or group")
	netDelay := flag.Duration("netdelay", hust.DefaultGlobalConfig().NetDelay, "one-way inter-MDS event latency (global mining)")
	mailbox := flag.Int("mailbox", 0, "per-server event mailbox bound, drop-oldest beyond (0 = default)")
	flag.Parse()
	if *shards < 0 {
		fmt.Fprintf(os.Stderr, "mdsim: -shards %d is negative\n", *shards)
		os.Exit(2)
	}
	if *servers < 1 {
		fmt.Fprintf(os.Stderr, "mdsim: -servers %d must be >= 1\n", *servers)
		os.Exit(2)
	}

	t, err := load(*in, *profile, *records)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mdsim: %v\n", err)
		os.Exit(1)
	}

	cfg := hust.DefaultReplayConfig()
	cfg.MDS.CacheCapacity = *cacheCap
	cfg.MDS.PrefetchK = *prefetchK
	cfg.MDS.AsyncPrefetch = *asyncPrefetch
	cfg.MDS.MineTime = *mineTime
	cfg.MDS.PrefetchQueue = *pfQueue
	if err := cfg.MDS.Validate(); err != nil {
		fmt.Fprintf(os.Stderr, "mdsim: %v\n", err)
		os.Exit(2)
	}

	mc := core.DefaultConfig()
	mc.Weight = *weight
	mc.MaxStrength = *maxStrength
	mc.Mask = vsm.DefaultMask(t.HasPaths)
	mc.Shards = *shards

	if *servers > 1 {
		runCluster(t, cfg, mc, *policy, *servers, *global, *partName, *netDelay, *mailbox)
		return
	}
	if *global {
		fmt.Fprintln(os.Stderr, "mdsim: -global requires -servers > 1")
		os.Exit(2)
	}

	factory := func(e *sim.Engine) (*hust.MDS, error) {
		if strings.EqualFold(*policy, "farmer") {
			return hust.NewFARMERMDS(e, cfg.MDS, nil, mc)
		}
		p, err := buildPredictor(*policy)
		if err != nil {
			return nil, err
		}
		return hust.NewMDS(e, cfg.MDS, nil, p)
	}
	start := time.Now()
	res, err := hust.Replay(t, cfg, factory)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mdsim: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("trace=%s policy=%s records=%d wall=%v\n", res.Trace, res.Policy, res.Stats.Demand, time.Since(start).Round(time.Millisecond))
	fmt.Printf("  hit ratio          %.4f\n", res.Stats.Cache.HitRatio())
	fmt.Printf("  prefetch accuracy  %.4f (%d issued)\n", res.Stats.Cache.PrefetchAccuracy(), res.Stats.PrefetchIssued)
	fmt.Printf("  avg response       %v\n", res.Stats.AvgResponse)
	fmt.Printf("  p95 response       %v\n", res.Stats.P95Response)
	fmt.Printf("  avg demand wait    %v\n", res.Stats.AvgDemandWait)
	fmt.Printf("  MDS utilisation    %.3f\n", res.Stats.Utilization)
	fmt.Printf("  store reads        %d\n", res.Stats.StoreReads)
	fmt.Printf("  prefetch dropped   %d (of %d issued)\n", res.Stats.PrefetchDropped, res.Stats.PrefetchIssued)
	if *asyncPrefetch {
		fmt.Printf("  mining avg wait    %v (off the demand path)\n", res.Stats.MineAvgWait)
		fmt.Printf("  miner utilisation  %.3f (excluded from MDS utilisation)\n", res.Stats.MineUtilization)
	}
	fmt.Printf("  client avg (RTT)   %v\n", res.ClientAvg)
}

// runCluster replays the trace through a multi-MDS cluster — per-partition
// miners by default, the cluster-level global miner with -global — and
// prints the aggregate stats.
func runCluster(t *trace.Trace, cfg hust.ReplayConfig, mc core.Config,
	policy string, servers int, global bool, partName string, netDelay time.Duration, mailbox int) {
	var part hust.Partitioner
	switch strings.ToLower(partName) {
	case "hash":
		part = hust.HashPartitioner
	case "group":
		part = hust.GroupPartitioner
	default:
		fmt.Fprintf(os.Stderr, "mdsim: unknown partitioner %q (hash or group)\n", partName)
		os.Exit(2)
	}

	start := time.Now()
	var cs hust.ClusterStats
	var err error
	switch {
	case global:
		if !strings.EqualFold(policy, "farmer") {
			err = fmt.Errorf("global mining requires -policy farmer, got %q", policy)
			break
		}
		gcfg := hust.DefaultGlobalConfig()
		gcfg.NetDelay = netDelay
		gcfg.MailboxCap = mailbox
		cs, _, err = hust.ReplayGlobalCluster(t, cfg, servers, part, mc, gcfg)
	default:
		cs, err = hust.ReplayCluster(t, cfg, servers, part, func(i int, e *sim.Engine) (*hust.MDS, error) {
			if strings.EqualFold(policy, "farmer") {
				return hust.NewFARMERMDS(e, cfg.MDS, nil, mc)
			}
			p, perr := buildPredictor(policy)
			if perr != nil {
				return nil, perr
			}
			return hust.NewMDS(e, cfg.MDS, nil, p)
		})
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "mdsim: %v\n", err)
		os.Exit(1)
	}

	mode := "per-partition"
	if global {
		mode = "global"
	}
	fmt.Printf("trace=%s servers=%d partition=%s mining=%s records=%d wall=%v\n",
		t.Name, servers, strings.ToLower(partName), mode, cs.Demand, time.Since(start).Round(time.Millisecond))
	fmt.Printf("  hit ratio          %.4f\n", cs.HitRatio)
	fmt.Printf("  avg response       %v\n", cs.AvgResponse)
	fmt.Printf("  p95 response       %v\n", cs.P95Response)
	fmt.Printf("  avg demand wait    %v\n", cs.AvgDemandWait)
	fmt.Printf("  load imbalance     %.3f\n", cs.Imbalance)
	if g := cs.Global; g != nil {
		fmt.Printf("  mined records      %d (cluster dispatcher)\n", g.Fed)
		fmt.Printf("  mining events      %d (%.1f%% cross-MDS)\n", g.Events, 100*g.CrossRatio)
		fmt.Printf("  cross prefetches   %d (routed to the successor's server)\n", g.CrossPrefetches)
		fmt.Printf("  mailbox dropped    %d\n", g.MailboxDropped)
	}
}

func load(in, profile string, records int) (*trace.Trace, error) {
	if in == "" {
		p, ok := tracegen.ByName(profile, records)
		if !ok {
			return nil, fmt.Errorf("unknown profile %q", profile)
		}
		return p.Generate()
	}
	f, err := os.Open(in)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if strings.HasSuffix(in, ".bin") {
		return trace.ReadBinary(f)
	}
	return trace.ReadText(f)
}

func buildPredictor(name string) (predictors.Predictor, error) {
	switch strings.ToLower(name) {
	case "nexus":
		return predictors.NewNexus(predictors.DefaultNexusConfig()), nil
	case "lru", "none":
		return predictors.NewNone(), nil
	case "ls":
		return predictors.NewLastSuccessor(), nil
	case "pbs":
		return predictors.NewPBS(), nil
	case "puls":
		return predictors.NewPULS(), nil
	case "probgraph":
		return predictors.NewProbabilityGraph(2, 0.1), nil
	default:
		return nil, fmt.Errorf("unknown policy %q", name)
	}
}
