// Command tracegen emits a synthetic file-system trace in the repository's
// text or binary format.
//
// Usage:
//
//	tracegen -profile HP -records 100000 [-format text|binary] [-o file] [-stats]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"farmer/internal/trace"
	"farmer/internal/tracegen"
)

func main() {
	profile := flag.String("profile", "HP", "workload profile: LLNL, INS, RES or HP")
	records := flag.Int("records", 100000, "number of records to generate")
	format := flag.String("format", "text", "output format: text or binary")
	out := flag.String("o", "", "output file (default stdout)")
	seed := flag.Uint64("seed", 0, "override the profile's seed (0 keeps the default)")
	stats := flag.Bool("stats", false, "print a summary to stderr")
	flag.Parse()

	p, ok := tracegen.ByName(*profile, *records)
	if !ok {
		fmt.Fprintf(os.Stderr, "tracegen: unknown profile %q (want LLNL, INS, RES or HP)\n", *profile)
		os.Exit(2)
	}
	if *seed != 0 {
		p.Seed = *seed
	}
	t, err := p.Generate()
	if err != nil {
		fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
		os.Exit(1)
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
			os.Exit(1)
		}
		defer func() {
			if err := f.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "tracegen: closing output: %v\n", err)
				os.Exit(1)
			}
		}()
		w = f
	}

	switch *format {
	case "text":
		err = trace.WriteText(w, t)
	case "binary":
		err = trace.WriteBinary(w, t)
	default:
		fmt.Fprintf(os.Stderr, "tracegen: unknown format %q\n", *format)
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
		os.Exit(1)
	}
	if *stats {
		fmt.Fprintln(os.Stderr, trace.Summarize(t))
	}
}
