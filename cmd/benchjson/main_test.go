package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func TestParseResult(t *testing.T) {
	r, ok := parseResult("BenchmarkIngestSharded/shards=4-8   \t  12\t  98765 ns/op\t  200000 records/s", "farmer")
	if !ok {
		t.Fatal("result line rejected")
	}
	if r.Name != "BenchmarkIngestSharded/shards=4-8" || r.Iterations != 12 {
		t.Fatalf("parsed %+v", r)
	}
	if r.Metrics["ns/op"] != 98765 || r.Metrics["records/s"] != 200000 {
		t.Fatalf("metrics %+v", r.Metrics)
	}
	if _, ok := parseResult("BenchmarkFoo logs something", "p"); ok {
		t.Fatal("log line accepted as a result")
	}
}

func writeRun(t *testing.T, name string, results []Result) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	data, err := json.Marshal(Output{Results: results})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunDiff(t *testing.T) {
	base := []Result{{
		Name: "BenchmarkIngestSharded/shards=4-8", Pkg: "farmer", Iterations: 10,
		Metrics: map[string]float64{"ns/op": 1000, "records/s": 100000, "B/op": 64},
	}}
	within := writeRun(t, "within.json", []Result{{
		Name: "BenchmarkIngestSharded/shards=4-8", Pkg: "farmer", Iterations: 10,
		Metrics: map[string]float64{"ns/op": 1100, "records/s": 90000, "B/op": 9999},
	}})
	slower := writeRun(t, "slower.json", []Result{{
		Name: "BenchmarkIngestSharded/shards=4-8", Pkg: "farmer", Iterations: 10,
		Metrics: map[string]float64{"ns/op": 1500, "records/s": 100000},
	}})
	lowRate := writeRun(t, "lowrate.json", []Result{{
		Name: "BenchmarkIngestSharded/shards=4-8", Pkg: "farmer", Iterations: 10,
		Metrics: map[string]float64{"ns/op": 1000, "records/s": 70000},
	}})
	smoke := writeRun(t, "smoke.json", []Result{{
		Name: "BenchmarkIngestSharded/shards=4-8", Pkg: "farmer", Iterations: 1,
		Metrics: map[string]float64{"ns/op": 99999, "records/s": 1},
	}})
	old := writeRun(t, "old.json", base)

	if c := runDiff(old, within, 0.20); c != 0 {
		t.Fatalf("within threshold: exit %d, want 0", c)
	}
	if c := runDiff(old, slower, 0.20); c != 1 {
		t.Fatalf("ns/op regression: exit %d, want 1", c)
	}
	if c := runDiff(old, lowRate, 0.20); c != 1 {
		t.Fatalf("records/s regression: exit %d, want 1", c)
	}
	// A single-iteration row is reported but never gated.
	if c := runDiff(old, smoke, 0.20); c != 0 {
		t.Fatalf("smoke row gated: exit %d, want 0", c)
	}
	// A benchmark with no previous measurement cannot regress.
	if c := runDiff(writeRun(t, "empty.json", nil), within, 0.20); c != 0 {
		t.Fatalf("new benchmark: exit %d, want 0", c)
	}
	if c := runDiff(filepath.Join(t.TempDir(), "missing.json"), within, 0.20); c != 1 {
		t.Fatalf("missing old file: exit %d, want 1", c)
	}
}
