// Command benchjson converts `go test -bench` text output on stdin into a
// JSON document on stdout, so CI can archive benchmark runs as a machine-
// readable artifact (BENCH_results.json) and the perf trajectory can be
// diffed across commits.
//
// Usage:
//
//	go test -run '^$' -bench 'Ingest|Cluster' -benchtime 1x ./... | benchjson
//	benchjson -diff old.json new.json
//
// Each benchmark result line ("BenchmarkX-8  10  123 ns/op  45 records/s")
// becomes one entry carrying the iteration count and every reported metric;
// goos/goarch/cpu/pkg header lines are attached to the entries they precede.
//
// With -diff, two archived runs are compared instead: ns/op is
// lower-is-better, any "/s" metric is higher-is-better, and a regression
// beyond -threshold (default 20%) on a benchmark present in both runs makes
// the command exit 1. Rows measured with a single iteration in either run
// are reported but never gated — one iteration seeds the trajectory, it is
// not a measurement.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Result is one benchmark measurement.
type Result struct {
	Name       string             `json:"name"`
	Pkg        string             `json:"pkg,omitempty"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Output is the whole archived run.
type Output struct {
	GOOS    string   `json:"goos,omitempty"`
	GOARCH  string   `json:"goarch,omitempty"`
	CPU     string   `json:"cpu,omitempty"`
	Results []Result `json:"results"`
}

func main() {
	diff := flag.Bool("diff", false, "compare two archived runs (old.json new.json) instead of converting stdin")
	threshold := flag.Float64("threshold", 0.20, "fractional regression that fails the -diff comparison")
	flag.Parse()
	if *diff {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "usage: benchjson -diff [-threshold 0.20] old.json new.json")
			os.Exit(2)
		}
		os.Exit(runDiff(flag.Arg(0), flag.Arg(1), *threshold))
	}
	convert()
}

func convert() {
	out := Output{Results: []Result{}}
	pkg := ""
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos: "):
			out.GOOS = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			out.GOARCH = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			out.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "pkg: "):
			pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "Benchmark"):
			if r, ok := parseResult(line, pkg); ok {
				out.Results = append(out.Results, r)
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: reading stdin: %v\n", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}

// runDiff compares two archived runs and returns the process exit code.
// Benchmarks are matched by package + name; metrics other than ns/op and
// rates ("/s" suffix) carry no agreed direction and are not compared.
func runDiff(oldPath, newPath string, threshold float64) int {
	oldRun, err := loadRun(oldPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		return 1
	}
	newRun, err := loadRun(newPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		return 1
	}
	prev := map[string]Result{}
	for _, r := range oldRun.Results {
		prev[r.Pkg+"\x00"+r.Name] = r
	}

	regressions := 0
	for _, nr := range newRun.Results {
		or, ok := prev[nr.Pkg+"\x00"+nr.Name]
		if !ok {
			fmt.Printf("new       %-50s (no previous measurement)\n", nr.Name)
			continue
		}
		gated := or.Iterations > 1 && nr.Iterations > 1
		metrics := make([]string, 0, len(nr.Metrics))
		for m := range nr.Metrics {
			metrics = append(metrics, m)
		}
		sort.Strings(metrics)
		for _, m := range metrics {
			lowerBetter := m == "ns/op"
			if !lowerBetter && !strings.HasSuffix(m, "/s") {
				continue
			}
			ov, ok := or.Metrics[m]
			if !ok || ov == 0 {
				continue
			}
			nv := nr.Metrics[m]
			// change > 0 is always "got worse" regardless of direction.
			change := (nv - ov) / ov
			if !lowerBetter {
				change = -change
			}
			status := "ok       "
			switch {
			case !gated:
				status = "untracked"
			case change > threshold:
				status = "REGRESSED"
				regressions++
			}
			fmt.Printf("%s %-50s %-12s %14.4g -> %-14.4g (%+.1f%%)\n",
				status, nr.Name, m, ov, nv, change*100)
		}
	}
	if regressions > 0 {
		fmt.Printf("\n%d metric(s) regressed more than %.0f%%\n", regressions, threshold*100)
		return 1
	}
	return 0
}

func loadRun(path string) (Output, error) {
	var out Output
	data, err := os.ReadFile(path)
	if err != nil {
		return out, err
	}
	if err := json.Unmarshal(data, &out); err != nil {
		return out, fmt.Errorf("%s: %w", path, err)
	}
	return out, nil
}

// parseResult decodes one "BenchmarkName-P  N  v1 u1  v2 u2 ..." line. Lines
// that merely start with "Benchmark" but are not result rows (log output)
// fail the numeric parses and are skipped.
func parseResult(line, pkg string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || len(fields)%2 != 0 {
		return Result{}, false
	}
	n, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{Name: fields[0], Pkg: pkg, Iterations: n, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, false
		}
		r.Metrics[fields[i+1]] = v
	}
	return r, true
}
