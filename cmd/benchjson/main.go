// Command benchjson converts `go test -bench` text output on stdin into a
// JSON document on stdout, so CI can archive benchmark runs as a machine-
// readable artifact (BENCH_results.json) and the perf trajectory can be
// diffed across commits.
//
// Usage:
//
//	go test -run '^$' -bench 'Ingest|Cluster' -benchtime 1x ./... | benchjson
//
// Each benchmark result line ("BenchmarkX-8  10  123 ns/op  45 records/s")
// becomes one entry carrying the iteration count and every reported metric;
// goos/goarch/cpu/pkg header lines are attached to the entries they precede.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Result is one benchmark measurement.
type Result struct {
	Name       string             `json:"name"`
	Pkg        string             `json:"pkg,omitempty"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Output is the whole archived run.
type Output struct {
	GOOS    string   `json:"goos,omitempty"`
	GOARCH  string   `json:"goarch,omitempty"`
	CPU     string   `json:"cpu,omitempty"`
	Results []Result `json:"results"`
}

func main() {
	out := Output{Results: []Result{}}
	pkg := ""
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos: "):
			out.GOOS = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			out.GOARCH = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			out.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "pkg: "):
			pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "Benchmark"):
			if r, ok := parseResult(line, pkg); ok {
				out.Results = append(out.Results, r)
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: reading stdin: %v\n", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}

// parseResult decodes one "BenchmarkName-P  N  v1 u1  v2 u2 ..." line. Lines
// that merely start with "Benchmark" but are not result rows (log output)
// fail the numeric parses and are skipped.
func parseResult(line, pkg string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || len(fields)%2 != 0 {
		return Result{}, false
	}
	n, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{Name: fields[0], Pkg: pkg, Iterations: n, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, false
		}
		r.Metrics[fields[i+1]] = v
	}
	return r, true
}
