// Package farmer is the public API of this FARMER reproduction: a File
// Access coRrelation Mining and Evaluation Reference model (Xia, Feng,
// Jiang, Tian, Wang — UNL CSE TR-2008-0001 / HPDC'08) together with the
// substrates its evaluation needs (synthetic workload generators, an
// object-based storage-system simulator, and the Nexus/LRU baselines).
//
// # Quick start
//
//	model := farmer.New(farmer.DefaultConfig())
//	for _, r := range workload.Records {
//		model.Feed(&r)
//	}
//	next := model.Predict(fileID, 4) // prefetch candidates, strongest first
//
// The model combines semantic-attribute similarity (Vector Space Model over
// user/process/host/path attributes) with access-sequence frequency (linear
// decremented assignment over a lookahead window) into the correlation
// degree R(x,y) = p·sim(x,y) + (1−p)·F(x,y), keeps only degrees above the
// max_strength validity threshold, and maintains a sorted Correlator List
// per file.
//
// See the examples directory for runnable demonstrations, DESIGN.md for the
// system inventory, and EXPERIMENTS.md for the paper-vs-measured record of
// every reproduced figure and table.
package farmer

import (
	"farmer/internal/core"
	"farmer/internal/graph"
	"farmer/internal/kvstore"
	"farmer/internal/partition"
	"farmer/internal/prefetch"
	"farmer/internal/trace"
	"farmer/internal/tracegen"
	"farmer/internal/vsm"
)

// Core model types, re-exported.
type (
	// Config is the FARMER model configuration (weight p, max_strength
	// threshold, attribute mask, graph window).
	Config = core.Config
	// Model is the streaming four-stage FARMER miner.
	Model = core.Model
	// ShardedModel is the FileID-striped concurrent ensemble of Model for
	// parallel batch ingestion (Config.Shards partitions).
	ShardedModel = core.ShardedModel
	// Correlator is one Correlator-List entry: a successor with its
	// correlation degree and the degree's two components.
	Correlator = core.Correlator
	// ModelStats is a footprint snapshot used by the space-overhead
	// experiments.
	ModelStats = core.Stats
)

// Trace model types, re-exported.
type (
	// Record is one file request with semantic attributes.
	Record = trace.Record
	// Trace is an ordered sequence of Records plus schema metadata.
	Trace = trace.Trace
	// FileID identifies a file within a trace.
	FileID = trace.FileID
	// WorkloadProfile parameterises the synthetic workload generators.
	WorkloadProfile = tracegen.Profile
)

// Async prefetch pipeline, re-exported. A ShardedModel exposes ordered,
// bounded post-ingest event taps (Tap); StartPrefetcher hangs the async
// Predict/prefetch pipeline off them so ingestion — the demand path of a
// metadata server — never waits on prediction or prefetch I/O.
type (
	// TapEvent is one post-ingest notification from a ShardedModel tap.
	TapEvent = core.TapEvent
	// EventTap is an ordered, bounded, drop-oldest subscription to a
	// ShardedModel's ingestion stream.
	EventTap = core.EventTap
	// PrefetchCandidate is one prefetch the async pipeline wants issued.
	PrefetchCandidate = prefetch.Candidate
	// PrefetchSink receives the pipeline's prefetch submissions.
	PrefetchSink = prefetch.Sink
	// PrefetchSinkFunc adapts a function to the PrefetchSink interface.
	PrefetchSinkFunc = prefetch.SinkFunc
	// PrefetchConfig tunes the async pipeline (degree, queue bound).
	PrefetchConfig = prefetch.Config
	// Prefetcher is the running async pipeline; stop it with Stop.
	Prefetcher = prefetch.Pipeline
	// PrefetcherStats is the pipeline's throughput/loss accounting.
	PrefetcherStats = prefetch.Stats
)

// StartPrefetcher taps the sharded miner and launches the asynchronous
// Predict/prefetch pipeline: per-shard consumers, a bounded drop-oldest
// candidate queue, and a submit loop feeding sink. Backpressure sheds
// prefetch coverage, never ingestion latency. Stop the returned pipeline
// to drain and detach it.
func StartPrefetcher(m *ShardedModel, sink PrefetchSink, cfg PrefetchConfig) *Prefetcher {
	return prefetch.Start(m, sink, cfg)
}

// Partition layer, re-exported. A Partitioner maps files to the owners of
// their mined state; the same function can route demand requests in a
// multi-server deployment, so each server both serves and mines exactly its
// partition of the global model.
type (
	// Partitioner maps a file to one of n partition owners.
	Partitioner = partition.Partitioner
)

// Stock partitioners.
var (
	// StripePartitioner is ShardedModel's default FileID striping
	// (Fibonacci hashing on the upper half-word).
	StripePartitioner Partitioner = partition.Stripe
	// HashPartitioner spreads files uniformly across partitions — the
	// pessimistic placement for correlation locality.
	HashPartitioner Partitioner = partition.Hash
	// GroupPartitioner co-locates runs of adjacent file ids, approximating
	// correlation-aware placement (paper §4.2 grouping).
	GroupPartitioner Partitioner = partition.Group
)

// Store is the Berkeley-DB-style persistent ordered key-value store backing
// model persistence (Model.SaveTo/LoadFrom, ShardedModel.SaveMerged/
// LoadMerged): an in-memory B-tree fronted by a CRC-framed write-ahead log.
type Store = kvstore.Store

// OpenStore creates or recovers a store whose write-ahead log lives at
// path; an empty path yields a volatile in-memory store.
func OpenStore(path string) (*Store, error) { return kvstore.Open(path) }

// NewClusterMiner creates the collective miner of an n-server partitioned
// deployment: a ShardedModel whose stripes are the deployment's partitions
// under part (nil = StripePartitioner), so server i owns exactly the mined
// state of the files part routes to it (Shard(i)) while the ensemble still
// mines — and predicts — the one global model. Persist the whole ensemble
// with ShardedModel.SaveMerged and restore at a different server count or
// partitioner with LoadMerged: the load rebalances every file onto its new
// owner, so a cluster can be resized between runs. cfg.Shards is ignored;
// servers wins. Panics on an invalid configuration, like New.
func NewClusterMiner(cfg Config, servers int, part Partitioner) *ShardedModel {
	return core.NewShardedPartitioned(cfg, servers, part)
}

// Semantic attribute machinery, re-exported.
type (
	// Attr is a semantic attribute (user, process, host, path, file id).
	Attr = vsm.Attr
	// AttrMask is a set of attributes enabled for similarity mining.
	AttrMask = vsm.Mask
)

// Attribute constants.
const (
	AttrUser    = vsm.AttrUser
	AttrProcess = vsm.AttrProcess
	AttrHost    = vsm.AttrHost
	AttrPath    = vsm.AttrPath
	AttrFileID  = vsm.AttrFileID
	AttrDevice  = vsm.AttrDevice
)

// New creates a FARMER model. It panics on an invalid configuration; use
// Config.Validate to check first.
func New(cfg Config) *Model { return core.New(cfg) }

// NewSharded creates a concurrent FARMER miner striped across cfg.Shards
// partitions (0 and 1 both mean unsharded, preserving Model's exact
// behavior). FeedBatch/FeedTraceParallel mine with all shards in parallel
// and still produce the same state a single Model reaches feeding the same
// records in order. Like New it panics on an invalid configuration.
func NewSharded(cfg Config) *ShardedModel { return core.NewSharded(cfg) }

// DefaultConfig returns the paper's chosen parameters: weight p = 0.7,
// max_strength = 0.4, IPA path handling, window-3 linear decremented
// assignment, and the full {User, Process, Host, File Path} attribute mask.
func DefaultConfig() Config { return core.DefaultConfig() }

// ConfigFor returns the default configuration adapted to a trace's schema:
// path attributes when available, file-id + device otherwise.
func ConfigFor(t *Trace) Config {
	cfg := core.DefaultConfig()
	cfg.Mask = vsm.DefaultMask(t.HasPaths)
	cfg.Graph = graph.DefaultConfig()
	return cfg
}

// MaskOf builds an attribute mask.
func MaskOf(attrs ...Attr) AttrMask { return vsm.MaskOf(attrs...) }

// Workload profiles matching the paper's four traces.
var (
	// LLNL builds the parallel-scientific profile (800-node cluster).
	LLNL = tracegen.LLNL
	// INS builds the instructional-lab profile (HP-UX, 20 machines).
	INS = tracegen.INS
	// RES builds the research-desktop profile (HP-UX, 13 machines).
	RES = tracegen.RES
	// HP builds the 236-user time-sharing-server profile.
	HP = tracegen.HP
)

// Generate builds a synthetic trace from a profile.
func Generate(p WorkloadProfile) (*Trace, error) { return p.Generate() }
