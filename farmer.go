// Package farmer is the public API of this FARMER reproduction: a File
// Access coRrelation Mining and Evaluation Reference model (Xia, Feng,
// Jiang, Tian, Wang — UNL CSE TR-2008-0001 / HPDC'08) together with the
// substrates its evaluation needs (synthetic workload generators, an
// object-based storage-system simulator, and the Nexus/LRU baselines).
//
// # Quick start
//
//	miner, err := farmer.Open(farmer.DefaultConfig(), farmer.WithShards(4))
//	if err != nil { ... }
//	defer miner.Close()
//	ctx := context.Background()
//	for i := range workload.Records {
//		_ = miner.Feed(ctx, &workload.Records[i])
//	}
//	next, _ := miner.Predict(ctx, fileID, 4) // prefetch candidates, strongest first
//
// Open returns a Miner — the one interface every deployment shape
// implements. The same program talks to a remote farmerd daemon by
// swapping Open for Dial:
//
//	miner, err := farmer.Dial(ctx, "127.0.0.1:4727")
//
// and serves its own miner on the wire with Serve. The deprecated
// panic-on-error constructors (New, NewSharded, NewClusterMiner) remain as
// thin wrappers for existing callers.
//
// The model combines semantic-attribute similarity (Vector Space Model over
// user/process/host/path attributes) with access-sequence frequency (linear
// decremented assignment over a lookahead window) into the correlation
// degree R(x,y) = p·sim(x,y) + (1−p)·F(x,y), keeps only degrees above the
// max_strength validity threshold, and maintains a sorted Correlator List
// per file.
//
// See the examples directory for runnable demonstrations, DESIGN.md for the
// system inventory, and EXPERIMENTS.md for the paper-vs-measured record of
// every reproduced figure and table.
package farmer

import (
	"fmt"

	"farmer/internal/core"
	"farmer/internal/graph"
	"farmer/internal/kvstore"
	"farmer/internal/obs"
	"farmer/internal/partition"
	"farmer/internal/prefetch"
	"farmer/internal/rpc"
	"farmer/internal/trace"
	"farmer/internal/tracegen"
	"farmer/internal/vsm"
)

// Wire-level error sentinels, re-exported for failover-aware callers.
var (
	// ErrDisconnected marks a remote call that failed because the
	// connection died underneath it. A multi-address Dial client consumes
	// it internally (reconnect, then failover); it escapes to the caller
	// only when every configured address is down.
	ErrDisconnected = rpc.ErrDisconnected
	// ErrNotPrimary marks a write refused by an un-promoted replication
	// follower (farmerd -follow) — dial the primary, or include it in a
	// multi-address Dial so failover promotes it when the primary dies.
	ErrNotPrimary = rpc.ErrNotPrimary
	// ErrStaleEpoch marks a write refused under a lapsed or superseded
	// lease epoch (farmerd -lease-ttl): the lease moved — by expiry
	// election or a live handoff — and the refusing server provably did
	// not apply the write. A multi-address Dial client reseeks the leader
	// and retries; it escapes to the caller only when no leader is
	// reachable.
	ErrStaleEpoch = rpc.ErrStaleEpoch
)

// Lease and handoff wire types, re-exported.
type (
	// LeaseInfo is one server's view of the cluster lease: term epoch,
	// leader id, TTL, and whether the answering server holds it.
	LeaseInfo = rpc.LeaseInfo
	// WireStat is one request type's server-side latency accounting
	// (count and summed nanoseconds) from RemoteMiner.WireStats.
	WireStat = rpc.WireStat
)

// Core model types, re-exported.
type (
	// Config is the FARMER model configuration (weight p, max_strength
	// threshold, attribute mask, graph window).
	Config = core.Config
	// Model is the streaming four-stage FARMER miner.
	Model = core.Model
	// ShardedModel is the FileID-striped concurrent ensemble of Model for
	// parallel batch ingestion (Config.Shards partitions).
	ShardedModel = core.ShardedModel
	// Correlator is one Correlator-List entry: a successor with its
	// correlation degree and the degree's two components.
	Correlator = core.Correlator
	// ModelStats is a footprint snapshot used by the space-overhead
	// experiments.
	ModelStats = core.Stats
	// ListCache is the striped materialized Correlator-List snapshot a
	// miner opened WithReadStripes serves Predict/CorrelatorList from.
	ListCache = core.ListCache
)

// Trace model types, re-exported.
type (
	// Record is one file request with semantic attributes.
	Record = trace.Record
	// Trace is an ordered sequence of Records plus schema metadata.
	Trace = trace.Trace
	// FileID identifies a file within a trace.
	FileID = trace.FileID
	// WorkloadProfile parameterises the synthetic workload generators.
	WorkloadProfile = tracegen.Profile
)

// Async prefetch pipeline, re-exported. A ShardedModel exposes ordered,
// bounded post-ingest event taps (Tap); StartPrefetcher hangs the async
// Predict/prefetch pipeline off them so ingestion — the demand path of a
// metadata server — never waits on prediction or prefetch I/O.
type (
	// TapEvent is one post-ingest notification from a ShardedModel tap.
	TapEvent = core.TapEvent
	// EventTap is an ordered, bounded, drop-oldest subscription to a
	// ShardedModel's ingestion stream.
	EventTap = core.EventTap
	// PrefetchCandidate is one prefetch the async pipeline wants issued.
	PrefetchCandidate = prefetch.Candidate
	// PrefetchSink receives the pipeline's prefetch submissions.
	PrefetchSink = prefetch.Sink
	// PrefetchSinkFunc adapts a function to the PrefetchSink interface.
	PrefetchSinkFunc = prefetch.SinkFunc
	// PrefetchConfig tunes the async pipeline (degree, queue bound).
	PrefetchConfig = prefetch.Config
	// Prefetcher is the running async pipeline; stop it with Stop.
	Prefetcher = prefetch.Pipeline
	// PrefetcherStats is the pipeline's throughput/loss accounting.
	PrefetcherStats = prefetch.Stats
)

// StartPrefetcher taps the sharded miner and launches the asynchronous
// Predict/prefetch pipeline: per-shard consumers, a bounded drop-oldest
// candidate queue, and a submit loop feeding sink. Backpressure sheds
// prefetch coverage, never ingestion latency. Stop the returned pipeline
// to drain and detach it. New code can attach the pipeline at Open with
// WithPrefetcher instead.
func StartPrefetcher(m *ShardedModel, sink PrefetchSink, cfg PrefetchConfig) *Prefetcher {
	return prefetch.Start(m, sink, cfg)
}

// Partition layer, re-exported. A Partitioner maps files to the owners of
// their mined state; the same function can route demand requests in a
// multi-server deployment, so each server both serves and mines exactly its
// partition of the global model.
type (
	// Partitioner maps a file to one of n partition owners.
	Partitioner = partition.Partitioner
)

// PartitionerByName maps a configuration name ("stripe", "hash", "group")
// to the stock partitioner — the shared flag parser behind farmerd and
// farmerctl serve.
func PartitionerByName(name string) (Partitioner, error) {
	switch name {
	case "stripe":
		return StripePartitioner, nil
	case "hash":
		return HashPartitioner, nil
	case "group":
		return GroupPartitioner, nil
	default:
		return nil, fmt.Errorf("farmer: unknown partitioner %q (stripe, hash or group)", name)
	}
}

// Stock partitioners.
var (
	// StripePartitioner is ShardedModel's default FileID striping
	// (Fibonacci hashing on the upper half-word).
	StripePartitioner Partitioner = partition.Stripe
	// HashPartitioner spreads files uniformly across partitions — the
	// pessimistic placement for correlation locality.
	HashPartitioner Partitioner = partition.Hash
	// GroupPartitioner co-locates runs of adjacent file ids, approximating
	// correlation-aware placement (paper §4.2 grouping).
	GroupPartitioner Partitioner = partition.Group
)

// Store is the Berkeley-DB-style persistent ordered key-value store backing
// model persistence (Model.SaveTo/LoadFrom, ShardedModel.SaveMerged/
// LoadMerged): an in-memory B-tree fronted by a CRC-framed write-ahead log.
type Store = kvstore.Store

// OpenStore creates or recovers a store whose write-ahead log lives at
// path; an empty path yields a volatile in-memory store. A log that fails
// CRC or framing checks anywhere — truncated tail included — is refused
// (never silently half-loaded); RepairStore truncates it at the last intact
// record when losing the tail is acceptable.
func OpenStore(path string) (*Store, error) { return kvstore.Open(path) }

// RepairStore truncates a store's write-ahead log after its last intact
// record, dropping the corrupt or torn suffix OpenStore refuses to load. It
// returns how many records survive and how many bytes were cut.
func RepairStore(path string) (kept int, dropped int64, err error) { return kvstore.Repair(path) }

// NewClusterMiner creates the collective miner of an n-server partitioned
// deployment: a ShardedModel whose stripes are the deployment's partitions
// under part (nil = StripePartitioner), so server i owns exactly the mined
// state of the files part routes to it (Shard(i)) while the ensemble still
// mines — and predicts — the one global model. Persist the whole ensemble
// with ShardedModel.SaveMerged and restore at a different server count or
// partitioner with LoadMerged: the load rebalances every file onto its new
// owner, so a cluster can be resized between runs. cfg.Shards is ignored;
// servers wins.
//
// Deprecated: use Open with WithShards(servers) and WithPartitioner(part),
// which returns errors instead of panicking; this wrapper delegates to the
// same validated path.
func NewClusterMiner(cfg Config, servers int, part Partitioner) *ShardedModel {
	if servers < 1 {
		panic(fmt.Sprintf("farmer: cluster size %d", servers))
	}
	cfg.Shards = servers
	m, err := Open(cfg, WithPartitioner(part))
	if err != nil {
		panic(err)
	}
	return m.Sharded()
}

// Observability layer, re-exported. A MetricsRegistry collects live
// counters, gauges and histograms from every hot layer (ingest, taps,
// replication, checkpoints, prediction) at zero hot-path cost; attach one
// to a miner with WithObs (or AttachMetrics) and to a server with
// ServeConfig.Obs, then render it with WritePrometheus/WriteJSON — the
// body of farmerd's -metrics-addr endpoint.
type (
	// MetricsRegistry is the live-metrics registry (internal/obs).
	MetricsRegistry = obs.Registry
	// MetricLabel is one name=value pair on a metric series.
	MetricLabel = obs.Label
	// MetricSample is one flattened value from MetricsRegistry.Snapshot.
	MetricSample = obs.Sample
	// CorrelatedGroup is one correlated file group: a seed, its Correlator
	// List members, and the group strength (sum of degrees).
	CorrelatedGroup = core.CorrelatedGroup
	// TenantObs is one tenant's row of a MsgObs response: footprint, tap
	// and checkpoint health, replication lag, prediction accuracy, and the
	// top-k correlated groups. Collected remotely with RemoteMiner.Obs and
	// rendered by farmerctl top / tenants.
	TenantObs = rpc.TenantObs
	// ObsGroup is one correlated group inside a TenantObs row.
	ObsGroup = rpc.ObsGroup
	// FollowerLag is one replication follower's acked position and lag.
	FollowerLag = rpc.FollowerLag
)

// NeverCheckpointed is TenantObs.CkptAgeMS's sentinel for a miner that has
// never completed a checkpoint.
const NeverCheckpointed = rpc.NeverCheckpointed

// NewMetricsRegistry returns an empty live-metrics registry.
func NewMetricsRegistry() *MetricsRegistry { return obs.New() }

// Semantic attribute machinery, re-exported.
type (
	// Attr is a semantic attribute (user, process, host, path, file id).
	Attr = vsm.Attr
	// AttrMask is a set of attributes enabled for similarity mining.
	AttrMask = vsm.Mask
)

// Attribute constants.
const (
	AttrUser    = vsm.AttrUser
	AttrProcess = vsm.AttrProcess
	AttrHost    = vsm.AttrHost
	AttrPath    = vsm.AttrPath
	AttrFileID  = vsm.AttrFileID
	AttrDevice  = vsm.AttrDevice
)

// New creates a FARMER model.
//
// Deprecated: use Open, which returns errors instead of panicking and
// yields the Miner interface; this wrapper remains for callers that want
// the bare single-lock Model. It panics on an invalid configuration; use
// Config.Validate to check first.
func New(cfg Config) *Model { return core.New(cfg) }

// NewSharded creates a concurrent FARMER miner striped across cfg.Shards
// partitions (0 and 1 both mean unsharded, preserving Model's exact
// behavior). FeedBatch/FeedTraceParallel mine with all shards in parallel
// and still produce the same state a single Model reaches feeding the same
// records in order.
//
// Deprecated: use Open, which returns errors instead of panicking. This
// wrapper delegates to the same validated path and panics on an invalid
// configuration, as it always has.
func NewSharded(cfg Config) *ShardedModel {
	m, err := Open(cfg)
	if err != nil {
		panic(err)
	}
	return m.Sharded()
}

// DefaultConfig returns the paper's chosen parameters: weight p = 0.7,
// max_strength = 0.4, IPA path handling, window-3 linear decremented
// assignment, and the full {User, Process, Host, File Path} attribute mask.
func DefaultConfig() Config { return core.DefaultConfig() }

// ConfigFor returns the default configuration adapted to a trace's schema:
// path attributes when available, file-id + device otherwise.
func ConfigFor(t *Trace) Config {
	cfg := core.DefaultConfig()
	cfg.Mask = vsm.DefaultMask(t.HasPaths)
	cfg.Graph = graph.DefaultConfig()
	return cfg
}

// MaskOf builds an attribute mask.
func MaskOf(attrs ...Attr) AttrMask { return vsm.MaskOf(attrs...) }

// Workload profiles matching the paper's four traces.
var (
	// LLNL builds the parallel-scientific profile (800-node cluster).
	LLNL = tracegen.LLNL
	// INS builds the instructional-lab profile (HP-UX, 20 machines).
	INS = tracegen.INS
	// RES builds the research-desktop profile (HP-UX, 13 machines).
	RES = tracegen.RES
	// HP builds the 236-user time-sharing-server profile.
	HP = tracegen.HP
)

// Generate builds a synthetic trace from a profile.
func Generate(p WorkloadProfile) (*Trace, error) { return p.Generate() }
