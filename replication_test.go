package farmer_test

import (
	"context"
	"errors"
	"io"
	"net"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"farmer"
	"farmer/internal/partition"
	"farmer/internal/rpc"
)

// startServe runs farmer.Serve on a loopback listener and returns the
// address, a hard-stop (cancel and wait, tolerating errors — the "crash"
// shape) and a channel carrying Serve's result.
func startServe(t *testing.T, m *farmer.LocalMiner, cfg farmer.ServeConfig) (addr string, stop func() error) {
	t.Helper()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- farmer.Serve(ctx, lis, m, cfg) }()
	return lis.Addr().String(), func() error {
		cancel()
		select {
		case err := <-done:
			return err
		case <-time.After(15 * time.Second):
			t.Fatal("serve did not drain")
			return nil
		}
	}
}

// TestFollowerLifecycle: a follower serves reads and refuses writes with
// ErrNotPrimary while its primary is alive — including refusing promotion —
// then promotes and accepts writes once the primary is gone.
func TestFollowerLifecycle(t *testing.T) {
	tr, err := farmer.Generate(farmer.HP(4000))
	if err != nil {
		t.Fatal(err)
	}
	cfg := farmer.ConfigFor(tr)
	ctx := context.Background()

	follower, err := farmer.Open(cfg, farmer.WithShards(2))
	if err != nil {
		t.Fatal(err)
	}
	defer follower.Close()
	fAddr, fStop := startServe(t, follower, farmer.ServeConfig{Follower: true})
	defer fStop()

	primary, err := farmer.Open(cfg, farmer.WithShards(3))
	if err != nil {
		t.Fatal(err)
	}
	defer primary.Close()
	pAddr, pStop := startServe(t, primary, farmer.ServeConfig{ReplicateTo: []string{fAddr}})

	client, err := farmer.Dial(ctx, pAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if err := client.FeedBatch(ctx, tr.Records[:2000]); err != nil {
		t.Fatal(err)
	}

	// Direct writes to the follower are refused with the typed error; reads
	// are served from the replicated state.
	fclient, err := farmer.Dial(ctx, fAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer fclient.Close()
	if err := fclient.Feed(ctx, &tr.Records[0]); !errors.Is(err, farmer.ErrNotPrimary) {
		t.Fatalf("follower accepted a write while primary is alive: %v", err)
	}
	st, err := fclient.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Fed != 2000 {
		t.Fatalf("follower replicated %d records, want 2000", st.Fed)
	}

	// Kill the primary; the follower's link drops, and a failover client
	// promotes it and finishes the stream.
	if err := pStop(); err != nil {
		t.Fatalf("primary stop: %v", err)
	}
	if err := fclient.Feed(ctx, &tr.Records[2000]); err != nil {
		t.Fatalf("write to promoted follower: %v", err)
	}
	if st, err = fclient.Stats(ctx); err != nil || st.Fed != 2001 {
		t.Fatalf("promoted follower fed %d (err %v), want 2001", st.Fed, err)
	}
}

// TestPromotionRefusedWhileLinked is the split-brain guard in isolation: a
// single-address client pointed at a follower whose primary link is live
// gets ErrNotPrimary even through the failover path (which tries to
// promote), and the follower stays read-only.
func TestPromotionRefusedWhileLinked(t *testing.T) {
	cfg := farmer.DefaultConfig()
	ctx := context.Background()
	follower, err := farmer.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer follower.Close()
	fAddr, fStop := startServe(t, follower, farmer.ServeConfig{Follower: true})
	defer fStop()

	primary, err := farmer.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer primary.Close()
	var attached sync.WaitGroup
	attached.Add(1)
	logf := func(format string, args ...any) {
		if strings.Contains(format, "attached") {
			attached.Done()
		}
	}
	_, pStop := startServe(t, primary, farmer.ServeConfig{ReplicateTo: []string{fAddr}, Logf: logf})
	defer pStop()
	// The guard being tested holds while the primary's link is LIVE — wait
	// out the bootstrap window (a never-attached follower is promotable by
	// design).
	attached.Wait()

	client, err := farmer.Dial(ctx, fAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	r := farmer.Record{File: 1, Path: "/x"}
	if err := client.Feed(ctx, &r); !errors.Is(err, farmer.ErrNotPrimary) {
		t.Fatalf("want ErrNotPrimary through the failover path, got %v", err)
	}
}

// relay is a one-connection TCP proxy the transient-fault test can sever
// without touching the server — the failure mode that used to wedge the
// old single-connection client permanently.
type relay struct {
	lis  net.Listener
	dst  string
	mu   sync.Mutex
	open []net.Conn
}

func newRelay(t *testing.T, dst string) *relay {
	t.Helper()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	r := &relay{lis: lis, dst: dst}
	go r.accept()
	return r
}

func (r *relay) accept() {
	for {
		c, err := r.lis.Accept()
		if err != nil {
			return
		}
		up, err := net.Dial("tcp", r.dst)
		if err != nil {
			c.Close()
			continue
		}
		r.mu.Lock()
		r.open = append(r.open, c, up)
		r.mu.Unlock()
		go func() { io.Copy(up, c); up.Close() }()
		go func() { io.Copy(c, up); c.Close() }()
	}
}

// sever closes every live proxied connection (but keeps accepting new
// ones) — a transient network fault.
func (r *relay) sever() {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, c := range r.open {
		c.Close()
	}
	r.open = nil
}

func (r *relay) Close() { r.lis.Close(); r.sever() }

// TestDialReconnectsAfterTransientError: the bugfix proper. A connection
// fault mid-stream used to poison the client forever (every later call
// returned the stale transport error); the failover client must redial the
// same address and complete the stream against the same server.
func TestDialReconnectsAfterTransientError(t *testing.T) {
	tr, err := farmer.Generate(farmer.HP(3000))
	if err != nil {
		t.Fatal(err)
	}
	cfg := farmer.ConfigFor(tr)
	ctx := context.Background()
	server, err := farmer.Open(cfg, farmer.WithShards(2))
	if err != nil {
		t.Fatal(err)
	}
	defer server.Close()
	addr, stop := startServe(t, server, farmer.ServeConfig{})
	defer stop()

	proxy := newRelay(t, addr)
	defer proxy.Close()

	client, err := farmer.Dial(ctx, proxy.lis.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if err := client.FeedBatch(ctx, tr.Records[:1000]); err != nil {
		t.Fatal(err)
	}
	proxy.sever()
	// The first write to observe the dead connection surfaces the typed
	// in-doubt error (mutations are not silently re-sent); the client
	// recovers the connection underneath, so resuming per the documented
	// protocol — read Fed, re-send from there — completes the stream. The
	// old client returned the same stale transport error forever here.
	lo := 1000
	if err := client.FeedBatch(ctx, tr.Records[lo:]); err != nil {
		if !errors.Is(err, farmer.ErrDisconnected) {
			t.Fatalf("in-doubt write failed with %v, want ErrDisconnected", err)
		}
		st, serr := client.Stats(ctx)
		if serr != nil {
			t.Fatalf("client did not recover from a transient fault: %v", serr)
		}
		lo = int(st.Fed)
		if err := client.FeedBatch(ctx, tr.Records[lo:]); err != nil {
			t.Fatalf("resumed feed failed: %v", err)
		}
	}
	st, err := client.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Fed != uint64(len(tr.Records)) {
		t.Fatalf("fed %d records, want %d", st.Fed, len(tr.Records))
	}
}

// TestServeDrainBoundsHungCheckpoint: the drain-context satellite. A store
// write that hangs forever must not wedge the drain — Serve returns within
// the DrainTimeout with the abandoned-checkpoint error instead of hanging
// on the final checkpoint, and a ticker checkpoint behaves the same.
func TestServeDrainBoundsHungCheckpoint(t *testing.T) {
	dir := t.TempDir()
	block := make(chan struct{})
	restore := farmer.SetSaveToStore(func(sm *farmer.ShardedModel, st *farmer.Store) error {
		<-block // a wedged disk: the write never completes
		return nil
	})
	defer restore()
	defer close(block)

	m, err := farmer.Open(farmer.DefaultConfig(), farmer.WithStore(filepath.Join(dir, "hung.wal")))
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	_, stop := startServe(t, m, farmer.ServeConfig{DrainTimeout: 200 * time.Millisecond})

	start := time.Now()
	err = stop()
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("drain took %v despite a 200ms DrainTimeout", elapsed)
	}
	if err == nil || !strings.Contains(err.Error(), "checkpoint abandoned") {
		t.Fatalf("drain error = %v, want the abandoned-checkpoint error", err)
	}
}

// TestRemoteSaveBoundedByCheckpointTimeout: a client-requested Save against
// a hung store returns the abandoned-checkpoint error over the wire instead
// of stalling the connection forever.
func TestRemoteSaveBoundedByCheckpointTimeout(t *testing.T) {
	dir := t.TempDir()
	block := make(chan struct{})
	restore := farmer.SetSaveToStore(func(sm *farmer.ShardedModel, st *farmer.Store) error {
		<-block
		return nil
	})
	defer restore()
	defer close(block)

	m, err := farmer.Open(farmer.DefaultConfig(), farmer.WithStore(filepath.Join(dir, "hung2.wal")))
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	addr, stop := startServe(t, m, farmer.ServeConfig{
		DrainTimeout:      200 * time.Millisecond,
		CheckpointTimeout: 200 * time.Millisecond,
	})

	ctx := context.Background()
	client, err := farmer.Dial(ctx, addr)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	err = client.Save(ctx)
	if err == nil || !strings.Contains(err.Error(), "checkpoint abandoned") {
		t.Fatalf("remote Save = %v, want the abandoned-checkpoint error", err)
	}
	// The drain's own checkpoint also hits the hung store; tolerate its
	// bounded error.
	if err := stop(); err != nil && !strings.Contains(err.Error(), "checkpoint abandoned") {
		t.Fatalf("stop: %v", err)
	}
}

// TestReplicatedGroupBackups: a group-backup cut on the primary rides the
// replication stream, so the follower's replica-group fingerprint — groups
// AND backup versions — matches the primary's exactly (paper §4.3 backup
// atomicity, verified across processes).
func TestReplicatedGroupBackups(t *testing.T) {
	tr, err := farmer.Generate(farmer.HP(6000))
	if err != nil {
		t.Fatal(err)
	}
	cfg := farmer.ConfigFor(tr)
	ctx := context.Background()

	follower, err := farmer.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer follower.Close()
	fAddr, fStop := startServe(t, follower, farmer.ServeConfig{Follower: true})
	defer fStop()

	primary, err := farmer.Open(cfg, farmer.WithShards(2))
	if err != nil {
		t.Fatal(err)
	}
	defer primary.Close()
	pAddr, pStop := startServe(t, primary, farmer.ServeConfig{ReplicateTo: []string{fAddr}})
	defer pStop()

	client, err := farmer.Dial(ctx, pAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if err := client.FeedBatch(ctx, tr.Records); err != nil {
		t.Fatal(err)
	}
	info, err := client.BackupGroups(ctx, tr.FileCount, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	if info.Groups == 0 || info.Versions == 0 {
		t.Fatalf("no groups cut: %+v", info)
	}

	fclient, err := farmer.Dial(ctx, fAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer fclient.Close()
	finfo, err := fclient.ReplicaGroups(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if finfo != info {
		t.Fatalf("follower groups %+v != primary %+v", finfo, info)
	}
	// A second cut advances versions identically on both ends.
	info2, err := client.BackupGroups(ctx, tr.FileCount, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	if info2.Versions != info.Versions+uint64(info2.Groups) {
		t.Fatalf("second cut versions %d, want %d", info2.Versions, info.Versions+uint64(info2.Groups))
	}
	finfo2, err := fclient.ReplicaGroups(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if finfo2 != info2 {
		t.Fatalf("follower groups after second cut %+v != primary %+v", finfo2, info2)
	}
	// The mutating form is refused on the follower.
	if _, err := fclient.BackupGroups(ctx, tr.FileCount, 0.4); !errors.Is(err, farmer.ErrNotPrimary) {
		t.Fatalf("follower accepted a mutating groups op: %v", err)
	}
}

// TestPrimaryRejectsExternalEvents: a replicating primary refuses
// rpc.NetOwner event streams — they would bypass the record stream its
// followers mirror.
func TestPrimaryRejectsExternalEvents(t *testing.T) {
	ctx := context.Background()
	follower, err := farmer.Open(farmer.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer follower.Close()
	fAddr, fStop := startServe(t, follower, farmer.ServeConfig{Follower: true})
	defer fStop()
	primary, err := farmer.Open(farmer.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer primary.Close()
	pAddr, pStop := startServe(t, primary, farmer.ServeConfig{ReplicateTo: []string{fAddr}})
	defer pStop()

	c, err := rpc.Dial(ctx, pAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	owner := rpc.NewNetOwner(c, 1)
	owner.ApplyEvents([]partition.Event{{Succ: 1, Access: true, Seq: 1}})
	err = owner.Flush()
	if err == nil || !strings.Contains(err.Error(), "external event streams") {
		t.Fatalf("replicated primary accepted external events: %v", err)
	}
}

// TestLocalMinerGroupsSurface: the in-process §4.3 surface — rebuild, cut,
// read — without any wire in between.
func TestLocalMinerGroupsSurface(t *testing.T) {
	tr, err := farmer.Generate(farmer.HP(3000))
	if err != nil {
		t.Fatal(err)
	}
	m, err := farmer.Open(farmer.ConfigFor(tr), farmer.WithShards(2))
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	ctx := context.Background()
	for i := range tr.Records[:100] {
		if err := m.Feed(ctx, &tr.Records[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.FeedBatch(ctx, tr.Records[100:]); err != nil {
		t.Fatal(err)
	}
	info, err := m.BackupGroups(tr.FileCount, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	if info.Groups == 0 || info.Versions == 0 || info.Fingerprint == 0 {
		t.Fatalf("no groups cut: %+v", info)
	}
	if got := m.ReplicaGroups(); got != info {
		t.Fatalf("read-back %+v != cut %+v", got, info)
	}
}
