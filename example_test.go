package farmer_test

import (
	"context"
	"fmt"
	"log"
	"net"
	"strings"

	"farmer"
)

// sequence builds a deterministic little workload: the files repeat in
// order, so every file's strongest successor is the next one in the cycle.
func sequence(files ...farmer.FileID) []farmer.Record {
	var recs []farmer.Record
	for round := 0; round < 12; round++ {
		for _, f := range files {
			recs = append(recs, farmer.Record{
				Seq:  uint64(len(recs)),
				File: f,
				UID:  7,
				PID:  40,
				Host: 3,
				Path: fmt.Sprintf("/project/data/%d", f),
			})
		}
	}
	return recs
}

// ExampleOpen mines a deterministic access sequence with the option-style
// constructor and asks for prefetch candidates.
func ExampleOpen() {
	miner, err := farmer.Open(farmer.DefaultConfig(), farmer.WithShards(2))
	if err != nil {
		log.Fatal(err)
	}
	defer miner.Close()

	ctx := context.Background()
	if err := miner.FeedBatch(ctx, sequence(1, 2, 3)); err != nil {
		log.Fatal(err)
	}
	next, err := miner.Predict(ctx, 1, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("after file 1, prefetch:", next)
	// Output: after file 1, prefetch: [2 3]
}

// ExampleDial serves a miner on a loopback listener with Serve and talks to
// it through the remote Miner that Dial returns — the same calls a program
// would make against a farmerd daemon.
func ExampleDial() {
	server, err := farmer.Open(farmer.DefaultConfig(), farmer.WithShards(2))
	if err != nil {
		log.Fatal(err)
	}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	ctx, stop := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- farmer.Serve(ctx, lis, server, farmer.ServeConfig{}) }()

	miner, err := farmer.Dial(context.Background(), lis.Addr().String())
	if err != nil {
		log.Fatal(err)
	}
	if err := miner.FeedBatch(context.Background(), sequence(1, 2, 3)); err != nil {
		log.Fatal(err)
	}
	next, err := miner.Predict(context.Background(), 2, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("after file 2, prefetch:", next)

	miner.Close()
	stop()
	if err := <-done; err != nil {
		log.Fatal(err)
	}
	server.Close()
	// Output: after file 2, prefetch: [3]
}

// ExampleDial_ackWindow streams records one call at a time but keeps a
// window of acks in flight, closing most of the acked-vs-batched throughput
// gap. A nil Feed means submitted; the Flush barrier is what makes every
// prior record acked and mined — after a failed Flush, resume from
// Stats().Fed exactly as with the sequential client.
func ExampleDial_ackWindow() {
	server, err := farmer.Open(farmer.DefaultConfig(), farmer.WithShards(2))
	if err != nil {
		log.Fatal(err)
	}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	ctx, stop := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- farmer.Serve(ctx, lis, server, farmer.ServeConfig{}) }()

	miner, err := farmer.Dial(context.Background(), lis.Addr().String(),
		farmer.WithAckWindow(32))
	if err != nil {
		log.Fatal(err)
	}
	recs := sequence(1, 2, 3)
	for i := range recs {
		// Sends immediately; blocks only when 32 acks are outstanding.
		if err := miner.Feed(context.Background(), &recs[i]); err != nil {
			log.Fatal(err)
		}
	}
	if err := miner.Flush(context.Background()); err != nil {
		log.Fatal(err) // some submitted records are in doubt: resume from Stats().Fed
	}
	st, err := miner.Stats(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	next, err := miner.Predict(context.Background(), 1, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("acked after Flush:", st.Fed)
	fmt.Println("after file 1, prefetch:", next)

	miner.Close()
	stop()
	if err := <-done; err != nil {
		log.Fatal(err)
	}
	server.Close()
	// Output:
	// acked after Flush: 36
	// after file 1, prefetch: [2 3]
}

// ExampleDial_failover runs a replicated pair — a primary streaming every
// acked record to a follower — and a multi-address client that survives the
// primary's death: the next write fails over to the follower, which
// promotes itself because its primary link is gone, and serves the same
// mined state (replication is bit-identical, so predictions are too).
func ExampleDial_failover() {
	ctx := context.Background()
	newServed := func(cfg farmer.ServeConfig) (*farmer.LocalMiner, string, func()) {
		m, err := farmer.Open(farmer.DefaultConfig(), farmer.WithShards(2))
		if err != nil {
			log.Fatal(err)
		}
		lis, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		sctx, stop := context.WithCancel(ctx)
		done := make(chan error, 1)
		go func() { done <- farmer.Serve(sctx, lis, m, cfg) }()
		return m, lis.Addr().String(), func() { stop(); <-done; m.Close() }
	}

	_, followerAddr, stopFollower := newServed(farmer.ServeConfig{Follower: true})
	defer stopFollower()
	_, primaryAddr, stopPrimary := newServed(farmer.ServeConfig{ReplicateTo: []string{followerAddr}})

	// The client lists the primary first and the follower as its fallback.
	miner, err := farmer.Dial(ctx, primaryAddr, farmer.WithFailover(followerAddr))
	if err != nil {
		log.Fatal(err)
	}
	defer miner.Close()
	if err := miner.FeedBatch(ctx, sequence(1, 2, 3)); err != nil {
		log.Fatal(err)
	}

	stopPrimary() // the primary dies; every acked record is on the follower

	// Reads fail over transparently. (A Feed/FeedBatch interrupted by the
	// crash itself would return farmer.ErrDisconnected; resume from
	// Stats().Fed — see RemoteMiner's doc.)
	st, err := miner.Stats(ctx)
	if err != nil {
		log.Fatal(err)
	}
	next, err := miner.Predict(ctx, 2, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("records surviving the primary:", st.Fed)
	fmt.Println("after file 2, prefetch:", next)
	// Output:
	// records surviving the primary: 36
	// after file 2, prefetch: [3]
}

// ExampleServe_multiTenant serves two isolated tenants from one listener.
// Each tenant gets its own lazily opened miner, bearer tokens gate who may
// bind which tenant, and the workloads never see each other: alpha's cycle
// teaches it nothing about beta's.
func ExampleServe_multiTenant() {
	server, err := farmer.Open(farmer.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	ctx, stop := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		done <- farmer.Serve(ctx, lis, server, farmer.ServeConfig{
			Tenants: &farmer.TenantsConfig{Shards: 2}, // memory-only tenants; set Dir to persist them
			AuthTokens: map[string][]string{
				"admin-secret": {"*"},     // every tenant, including the default
				"alpha-secret": {"alpha"}, // exactly one
			},
		})
	}()

	dial := func(tenant, token string) *farmer.RemoteMiner {
		m, err := farmer.Dial(context.Background(), lis.Addr().String(),
			farmer.WithTenant(tenant), farmer.WithToken(token))
		if err != nil {
			log.Fatal(err)
		}
		return m
	}
	alpha := dial("alpha", "alpha-secret")
	beta := dial("beta", "admin-secret")
	if err := alpha.FeedBatch(context.Background(), sequence(1, 2, 3)); err != nil {
		log.Fatal(err)
	}
	if err := beta.FeedBatch(context.Background(), sequence(7, 8, 9)); err != nil {
		log.Fatal(err)
	}

	next, err := alpha.Predict(context.Background(), 1, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("alpha after file 1:", next)
	crossTenant, err := alpha.Predict(context.Background(), 7, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("alpha after beta's file 7:", crossTenant)
	tenants, err := beta.Tenants(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	for _, ts := range tenants {
		if ts.Name != "" { // skip the default tenant (the server's own miner)
			fmt.Printf("tenant %s fed %d\n", ts.Name, ts.Stats.Fed)
		}
	}

	alpha.Close()
	beta.Close()
	stop()
	if err := <-done; err != nil {
		log.Fatal(err)
	}
	server.Close()
	// Output:
	// alpha after file 1: [2]
	// alpha after beta's file 7: []
	// tenant alpha fed 36
	// tenant beta fed 36
}

// ExampleMiner shows why the interface exists: the same function serves
// predictions from an in-process miner and from a remote one.
func ExampleMiner() {
	hottest := func(m farmer.Miner, f farmer.FileID) []farmer.FileID {
		next, err := m.Predict(context.Background(), f, 2)
		if err != nil {
			return nil
		}
		return next
	}

	local, err := farmer.Open(farmer.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	defer local.Close()
	if err := local.FeedBatch(context.Background(), sequence(4, 5, 6)); err != nil {
		log.Fatal(err)
	}

	// hottest works unchanged against a farmer.Dial client.
	fmt.Println("correlated with 4:", hottest(local, 4))
	// Output: correlated with 4: [5 6]
}

// ExampleServe_metrics attaches a metrics registry to a served miner and
// renders it in Prometheus text format — what a farmerd started with
// -metrics-addr serves from its /metrics endpoint. Every series is sampled
// at scrape time from state the miner already maintains, so the ingest hot
// path pays nothing for the instrumentation.
func ExampleServe_metrics() {
	server, err := farmer.Open(farmer.DefaultConfig(), farmer.WithShards(2))
	if err != nil {
		log.Fatal(err)
	}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	reg := farmer.NewMetricsRegistry()
	ctx, stop := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		done <- farmer.Serve(ctx, lis, server, farmer.ServeConfig{Obs: reg})
	}()

	client, err := farmer.Dial(context.Background(), lis.Addr().String())
	if err != nil {
		log.Fatal(err)
	}
	if err := client.FeedBatch(context.Background(), sequence(1, 2, 3)); err != nil {
		log.Fatal(err)
	}
	client.Close()

	// A /metrics handler is one line: reg.WritePrometheus(w). Pick two
	// stable series out of the scrape for the example.
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		log.Fatal(err)
	}
	for _, line := range strings.Split(b.String(), "\n") {
		if strings.HasPrefix(line, "farmer_ingest_records_total ") ||
			strings.HasPrefix(line, "farmer_shard_mailbox_depth") {
			fmt.Println(line)
		}
	}

	stop()
	if err := <-done; err != nil {
		log.Fatal(err)
	}
	server.Close()
	// Output:
	// farmer_ingest_records_total 36
	// farmer_shard_mailbox_depth{shard="0"} 0
	// farmer_shard_mailbox_depth{shard="1"} 0
}
