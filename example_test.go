package farmer_test

import (
	"context"
	"fmt"
	"log"
	"net"

	"farmer"
)

// sequence builds a deterministic little workload: the files repeat in
// order, so every file's strongest successor is the next one in the cycle.
func sequence(files ...farmer.FileID) []farmer.Record {
	var recs []farmer.Record
	for round := 0; round < 12; round++ {
		for _, f := range files {
			recs = append(recs, farmer.Record{
				Seq:  uint64(len(recs)),
				File: f,
				UID:  7,
				PID:  40,
				Host: 3,
				Path: fmt.Sprintf("/project/data/%d", f),
			})
		}
	}
	return recs
}

// ExampleOpen mines a deterministic access sequence with the option-style
// constructor and asks for prefetch candidates.
func ExampleOpen() {
	miner, err := farmer.Open(farmer.DefaultConfig(), farmer.WithShards(2))
	if err != nil {
		log.Fatal(err)
	}
	defer miner.Close()

	ctx := context.Background()
	if err := miner.FeedBatch(ctx, sequence(1, 2, 3)); err != nil {
		log.Fatal(err)
	}
	next, err := miner.Predict(ctx, 1, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("after file 1, prefetch:", next)
	// Output: after file 1, prefetch: [2 3]
}

// ExampleDial serves a miner on a loopback listener with Serve and talks to
// it through the remote Miner that Dial returns — the same calls a program
// would make against a farmerd daemon.
func ExampleDial() {
	server, err := farmer.Open(farmer.DefaultConfig(), farmer.WithShards(2))
	if err != nil {
		log.Fatal(err)
	}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	ctx, stop := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- farmer.Serve(ctx, lis, server, farmer.ServeConfig{}) }()

	miner, err := farmer.Dial(context.Background(), lis.Addr().String())
	if err != nil {
		log.Fatal(err)
	}
	if err := miner.FeedBatch(context.Background(), sequence(1, 2, 3)); err != nil {
		log.Fatal(err)
	}
	next, err := miner.Predict(context.Background(), 2, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("after file 2, prefetch:", next)

	miner.Close()
	stop()
	if err := <-done; err != nil {
		log.Fatal(err)
	}
	server.Close()
	// Output: after file 2, prefetch: [3]
}

// ExampleMiner shows why the interface exists: the same function serves
// predictions from an in-process miner and from a remote one.
func ExampleMiner() {
	hottest := func(m farmer.Miner, f farmer.FileID) []farmer.FileID {
		next, err := m.Predict(context.Background(), f, 2)
		if err != nil {
			return nil
		}
		return next
	}

	local, err := farmer.Open(farmer.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	defer local.Close()
	if err := local.FeedBatch(context.Background(), sequence(4, 5, 6)); err != nil {
		log.Fatal(err)
	}

	// hottest works unchanged against a farmer.Dial client.
	fmt.Println("correlated with 4:", hottest(local, 4))
	// Output: correlated with 4: [5 6]
}
