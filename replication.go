package farmer

import (
	"bytes"
	"fmt"

	"farmer/internal/core"
	"farmer/internal/kvstore"
	"farmer/internal/replica"
	"farmer/internal/rpc"
)

// This file is the miner half of farmerd replication (the serving half
// lives in serve.go, the stream itself in internal/rpc): cutting the
// catch-up checkpoint a follower bootstraps from, installing one on the
// follower side, and the replica-group manager whose group-atomic backup
// cuts (paper §4.3) ride the replication stream.

// ReplicaGroupsInfo summarises a miner's replica-group state. Fingerprint
// covers every group's membership and backup version; a replication primary
// and its follower agree on it iff their group backups are identical.
type ReplicaGroupsInfo struct {
	Fingerprint uint64
	Groups      int
	Versions    uint64 // total backup cuts across all groups
}

// BackupGroups rebuilds the miner's replica groups from its current mined
// state — files whose mutual correlation degree clears minDegree share a
// group over [0, fileCount) — and atomically cuts a backup version of every
// group (paper §4.3: strongly-correlated files are backed up together or
// not at all). On a miner served with followers, the cut is replicated so
// every follower executes the identical operation at the identical stream
// position; see ServeConfig.ReplicateTo.
func (m *LocalMiner) BackupGroups(fileCount int, minDegree float64) (ReplicaGroupsInfo, error) {
	mgr := m.replicaManager()
	if err := mgr.Rebuild(m.sm, fileCount, minDegree); err != nil {
		return ReplicaGroupsInfo{}, err
	}
	mgr.BackupAll()
	return m.ReplicaGroups(), nil
}

// ReplicaGroups reports the current replica-group state without rebuilding
// or cutting — the verification read both ends of a replicated pair answer.
func (m *LocalMiner) ReplicaGroups() ReplicaGroupsInfo {
	mgr := m.replicaManager()
	return ReplicaGroupsInfo{
		Fingerprint: mgr.Fingerprint(),
		Groups:      mgr.Groups(),
		Versions:    mgr.VersionTotal(),
	}
}

func (m *LocalMiner) replicaManager() *replica.Manager {
	m.gmu.Lock()
	defer m.gmu.Unlock()
	if m.groups == nil {
		m.groups = replica.NewManager()
	}
	return m.groups
}

// catchupCut snapshots the miner's complete mined state — lists, vectors,
// correlation graph, lookahead window and ingest position — into one
// rpc.CatchupCut. The caller (rpc.Replicator.Attach) serializes the cut
// against ingestion, so position, snapshot and fingerprint describe the
// same record boundary.
func (m *LocalMiner) catchupCut() (rpc.CatchupCut, error) {
	mem, err := kvstore.Open("")
	if err != nil {
		return rpc.CatchupCut{}, err
	}
	if err := m.sm.SaveMerged(mem); err != nil {
		return rpc.CatchupCut{}, fmt.Errorf("farmer: cutting catch-up checkpoint: %w", err)
	}
	var buf bytes.Buffer
	if err := mem.Snapshot(&buf); err != nil {
		return rpc.CatchupCut{}, fmt.Errorf("farmer: encoding catch-up snapshot: %w", err)
	}
	fc := m.sm.TrackedFileCount()
	return rpc.CatchupCut{
		Pos:         m.sm.Fed(),
		Fingerprint: core.StateFingerprint(m.sm, fc),
		FileCount:   fc,
		Snapshot:    buf.Bytes(),
	}, nil
}

// catchupFingerprint reports the miner's current state fingerprint and the
// tracked-file bound it covers — what a delta catch-up's final frame carries
// for the follower to verify after replaying. The caller
// (rpc.Replicator.attachDelta) holds the stream lock, so the fingerprint
// describes the exact record boundary the delta ends at.
func (m *LocalMiner) catchupFingerprint() (uint64, int) {
	fc := m.sm.TrackedFileCount()
	return core.StateFingerprint(m.sm, fc), fc
}

// applyCatchupDelta replays one chunk of a delta catch-up: the records this
// follower's checkpoint missed, fed through the normal mining path —
// deterministic mining makes the replayed state identical to the primary's,
// which the final chunk's fingerprint proves. A position mismatch (this
// chunk does not start exactly where the follower stopped) refuses the
// delta; the primary falls back to a full cut.
func (m *LocalMiner) applyCatchupDelta(d rpc.CatchupDelta) error {
	if fed := m.sm.Fed(); fed != d.FromPos {
		return fmt.Errorf("farmer: delta catch-up resumes at position %d but this follower is at %d (no resumable match)", d.FromPos, fed)
	}
	if len(d.Records) > 0 {
		m.sm.FeedBatch(d.Records)
	}
	if d.Final {
		if fp := core.StateFingerprint(m.sm, d.FileCount); fp != d.Fingerprint {
			return fmt.Errorf("farmer: delta catch-up fingerprint mismatch after replay: follower %#x, primary claims %#x (diverged checkpoint)", fp, d.Fingerprint)
		}
	}
	return nil
}

// applyCatchup verifies and installs a primary's checkpoint cut. The
// snapshot's fingerprint is computed from the decoded store BEFORE anything
// touches the miner, so a corrupt or mismatched transfer is refused with
// the follower's state untouched; LoadMerged then enforces that the
// follower is fresh and that the mining parameters match the primary's.
// A follower that is NOT fresh — it loaded its own checkpoint, or a
// refused delta replay advanced it — is reset first (after the parameters
// are pre-checked, so an incompatible cut still leaves it untouched): the
// full cut replaces its state wholesale.
func (m *LocalMiner) applyCatchup(cut rpc.CatchupCut) error {
	mem, err := kvstore.Open("")
	if err != nil {
		return err
	}
	if err := mem.LoadSnapshot(bytes.NewReader(cut.Snapshot)); err != nil {
		return fmt.Errorf("farmer: decoding catch-up snapshot: %w", err)
	}
	fp, err := core.StoreFingerprint(mem, cut.FileCount)
	if err != nil {
		return fmt.Errorf("farmer: fingerprinting catch-up snapshot: %w", err)
	}
	if fp != cut.Fingerprint {
		return fmt.Errorf("farmer: catch-up checkpoint fingerprint mismatch: snapshot %#x, primary claims %#x (corrupt transfer or diverged state)",
			fp, cut.Fingerprint)
	}
	if m.sm.Fed() > 0 {
		weight, strength, _, err := core.ReadSavedConfig(mem)
		if err != nil {
			return fmt.Errorf("farmer: reading catch-up checkpoint parameters: %w", err)
		}
		if mw, ms := m.sm.Params(); weight != mw || strength != ms {
			return fmt.Errorf("farmer: catch-up checkpoint parameters (p=%v, max_strength=%v) differ from this miner's (p=%v, max_strength=%v)",
				weight, strength, mw, ms)
		}
		m.sm.Reset()
	}
	if err := m.sm.LoadMerged(mem); err != nil {
		return fmt.Errorf("farmer: installing catch-up checkpoint: %w", err)
	}
	if fed := m.sm.Fed(); fed != cut.Pos {
		return fmt.Errorf("farmer: catch-up checkpoint at position %d but installed %d records", cut.Pos, fed)
	}
	return nil
}
