package farmer

import (
	"bytes"
	"fmt"

	"farmer/internal/core"
	"farmer/internal/kvstore"
	"farmer/internal/replica"
	"farmer/internal/rpc"
)

// This file is the miner half of farmerd replication (the serving half
// lives in serve.go, the stream itself in internal/rpc): cutting the
// catch-up checkpoint a follower bootstraps from, installing one on the
// follower side, and the replica-group manager whose group-atomic backup
// cuts (paper §4.3) ride the replication stream.

// ReplicaGroupsInfo summarises a miner's replica-group state. Fingerprint
// covers every group's membership and backup version; a replication primary
// and its follower agree on it iff their group backups are identical.
type ReplicaGroupsInfo struct {
	Fingerprint uint64
	Groups      int
	Versions    uint64 // total backup cuts across all groups
}

// BackupGroups rebuilds the miner's replica groups from its current mined
// state — files whose mutual correlation degree clears minDegree share a
// group over [0, fileCount) — and atomically cuts a backup version of every
// group (paper §4.3: strongly-correlated files are backed up together or
// not at all). On a miner served with followers, the cut is replicated so
// every follower executes the identical operation at the identical stream
// position; see ServeConfig.ReplicateTo.
func (m *LocalMiner) BackupGroups(fileCount int, minDegree float64) (ReplicaGroupsInfo, error) {
	mgr := m.replicaManager()
	if err := mgr.Rebuild(m.sm, fileCount, minDegree); err != nil {
		return ReplicaGroupsInfo{}, err
	}
	mgr.BackupAll()
	return m.ReplicaGroups(), nil
}

// ReplicaGroups reports the current replica-group state without rebuilding
// or cutting — the verification read both ends of a replicated pair answer.
func (m *LocalMiner) ReplicaGroups() ReplicaGroupsInfo {
	mgr := m.replicaManager()
	return ReplicaGroupsInfo{
		Fingerprint: mgr.Fingerprint(),
		Groups:      mgr.Groups(),
		Versions:    mgr.VersionTotal(),
	}
}

func (m *LocalMiner) replicaManager() *replica.Manager {
	m.gmu.Lock()
	defer m.gmu.Unlock()
	if m.groups == nil {
		m.groups = replica.NewManager()
	}
	return m.groups
}

// catchupCut snapshots the miner's complete mined state — lists, vectors,
// correlation graph, lookahead window and ingest position — into one
// rpc.CatchupCut. The caller (rpc.Replicator.Attach) serializes the cut
// against ingestion, so position, snapshot and fingerprint describe the
// same record boundary.
func (m *LocalMiner) catchupCut() (rpc.CatchupCut, error) {
	mem, err := kvstore.Open("")
	if err != nil {
		return rpc.CatchupCut{}, err
	}
	if err := m.sm.SaveMerged(mem); err != nil {
		return rpc.CatchupCut{}, fmt.Errorf("farmer: cutting catch-up checkpoint: %w", err)
	}
	var buf bytes.Buffer
	if err := mem.Snapshot(&buf); err != nil {
		return rpc.CatchupCut{}, fmt.Errorf("farmer: encoding catch-up snapshot: %w", err)
	}
	fc := m.sm.TrackedFileCount()
	return rpc.CatchupCut{
		Pos:         m.sm.Fed(),
		Fingerprint: core.StateFingerprint(m.sm, fc),
		FileCount:   fc,
		Snapshot:    buf.Bytes(),
	}, nil
}

// applyCatchup verifies and installs a primary's checkpoint cut. The
// snapshot's fingerprint is computed from the decoded store BEFORE anything
// touches the miner, so a corrupt or mismatched transfer is refused with
// the follower's state untouched; LoadMerged then enforces that the
// follower is fresh and that the mining parameters match the primary's.
func (m *LocalMiner) applyCatchup(cut rpc.CatchupCut) error {
	mem, err := kvstore.Open("")
	if err != nil {
		return err
	}
	if err := mem.LoadSnapshot(bytes.NewReader(cut.Snapshot)); err != nil {
		return fmt.Errorf("farmer: decoding catch-up snapshot: %w", err)
	}
	fp, err := core.StoreFingerprint(mem, cut.FileCount)
	if err != nil {
		return fmt.Errorf("farmer: fingerprinting catch-up snapshot: %w", err)
	}
	if fp != cut.Fingerprint {
		return fmt.Errorf("farmer: catch-up checkpoint fingerprint mismatch: snapshot %#x, primary claims %#x (corrupt transfer or diverged state)",
			fp, cut.Fingerprint)
	}
	if err := m.sm.LoadMerged(mem); err != nil {
		return fmt.Errorf("farmer: installing catch-up checkpoint: %w", err)
	}
	if fed := m.sm.Fed(); fed != cut.Pos {
		return fmt.Errorf("farmer: catch-up checkpoint at position %d but installed %d records", cut.Pos, fed)
	}
	return nil
}
