package farmer

// tenants.go is the multi-tenant core of Serve: a Registry mapping tenant
// ids to lazily opened miners, each with its own store, checkpoint
// schedule, replication stream and resource budget. The wire layer stays
// tenant-agnostic — the Registry plugs in as internal/rpc's Resolver, and
// every admission refusal travels typed (ErrTenantBudget) so one
// over-budget tenant cannot degrade its neighbors' streams.

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"farmer/internal/rpc"
)

// Typed sentinels for the multi-tenant edge, re-exported from the wire
// layer so callers never import internal/rpc. Match with errors.Is.
var (
	// ErrTenantBudget reports a tenant refused by admission control: too
	// many live tenants, a configuration over its shard/mailbox budget, or
	// a model footprint past its MemoryBytes cap.
	ErrTenantBudget = rpc.ErrTenantBudget
	// ErrUnauthorized reports a bearer token the server does not know, or
	// one not granted the addressed tenant.
	ErrUnauthorized = rpc.ErrUnauthorized
	// ErrBadVersion reports a protocol-version mismatch between client and
	// server (a tenant-aware client dialing a pre-tenant farmerd, or the
	// reverse).
	ErrBadVersion = rpc.ErrBadVersion
)

// TenantBudget caps one tenant's resource footprint. Zero fields are
// unlimited. Shard and mailbox budgets are enforced at tenant open (the
// tenant's mining configuration must fit), the memory budget continuously
// on the feed path (throttled to every budgetCheckStride records).
type TenantBudget struct {
	// MaxShards caps TenantsConfig.Shards for lazily opened tenants.
	MaxShards int
	// MaxMailbox caps the prefetch pipeline's queue and tap depths
	// (TenantsConfig.Prefetch) — the per-tenant mailbox bound.
	MaxMailbox int
	// MaxMemoryBytes caps the tenant model's estimated footprint
	// (ModelStats.MemoryBytes); feeds are refused with ErrTenantBudget
	// once it is exceeded.
	MaxMemoryBytes int64
}

// TenantsConfig turns Serve multi-tenant (ServeConfig.Tenants): frames
// carrying a tenant id lazily open one miner per tenant, configured
// uniformly from this struct.
type TenantsConfig struct {
	// Dir is the per-tenant store layout root: tenant t persists at
	// Dir/t/store.wal (farmerd -tenants-dir). Empty means tenants are
	// memory-only — they still mine, but are never checkpointed and are
	// not eligible for idle eviction.
	Dir string
	// Config is the mining configuration for lazily opened tenants. A
	// zero Weight and MaxStrength means DefaultConfig().
	Config Config
	// Shards stripes each tenant's miner (0/1 = the single-lock path).
	Shards int
	// Prefetch, when non-nil, attaches the async predict pipeline to each
	// tenant miner (candidates are discarded; the pipeline still predicts
	// and accounts).
	Prefetch *PrefetchConfig
	// Budget is every named tenant's admission-control budget (the default
	// tenant — the caller's own miner — is not budgeted).
	Budget TenantBudget
	// MaxTenants caps concurrently live named tenants (0 = unlimited);
	// opening one more is refused with ErrTenantBudget.
	MaxTenants int
	// IdleAfter evicts a named tenant untouched for this long: its state
	// is checkpointed into its store and the miner closed; the next frame
	// for it reopens from the store. 0 disables eviction. Tenants without
	// a store (Dir == "") and replicated deployments are never evicted —
	// eviction would drop memory-only state, or orphan follower streams.
	IdleAfter time.Duration
}

// Registry is the tenant → miner map behind a multi-tenant Serve. It
// implements internal/rpc's Resolver: the server hands it each frame's
// tenant id, and it returns that tenant's serving backend, opening the
// tenant (miner + store + replication stream) on first touch. All methods
// are safe for concurrent use.
type Registry struct {
	cfg        *TenantsConfig // nil = single-tenant (named tenants refused)
	logf       func(format string, args ...any)
	follower   bool
	drain      time.Duration
	saveBudget time.Duration

	replicateTo []string
	replicaAck  time.Duration
	replicaOpts rpc.DialOptions // token/TLS half; Tenant is stamped per tenant
	ckptTail    int             // delta catch-up tail per tenant replicator (0 = disabled)
	leaseSt     *leaseState     // daemon-wide lease, shared by every tenant backend (nil = disabled)

	mu      sync.Mutex
	tenants map[string]*tenantEntry
	closed  bool
}

// tenantEntry is one live tenant. owned reports whether the Registry
// opened the miner (and therefore closes it on eviction/drain); the
// default tenant's miner belongs to Serve's caller.
type tenantEntry struct {
	name    string
	m       *LocalMiner
	backend *serveBackend
	owned   bool
	lastUse time.Time // guarded by Registry.mu
}

func newRegistry(cfg ServeConfig, saveBudget time.Duration) *Registry {
	ack := cfg.ReplicaAckTimeout
	if ack <= 0 {
		ack = 30 * time.Second
	}
	return &Registry{
		cfg:         cfg.Tenants,
		logf:        cfg.Logf,
		follower:    cfg.Follower,
		drain:       cfg.DrainTimeout,
		saveBudget:  saveBudget,
		replicateTo: cfg.ReplicateTo,
		replicaAck:  ack,
		replicaOpts: rpc.DialOptions{Token: cfg.ReplicaToken, TLS: cfg.ReplicaTLS},
		ckptTail:    catchupTail(cfg.CatchupTail),
		tenants:     make(map[string]*tenantEntry),
	}
}

// registerDefault installs the caller's miner as the default tenant.
func (g *Registry) registerDefault(m *LocalMiner, b *serveBackend) {
	g.mu.Lock()
	g.tenants[""] = &tenantEntry{name: "", m: m, backend: b, lastUse: time.Now()}
	g.mu.Unlock()
}

var _ rpc.Resolver = (*Registry)(nil)

// BackendFor implements rpc.Resolver: resolve (or lazily open) the
// tenant's serving backend. Admission refusals wrap ErrTenantBudget.
func (g *Registry) BackendFor(tenant string) (rpc.Backend, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if e := g.tenants[tenant]; e != nil {
		e.lastUse = time.Now()
		return e.backend, nil
	}
	if g.closed {
		return nil, errors.New("farmer: server is draining")
	}
	if g.cfg == nil {
		return nil, fmt.Errorf("farmer: unknown tenant %q (multi-tenant serving not enabled; start farmerd with -tenants-dir)", tenant)
	}
	e, err := g.openLocked(tenant)
	if err != nil {
		return nil, err
	}
	return e.backend, nil
}

// openLocked admits and opens one named tenant under g.mu. Holding the
// lock through the open serializes concurrent first touches of the same
// tenant; the store open is local disk I/O, brief at this tier.
func (g *Registry) openLocked(tenant string) (*tenantEntry, error) {
	if g.cfg.MaxTenants > 0 {
		named := len(g.tenants)
		if _, ok := g.tenants[""]; ok {
			named--
		}
		if named >= g.cfg.MaxTenants {
			return nil, fmt.Errorf("%w: tenant %q refused, %d tenants live (MaxTenants %d)",
				ErrTenantBudget, tenant, named, g.cfg.MaxTenants)
		}
	}
	bud := g.cfg.Budget
	if bud.MaxShards > 0 && g.cfg.Shards > bud.MaxShards {
		return nil, fmt.Errorf("%w: tenant %q configured for %d shards, budget allows %d",
			ErrTenantBudget, tenant, g.cfg.Shards, bud.MaxShards)
	}
	if pf := g.cfg.Prefetch; pf != nil && bud.MaxMailbox > 0 &&
		(pf.QueueCap > bud.MaxMailbox || pf.TapBuffer > bud.MaxMailbox) {
		return nil, fmt.Errorf("%w: tenant %q prefetch mailbox depth (queue %d, tap %d) exceeds budget %d",
			ErrTenantBudget, tenant, pf.QueueCap, pf.TapBuffer, bud.MaxMailbox)
	}

	cfg := g.cfg.Config
	if cfg.Weight == 0 && cfg.MaxStrength == 0 {
		cfg = DefaultConfig()
	}
	opts := []Option{WithShards(g.cfg.Shards)}
	if g.cfg.Prefetch != nil {
		opts = append(opts, WithPrefetcher(nil, *g.cfg.Prefetch))
	}
	if g.cfg.Dir != "" {
		dir := filepath.Join(g.cfg.Dir, tenant)
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("farmer: creating tenant %q store dir: %w", tenant, err)
		}
		// Followers load too: a follower tenant's own checkpoint is what
		// makes a delta catch-up possible — the primary replays just the
		// records past its position. A checkpoint the primary cannot resume
		// from simply makes it fall back to a full cut, which resets the
		// miner before installing.
		opts = append(opts, WithStore(filepath.Join(dir, "store.wal")), WithLoad())
	}
	m, err := Open(cfg, opts...)
	if err != nil {
		return nil, fmt.Errorf("farmer: opening tenant %q: %w", tenant, err)
	}
	b := &serveBackend{
		m: m, drain: g.drain, saveBudget: g.saveBudget,
		logf:     func(format string, args ...any) { g.logf("tenant %q: "+format, append([]any{tenant}, args...)...) },
		follower: g.follower, tenant: tenant, budget: bud,
		lease: g.leaseSt,
	}
	b.memPending.Store(budgetCheckStride) // first feed checks the footprint
	if len(g.replicateTo) > 0 {
		repl := rpc.NewReplicator(m.sm.Fed(), g.replicaAck, func(addr string, err error) {
			g.logf("tenant %q: follower %s dropped from replication: %v", tenant, addr, err)
		})
		do := g.replicaOpts
		do.Tenant = tenant
		repl.SetDialOptions(do)
		if g.ckptTail > 0 {
			repl.EnableDeltaCatchup(g.ckptTail, m.catchupFingerprint)
		}
		for _, addr := range g.replicateTo {
			// Unlike the default tenant's startup attach, an unreachable
			// follower here does not fail the open: the daemon is already
			// serving, and availability wins over replica count.
			if err := repl.Attach(context.Background(), addr, m.catchupCut); err != nil {
				g.logf("tenant %q: follower %s unreachable at open: %v", tenant, addr, err)
				continue
			}
			g.logf("tenant %q: follower %s caught up and attached", tenant, addr)
		}
		b.repl = repl
	}
	e := &tenantEntry{name: tenant, m: m, backend: b, owned: true, lastUse: time.Now()}
	g.tenants[tenant] = e
	g.logf("tenant %q opened", tenant)
	return e, nil
}

// Tenants implements rpc.Resolver: a stats snapshot of every live tenant,
// default first then lexicographic — the body of `farmerctl tenants`.
func (g *Registry) Tenants() []rpc.TenantInfo {
	g.mu.Lock()
	entries := make([]*tenantEntry, 0, len(g.tenants))
	for _, e := range g.tenants {
		entries = append(entries, e)
	}
	g.mu.Unlock()
	sort.Slice(entries, func(i, j int) bool { return entries[i].name < entries[j].name })
	infos := make([]rpc.TenantInfo, len(entries))
	for i, e := range entries {
		infos[i] = rpc.TenantInfo{Name: e.name, Stats: e.backend.Stats()}
	}
	return infos
}

var _ rpc.ObsResolver = (*Registry)(nil)

// TenantObs implements rpc.ObsResolver: one observability row per live
// tenant, default first then lexicographic — the body of the MsgObs frame
// behind `farmerctl top` and the tenant columns of `farmerctl tenants`.
// The wire layer stamps its own per-tenant feed accounting on top and
// filters the rows to the connection's grants.
func (g *Registry) TenantObs(topK int) []rpc.TenantObs {
	g.mu.Lock()
	entries := make([]*tenantEntry, 0, len(g.tenants))
	for _, e := range g.tenants {
		entries = append(entries, e)
	}
	g.mu.Unlock()
	sort.Slice(entries, func(i, j int) bool { return entries[i].name < entries[j].name })
	rows := make([]rpc.TenantObs, len(entries))
	for i, e := range entries {
		rows[i] = e.backend.TenantObs(topK)
		rows[i].Name = e.name
	}
	return rows
}

// checkpointAll saves every stored tenant (the serve loop's checkpoint
// tick); the first error is returned after the sweep completes.
func (g *Registry) checkpointAll() error {
	var first error
	for _, e := range g.snapshot() {
		if e.m.store == nil {
			continue
		}
		if err := e.backend.Save(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// evictIdle closes named tenants idle past IdleAfter, checkpointing each
// first so the next touch reopens with full state. Replicated deployments
// never evict: tearing down a tenant's stream would orphan its followers
// (a re-opened tenant's catch-up cut cannot install over their state).
func (g *Registry) evictIdle() {
	if g.cfg == nil || g.cfg.IdleAfter <= 0 || g.cfg.Dir == "" ||
		g.follower || len(g.replicateTo) > 0 {
		return
	}
	now := time.Now()
	var evict []*tenantEntry
	g.mu.Lock()
	for name, e := range g.tenants {
		if !e.owned || now.Sub(e.lastUse) < g.cfg.IdleAfter {
			continue
		}
		delete(g.tenants, name)
		evict = append(evict, e)
	}
	g.mu.Unlock()
	for _, e := range evict {
		ctx, cancel := context.WithTimeout(context.Background(), g.saveBudget)
		err := e.m.Save(ctx)
		cancel()
		if err != nil {
			g.logf("tenant %q: eviction checkpoint failed (tenant closed anyway): %v", e.name, err)
		}
		e.m.Close()
		g.logf("tenant %q evicted after %v idle", e.name, g.cfg.IdleAfter)
	}
}

// closeReplicators flushes and closes every tenant's replication stream —
// run before the final checkpoints so a clean shutdown leaves followers
// holding everything the primary acked. Idempotent.
func (g *Registry) closeReplicators() {
	for _, e := range g.snapshot() {
		if repl := e.backend.replicator(); repl != nil {
			repl.Close()
		}
	}
}

// drainAll writes every stored tenant's final checkpoint and closes the
// registry-owned miners (the default tenant's miner belongs to the
// caller). dctx bounds the whole sweep. The first error is returned.
func (g *Registry) drainAll(dctx context.Context) error {
	g.mu.Lock()
	g.closed = true
	g.mu.Unlock()
	var first error
	for _, e := range g.snapshot() {
		if e.m.store != nil {
			if err := e.m.Save(dctx); err != nil && first == nil {
				first = err
			}
		}
		if e.owned {
			e.m.Close()
		}
	}
	return first
}

func (g *Registry) snapshot() []*tenantEntry {
	g.mu.Lock()
	defer g.mu.Unlock()
	entries := make([]*tenantEntry, 0, len(g.tenants))
	for _, e := range g.tenants {
		entries = append(entries, e)
	}
	return entries
}
