// Benchmarks that regenerate every table and figure of the paper's
// evaluation (run with `go test -bench=. -benchmem`). Each benchmark runs
// the corresponding experiment end to end — workload generation, mining,
// and storage simulation — and reports the headline metric through b.Log
// and custom metrics, so `go test -bench=Fig7 -v` reproduces the artifact.
package farmer_test

import (
	"fmt"
	"io"
	"runtime"
	"testing"
	"time"

	"farmer"
	"farmer/internal/exp"
)

// benchRecords keeps full-pipeline benchmarks tractable; farmerctl runs the
// larger default scale.
const benchRecords = 15000

func benchOpt() exp.Options { return exp.Options{Records: benchRecords} }

// BenchmarkFig1InterFileAccessProbability regenerates Figure 1.
func BenchmarkFig1InterFileAccessProbability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab := exp.Fig1(benchOpt())
		if i == 0 {
			b.Log("\n" + tab.String())
		}
	}
}

// BenchmarkTable2DPAvsIPA regenerates the Table 2 worked example.
func BenchmarkTable2DPAvsIPA(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab := exp.Table2()
		if i == 0 {
			b.Log("\n" + tab.String())
		}
	}
}

// BenchmarkFig3WeightSweep regenerates Figure 3 for the HP trace (the other
// traces follow the same driver; see farmerctl fig3).
func BenchmarkFig3WeightSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab := exp.Fig3(benchOpt(), "HP")
		if i == 0 {
			b.Log("\n" + tab.String())
		}
	}
}

// BenchmarkFig5AttributeCombinations regenerates the Figure 5 table (15
// attribute combinations x 3 traces = 45 simulations).
func BenchmarkFig5AttributeCombinations(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab := exp.Fig5(benchOpt())
		if i == 0 {
			b.Log("\n" + tab.String())
		}
	}
}

// BenchmarkFig6MaxStrength regenerates Figure 6.
func BenchmarkFig6MaxStrength(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab := exp.Fig6(benchOpt())
		if i == 0 {
			b.Log("\n" + tab.String())
		}
	}
}

// BenchmarkFig7HitRatioComparison regenerates Figure 7 and reports the HP
// hit ratios as custom metrics.
func BenchmarkFig7HitRatioComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		runs := exp.ComparePolicies(benchOpt())
		if i == 0 {
			b.Log("\n" + exp.Fig7(runs).String())
			for _, r := range runs {
				if r.Trace == "HP" {
					b.ReportMetric(r.HitRatio, "hit@HP/"+r.Policy)
				}
			}
		}
	}
}

// BenchmarkFig8ResponseTime regenerates Figure 8.
func BenchmarkFig8ResponseTime(b *testing.B) {
	for i := 0; i < b.N; i++ {
		runs := exp.ComparePolicies(benchOpt())
		if i == 0 {
			b.Log("\n" + exp.Fig8(runs).String())
		}
	}
}

// BenchmarkTable3PrefetchAccuracy regenerates Table 3.
func BenchmarkTable3PrefetchAccuracy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		runs := exp.ComparePolicies(benchOpt())
		if i == 0 {
			b.Log("\n" + exp.Table3(runs).String())
			for _, r := range runs {
				if r.Trace == "HP" && r.Policy != "LRU" {
					b.ReportMetric(r.Accuracy, "accuracy/"+r.Policy)
				}
			}
		}
	}
}

// BenchmarkTable4SpaceOverhead regenerates Table 4.
func BenchmarkTable4SpaceOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab := exp.Table4(benchOpt())
		if i == 0 {
			b.Log("\n" + tab.String())
		}
	}
}

// BenchmarkAblationFootprint regenerates the §3.3 filtering-efficiency
// ablation.
func BenchmarkAblationFootprint(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab := exp.AblationFootprint(benchOpt(), "HP")
		if i == 0 {
			b.Log("\n" + tab.String())
		}
	}
}

// BenchmarkIngestSingleLock mines a full HP workload through the
// single-lock Model — the baseline for BenchmarkIngestSharded. Compare the
// records/s metrics: on a multi-core machine the sharded batch path should
// scale near-linearly (its serial dispatch fraction is <10% of the
// single-lock mining cost; see EXPERIMENTS.md).
func BenchmarkIngestSingleLock(b *testing.B) {
	tr, err := farmer.Generate(farmer.HP(benchRecords))
	if err != nil {
		b.Fatal(err)
	}
	cfg := farmer.ConfigFor(tr)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := farmer.New(cfg)
		for j := range tr.Records {
			m.Feed(&tr.Records[j])
		}
	}
	b.ReportMetric(float64(len(tr.Records))*float64(b.N)/b.Elapsed().Seconds(), "records/s")
}

// BenchmarkIngestSharded mines the same workload through ShardedModel's
// concurrent batch path at several stripe widths.
func BenchmarkIngestSharded(b *testing.B) {
	tr, err := farmer.Generate(farmer.HP(benchRecords))
	if err != nil {
		b.Fatal(err)
	}
	shardCounts := []int{4}
	if p := runtime.GOMAXPROCS(0); p != 4 {
		shardCounts = append(shardCounts, p)
	}
	for _, shards := range shardCounts {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			cfg := farmer.ConfigFor(tr)
			cfg.Shards = shards
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m := farmer.NewSharded(cfg)
				m.FeedTraceParallel(tr)
			}
			b.ReportMetric(float64(len(tr.Records))*float64(b.N)/b.Elapsed().Seconds(), "records/s")
		})
	}
}

// BenchmarkIngestShardedObs is BenchmarkIngestSharded with a live metrics
// registry attached and a goroutine scraping it continuously — the proof
// that observability costs nothing on the hot path (CI gates the records/s
// delta against BenchmarkIngestSharded at ≤2%, well inside benchjson's 20%
// regression fence). Every miner series is a scrape-time callback over
// atomics the model already maintains, so the feed loop gains zero
// instructions.
func BenchmarkIngestShardedObs(b *testing.B) {
	tr, err := farmer.Generate(farmer.HP(benchRecords))
	if err != nil {
		b.Fatal(err)
	}
	shardCounts := []int{4}
	if p := runtime.GOMAXPROCS(0); p != 4 {
		shardCounts = append(shardCounts, p)
	}
	for _, shards := range shardCounts {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			cfg := farmer.ConfigFor(tr)
			reg := farmer.NewMetricsRegistry()
			stop := make(chan struct{})
			scraped := make(chan struct{})
			go func() {
				defer close(scraped)
				// A scrape every millisecond is ~10000x a real Prometheus
				// cadence; a spin loop would instead measure a goroutine
				// burning a core, which is not what an endpoint costs.
				tick := time.NewTicker(time.Millisecond)
				defer tick.Stop()
				for {
					select {
					case <-stop:
						return
					case <-tick.C:
						_ = reg.WritePrometheus(io.Discard)
					}
				}
			}()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m, err := farmer.Open(cfg, farmer.WithShards(shards), farmer.WithObs(reg))
				if err != nil {
					b.Fatal(err)
				}
				m.Sharded().FeedTraceParallel(tr)
				m.Close()
			}
			b.StopTimer()
			close(stop)
			<-scraped
			b.ReportMetric(float64(len(tr.Records))*float64(b.N)/b.Elapsed().Seconds(), "records/s")
		})
	}
}

// BenchmarkMiningQuality scores every predictor's mined correlations against
// ground truth (the paper's "more accurately" claim).
func BenchmarkMiningQuality(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab := exp.MiningQuality(benchOpt())
		if i == 0 {
			b.Log("\n" + tab.String())
		}
	}
}

// BenchmarkClusterGlobalVsLocal regenerates the multi-MDS cluster
// comparison: per-partition miners vs the cluster-level global miner under
// hash and group placement (`farmerctl cluster` at full scale).
func BenchmarkClusterGlobalVsLocal(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab := exp.ClusterTable(exp.ClusterGlobalVsLocal(benchOpt()))
		if i == 0 {
			b.Log("\n" + tab.String())
		}
	}
}
