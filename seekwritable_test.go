package farmer_test

// Regression tests for RemoteMiner.seekWritable. The old sweep skipped the
// current address whenever the current connection was down (it started at
// the NEXT address), and with a single-address client the skipped loop left
// lastErr nil — so seekWritable reported success without anyone having
// accepted promotion, and the retried write bounced off a still-unpromoted
// follower. Both tests verify the promotion server-side through a raw rpc
// connection, which never runs the client's promotion sweep itself — a nil
// seekWritable whose Promote never happened fails here.

import (
	"context"
	"errors"
	"testing"

	"farmer"
	"farmer/internal/rpc"
	"farmer/internal/trace"
)

// rawFeed feeds one record over a fresh raw rpc connection — no failover, no
// promotion sweep — so the result reflects exactly the server's role.
func rawFeed(t *testing.T, addr string) error {
	t.Helper()
	ctx := context.Background()
	c, err := rpc.DialWith(ctx, addr, rpc.DialOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	return c.Feed(ctx, &trace.Record{File: 1})
}

// TestSeekWritableSingleAddressPromotes: a single-address client whose
// connection died must still ask that address to promote. The old code
// returned nil success with nobody promoted; the raw follow-up write
// catches that lie.
func TestSeekWritableSingleAddressPromotes(t *testing.T) {
	ctx := context.Background()
	follower, err := farmer.Open(farmer.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer follower.Close()
	// Orphaned follower: never linked to a primary, so it IS promotable.
	addr, stop := startServe(t, follower, farmer.ServeConfig{Follower: true})
	defer stop()

	client, err := farmer.Dial(ctx, addr)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if err := rawFeed(t, addr); !errors.Is(err, farmer.ErrNotPrimary) {
		t.Fatalf("un-promoted follower accepted a write: %v", err)
	}

	client.DropConn()
	if err := client.SeekWritable(ctx); err != nil {
		t.Fatalf("seekWritable with a promotable single address: %v", err)
	}
	// The success must mean a real server-side Promote, observable on a
	// connection that cannot promote anything itself.
	if err := rawFeed(t, addr); err != nil {
		t.Fatalf("seekWritable reported success but the follower still refuses writes: %v", err)
	}
}

// TestSeekWritableDroppedConnSweepsCurrentAddress: with the current
// connection down, the sweep must include the current address. Here only
// the current address (an orphaned follower) is promotable — the failover
// address follows a live primary and refuses via the split-brain guard —
// so the old start-at-the-next-address sweep fails outright.
func TestSeekWritableDroppedConnSweepsCurrentAddress(t *testing.T) {
	ctx := context.Background()
	cfg := farmer.DefaultConfig()

	orphan, err := farmer.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer orphan.Close()
	oAddr, oStop := startServe(t, orphan, farmer.ServeConfig{Follower: true})
	defer oStop()

	linked, err := farmer.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer linked.Close()
	lAddr, lStop := startServe(t, linked, farmer.ServeConfig{Follower: true})
	defer lStop()

	primary, err := farmer.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer primary.Close()
	pAddr, pStop := startServe(t, primary, farmer.ServeConfig{ReplicateTo: []string{lAddr}})
	defer pStop()

	// The primary's replication link pins `linked` un-promotable; prove the
	// link is up by feeding through the primary once.
	pc, err := farmer.Dial(ctx, pAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer pc.Close()
	if err := pc.Feed(ctx, &trace.Record{File: 2}); err != nil {
		t.Fatal(err)
	}

	client, err := farmer.Dial(ctx, oAddr, farmer.WithFailover(lAddr))
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	client.DropConn()
	if err := client.SeekWritable(ctx); err != nil {
		t.Fatalf("seekWritable skipped the only promotable address (the current one): %v", err)
	}
	if err := rawFeed(t, oAddr); err != nil {
		t.Fatalf("current-address follower was not actually promoted: %v", err)
	}
	if err := rawFeed(t, lAddr); !errors.Is(err, farmer.ErrNotPrimary) {
		t.Fatalf("split-brain guard should have held on the linked follower: %v", err)
	}
}
