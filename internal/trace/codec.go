package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"
)

// Text format: one record per line,
//
//	seq time_ns op file uid pid host dev size group path
//
// with path empty allowed (trailing field absent). A header line carries the
// trace metadata:
//
//	#farmer-trace v1 name=<name> files=<n> paths=<0|1>
const textMagic = "#farmer-trace v1"

// maxFileCount bounds the decoded FileCount header field. Consumers size
// loops and tables by it (store population, fingerprints, ground-truth
// maps), so a crafted header must not be able to demand billions of
// iterations before a single record has parsed. 1<<28 files is far beyond
// any trace this in-memory model can hold.
const maxFileCount = 1 << 28

// WriteText encodes the trace in the line-oriented text format.
func WriteText(w io.Writer, t *Trace) error {
	bw := bufio.NewWriter(w)
	pathFlag := 0
	if t.HasPaths {
		pathFlag = 1
	}
	if _, err := fmt.Fprintf(bw, "%s name=%s files=%d paths=%d\n", textMagic, t.Name, t.FileCount, pathFlag); err != nil {
		return err
	}
	for i := range t.Records {
		r := &t.Records[i]
		if _, err := fmt.Fprintf(bw, "%d %d %s %d %d %d %d %d %d %d %s\n",
			r.Seq, int64(r.Time), r.Op, r.File, r.UID, r.PID, r.Host, r.Dev, r.Size, r.Group, r.Path); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadText decodes a trace from the text format.
func ReadText(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	if !sc.Scan() {
		return nil, fmt.Errorf("trace: empty input: %w", sc.Err())
	}
	header := sc.Text()
	if !strings.HasPrefix(header, textMagic) {
		return nil, fmt.Errorf("trace: bad magic %q", header)
	}
	t := &Trace{}
	for _, kv := range strings.Fields(header[len(textMagic):]) {
		k, v, ok := strings.Cut(kv, "=")
		if !ok {
			return nil, fmt.Errorf("trace: bad header field %q", kv)
		}
		switch k {
		case "name":
			t.Name = v
		case "files":
			n, err := strconv.Atoi(v)
			if err != nil {
				return nil, fmt.Errorf("trace: bad files count: %w", err)
			}
			if n < 0 || n > maxFileCount {
				return nil, fmt.Errorf("trace: unreasonable file count %d", n)
			}
			t.FileCount = n
		case "paths":
			t.HasPaths = v == "1"
		}
	}
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		var rec Record
		fields := strings.SplitN(line, " ", 11)
		if len(fields) < 10 {
			return nil, fmt.Errorf("trace: short record %q", line)
		}
		var err error
		if rec.Seq, err = strconv.ParseUint(fields[0], 10, 64); err != nil {
			return nil, fmt.Errorf("trace: bad seq: %w", err)
		}
		ns, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: bad time: %w", err)
		}
		rec.Time = time.Duration(ns)
		if rec.Op, err = ParseOp(fields[2]); err != nil {
			return nil, err
		}
		u32 := func(s, what string) (uint32, error) {
			v, err := strconv.ParseUint(s, 10, 32)
			if err != nil {
				return 0, fmt.Errorf("trace: bad %s: %w", what, err)
			}
			return uint32(v), nil
		}
		var v uint32
		if v, err = u32(fields[3], "file"); err != nil {
			return nil, err
		}
		rec.File = FileID(v)
		if rec.UID, err = u32(fields[4], "uid"); err != nil {
			return nil, err
		}
		if rec.PID, err = u32(fields[5], "pid"); err != nil {
			return nil, err
		}
		if rec.Host, err = u32(fields[6], "host"); err != nil {
			return nil, err
		}
		if rec.Dev, err = u32(fields[7], "dev"); err != nil {
			return nil, err
		}
		if rec.Size, err = u32(fields[8], "size"); err != nil {
			return nil, err
		}
		g, err := strconv.ParseInt(fields[9], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("trace: bad group: %w", err)
		}
		rec.Group = int32(g)
		if len(fields) == 11 {
			rec.Path = fields[10]
		}
		t.Records = append(t.Records, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return t, nil
}

// Binary format: little-endian, length-prefixed strings.
//
//	magic u32 = 0x4641524D ("FARM"), version u32 = 1
//	nameLen u32, name, fileCount u32, hasPaths u8, recCount u64, records...
var binMagic = uint32(0x4641524D)

// MaxPathLen bounds a decoded record's path. It guards every consumer of
// the record codec (trace files and the rpc wire format alike) against a
// crafted length field demanding a huge allocation.
const MaxPathLen = 1 << 20

// AppendRecord appends the binary encoding of one record to dst — the exact
// per-record layout of WriteBinary, shared with the rpc wire format:
//
//	seq u64, time u64, op u8,
//	file u32, uid u32, pid u32, host u32, dev u32, size u32, group u32,
//	pathLen u32, path
func AppendRecord(dst []byte, r *Record) []byte {
	le := binary.LittleEndian
	dst = le.AppendUint64(dst, r.Seq)
	dst = le.AppendUint64(dst, uint64(r.Time))
	dst = append(dst, byte(r.Op))
	for _, v := range [...]uint32{uint32(r.File), r.UID, r.PID, r.Host, r.Dev, r.Size, uint32(r.Group)} {
		dst = le.AppendUint32(dst, v)
	}
	dst = le.AppendUint32(dst, uint32(len(r.Path)))
	return append(dst, r.Path...)
}

// RecordFixedLen is the length of a record's fixed-size encoded prefix —
// seq + time, op, seven u32 fields, and the path length — i.e. the minimum
// AppendRecord output. Consumers of the record codec (the rpc wire format)
// size batches and bound allocations with it.
const RecordFixedLen = 8 + 8 + 1 + 7*4 + 4

// ConsumeRecord decodes one AppendRecord encoding from the front of b and
// returns the remaining bytes.
func ConsumeRecord(b []byte) (Record, []byte, error) {
	var r Record
	if len(b) < RecordFixedLen {
		return r, nil, fmt.Errorf("trace: short record: %d bytes", len(b))
	}
	le := binary.LittleEndian
	r.Seq = le.Uint64(b[0:8])
	r.Time = time.Duration(le.Uint64(b[8:16]))
	r.Op = Op(b[16])
	r.File = FileID(le.Uint32(b[17:21]))
	r.UID = le.Uint32(b[21:25])
	r.PID = le.Uint32(b[25:29])
	r.Host = le.Uint32(b[29:33])
	r.Dev = le.Uint32(b[33:37])
	r.Size = le.Uint32(b[37:41])
	r.Group = int32(le.Uint32(b[41:45]))
	n := le.Uint32(b[45:49])
	if n > MaxPathLen {
		return r, nil, fmt.Errorf("trace: unreasonable path length %d", n)
	}
	b = b[RecordFixedLen:]
	if uint32(len(b)) < n {
		return r, nil, fmt.Errorf("trace: record path truncated: want %d bytes, have %d", n, len(b))
	}
	r.Path = string(b[:n])
	return r, b[n:], nil
}

// WriteBinary encodes the trace in the compact binary format.
func WriteBinary(w io.Writer, t *Trace) error {
	bw := bufio.NewWriter(w)
	le := binary.LittleEndian
	var scratch [8]byte
	putU32 := func(v uint32) error {
		le.PutUint32(scratch[:4], v)
		_, err := bw.Write(scratch[:4])
		return err
	}
	putU64 := func(v uint64) error {
		le.PutUint64(scratch[:8], v)
		_, err := bw.Write(scratch[:8])
		return err
	}
	putStr := func(s string) error {
		if err := putU32(uint32(len(s))); err != nil {
			return err
		}
		_, err := bw.WriteString(s)
		return err
	}
	if err := putU32(binMagic); err != nil {
		return err
	}
	if err := putU32(1); err != nil {
		return err
	}
	if err := putStr(t.Name); err != nil {
		return err
	}
	if err := putU32(uint32(t.FileCount)); err != nil {
		return err
	}
	hp := byte(0)
	if t.HasPaths {
		hp = 1
	}
	if err := bw.WriteByte(hp); err != nil {
		return err
	}
	if err := putU64(uint64(len(t.Records))); err != nil {
		return err
	}
	var rec []byte
	for i := range t.Records {
		rec = AppendRecord(rec[:0], &t.Records[i])
		if _, err := bw.Write(rec); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadBinary decodes a trace written by WriteBinary.
func ReadBinary(r io.Reader) (*Trace, error) {
	br := bufio.NewReader(r)
	le := binary.LittleEndian
	var scratch [8]byte
	getU32 := func() (uint32, error) {
		if _, err := io.ReadFull(br, scratch[:4]); err != nil {
			return 0, err
		}
		return le.Uint32(scratch[:4]), nil
	}
	getU64 := func() (uint64, error) {
		if _, err := io.ReadFull(br, scratch[:8]); err != nil {
			return 0, err
		}
		return le.Uint64(scratch[:8]), nil
	}
	getStr := func() (string, error) {
		n, err := getU32()
		if err != nil {
			return "", err
		}
		if n > 1<<20 {
			return "", fmt.Errorf("trace: unreasonable string length %d", n)
		}
		b := make([]byte, n)
		if _, err := io.ReadFull(br, b); err != nil {
			return "", err
		}
		return string(b), nil
	}
	m, err := getU32()
	if err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	if m != binMagic {
		return nil, fmt.Errorf("trace: bad binary magic %#x", m)
	}
	ver, err := getU32()
	if err != nil {
		return nil, err
	}
	if ver != 1 {
		return nil, fmt.Errorf("trace: unsupported version %d", ver)
	}
	t := &Trace{}
	if t.Name, err = getStr(); err != nil {
		return nil, err
	}
	fc, err := getU32()
	if err != nil {
		return nil, err
	}
	if fc > maxFileCount {
		return nil, fmt.Errorf("trace: unreasonable file count %d", fc)
	}
	t.FileCount = int(fc)
	hp, err := br.ReadByte()
	if err != nil {
		return nil, err
	}
	t.HasPaths = hp == 1
	n, err := getU64()
	if err != nil {
		return nil, err
	}
	if n > 1<<32 {
		return nil, fmt.Errorf("trace: unreasonable record count %d", n)
	}
	if n > 0 {
		// Cap the up-front allocation: a hostile or corrupt header must not
		// be able to demand a huge buffer before a single record has parsed
		// (found by FuzzCodec — a flipped count field cost ~90MB per decode
		// attempt). Larger traces grow via amortized append as records
		// actually arrive.
		pre := n
		if pre > 4096 {
			pre = 4096
		}
		t.Records = make([]Record, 0, pre)
	}
	for i := uint64(0); i < n; i++ {
		var rec Record
		if rec.Seq, err = getU64(); err != nil {
			return nil, fmt.Errorf("trace: record %d: %w", i, err)
		}
		tm, err := getU64()
		if err != nil {
			return nil, err
		}
		rec.Time = time.Duration(tm)
		op, err := br.ReadByte()
		if err != nil {
			return nil, err
		}
		rec.Op = Op(op)
		var vals [7]uint32
		for j := range vals {
			if vals[j], err = getU32(); err != nil {
				return nil, err
			}
		}
		rec.File = FileID(vals[0])
		rec.UID, rec.PID, rec.Host, rec.Dev, rec.Size = vals[1], vals[2], vals[3], vals[4], vals[5]
		rec.Group = int32(vals[6])
		if rec.Path, err = getStr(); err != nil {
			return nil, err
		}
		t.Records = append(t.Records, rec)
	}
	return t, nil
}
