package trace_test

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"farmer/internal/trace"
	"farmer/internal/tracegen"
)

// maxBinString mirrors the binary codec's per-string sanity bound: traces
// holding longer names/paths (only reachable via hand-built or text input)
// are not binary-representable.
const maxBinString = 1 << 20

func binarySafe(t *trace.Trace) bool {
	if len(t.Name) > maxBinString {
		return false
	}
	for i := range t.Records {
		if len(t.Records[i].Path) > maxBinString {
			return false
		}
	}
	return true
}

// textSafe reports whether the trace survives the line-oriented text
// framing: whitespace-free name, named ops, and paths without line breaks.
func textSafe(t *trace.Trace) bool {
	if strings.ContainsAny(t.Name, " \t\n\r\v\f") {
		return false
	}
	for i := range t.Records {
		r := &t.Records[i]
		if _, err := trace.ParseOp(r.Op.String()); err != nil {
			return false
		}
		if strings.ContainsAny(r.Path, "\n\r") {
			return false
		}
	}
	return true
}

func roundTripBinary(t *testing.T, tr *trace.Trace) {
	t.Helper()
	var buf bytes.Buffer
	if err := trace.WriteBinary(&buf, tr); err != nil {
		t.Fatalf("WriteBinary on decoded trace: %v", err)
	}
	first := append([]byte(nil), buf.Bytes()...)
	got, err := trace.ReadBinary(&buf)
	if err != nil {
		t.Fatalf("ReadBinary on re-encoded trace: %v", err)
	}
	if !reflect.DeepEqual(tr, got) {
		t.Fatalf("binary round trip diverged:\n first %+v\nsecond %+v", tr, got)
	}
	var again bytes.Buffer
	if err := trace.WriteBinary(&again, got); err != nil {
		t.Fatalf("re-encode: %v", err)
	}
	if !bytes.Equal(first, again.Bytes()) {
		t.Fatal("binary encoding is not deterministic")
	}
}

func roundTripText(t *testing.T, tr *trace.Trace) {
	t.Helper()
	var buf bytes.Buffer
	if err := trace.WriteText(&buf, tr); err != nil {
		t.Fatalf("WriteText on decoded trace: %v", err)
	}
	got, err := trace.ReadText(&buf)
	if err != nil {
		t.Fatalf("ReadText on re-encoded trace: %v", err)
	}
	if !reflect.DeepEqual(tr, got) {
		t.Fatalf("text round trip diverged:\n first %+v\nsecond %+v", tr, got)
	}
}

// FuzzCodec feeds arbitrary bytes to both trace codecs. Whatever either
// decoder accepts must survive a write/read round trip bit-identically (and
// cross over to the other codec when the trace is representable there).
// The seed corpus is real generator output from all four paper workload
// profiles, in both encodings.
func FuzzCodec(f *testing.F) {
	// Small per-profile seeds keep mutation throughput high; coverage of the
	// record-level encoding does not need long traces.
	for _, p := range tracegen.Profiles(60) {
		tr, err := p.Generate()
		if err != nil {
			f.Fatal(err)
		}
		var bin, txt bytes.Buffer
		if err := trace.WriteBinary(&bin, tr); err != nil {
			f.Fatal(err)
		}
		if err := trace.WriteText(&txt, tr); err != nil {
			f.Fatal(err)
		}
		f.Add(bin.Bytes())
		f.Add(txt.Bytes())
	}
	f.Add([]byte("#farmer-trace v1 name=x files=1 paths=0\n0 0 open 0 1 2 3 0 64 -1\n"))
	f.Add([]byte{0x4D, 0x52, 0x41, 0x46}) // binary magic, truncated
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		if tr, err := trace.ReadBinary(bytes.NewReader(data)); err == nil {
			roundTripBinary(t, tr)
			if textSafe(tr) {
				roundTripText(t, tr)
			}
		}
		if tr, err := trace.ReadText(bytes.NewReader(data)); err == nil {
			if textSafe(tr) {
				roundTripText(t, tr)
			}
			if binarySafe(tr) {
				roundTripBinary(t, tr)
			}
		}
	})
}

// TestReadBinaryRejectsHugeFileCount pins the header sanity bound: a
// crafted file-count field must fail decode instead of driving consumers
// (store population, fingerprints) through billions of iterations.
func TestReadBinaryRejectsHugeFileCount(t *testing.T) {
	var buf bytes.Buffer
	if err := trace.WriteBinary(&buf, &trace.Trace{Name: ""}); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// Layout with an empty name: magic(4) version(4) nameLen(4) fileCount(4).
	for i := 12; i < 16; i++ {
		data[i] = 0xFF
	}
	if _, err := trace.ReadBinary(bytes.NewReader(data)); err == nil {
		t.Fatal("ReadBinary accepted FileCount 0xFFFFFFFF")
	}
}

func TestReadTextRejectsHugeFileCount(t *testing.T) {
	for _, files := range []string{"4294967295", "-1", "99999999999999"} {
		in := "#farmer-trace v1 name=x files=" + files + " paths=0\n"
		if _, err := trace.ReadText(strings.NewReader(in)); err == nil {
			t.Fatalf("ReadText accepted files=%s", files)
		}
	}
}
