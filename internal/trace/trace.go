// Package trace defines the file-access trace model shared by the workload
// generators, the FARMER miner, the baseline predictors and the storage
// simulator. A trace is an ordered sequence of Records, each describing one
// file request together with the semantic attributes the paper mines: user,
// process, host and the file path (HP/LLNL-style traces) or file/device ids
// (INS/RES-style traces).
package trace

import (
	"fmt"
	"strings"
	"time"
)

// FileID identifies a file within a trace. IDs are dense and start at 0 so
// they can index slices.
type FileID uint32

// NoFile is the sentinel for "no file".
const NoFile = FileID(0xFFFFFFFF)

// Op is the file operation recorded.
type Op uint8

// Operations. The experiments only distinguish metadata-relevant classes.
const (
	OpOpen Op = iota
	OpRead
	OpWrite
	OpClose
	OpStat
	OpCreate
	OpUnlink
	numOps
)

var opNames = [...]string{"open", "read", "write", "close", "stat", "create", "unlink"}

// String returns the lowercase operation name.
func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// ParseOp converts an operation name back to an Op.
func ParseOp(s string) (Op, error) {
	for i, n := range opNames {
		if n == s {
			return Op(i), nil
		}
	}
	return 0, fmt.Errorf("trace: unknown op %q", s)
}

// Record is a single file request.
type Record struct {
	Seq  uint64        // position within the trace, 0-based
	Time time.Duration // offset from trace start
	File FileID
	Op   Op

	// Semantic attributes (paper §2, §3.2.1).
	UID  uint32 // user id
	PID  uint32 // process id
	Host uint32 // host / machine id
	Dev  uint32 // device id (INS/RES); zero when unused
	Path string // full file path (HP/LLNL); empty when the trace lacks paths

	// Size of the request in bytes (for data-path experiments).
	Size uint32

	// Group is generator ground truth: the correlation-group id this access
	// belongs to, or -1 for background noise. It is never visible to miners;
	// it exists so experiments can score prediction accuracy against truth.
	Group int32
}

// HasPath reports whether the record carries full path information.
func (r *Record) HasPath() bool { return r.Path != "" }

// Dir returns the directory portion of Path ("" when no path).
func (r *Record) Dir() string {
	if r.Path == "" {
		return ""
	}
	i := strings.LastIndexByte(r.Path, '/')
	if i <= 0 {
		return "/"
	}
	return r.Path[:i]
}

// Base returns the final path element ("" when no path).
func (r *Record) Base() string {
	if r.Path == "" {
		return ""
	}
	i := strings.LastIndexByte(r.Path, '/')
	return r.Path[i+1:]
}

// Trace is an in-memory trace plus its schema metadata.
type Trace struct {
	Name    string
	Records []Record

	// FileCount is 1 + the maximum FileID present (dense id space).
	FileCount int

	// HasPaths records whether this workload exposes full path attributes
	// (true for HP/LLNL profiles, false for INS/RES).
	HasPaths bool

	// Paths maps FileID -> canonical path for workloads with paths. Empty
	// otherwise.
	Paths []string
}

// Validate checks internal consistency: sequential Seq, monotone Time, file
// ids within range.
func (t *Trace) Validate() error {
	var last time.Duration
	for i := range t.Records {
		r := &t.Records[i]
		if r.Seq != uint64(i) {
			return fmt.Errorf("trace %s: record %d has Seq %d", t.Name, i, r.Seq)
		}
		if r.Time < last {
			return fmt.Errorf("trace %s: record %d time %v before %v", t.Name, i, r.Time, last)
		}
		last = r.Time
		if r.File == NoFile || int(r.File) >= t.FileCount {
			return fmt.Errorf("trace %s: record %d file %d out of range [0,%d)", t.Name, i, r.File, t.FileCount)
		}
		if t.HasPaths && r.Path == "" {
			return fmt.Errorf("trace %s: record %d missing path", t.Name, i)
		}
	}
	return nil
}

// Len reports the number of records.
func (t *Trace) Len() int { return len(t.Records) }

// Clone deep-copies the trace.
func (t *Trace) Clone() *Trace {
	c := &Trace{Name: t.Name, FileCount: t.FileCount, HasPaths: t.HasPaths}
	c.Records = append([]Record(nil), t.Records...)
	c.Paths = append([]string(nil), t.Paths...)
	return c
}

// Slice returns a shallow view of records [lo, hi).
func (t *Trace) Slice(lo, hi int) []Record {
	if lo < 0 {
		lo = 0
	}
	if hi > len(t.Records) {
		hi = len(t.Records)
	}
	if lo >= hi {
		return nil
	}
	return t.Records[lo:hi]
}
