package trace

import (
	"bytes"
	"math/rand/v2"
	"reflect"
	"testing"
	"testing/quick"
	"time"
)

func sampleTrace() *Trace {
	t := &Trace{Name: "sample", FileCount: 4, HasPaths: true}
	paths := []string{"/home/a/x", "/home/a/y", "/var/log/z", "/tmp/w"}
	for i := 0; i < 8; i++ {
		t.Records = append(t.Records, Record{
			Seq:   uint64(i),
			Time:  time.Duration(i) * time.Millisecond,
			File:  FileID(i % 4),
			Op:    Op(i % int(numOps)),
			UID:   uint32(i % 2),
			PID:   uint32(100 + i%3),
			Host:  uint32(i % 2),
			Dev:   uint32(7),
			Size:  uint32(i * 512),
			Group: int32(i%2) - 1,
			Path:  paths[i%4],
		})
	}
	return t
}

func TestValidateOK(t *testing.T) {
	tr := sampleTrace()
	if err := tr.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestValidateCatchesBadSeq(t *testing.T) {
	tr := sampleTrace()
	tr.Records[3].Seq = 99
	if tr.Validate() == nil {
		t.Fatal("bad Seq not detected")
	}
}

func TestValidateCatchesTimeRegression(t *testing.T) {
	tr := sampleTrace()
	tr.Records[5].Time = 0
	if tr.Validate() == nil {
		t.Fatal("time regression not detected")
	}
}

func TestValidateCatchesFileRange(t *testing.T) {
	tr := sampleTrace()
	tr.Records[2].File = 100
	if tr.Validate() == nil {
		t.Fatal("out-of-range file not detected")
	}
}

func TestValidateCatchesMissingPath(t *testing.T) {
	tr := sampleTrace()
	tr.Records[1].Path = ""
	if tr.Validate() == nil {
		t.Fatal("missing path not detected")
	}
}

func TestOpRoundTrip(t *testing.T) {
	for o := Op(0); o < numOps; o++ {
		got, err := ParseOp(o.String())
		if err != nil {
			t.Fatalf("ParseOp(%q): %v", o.String(), err)
		}
		if got != o {
			t.Fatalf("op %v round-tripped to %v", o, got)
		}
	}
	if _, err := ParseOp("fsync"); err == nil {
		t.Fatal("unknown op accepted")
	}
}

func TestDirBase(t *testing.T) {
	cases := []struct{ path, dir, base string }{
		{"/home/user1/paper/a", "/home/user1/paper", "a"},
		{"/a", "/", "a"},
		{"", "", ""},
	}
	for _, c := range cases {
		r := Record{Path: c.path}
		if got := r.Dir(); got != c.dir {
			t.Errorf("Dir(%q) = %q, want %q", c.path, got, c.dir)
		}
		if got := r.Base(); got != c.base {
			t.Errorf("Base(%q) = %q, want %q", c.path, got, c.base)
		}
	}
}

func TestTextRoundTrip(t *testing.T) {
	tr := sampleTrace()
	var buf bytes.Buffer
	if err := WriteText(&buf, tr); err != nil {
		t.Fatalf("WriteText: %v", err)
	}
	got, err := ReadText(&buf)
	if err != nil {
		t.Fatalf("ReadText: %v", err)
	}
	if !reflect.DeepEqual(tr.Records, got.Records) {
		t.Fatalf("records differ\nwant %+v\ngot  %+v", tr.Records[0], got.Records[0])
	}
	if got.Name != tr.Name || got.FileCount != tr.FileCount || got.HasPaths != tr.HasPaths {
		t.Fatalf("metadata differs: %+v", got)
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	tr := sampleTrace()
	var buf bytes.Buffer
	if err := WriteBinary(&buf, tr); err != nil {
		t.Fatalf("WriteBinary: %v", err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatalf("ReadBinary: %v", err)
	}
	if !reflect.DeepEqual(tr.Records, got.Records) {
		t.Fatal("records differ after binary round trip")
	}
}

func TestBinaryRejectsGarbage(t *testing.T) {
	if _, err := ReadBinary(bytes.NewReader([]byte{1, 2, 3, 4, 5, 6, 7, 8})); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestTextRejectsGarbage(t *testing.T) {
	if _, err := ReadText(bytes.NewReader([]byte("not a trace\n"))); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestCodecRoundTripProperty(t *testing.T) {
	f := func(seed uint64, n uint8) bool {
		rng := rand.New(rand.NewPCG(seed, 42))
		tr := &Trace{Name: "prop", FileCount: 16, HasPaths: false}
		for i := 0; i < int(n); i++ {
			tr.Records = append(tr.Records, Record{
				Seq:   uint64(i),
				Time:  time.Duration(i) * time.Microsecond,
				File:  FileID(rng.IntN(16)),
				Op:    Op(rng.IntN(int(numOps))),
				UID:   rng.Uint32(),
				PID:   rng.Uint32(),
				Host:  rng.Uint32(),
				Dev:   rng.Uint32(),
				Size:  rng.Uint32(),
				Group: int32(rng.IntN(10)) - 1,
			})
		}
		var b1, b2 bytes.Buffer
		if err := WriteText(&b1, tr); err != nil {
			return false
		}
		if err := WriteBinary(&b2, tr); err != nil {
			return false
		}
		t1, err := ReadText(&b1)
		if err != nil {
			return false
		}
		t2, err := ReadBinary(&b2)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(tr.Records, t1.Records) && reflect.DeepEqual(tr.Records, t2.Records)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestSummarize(t *testing.T) {
	tr := sampleTrace()
	s := Summarize(tr)
	if s.Records != 8 || s.Files != 4 {
		t.Fatalf("Summarize basic counts wrong: %+v", s)
	}
	if s.Users != 2 || s.Processes != 3 || s.Hosts != 2 {
		t.Fatalf("Summarize attribute counts wrong: %+v", s)
	}
	if s.Groups != 1 { // groups -1 (noise) and 0; only 0 counts
		t.Fatalf("Groups = %d, want 1", s.Groups)
	}
}

// TestSuccessorProbabilityConditioning builds a trace where two processes
// each access a perfectly regular cycle, but the global interleaving destroys
// the pattern. Conditioning on PID must recover probability 1.0 while the
// unconditioned stream stays low — this is the paper's Fig. 1 argument in
// miniature.
func TestSuccessorProbabilityConditioning(t *testing.T) {
	tr := &Trace{Name: "cond", FileCount: 6}
	seqA := []FileID{0, 1, 2}
	seqB := []FileID{3, 4, 5}
	rng := rand.New(rand.NewPCG(7, 7))
	var seq uint64
	add := func(f FileID, pid uint32) {
		tr.Records = append(tr.Records, Record{Seq: seq, Time: time.Duration(seq), File: f, PID: pid})
		seq++
	}
	ai, bi := 0, 0
	for i := 0; i < 600; i++ {
		if rng.IntN(2) == 0 {
			add(seqA[ai%3], 1)
			ai++
		} else {
			add(seqB[bi%3], 2)
			bi++
		}
	}
	pPID := SuccessorProbability(tr, KeyPID)
	pNone := SuccessorProbability(tr, KeyNone)
	if pPID < 0.99 {
		t.Fatalf("PID-conditioned probability = %v, want ~1", pPID)
	}
	if pNone > 0.8 {
		t.Fatalf("unconditioned probability = %v, want well below 1", pNone)
	}
	if pNone >= pPID {
		t.Fatalf("conditioning did not help: none=%v pid=%v", pNone, pPID)
	}
}

func TestSuccessorProbabilityEmpty(t *testing.T) {
	if p := SuccessorProbability(&Trace{}, KeyNone); p != 0 {
		t.Fatalf("empty trace probability = %v, want 0", p)
	}
}

func TestTopFiles(t *testing.T) {
	tr := &Trace{Name: "top", FileCount: 3}
	for i, f := range []FileID{0, 1, 1, 2, 2, 2} {
		tr.Records = append(tr.Records, Record{Seq: uint64(i), File: f})
	}
	top := TopFiles(tr, 2)
	if len(top) != 2 || top[0].File != 2 || top[0].Count != 3 || top[1].File != 1 {
		t.Fatalf("TopFiles wrong: %+v", top)
	}
}

func TestCloneIndependence(t *testing.T) {
	tr := sampleTrace()
	c := tr.Clone()
	c.Records[0].File = 3
	if tr.Records[0].File == 3 {
		t.Fatal("Clone shares record storage")
	}
}

func TestSlice(t *testing.T) {
	tr := sampleTrace()
	if got := tr.Slice(-5, 3); len(got) != 3 {
		t.Fatalf("Slice(-5,3) len = %d", len(got))
	}
	if got := tr.Slice(6, 100); len(got) != 2 {
		t.Fatalf("Slice(6,100) len = %d", len(got))
	}
	if got := tr.Slice(5, 5); got != nil {
		t.Fatalf("empty slice not nil")
	}
}

func TestKeyDirConditioning(t *testing.T) {
	a := Record{Path: "/home/u/proj/f1"}
	b := Record{Path: "/home/u/proj/f2"}
	c := Record{Path: "/var/log/syslog"}
	if KeyDir(&a) != KeyDir(&b) {
		t.Fatal("same-directory records keyed differently")
	}
	if KeyDir(&a) == KeyDir(&c) {
		t.Fatal("distinct directories collided")
	}
}

func TestSuccessorProbabilitySelfRepeats(t *testing.T) {
	tr := &Trace{Name: "rep", FileCount: 2}
	for i := 0; i < 10; i++ {
		tr.Records = append(tr.Records, Record{Seq: uint64(i), File: FileID(i % 2)})
	}
	p := SuccessorProbability(tr, KeyNone)
	if p < 0.99 {
		t.Fatalf("alternating trace probability = %v, want ~1", p)
	}
}
