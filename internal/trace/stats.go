package trace

import (
	"fmt"
	"sort"
)

// Stats summarises a trace for reporting and for the Fig.-1 style analysis.
type Stats struct {
	Records   int
	Files     int
	Users     int
	Processes int
	Hosts     int
	Devices   int
	Groups    int
	OpCounts  [numOps]uint64
}

// Summarize scans the trace once and collects the Stats.
func Summarize(t *Trace) Stats {
	var s Stats
	s.Records = len(t.Records)
	s.Files = t.FileCount
	uids := map[uint32]struct{}{}
	pids := map[uint32]struct{}{}
	hosts := map[uint32]struct{}{}
	devs := map[uint32]struct{}{}
	groups := map[int32]struct{}{}
	for i := range t.Records {
		r := &t.Records[i]
		uids[r.UID] = struct{}{}
		pids[r.PID] = struct{}{}
		hosts[r.Host] = struct{}{}
		devs[r.Dev] = struct{}{}
		if r.Group >= 0 {
			groups[r.Group] = struct{}{}
		}
		if int(r.Op) < len(s.OpCounts) {
			s.OpCounts[r.Op]++
		}
	}
	s.Users = len(uids)
	s.Processes = len(pids)
	s.Hosts = len(hosts)
	s.Devices = len(devs)
	s.Groups = len(groups)
	return s
}

// String renders a one-line summary.
func (s Stats) String() string {
	return fmt.Sprintf("records=%d files=%d users=%d procs=%d hosts=%d groups=%d",
		s.Records, s.Files, s.Users, s.Processes, s.Hosts, s.Groups)
}

// AttrKey selects the attribute-conditioning used by SuccessorProbability:
// successor statistics are tracked separately per distinct key value, which is
// how the paper "filters out unrelated access sequences" (§2.2).
type AttrKey func(*Record) uint64

// Conditioning keys for the Fig. 1 experiment.
var (
	// KeyNone puts every access in a single stream (no filtering).
	KeyNone AttrKey = func(*Record) uint64 { return 0 }
	// KeyUID conditions on the user id.
	KeyUID AttrKey = func(r *Record) uint64 { return uint64(r.UID) }
	// KeyPID conditions on the process id.
	KeyPID AttrKey = func(r *Record) uint64 { return uint64(r.PID) }
	// KeyHost conditions on the host id.
	KeyHost AttrKey = func(r *Record) uint64 { return uint64(r.Host) }
	// KeyUIDPID conditions on the (user, process) pair.
	KeyUIDPID AttrKey = func(r *Record) uint64 { return uint64(r.UID)<<32 | uint64(r.PID) }
)

// KeyDir conditions on the file's directory (hashed); usable only on traces
// with paths.
func KeyDir(r *Record) uint64 {
	return hashString(r.Dir())
}

func hashString(s string) uint64 {
	// FNV-1a.
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// SuccessorProbability computes the paper's §2.2 statistic: split the trace
// into per-key sub-sequences, record each file's immediate successor within
// its sub-sequence, and return the mean probability that a file is followed
// by its most frequent successor. A higher value means the conditioning
// attribute exposes stronger sequential regularity.
func SuccessorProbability(t *Trace, key AttrKey) float64 {
	type edgeCount map[FileID]int
	last := map[uint64]FileID{}    // key -> previous file in that stream
	succ := map[FileID]edgeCount{} // file -> successor -> count
	totals := map[FileID]int{}     // file -> total successor observations
	for i := range t.Records {
		r := &t.Records[i]
		k := key(r)
		if prev, ok := last[k]; ok && prev != r.File {
			ec := succ[prev]
			if ec == nil {
				ec = edgeCount{}
				succ[prev] = ec
			}
			ec[r.File]++
			totals[prev]++
		}
		last[k] = r.File
	}
	if len(succ) == 0 {
		return 0
	}
	var sum float64
	var n int
	for f, ec := range succ {
		best := 0
		for _, c := range ec {
			if c > best {
				best = c
			}
		}
		tot := totals[f]
		if tot == 0 {
			continue
		}
		sum += float64(best) / float64(tot)
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// TopFiles returns the n most frequently accessed files with their counts,
// sorted by decreasing count then increasing id.
func TopFiles(t *Trace, n int) []struct {
	File  FileID
	Count int
} {
	counts := make(map[FileID]int)
	for i := range t.Records {
		counts[t.Records[i].File]++
	}
	out := make([]struct {
		File  FileID
		Count int
	}, 0, len(counts))
	for f, c := range counts {
		out = append(out, struct {
			File  FileID
			Count int
		}{f, c})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].File < out[j].File
	})
	if n < len(out) {
		out = out[:n]
	}
	return out
}
