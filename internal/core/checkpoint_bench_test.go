package core

import (
	"testing"

	"farmer/internal/kvstore"
	"farmer/internal/tracegen"
	"farmer/internal/vsm"
)

// Checkpoint cost, full rewrite vs incremental delta, on the same mined
// ensemble. The custom metrics surface the store-level cost (what actually
// hits the WAL) next to the wall-clock cost: an incremental checkpoint's
// puts/op and ckpt-B/op track the dirty set, the full rewrite's track the
// model.

func benchCheckpointModel(b *testing.B) *ShardedModel {
	b.Helper()
	tr := tracegen.HP(20000).MustGenerate()
	cfg := DefaultConfig()
	cfg.Mask = vsm.DefaultMask(true)
	cfg.Shards = 2
	sm := NewSharded(cfg)
	sm.FeedBatch(tr.Records)
	return sm
}

func BenchmarkCheckpointSaveFull(b *testing.B) {
	sm := benchCheckpointModel(b)
	s, err := kvstore.Open("")
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	b.ReportAllocs()
	b.ResetTimer()
	var cost kvstore.WriteStats
	for i := 0; i < b.N; i++ {
		pre := s.WriteStats()
		if err := sm.SaveMerged(s); err != nil {
			b.Fatal(err)
		}
		cost = statsDelta(pre, s.WriteStats())
	}
	b.ReportMetric(float64(cost.Bytes), "ckpt-B/op")
	b.ReportMetric(float64(cost.Puts), "puts/op")
}

func BenchmarkCheckpointSaveIncremental(b *testing.B) {
	sm := benchCheckpointModel(b)
	tr := tracegen.HP(20000).MustGenerate()
	s, err := kvstore.Open("")
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	if err := sm.SaveMerged(s); err != nil {
		b.Fatal(err) // bind dirty tracking to the store
	}
	b.ReportAllocs()
	b.ResetTimer()
	var cost kvstore.WriteStats
	for i := 0; i < b.N; i++ {
		// Dirty a small working set between checkpoints; the refeed is the
		// workload's cost, not the checkpoint's, so it runs off the clock.
		b.StopTimer()
		sm.FeedBatch(tr.Records[(i*32)%(len(tr.Records)-32) : (i*32)%(len(tr.Records)-32)+32])
		b.StartTimer()
		pre := s.WriteStats()
		inc, err := sm.SaveCheckpoint(s)
		if err != nil {
			b.Fatal(err)
		}
		if !inc {
			b.Fatal("checkpoint fell back to a full rewrite")
		}
		cost = statsDelta(pre, s.WriteStats())
	}
	b.ReportMetric(float64(cost.Bytes), "ckpt-B/op")
	b.ReportMetric(float64(cost.Puts), "puts/op")
}
