package core

import (
	"sync"
	"testing"

	"farmer/internal/trace"
)

// collectTap drains every shard channel concurrently until closed and
// returns the per-shard event sequences.
func collectTap(tap *EventTap) [][]TapEvent {
	out := make([][]TapEvent, tap.Shards())
	var wg sync.WaitGroup
	for i := 0; i < tap.Shards(); i++ {
		wg.Add(1)
		go func(shard int) {
			defer wg.Done()
			for ev := range tap.Chan(shard) {
				out[shard] = append(out[shard], ev)
			}
		}(i)
	}
	wg.Wait()
	return out
}

// TestTapOrderedDelivery checks the core delivery contract: every ingested
// record produces exactly one event, on the channel of the shard owning the
// file, in global stream order within each channel — through both the
// streaming Feed path and the batch path.
func TestTapOrderedDelivery(t *testing.T) {
	tr := shardTrace(t, 3000)
	for _, shards := range []int{1, 4} {
		for _, batch := range []bool{false, true} {
			cfg := DefaultConfig()
			cfg.Shards = shards
			sm := NewSharded(cfg)
			// Buffer big enough that nothing is ever dropped.
			tap := sm.Tap(len(tr.Records) + 1)
			if batch {
				sm.FeedTraceParallel(tr)
			} else {
				for i := range tr.Records {
					sm.Feed(&tr.Records[i])
				}
			}
			tap.Close()
			got := collectTap(tap)

			if d := tap.Dropped(); d != 0 {
				t.Fatalf("shards=%d batch=%v: %d events dropped with oversized buffer", shards, batch, d)
			}
			// Reconstruct the expected per-shard subsequences from the trace.
			want := make([][]TapEvent, shards)
			for i := range tr.Records {
				f := tr.Records[i].File
				sh := shardOf(f, shards)
				want[sh] = append(want[sh], TapEvent{Seq: uint64(i + 1), File: f, Shard: sh})
			}
			for sh := 0; sh < shards; sh++ {
				if len(got[sh]) != len(want[sh]) {
					t.Fatalf("shards=%d batch=%v shard %d: %d events, want %d",
						shards, batch, sh, len(got[sh]), len(want[sh]))
				}
				for i := range got[sh] {
					if got[sh][i] != want[sh][i] {
						t.Fatalf("shards=%d batch=%v shard %d event %d: %+v, want %+v",
							shards, batch, sh, i, got[sh][i], want[sh][i])
					}
				}
			}
		}
	}
}

// TestTapDropOldest fills an unconsumed bounded tap and checks drop-oldest
// semantics: the channel retains the newest events and the drop counter
// accounts exactly for the evicted prefix.
func TestTapDropOldest(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Shards = 1
	sm := NewSharded(cfg)
	const buffer, n = 4, 20
	tap := sm.Tap(buffer)
	r := trace.Record{File: 1, Path: "/a/b"}
	for i := 0; i < n; i++ {
		sm.Feed(&r)
	}
	if got, want := tap.Dropped(), uint64(n-buffer); got != want {
		t.Fatalf("dropped = %d, want %d", got, want)
	}
	if got, want := tap.DroppedShard(0), uint64(n-buffer); got != want {
		t.Fatalf("DroppedShard(0) = %d, want %d", got, want)
	}
	tap.Close()
	var seqs []uint64
	for ev := range tap.Chan(0) {
		seqs = append(seqs, ev.Seq)
	}
	if len(seqs) != buffer {
		t.Fatalf("retained %d events, want %d", len(seqs), buffer)
	}
	for i, s := range seqs {
		if want := uint64(n - buffer + i + 1); s != want {
			t.Fatalf("retained seq[%d] = %d, want %d (drop-oldest keeps the newest)", i, s, want)
		}
	}
}

// TestTapCloseDrains checks the shutdown protocol: Close is idempotent,
// terminates consumer range loops after the queued events drain, and
// ingestion continues safely (and silently) with no registered taps.
func TestTapCloseDrains(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Shards = 2
	sm := NewSharded(cfg)
	tap := sm.Tap(64)
	tr := shardTrace(t, 200)
	sm.FeedBatch(tr.Records[:100])
	tap.Close()
	tap.Close() // idempotent
	got := collectTap(tap)
	total := 0
	for _, evs := range got {
		total += len(evs)
	}
	if total+int(tap.Dropped()) != 100 {
		t.Fatalf("drained %d + dropped %d events, want 100 total", total, tap.Dropped())
	}
	// Feeding after Close must not panic or deliver anywhere.
	sm.FeedBatch(tr.Records[100:])
	if sm.Fed() != 200 {
		t.Fatalf("fed = %d, want 200", sm.Fed())
	}
}

// TestTapConcurrentFeedSingleShard hammers the Shards=1 streaming path from
// many goroutines with a tap attached: delivered sequence numbers must stay
// strictly increasing and unique on the channel (the single-publisher FIFO
// invariant), and consumed + dropped must account for every record.
func TestTapConcurrentFeedSingleShard(t *testing.T) {
	tr := shardTrace(t, 2000)
	cfg := DefaultConfig()
	cfg.Shards = 1
	sm := NewSharded(cfg)
	tap := sm.Tap(64)

	var seqs []uint64
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		for ev := range tap.Chan(0) {
			seqs = append(seqs, ev.Seq)
		}
	}()

	const feeders = 4
	var wg sync.WaitGroup
	for g := 0; g < feeders; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := g; i < len(tr.Records); i += feeders {
				sm.Feed(&tr.Records[i])
			}
		}(g)
	}
	wg.Wait()
	tap.Close()
	<-drained

	if uint64(len(seqs))+tap.Dropped() != uint64(len(tr.Records)) {
		t.Fatalf("consumed %d + dropped %d != %d records", len(seqs), tap.Dropped(), len(tr.Records))
	}
	for i := 1; i < len(seqs); i++ {
		if seqs[i] <= seqs[i-1] {
			t.Fatalf("sequence not strictly increasing at %d: %d after %d", i, seqs[i], seqs[i-1])
		}
	}
}

// TestTapConcurrentCloseUnderIngest closes a consuming tap in the middle of
// a batch ingest; under -race this exercises the publisher/Close handshake.
func TestTapConcurrentCloseUnderIngest(t *testing.T) {
	tr := shardTrace(t, 5000)
	cfg := DefaultConfig()
	cfg.Shards = 4
	sm := NewSharded(cfg)
	tap := sm.Tap(8)
	var wg sync.WaitGroup
	seen := make(chan int, tap.Shards())
	for i := 0; i < tap.Shards(); i++ {
		wg.Add(1)
		go func(shard int) {
			defer wg.Done()
			n := 0
			for range tap.Chan(shard) {
				n++
				if n == 10 && shard == 0 {
					tap.Close() // mid-stream shutdown from a consumer
				}
			}
			seen <- n
		}(i)
	}
	sm.FeedTraceParallel(tr)
	// The mid-stream Close usually fired from the shard-0 consumer above;
	// on a starved (single-CPU, loaded) runner that consumer may have seen
	// fewer than 10 events, so close unconditionally — Close is idempotent
	// — or the consumers would range forever.
	tap.Close()
	wg.Wait()
	close(seen)
	total := 0
	for n := range seen {
		total += n
	}
	if total == 0 {
		t.Fatal("consumers saw no events before shutdown")
	}
	// A second tap on the same model still works after the first closed.
	tap2 := sm.Tap(0)
	r := tr.Records[0]
	sm.Feed(&r)
	tap2.Close()
	if n := len(collectTap(tap2)[shardOf(r.File, 4)]); n != 1 {
		t.Fatalf("fresh tap delivered %d events, want 1", n)
	}
}
