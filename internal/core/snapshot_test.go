package core

import (
	"reflect"
	"sync"
	"sync/atomic"
	"testing"

	"farmer/internal/trace"
	"farmer/internal/tracegen"
)

func genTrace(t testing.TB, n int) *trace.Trace {
	t.Helper()
	tr, err := tracegen.HP(n).Generate()
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// TestListCacheNeverStale: after every single ingested record, the snapshot
// answers exactly what the shards answer — the list-change hook invalidates
// each touched entry before the feed's lock is released, so a cached read
// can never observe a pre-mutation list.
func TestListCacheNeverStale(t *testing.T) {
	tr := genTrace(t, 3000)
	sm := NewSharded(func() Config { c := DefaultConfig(); c.Shards = 4; return c }())
	lc := NewListCache(sm, 8)

	probe := make(map[trace.FileID]struct{})
	for i := range tr.Records {
		sm.Feed(&tr.Records[i])
		probe[tr.Records[i].File] = struct{}{}
		if i%100 != 0 {
			continue
		}
		for f := range probe {
			// Read twice: once potentially filling, once served from the
			// snapshot — both must match the shard's truth.
			for pass := 0; pass < 2; pass++ {
				if got, want := lc.CorrelatorList(f), sm.CorrelatorList(f); !reflect.DeepEqual(got, want) {
					t.Fatalf("record %d file %d pass %d: snapshot %v != shard %v", i, f, pass, got, want)
				}
			}
			if got, want := lc.Predict(f, 4), sm.Predict(f, 4); !reflect.DeepEqual(got, want) {
				t.Fatalf("record %d file %d: snapshot predict %v != shard %v", i, f, got, want)
			}
		}
	}
	if hits, misses := lc.Stats(); hits == 0 || misses == 0 {
		t.Errorf("degenerate snapshot traffic: hits=%d misses=%d", hits, misses)
	}
}

// TestListCacheCopiesAreIndependent: mutating a returned list must not
// corrupt the snapshot's cached entry.
func TestListCacheCopiesAreIndependent(t *testing.T) {
	tr := genTrace(t, 2000)
	sm := NewSharded(DefaultConfig())
	lc := NewListCache(sm, 4)
	sm.FeedBatch(tr.Records)

	var f trace.FileID
	found := false
	for i := range tr.Records {
		if len(sm.CorrelatorList(tr.Records[i].File)) > 0 {
			f, found = tr.Records[i].File, true
			break
		}
	}
	if !found {
		t.Skip("trace mined no correlations")
	}
	got := lc.CorrelatorList(f)
	got[0].File = 0xDEAD
	got[0].Degree = -1
	if again := lc.CorrelatorList(f); !reflect.DeepEqual(again, sm.CorrelatorList(f)) {
		t.Fatalf("caller mutation leaked into the snapshot: %v", again)
	}
}

// TestListCacheConcurrentReaders drives snapshot readers against live
// ingestion under -race and cross-checks the final answers.
func TestListCacheConcurrentReaders(t *testing.T) {
	tr := genTrace(t, 20_000)
	cfg := DefaultConfig()
	cfg.Shards = 4
	sm := NewSharded(cfg)
	lc := NewListCache(sm, 16)

	var stop atomic.Bool
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; !stop.Load(); i++ {
				f := tr.Records[(seed*7919+i)%len(tr.Records)].File
				_ = lc.CorrelatorList(f)
				_ = lc.Predict(f, 4)
			}
		}(g)
	}
	for lo := 0; lo < len(tr.Records); lo += 1000 {
		hi := lo + 1000
		if hi > len(tr.Records) {
			hi = len(tr.Records)
		}
		sm.FeedBatch(tr.Records[lo:hi])
	}
	stop.Store(true)
	wg.Wait()

	ref := New(cfg)
	ref.FeedTrace(tr)
	for i := 0; i < len(tr.Records); i += 97 {
		f := tr.Records[i].File
		if got, want := lc.CorrelatorList(f), ref.CorrelatorList(f); !reflect.DeepEqual(got, want) {
			t.Fatalf("file %d: post-ingest snapshot %v != sequential reference %v", f, got, want)
		}
	}
}

// BenchmarkPredictParallel measures parallel Predict throughput straight off
// the shard locks vs through the striped snapshot, with one writer goroutine
// keeping the shard locks hot — the contention the snapshot removes.
func BenchmarkPredictParallel(b *testing.B) {
	tr := genTrace(b, 30_000)
	cfg := DefaultConfig()
	cfg.Shards = 4
	run := func(b *testing.B, predict func(trace.FileID, int) []trace.FileID, sm *ShardedModel) {
		sm.FeedBatch(tr.Records)
		stop := make(chan struct{})
		var wg sync.WaitGroup
		wg.Add(1)
		go func() { // steady mining load on the shard locks
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
					sm.Feed(&tr.Records[i%len(tr.Records)])
				}
			}
		}()
		var ctr int64
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			i := int(atomic.AddInt64(&ctr, 1)) * 7919
			for pb.Next() {
				i++
				predict(tr.Records[i%len(tr.Records)].File, 4)
			}
		})
		b.StopTimer()
		close(stop)
		wg.Wait()
	}
	b.Run("shards", func(b *testing.B) {
		sm := NewSharded(cfg)
		run(b, sm.Predict, sm)
	})
	b.Run("snapshot", func(b *testing.B) {
		sm := NewSharded(cfg)
		lc := NewListCache(sm, 16)
		run(b, lc.Predict, sm)
	})
}
