package core

import (
	"math"
	"runtime"
	"sync"
	"testing"

	"farmer/internal/partition"
	"farmer/internal/trace"
	"farmer/internal/tracegen"
)

// shardTrace generates a mid-size HP-style trace for equivalence checks.
func shardTrace(t testing.TB, records int) *trace.Trace {
	t.Helper()
	tr, err := tracegen.HP(records).Generate()
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// assertModelsEqual compares the complete mined state (Correlator Lists,
// degrees, graph footprint) of two miners over every file of the trace.
// tol = 0 demands bit-identical degrees.
func assertModelsEqual(t *testing.T, tr *trace.Trace, want *Model, got *ShardedModel, tol float64) {
	t.Helper()
	ws, gs := want.Stats(), got.Stats()
	if ws.Fed != gs.Fed || ws.TrackedFiles != gs.TrackedFiles || ws.Lists != gs.Lists ||
		ws.Correlators != gs.Correlators || ws.GraphNodes != gs.GraphNodes || ws.GraphEdges != gs.GraphEdges {
		t.Errorf("stats diverge: single %+v sharded %+v", ws, gs)
	}
	for f := 0; f < tr.FileCount; f++ {
		id := trace.FileID(f)
		wl, gl := want.CorrelatorList(id), got.CorrelatorList(id)
		if len(wl) != len(gl) {
			t.Fatalf("file %d: list length %d vs %d", f, len(wl), len(gl))
		}
		for i := range wl {
			if wl[i].File != gl[i].File {
				t.Fatalf("file %d entry %d: successor %d vs %d", f, i, wl[i].File, gl[i].File)
			}
			if d := math.Abs(wl[i].Degree - gl[i].Degree); d > tol {
				t.Fatalf("file %d entry %d: degree %v vs %v (|Δ| = %g > %g)",
					f, i, wl[i].Degree, gl[i].Degree, d, tol)
			}
		}
		wp, gp := want.Predict(id, 4), got.Predict(id, 4)
		if len(wp) != len(gp) {
			t.Fatalf("file %d: predict length %d vs %d", f, len(wp), len(gp))
		}
		for i := range wp {
			if wp[i] != gp[i] {
				t.Fatalf("file %d: prediction %d is %d vs %d", f, i, wp[i], gp[i])
			}
		}
	}
}

// TestShardedSingleShardBitIdentical checks the Shards<=1 escape hatch: the
// ensemble must reproduce the single-lock Model exactly (it IS one).
func TestShardedSingleShardBitIdentical(t *testing.T) {
	tr := shardTrace(t, 4000)
	for _, shards := range []int{0, 1} {
		cfg := DefaultConfig()
		cfg.Shards = shards
		single := New(DefaultConfig())
		single.FeedTrace(tr)
		sm := NewSharded(cfg)
		sm.FeedTraceParallel(tr)
		assertModelsEqual(t, tr, single, sm, 0)
	}
}

// TestShardedEquivalence feeds the same trace through the single-lock Model
// and through N-shard ensembles via both the streaming Feed and the batch
// path. The sharded dispatcher replays the same window in the same order,
// so the final state must match exactly, not just within tolerance.
func TestShardedEquivalence(t *testing.T) {
	tr := shardTrace(t, 6000)
	single := New(DefaultConfig())
	single.FeedTrace(tr)
	for _, shards := range []int{2, 5} {
		cfg := DefaultConfig()
		cfg.Shards = shards
		batch := NewSharded(cfg)
		batch.FeedTraceParallel(tr)
		assertModelsEqual(t, tr, single, batch, 0)

		stream := NewSharded(cfg)
		for i := range tr.Records {
			stream.Feed(&tr.Records[i])
		}
		assertModelsEqual(t, tr, single, stream, 0)
	}
}

// TestShardedBatchSplitEquivalence checks that the lookahead window carries
// across FeedBatch calls: many small batches must equal one big batch.
func TestShardedBatchSplitEquivalence(t *testing.T) {
	tr := shardTrace(t, 4000)
	single := New(DefaultConfig())
	single.FeedTrace(tr)
	cfg := DefaultConfig()
	cfg.Shards = 4
	sm := NewSharded(cfg)
	const step = 777 // deliberately not a multiple of anything
	for lo := 0; lo < len(tr.Records); lo += step {
		hi := lo + step
		if hi > len(tr.Records) {
			hi = len(tr.Records)
		}
		sm.FeedBatch(tr.Records[lo:hi])
	}
	assertModelsEqual(t, tr, single, sm, 0)
}

// TestShardedParallelFeed hammers one ensemble from many goroutines mixing
// Feed, FeedBatch and reads — the -race exercise for the concurrency claim.
// Interleaving order is nondeterministic, so it asserts only invariants:
// the fed count, and that reads never tear.
func TestShardedParallelFeed(t *testing.T) {
	tr := shardTrace(t, 6000)
	cfg := DefaultConfig()
	cfg.Shards = runtime.GOMAXPROCS(0)
	sm := NewSharded(cfg)

	workers := 4
	per := len(tr.Records) / workers
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo, hi := w*per, (w+1)*per
		if w == workers-1 {
			hi = len(tr.Records)
		}
		wg.Add(1)
		go func(recs []trace.Record, batch bool) {
			defer wg.Done()
			if batch {
				sm.FeedBatch(recs)
				return
			}
			for i := range recs {
				sm.Feed(&recs[i])
			}
		}(tr.Records[lo:hi], w%2 == 0)
	}
	// Concurrent readers.
	stop := make(chan struct{})
	var readers sync.WaitGroup
	for r := 0; r < 2; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				f := trace.FileID(i % tr.FileCount)
				sm.Predict(f, 4)
				sm.Degree(f, f+1)
				if i%1024 == 0 {
					sm.Stats() // full-footprint scan, kept off the hot loop
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	readers.Wait()

	if got, want := sm.Fed(), uint64(len(tr.Records)); got != want {
		t.Fatalf("fed %d records, counted %d", want, got)
	}
	if st := sm.Stats(); st.Lists == 0 || st.Correlators == 0 {
		t.Fatalf("no correlations mined under concurrency: %+v", st)
	}
}

// TestShardedConfig covers the knob's validation and plumbing.
func TestShardedConfig(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Shards = -1
	if cfg.Validate() == nil {
		t.Fatal("negative Shards accepted")
	}
	cfg.Shards = 6
	sm := NewSharded(cfg)
	if sm.Shards() != 6 {
		t.Fatalf("Shards() = %d, want 6", sm.Shards())
	}
	if sm.Config().Shards != 6 {
		t.Fatalf("Config().Shards = %d, want 6", sm.Config().Shards)
	}
	if NewSharded(DefaultConfig()).Shards() != 1 {
		t.Fatal("Shards = 0 should collapse to one partition")
	}
}

// TestShardedPartitionedEquivalence: the ensemble mines bit-identical state
// whatever deployment partitioner routes files to owners — the property the
// multi-MDS cluster's global miner is built on. Mined state is
// stripe-placement-independent, so the single-lock Model stays the reference.
func TestShardedPartitionedEquivalence(t *testing.T) {
	tr := shardTrace(t, 4000)
	single := New(DefaultConfig())
	single.FeedTrace(tr)
	for _, part := range []partition.Partitioner{partition.Hash, partition.Group} {
		sm := NewShardedPartitioned(DefaultConfig(), 3, part)
		if sm.Shards() != 3 {
			t.Fatalf("Shards() = %d, want 3", sm.Shards())
		}
		sm.FeedTraceParallel(tr)
		assertModelsEqual(t, tr, single, sm, 0)
		// Every file's state must live on exactly the shard the deployment
		// partitioner names (placement, not just content).
		for f := 0; f < tr.FileCount; f++ {
			id := trace.FileID(f)
			own := sm.Partitioner()(id, sm.Shards())
			if list := sm.Shard(own).CorrelatorList(id); len(list) != len(sm.CorrelatorList(id)) {
				t.Fatalf("file %d list not on owner %d", f, own)
			}
			for i := 0; i < sm.Shards(); i++ {
				if i != own && len(sm.Shard(i).CorrelatorList(id)) != 0 {
					t.Fatalf("file %d leaked state onto shard %d (owner %d)", f, i, own)
				}
			}
		}
	}
}

// TestShardedResetWindow verifies the stream-boundary reset stops credit
// from crossing the boundary, matching Model.ResetWindow.
func TestShardedResetWindow(t *testing.T) {
	tr := shardTrace(t, 3000)
	mid := len(tr.Records) / 2

	single := New(DefaultConfig())
	single.FeedTrace(&trace.Trace{Records: tr.Records[:mid], FileCount: tr.FileCount})
	single.ResetWindow()
	single.FeedTrace(&trace.Trace{Records: tr.Records[mid:], FileCount: tr.FileCount})

	cfg := DefaultConfig()
	cfg.Shards = 4
	sm := NewSharded(cfg)
	sm.FeedBatch(tr.Records[:mid])
	sm.ResetWindow()
	sm.FeedBatch(tr.Records[mid:])

	assertModelsEqual(t, tr, single, sm, 0)
}

// TestShardedEquivalenceUnnormalizedWindow pins the Graph.Window <= 0 case:
// both miners normalize the evaluation window the same way the graph
// normalizes its crediting window, so equivalence holds for every valid
// config, not just the defaults.
func TestShardedEquivalenceUnnormalizedWindow(t *testing.T) {
	tr := shardTrace(t, 3000)
	cfg := DefaultConfig()
	cfg.Graph.Window = 0 // Validate accepts this; normalization maps it to 3
	single := New(cfg)
	single.FeedTrace(tr)
	cfg.Shards = 4
	sm := NewSharded(cfg)
	sm.FeedTraceParallel(tr)
	assertModelsEqual(t, tr, single, sm, 0)
}
