package core

import (
	"fmt"
	"runtime"
	"testing"

	"farmer/internal/trace"
	"farmer/internal/tracegen"
)

// BenchmarkFeed measures the per-request cost of the full four-stage
// pipeline (§3.3's efficiency claim: O(window + list) per access).
func BenchmarkFeed(b *testing.B) {
	tr := tracegen.HP(50000).MustGenerate()
	m := New(DefaultConfig())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Feed(&tr.Records[i%len(tr.Records)])
	}
}

// BenchmarkPredict measures prefetch-candidate lookup on a mined model.
func BenchmarkPredict(b *testing.B) {
	tr := tracegen.HP(50000).MustGenerate()
	m := New(DefaultConfig())
	m.FeedTrace(tr)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Predict(trace.FileID(i%tr.FileCount), 4)
	}
}

// BenchmarkFeedTraceSingle is the single-lock baseline for the sharded
// ingestion benchmarks: one full-trace mine per iteration.
func BenchmarkFeedTraceSingle(b *testing.B) {
	tr := tracegen.HP(50000).MustGenerate()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := New(DefaultConfig())
		m.FeedTrace(tr)
	}
	b.ReportMetric(float64(len(tr.Records))*float64(b.N)/b.Elapsed().Seconds(), "records/s")
}

// BenchmarkFeedTraceSharded mines the same trace through the N-way striped
// ensemble's batch path; compare records/s against BenchmarkFeedTraceSingle
// for the parallel speedup.
func BenchmarkFeedTraceSharded(b *testing.B) {
	tr := tracegen.HP(50000).MustGenerate()
	shardCounts := []int{2, 4, 8}
	if p := runtime.GOMAXPROCS(0); p > 8 {
		shardCounts = append(shardCounts, p)
	}
	for _, shards := range shardCounts {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			cfg := DefaultConfig()
			cfg.Shards = shards
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m := NewSharded(cfg)
				m.FeedTraceParallel(tr)
			}
			b.ReportMetric(float64(len(tr.Records))*float64(b.N)/b.Elapsed().Seconds(), "records/s")
		})
	}
}

// BenchmarkFeedNoSemantics isolates the sequence-mining cost (p = 0 path).
func BenchmarkFeedNoSemantics(b *testing.B) {
	tr := tracegen.HP(50000).MustGenerate()
	cfg := DefaultConfig()
	cfg.Weight = 0
	m := New(cfg)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Feed(&tr.Records[i%len(tr.Records)])
	}
}
