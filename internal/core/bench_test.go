package core

import (
	"testing"

	"farmer/internal/trace"
	"farmer/internal/tracegen"
)

// BenchmarkFeed measures the per-request cost of the full four-stage
// pipeline (§3.3's efficiency claim: O(window + list) per access).
func BenchmarkFeed(b *testing.B) {
	tr := tracegen.HP(50000).MustGenerate()
	m := New(DefaultConfig())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Feed(&tr.Records[i%len(tr.Records)])
	}
}

// BenchmarkPredict measures prefetch-candidate lookup on a mined model.
func BenchmarkPredict(b *testing.B) {
	tr := tracegen.HP(50000).MustGenerate()
	m := New(DefaultConfig())
	m.FeedTrace(tr)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Predict(trace.FileID(i%tr.FileCount), 4)
	}
}

// BenchmarkFeedNoSemantics isolates the sequence-mining cost (p = 0 path).
func BenchmarkFeedNoSemantics(b *testing.B) {
	tr := tracegen.HP(50000).MustGenerate()
	cfg := DefaultConfig()
	cfg.Weight = 0
	m := New(cfg)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Feed(&tr.Records[i%len(tr.Records)])
	}
}
