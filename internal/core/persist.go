package core

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"farmer/internal/kvstore"
	"farmer/internal/trace"
	"farmer/internal/vsm"
)

// Persistence: the HUSt prototype stores file correlation information —
// Correlator Lists and the semantic vectors backing them — in Berkeley DB
// (paper §5.1). SaveTo/LoadFrom provide the same round trip against the
// repository's kvstore so a mined model survives MDS restarts.
//
// Key layout (all keys are prefixed so model state can share a store with
// file metadata):
//
//	c/<fileID>  Correlator List: count, then (file, degree, sim, freq)*
//	v/<fileID>  semantic vector: scalar count, scalars, path
//	m/config    weight, maxStrength, fed counter

const (
	keyPrefixList   = "c/"
	keyPrefixVector = "v/"
	keyConfig       = "m/config"
)

// prefixEnd returns the exclusive upper Scan bound covering every key that
// starts with prefix: the prefix with its last byte incremented. (The old
// prefix+"\xff" bound excluded keys whose FileID top byte is 0xff — those
// sort after "\xff" itself — silently losing files >= 0xff000000 on reload.)
func prefixEnd(prefix string) []byte {
	end := []byte(prefix)
	end[len(end)-1]++
	return end
}

func listKey(f trace.FileID) []byte {
	k := make([]byte, len(keyPrefixList)+4)
	copy(k, keyPrefixList)
	binary.BigEndian.PutUint32(k[len(keyPrefixList):], uint32(f))
	return k
}

func vectorKey(f trace.FileID) []byte {
	k := make([]byte, len(keyPrefixVector)+4)
	copy(k, keyPrefixVector)
	binary.BigEndian.PutUint32(k[len(keyPrefixVector):], uint32(f))
	return k
}

// SaveTo writes the model's mined state (Correlator Lists, semantic vectors
// and the tunables needed to keep mining) into the store. Repeated saves
// into the same store are checkpoints: stale keys from a previous save —
// lists the threshold filter has since dropped — are pruned, so the store
// always holds exactly the model's current state.
func (m *Model) SaveTo(s *kvstore.Store) error {
	saved := newSavedKeys()
	if err := m.saveState(s, saved); err != nil {
		return err
	}
	if err := saved.prune(s); err != nil {
		return err
	}
	m.mu.RLock()
	fed := m.fed
	m.mu.RUnlock()
	return saveConfig(s, m.cfg.Weight, m.cfg.MaxStrength, fed)
}

// savedKeys tracks which list/vector keys a checkpoint wrote, so prune can
// delete the store's leftovers from earlier checkpoints (a list dropped by
// the validity filter must not resurrect on reload).
type savedKeys struct {
	lists map[trace.FileID]struct{}
	vecs  map[trace.FileID]struct{}
}

func newSavedKeys() *savedKeys {
	return &savedKeys{lists: make(map[trace.FileID]struct{}), vecs: make(map[trace.FileID]struct{})}
}

func (sk *savedKeys) prune(s *kvstore.Store) error {
	var stale [][]byte
	collect := func(prefix string, keep map[trace.FileID]struct{}) {
		s.Scan([]byte(prefix), prefixEnd(prefix), func(k, v []byte) bool {
			if len(k) == len(prefix)+4 {
				f := trace.FileID(binary.BigEndian.Uint32(k[len(prefix):]))
				if _, ok := keep[f]; ok {
					return true
				}
			}
			stale = append(stale, append([]byte(nil), k...))
			return true
		})
	}
	collect(keyPrefixList, sk.lists)
	collect(keyPrefixVector, sk.vecs)
	for _, k := range stale {
		if err := s.Delete(k); err != nil {
			return fmt.Errorf("core: pruning stale key %q: %w", k, err)
		}
	}
	return nil
}

// saveState writes the model's lists and vectors (no config record) — the
// per-shard half of a merged ensemble save — recording each written key in
// saved for the caller's prune.
func (m *Model) saveState(s *kvstore.Store, saved *savedKeys) error {
	m.mu.RLock()
	defer m.mu.RUnlock()

	var buf bytes.Buffer
	putU32 := func(v uint32) { binary.Write(&buf, binary.LittleEndian, v) }
	putF64 := func(v float64) { binary.Write(&buf, binary.LittleEndian, math.Float64bits(v)) }
	putStr := func(v string) {
		putU32(uint32(len(v)))
		buf.WriteString(v)
	}

	for f, list := range m.lists {
		buf.Reset()
		putU32(uint32(len(list)))
		for _, c := range list {
			putU32(uint32(c.File))
			putF64(c.Degree)
			putF64(c.Sim)
			putF64(c.Freq)
		}
		if err := s.Put(listKey(f), buf.Bytes()); err != nil {
			return fmt.Errorf("core: saving list %d: %w", f, err)
		}
		saved.lists[f] = struct{}{}
	}
	for f, v := range m.vectors {
		buf.Reset()
		putU32(uint32(len(v.Scalars)))
		for _, sc := range v.Scalars {
			putStr(sc)
		}
		putStr(v.Path)
		if err := s.Put(vectorKey(f), buf.Bytes()); err != nil {
			return fmt.Errorf("core: saving vector %d: %w", f, err)
		}
		saved.vecs[f] = struct{}{}
	}
	return nil
}

// saveConfig writes the m/config record binding a saved state to its mining
// parameters and ingest counter.
func saveConfig(s *kvstore.Store, weight, maxStrength float64, fed uint64) error {
	var buf bytes.Buffer
	binary.Write(&buf, binary.LittleEndian, math.Float64bits(weight))
	binary.Write(&buf, binary.LittleEndian, math.Float64bits(maxStrength))
	binary.Write(&buf, binary.LittleEndian, fed)
	if err := s.Put([]byte(keyConfig), buf.Bytes()); err != nil {
		return fmt.Errorf("core: saving config: %w", err)
	}
	return nil
}

// readConfig reads and decodes the m/config record.
func readConfig(s *kvstore.Store) (weight, maxStrength float64, fed uint64, err error) {
	raw, ok := s.Get([]byte(keyConfig))
	if !ok {
		return 0, 0, 0, fmt.Errorf("core: store has no persisted model")
	}
	if len(raw) != 24 {
		return 0, 0, 0, fmt.Errorf("core: corrupt persisted config (%d bytes)", len(raw))
	}
	weight = math.Float64frombits(binary.LittleEndian.Uint64(raw[0:8]))
	maxStrength = math.Float64frombits(binary.LittleEndian.Uint64(raw[8:16]))
	fed = binary.LittleEndian.Uint64(raw[16:24])
	return weight, maxStrength, fed, nil
}

// LoadFrom restores mined state saved by SaveTo into a freshly-constructed
// model. The model's configuration must match the persisted weight and
// threshold (guarding against silently mixing incompatible parameters).
func (m *Model) LoadFrom(s *kvstore.Store) error {
	weight, strength, fed, err := readConfig(s)
	if err != nil {
		return err
	}
	if weight != m.cfg.Weight || strength != m.cfg.MaxStrength {
		return fmt.Errorf("core: persisted parameters (p=%v, max_strength=%v) differ from model (p=%v, max_strength=%v)",
			weight, strength, m.cfg.Weight, m.cfg.MaxStrength)
	}

	// Decode outside the lock, install atomically: a concurrent reader sees
	// either the pre-load or the fully loaded model, never a half-restored
	// one.
	lists := make(map[trace.FileID][]Correlator)
	vecs := make(map[trace.FileID]vsm.Vector)
	if err := scanState(s,
		func(f trace.FileID, list []Correlator) { lists[f] = list },
		func(f trace.FileID, vec vsm.Vector) { vecs[f] = vec },
	); err != nil {
		return err
	}
	m.mu.Lock()
	m.fed = fed
	for f, list := range lists {
		m.lists[f] = list
	}
	for f, vec := range vecs {
		m.vectors[f] = vec
	}
	m.mu.Unlock()
	return nil
}

// scanState decodes every persisted list and vector, handing each to the
// callback that installs it — shared by the whole-model and routed
// (per-owning-shard) load paths.
func scanState(s *kvstore.Store, putList func(trace.FileID, []Correlator), putVec func(trace.FileID, vsm.Vector)) error {
	var loadErr error
	s.Scan([]byte(keyPrefixList), prefixEnd(keyPrefixList), func(k, v []byte) bool {
		if len(k) != len(keyPrefixList)+4 {
			loadErr = fmt.Errorf("core: bad list key %q", k)
			return false
		}
		f := trace.FileID(binary.BigEndian.Uint32(k[len(keyPrefixList):]))
		list, err := decodeList(v)
		if err != nil {
			loadErr = fmt.Errorf("core: list %d: %w", f, err)
			return false
		}
		putList(f, list)
		return true
	})
	if loadErr != nil {
		return loadErr
	}
	s.Scan([]byte(keyPrefixVector), prefixEnd(keyPrefixVector), func(k, v []byte) bool {
		if len(k) != len(keyPrefixVector)+4 {
			loadErr = fmt.Errorf("core: bad vector key %q", k)
			return false
		}
		f := trace.FileID(binary.BigEndian.Uint32(k[len(keyPrefixVector):]))
		vec, err := decodeVector(v)
		if err != nil {
			loadErr = fmt.Errorf("core: vector %d: %w", f, err)
			return false
		}
		putVec(f, vec)
		return true
	})
	return loadErr
}

// SaveMerged writes the ensemble's complete mined state as ONE logical
// model. Shard state is disjoint, so the union of the per-shard lists and
// vectors under the ordinary key layout is exactly what a single Model
// mining the same stream would save: a merged save is loadable by
// Model.LoadFrom, and by LoadMerged at ANY stripe count or partitioner —
// the persistence half of resizing a cluster between runs.
//
// SaveMerged holds the dispatch lock, so a checkpoint taken while other
// goroutines Feed captures a consistent cut of the stream: state and the
// fed counter as of some exact record boundary, never a snapshot torn
// across shards. Like a previous save's checkpoint, stale keys are pruned.
// (Events applied through ApplyExternal bypass the local dispatcher; a
// server mined remotely should quiesce its owner before checkpointing.)
func (s *ShardedModel) SaveMerged(st *kvstore.Store) error {
	s.dmu.Lock()
	defer s.dmu.Unlock()
	saved := newSavedKeys()
	for _, m := range s.shards {
		if err := m.saveState(st, saved); err != nil {
			return err
		}
	}
	if err := saved.prune(st); err != nil {
		return err
	}
	return saveConfig(st, s.cfg.Weight, s.cfg.MaxStrength, s.disp.Dispatched())
}

// LoadMerged restores a merged save into a freshly-constructed ensemble —
// enforced: an ensemble that has already ingested refuses the load (it
// would merge two models and double-count the fed counter) — rebalancing
// every list and vector onto the shard the ensemble's current partitioner
// assigns it to. The stripe count and partitioner may differ
// freely from the ones that produced the save (that is the point); the
// mining parameters must match, as in LoadFrom. Predictions after a load
// are identical at any stripe count.
func (s *ShardedModel) LoadMerged(st *kvstore.Store) error {
	weight, strength, fed, err := readConfig(st)
	if err != nil {
		return err
	}
	if weight != s.cfg.Weight || strength != s.cfg.MaxStrength {
		return fmt.Errorf("core: persisted parameters (p=%v, max_strength=%v) differ from model (p=%v, max_strength=%v)",
			weight, strength, s.cfg.Weight, s.cfg.MaxStrength)
	}
	// Route while decoding, install each shard under one lock — readers
	// observe the usual consistent-per-shard snapshot, never a shard caught
	// mid-restore. The dispatch lock excludes concurrent feeding for the
	// whole install, so the restored counter and state land atomically —
	// and the freshness check below cannot race a Feed (checking outside
	// the lock would let a record slip in between check and install,
	// merging models and double-counting the fed counter).
	s.dmu.Lock()
	defer s.dmu.Unlock()
	if fedNow := s.disp.Dispatched(); fedNow > 0 {
		return fmt.Errorf("core: cannot load into an ensemble that has already ingested %d records", fedNow)
	}
	n := len(s.shards)
	lists := make([]map[trace.FileID][]Correlator, n)
	vecs := make([]map[trace.FileID]vsm.Vector, n)
	for i := 0; i < n; i++ {
		lists[i] = make(map[trace.FileID][]Correlator)
		vecs[i] = make(map[trace.FileID]vsm.Vector)
	}
	if err := scanState(st,
		func(f trace.FileID, list []Correlator) { lists[s.ownerOf(f)][f] = list },
		func(f trace.FileID, vec vsm.Vector) { vecs[s.ownerOf(f)][f] = vec },
	); err != nil {
		return err
	}
	for i, m := range s.shards {
		m.mu.Lock()
		for f, list := range lists[i] {
			m.lists[f] = list
		}
		for f, vec := range vecs[i] {
			m.vectors[f] = vec
		}
		m.mu.Unlock()
	}
	if len(s.shards) == 1 {
		// Single-shard parity: the lone Model carries the ensemble's fed
		// counter, exactly as if it had mined the stream itself.
		m := s.shards[0]
		m.mu.Lock()
		m.fed = fed
		m.mu.Unlock()
	}
	s.disp.Advance(fed)
	return nil
}

func decodeList(raw []byte) ([]Correlator, error) {
	r := bytes.NewReader(raw)
	var n uint32
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return nil, err
	}
	if int(n) > len(raw)/28+1 {
		return nil, fmt.Errorf("unreasonable list length %d", n)
	}
	list := make([]Correlator, 0, n)
	for i := uint32(0); i < n; i++ {
		var f uint32
		var deg, sim, freq uint64
		if err := binary.Read(r, binary.LittleEndian, &f); err != nil {
			return nil, err
		}
		for _, dst := range []*uint64{&deg, &sim, &freq} {
			if err := binary.Read(r, binary.LittleEndian, dst); err != nil {
				return nil, err
			}
		}
		list = append(list, Correlator{
			File:   trace.FileID(f),
			Degree: math.Float64frombits(deg),
			Sim:    math.Float64frombits(sim),
			Freq:   math.Float64frombits(freq),
		})
	}
	return list, nil
}

func decodeVector(raw []byte) (vsm.Vector, error) {
	r := bytes.NewReader(raw)
	var v vsm.Vector
	var n uint32
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return v, err
	}
	if int(n) > len(raw) {
		return v, fmt.Errorf("unreasonable scalar count %d", n)
	}
	readStr := func() (string, error) {
		var l uint32
		if err := binary.Read(r, binary.LittleEndian, &l); err != nil {
			return "", err
		}
		if int(l) > r.Len() {
			return "", fmt.Errorf("string length %d exceeds remaining %d", l, r.Len())
		}
		b := make([]byte, l)
		// io.ReadFull, not r.Read: an empty string at the end of the value
		// (every vector of a pathless trace) must decode as "", not EOF.
		if _, err := io.ReadFull(r, b); err != nil {
			return "", err
		}
		return string(b), nil
	}
	for i := uint32(0); i < n; i++ {
		sc, err := readStr()
		if err != nil {
			return v, err
		}
		v.Scalars = append(v.Scalars, sc)
	}
	path, err := readStr()
	if err != nil {
		return v, err
	}
	v.Path = path
	return v, nil
}
