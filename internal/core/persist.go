package core

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math"

	"farmer/internal/kvstore"
	"farmer/internal/trace"
	"farmer/internal/vsm"
)

// Persistence: the HUSt prototype stores file correlation information —
// Correlator Lists and the semantic vectors backing them — in Berkeley DB
// (paper §5.1). SaveTo/LoadFrom provide the same round trip against the
// repository's kvstore so a mined model survives MDS restarts.
//
// Key layout (all keys are prefixed so model state can share a store with
// file metadata):
//
//	c/<fileID>  Correlator List: count, then (file, degree, sim, freq)*
//	v/<fileID>  semantic vector: scalar count, scalars, path
//	m/config    weight, maxStrength, fed counter

const (
	keyPrefixList   = "c/"
	keyPrefixVector = "v/"
	keyConfig       = "m/config"
)

func listKey(f trace.FileID) []byte {
	k := make([]byte, len(keyPrefixList)+4)
	copy(k, keyPrefixList)
	binary.BigEndian.PutUint32(k[len(keyPrefixList):], uint32(f))
	return k
}

func vectorKey(f trace.FileID) []byte {
	k := make([]byte, len(keyPrefixVector)+4)
	copy(k, keyPrefixVector)
	binary.BigEndian.PutUint32(k[len(keyPrefixVector):], uint32(f))
	return k
}

// SaveTo writes the model's mined state (Correlator Lists, semantic vectors
// and the tunables needed to keep mining) into the store.
func (m *Model) SaveTo(s *kvstore.Store) error {
	m.mu.RLock()
	defer m.mu.RUnlock()

	var buf bytes.Buffer
	putU32 := func(v uint32) { binary.Write(&buf, binary.LittleEndian, v) }
	putF64 := func(v float64) { binary.Write(&buf, binary.LittleEndian, math.Float64bits(v)) }
	putStr := func(v string) {
		putU32(uint32(len(v)))
		buf.WriteString(v)
	}

	for f, list := range m.lists {
		buf.Reset()
		putU32(uint32(len(list)))
		for _, c := range list {
			putU32(uint32(c.File))
			putF64(c.Degree)
			putF64(c.Sim)
			putF64(c.Freq)
		}
		if err := s.Put(listKey(f), buf.Bytes()); err != nil {
			return fmt.Errorf("core: saving list %d: %w", f, err)
		}
	}
	for f, v := range m.vectors {
		buf.Reset()
		putU32(uint32(len(v.Scalars)))
		for _, sc := range v.Scalars {
			putStr(sc)
		}
		putStr(v.Path)
		if err := s.Put(vectorKey(f), buf.Bytes()); err != nil {
			return fmt.Errorf("core: saving vector %d: %w", f, err)
		}
	}
	buf.Reset()
	putF64(m.cfg.Weight)
	putF64(m.cfg.MaxStrength)
	binary.Write(&buf, binary.LittleEndian, m.fed)
	if err := s.Put([]byte(keyConfig), buf.Bytes()); err != nil {
		return fmt.Errorf("core: saving config: %w", err)
	}
	return nil
}

// LoadFrom restores mined state saved by SaveTo into a freshly-constructed
// model. The model's configuration must match the persisted weight and
// threshold (guarding against silently mixing incompatible parameters).
func (m *Model) LoadFrom(s *kvstore.Store) error {
	raw, ok := s.Get([]byte(keyConfig))
	if !ok {
		return fmt.Errorf("core: store has no persisted model")
	}
	if len(raw) != 24 {
		return fmt.Errorf("core: corrupt persisted config (%d bytes)", len(raw))
	}
	weight := math.Float64frombits(binary.LittleEndian.Uint64(raw[0:8]))
	strength := math.Float64frombits(binary.LittleEndian.Uint64(raw[8:16]))
	fed := binary.LittleEndian.Uint64(raw[16:24])
	if weight != m.cfg.Weight || strength != m.cfg.MaxStrength {
		return fmt.Errorf("core: persisted parameters (p=%v, max_strength=%v) differ from model (p=%v, max_strength=%v)",
			weight, strength, m.cfg.Weight, m.cfg.MaxStrength)
	}

	m.mu.Lock()
	defer m.mu.Unlock()
	m.fed = fed

	var loadErr error
	s.Scan([]byte(keyPrefixList), []byte(keyPrefixList+"\xff"), func(k, v []byte) bool {
		if len(k) != len(keyPrefixList)+4 {
			loadErr = fmt.Errorf("core: bad list key %q", k)
			return false
		}
		f := trace.FileID(binary.BigEndian.Uint32(k[len(keyPrefixList):]))
		list, err := decodeList(v)
		if err != nil {
			loadErr = fmt.Errorf("core: list %d: %w", f, err)
			return false
		}
		m.lists[f] = list
		return true
	})
	if loadErr != nil {
		return loadErr
	}
	s.Scan([]byte(keyPrefixVector), []byte(keyPrefixVector+"\xff"), func(k, v []byte) bool {
		if len(k) != len(keyPrefixVector)+4 {
			loadErr = fmt.Errorf("core: bad vector key %q", k)
			return false
		}
		f := trace.FileID(binary.BigEndian.Uint32(k[len(keyPrefixVector):]))
		vec, err := decodeVector(v)
		if err != nil {
			loadErr = fmt.Errorf("core: vector %d: %w", f, err)
			return false
		}
		m.vectors[f] = vec
		return true
	})
	return loadErr
}

func decodeList(raw []byte) ([]Correlator, error) {
	r := bytes.NewReader(raw)
	var n uint32
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return nil, err
	}
	if int(n) > len(raw)/28+1 {
		return nil, fmt.Errorf("unreasonable list length %d", n)
	}
	list := make([]Correlator, 0, n)
	for i := uint32(0); i < n; i++ {
		var f uint32
		var deg, sim, freq uint64
		if err := binary.Read(r, binary.LittleEndian, &f); err != nil {
			return nil, err
		}
		for _, dst := range []*uint64{&deg, &sim, &freq} {
			if err := binary.Read(r, binary.LittleEndian, dst); err != nil {
				return nil, err
			}
		}
		list = append(list, Correlator{
			File:   trace.FileID(f),
			Degree: math.Float64frombits(deg),
			Sim:    math.Float64frombits(sim),
			Freq:   math.Float64frombits(freq),
		})
	}
	return list, nil
}

func decodeVector(raw []byte) (vsm.Vector, error) {
	r := bytes.NewReader(raw)
	var v vsm.Vector
	var n uint32
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return v, err
	}
	if int(n) > len(raw) {
		return v, fmt.Errorf("unreasonable scalar count %d", n)
	}
	readStr := func() (string, error) {
		var l uint32
		if err := binary.Read(r, binary.LittleEndian, &l); err != nil {
			return "", err
		}
		if int(l) > r.Len() {
			return "", fmt.Errorf("string length %d exceeds remaining %d", l, r.Len())
		}
		b := make([]byte, l)
		if _, err := r.Read(b); err != nil {
			return "", err
		}
		return string(b), nil
	}
	for i := uint32(0); i < n; i++ {
		sc, err := readStr()
		if err != nil {
			return v, err
		}
		v.Scalars = append(v.Scalars, sc)
	}
	path, err := readStr()
	if err != nil {
		return v, err
	}
	v.Path = path
	return v, nil
}
