package core

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"io"
	"math"

	"farmer/internal/graph"
	"farmer/internal/kvstore"
	"farmer/internal/trace"
	"farmer/internal/vsm"
)

// Persistence: the HUSt prototype stores file correlation information —
// Correlator Lists and the semantic vectors backing them — in Berkeley DB
// (paper §5.1). SaveTo/LoadFrom provide the same round trip against the
// repository's kvstore so a mined model survives MDS restarts.
//
// Key layout (all keys are prefixed so model state can share a store with
// file metadata):
//
//	c/<fileID>  Correlator List: count, then (file, degree, sim, freq)*
//	v/<fileID>  semantic vector: scalar count, scalars, path
//	g/<fileID>  correlation-graph node: total N_x, count, (to, N_xy)*
//	m/config    weight, maxStrength, fed counter
//	m/window    lookahead window: count, file ids (oldest first)
//
// The graph node and window records make a checkpoint COMPLETE: a model
// restored from one mines every subsequent record bit-identically to the
// model that wrote it. (Stores written before these records existed still
// load — the graph and window simply start empty, which is the old
// behavior.) That completeness is what farmerd replication rests on: a
// follower bootstraps from the primary's checkpoint and then continues from
// the live record stream with no divergence window.

const (
	keyPrefixList   = "c/"
	keyPrefixVector = "v/"
	keyPrefixGraph  = "g/"
	keyConfig       = "m/config"
	keyWindow       = "m/window"
	keyEpoch        = "m/epoch"
)

// kvWriter is the mutation surface a checkpoint stages into — satisfied by
// *kvstore.Store (legacy direct writes) and *kvstore.Batch (atomic
// checkpoint commits, the only writer the save paths use now).
type kvWriter interface {
	Put(key, value []byte) error
	Delete(key []byte) error
}

// stageEpoch writes the m/epoch record: a counter incremented by every
// completed checkpoint plus the stream position (fed counter) it cut at.
// An incremental save is valid only against the exact epoch its in-memory
// dirty sets were accumulated since — a store rewritten by anyone else in
// between (restore tooling, another process) shows a different epoch and
// forces a full rewrite instead of a silently diverging delta.
func stageEpoch(w kvWriter, epoch, pos uint64) error {
	buf := make([]byte, 0, 16)
	buf = binary.LittleEndian.AppendUint64(buf, epoch)
	buf = binary.LittleEndian.AppendUint64(buf, pos)
	if err := w.Put([]byte(keyEpoch), buf); err != nil {
		return fmt.Errorf("core: saving epoch: %w", err)
	}
	return nil
}

// readEpoch reads the m/epoch record; ok=false means the store predates
// epochs (or is empty), which loads fine and simply disqualifies deltas.
func readEpoch(s *kvstore.Store) (epoch, pos uint64, ok bool, err error) {
	raw, found := s.Get([]byte(keyEpoch))
	if !found {
		return 0, 0, false, nil
	}
	if len(raw) != 16 {
		return 0, 0, false, fmt.Errorf("core: corrupt persisted epoch (%d bytes)", len(raw))
	}
	return binary.LittleEndian.Uint64(raw[0:8]), binary.LittleEndian.Uint64(raw[8:16]), true, nil
}

// prefixEnd returns the exclusive upper Scan bound covering every key that
// starts with prefix: the prefix with its last byte incremented. (The old
// prefix+"\xff" bound excluded keys whose FileID top byte is 0xff — those
// sort after "\xff" itself — silently losing files >= 0xff000000 on reload.)
func prefixEnd(prefix string) []byte {
	end := []byte(prefix)
	end[len(end)-1]++
	return end
}

func listKey(f trace.FileID) []byte {
	k := make([]byte, len(keyPrefixList)+4)
	copy(k, keyPrefixList)
	binary.BigEndian.PutUint32(k[len(keyPrefixList):], uint32(f))
	return k
}

func vectorKey(f trace.FileID) []byte {
	k := make([]byte, len(keyPrefixVector)+4)
	copy(k, keyPrefixVector)
	binary.BigEndian.PutUint32(k[len(keyPrefixVector):], uint32(f))
	return k
}

func graphKey(f trace.FileID) []byte {
	k := make([]byte, len(keyPrefixGraph)+4)
	copy(k, keyPrefixGraph)
	binary.BigEndian.PutUint32(k[len(keyPrefixGraph):], uint32(f))
	return k
}

// SaveTo writes the model's complete mined state (Correlator Lists, semantic
// vectors, the correlation graph, the lookahead window and the tunables
// needed to keep mining) into the store as ONE atomic batch — a crash
// mid-save leaves the previous checkpoint intact. Repeated saves into the
// same store are checkpoints: stale keys from a previous save — lists the
// threshold filter has since dropped — are pruned, so the store always holds
// exactly the model's current state. A completed save (re)binds the model's
// dirty tracking to the store, so a later SaveDelta can write just the
// changes.
func (m *Model) SaveTo(s *kvstore.Store) error {
	epoch, _, _, err := readEpoch(s)
	if err != nil {
		return err
	}
	saved := newSavedKeys()
	err = s.Batch(func(b *kvstore.Batch) error {
		m.mu.Lock()
		defer m.mu.Unlock()
		if err := m.stageStateLocked(b, saved); err != nil {
			return err
		}
		if err := saved.prune(s, b); err != nil {
			return err
		}
		if err := stageWindow(b, m.window); err != nil {
			return err
		}
		if err := stageConfig(b, m.cfg.Weight, m.cfg.MaxStrength, m.fed); err != nil {
			return err
		}
		if err := stageEpoch(b, epoch+1, m.fed); err != nil {
			return err
		}
		m.resetDirtyLocked()
		m.ckptStore, m.saveEpoch = s, epoch+1
		return nil
	})
	if err != nil {
		m.mu.Lock()
		m.ckptStore = nil
		m.mu.Unlock()
		return err
	}
	return nil
}

// SaveDelta writes only the keys dirtied since the last completed save —
// puts for facets still present, tombstone deletes for dropped ones — plus
// the always-small window/config/epoch records, as one atomic batch: the
// O(touched) checkpoint. It requires s to be the very store, at the very
// epoch, the model's dirty sets were accumulated against; on any mismatch
// (first save, a different store, an epoch someone else advanced) it
// transparently falls back to a full SaveTo. Returns whether the delta path
// ran.
func (m *Model) SaveDelta(s *kvstore.Store) (bool, error) {
	m.mu.RLock()
	bound := m.dirtyOn && m.ckptStore == s
	boundEpoch := m.saveEpoch
	m.mu.RUnlock()
	if bound {
		epoch, _, ok, err := readEpoch(s)
		if err != nil || !ok || epoch != boundEpoch {
			bound = false
		}
	}
	if !bound {
		return false, m.SaveTo(s)
	}
	err := s.Batch(func(b *kvstore.Batch) error {
		m.mu.Lock()
		defer m.mu.Unlock()
		if err := m.stageDeltaLocked(b); err != nil {
			return err
		}
		if err := stageWindow(b, m.window); err != nil {
			return err
		}
		if err := stageConfig(b, m.cfg.Weight, m.cfg.MaxStrength, m.fed); err != nil {
			return err
		}
		if err := stageEpoch(b, boundEpoch+1, m.fed); err != nil {
			return err
		}
		m.resetDirtyLocked()
		m.saveEpoch = boundEpoch + 1
		return nil
	})
	if err != nil {
		m.mu.Lock()
		m.ckptStore = nil
		m.mu.Unlock()
		return false, err
	}
	return true, nil
}

// savedKeys tracks which list/vector/graph keys a checkpoint wrote, so prune
// can delete the store's leftovers from earlier checkpoints (a list dropped
// by the validity filter must not resurrect on reload).
type savedKeys struct {
	lists  map[trace.FileID]struct{}
	vecs   map[trace.FileID]struct{}
	graphs map[trace.FileID]struct{}
}

func newSavedKeys() *savedKeys {
	return &savedKeys{
		lists:  make(map[trace.FileID]struct{}),
		vecs:   make(map[trace.FileID]struct{}),
		graphs: make(map[trace.FileID]struct{}),
	}
}

// prune stages deletes into w for every list/vector/graph key present in
// the store but absent from a just-staged full save — the full-rewrite
// leftovers sweep. Reads scan the store directly (a Batch's staged records
// are invisible to Scan, which is exactly right: the scan sees the PREVIOUS
// checkpoint's keys).
func (sk *savedKeys) prune(s *kvstore.Store, w kvWriter) error {
	var stale [][]byte
	collect := func(prefix string, keep map[trace.FileID]struct{}) {
		s.Scan([]byte(prefix), prefixEnd(prefix), func(k, v []byte) bool {
			if len(k) == len(prefix)+4 {
				f := trace.FileID(binary.BigEndian.Uint32(k[len(prefix):]))
				if _, ok := keep[f]; ok {
					return true
				}
			}
			stale = append(stale, append([]byte(nil), k...))
			return true
		})
	}
	collect(keyPrefixList, sk.lists)
	collect(keyPrefixVector, sk.vecs)
	collect(keyPrefixGraph, sk.graphs)
	for _, k := range stale {
		if err := w.Delete(k); err != nil {
			return fmt.Errorf("core: pruning stale key %q: %w", k, err)
		}
	}
	return nil
}

// appendListValue encodes one Correlator List in the c/ record format.
func appendListValue(dst []byte, list []Correlator) []byte {
	le := binary.LittleEndian
	dst = le.AppendUint32(dst, uint32(len(list)))
	for _, c := range list {
		dst = le.AppendUint32(dst, uint32(c.File))
		dst = le.AppendUint64(dst, math.Float64bits(c.Degree))
		dst = le.AppendUint64(dst, math.Float64bits(c.Sim))
		dst = le.AppendUint64(dst, math.Float64bits(c.Freq))
	}
	return dst
}

// appendVectorValue encodes one semantic vector in the v/ record format.
func appendVectorValue(dst []byte, v *vsm.Vector) []byte {
	le := binary.LittleEndian
	dst = le.AppendUint32(dst, uint32(len(v.Scalars)))
	for _, sc := range v.Scalars {
		dst = le.AppendUint32(dst, uint32(len(sc)))
		dst = append(dst, sc...)
	}
	dst = le.AppendUint32(dst, uint32(len(v.Path)))
	dst = append(dst, v.Path...)
	return dst
}

// appendGraphValue encodes one correlation-graph node in the g/ record
// format.
func appendGraphValue(dst []byte, total float64, edges []graph.Edge) []byte {
	le := binary.LittleEndian
	dst = le.AppendUint64(dst, math.Float64bits(total))
	dst = le.AppendUint32(dst, uint32(len(edges)))
	for _, e := range edges {
		dst = le.AppendUint32(dst, uint32(e.To))
		dst = le.AppendUint64(dst, math.Float64bits(e.Weight))
	}
	return dst
}

// stageStateLocked stages the model's complete lists, vectors and graph (no
// config record) — the per-shard half of a merged ensemble save — recording
// each written key in saved for the caller's prune. Encoding is direct
// appends on one reused scratch slice (the writer copies what it stages);
// the old bytes.Buffer + reflection-driven binary.Write path allocated per
// field on every key of every checkpoint. Callers hold m.mu.
func (m *Model) stageStateLocked(w kvWriter, saved *savedKeys) error {
	scratch := make([]byte, 0, 512)
	for f, list := range m.lists {
		scratch = appendListValue(scratch[:0], list)
		if err := w.Put(listKey(f), scratch); err != nil {
			return fmt.Errorf("core: saving list %d: %w", f, err)
		}
		saved.lists[f] = struct{}{}
	}
	for f, v := range m.vectors {
		scratch = appendVectorValue(scratch[:0], &v)
		if err := w.Put(vectorKey(f), scratch); err != nil {
			return fmt.Errorf("core: saving vector %d: %w", f, err)
		}
		saved.vecs[f] = struct{}{}
	}
	var gerr error
	m.g.Export(func(from trace.FileID, total float64, edges []graph.Edge) bool {
		scratch = appendGraphValue(scratch[:0], total, edges)
		if gerr = w.Put(graphKey(from), scratch); gerr != nil {
			gerr = fmt.Errorf("core: saving graph node %d: %w", from, gerr)
			return false
		}
		saved.graphs[from] = struct{}{}
		return true
	})
	return gerr
}

// stageDeltaLocked stages only the dirty files: for each marked facet, a Put
// of its current encoding when the model still holds it, a tombstone Delete
// when it dropped (a list the validity filter emptied must not resurrect on
// reload). Callers hold m.mu.
func (m *Model) stageDeltaLocked(w kvWriter) error {
	scratch := make([]byte, 0, 512)
	for f, bits := range m.dirty {
		if bits&dirtyList != 0 {
			if list, ok := m.lists[f]; ok {
				scratch = appendListValue(scratch[:0], list)
				if err := w.Put(listKey(f), scratch); err != nil {
					return fmt.Errorf("core: saving list %d: %w", f, err)
				}
			} else if err := w.Delete(listKey(f)); err != nil {
				return fmt.Errorf("core: tombstoning list %d: %w", f, err)
			}
		}
		if bits&dirtyVec != 0 {
			if v, ok := m.vectors[f]; ok {
				scratch = appendVectorValue(scratch[:0], &v)
				if err := w.Put(vectorKey(f), scratch); err != nil {
					return fmt.Errorf("core: saving vector %d: %w", f, err)
				}
			} else if err := w.Delete(vectorKey(f)); err != nil {
				return fmt.Errorf("core: tombstoning vector %d: %w", f, err)
			}
		}
		if bits&dirtyGraph != 0 {
			if total, edges, ok := m.g.ExportNode(f); ok {
				scratch = appendGraphValue(scratch[:0], total, edges)
				if err := w.Put(graphKey(f), scratch); err != nil {
					return fmt.Errorf("core: saving graph node %d: %w", f, err)
				}
			} else if err := w.Delete(graphKey(f)); err != nil {
				return fmt.Errorf("core: tombstoning graph node %d: %w", f, err)
			}
		}
	}
	return nil
}

// stageWindow stages the m/window record (count + file ids, oldest first).
func stageWindow(w kvWriter, win []trace.FileID) error {
	buf := make([]byte, 0, 4+4*len(win))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(win)))
	for _, f := range win {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(f))
	}
	if err := w.Put([]byte(keyWindow), buf); err != nil {
		return fmt.Errorf("core: saving window: %w", err)
	}
	return nil
}

// readWindow reads the m/window record; an absent record (a pre-window
// store) is an empty window.
func readWindow(s *kvstore.Store) ([]trace.FileID, error) {
	raw, ok := s.Get([]byte(keyWindow))
	if !ok {
		return nil, nil
	}
	if len(raw) < 4 {
		return nil, fmt.Errorf("core: corrupt persisted window (%d bytes)", len(raw))
	}
	// Compare in int, not uint32: 4*n wraps at n >= 2^30, which would let a
	// corrupt count pass the check and panic on the slice below.
	n := int(binary.LittleEndian.Uint32(raw[:4]))
	if len(raw)-4 != 4*n {
		return nil, fmt.Errorf("core: corrupt persisted window: %d ids in %d bytes", n, len(raw))
	}
	w := make([]trace.FileID, n)
	for i := range w {
		w[i] = trace.FileID(binary.LittleEndian.Uint32(raw[4+4*i:]))
	}
	return w, nil
}

// stageConfig stages the m/config record binding a saved state to its
// mining parameters and ingest counter.
func stageConfig(w kvWriter, weight, maxStrength float64, fed uint64) error {
	buf := make([]byte, 0, 24)
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(weight))
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(maxStrength))
	buf = binary.LittleEndian.AppendUint64(buf, fed)
	if err := w.Put([]byte(keyConfig), buf); err != nil {
		return fmt.Errorf("core: saving config: %w", err)
	}
	return nil
}

// ReadSavedConfig reports the mining parameters and ingest position a
// store's checkpoint was saved with — how a catch-up installer pre-checks
// compatibility before discarding its own state for the incoming one.
func ReadSavedConfig(s *kvstore.Store) (weight, maxStrength float64, fed uint64, err error) {
	return readConfig(s)
}

// readConfig reads and decodes the m/config record.
func readConfig(s *kvstore.Store) (weight, maxStrength float64, fed uint64, err error) {
	raw, ok := s.Get([]byte(keyConfig))
	if !ok {
		return 0, 0, 0, fmt.Errorf("core: store has no persisted model")
	}
	if len(raw) != 24 {
		return 0, 0, 0, fmt.Errorf("core: corrupt persisted config (%d bytes)", len(raw))
	}
	weight = math.Float64frombits(binary.LittleEndian.Uint64(raw[0:8]))
	maxStrength = math.Float64frombits(binary.LittleEndian.Uint64(raw[8:16]))
	fed = binary.LittleEndian.Uint64(raw[16:24])
	return weight, maxStrength, fed, nil
}

// LoadFrom restores mined state saved by SaveTo into a freshly-constructed
// model. The model's configuration must match the persisted weight and
// threshold (guarding against silently mixing incompatible parameters).
func (m *Model) LoadFrom(s *kvstore.Store) error {
	weight, strength, fed, err := readConfig(s)
	if err != nil {
		return err
	}
	epoch, _, _, err := readEpoch(s)
	if err != nil {
		return err
	}
	if weight != m.cfg.Weight || strength != m.cfg.MaxStrength {
		return fmt.Errorf("core: persisted parameters (p=%v, max_strength=%v) differ from model (p=%v, max_strength=%v)",
			weight, strength, m.cfg.Weight, m.cfg.MaxStrength)
	}

	// Decode outside the lock, install atomically: a concurrent reader sees
	// either the pre-load or the fully loaded model, never a half-restored
	// one.
	lists := make(map[trace.FileID][]Correlator)
	vecs := make(map[trace.FileID]vsm.Vector)
	type gnode struct {
		total float64
		edges []graph.Edge
	}
	gnodes := make(map[trace.FileID]gnode)
	if err := scanState(s,
		func(f trace.FileID, list []Correlator) { lists[f] = list },
		func(f trace.FileID, vec vsm.Vector) { vecs[f] = vec },
		func(f trace.FileID, total float64, edges []graph.Edge) { gnodes[f] = gnode{total, edges} },
	); err != nil {
		return err
	}
	window, err := readWindow(s)
	if err != nil {
		return err
	}
	m.mu.Lock()
	m.fed = fed
	for f, list := range lists {
		m.lists[f] = list
		m.notifyListChange(f)
	}
	for f, vec := range vecs {
		m.vectors[f] = vec
	}
	for f, n := range gnodes {
		m.g.RestoreNode(f, n.total, n.edges)
	}
	// The model now equals the store: future mutations are a delta against
	// this epoch (a pre-epoch store leaves saveEpoch 0, which SaveDelta
	// refuses — the first post-load save is full and establishes one).
	m.resetDirtyLocked()
	m.ckptStore, m.saveEpoch = s, epoch
	m.mu.Unlock()
	m.PrimeWindow(window)
	return nil
}

// scanState decodes every persisted list, vector and graph node, handing
// each to the callback that installs it — shared by the whole-model and
// routed (per-owning-shard) load paths. putGraph may be nil to skip graph
// records.
func scanState(s *kvstore.Store,
	putList func(trace.FileID, []Correlator),
	putVec func(trace.FileID, vsm.Vector),
	putGraph func(trace.FileID, float64, []graph.Edge)) error {
	var loadErr error
	s.Scan([]byte(keyPrefixList), prefixEnd(keyPrefixList), func(k, v []byte) bool {
		if len(k) != len(keyPrefixList)+4 {
			loadErr = fmt.Errorf("core: bad list key %q", k)
			return false
		}
		f := trace.FileID(binary.BigEndian.Uint32(k[len(keyPrefixList):]))
		list, err := decodeList(v)
		if err != nil {
			loadErr = fmt.Errorf("core: list %d: %w", f, err)
			return false
		}
		putList(f, list)
		return true
	})
	if loadErr != nil {
		return loadErr
	}
	s.Scan([]byte(keyPrefixVector), prefixEnd(keyPrefixVector), func(k, v []byte) bool {
		if len(k) != len(keyPrefixVector)+4 {
			loadErr = fmt.Errorf("core: bad vector key %q", k)
			return false
		}
		f := trace.FileID(binary.BigEndian.Uint32(k[len(keyPrefixVector):]))
		vec, err := decodeVector(v)
		if err != nil {
			loadErr = fmt.Errorf("core: vector %d: %w", f, err)
			return false
		}
		putVec(f, vec)
		return true
	})
	if loadErr != nil || putGraph == nil {
		return loadErr
	}
	s.Scan([]byte(keyPrefixGraph), prefixEnd(keyPrefixGraph), func(k, v []byte) bool {
		if len(k) != len(keyPrefixGraph)+4 {
			loadErr = fmt.Errorf("core: bad graph key %q", k)
			return false
		}
		f := trace.FileID(binary.BigEndian.Uint32(k[len(keyPrefixGraph):]))
		total, edges, err := decodeGraphNode(v)
		if err != nil {
			loadErr = fmt.Errorf("core: graph node %d: %w", f, err)
			return false
		}
		putGraph(f, total, edges)
		return true
	})
	return loadErr
}

// SaveMerged writes the ensemble's complete mined state as ONE logical
// model. Shard state is disjoint, so the union of the per-shard lists and
// vectors under the ordinary key layout is exactly what a single Model
// mining the same stream would save: a merged save is loadable by
// Model.LoadFrom, and by LoadMerged at ANY stripe count or partitioner —
// the persistence half of resizing a cluster between runs.
//
// SaveMerged holds the dispatch lock, so a checkpoint taken while other
// goroutines Feed captures a consistent cut of the stream: state and the
// fed counter as of some exact record boundary, never a snapshot torn
// across shards. Like a previous save's checkpoint, stale keys are pruned.
// The whole checkpoint commits as one atomic kvstore batch, and a completed
// save (re)binds the ensemble's dirty tracking to the store so the next
// SaveCheckpoint can write just the delta.
// (Events applied through ApplyExternal bypass the local dispatcher; a
// server mined remotely should quiesce its owner before checkpointing.)
func (s *ShardedModel) SaveMerged(st *kvstore.Store) error {
	s.dmu.Lock()
	defer s.dmu.Unlock()
	return s.saveMergedLocked(st)
}

func (s *ShardedModel) saveMergedLocked(st *kvstore.Store) error {
	epoch, _, _, err := readEpoch(st)
	if err != nil {
		return err
	}
	saved := newSavedKeys()
	err = st.Batch(func(b *kvstore.Batch) error {
		for _, m := range s.shards {
			m.mu.Lock()
			serr := m.stageStateLocked(b, saved)
			if serr == nil {
				m.resetDirtyLocked()
			}
			m.mu.Unlock()
			if serr != nil {
				return serr
			}
		}
		if err := saved.prune(st, b); err != nil {
			return err
		}
		if err := stageWindow(b, s.windowTailLocked()); err != nil {
			return err
		}
		if err := stageConfig(b, s.cfg.Weight, s.cfg.MaxStrength, s.disp.Dispatched()); err != nil {
			return err
		}
		return stageEpoch(b, epoch+1, s.disp.Dispatched())
	})
	if err != nil {
		s.ckptStore = nil
		return err
	}
	s.ckptStore, s.saveEpoch = st, epoch+1
	return nil
}

// SaveCheckpoint writes the cheapest valid checkpoint into st: the dirty-key
// delta when st is the store (at the epoch) the last completed save or load
// synchronized with, a full SaveMerged otherwise. It reports whether the
// delta path ran — the caller's cue that compaction is unnecessary. This is
// the method a periodically checkpointing daemon should use: its cost tracks
// the write rate between checkpoints, not the model size.
func (s *ShardedModel) SaveCheckpoint(st *kvstore.Store) (incremental bool, err error) {
	s.dmu.Lock()
	defer s.dmu.Unlock()
	if s.ckptStore != st || s.saveEpoch == 0 {
		return false, s.saveMergedLocked(st)
	}
	epoch, _, ok, err := readEpoch(st)
	if err != nil || !ok || epoch != s.saveEpoch {
		return false, s.saveMergedLocked(st)
	}
	err = st.Batch(func(b *kvstore.Batch) error {
		for _, m := range s.shards {
			m.mu.Lock()
			serr := m.stageDeltaLocked(b)
			if serr == nil {
				m.resetDirtyLocked()
			}
			m.mu.Unlock()
			if serr != nil {
				return serr
			}
		}
		if err := stageWindow(b, s.windowTailLocked()); err != nil {
			return err
		}
		if err := stageConfig(b, s.cfg.Weight, s.cfg.MaxStrength, s.disp.Dispatched()); err != nil {
			return err
		}
		return stageEpoch(b, epoch+1, s.disp.Dispatched())
	})
	if err != nil {
		s.ckptStore = nil
		return false, err
	}
	s.saveEpoch = epoch + 1
	return true, nil
}

// windowTailLocked reads the ensemble's live lookahead window holding dmu:
// the dispatcher's window when dispatch routes events, the lone Model's own
// window on the single-shard fast path (which bypasses the dispatcher).
func (s *ShardedModel) windowTailLocked() []trace.FileID {
	if len(s.shards) == 1 {
		return s.shards[0].WindowTail()
	}
	return s.disp.Window()
}

// WindowTail returns a copy of the ensemble's lookahead window, oldest
// first.
func (s *ShardedModel) WindowTail() []trace.FileID {
	s.dmu.Lock()
	defer s.dmu.Unlock()
	return s.windowTailLocked()
}

// PrimeWindow replaces the ensemble's lookahead window without feeding — the
// restore half of WindowTail (see Model.PrimeWindow).
func (s *ShardedModel) PrimeWindow(w []trace.FileID) {
	s.dmu.Lock()
	defer s.dmu.Unlock()
	s.primeWindowLocked(w)
}

func (s *ShardedModel) primeWindowLocked(w []trace.FileID) {
	if len(s.shards) == 1 {
		s.shards[0].PrimeWindow(w)
		return
	}
	s.disp.PrimeWindow(w)
}

// LoadMerged restores a merged save into a freshly-constructed ensemble —
// enforced: an ensemble that has already ingested refuses the load (it
// would merge two models and double-count the fed counter) — rebalancing
// every list and vector onto the shard the ensemble's current partitioner
// assigns it to. The stripe count and partitioner may differ
// freely from the ones that produced the save (that is the point); the
// mining parameters must match, as in LoadFrom. Predictions after a load
// are identical at any stripe count.
func (s *ShardedModel) LoadMerged(st *kvstore.Store) error {
	weight, strength, fed, err := readConfig(st)
	if err != nil {
		return err
	}
	if weight != s.cfg.Weight || strength != s.cfg.MaxStrength {
		return fmt.Errorf("core: persisted parameters (p=%v, max_strength=%v) differ from model (p=%v, max_strength=%v)",
			weight, strength, s.cfg.Weight, s.cfg.MaxStrength)
	}
	// Route while decoding, install each shard under one lock — readers
	// observe the usual consistent-per-shard snapshot, never a shard caught
	// mid-restore. The dispatch lock excludes concurrent feeding for the
	// whole install, so the restored counter and state land atomically —
	// and the freshness check below cannot race a Feed (checking outside
	// the lock would let a record slip in between check and install,
	// merging models and double-counting the fed counter).
	s.dmu.Lock()
	defer s.dmu.Unlock()
	if fedNow := s.disp.Dispatched(); fedNow > 0 {
		return fmt.Errorf("core: cannot load into an ensemble that has already ingested %d records", fedNow)
	}
	n := len(s.shards)
	lists := make([]map[trace.FileID][]Correlator, n)
	vecs := make([]map[trace.FileID]vsm.Vector, n)
	type gnode struct {
		total float64
		edges []graph.Edge
	}
	gnodes := make([]map[trace.FileID]gnode, n)
	for i := 0; i < n; i++ {
		lists[i] = make(map[trace.FileID][]Correlator)
		vecs[i] = make(map[trace.FileID]vsm.Vector)
		gnodes[i] = make(map[trace.FileID]gnode)
	}
	if err := scanState(st,
		func(f trace.FileID, list []Correlator) { lists[s.ownerOf(f)][f] = list },
		func(f trace.FileID, vec vsm.Vector) { vecs[s.ownerOf(f)][f] = vec },
		func(f trace.FileID, total float64, edges []graph.Edge) {
			gnodes[s.ownerOf(f)][f] = gnode{total, edges}
		},
	); err != nil {
		return err
	}
	window, err := readWindow(st)
	if err != nil {
		return err
	}
	for i, m := range s.shards {
		m.mu.Lock()
		for f, list := range lists[i] {
			m.lists[f] = list
			m.notifyListChange(f)
		}
		for f, vec := range vecs[i] {
			m.vectors[f] = vec
		}
		for f, gn := range gnodes[i] {
			m.g.RestoreNode(f, gn.total, gn.edges)
		}
		m.mu.Unlock()
	}
	if len(s.shards) == 1 {
		// Single-shard parity: the lone Model carries the ensemble's fed
		// counter, exactly as if it had mined the stream itself.
		m := s.shards[0]
		m.mu.Lock()
		m.fed = fed
		m.mu.Unlock()
	}
	s.primeWindowLocked(window)
	s.disp.Advance(fed)
	// The ensemble now equals the store: start dirty tracking so the next
	// SaveCheckpoint into this same store can be a delta. (A catch-up
	// install loads from a transient in-memory store; its binding simply
	// never matches the daemon's real store, forcing the next save full —
	// exactly right, since the real store knows nothing of this state.)
	epoch, _, _, err := readEpoch(st)
	if err != nil {
		return err
	}
	for _, m := range s.shards {
		m.mu.Lock()
		m.resetDirtyLocked()
		m.mu.Unlock()
	}
	s.ckptStore, s.saveEpoch = st, epoch
	return nil
}

func decodeList(raw []byte) ([]Correlator, error) {
	r := bytes.NewReader(raw)
	var n uint32
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return nil, err
	}
	if int(n) > len(raw)/28+1 {
		return nil, fmt.Errorf("unreasonable list length %d", n)
	}
	list := make([]Correlator, 0, n)
	for i := uint32(0); i < n; i++ {
		var f uint32
		var deg, sim, freq uint64
		if err := binary.Read(r, binary.LittleEndian, &f); err != nil {
			return nil, err
		}
		for _, dst := range []*uint64{&deg, &sim, &freq} {
			if err := binary.Read(r, binary.LittleEndian, dst); err != nil {
				return nil, err
			}
		}
		list = append(list, Correlator{
			File:   trace.FileID(f),
			Degree: math.Float64frombits(deg),
			Sim:    math.Float64frombits(sim),
			Freq:   math.Float64frombits(freq),
		})
	}
	return list, nil
}

func decodeGraphNode(raw []byte) (total float64, edges []graph.Edge, err error) {
	if len(raw) < 12 {
		return 0, nil, fmt.Errorf("graph node value is %d bytes, want >= 12", len(raw))
	}
	le := binary.LittleEndian
	total = math.Float64frombits(le.Uint64(raw[:8]))
	// Compare in int, not uint32: 12*n wraps for large corrupt counts,
	// which would pass the check, demand a multi-GiB allocation and then
	// panic indexing raw — reachable from a hostile catch-up snapshot, so
	// this must be a decode error, never a crash.
	n := int(le.Uint32(raw[8:12]))
	if len(raw)-12 != 12*n {
		return 0, nil, fmt.Errorf("graph node: %d edges in %d bytes", n, len(raw))
	}
	edges = make([]graph.Edge, n)
	for i := range edges {
		off := 12 + 12*i
		edges[i] = graph.Edge{
			To:     trace.FileID(le.Uint32(raw[off:])),
			Weight: math.Float64frombits(le.Uint64(raw[off+4:])),
		}
	}
	return total, edges, nil
}

// Lister is the read surface a state fingerprint needs; Model and
// ShardedModel both satisfy it.
type Lister interface {
	CorrelatorList(f trace.FileID) []Correlator
}

// StateFingerprint hashes the complete mined correlation state over the
// dense FileID space [0, fileCount): list lengths, successor ids and the
// exact float64 bits of every degree component. Two miners agree on the
// fingerprint iff their Correlator Lists are bit-identical — the equality
// the replication layer verifies after a catch-up transfer and the replay
// harness asserts between deployment shapes.
func StateFingerprint(m Lister, fileCount int) uint64 {
	return fingerprintLists(m.CorrelatorList, fileCount)
}

// StoreFingerprint computes the StateFingerprint of the model state
// persisted in a store, without constructing a model — how a replication
// follower verifies a checkpoint snapshot BEFORE installing it.
func StoreFingerprint(st *kvstore.Store, fileCount int) (uint64, error) {
	lists := make(map[trace.FileID][]Correlator)
	if err := scanState(st,
		func(f trace.FileID, list []Correlator) { lists[f] = list },
		func(trace.FileID, vsm.Vector) {},
		nil,
	); err != nil {
		return 0, err
	}
	return fingerprintLists(func(f trace.FileID) []Correlator { return lists[f] }, fileCount), nil
}

func fingerprintLists(get func(trace.FileID) []Correlator, fileCount int) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	wr := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	for f := 0; f < fileCount; f++ {
		list := get(trace.FileID(f))
		if len(list) == 0 {
			continue
		}
		wr(uint64(f))
		wr(uint64(len(list)))
		for _, c := range list {
			wr(uint64(c.File))
			wr(math.Float64bits(c.Degree))
			wr(math.Float64bits(c.Sim))
			wr(math.Float64bits(c.Freq))
		}
	}
	return h.Sum64()
}

// trackedFileCount reports 1 + the highest FileID carrying any mined state
// (list, vector or graph node), holding m.mu.
func (m *Model) trackedFileCount() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	max := -1
	for f := range m.lists {
		if int(f) > max {
			max = int(f)
		}
	}
	for f := range m.vectors {
		if int(f) > max {
			max = int(f)
		}
	}
	m.g.Export(func(from trace.FileID, _ float64, _ []graph.Edge) bool {
		if int(from) > max {
			max = int(from)
		}
		return true
	})
	return max + 1
}

// TrackedFileCount reports 1 + the highest FileID the ensemble holds any
// mined state for — the dense fingerprint bound a checkpoint cut ships so
// both ends hash the same FileID space.
func (s *ShardedModel) TrackedFileCount() int {
	max := 0
	for _, m := range s.shards {
		if n := m.trackedFileCount(); n > max {
			max = n
		}
	}
	return max
}

func decodeVector(raw []byte) (vsm.Vector, error) {
	r := bytes.NewReader(raw)
	var v vsm.Vector
	var n uint32
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return v, err
	}
	if int(n) > len(raw) {
		return v, fmt.Errorf("unreasonable scalar count %d", n)
	}
	readStr := func() (string, error) {
		var l uint32
		if err := binary.Read(r, binary.LittleEndian, &l); err != nil {
			return "", err
		}
		if int(l) > r.Len() {
			return "", fmt.Errorf("string length %d exceeds remaining %d", l, r.Len())
		}
		b := make([]byte, l)
		// io.ReadFull, not r.Read: an empty string at the end of the value
		// (every vector of a pathless trace) must decode as "", not EOF.
		if _, err := io.ReadFull(r, b); err != nil {
			return "", err
		}
		return string(b), nil
	}
	for i := uint32(0); i < n; i++ {
		sc, err := readStr()
		if err != nil {
			return v, err
		}
		v.Scalars = append(v.Scalars, sc)
	}
	path, err := readStr()
	if err != nil {
		return v, err
	}
	v.Path = path
	return v, nil
}
