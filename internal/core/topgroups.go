// Top-k correlation groups by strength — the paper's §4 evaluation
// artifacts (which files correlate, and how strongly) computed live from
// the mined model so `farmerctl top` can stream them from a running
// daemon instead of reconstructing them post-hoc from a checkpoint.
package core

import (
	"sort"

	"farmer/internal/trace"
)

// CorrelatedGroup is one file's correlation neighborhood ranked for the
// live top-k view: the seed file, the members of its Correlator List (in
// stored order, strongest first), and the group's strength — the sum of
// the list's correlation degrees, the same key replica.Manager orders its
// grouping seeds by.
type CorrelatedGroup struct {
	Seed     trace.FileID
	Files    []trace.FileID
	Strength float64
}

// TopGroups returns the k strongest correlation groups, ordered by
// decreasing strength with ties toward the lowest seed id (deterministic:
// two bit-identical models return identical rankings). k <= 0 returns nil.
func (m *Model) TopGroups(k int) []CorrelatedGroup {
	if k <= 0 {
		return nil
	}
	m.mu.RLock()
	groups := make([]CorrelatedGroup, 0, len(m.lists))
	for f, l := range m.lists {
		if len(l) == 0 {
			continue
		}
		g := CorrelatedGroup{Seed: f, Files: make([]trace.FileID, len(l))}
		for i, c := range l {
			g.Files[i] = c.File
			g.Strength += c.Degree
		}
		groups = append(groups, g)
	}
	m.mu.RUnlock()
	return topK(groups, k)
}

// TopGroups merges the shards' rankings: group membership never crosses a
// shard boundary (a file's list lives only on its owning shard), so the
// global top-k is exactly the k best of the per-shard top-k's.
func (s *ShardedModel) TopGroups(k int) []CorrelatedGroup {
	if k <= 0 {
		return nil
	}
	if len(s.shards) == 1 {
		return s.shards[0].TopGroups(k)
	}
	var all []CorrelatedGroup
	for _, m := range s.shards {
		all = append(all, m.TopGroups(k)...)
	}
	return topK(all, k)
}

// topK sorts by strength descending (ties toward the lowest seed) and
// truncates to k.
func topK(groups []CorrelatedGroup, k int) []CorrelatedGroup {
	sort.Slice(groups, func(i, j int) bool {
		if groups[i].Strength != groups[j].Strength {
			return groups[i].Strength > groups[j].Strength
		}
		return groups[i].Seed < groups[j].Seed
	})
	if len(groups) > k {
		groups = groups[:k]
	}
	return groups
}
