package core

import (
	"math"
	"math/rand/v2"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"farmer/internal/graph"
	"farmer/internal/trace"
	"farmer/internal/vsm"
)

// mkTrace builds records from (file, uid, pid, host, path) tuples.
type acc struct {
	f    trace.FileID
	uid  uint32
	pid  uint32
	host uint32
	path string
}

func feed(m *Model, accs []acc) {
	for i, a := range accs {
		m.Feed(&trace.Record{
			Seq: uint64(i), Time: time.Duration(i), File: a.f,
			UID: a.uid, PID: a.pid, Host: a.host, Path: a.path,
		})
	}
}

func defaultFor(test *testing.T, weight, maxStrength float64) Config {
	cfg := DefaultConfig()
	cfg.Weight = weight
	cfg.MaxStrength = maxStrength
	if err := cfg.Validate(); err != nil {
		test.Fatal(err)
	}
	return cfg
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{Weight: -0.1},
		{Weight: 1.5},
		{Weight: 0.5, MaxStrength: -1},
		{Weight: 0.5, MaxStrength: 2},
		{Weight: 0.5, MaxStrength: 0.4, MaxCorrelators: -1},
	}
	for i, c := range bad {
		if c.Validate() == nil {
			t.Errorf("config %d accepted: %+v", i, c)
		}
	}
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config rejected: %v", err)
	}
}

func TestNewPanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New did not panic on invalid config")
		}
	}()
	New(Config{Weight: 7})
}

// TestCorrelationDegreeFormula checks R = p·sim + (1−p)·F on a controlled
// two-file stream.
func TestCorrelationDegreeFormula(t *testing.T) {
	cfg := defaultFor(t, 0.7, 0.0)
	cfg.Graph = graph.Config{Window: 1}
	m := New(cfg)
	// Same user/host, different process, sibling paths. IPA:
	// scalars u:1,h:1 vs u:1,h:1 + p:1 vs p:2 -> 2 matches of 3 scalars;
	// paths /d/a vs /d/b -> 1/2. sim = 2.5/4.
	feed(m, []acc{
		{f: 0, uid: 1, pid: 1, host: 1, path: "/d/a"},
		{f: 1, uid: 1, pid: 2, host: 1, path: "/d/b"},
	})
	wantSim := 2.5 / 4.0
	wantFreq := 1.0
	want := 0.7*wantSim + 0.3*wantFreq
	if got := m.Degree(0, 1); math.Abs(got-want) > 1e-12 {
		t.Fatalf("R(0,1) = %v, want %v", got, want)
	}
	list := m.CorrelatorList(0)
	if len(list) != 1 || math.Abs(list[0].Sim-wantSim) > 1e-12 || math.Abs(list[0].Freq-wantFreq) > 1e-12 {
		t.Fatalf("correlator components wrong: %+v", list)
	}
}

// TestThresholdFiltering: a weak correlation must be filtered out of the
// Correlator List entirely (paper §3.2.4).
func TestThresholdFiltering(t *testing.T) {
	cfg := defaultFor(t, 0.7, 0.9) // very strict threshold
	m := New(cfg)
	feed(m, []acc{
		{f: 0, uid: 1, pid: 1, host: 1, path: "/a/x"},
		{f: 1, uid: 2, pid: 2, host: 2, path: "/b/y"},
	})
	if got := m.CorrelatorList(0); got != nil {
		t.Fatalf("weak correlation survived threshold: %+v", got)
	}
	if m.Predict(0, 4) != nil {
		t.Fatal("Predict returned filtered candidates")
	}
}

// TestThresholdEviction: an entry that later falls below the threshold (its
// frequency diluted by other successors) must be evicted on re-evaluation.
func TestThresholdEviction(t *testing.T) {
	cfg := defaultFor(t, 0.0, 0.5) // pure frequency
	cfg.Graph = graph.Config{Window: 1}
	m := New(cfg)
	// 0->1 once: F = 1.0 -> enters list.
	feed(m, []acc{{f: 0}, {f: 1}})
	if m.Degree(0, 1) == 0 {
		t.Fatal("edge missing before dilution")
	}
	// Now 0->2 three times: F(0,1) = 0.25 < 0.5; the next 0->1 observation
	// must evict it.
	feed(m, []acc{{f: 0}, {f: 2}, {f: 0}, {f: 2}, {f: 0}, {f: 2}, {f: 0}, {f: 1}})
	if got := m.Degree(0, 1); got != 0 {
		t.Fatalf("diluted edge survived: %v", got)
	}
}

// TestSortingStage: the Correlator List is ordered by decreasing degree.
func TestSortingStage(t *testing.T) {
	cfg := defaultFor(t, 0.0, 0.0)
	cfg.Graph = graph.Config{Window: 1}
	m := New(cfg)
	// 0->1 three times, 0->2 once: F(0,1)=0.75 > F(0,2)=0.25.
	feed(m, []acc{{f: 0}, {f: 1}, {f: 0}, {f: 1}, {f: 0}, {f: 1}, {f: 0}, {f: 2}})
	list := m.CorrelatorList(0)
	if len(list) != 2 {
		t.Fatalf("list length = %d, want 2", len(list))
	}
	if list[0].File != 1 || list[1].File != 2 {
		t.Fatalf("list not sorted by degree: %+v", list)
	}
	if p := m.Predict(0, 1); len(p) != 1 || p[0] != 1 {
		t.Fatalf("Predict top-1 = %v, want [1]", p)
	}
}

// TestSemanticTermBreaksInterleaving is the paper's central claim in
// miniature: two processes interleave their sequences; pure frequency (p=0,
// i.e. Nexus) confuses cross-process successors, while FARMER's semantic
// term (p=0.7) ranks the same-process successor first.
func TestSemanticTermBreaksInterleaving(t *testing.T) {
	// Process 1 accesses 0 then 1 (same dir); process 2 accesses 2 then 3.
	// The interleaved global order is 0,2,1,3 repeatedly, so by pure
	// sequence, 2 looks like 0's successor as often as 1 does (and at
	// shorter distance).
	mk := func(weight float64) *Model {
		cfg := defaultFor(t, weight, 0.0)
		cfg.Graph = graph.Config{Window: 2, Decrement: 0.1}
		return New(cfg)
	}
	stream := []acc{
		{f: 0, uid: 1, pid: 1, host: 1, path: "/proj/alpha/src"},
		{f: 2, uid: 2, pid: 2, host: 2, path: "/proj/beta/src"},
		{f: 1, uid: 1, pid: 1, host: 1, path: "/proj/alpha/hdr"},
		{f: 3, uid: 2, pid: 2, host: 2, path: "/proj/beta/hdr"},
	}
	var rep []acc
	for i := 0; i < 10; i++ {
		rep = append(rep, stream...)
	}

	nexusLike := mk(0.0)
	feed(nexusLike, rep)
	farmer := mk(0.7)
	feed(farmer, rep)

	// Pure frequency ranks 2 at least as high as 1 for predecessor 0
	// (distance 1 vs 2 in every round).
	nl := nexusLike.CorrelatorList(0)
	if len(nl) < 2 || nl[0].File != 2 {
		t.Fatalf("frequency-only baseline should prefer interleaved 2: %+v", nl)
	}
	// FARMER must prefer the semantically-related same-process file 1.
	fl := farmer.CorrelatorList(0)
	if len(fl) == 0 || fl[0].File != 1 {
		t.Fatalf("FARMER should prefer same-process successor 1: %+v", fl)
	}
}

// TestReductionToNexus (E11): with p = 0 the degree is exactly the Nexus
// frequency — the semantic machinery contributes nothing.
func TestReductionToNexus(t *testing.T) {
	cfg := defaultFor(t, 0.0, 0.0)
	cfg.Graph = graph.Config{Window: 3, Decrement: 0.1}
	m := New(cfg)
	g := graph.New(graph.Config{Window: 3, Decrement: 0.1})
	rng := rand.New(rand.NewPCG(11, 12))
	for i := 0; i < 400; i++ {
		f := trace.FileID(rng.IntN(10))
		m.Feed(&trace.Record{Seq: uint64(i), File: f, UID: uint32(rng.IntN(3)), Path: "/p"})
		g.Feed(f)
	}
	for x := trace.FileID(0); x < 10; x++ {
		for _, e := range g.Successors(x) {
			wantF := g.Frequency(x, e.To)
			got := m.Degree(x, e.To)
			if got == 0 {
				continue // filtered (threshold 0 keeps >0 only; F could be stale) — check below
			}
			// Degree was computed at the last co-occurrence; recompute from
			// the model's own components instead of requiring exact N match.
			var entry *Correlator
			for i, c := range m.CorrelatorList(x) {
				if c.File == e.To {
					entry = &m.CorrelatorList(x)[i]
					break
				}
			}
			if entry == nil {
				continue
			}
			if entry.Sim != 0 && cfg.Weight == 0 && entry.Degree != entry.Freq {
				t.Fatalf("p=0 degree %v != freq %v", entry.Degree, entry.Freq)
			}
			_ = wantF
		}
	}
}

// TestReductionDegreeIsPureFrequency asserts the algebraic reduction
// directly: with p = 0, Degree == Freq for every list entry.
func TestReductionDegreeIsPureFrequency(t *testing.T) {
	cfg := defaultFor(t, 0.0, 0.0)
	m := New(cfg)
	rng := rand.New(rand.NewPCG(5, 6))
	for i := 0; i < 500; i++ {
		m.Feed(&trace.Record{Seq: uint64(i), File: trace.FileID(rng.IntN(8)), UID: 1, Path: "/same/dir/f"})
	}
	for f := trace.FileID(0); f < 8; f++ {
		for _, c := range m.CorrelatorList(f) {
			if math.Abs(c.Degree-c.Freq) > 1e-12 {
				t.Fatalf("p=0 entry degree %v != freq %v", c.Degree, c.Freq)
			}
		}
	}
}

// TestReductionDegreeIsPureSemantic: with p = 1, Degree == Sim.
func TestReductionDegreeIsPureSemantic(t *testing.T) {
	cfg := defaultFor(t, 1.0, 0.0)
	m := New(cfg)
	rng := rand.New(rand.NewPCG(9, 10))
	for i := 0; i < 300; i++ {
		f := trace.FileID(rng.IntN(6))
		m.Feed(&trace.Record{Seq: uint64(i), File: f, UID: uint32(f % 2), Path: "/d/x"})
	}
	for f := trace.FileID(0); f < 6; f++ {
		for _, c := range m.CorrelatorList(f) {
			if math.Abs(c.Degree-c.Sim) > 1e-12 {
				t.Fatalf("p=1 entry degree %v != sim %v", c.Degree, c.Sim)
			}
		}
	}
}

// TestReductionToPBS (E11): restricted to the Process attribute with full
// semantic weight, the model's preference matches a Program-Based Successor
// scheme: successors from the same program rank above successors from other
// programs.
func TestReductionToPBS(t *testing.T) {
	cfg := defaultFor(t, 1.0, 0.0)
	cfg.Mask = vsm.MaskOf(vsm.AttrProcess)
	cfg.Graph = graph.Config{Window: 2, Decrement: 0.1}
	m := New(cfg)
	stream := []acc{
		{f: 0, pid: 1}, {f: 1, pid: 1}, // program 1: 0 -> 1
		{f: 0, pid: 1}, {f: 2, pid: 2}, // program 2 interleaves file 2
	}
	var rep []acc
	for i := 0; i < 5; i++ {
		rep = append(rep, stream...)
	}
	feed(m, rep)
	list := m.CorrelatorList(0)
	if len(list) == 0 || list[0].File != 1 {
		t.Fatalf("process-only FARMER should behave like PBS (prefer 1): %+v", list)
	}
}

// TestReductionToPULS: user-only mask prefers the same-user successor.
func TestReductionToPULS(t *testing.T) {
	cfg := defaultFor(t, 1.0, 0.0)
	cfg.Mask = vsm.MaskOf(vsm.AttrUser)
	cfg.Graph = graph.Config{Window: 2, Decrement: 0.1}
	m := New(cfg)
	var rep []acc
	for i := 0; i < 5; i++ {
		rep = append(rep,
			acc{f: 0, uid: 1}, acc{f: 1, uid: 1},
			acc{f: 0, uid: 1}, acc{f: 2, uid: 2})
	}
	feed(m, rep)
	list := m.CorrelatorList(0)
	if len(list) == 0 || list[0].File != 1 {
		t.Fatalf("user-only FARMER should behave like PULS (prefer 1): %+v", list)
	}
}

func TestMaxCorrelatorsBound(t *testing.T) {
	cfg := defaultFor(t, 0.0, 0.0)
	cfg.MaxCorrelators = 3
	cfg.Graph = graph.Config{Window: 1}
	m := New(cfg)
	var accs []acc
	for s := trace.FileID(1); s <= 10; s++ {
		accs = append(accs, acc{f: 0}, acc{f: s})
	}
	feed(m, accs)
	if got := len(m.CorrelatorList(0)); got > 3 {
		t.Fatalf("list length %d exceeds MaxCorrelators 3", got)
	}
}

func TestPredictLimits(t *testing.T) {
	cfg := defaultFor(t, 0.0, 0.0)
	cfg.Graph = graph.Config{Window: 1}
	m := New(cfg)
	feed(m, []acc{{f: 0}, {f: 1}, {f: 0}, {f: 2}})
	if got := m.Predict(0, 0); got != nil {
		t.Fatalf("Predict k=0 = %v", got)
	}
	if got := m.Predict(0, 100); len(got) != 2 {
		t.Fatalf("Predict k=100 returned %d", len(got))
	}
	if got := m.Predict(42, 5); got != nil {
		t.Fatalf("Predict unknown file = %v", got)
	}
}

func TestStatsAndMemoryAccounting(t *testing.T) {
	m := New(DefaultConfig())
	rng := rand.New(rand.NewPCG(1, 2))
	for i := 0; i < 1000; i++ {
		m.Feed(&trace.Record{
			Seq: uint64(i), File: trace.FileID(rng.IntN(50)),
			UID: uint32(rng.IntN(4)), PID: uint32(rng.IntN(8)),
			Path: "/home/u/d/f",
		})
	}
	s := m.Stats()
	if s.Fed != 1000 {
		t.Fatalf("Fed = %d", s.Fed)
	}
	if s.TrackedFiles == 0 || s.MemoryBytes <= 0 {
		t.Fatalf("stats empty: %+v", s)
	}
	if s.GraphNodes == 0 || s.GraphEdges == 0 {
		t.Fatalf("graph stats empty: %+v", s)
	}
}

// TestFilteringShrinksFootprint (E10, §3.3): a strict threshold must keep
// strictly fewer correlators than a permissive one on the same noisy stream.
func TestFilteringShrinksFootprint(t *testing.T) {
	run := func(threshold float64) int {
		cfg := defaultFor(t, 0.7, threshold)
		m := New(cfg)
		rng := rand.New(rand.NewPCG(3, 4))
		for i := 0; i < 3000; i++ {
			f := trace.FileID(rng.IntN(100))
			m.Feed(&trace.Record{
				Seq: uint64(i), File: f,
				UID: uint32(rng.IntN(20)), PID: uint32(rng.IntN(40)),
				Path: "/u/" + string(rune('a'+f%26)) + "/f",
			})
		}
		return m.Stats().Correlators
	}
	loose := run(0.0)
	strict := run(0.6)
	if strict >= loose {
		t.Fatalf("threshold 0.6 kept %d correlators vs %d at 0.0", strict, loose)
	}
}

func TestResetWindow(t *testing.T) {
	cfg := defaultFor(t, 0.0, 0.0)
	cfg.Graph = graph.Config{Window: 3}
	m := New(cfg)
	feed(m, []acc{{f: 0}, {f: 1}})
	m.ResetWindow()
	feed(m, []acc{{f: 2}})
	if m.Degree(1, 2) != 0 || m.Degree(0, 2) != 0 {
		t.Fatal("window credit leaked across ResetWindow")
	}
}

func TestConcurrentPredictDuringFeed(t *testing.T) {
	m := New(DefaultConfig())
	done := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(seed, 0))
			for {
				select {
				case <-done:
					return
				default:
				}
				m.Predict(trace.FileID(rng.IntN(30)), 4)
				m.CorrelatorList(trace.FileID(rng.IntN(30)))
				m.Stats()
			}
		}(uint64(w))
	}
	rng := rand.New(rand.NewPCG(99, 0))
	for i := 0; i < 5000; i++ {
		m.Feed(&trace.Record{Seq: uint64(i), File: trace.FileID(rng.IntN(30)), UID: 1, Path: "/a/b"})
	}
	close(done)
	wg.Wait()
}

// Property: every degree in every list respects the threshold and the
// [0,1] range, and lists are sorted.
func TestInvariantsProperty(t *testing.T) {
	f := func(seed uint64, wSel, tSel uint8) bool {
		weight := float64(wSel%11) / 10
		threshold := float64(tSel%11) / 10
		cfg := DefaultConfig()
		cfg.Weight = weight
		cfg.MaxStrength = threshold
		m := New(cfg)
		rng := rand.New(rand.NewPCG(seed, 77))
		for i := 0; i < 300; i++ {
			fid := trace.FileID(rng.IntN(12))
			m.Feed(&trace.Record{
				Seq: uint64(i), File: fid,
				UID: uint32(rng.IntN(3)), PID: uint32(rng.IntN(5)), Host: uint32(rng.IntN(2)),
				Path: "/h/u" + string(rune('0'+fid%3)) + "/f",
			})
		}
		for fid := trace.FileID(0); fid < 12; fid++ {
			list := m.CorrelatorList(fid)
			for i, c := range list {
				if c.Degree <= threshold {
					return false
				}
				if c.Degree < 0 || c.Degree > 1+1e-9 {
					return false
				}
				if i > 0 && list[i-1].Degree < c.Degree {
					return false
				}
				if c.File == fid {
					return false // no self correlation
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestFeedTrace(t *testing.T) {
	tr := &trace.Trace{Name: "t", FileCount: 3}
	for i, f := range []trace.FileID{0, 1, 2, 0, 1} {
		tr.Records = append(tr.Records, trace.Record{Seq: uint64(i), File: f, UID: 1, Path: "/d/f"})
	}
	m := New(DefaultConfig())
	m.FeedTrace(tr)
	if m.Fed() != 5 {
		t.Fatalf("Fed = %d, want 5", m.Fed())
	}
}

func TestVectorLookup(t *testing.T) {
	m := New(DefaultConfig())
	m.Feed(&trace.Record{File: 3, UID: 9, Path: "/x/y"})
	v, ok := m.Vector(3)
	if !ok || v.Path != "/x/y" {
		t.Fatalf("Vector lookup failed: %+v ok=%v", v, ok)
	}
	if _, ok := m.Vector(99); ok {
		t.Fatal("unknown file reported a vector")
	}
}
