// Read-path striping: a materialized Correlator-List snapshot in front of
// the sharded miner, so the demand path (Predict on every cache miss,
// CorrelatorList on every remote read) stops contending with mining on the
// shard locks. The snapshot is a striped read-through cache invalidated by
// the model's own list-change hook — readers hit a stripe's RWMutex that
// writers only touch to invalidate, instead of the shard mutex every Feed
// holds for the whole four-stage pipeline.
package core

import (
	"sync"

	"farmer/internal/trace"
)

// listStripe is one lock's worth of the snapshot, padded to cache-line
// multiples so adjacent stripes' locks don't false-share (same rationale as
// the shard slots — see paddedModel).
type listStripe struct {
	mu      sync.RWMutex
	version uint64 // bumped on every invalidation in this stripe
	lists   map[trace.FileID][]Correlator
	_       [64 - 40]byte // RWMutex(24) + uint64(8) + map(8) = 40
}

// ListCache is a striped read-through snapshot of the ensemble's Correlator
// Lists. Entries are filled from the owning shard on demand and dropped the
// moment mining (or a checkpoint load) changes the underlying list, so a
// read sees either the current list or goes to the shard — never a stale
// entry. Cached slices are immutable; methods hand out copies.
//
// Fills are version-guarded: a reader records its stripe's version before
// fetching from the shard and installs the result only if no invalidation
// landed in between, so a fetch that raced a mutation can never resurrect
// pre-mutation data after the invalidation already dropped it.
type ListCache struct {
	sm   *ShardedModel
	mask uint64
	st   []listStripe

	hits, misses padCounter
}

// NewListCache builds a snapshot over the ensemble and subscribes it to
// every shard's list-change hook. stripes is rounded up to a power of two
// (minimum 1). Register before the ensemble is shared between goroutines —
// the hook seam is per shard and unsynchronized at registration.
func NewListCache(sm *ShardedModel, stripes int) *ListCache {
	n := 1
	for n < stripes {
		n <<= 1
	}
	c := &ListCache{sm: sm, mask: uint64(n - 1), st: make([]listStripe, n)}
	for i := range c.st {
		c.st[i].lists = make(map[trace.FileID][]Correlator)
	}
	for _, m := range sm.shards {
		m.SetListChangeHook(c.invalidate)
	}
	return c
}

// stripeFor hashes f to its stripe (Fibonacci hashing, like partition.Stripe
// and the striped LRU).
func (c *ListCache) stripeFor(f trace.FileID) *listStripe {
	return &c.st[(uint64(f)*0x9E3779B97F4A7C15>>32)&c.mask]
}

// invalidate drops f's entry and bumps the stripe version. It runs under the
// owning shard's model lock (the hook contract); the stripe lock is a leaf,
// so the ordering model-lock → stripe-lock never inverts.
func (c *ListCache) invalidate(f trace.FileID) {
	s := c.stripeFor(f)
	s.mu.Lock()
	delete(s.lists, f)
	s.version++
	s.mu.Unlock()
}

// lookup returns the cached immutable list for f, filling it from the owning
// shard on a miss. The returned slice must not be mutated.
func (c *ListCache) lookup(f trace.FileID) []Correlator {
	s := c.stripeFor(f)
	s.mu.RLock()
	list, ok := s.lists[f]
	ver := s.version
	s.mu.RUnlock()
	if ok {
		c.hits.Add(1)
		return list
	}
	c.misses.Add(1)
	list = c.sm.CorrelatorList(f) // fresh copy from the shard; never mutated again
	s.mu.Lock()
	if s.version == ver {
		s.lists[f] = list
	}
	s.mu.Unlock()
	return list
}

// CorrelatorList returns a copy of the file's sorted Correlator List (nil
// when the file has no valid correlations) — same contract as
// ShardedModel.CorrelatorList, served from the snapshot.
func (c *ListCache) CorrelatorList(f trace.FileID) []Correlator {
	list := c.lookup(f)
	if len(list) == 0 {
		return nil
	}
	return append([]Correlator(nil), list...)
}

// Predict returns up to k successors of f in decreasing correlation degree,
// served from the snapshot — same contract as ShardedModel.Predict.
func (c *ListCache) Predict(f trace.FileID, k int) []trace.FileID {
	list := c.lookup(f)
	if k > len(list) {
		k = len(list)
	}
	if k <= 0 {
		return nil
	}
	out := make([]trace.FileID, k)
	for i := 0; i < k; i++ {
		out[i] = list[i].File
	}
	return out
}

// Stripes reports the stripe count.
func (c *ListCache) Stripes() int { return len(c.st) }

// Stats reports snapshot effectiveness: reads served from the snapshot vs
// fills from the shards.
func (c *ListCache) Stats() (hits, misses uint64) {
	return c.hits.Load(), c.misses.Load()
}
