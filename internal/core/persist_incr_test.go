package core

// Incremental-checkpoint proofs: a chain of full + delta saves must be
// indistinguishable from a single full save (fingerprint-identical on
// reload, and a reloaded model keeps mining identically); the delta path
// must actually be O(dirty), not O(model); a crash tearing a delta batch
// must recover to the previous checkpoint; and a tombstoned key must stay
// dead across any number of incremental saves and a compaction.

import (
	"os"
	"path/filepath"
	"testing"

	"farmer/internal/kvstore"
	"farmer/internal/trace"
	"farmer/internal/tracegen"
	"farmer/internal/vsm"
)

func statsDelta(pre, post kvstore.WriteStats) kvstore.WriteStats {
	return kvstore.WriteStats{
		Puts:    post.Puts - pre.Puts,
		Deletes: post.Deletes - pre.Deletes,
		Bytes:   post.Bytes - pre.Bytes,
	}
}

// TestSaveDeltaChainEqualsFullSave: reloading a full save followed by two
// deltas yields the exact state a single fresh full save would, and the
// reloaded model mines the rest of the stream bit-identically to the
// original — the window, vectors and graph travel with the deltas, not just
// the lists.
func TestSaveDeltaChainEqualsFullSave(t *testing.T) {
	tr := tracegen.HP(9000).MustGenerate()
	cfg := DefaultConfig()
	cfg.Mask = vsm.DefaultMask(true)
	m := New(cfg)
	s, err := kvstore.Open("")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	feed := func(mm *Model, lo, hi int) {
		for i := lo; i < hi; i++ {
			mm.Feed(&tr.Records[i])
		}
	}
	hold := 1500 // final segment fed to both models after the reload
	seg := (len(tr.Records) - hold) / 3

	feed(m, 0, seg)
	if err := m.SaveTo(s); err != nil {
		t.Fatal(err)
	}
	feed(m, seg, 2*seg)
	inc, err := m.SaveDelta(s)
	if err != nil || !inc {
		t.Fatalf("second save: incremental=%v err=%v", inc, err)
	}
	feed(m, 2*seg, 3*seg)
	if inc, err = m.SaveDelta(s); err != nil || !inc {
		t.Fatalf("third save: incremental=%v err=%v", inc, err)
	}

	m2 := New(cfg)
	if err := m2.LoadFrom(s); err != nil {
		t.Fatal(err)
	}
	if m2.Fed() != m.Fed() {
		t.Fatalf("fed %d after chain reload, want %d", m2.Fed(), m.Fed())
	}
	fc := m.trackedFileCount()
	if got, want := StateFingerprint(m2, fc), StateFingerprint(m, fc); got != want {
		t.Fatalf("full+delta chain reloads to %#x, live model is %#x", got, want)
	}

	// The chained store holds exactly what one fresh full save would.
	full, err := kvstore.Open("")
	if err != nil {
		t.Fatal(err)
	}
	defer full.Close()
	if err := m.SaveTo(full); err != nil {
		t.Fatal(err)
	}
	fpChain, err := StoreFingerprint(s, fc)
	if err != nil {
		t.Fatal(err)
	}
	fpFull, err := StoreFingerprint(full, fc)
	if err != nil {
		t.Fatal(err)
	}
	if fpChain != fpFull {
		t.Fatalf("chained store fingerprint %#x, fresh full save %#x", fpChain, fpFull)
	}

	// Both models mine the held-back tail identically.
	feed(m, 3*seg, 3*seg+hold)
	feed(m2, 3*seg, 3*seg+hold)
	fc = m.trackedFileCount()
	if got, want := StateFingerprint(m2, fc), StateFingerprint(m, fc); got != want {
		t.Fatalf("diverged after reload: %#x vs %#x", got, want)
	}
}

// TestSaveCheckpointDeltaChainAcrossRestart: the ensemble chain — full
// SaveMerged plus incremental SaveCheckpoints — survives a WAL close/reopen
// (recovery replays the batches) and restores at a different stripe count,
// fingerprint-identical and still mining identically.
func TestSaveCheckpointDeltaChainAcrossRestart(t *testing.T) {
	tr := tracegen.HP(12000).MustGenerate()
	cfg := DefaultConfig()
	cfg.Mask = vsm.DefaultMask(true)
	cfg.Shards = 3
	sm := NewSharded(cfg)
	path := filepath.Join(t.TempDir(), "model.wal")
	s, err := kvstore.Open(path)
	if err != nil {
		t.Fatal(err)
	}

	hold := 2000
	seg := (len(tr.Records) - hold) / 3
	sm.FeedBatch(tr.Records[:seg])
	if err := sm.SaveMerged(s); err != nil {
		t.Fatal(err)
	}
	sm.FeedBatch(tr.Records[seg : 2*seg])
	inc, err := sm.SaveCheckpoint(s)
	if err != nil || !inc {
		t.Fatalf("second checkpoint: incremental=%v err=%v", inc, err)
	}
	sm.FeedBatch(tr.Records[2*seg : 3*seg])
	if inc, err = sm.SaveCheckpoint(s); err != nil || !inc {
		t.Fatalf("third checkpoint: incremental=%v err=%v", inc, err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := kvstore.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	cfg2 := cfg
	cfg2.Shards = 5
	sm2 := NewSharded(cfg2)
	if err := sm2.LoadMerged(s2); err != nil {
		t.Fatal(err)
	}
	if sm2.Fed() != sm.Fed() {
		t.Fatalf("fed %d after restart, want %d", sm2.Fed(), sm.Fed())
	}
	fc := sm.TrackedFileCount()
	if got, want := StateFingerprint(sm2, fc), StateFingerprint(sm, fc); got != want {
		t.Fatalf("restarted ensemble fingerprints %#x, original %#x", got, want)
	}

	sm.FeedBatch(tr.Records[3*seg:])
	sm2.FeedBatch(tr.Records[3*seg:])
	fc = sm.TrackedFileCount()
	if got, want := StateFingerprint(sm2, fc), StateFingerprint(sm, fc); got != want {
		t.Fatalf("diverged after restart: %#x vs %#x", got, want)
	}
}

// TestSaveCheckpointIncrementalCost: with a small working set dirtied (well
// under 10% of tracked files), the incremental checkpoint must cost at
// least 5x fewer Puts and bytes than the full rewrite — the O(dirty) vs
// O(model) claim, measured at the store's own mutation counters.
func TestSaveCheckpointIncrementalCost(t *testing.T) {
	tr := tracegen.HP(20000).MustGenerate()
	cfg := DefaultConfig()
	cfg.Mask = vsm.DefaultMask(true)
	cfg.Shards = 2
	sm := NewSharded(cfg)
	sm.FeedBatch(tr.Records)
	s, err := kvstore.Open("")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	pre := s.WriteStats()
	if err := sm.SaveMerged(s); err != nil {
		t.Fatal(err)
	}
	fullCost := statsDelta(pre, s.WriteStats())

	// Refeed a handful of already-mined records: a small, representative
	// working set (the touched files plus their window neighbors).
	sm.FeedBatch(tr.Records[:30])
	dirty := 0
	for _, m := range sm.shards {
		dirty += m.DirtyFiles()
	}
	tracked := sm.TrackedFileCount()
	if dirty*10 > tracked {
		t.Fatalf("working set too large to test the claim: %d dirty of %d tracked", dirty, tracked)
	}

	pre = s.WriteStats()
	inc, err := sm.SaveCheckpoint(s)
	if err != nil || !inc {
		t.Fatalf("checkpoint: incremental=%v err=%v", inc, err)
	}
	incCost := statsDelta(pre, s.WriteStats())
	t.Logf("full: %+v; incremental (%d dirty / %d tracked): %+v", fullCost, dirty, tracked, incCost)
	if incCost.Puts == 0 || fullCost.Puts < 5*incCost.Puts {
		t.Fatalf("incremental Puts not >=5x cheaper: full %d vs delta %d", fullCost.Puts, incCost.Puts)
	}
	if incCost.Bytes == 0 || fullCost.Bytes < 5*incCost.Bytes {
		t.Fatalf("incremental bytes not >=5x cheaper: full %d vs delta %d", fullCost.Bytes, incCost.Bytes)
	}
}

// TestTornDeltaCheckpointRecovers: a crash that tears an incremental
// checkpoint's WAL batch mid-write must recover to the PREVIOUS checkpoint
// exactly — fingerprint-identical, correct fed counter — and the recovered
// store must accept further checkpoints.
func TestTornDeltaCheckpointRecovers(t *testing.T) {
	tr := tracegen.HP(9000).MustGenerate()
	cfg := DefaultConfig()
	cfg.Mask = vsm.DefaultMask(true)
	cfg.Shards = 2
	sm := NewSharded(cfg)
	path := filepath.Join(t.TempDir(), "model.wal")
	s, err := kvstore.Open(path)
	if err != nil {
		t.Fatal(err)
	}

	half := len(tr.Records) / 2
	sm.FeedBatch(tr.Records[:half])
	if err := sm.SaveMerged(s); err != nil {
		t.Fatal(err)
	}
	fcA := sm.TrackedFileCount()
	fpA := StateFingerprint(sm, fcA)
	fedA := sm.Fed()
	stA, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}

	sm.FeedBatch(tr.Records[half:])
	inc, err := sm.SaveCheckpoint(s)
	if err != nil || !inc {
		t.Fatalf("delta checkpoint: incremental=%v err=%v", inc, err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	stB, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if stB.Size() <= stA.Size()+1 {
		t.Fatalf("delta batch wrote no bytes (%d -> %d)", stA.Size(), stB.Size())
	}

	// Tear the log midway through the delta batch — between its first byte
	// and its commit frame — as a crash mid-checkpoint would.
	cut := stA.Size() + (stB.Size()-stA.Size())/2
	if err := os.Truncate(path, cut); err != nil {
		t.Fatal(err)
	}

	s2, err := kvstore.Open(path)
	if err != nil {
		t.Fatalf("recovery refused the torn log: %v", err)
	}
	defer s2.Close()
	sm2 := NewSharded(cfg)
	if err := sm2.LoadMerged(s2); err != nil {
		t.Fatal(err)
	}
	if sm2.Fed() != fedA {
		t.Fatalf("recovered fed %d, want previous checkpoint's %d", sm2.Fed(), fedA)
	}
	if got := StateFingerprint(sm2, fcA); got != fpA {
		t.Fatalf("recovered state fingerprints %#x, previous checkpoint was %#x", got, fpA)
	}

	// The recovered store keeps checkpointing: the reload bound sm2 to the
	// surviving epoch, so the next save is a valid (here empty) delta.
	if _, err := sm2.SaveCheckpoint(s2); err != nil {
		t.Fatalf("checkpoint into recovered store: %v", err)
	}
}

// TestTombstoneNeverResurrects: a list dropped after a full save is
// tombstoned by the next delta, and stays dead across further incremental
// saves, a compaction, and a cold reload.
func TestTombstoneNeverResurrects(t *testing.T) {
	tr := tracegen.HP(8000).MustGenerate()
	cfg := DefaultConfig()
	cfg.Mask = vsm.DefaultMask(true)
	cfg.Shards = 2
	sm := NewSharded(cfg)
	path := filepath.Join(t.TempDir(), "model.wal")
	s, err := kvstore.Open(path)
	if err != nil {
		t.Fatal(err)
	}

	half := len(tr.Records) / 2
	sm.FeedBatch(tr.Records[:half])
	if err := sm.SaveMerged(s); err != nil {
		t.Fatal(err)
	}

	// Drop one mined list through the same notification path the validity
	// filter uses, so the delta records the deletion.
	var victim trace.FileID
	found := false
	for f := 0; f < tr.FileCount && !found; f++ {
		if len(sm.CorrelatorList(trace.FileID(f))) > 0 {
			victim = trace.FileID(f)
			found = true
		}
	}
	if !found {
		t.Fatal("no mined list to drop")
	}
	sh := sm.shardFor(victim)
	sh.mu.Lock()
	delete(sh.lists, victim)
	sh.notifyListChange(victim)
	sh.mu.Unlock()

	// Keep mining — but never refeed the victim, which would legitimately
	// regrow its list — through four incremental checkpoints with a
	// compaction in the middle.
	var rest []trace.Record
	for _, r := range tr.Records[half:] {
		if r.File != victim {
			rest = append(rest, r)
		}
	}
	step := len(rest) / 4
	for i := 0; i < 4; i++ {
		sm.FeedBatch(rest[i*step : (i+1)*step])
		inc, err := sm.SaveCheckpoint(s)
		if err != nil || !inc {
			t.Fatalf("checkpoint %d: incremental=%v err=%v", i, inc, err)
		}
		if _, ok := s.Get(listKey(victim)); ok {
			t.Fatalf("tombstoned list %d present in store after checkpoint %d", victim, i)
		}
		if i == 1 {
			if err := s.Compact(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := kvstore.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if _, ok := s2.Get(listKey(victim)); ok {
		t.Fatalf("tombstoned list %d resurrected across restart", victim)
	}
	sm2 := NewSharded(cfg)
	if err := sm2.LoadMerged(s2); err != nil {
		t.Fatal(err)
	}
	if got := sm2.CorrelatorList(victim); got != nil {
		t.Fatalf("tombstoned list %d resurrected on reload: %v", victim, got)
	}
	if sm2.Fed() != sm.Fed() {
		t.Fatalf("fed %d after reload, want %d", sm2.Fed(), sm.Fed())
	}
}
