package core

import (
	"encoding/binary"
	"fmt"
	"path/filepath"
	"reflect"
	"testing"

	"farmer/internal/kvstore"
	"farmer/internal/partition"
	"farmer/internal/trace"
	"farmer/internal/tracegen"
	"farmer/internal/vsm"
)

func minedHP(t *testing.T, records int) *Model {
	t.Helper()
	tr := tracegen.HP(records).MustGenerate()
	cfg := DefaultConfig()
	cfg.Mask = vsm.DefaultMask(true)
	m := New(cfg)
	m.FeedTrace(tr)
	return m
}

func TestSaveLoadRoundTrip(t *testing.T) {
	m := minedHP(t, 8000)
	s, err := kvstore.Open("")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := m.SaveTo(s); err != nil {
		t.Fatal(err)
	}

	m2 := New(m.Config())
	if err := m2.LoadFrom(s); err != nil {
		t.Fatal(err)
	}
	if m2.Fed() != m.Fed() {
		t.Fatalf("fed %d != %d", m2.Fed(), m.Fed())
	}
	st, st2 := m.Stats(), m2.Stats()
	if st.Correlators != st2.Correlators || st.Lists != st2.Lists || st.TrackedFiles != st2.TrackedFiles {
		t.Fatalf("stats differ: %+v vs %+v", st, st2)
	}
	// Every list matches exactly.
	for f := trace.FileID(0); int(f) < 6000; f++ {
		a, b := m.CorrelatorList(f), m2.CorrelatorList(f)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("file %d lists differ:\n%+v\n%+v", f, a, b)
		}
	}
	// Predictions identical.
	for f := trace.FileID(0); int(f) < 2000; f++ {
		if !reflect.DeepEqual(m.Predict(f, 4), m2.Predict(f, 4)) {
			t.Fatalf("predictions differ for %d", f)
		}
	}
}

func TestLoadFromEmptyStore(t *testing.T) {
	s, _ := kvstore.Open("")
	defer s.Close()
	m := New(DefaultConfig())
	if err := m.LoadFrom(s); err == nil {
		t.Fatal("empty store accepted")
	}
}

func TestLoadRejectsParameterMismatch(t *testing.T) {
	m := minedHP(t, 2000)
	s, _ := kvstore.Open("")
	defer s.Close()
	if err := m.SaveTo(s); err != nil {
		t.Fatal(err)
	}
	cfg := m.Config()
	cfg.Weight = 0.3 // different p
	m2 := New(cfg)
	if err := m2.LoadFrom(s); err == nil {
		t.Fatal("parameter mismatch accepted")
	}
}

func TestSaveLoadThroughWALFile(t *testing.T) {
	m := minedHP(t, 3000)
	path := filepath.Join(t.TempDir(), "model.wal")
	s, err := kvstore.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.SaveTo(s); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Recover from disk.
	s2, err := kvstore.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	m2 := New(m.Config())
	if err := m2.LoadFrom(s2); err != nil {
		t.Fatal(err)
	}
	if m2.Stats().Correlators != m.Stats().Correlators {
		t.Fatal("correlators lost across WAL restart")
	}
}

// TestLoadedModelKeepsMining: a restored model must continue to learn.
func TestLoadedModelKeepsMining(t *testing.T) {
	m := minedHP(t, 2000)
	s, _ := kvstore.Open("")
	defer s.Close()
	if err := m.SaveTo(s); err != nil {
		t.Fatal(err)
	}
	m2 := New(m.Config())
	if err := m2.LoadFrom(s); err != nil {
		t.Fatal(err)
	}
	before := m2.Stats().Fed
	m2.Feed(&trace.Record{File: 1, UID: 1, Path: "/a/b"})
	if m2.Stats().Fed != before+1 {
		t.Fatal("restored model did not keep counting")
	}
}

// minedShardedHP mines the HP trace on an ensemble and returns both for
// merged-persistence checks.
func minedShardedHP(t *testing.T, records, shards int) (*trace.Trace, *ShardedModel) {
	t.Helper()
	tr := tracegen.HP(records).MustGenerate()
	cfg := DefaultConfig()
	cfg.Mask = vsm.DefaultMask(true)
	cfg.Shards = shards
	sm := NewSharded(cfg)
	sm.FeedTraceParallel(tr)
	return tr, sm
}

func assertSamePredictions(t *testing.T, tr *trace.Trace, want, got interface {
	Predict(f trace.FileID, k int) []trace.FileID
}) {
	t.Helper()
	for f := 0; f < tr.FileCount; f++ {
		id := trace.FileID(f)
		w, g := want.Predict(id, 8), got.Predict(id, 8)
		if !reflect.DeepEqual(w, g) {
			t.Fatalf("file %d predictions differ: %v vs %v", f, w, g)
		}
	}
}

// TestSaveMergedLoadMergedResize is the resize round trip: a 4-stripe
// ensemble saves once, and ensembles at other stripe counts — and under
// entirely different deployment partitioners — load the same record with
// identical predictions. A plain Model can read the merged save too.
func TestSaveMergedLoadMergedResize(t *testing.T) {
	tr, sm := minedShardedHP(t, 8000, 4)
	st, err := kvstore.Open("")
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if err := sm.SaveMerged(st); err != nil {
		t.Fatal(err)
	}

	cfg := sm.Config()
	for _, shards := range []int{1, 2, 7} {
		c := cfg
		c.Shards = shards
		sm2 := NewSharded(c)
		if err := sm2.LoadMerged(st); err != nil {
			t.Fatal(err)
		}
		if sm2.Fed() != sm.Fed() {
			t.Fatalf("shards=%d: fed %d != %d", shards, sm2.Fed(), sm.Fed())
		}
		assertSamePredictions(t, tr, sm, sm2)
		ws, gs := sm.Stats(), sm2.Stats()
		if ws.Lists != gs.Lists || ws.Correlators != gs.Correlators || ws.TrackedFiles != gs.TrackedFiles {
			t.Fatalf("shards=%d: stats differ: %+v vs %+v", shards, ws, gs)
		}
	}
	for _, part := range []partition.Partitioner{partition.Hash, partition.Group} {
		sm2 := NewShardedPartitioned(cfg, 3, part)
		if err := sm2.LoadMerged(st); err != nil {
			t.Fatal(err)
		}
		assertSamePredictions(t, tr, sm, sm2)
	}
	// Backward compatibility: the merged save is an ordinary model save.
	single := New(cfg)
	if err := single.LoadFrom(st); err != nil {
		t.Fatal(err)
	}
	assertSamePredictions(t, tr, sm, single)
}

// TestLoadMergedRebalancesPlacement: after a resize load, every file's
// state sits on the shard the new stripe count assigns — no orphans.
func TestLoadMergedRebalancesPlacement(t *testing.T) {
	tr, sm := minedShardedHP(t, 5000, 2)
	st, _ := kvstore.Open("")
	defer st.Close()
	if err := sm.SaveMerged(st); err != nil {
		t.Fatal(err)
	}
	c := sm.Config()
	c.Shards = 5
	sm2 := NewSharded(c)
	if err := sm2.LoadMerged(st); err != nil {
		t.Fatal(err)
	}
	for f := 0; f < tr.FileCount; f++ {
		id := trace.FileID(f)
		own := sm2.Partitioner()(id, sm2.Shards())
		for i := 0; i < sm2.Shards(); i++ {
			if n := len(sm2.Shard(i).CorrelatorList(id)); n > 0 && i != own {
				t.Fatalf("file %d has %d correlators on shard %d, owner is %d", f, n, i, own)
			}
		}
	}
}

// TestLoadMergedKeepsMining: a resized ensemble continues to learn and
// counts from the restored fed total.
func TestLoadMergedKeepsMining(t *testing.T) {
	_, sm := minedShardedHP(t, 2000, 3)
	st, _ := kvstore.Open("")
	defer st.Close()
	if err := sm.SaveMerged(st); err != nil {
		t.Fatal(err)
	}
	for _, shards := range []int{1, 2} {
		c := sm.Config()
		c.Shards = shards
		sm2 := NewSharded(c)
		if err := sm2.LoadMerged(st); err != nil {
			t.Fatal(err)
		}
		before := sm2.Fed()
		if before != sm.Fed() {
			t.Fatalf("restored fed %d != %d", before, sm.Fed())
		}
		sm2.Feed(&trace.Record{File: 1, UID: 1, Path: "/a/b"})
		if sm2.Fed() != before+1 {
			t.Fatalf("resized ensemble did not keep counting")
		}
	}
}

func TestLoadMergedRejectsParameterMismatch(t *testing.T) {
	_, sm := minedShardedHP(t, 2000, 2)
	st, _ := kvstore.Open("")
	defer st.Close()
	if err := sm.SaveMerged(st); err != nil {
		t.Fatal(err)
	}
	c := sm.Config()
	c.Weight = 0.3
	if err := NewSharded(c).LoadMerged(st); err == nil {
		t.Fatal("parameter mismatch accepted")
	}
	empty, _ := kvstore.Open("")
	defer empty.Close()
	if err := NewSharded(sm.Config()).LoadMerged(empty); err == nil {
		t.Fatal("empty store accepted")
	}
}

func TestDecodeListRejectsGarbage(t *testing.T) {
	if _, err := decodeList([]byte{0xff, 0xff, 0xff, 0xff}); err == nil {
		t.Fatal("garbage list accepted")
	}
	if _, err := decodeList([]byte{1}); err == nil {
		t.Fatal("short list accepted")
	}
}

func TestDecodeVectorRejectsGarbage(t *testing.T) {
	if _, err := decodeVector([]byte{0xff, 0xff, 0xff, 0xff}); err == nil {
		t.Fatal("garbage vector accepted")
	}
}

// TestSaveLoadPathlessTrace: vectors of a pathless (INS/RES-style) trace
// end with an empty path string; decoding it at the end of the value must
// yield "", not EOF. Regression test — every pathless load failed before
// the io.ReadFull fix in decodeVector.
func TestSaveLoadPathlessTrace(t *testing.T) {
	tr := tracegen.INS(3000).MustGenerate()
	cfg := DefaultConfig()
	cfg.Mask = vsm.DefaultMask(false)
	m := New(cfg)
	m.FeedTrace(tr)

	s, err := kvstore.Open("")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := m.SaveTo(s); err != nil {
		t.Fatal(err)
	}
	m2 := New(cfg)
	if err := m2.LoadFrom(s); err != nil {
		t.Fatalf("pathless load: %v", err)
	}
	for f := 0; f < tr.FileCount; f++ {
		if !reflect.DeepEqual(m.CorrelatorList(trace.FileID(f)), m2.CorrelatorList(trace.FileID(f))) {
			t.Fatalf("file %d list differs after pathless round trip", f)
		}
	}
}

// TestLoadMergedRejectsCorruptValues: a store whose frames are intact but
// whose values are garbage must fail the load with an error — never panic,
// never install a half-decoded model.
func TestLoadMergedRejectsCorruptValues(t *testing.T) {
	for _, tc := range []struct {
		name string
		key  []byte
		val  []byte
	}{
		{"garbage list", listKey(7), []byte{0xff, 0xff, 0xff, 0xff}},
		{"truncated list", listKey(7), []byte{2, 0, 0, 0, 1}},
		{"garbage vector", vectorKey(9), []byte{0xff, 0xff, 0xff, 0xff}},
		{"truncated vector", vectorKey(9), []byte{1, 0, 0, 0, 5, 0, 0, 0, 'a'}},
		{"bad list key", append([]byte(keyPrefixList), 1, 2), []byte{0, 0, 0, 0}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			m := minedHP(t, 2000)
			s, err := kvstore.Open("")
			if err != nil {
				t.Fatal(err)
			}
			defer s.Close()
			if err := m.SaveTo(s); err != nil {
				t.Fatal(err)
			}
			if err := s.Put(tc.key, tc.val); err != nil {
				t.Fatal(err)
			}

			sm := NewSharded(DefaultConfig())
			if err := sm.LoadMerged(s); err == nil {
				t.Fatal("LoadMerged accepted a corrupt value")
			}
			m2 := New(DefaultConfig())
			if err := m2.LoadFrom(s); err == nil {
				t.Fatal("LoadFrom accepted a corrupt value")
			}
		})
	}
}

// TestCheckpointPrunesStaleKeys: state dropped between checkpoints (a list
// the validity filter removed) must not resurrect on reload from the later
// checkpoint.
func TestCheckpointPrunesStaleKeys(t *testing.T) {
	m := minedHP(t, 4000)
	s, err := kvstore.Open("")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := m.SaveTo(s); err != nil {
		t.Fatal(err)
	}

	// Drop one mined list and one vector, as the threshold filter would.
	var victim trace.FileID
	m.mu.Lock()
	for f := range m.lists {
		victim = f
		break
	}
	delete(m.lists, victim)
	delete(m.vectors, victim)
	m.mu.Unlock()

	if err := m.SaveTo(s); err != nil {
		t.Fatal(err)
	}
	m2 := New(m.Config())
	if err := m2.LoadFrom(s); err != nil {
		t.Fatal(err)
	}
	if got := m2.CorrelatorList(victim); got != nil {
		t.Fatalf("dropped list %d resurrected from checkpoint: %v", victim, got)
	}
	if _, ok := m2.Vector(victim); ok {
		t.Fatalf("dropped vector %d resurrected from checkpoint", victim)
	}
}

// TestSaveMergedPrunesStaleKeys: same contract for the ensemble checkpoint.
func TestSaveMergedPrunesStaleKeys(t *testing.T) {
	tr := tracegen.HP(4000).MustGenerate()
	cfg := DefaultConfig()
	cfg.Shards = 3
	sm := NewSharded(cfg)
	sm.FeedTraceParallel(tr)
	s, err := kvstore.Open("")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := sm.SaveMerged(s); err != nil {
		t.Fatal(err)
	}
	var victim trace.FileID
	found := false
	for f := 0; f < tr.FileCount && !found; f++ {
		if len(sm.CorrelatorList(trace.FileID(f))) > 0 {
			victim = trace.FileID(f)
			found = true
		}
	}
	if !found {
		t.Fatal("no mined list to drop")
	}
	sh := sm.shardFor(victim)
	sh.mu.Lock()
	delete(sh.lists, victim)
	sh.mu.Unlock()

	if err := sm.SaveMerged(s); err != nil {
		t.Fatal(err)
	}
	sm2 := NewSharded(cfg)
	if err := sm2.LoadMerged(s); err != nil {
		t.Fatal(err)
	}
	if got := sm2.CorrelatorList(victim); got != nil {
		t.Fatalf("dropped list %d resurrected from merged checkpoint: %v", victim, got)
	}
}

// TestSaveLoadHighFileIDs: FileIDs with a 0xff top byte sort after the old
// "prefix\xff" scan bound; they must survive a save/load round trip like
// any other id (regression test for the prefixEnd fix).
func TestSaveLoadHighFileIDs(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Mask = vsm.DefaultMask(true)
	m := New(cfg)
	ids := []trace.FileID{0xff000001, 0xff000002, 0xfffffffe, 1, 2}
	for round := 0; round < 20; round++ {
		for i, f := range ids {
			m.Feed(&trace.Record{Seq: uint64(round*len(ids) + i), File: f, UID: 7, PID: 9, Host: 1, Path: fmt.Sprintf("/hi/%d", f)})
		}
	}
	if len(m.CorrelatorList(0xff000001)) == 0 {
		t.Fatal("test premise broken: no mined list for the high id")
	}
	s, err := kvstore.Open("")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := m.SaveTo(s); err != nil {
		t.Fatal(err)
	}
	m2 := New(cfg)
	if err := m2.LoadFrom(s); err != nil {
		t.Fatal(err)
	}
	for _, f := range ids {
		if !reflect.DeepEqual(m.CorrelatorList(f), m2.CorrelatorList(f)) {
			t.Fatalf("file %#x lost or changed across save/load", f)
		}
		if _, ok := m2.Vector(f); !ok {
			t.Fatalf("vector %#x lost across save/load", f)
		}
	}
}

// TestLoadMergedRefusesFedEnsemble: the freshness check runs under the
// dispatch lock, so a load can never interleave with feeding.
func TestLoadMergedRefusesFedEnsemble(t *testing.T) {
	m := minedHP(t, 2000)
	s, err := kvstore.Open("")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := m.SaveTo(s); err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Mask = vsm.DefaultMask(true)
	cfg.Shards = 2
	sm := NewSharded(cfg)
	r := trace.Record{File: 1, Path: "/x"}
	sm.Feed(&r)
	if err := sm.LoadMerged(s); err == nil {
		t.Fatal("LoadMerged accepted an ensemble that already ingested")
	}
	if sm.Fed() != 1 {
		t.Fatalf("refused load disturbed the fed counter: %d", sm.Fed())
	}
}

// TestCheckpointIsComplete is the property farmerd replication rests on: a
// model restored from a mid-stream checkpoint (lists, vectors, graph AND
// lookahead window) and fed the remainder of the trace reaches a state
// bit-identical to a model that mined the whole trace continuously. Before
// graph/window persistence, the restored model silently diverged — every
// post-restore Frequency() started from an empty graph.
func TestCheckpointIsComplete(t *testing.T) {
	tr := tracegen.HP(6000).MustGenerate()
	cfg := DefaultConfig()
	cfg.Mask = vsm.DefaultMask(true)
	cut := len(tr.Records) / 2

	ref := New(cfg)
	ref.FeedTrace(tr)
	want := StateFingerprint(ref, tr.FileCount)

	m := New(cfg)
	for i := 0; i < cut; i++ {
		m.Feed(&tr.Records[i])
	}
	s, err := kvstore.Open("")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := m.SaveTo(s); err != nil {
		t.Fatal(err)
	}
	m2 := New(cfg)
	if err := m2.LoadFrom(s); err != nil {
		t.Fatal(err)
	}
	for i := cut; i < len(tr.Records); i++ {
		m2.Feed(&tr.Records[i])
	}
	if got := StateFingerprint(m2, tr.FileCount); got != want {
		t.Fatalf("restored model diverged: fingerprint %#x != continuous %#x", got, want)
	}
	if m2.Fed() != uint64(len(tr.Records)) {
		t.Fatalf("fed %d, want %d", m2.Fed(), len(tr.Records))
	}
}

// TestCheckpointIsCompleteMerged: the same completeness property for a
// sharded ensemble checkpointed with SaveMerged mid-stream and restored at
// a different stripe count.
func TestCheckpointIsCompleteMerged(t *testing.T) {
	tr := tracegen.HP(6000).MustGenerate()
	cfg := DefaultConfig()
	cfg.Mask = vsm.DefaultMask(true)
	cut := len(tr.Records) / 3

	refCfg := cfg
	ref := New(refCfg)
	ref.FeedTrace(tr)
	want := StateFingerprint(ref, tr.FileCount)

	cfg.Shards = 3
	sm := NewSharded(cfg)
	sm.FeedBatch(tr.Records[:cut])
	s, err := kvstore.Open("")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := sm.SaveMerged(s); err != nil {
		t.Fatal(err)
	}
	for _, shards := range []int{1, 2, 5} {
		cfg.Shards = shards
		sm2 := NewSharded(cfg)
		if err := sm2.LoadMerged(s); err != nil {
			t.Fatal(err)
		}
		sm2.FeedBatch(tr.Records[cut:])
		if got := StateFingerprint(sm2, tr.FileCount); got != want {
			t.Fatalf("shards=%d: restored ensemble diverged: %#x != %#x", shards, got, want)
		}
	}
}

// TestStoreFingerprintMatchesState: the store-side fingerprint (what a
// replication follower verifies before installing a snapshot) equals the
// model-side fingerprint of the state that wrote it.
func TestStoreFingerprintMatchesState(t *testing.T) {
	m := minedHP(t, 3000)
	fc := m.trackedFileCount()
	s, err := kvstore.Open("")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := m.SaveTo(s); err != nil {
		t.Fatal(err)
	}
	want := StateFingerprint(m, fc)
	got, err := StoreFingerprint(s, fc)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("store fingerprint %#x != state fingerprint %#x", got, want)
	}
}

// TestWindowTailPrimeWindow: the public window round trip used by the
// replication bootstrap, at both shard shapes.
func TestWindowTailPrimeWindow(t *testing.T) {
	for _, shards := range []int{1, 3} {
		cfg := DefaultConfig()
		cfg.Mask = vsm.DefaultMask(true)
		cfg.Shards = shards
		sm := NewSharded(cfg)
		for i := 0; i < 10; i++ {
			sm.Feed(&trace.Record{File: trace.FileID(i), Path: fmt.Sprintf("/f/%d", i)})
		}
		w := sm.WindowTail()
		want := []trace.FileID{7, 8, 9} // window 3, oldest first
		if !reflect.DeepEqual(w, want) {
			t.Fatalf("shards=%d: window %v, want %v", shards, w, want)
		}
		fresh := NewSharded(cfg)
		fresh.PrimeWindow(w)
		if got := fresh.WindowTail(); !reflect.DeepEqual(got, want) {
			t.Fatalf("shards=%d: primed window %v, want %v", shards, got, want)
		}
		// Priming more than the window keeps the most recent entries.
		fresh.PrimeWindow([]trace.FileID{1, 2, 3, 4, 5})
		if got := fresh.WindowTail(); !reflect.DeepEqual(got, []trace.FileID{3, 4, 5}) {
			t.Fatalf("shards=%d: overlong prime kept %v", shards, got)
		}
	}
}

// TestTrackedFileCount: the dense fingerprint bound follows the highest
// file id holding any mined state.
func TestTrackedFileCount(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Mask = vsm.DefaultMask(true)
	cfg.Shards = 2
	sm := NewSharded(cfg)
	if got := sm.TrackedFileCount(); got != 0 {
		t.Fatalf("empty ensemble tracks %d", got)
	}
	for i := 0; i < 4; i++ {
		sm.Feed(&trace.Record{File: trace.FileID(100 + i), Path: "/shared/file"})
	}
	if got := sm.TrackedFileCount(); got != 104 {
		t.Fatalf("tracked %d, want 104", got)
	}
}

// TestCorruptCountsRejectedNotPanic: length checks on persisted graph-node
// and window records must be overflow-proof — a huge corrupt count
// (n*elemSize wrapping past 2^32) has to be a decode error, never a
// multi-GiB allocation followed by an index panic. Reachable from a hostile
// replication catch-up snapshot, not just a bad disk.
func TestCorruptCountsRejectedNotPanic(t *testing.T) {
	// Graph node: 12-byte value (total + count only) claiming 2^30 edges;
	// 12*2^30 mod 2^32 == 0 would have passed the old uint32 comparison.
	raw := make([]byte, 12)
	binary.LittleEndian.PutUint32(raw[8:12], 1<<30)
	if _, _, err := decodeGraphNode(raw); err == nil {
		t.Fatal("overflowing edge count accepted")
	}

	// Window record with the same wrap: 4 bytes claiming 2^30 ids.
	s, err := kvstore.Open("")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	wraw := make([]byte, 4)
	binary.LittleEndian.PutUint32(wraw, 1<<30)
	if err := s.Put([]byte("m/window"), wraw); err != nil {
		t.Fatal(err)
	}
	if _, err := readWindow(s); err == nil {
		t.Fatal("overflowing window count accepted")
	}
}
