package core

import (
	"fmt"
	"path/filepath"
	"reflect"
	"testing"

	"farmer/internal/kvstore"
	"farmer/internal/partition"
	"farmer/internal/trace"
	"farmer/internal/tracegen"
	"farmer/internal/vsm"
)

func minedHP(t *testing.T, records int) *Model {
	t.Helper()
	tr := tracegen.HP(records).MustGenerate()
	cfg := DefaultConfig()
	cfg.Mask = vsm.DefaultMask(true)
	m := New(cfg)
	m.FeedTrace(tr)
	return m
}

func TestSaveLoadRoundTrip(t *testing.T) {
	m := minedHP(t, 8000)
	s, err := kvstore.Open("")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := m.SaveTo(s); err != nil {
		t.Fatal(err)
	}

	m2 := New(m.Config())
	if err := m2.LoadFrom(s); err != nil {
		t.Fatal(err)
	}
	if m2.Fed() != m.Fed() {
		t.Fatalf("fed %d != %d", m2.Fed(), m.Fed())
	}
	st, st2 := m.Stats(), m2.Stats()
	if st.Correlators != st2.Correlators || st.Lists != st2.Lists || st.TrackedFiles != st2.TrackedFiles {
		t.Fatalf("stats differ: %+v vs %+v", st, st2)
	}
	// Every list matches exactly.
	for f := trace.FileID(0); int(f) < 6000; f++ {
		a, b := m.CorrelatorList(f), m2.CorrelatorList(f)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("file %d lists differ:\n%+v\n%+v", f, a, b)
		}
	}
	// Predictions identical.
	for f := trace.FileID(0); int(f) < 2000; f++ {
		if !reflect.DeepEqual(m.Predict(f, 4), m2.Predict(f, 4)) {
			t.Fatalf("predictions differ for %d", f)
		}
	}
}

func TestLoadFromEmptyStore(t *testing.T) {
	s, _ := kvstore.Open("")
	defer s.Close()
	m := New(DefaultConfig())
	if err := m.LoadFrom(s); err == nil {
		t.Fatal("empty store accepted")
	}
}

func TestLoadRejectsParameterMismatch(t *testing.T) {
	m := minedHP(t, 2000)
	s, _ := kvstore.Open("")
	defer s.Close()
	if err := m.SaveTo(s); err != nil {
		t.Fatal(err)
	}
	cfg := m.Config()
	cfg.Weight = 0.3 // different p
	m2 := New(cfg)
	if err := m2.LoadFrom(s); err == nil {
		t.Fatal("parameter mismatch accepted")
	}
}

func TestSaveLoadThroughWALFile(t *testing.T) {
	m := minedHP(t, 3000)
	path := filepath.Join(t.TempDir(), "model.wal")
	s, err := kvstore.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.SaveTo(s); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Recover from disk.
	s2, err := kvstore.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	m2 := New(m.Config())
	if err := m2.LoadFrom(s2); err != nil {
		t.Fatal(err)
	}
	if m2.Stats().Correlators != m.Stats().Correlators {
		t.Fatal("correlators lost across WAL restart")
	}
}

// TestLoadedModelKeepsMining: a restored model must continue to learn.
func TestLoadedModelKeepsMining(t *testing.T) {
	m := minedHP(t, 2000)
	s, _ := kvstore.Open("")
	defer s.Close()
	if err := m.SaveTo(s); err != nil {
		t.Fatal(err)
	}
	m2 := New(m.Config())
	if err := m2.LoadFrom(s); err != nil {
		t.Fatal(err)
	}
	before := m2.Stats().Fed
	m2.Feed(&trace.Record{File: 1, UID: 1, Path: "/a/b"})
	if m2.Stats().Fed != before+1 {
		t.Fatal("restored model did not keep counting")
	}
}

// minedShardedHP mines the HP trace on an ensemble and returns both for
// merged-persistence checks.
func minedShardedHP(t *testing.T, records, shards int) (*trace.Trace, *ShardedModel) {
	t.Helper()
	tr := tracegen.HP(records).MustGenerate()
	cfg := DefaultConfig()
	cfg.Mask = vsm.DefaultMask(true)
	cfg.Shards = shards
	sm := NewSharded(cfg)
	sm.FeedTraceParallel(tr)
	return tr, sm
}

func assertSamePredictions(t *testing.T, tr *trace.Trace, want, got interface {
	Predict(f trace.FileID, k int) []trace.FileID
}) {
	t.Helper()
	for f := 0; f < tr.FileCount; f++ {
		id := trace.FileID(f)
		w, g := want.Predict(id, 8), got.Predict(id, 8)
		if !reflect.DeepEqual(w, g) {
			t.Fatalf("file %d predictions differ: %v vs %v", f, w, g)
		}
	}
}

// TestSaveMergedLoadMergedResize is the resize round trip: a 4-stripe
// ensemble saves once, and ensembles at other stripe counts — and under
// entirely different deployment partitioners — load the same record with
// identical predictions. A plain Model can read the merged save too.
func TestSaveMergedLoadMergedResize(t *testing.T) {
	tr, sm := minedShardedHP(t, 8000, 4)
	st, err := kvstore.Open("")
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if err := sm.SaveMerged(st); err != nil {
		t.Fatal(err)
	}

	cfg := sm.Config()
	for _, shards := range []int{1, 2, 7} {
		c := cfg
		c.Shards = shards
		sm2 := NewSharded(c)
		if err := sm2.LoadMerged(st); err != nil {
			t.Fatal(err)
		}
		if sm2.Fed() != sm.Fed() {
			t.Fatalf("shards=%d: fed %d != %d", shards, sm2.Fed(), sm.Fed())
		}
		assertSamePredictions(t, tr, sm, sm2)
		ws, gs := sm.Stats(), sm2.Stats()
		if ws.Lists != gs.Lists || ws.Correlators != gs.Correlators || ws.TrackedFiles != gs.TrackedFiles {
			t.Fatalf("shards=%d: stats differ: %+v vs %+v", shards, ws, gs)
		}
	}
	for _, part := range []partition.Partitioner{partition.Hash, partition.Group} {
		sm2 := NewShardedPartitioned(cfg, 3, part)
		if err := sm2.LoadMerged(st); err != nil {
			t.Fatal(err)
		}
		assertSamePredictions(t, tr, sm, sm2)
	}
	// Backward compatibility: the merged save is an ordinary model save.
	single := New(cfg)
	if err := single.LoadFrom(st); err != nil {
		t.Fatal(err)
	}
	assertSamePredictions(t, tr, sm, single)
}

// TestLoadMergedRebalancesPlacement: after a resize load, every file's
// state sits on the shard the new stripe count assigns — no orphans.
func TestLoadMergedRebalancesPlacement(t *testing.T) {
	tr, sm := minedShardedHP(t, 5000, 2)
	st, _ := kvstore.Open("")
	defer st.Close()
	if err := sm.SaveMerged(st); err != nil {
		t.Fatal(err)
	}
	c := sm.Config()
	c.Shards = 5
	sm2 := NewSharded(c)
	if err := sm2.LoadMerged(st); err != nil {
		t.Fatal(err)
	}
	for f := 0; f < tr.FileCount; f++ {
		id := trace.FileID(f)
		own := sm2.Partitioner()(id, sm2.Shards())
		for i := 0; i < sm2.Shards(); i++ {
			if n := len(sm2.Shard(i).CorrelatorList(id)); n > 0 && i != own {
				t.Fatalf("file %d has %d correlators on shard %d, owner is %d", f, n, i, own)
			}
		}
	}
}

// TestLoadMergedKeepsMining: a resized ensemble continues to learn and
// counts from the restored fed total.
func TestLoadMergedKeepsMining(t *testing.T) {
	_, sm := minedShardedHP(t, 2000, 3)
	st, _ := kvstore.Open("")
	defer st.Close()
	if err := sm.SaveMerged(st); err != nil {
		t.Fatal(err)
	}
	for _, shards := range []int{1, 2} {
		c := sm.Config()
		c.Shards = shards
		sm2 := NewSharded(c)
		if err := sm2.LoadMerged(st); err != nil {
			t.Fatal(err)
		}
		before := sm2.Fed()
		if before != sm.Fed() {
			t.Fatalf("restored fed %d != %d", before, sm.Fed())
		}
		sm2.Feed(&trace.Record{File: 1, UID: 1, Path: "/a/b"})
		if sm2.Fed() != before+1 {
			t.Fatalf("resized ensemble did not keep counting")
		}
	}
}

func TestLoadMergedRejectsParameterMismatch(t *testing.T) {
	_, sm := minedShardedHP(t, 2000, 2)
	st, _ := kvstore.Open("")
	defer st.Close()
	if err := sm.SaveMerged(st); err != nil {
		t.Fatal(err)
	}
	c := sm.Config()
	c.Weight = 0.3
	if err := NewSharded(c).LoadMerged(st); err == nil {
		t.Fatal("parameter mismatch accepted")
	}
	empty, _ := kvstore.Open("")
	defer empty.Close()
	if err := NewSharded(sm.Config()).LoadMerged(empty); err == nil {
		t.Fatal("empty store accepted")
	}
}

func TestDecodeListRejectsGarbage(t *testing.T) {
	if _, err := decodeList([]byte{0xff, 0xff, 0xff, 0xff}); err == nil {
		t.Fatal("garbage list accepted")
	}
	if _, err := decodeList([]byte{1}); err == nil {
		t.Fatal("short list accepted")
	}
}

func TestDecodeVectorRejectsGarbage(t *testing.T) {
	if _, err := decodeVector([]byte{0xff, 0xff, 0xff, 0xff}); err == nil {
		t.Fatal("garbage vector accepted")
	}
}

// TestSaveLoadPathlessTrace: vectors of a pathless (INS/RES-style) trace
// end with an empty path string; decoding it at the end of the value must
// yield "", not EOF. Regression test — every pathless load failed before
// the io.ReadFull fix in decodeVector.
func TestSaveLoadPathlessTrace(t *testing.T) {
	tr := tracegen.INS(3000).MustGenerate()
	cfg := DefaultConfig()
	cfg.Mask = vsm.DefaultMask(false)
	m := New(cfg)
	m.FeedTrace(tr)

	s, err := kvstore.Open("")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := m.SaveTo(s); err != nil {
		t.Fatal(err)
	}
	m2 := New(cfg)
	if err := m2.LoadFrom(s); err != nil {
		t.Fatalf("pathless load: %v", err)
	}
	for f := 0; f < tr.FileCount; f++ {
		if !reflect.DeepEqual(m.CorrelatorList(trace.FileID(f)), m2.CorrelatorList(trace.FileID(f))) {
			t.Fatalf("file %d list differs after pathless round trip", f)
		}
	}
}

// TestLoadMergedRejectsCorruptValues: a store whose frames are intact but
// whose values are garbage must fail the load with an error — never panic,
// never install a half-decoded model.
func TestLoadMergedRejectsCorruptValues(t *testing.T) {
	for _, tc := range []struct {
		name string
		key  []byte
		val  []byte
	}{
		{"garbage list", listKey(7), []byte{0xff, 0xff, 0xff, 0xff}},
		{"truncated list", listKey(7), []byte{2, 0, 0, 0, 1}},
		{"garbage vector", vectorKey(9), []byte{0xff, 0xff, 0xff, 0xff}},
		{"truncated vector", vectorKey(9), []byte{1, 0, 0, 0, 5, 0, 0, 0, 'a'}},
		{"bad list key", append([]byte(keyPrefixList), 1, 2), []byte{0, 0, 0, 0}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			m := minedHP(t, 2000)
			s, err := kvstore.Open("")
			if err != nil {
				t.Fatal(err)
			}
			defer s.Close()
			if err := m.SaveTo(s); err != nil {
				t.Fatal(err)
			}
			if err := s.Put(tc.key, tc.val); err != nil {
				t.Fatal(err)
			}

			sm := NewSharded(DefaultConfig())
			if err := sm.LoadMerged(s); err == nil {
				t.Fatal("LoadMerged accepted a corrupt value")
			}
			m2 := New(DefaultConfig())
			if err := m2.LoadFrom(s); err == nil {
				t.Fatal("LoadFrom accepted a corrupt value")
			}
		})
	}
}

// TestCheckpointPrunesStaleKeys: state dropped between checkpoints (a list
// the validity filter removed) must not resurrect on reload from the later
// checkpoint.
func TestCheckpointPrunesStaleKeys(t *testing.T) {
	m := minedHP(t, 4000)
	s, err := kvstore.Open("")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := m.SaveTo(s); err != nil {
		t.Fatal(err)
	}

	// Drop one mined list and one vector, as the threshold filter would.
	var victim trace.FileID
	m.mu.Lock()
	for f := range m.lists {
		victim = f
		break
	}
	delete(m.lists, victim)
	delete(m.vectors, victim)
	m.mu.Unlock()

	if err := m.SaveTo(s); err != nil {
		t.Fatal(err)
	}
	m2 := New(m.Config())
	if err := m2.LoadFrom(s); err != nil {
		t.Fatal(err)
	}
	if got := m2.CorrelatorList(victim); got != nil {
		t.Fatalf("dropped list %d resurrected from checkpoint: %v", victim, got)
	}
	if _, ok := m2.Vector(victim); ok {
		t.Fatalf("dropped vector %d resurrected from checkpoint", victim)
	}
}

// TestSaveMergedPrunesStaleKeys: same contract for the ensemble checkpoint.
func TestSaveMergedPrunesStaleKeys(t *testing.T) {
	tr := tracegen.HP(4000).MustGenerate()
	cfg := DefaultConfig()
	cfg.Shards = 3
	sm := NewSharded(cfg)
	sm.FeedTraceParallel(tr)
	s, err := kvstore.Open("")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := sm.SaveMerged(s); err != nil {
		t.Fatal(err)
	}
	var victim trace.FileID
	found := false
	for f := 0; f < tr.FileCount && !found; f++ {
		if len(sm.CorrelatorList(trace.FileID(f))) > 0 {
			victim = trace.FileID(f)
			found = true
		}
	}
	if !found {
		t.Fatal("no mined list to drop")
	}
	sh := sm.shardFor(victim)
	sh.mu.Lock()
	delete(sh.lists, victim)
	sh.mu.Unlock()

	if err := sm.SaveMerged(s); err != nil {
		t.Fatal(err)
	}
	sm2 := NewSharded(cfg)
	if err := sm2.LoadMerged(s); err != nil {
		t.Fatal(err)
	}
	if got := sm2.CorrelatorList(victim); got != nil {
		t.Fatalf("dropped list %d resurrected from merged checkpoint: %v", victim, got)
	}
}

// TestSaveLoadHighFileIDs: FileIDs with a 0xff top byte sort after the old
// "prefix\xff" scan bound; they must survive a save/load round trip like
// any other id (regression test for the prefixEnd fix).
func TestSaveLoadHighFileIDs(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Mask = vsm.DefaultMask(true)
	m := New(cfg)
	ids := []trace.FileID{0xff000001, 0xff000002, 0xfffffffe, 1, 2}
	for round := 0; round < 20; round++ {
		for i, f := range ids {
			m.Feed(&trace.Record{Seq: uint64(round*len(ids) + i), File: f, UID: 7, PID: 9, Host: 1, Path: fmt.Sprintf("/hi/%d", f)})
		}
	}
	if len(m.CorrelatorList(0xff000001)) == 0 {
		t.Fatal("test premise broken: no mined list for the high id")
	}
	s, err := kvstore.Open("")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := m.SaveTo(s); err != nil {
		t.Fatal(err)
	}
	m2 := New(cfg)
	if err := m2.LoadFrom(s); err != nil {
		t.Fatal(err)
	}
	for _, f := range ids {
		if !reflect.DeepEqual(m.CorrelatorList(f), m2.CorrelatorList(f)) {
			t.Fatalf("file %#x lost or changed across save/load", f)
		}
		if _, ok := m2.Vector(f); !ok {
			t.Fatalf("vector %#x lost across save/load", f)
		}
	}
}

// TestLoadMergedRefusesFedEnsemble: the freshness check runs under the
// dispatch lock, so a load can never interleave with feeding.
func TestLoadMergedRefusesFedEnsemble(t *testing.T) {
	m := minedHP(t, 2000)
	s, err := kvstore.Open("")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := m.SaveTo(s); err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Mask = vsm.DefaultMask(true)
	cfg.Shards = 2
	sm := NewSharded(cfg)
	r := trace.Record{File: 1, Path: "/x"}
	sm.Feed(&r)
	if err := sm.LoadMerged(s); err == nil {
		t.Fatal("LoadMerged accepted an ensemble that already ingested")
	}
	if sm.Fed() != 1 {
		t.Fatalf("refused load disturbed the fed counter: %d", sm.Fed())
	}
}
