package core

import (
	"path/filepath"
	"reflect"
	"testing"

	"farmer/internal/kvstore"
	"farmer/internal/trace"
	"farmer/internal/tracegen"
	"farmer/internal/vsm"
)

func minedHP(t *testing.T, records int) *Model {
	t.Helper()
	tr := tracegen.HP(records).MustGenerate()
	cfg := DefaultConfig()
	cfg.Mask = vsm.DefaultMask(true)
	m := New(cfg)
	m.FeedTrace(tr)
	return m
}

func TestSaveLoadRoundTrip(t *testing.T) {
	m := minedHP(t, 8000)
	s, err := kvstore.Open("")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := m.SaveTo(s); err != nil {
		t.Fatal(err)
	}

	m2 := New(m.Config())
	if err := m2.LoadFrom(s); err != nil {
		t.Fatal(err)
	}
	if m2.Fed() != m.Fed() {
		t.Fatalf("fed %d != %d", m2.Fed(), m.Fed())
	}
	st, st2 := m.Stats(), m2.Stats()
	if st.Correlators != st2.Correlators || st.Lists != st2.Lists || st.TrackedFiles != st2.TrackedFiles {
		t.Fatalf("stats differ: %+v vs %+v", st, st2)
	}
	// Every list matches exactly.
	for f := trace.FileID(0); int(f) < 6000; f++ {
		a, b := m.CorrelatorList(f), m2.CorrelatorList(f)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("file %d lists differ:\n%+v\n%+v", f, a, b)
		}
	}
	// Predictions identical.
	for f := trace.FileID(0); int(f) < 2000; f++ {
		if !reflect.DeepEqual(m.Predict(f, 4), m2.Predict(f, 4)) {
			t.Fatalf("predictions differ for %d", f)
		}
	}
}

func TestLoadFromEmptyStore(t *testing.T) {
	s, _ := kvstore.Open("")
	defer s.Close()
	m := New(DefaultConfig())
	if err := m.LoadFrom(s); err == nil {
		t.Fatal("empty store accepted")
	}
}

func TestLoadRejectsParameterMismatch(t *testing.T) {
	m := minedHP(t, 2000)
	s, _ := kvstore.Open("")
	defer s.Close()
	if err := m.SaveTo(s); err != nil {
		t.Fatal(err)
	}
	cfg := m.Config()
	cfg.Weight = 0.3 // different p
	m2 := New(cfg)
	if err := m2.LoadFrom(s); err == nil {
		t.Fatal("parameter mismatch accepted")
	}
}

func TestSaveLoadThroughWALFile(t *testing.T) {
	m := minedHP(t, 3000)
	path := filepath.Join(t.TempDir(), "model.wal")
	s, err := kvstore.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.SaveTo(s); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Recover from disk.
	s2, err := kvstore.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	m2 := New(m.Config())
	if err := m2.LoadFrom(s2); err != nil {
		t.Fatal(err)
	}
	if m2.Stats().Correlators != m.Stats().Correlators {
		t.Fatal("correlators lost across WAL restart")
	}
}

// TestLoadedModelKeepsMining: a restored model must continue to learn.
func TestLoadedModelKeepsMining(t *testing.T) {
	m := minedHP(t, 2000)
	s, _ := kvstore.Open("")
	defer s.Close()
	if err := m.SaveTo(s); err != nil {
		t.Fatal(err)
	}
	m2 := New(m.Config())
	if err := m2.LoadFrom(s); err != nil {
		t.Fatal(err)
	}
	before := m2.Stats().Fed
	m2.Feed(&trace.Record{File: 1, UID: 1, Path: "/a/b"})
	if m2.Stats().Fed != before+1 {
		t.Fatal("restored model did not keep counting")
	}
}

func TestDecodeListRejectsGarbage(t *testing.T) {
	if _, err := decodeList([]byte{0xff, 0xff, 0xff, 0xff}); err == nil {
		t.Fatal("garbage list accepted")
	}
	if _, err := decodeList([]byte{1}); err == nil {
		t.Fatal("short list accepted")
	}
}

func TestDecodeVectorRejectsGarbage(t *testing.T) {
	if _, err := decodeVector([]byte{0xff, 0xff, 0xff, 0xff}); err == nil {
		t.Fatal("garbage vector accepted")
	}
}
