// Event taps: ordered, bounded notification channels hung off ShardedModel
// ingestion, so an asynchronous prefetch pipeline can react to mined updates
// without ever sitting on the demand path.
//
// A tap carries one TapEvent per ingested record, delivered on the channel of
// the shard that owns the accessed file's mined state, after that shard has
// installed the record's update (post-ingest). Every per-shard channel is
// FIFO in global stream order. Channels are bounded: when a consumer falls
// behind, the producer drops the OLDEST queued event and counts it, so a
// mining burst degrades notification coverage instead of ingestion latency —
// taps never block Feed or FeedBatch.
package core

import (
	"sync/atomic"

	"farmer/internal/trace"
)

// TapEvent is one post-ingest notification: record Seq (1-based global
// ingestion sequence) for file File was mined, and File's correlation state
// lives on shard Shard.
type TapEvent struct {
	Seq   uint64
	File  trace.FileID
	Shard int
}

// DefaultTapBuffer is the per-shard channel capacity used when Tap is called
// with a non-positive buffer.
const DefaultTapBuffer = 256

// padCounter is an atomic counter padded out to its own cache line. A bare
// []atomic.Uint64 packs 8 adjacent shards' counters into one 64-byte line,
// so concurrent shard workers dropping events false-share the line and every
// Add becomes a cross-core transfer; one counter per line keeps each shard's
// drops core-local.
type padCounter struct {
	atomic.Uint64
	_ [56]byte
}

// EventTap is a registered subscription to a ShardedModel's ingestion
// stream. Consume each shard's events with Chan(i); the channels are closed
// (after draining) by Close.
type EventTap struct {
	model   *ShardedModel
	chans   []chan TapEvent
	dropped []padCounter // per shard, one cache line each (see padCounter)
	closed  bool         // guarded by model.tmu
}

// Tap registers a new event tap with the given per-shard buffer size
// (DefaultTapBuffer when <= 0). The returned tap observes every record
// ingested after the call.
func (s *ShardedModel) Tap(buffer int) *EventTap {
	if buffer <= 0 {
		buffer = DefaultTapBuffer
	}
	n := len(s.shards)
	t := &EventTap{
		model:   s,
		chans:   make([]chan TapEvent, n),
		dropped: make([]padCounter, n),
	}
	for i := range t.chans {
		t.chans[i] = make(chan TapEvent, buffer)
	}
	s.tmu.Lock()
	s.taps = append(s.taps, t)
	s.tmu.Unlock()
	s.tapCount.Add(1)
	return t
}

// publish fans one post-ingest event out to every registered tap. Callers
// guarantee that for a given shard there is exactly one publishing goroutine
// at a time (the dispatcher on the streaming path, the shard worker during
// FeedBatch), which keeps each channel FIFO in stream order.
func (s *ShardedModel) publish(shard int, ev TapEvent) {
	if s.tapCount.Load() == 0 {
		return
	}
	s.tmu.RLock()
	for _, t := range s.taps {
		t.send(shard, ev)
	}
	s.tmu.RUnlock()
}

// send delivers ev on the shard's channel, dropping the oldest queued event
// when the consumer has fallen a full buffer behind. It never blocks.
func (t *EventTap) send(shard int, ev TapEvent) {
	ch := t.chans[shard]
	select {
	case ch <- ev:
		return
	default:
	}
	// Full: evict the oldest queued event to make room. The consumer may
	// race us and drain the channel first; then nothing is dropped.
	select {
	case <-ch:
		t.dropped[shard].Add(1)
	default:
	}
	select {
	case ch <- ev:
	default:
		// Unreachable with the single-producer-per-channel invariant, but
		// never block: account the fresh event as dropped instead.
		t.dropped[shard].Add(1)
	}
}

// Chan returns the ordered event channel of one shard. It is closed by
// Close after all pending events are observable (drain-then-exit for
// range loops).
func (t *EventTap) Chan(shard int) <-chan TapEvent { return t.chans[shard] }

// Shards reports how many per-shard channels the tap carries.
func (t *EventTap) Shards() int { return len(t.chans) }

// Dropped reports the total number of events discarded because the
// consumer lagged (summed over shards).
func (t *EventTap) Dropped() uint64 {
	var n uint64
	for i := range t.dropped {
		n += t.dropped[i].Load()
	}
	return n
}

// DroppedShard reports the drop count of a single shard's channel.
func (t *EventTap) DroppedShard(shard int) uint64 { return t.dropped[shard].Load() }

// Depth reports how many events are currently queued on one shard's
// channel — the tap's per-shard mailbox depth. Safe concurrently with
// ingestion and consumption; the value is naturally racy (a snapshot).
func (t *EventTap) Depth(shard int) int { return len(t.chans[shard]) }

// Depths returns the current queue depth of every shard channel.
func (t *EventTap) Depths() []int {
	out := make([]int, len(t.chans))
	for i := range t.chans {
		out[i] = len(t.chans[i])
	}
	return out
}

// Close unregisters the tap and closes its channels. In-flight events
// remain readable until each channel drains; consumers ranging over the
// channels terminate naturally. Close is idempotent and safe to call while
// the model is ingesting.
func (t *EventTap) Close() {
	s := t.model
	s.tmu.Lock()
	if t.closed {
		s.tmu.Unlock()
		return
	}
	t.closed = true
	for i, reg := range s.taps {
		if reg == t {
			s.taps = append(s.taps[:i], s.taps[i+1:]...)
			break
		}
	}
	s.tapCount.Add(-1)
	s.tmu.Unlock()
	// Publishers hold tmu.RLock around every send, so once unregistered
	// under the write lock no goroutine can still send: closing is safe.
	for _, ch := range t.chans {
		close(ch)
	}
}
