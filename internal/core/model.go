// Package core implements the FARMER model itself (paper §3): a streaming
// four-stage pipeline —
//
//	Stage 1 Extracting:  pull semantic attributes out of each file request
//	                     (delegated to vsm.Extractor);
//	Stage 2 Constructing: maintain the directed, weighted correlation graph
//	                     over the access sequence (delegated to graph.Graph
//	                     with Linear Decremented Assignment);
//	Stage 3 Mining & Evaluating (CoMiner): combine semantic distance and
//	                     access frequency into the file correlation degree
//	                     R(x,y) = p·sim(x,y) + (1−p)·F(x,y) and filter out
//	                     degrees below the max_strength validity threshold;
//	Stage 4 Sorting:     keep each file's surviving successors in a
//	                     Correlator List ordered by decreasing degree.
//
// The model is incremental: every Feed updates only the lists of the files in
// the current lookahead window, so a single pass over a trace produces the
// complete correlation knowledge and Predict is O(1) lookups thereafter.
package core

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"farmer/internal/graph"
	"farmer/internal/kvstore"
	"farmer/internal/trace"
	"farmer/internal/vsm"
)

// Config sets the FARMER parameters. The zero value is unusable; use
// DefaultConfig as a starting point.
type Config struct {
	// Weight is p in R = p·sim + (1−p)·F. The paper finds p = 0.7 best.
	Weight float64
	// MaxStrength is the validity threshold (paper §3.2.4): correlations
	// with degree <= MaxStrength are filtered out. Despite the name it is a
	// lower bound — the paper's terminology is kept verbatim.
	MaxStrength float64
	// Mask selects the semantic attributes used by CoMiner.
	Mask vsm.Mask
	// PathAlg selects DPA or IPA path handling; the paper uses IPA.
	PathAlg vsm.PathAlg
	// Graph configures the Stage-2 correlation graph.
	Graph graph.Config
	// MaxCorrelators bounds each Correlator List; 0 means unbounded.
	MaxCorrelators int
	// Shards selects how many FileID-striped partitions NewSharded spreads
	// the miner across. 0 or 1 keeps the single-lock Model behavior
	// (paper-exact); Model itself ignores the knob.
	Shards int
}

// DefaultConfig returns the paper's chosen parameters for a trace with full
// path attributes: p = 0.7, max_strength = 0.4, IPA, window 3.
func DefaultConfig() Config {
	return Config{
		Weight:         0.7,
		MaxStrength:    0.4,
		Mask:           vsm.AllPathMask,
		PathAlg:        vsm.IPA,
		Graph:          graph.DefaultConfig(),
		MaxCorrelators: 16,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if math.IsNaN(c.Weight) || c.Weight < 0 || c.Weight > 1 {
		return fmt.Errorf("core: weight p = %v outside [0,1]", c.Weight)
	}
	if math.IsNaN(c.MaxStrength) || c.MaxStrength < 0 || c.MaxStrength > 1 {
		return fmt.Errorf("core: max_strength = %v outside [0,1]", c.MaxStrength)
	}
	if c.MaxCorrelators < 0 {
		return fmt.Errorf("core: negative MaxCorrelators %d", c.MaxCorrelators)
	}
	if c.Shards < 0 {
		return fmt.Errorf("core: negative Shards %d", c.Shards)
	}
	return nil
}

// Correlator is one entry of a file's Correlator List: a successor together
// with the evaluated correlation degree and its two components.
type Correlator struct {
	File   trace.FileID
	Degree float64 // R(x,y)
	Sim    float64 // semantic distance component
	Freq   float64 // access-frequency component
}

// Model is the FARMER correlation miner. Feed must be called from a single
// goroutine; Predict/CorrelatorList/stats methods are safe to call
// concurrently with each other and with Feed.
type Model struct {
	cfg       Config
	winSize   int // lookahead window, normalized like the graph's own
	extractor *vsm.Extractor

	// listHook, when set, is invoked under m.mu after every Correlator-List
	// mutation (insert, update, drop, checkpoint install) with the owning
	// predecessor — the invalidation feed a read-side list cache subscribes
	// to. Set it before the model is shared between goroutines.
	listHook func(trace.FileID)

	mu      sync.RWMutex
	g       *graph.Graph
	vectors map[trace.FileID]vsm.Vector
	lists   map[trace.FileID][]Correlator
	window  []trace.FileID // recent accesses, oldest first
	fed     uint64

	// Incremental-checkpoint dirty tracking. Once a save or load has
	// synchronized the model with a checkpoint store, every mutation marks
	// the touched file so the next save can write only the delta. dirtyOn
	// stays false (one branch per mutation, no map traffic) until the first
	// save/load — a model that never checkpoints pays nothing. ckptStore
	// and saveEpoch bind the dirty sets to the store (and its epoch) they
	// are a delta against; see persist.go.
	dirtyOn   bool
	dirty     map[trace.FileID]uint8 // dirtyList|dirtyVec|dirtyGraph bits
	ckptStore *kvstore.Store
	saveEpoch uint64
}

// Dirty bits: which of a file's three persisted facets changed since the
// last completed save. A set bit with the facet now absent from the model
// is a deletion tombstone — the incremental save deletes the key.
const (
	dirtyList uint8 = 1 << iota
	dirtyVec
	dirtyGraph
)

// markDirty records that a facet of f changed. Callers hold m.mu.
func (m *Model) markDirty(f trace.FileID, bits uint8) {
	if m.dirtyOn {
		m.dirty[f] |= bits
	}
}

// resetDirtyLocked clears the dirty set and (re)enables tracking — called
// under m.mu by the persistence layer once a save or load has synchronized
// the model with its checkpoint store.
func (m *Model) resetDirtyLocked() {
	m.dirtyOn = true
	if m.dirty == nil {
		m.dirty = make(map[trace.FileID]uint8)
		return
	}
	clear(m.dirty)
}

// DirtyFiles reports how many files have pending dirty marks — the size of
// the next incremental checkpoint.
func (m *Model) DirtyFiles() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return len(m.dirty)
}

// New creates a model; it panics on invalid configuration (programmer
// error), matching the constructor conventions of the stdlib.
func New(cfg Config) *Model {
	m := new(Model)
	m.init(cfg)
	return m
}

// init constructs the model in place — the seam that lets ShardedModel
// allocate its shards as one padded contiguous block instead of pointer-
// chasing individually boxed Models.
func (m *Model) init(cfg Config) {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	ex := vsm.NewExtractor(cfg.Mask)
	ex.Alg = cfg.PathAlg
	m.cfg = cfg
	m.winSize = cfg.Graph.Normalized().Window
	m.extractor = ex
	m.g = graph.New(cfg.Graph)
	m.vectors = make(map[trace.FileID]vsm.Vector)
	m.lists = make(map[trace.FileID][]Correlator)
}

// SetListChangeHook registers fn to run (under the model lock) whenever a
// file's Correlator List changes. At most one hook; nil unregisters. Must be
// called before the model is fed from multiple goroutines.
func (m *Model) SetListChangeHook(fn func(trace.FileID)) {
	m.mu.Lock()
	m.listHook = fn
	m.mu.Unlock()
}

// notifyListChange invokes the registered hook, if any, and marks the list
// dirty for the next incremental checkpoint — every Correlator-List mutation
// (insert, update, drop, install) funnels through here. Callers hold m.mu.
func (m *Model) notifyListChange(f trace.FileID) {
	m.markDirty(f, dirtyList)
	if m.listHook != nil {
		m.listHook(f)
	}
}

// Config returns the model's configuration.
func (m *Model) Config() Config { return m.cfg }

// Feed runs all four stages for one file request.
func (m *Model) Feed(r *trace.Record) {
	m.mu.Lock()
	defer m.mu.Unlock()

	// Stage 1: Extracting.
	v := m.extractor.Extract(r)
	m.vectors[r.File] = v
	m.markDirty(r.File, dirtyVec)

	// Stage 2: Constructing. Credit every file in the lookahead window.
	m.g.Feed(r.File)

	// Stage 3+4: Mining & Evaluating + Sorting, for each predecessor whose
	// edge to r.File just changed.
	for _, pred := range m.window {
		if pred == r.File {
			continue
		}
		m.markDirty(pred, dirtyGraph)
		m.evaluate(pred, r.File)
	}

	// Trim to the same normalized window the graph credits: evaluating
	// predecessors the graph no longer assigns credit to would only recompute
	// unchanged degrees.
	m.window = append(m.window, r.File)
	if w := m.winSize; len(m.window) > w {
		copy(m.window, m.window[1:])
		m.window = m.window[:w]
	}
	m.fed++
}

// evaluate recomputes R(pred, succ) and updates pred's Correlator List,
// holding m.mu.
func (m *Model) evaluate(pred, succ trace.FileID) {
	vs, okS := m.vectors[succ]
	m.evaluateVec(pred, succ, vs, okS)
}

// evaluateVec is evaluate with the successor's semantic vector supplied by
// the caller. Sharded ingestion routes an edge event to the shard owning
// pred, which stores pred's vector but not succ's, so the dispatcher ships
// succ's freshly extracted vector along with the event.
func (m *Model) evaluateVec(pred, succ trace.FileID, vs vsm.Vector, okS bool) {
	vp, okP := m.vectors[pred]
	var sim float64
	if okP && okS {
		sim = vsm.Sim(&vp, &vs, m.cfg.PathAlg)
	}
	freq := m.g.Frequency(pred, succ)
	degree := m.cfg.Weight*sim + (1-m.cfg.Weight)*freq

	list := m.lists[pred]
	idx := -1
	for i := range list {
		if list[i].File == succ {
			idx = i
			break
		}
	}
	if degree <= m.cfg.MaxStrength {
		// Filtered out as invalid (paper §3.2.4); drop a stale entry.
		if idx >= 0 {
			list = append(list[:idx], list[idx+1:]...)
			if len(list) == 0 {
				delete(m.lists, pred)
			} else {
				m.lists[pred] = list
			}
			m.notifyListChange(pred)
		}
		return
	}
	entry := Correlator{File: succ, Degree: degree, Sim: sim, Freq: freq}
	if idx >= 0 {
		list[idx] = entry
	} else {
		list = append(list, entry)
	}
	sort.Slice(list, func(i, j int) bool {
		if list[i].Degree != list[j].Degree {
			return list[i].Degree > list[j].Degree
		}
		return list[i].File < list[j].File
	})
	if m.cfg.MaxCorrelators > 0 && len(list) > m.cfg.MaxCorrelators {
		list = list[:m.cfg.MaxCorrelators]
	}
	m.lists[pred] = list
	m.notifyListChange(pred)
}

// FeedTrace feeds every record of a trace in order.
func (m *Model) FeedTrace(t *trace.Trace) {
	for i := range t.Records {
		m.Feed(&t.Records[i])
	}
}

// CorrelatorList returns a copy of the file's sorted Correlator List (nil
// when the file has no valid correlations).
func (m *Model) CorrelatorList(f trace.FileID) []Correlator {
	m.mu.RLock()
	defer m.mu.RUnlock()
	list := m.lists[f]
	if len(list) == 0 {
		return nil
	}
	return append([]Correlator(nil), list...)
}

// Predict returns up to k successor files of f in decreasing correlation
// degree — the prefetch candidates FPA issues for a demand access to f.
func (m *Model) Predict(f trace.FileID, k int) []trace.FileID {
	m.mu.RLock()
	defer m.mu.RUnlock()
	list := m.lists[f]
	if k > len(list) {
		k = len(list)
	}
	if k <= 0 {
		return nil
	}
	out := make([]trace.FileID, k)
	for i := 0; i < k; i++ {
		out[i] = list[i].File
	}
	return out
}

// Degree returns R(x,y) as currently recorded in x's Correlator List, or 0
// when the pair was filtered out.
func (m *Model) Degree(x, y trace.FileID) float64 {
	m.mu.RLock()
	defer m.mu.RUnlock()
	for _, c := range m.lists[x] {
		if c.File == y {
			return c.Degree
		}
	}
	return 0
}

// Fed reports how many records have been processed.
func (m *Model) Fed() uint64 {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.fed
}

// Stats summarises model state for the space-overhead experiment.
//
// TapDepth and TapDropped are live tap-mailbox observability (sharded
// ensembles only; always zero on a bare Model, which has no taps). They are
// Go-side additions: the fixed 56-byte wire encoding of Stats (appendStats
// in internal/rpc) intentionally carries only the original seven fields so
// v2 MsgStats bodies stay byte-compatible — remote consumers get the tap
// numbers from the MsgObs frame instead.
type Stats struct {
	Fed          uint64
	TrackedFiles int // files with a stored semantic vector
	Lists        int // files with a non-empty Correlator List
	Correlators  int // total list entries
	GraphNodes   int
	GraphEdges   int
	MemoryBytes  int64  // estimated footprint of correlation state
	TapDepth     int    // events queued on tap mailboxes right now
	TapDropped   uint64 // tap events dropped to lagging consumers
}

// Stats returns a snapshot of the model's footprint.
func (m *Model) Stats() Stats {
	m.mu.RLock()
	defer m.mu.RUnlock()
	s := Stats{
		Fed:          m.fed,
		TrackedFiles: len(m.vectors),
		Lists:        len(m.lists),
		GraphNodes:   m.g.Nodes(),
		GraphEdges:   m.g.Edges(),
	}
	for _, l := range m.lists {
		s.Correlators += len(l)
	}
	// Correlator list entries: File + Degree + Sim + Freq.
	const corrBytes = 32
	const listOverhead = 48
	const vecOverhead = 48
	var vecBytes int64
	for _, v := range m.vectors {
		vecBytes += vecOverhead + int64(len(v.Path))
		for _, sc := range v.Scalars {
			vecBytes += int64(len(sc)) + 16
		}
	}
	s.MemoryBytes = m.g.MemoryBytes() +
		int64(s.Correlators)*corrBytes +
		int64(s.Lists)*listOverhead +
		vecBytes
	return s
}

// Vector returns the last semantic vector extracted for a file and whether
// the file has been seen.
func (m *Model) Vector(f trace.FileID) (vsm.Vector, bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	v, ok := m.vectors[f]
	return v, ok
}

// ResetWindow forgets the current lookahead window (stream boundary) while
// keeping all mined knowledge.
func (m *Model) ResetWindow() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.window = m.window[:0]
	m.g.ResetWindow()
}

// WindowTail returns a copy of the current lookahead window, oldest first.
func (m *Model) WindowTail() []trace.FileID {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return append([]trace.FileID(nil), m.window...)
}

// PrimeWindow replaces the lookahead window (model and graph, which track
// the same content) without feeding — the restore half of WindowTail. A
// model bootstrapped from a checkpoint plus a primed window mines every
// subsequent record exactly as the checkpointed model would have.
func (m *Model) PrimeWindow(w []trace.FileID) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(w) > m.winSize {
		w = w[len(w)-m.winSize:]
	}
	m.window = append(m.window[:0], w...)
	m.g.SetWindow(w)
}
