// Sharded ingestion: an N-way, FileID-striped ensemble of Model that lets
// the four-stage pipeline use every core during heavy-traffic mining.
//
// Model.Feed serializes all ingestion behind one mutex, so a multi-worker
// MDS replaying a peta-scale request stream mines on a single core. The
// sharded miner splits the work by the only key all mined state is indexed
// under — the predecessor FileID: file x's Correlator List, its graph node
// (N_x and every N_xy), and its semantic vector all live on shard(x), and
// nowhere else. A single dispatcher replays the lookahead window in global
// stream order (cheap: window bookkeeping plus Stage-1 extraction) and
// fans the expensive Stage-3/4 work — semantic-similarity evaluation and
// Correlator-List resorting — out to the owning shards as ordered events.
//
// Because every event stream a shard consumes is FIFO in global stream
// order and shard state is disjoint, an N-shard batch ingest produces
// exactly the state a single Model reaches feeding the same records in
// order — not merely "within tolerance". The only divergence window is
// mid-batch reads, which may observe one shard ahead of another.
package core

import (
	"sync"
	"sync/atomic"

	"farmer/internal/graph"
	"farmer/internal/trace"
	"farmer/internal/vsm"
)

// shardEvent is one unit of work routed to the shard owning its state.
// access events install the freshly extracted semantic vector of succ on
// shard(succ); edge events add LDA credit to pred->succ and re-evaluate
// R(pred, succ) on shard(pred), carrying succ's vector because the owning
// shard does not store it.
type shardEvent struct {
	pred   trace.FileID
	succ   trace.FileID
	credit float64
	vec    vsm.Vector
	seq    uint64 // global ingest sequence; set on access events for taps
	access bool
}

// applyEvents replays ordered events against one shard under its lock.
func (m *Model) applyEvents(evs []shardEvent) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for i := range evs {
		ev := &evs[i]
		if ev.access {
			m.vectors[ev.succ] = ev.vec
			continue
		}
		if ev.credit > 0 {
			m.g.Add(ev.pred, ev.succ, ev.credit)
		}
		m.evaluateVec(ev.pred, ev.succ, ev.vec, true)
	}
}

// ShardedModel is a FileID-striped ensemble of Models with concurrent batch
// ingestion. Feed and FeedBatch may be called from multiple goroutines;
// read methods are safe concurrently with ingestion (mid-batch they observe
// a consistent-per-shard but possibly staggered snapshot).
//
// With Config.Shards <= 1 the ensemble is a single Model fed through its
// ordinary single-lock path, so results — including intermediate states —
// are bit-identical to Model.
type ShardedModel struct {
	cfg       Config
	gcfg      graph.Config // normalized; drives dispatcher windowing
	shards    []*Model
	extractor *vsm.Extractor

	dmu    sync.Mutex // serializes dispatch (window + emission order)
	window []trace.FileID
	one    [1]shardEvent // scratch for the streaming Feed path
	fed    atomic.Uint64

	// Event taps (see tap.go). tapCount mirrors len(taps) so the hot path
	// skips the lock when nobody listens.
	tmu      sync.RWMutex
	taps     []*EventTap
	tapCount atomic.Int32
}

// NewSharded creates a sharded miner with cfg.Shards partitions (0 and 1
// both mean unsharded). Like New it panics on invalid configuration.
func NewSharded(cfg Config) *ShardedModel {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	n := cfg.Shards
	if n < 1 {
		n = 1
	}
	shardCfg := cfg
	shardCfg.Shards = 0
	s := &ShardedModel{cfg: cfg, gcfg: cfg.Graph.Normalized()}
	for i := 0; i < n; i++ {
		s.shards = append(s.shards, New(shardCfg))
	}
	ex := vsm.NewExtractor(cfg.Mask)
	ex.Alg = cfg.PathAlg
	s.extractor = ex
	return s
}

// shardOf stripes a FileID across n partitions (Fibonacci hashing, so
// contiguously allocated correlation groups spread evenly).
func shardOf(f trace.FileID, n int) int {
	if n <= 1 {
		return 0
	}
	return int((uint64(f) * 0x9E3779B97F4A7C15 >> 32) % uint64(n))
}

// Config returns the ensemble's configuration (including Shards).
func (s *ShardedModel) Config() Config { return s.cfg }

// Shards reports the partition count.
func (s *ShardedModel) Shards() int { return len(s.shards) }

func (s *ShardedModel) shardFor(f trace.FileID) *Model {
	return s.shards[shardOf(f, len(s.shards))]
}

// dispatchLocked runs Stage 1 for one record and emits the per-shard events
// that complete Stages 2-4, mirroring Model.Feed: LDA credit for every
// window predecessor (most recent first, as graph.Feed assigns it) fused
// with the re-evaluation of R(pred, file). Callers hold s.dmu.
func (s *ShardedModel) dispatchLocked(r *trace.Record, emit func(shard int, ev shardEvent)) uint64 {
	n := len(s.shards)
	seq := s.fed.Add(1)
	v := s.extractor.Extract(r)
	emit(shardOf(r.File, n), shardEvent{succ: r.File, vec: v, seq: seq, access: true})
	for i := len(s.window) - 1; i >= 0; i-- {
		pred := s.window[i]
		if pred == r.File {
			continue
		}
		dist := len(s.window) - i // 1 = immediate predecessor
		credit := 1.0 - float64(dist-1)*s.gcfg.Decrement
		if credit < s.gcfg.MinAssign {
			credit = s.gcfg.MinAssign
		}
		emit(shardOf(pred, n), shardEvent{pred: pred, succ: r.File, credit: credit, vec: v})
	}
	s.window = append(s.window, r.File)
	if len(s.window) > s.gcfg.Window {
		copy(s.window, s.window[1:])
		s.window = s.window[:s.gcfg.Window]
	}
	return seq
}

// Feed ingests one record. Unlike Model.Feed it is safe to call from many
// goroutines: dispatch is serialized, state updates take only the owning
// shard's lock.
func (s *ShardedModel) Feed(r *trace.Record) {
	if len(s.shards) == 1 {
		if s.tapCount.Load() == 0 {
			s.shards[0].Feed(r)
			s.fed.Add(1)
			return
		}
		// dmu keeps seq assignment and tap publication atomic so the tap's
		// single-publisher FIFO invariant holds for concurrent callers; the
		// feeds themselves would serialize on the one shard's lock anyway.
		// (A feed racing tap registration may bypass publication — Tap only
		// promises events for records ingested after it returns.)
		s.dmu.Lock()
		defer s.dmu.Unlock()
		s.shards[0].Feed(r)
		seq := s.fed.Add(1)
		s.publish(0, TapEvent{Seq: seq, File: r.File, Shard: 0})
		return
	}
	s.dmu.Lock()
	defer s.dmu.Unlock()
	seq := s.dispatchLocked(r, func(shard int, ev shardEvent) {
		s.one[0] = ev
		s.shards[shard].applyEvents(s.one[:])
	})
	home := shardOf(r.File, len(s.shards))
	s.publish(home, TapEvent{Seq: seq, File: r.File, Shard: home})
}

// eventChunk sizes the batches of events shipped to a shard worker: large
// enough to amortize channel and lock traffic, small enough to keep all
// shards busy on modest batches.
const eventChunk = 512

// FeedBatch ingests a batch of records with all shards mining in parallel.
// The records are treated as one contiguous stream segment continuing the
// model's current lookahead window; the final state is identical to feeding
// the same records through a single Model in order. The call returns after
// every shard has drained its events.
func (s *ShardedModel) FeedBatch(records []trace.Record) {
	if len(records) == 0 {
		return
	}
	if len(s.shards) == 1 {
		if s.tapCount.Load() == 0 {
			for i := range records {
				s.shards[0].Feed(&records[i])
			}
			s.fed.Add(uint64(len(records)))
			return
		}
		s.dmu.Lock()
		defer s.dmu.Unlock()
		for i := range records {
			s.shards[0].Feed(&records[i])
			seq := s.fed.Add(1)
			s.publish(0, TapEvent{Seq: seq, File: records[i].File, Shard: 0})
		}
		return
	}
	s.dmu.Lock()
	defer s.dmu.Unlock()

	n := len(s.shards)
	chans := make([]chan []shardEvent, n)
	var wg sync.WaitGroup
	for i := range chans {
		chans[i] = make(chan []shardEvent, 8)
		wg.Add(1)
		go func(shard int, m *Model, ch <-chan []shardEvent) {
			defer wg.Done()
			for evs := range ch {
				m.applyEvents(evs)
				if s.tapCount.Load() == 0 {
					continue
				}
				// Post-ingest taps: one event per record this shard owns,
				// published by the lone worker so delivery stays FIFO.
				for i := range evs {
					if evs[i].access {
						s.publish(shard, TapEvent{Seq: evs[i].seq, File: evs[i].succ, Shard: shard})
					}
				}
			}
		}(i, s.shards[i], chans[i])
	}

	bufs := make([][]shardEvent, n)
	emit := func(shard int, ev shardEvent) {
		bufs[shard] = append(bufs[shard], ev)
		if len(bufs[shard]) >= eventChunk {
			chans[shard] <- bufs[shard]
			bufs[shard] = nil
		}
	}
	for i := range records {
		s.dispatchLocked(&records[i], emit)
	}
	for i := range chans {
		if len(bufs[i]) > 0 {
			chans[i] <- bufs[i]
		}
		close(chans[i])
	}
	wg.Wait()
}

// FeedTraceParallel is the batch-ingestion entry point for whole traces —
// the concurrent counterpart of Model.FeedTrace.
func (s *ShardedModel) FeedTraceParallel(t *trace.Trace) { s.FeedBatch(t.Records) }

// CorrelatorList returns a copy of the file's sorted Correlator List from
// the owning shard.
func (s *ShardedModel) CorrelatorList(f trace.FileID) []Correlator {
	return s.shardFor(f).CorrelatorList(f)
}

// Predict returns up to k successors of f in decreasing correlation degree,
// read from the single shard that owns f's list.
func (s *ShardedModel) Predict(f trace.FileID, k int) []trace.FileID {
	return s.shardFor(f).Predict(f, k)
}

// Degree returns R(x,y) as recorded on x's owning shard.
func (s *ShardedModel) Degree(x, y trace.FileID) float64 {
	return s.shardFor(x).Degree(x, y)
}

// Vector returns the last semantic vector extracted for a file.
func (s *ShardedModel) Vector(f trace.FileID) (vsm.Vector, bool) {
	return s.shardFor(f).Vector(f)
}

// Fed reports how many records the ensemble has ingested.
func (s *ShardedModel) Fed() uint64 { return s.fed.Load() }

// ResetWindow forgets the lookahead window (stream boundary) while keeping
// all mined knowledge.
func (s *ShardedModel) ResetWindow() {
	if len(s.shards) == 1 {
		s.shards[0].ResetWindow()
		return
	}
	s.dmu.Lock()
	defer s.dmu.Unlock()
	s.window = s.window[:0]
}

// Stats merges the per-shard footprints. Shard state is disjoint, so the
// sums equal a single Model's footprint for the same stream.
func (s *ShardedModel) Stats() Stats {
	var out Stats
	for _, m := range s.shards {
		st := m.Stats()
		out.TrackedFiles += st.TrackedFiles
		out.Lists += st.Lists
		out.Correlators += st.Correlators
		out.GraphNodes += st.GraphNodes
		out.GraphEdges += st.GraphEdges
		out.MemoryBytes += st.MemoryBytes
	}
	out.Fed = s.fed.Load()
	return out
}

// Shard exposes one partition's Model (tests, persistence experiments).
func (s *ShardedModel) Shard(i int) *Model { return s.shards[i] }
