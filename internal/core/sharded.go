// Sharded ingestion: an N-way, FileID-striped ensemble of Model that lets
// the four-stage pipeline use every core during heavy-traffic mining.
//
// Model.Feed serializes all ingestion behind one mutex, so a multi-worker
// MDS replaying a peta-scale request stream mines on a single core. The
// sharded miner splits the work by the only key all mined state is indexed
// under — the predecessor FileID: file x's Correlator List, its graph node
// (N_x and every N_xy), and its semantic vector all live on shard(x), and
// nowhere else. A partition.Dispatcher replays the lookahead window in
// global stream order (cheap: window bookkeeping plus Stage-1 extraction)
// and fans the expensive Stage-3/4 work — semantic-similarity evaluation
// and Correlator-List resorting — out to the owning shards as ordered
// events.
//
// Because every event stream a shard consumes is FIFO in global stream
// order and shard state is disjoint, an N-shard batch ingest produces
// exactly the state a single Model reaches feeding the same records in
// order — not merely "within tolerance". The only divergence window is
// mid-batch reads, which may observe one shard ahead of another.
//
// The same dispatcher serves deployments beyond one process: see
// internal/partition for the generic layer and internal/hust for the
// multi-MDS cluster that mines the global model across server boundaries.
package core

import (
	"sync"
	"sync/atomic"
	"unsafe"

	"farmer/internal/graph"
	"farmer/internal/kvstore"
	"farmer/internal/partition"
	"farmer/internal/trace"
	"farmer/internal/vsm"
)

// paddedModel rounds a Model up to a whole number of cache lines so the
// ensemble can allocate its shards as one contiguous block without adjacent
// shards sharing a line: shard i's mutex and hot counters would otherwise sit
// on the same 64 bytes as shard i+1's, and every uncontended lock acquisition
// would ping the line between the cores mining neighboring shards.
type paddedModel struct {
	Model
	_ [(64 - unsafe.Sizeof(Model{})%64) % 64]byte
}

// ApplyEvents replays ordered partition events against this model under its
// lock — the Owner side of the partition layer. Access events install the
// freshly extracted semantic vector; edge events add LDA credit and
// re-evaluate R(pred, succ) with the successor's vector shipped inline.
func (m *Model) ApplyEvents(evs []partition.Event) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for i := range evs {
		ev := &evs[i]
		if ev.Access {
			m.vectors[ev.Succ] = ev.Vec
			m.markDirty(ev.Succ, dirtyVec)
			continue
		}
		if ev.Credit > 0 {
			m.g.Add(ev.Pred, ev.Succ, ev.Credit)
		}
		m.markDirty(ev.Pred, dirtyGraph)
		m.evaluateVec(ev.Pred, ev.Succ, ev.Vec, true)
	}
}

// ShardedModel is a FileID-striped ensemble of Models with concurrent batch
// ingestion. Feed and FeedBatch may be called from multiple goroutines;
// read methods are safe concurrently with ingestion (mid-batch they observe
// a consistent-per-shard but possibly staggered snapshot).
//
// With Config.Shards <= 1 the ensemble is a single Model fed through its
// ordinary single-lock path, so results — including intermediate states —
// are bit-identical to Model.
type ShardedModel struct {
	cfg    Config
	part   partition.Partitioner
	shards []*Model

	dmu  sync.Mutex            // serializes dispatch (window + emission order)
	disp *partition.Dispatcher // owns the window and the global sequence
	one  [1]partition.Event    // scratch for the streaming Feed path

	// Event taps (see tap.go). tapCount mirrors len(taps) so the hot path
	// skips the lock when nobody listens.
	tmu      sync.RWMutex
	taps     []*EventTap
	tapCount atomic.Int32

	// Checkpoint binding (guarded by dmu): the store the last full save or
	// load synchronized the ensemble with, and the epoch that pass wrote or
	// read. SaveCheckpoint writes a delta only into this same store at this
	// same epoch; anything else falls back to a full rewrite. See persist.go.
	ckptStore *kvstore.Store
	saveEpoch uint64
}

// NewSharded creates a sharded miner with cfg.Shards partitions (0 and 1
// both mean unsharded). Like New it panics on invalid configuration.
func NewSharded(cfg Config) *ShardedModel {
	n := cfg.Shards
	if n < 1 {
		n = 1
	}
	return NewShardedPartitioned(cfg, n, partition.Stripe)
}

// NewShardedPartitioned creates a sharded miner whose stripes are the
// partitions of a deployment-level Partitioner — the composition a
// multi-server cluster uses so every server's shard holds exactly the files
// the cluster routes to it. owners is the partition count; a nil part
// defaults to partition.Stripe. cfg.Shards is ignored (the explicit owner
// count wins). Like New it panics on invalid configuration.
func NewShardedPartitioned(cfg Config, owners int, part partition.Partitioner) *ShardedModel {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	if part == nil {
		part = partition.Stripe
	}
	shardCfg := cfg
	shardCfg.Shards = 0
	// Config() reports the real partition count, whatever cfg.Shards said
	// (NewSharded normalizes 0 to 1; here the explicit owner count wins).
	cfg.Shards = owners
	s := &ShardedModel{cfg: cfg, part: part}
	// One contiguous, line-aligned slot per shard (see paddedModel): the
	// slice keeps the Models adjacent for locality while the padding keeps
	// their locks off each other's cache lines.
	slots := make([]paddedModel, owners)
	s.shards = make([]*Model, owners)
	for i := 0; i < owners; i++ {
		slots[i].init(shardCfg)
		s.shards[i] = &slots[i].Model
	}
	s.disp = partition.NewDispatcher(partition.Config{
		Owners:      owners,
		Partitioner: part,
		Mask:        cfg.Mask,
		PathAlg:     cfg.PathAlg,
		Graph:       cfg.Graph,
	})
	return s
}

// shardOf stripes a FileID across n partitions (partition.Stripe — Fibonacci
// hashing, so contiguously allocated correlation groups spread evenly).
func shardOf(f trace.FileID, n int) int { return partition.Stripe(f, n) }

// Config returns the ensemble's configuration (including Shards).
func (s *ShardedModel) Config() Config { return s.cfg }

// Shards reports the partition count.
func (s *ShardedModel) Shards() int { return len(s.shards) }

// Partitioner reports the stripe function routing files to shards.
func (s *ShardedModel) Partitioner() partition.Partitioner { return s.part }

func (s *ShardedModel) ownerOf(f trace.FileID) int {
	return s.part(f, len(s.shards))
}

func (s *ShardedModel) shardFor(f trace.FileID) *Model {
	return s.shards[s.ownerOf(f)]
}

// Feed ingests one record. Unlike Model.Feed it is safe to call from many
// goroutines: dispatch is serialized, state updates take only the owning
// shard's lock.
func (s *ShardedModel) Feed(r *trace.Record) {
	if len(s.shards) == 1 {
		// dmu keeps seq assignment (and tap publication, when anyone
		// listens) atomic with the feed, so concurrent callers keep the
		// tap's single-publisher FIFO invariant and a checkpoint taken
		// under dmu sees state and counter at an exact record boundary.
		// (A feed racing tap registration may bypass publication — Tap
		// only promises events for records ingested after it returns.)
		s.dmu.Lock()
		defer s.dmu.Unlock()
		s.shards[0].Feed(r)
		seq := s.disp.Advance(1)
		if s.tapCount.Load() != 0 {
			s.publish(0, TapEvent{Seq: seq, File: r.File, Shard: 0})
		}
		return
	}
	s.dmu.Lock()
	defer s.dmu.Unlock()
	seq := s.disp.Dispatch(r, func(shard int, ev partition.Event) {
		s.one[0] = ev
		s.shards[shard].ApplyEvents(s.one[:])
	})
	home := s.ownerOf(r.File)
	s.publish(home, TapEvent{Seq: seq, File: r.File, Shard: home})
}

// DispatchExternal sequences one record through the ensemble's dispatcher
// but hands the emitted events to the caller instead of applying them — the
// hook a multi-server deployment uses to route events through its own
// transport (inter-MDS mailboxes) while this ensemble remains the single
// source of truth for the window, the global sequence and persistence. The
// caller owns delivery: each shard's events must reach
// Shard(owner).ApplyEvents in emission order for the ensemble to stay
// bit-identical to a locally fed one. Taps do not observe externally
// dispatched records.
func (s *ShardedModel) DispatchExternal(r *trace.Record, emit func(owner int, ev partition.Event)) uint64 {
	s.dmu.Lock()
	defer s.dmu.Unlock()
	return s.disp.Dispatch(r, emit)
}

// ApplyExternal applies events produced by another process's dispatcher
// (its DispatchExternal hook, shipped over a transport) to this ensemble —
// the receiving half of a cross-process deployment. Each event is routed to
// the shard owning the state it touches: access events by Succ, edge events
// by Pred, so a server may stripe internally however it likes while the
// remote dispatcher sees it as one owner. Relative order is preserved per
// shard within and across calls from one goroutine; callers must deliver
// batches in emission order (one rpc connection's FIFO suffices) for the
// mined state to stay bit-identical to a locally fed ensemble. The local
// dispatcher's window and sequence are not consulted or advanced — the
// remote dispatcher owns both.
func (s *ShardedModel) ApplyExternal(evs []partition.Event) {
	if len(s.shards) == 1 {
		s.shards[0].ApplyEvents(evs)
		return
	}
	// Group per shard, preserving each shard's relative order.
	for lo := 0; lo < len(evs); {
		key := evs[lo].Pred
		if evs[lo].Access {
			key = evs[lo].Succ
		}
		owner := s.ownerOf(key)
		hi := lo + 1
		for hi < len(evs) {
			k := evs[hi].Pred
			if evs[hi].Access {
				k = evs[hi].Succ
			}
			if s.ownerOf(k) != owner {
				break
			}
			hi++
		}
		s.shards[owner].ApplyEvents(evs[lo:hi])
		lo = hi
	}
}

// eventChunk sizes the batches of events shipped to a shard worker: large
// enough to amortize channel and lock traffic, small enough to keep all
// shards busy on modest batches.
const eventChunk = 512

// FeedBatch ingests a batch of records with all shards mining in parallel.
// The records are treated as one contiguous stream segment continuing the
// model's current lookahead window; the final state is identical to feeding
// the same records through a single Model in order. The call returns after
// every shard has drained its events.
func (s *ShardedModel) FeedBatch(records []trace.Record) {
	if len(records) == 0 {
		return
	}
	if len(s.shards) == 1 {
		s.dmu.Lock()
		defer s.dmu.Unlock()
		if s.tapCount.Load() == 0 {
			for i := range records {
				s.shards[0].Feed(&records[i])
			}
			s.disp.Advance(uint64(len(records)))
			return
		}
		for i := range records {
			s.shards[0].Feed(&records[i])
			seq := s.disp.Advance(1)
			s.publish(0, TapEvent{Seq: seq, File: records[i].File, Shard: 0})
		}
		return
	}
	s.dmu.Lock()
	defer s.dmu.Unlock()

	n := len(s.shards)
	chans := make([]chan []partition.Event, n)
	var wg sync.WaitGroup
	for i := range chans {
		chans[i] = make(chan []partition.Event, 8)
		wg.Add(1)
		go func(shard int, m *Model, ch <-chan []partition.Event) {
			defer wg.Done()
			for evs := range ch {
				m.ApplyEvents(evs)
				if s.tapCount.Load() == 0 {
					continue
				}
				// Post-ingest taps: one event per record this shard owns,
				// published by the lone worker so delivery stays FIFO.
				for i := range evs {
					if evs[i].Access {
						s.publish(shard, TapEvent{Seq: evs[i].Seq, File: evs[i].Succ, Shard: shard})
					}
				}
			}
		}(i, s.shards[i], chans[i])
	}

	bufs := make([][]partition.Event, n)
	emit := func(shard int, ev partition.Event) {
		bufs[shard] = append(bufs[shard], ev)
		if len(bufs[shard]) >= eventChunk {
			chans[shard] <- bufs[shard]
			bufs[shard] = nil
		}
	}
	for i := range records {
		s.disp.Dispatch(&records[i], emit)
	}
	for i := range chans {
		if len(bufs[i]) > 0 {
			chans[i] <- bufs[i]
		}
		close(chans[i])
	}
	wg.Wait()
}

// FeedTraceParallel is the batch-ingestion entry point for whole traces —
// the concurrent counterpart of Model.FeedTrace.
func (s *ShardedModel) FeedTraceParallel(t *trace.Trace) { s.FeedBatch(t.Records) }

// CorrelatorList returns a copy of the file's sorted Correlator List from
// the owning shard.
func (s *ShardedModel) CorrelatorList(f trace.FileID) []Correlator {
	return s.shardFor(f).CorrelatorList(f)
}

// Predict returns up to k successors of f in decreasing correlation degree,
// read from the single shard that owns f's list.
func (s *ShardedModel) Predict(f trace.FileID, k int) []trace.FileID {
	return s.shardFor(f).Predict(f, k)
}

// Degree returns R(x,y) as recorded on x's owning shard.
func (s *ShardedModel) Degree(x, y trace.FileID) float64 {
	return s.shardFor(x).Degree(x, y)
}

// Vector returns the last semantic vector extracted for a file.
func (s *ShardedModel) Vector(f trace.FileID) (vsm.Vector, bool) {
	return s.shardFor(f).Vector(f)
}

// Fed reports how many records the ensemble has ingested.
func (s *ShardedModel) Fed() uint64 { return s.disp.Dispatched() }

// Params reports the ensemble's mining parameters — the pair a persisted
// checkpoint must match to be loadable into it.
func (s *ShardedModel) Params() (weight, maxStrength float64) {
	return s.cfg.Weight, s.cfg.MaxStrength
}

// ResetWindow forgets the lookahead window (stream boundary) while keeping
// all mined knowledge.
func (s *ShardedModel) ResetWindow() {
	if len(s.shards) == 1 {
		s.shards[0].ResetWindow()
		return
	}
	s.dmu.Lock()
	defer s.dmu.Unlock()
	s.disp.ResetWindow()
}

// Stats merges the per-shard footprints. Shard state is disjoint, so the
// sums equal a single Model's footprint for the same stream.
func (s *ShardedModel) Stats() Stats {
	var out Stats
	for _, m := range s.shards {
		st := m.Stats()
		out.TrackedFiles += st.TrackedFiles
		out.Lists += st.Lists
		out.Correlators += st.Correlators
		out.GraphNodes += st.GraphNodes
		out.GraphEdges += st.GraphEdges
		out.MemoryBytes += st.MemoryBytes
	}
	out.Fed = s.disp.Dispatched()
	for _, sh := range s.ShardObs() {
		out.TapDepth += sh.MailboxDepth
		out.TapDropped += sh.Dropped
	}
	return out
}

// ShardStat is one shard's live observability sample: how deep its tap
// mailboxes currently are and how many tap events it has dropped, summed
// over every registered tap.
type ShardStat struct {
	MailboxDepth int    // events queued on this shard's tap channels right now
	Dropped      uint64 // tap events discarded because consumers lagged
}

// ShardObs samples every shard's tap mailbox depth and drop count — the
// public view of the padded per-shard counters. With no taps registered
// all samples are zero. Values are individually atomic snapshots; the
// slice as a whole is not a consistent cut (that is fine for monitoring).
func (s *ShardedModel) ShardObs() []ShardStat {
	out := make([]ShardStat, len(s.shards))
	if s.tapCount.Load() == 0 {
		return out
	}
	s.tmu.RLock()
	for _, t := range s.taps {
		for i := range out {
			out[i].MailboxDepth += len(t.chans[i])
			out[i].Dropped += t.dropped[i].Load()
		}
	}
	s.tmu.RUnlock()
	return out
}

// SaveEpoch reports the checkpoint epoch the ensemble is bound to — the
// counter the m/epoch protocol bumps on every completed save (0 = never
// checkpointed or unbound).
func (s *ShardedModel) SaveEpoch() uint64 {
	s.dmu.Lock()
	defer s.dmu.Unlock()
	return s.saveEpoch
}

// Shard exposes one partition's Model (tests, persistence experiments).
func (s *ShardedModel) Shard(i int) *Model { return s.shards[i] }

// Reset returns the ensemble to its freshly-constructed state — mined
// knowledge, lookahead window, sequence counter, and checkpoint binding all
// cleared — while preserving registered list hooks and event taps. It exists
// for the one consumer that must install state over a non-fresh miner: a
// replication follower whose delta catch-up was refused and who now needs
// the primary's full cut (LoadMerged requires a fresh ensemble).
func (s *ShardedModel) Reset() {
	s.dmu.Lock()
	defer s.dmu.Unlock()
	for _, m := range s.shards {
		m.reset()
	}
	s.disp = partition.NewDispatcher(partition.Config{
		Owners:      len(s.shards),
		Partitioner: s.part,
		Mask:        s.cfg.Mask,
		PathAlg:     s.cfg.PathAlg,
		Graph:       s.cfg.Graph,
	})
	s.ckptStore = nil
	s.saveEpoch = 0
}

// reset clears one shard back to its post-init state, keeping the list hook
// registration. Every dropped Correlator List is notified so a subscribed
// read cache invalidates its snapshots.
func (m *Model) reset() {
	m.mu.Lock()
	defer m.mu.Unlock()
	for f := range m.lists {
		delete(m.lists, f)
		m.notifyListChange(f)
	}
	m.vectors = make(map[trace.FileID]vsm.Vector)
	m.g = graph.New(m.cfg.Graph)
	m.window = m.window[:0]
	m.fed = 0
	m.dirtyOn = false
	m.dirty = nil
}
