package sim

import "time"

// Priority levels for Server requests. Lower numeric value is served first.
// The HUSt metadata server uses two queues: demand requests preempt queued
// prefetch requests (but do not interrupt a request already in service).
const (
	PriorityDemand   = 0
	PriorityPrefetch = 1
	numPriorities    = 2
)

// Request is one unit of work submitted to a Server.
type Request struct {
	Service time.Duration // time the server is busy with this request
	// ServiceFn, when non-nil, is consulted at service entry and overrides
	// Service — for requests whose cost depends on state at dispatch time,
	// e.g. a batched prefetch whose store I/O is paid by whichever batch
	// member actually reaches service first (members before it may have
	// been dropped from a bounded queue).
	ServiceFn func() time.Duration
	Done      func(wait, total time.Duration)

	arrive time.Duration
}

// Server models a single service station with per-priority FIFO queues and a
// fixed number of workers. It is the queueing model behind the MDS.
type Server struct {
	eng     *Engine
	workers int
	busy    int
	queues  [numPriorities][]*Request
	limits  [numPriorities]int // 0 = unbounded; else drop-oldest beyond

	// Stats.
	served    [numPriorities]uint64 // entered service (dispatched)
	completed [numPriorities]uint64 // finished service
	dropped   [numPriorities]uint64 // evicted from a bounded queue
	waitSum   [numPriorities]time.Duration
	busySum   time.Duration
	maxDepth  int
}

// NewServer creates a server with the given worker count attached to eng.
func NewServer(eng *Engine, workers int) *Server {
	if workers < 1 {
		workers = 1
	}
	return &Server{eng: eng, workers: workers}
}

// Submit enqueues a request at the given priority. Done (if non-nil) runs at
// completion with the queueing delay and the total sojourn time. When the
// priority's queue is bounded (LimitQueue) and full, the OLDEST queued
// request of that priority is dropped — its Done never runs — so a burst
// sheds the stalest work instead of growing the backlog without bound.
func (s *Server) Submit(pri int, r *Request) {
	if pri < 0 || pri >= numPriorities {
		pri = numPriorities - 1
	}
	r.arrive = s.eng.Now()
	s.queues[pri] = append(s.queues[pri], r)
	if lim := s.limits[pri]; lim > 0 {
		for len(s.queues[pri]) > lim {
			q := s.queues[pri]
			copy(q, q[1:])
			q[len(q)-1] = nil
			s.queues[pri] = q[:len(q)-1]
			s.dropped[pri]++
		}
	}
	if d := s.depth(); d > s.maxDepth {
		s.maxDepth = d
	}
	s.dispatch()
}

// LimitQueue bounds the given priority's queue to max pending requests
// (0 restores unbounded). Requests already in service are unaffected.
func (s *Server) LimitQueue(pri, max int) {
	if pri < 0 || pri >= numPriorities || max < 0 {
		return
	}
	s.limits[pri] = max
}

func (s *Server) depth() int {
	n := 0
	for i := range s.queues {
		n += len(s.queues[i])
	}
	return n
}

func (s *Server) dispatch() {
	for s.busy < s.workers {
		var r *Request
		var pri int
		for p := 0; p < numPriorities; p++ {
			if len(s.queues[p]) > 0 {
				r = s.queues[p][0]
				copy(s.queues[p], s.queues[p][1:])
				s.queues[p][len(s.queues[p])-1] = nil
				s.queues[p] = s.queues[p][:len(s.queues[p])-1]
				pri = p
				break
			}
		}
		if r == nil {
			return
		}
		s.busy++
		wait := s.eng.Now() - r.arrive
		s.waitSum[pri] += wait
		s.served[pri]++
		service := r.Service
		if r.ServiceFn != nil {
			service = r.ServiceFn()
		}
		s.busySum += service
		req, p := r, pri
		s.eng.After(service, func() {
			s.busy--
			s.completed[p]++
			if req.Done != nil {
				req.Done(wait, s.eng.Now()-req.arrive)
			}
			s.dispatch()
		})
	}
}

// Served reports how many requests of the given priority completed service
// entry (dispatched).
func (s *Server) Served(pri int) uint64 { return s.served[pri] }

// Completed reports how many requests of the given priority finished
// service. It trails Served while requests are in flight and matches it
// once the engine drains.
func (s *Server) Completed(pri int) uint64 { return s.completed[pri] }

// Dropped reports how many requests of the given priority were evicted from
// a bounded queue before entering service.
func (s *Server) Dropped(pri int) uint64 { return s.dropped[pri] }

// AvgWait reports the mean queueing delay of the given priority class.
func (s *Server) AvgWait(pri int) time.Duration {
	if s.served[pri] == 0 {
		return 0
	}
	return s.waitSum[pri] / time.Duration(s.served[pri])
}

// Utilization reports busy-time / elapsed-time (can exceed 1 with multiple
// workers).
func (s *Server) Utilization() float64 {
	if s.eng.Now() == 0 {
		return 0
	}
	return float64(s.busySum) / float64(s.eng.Now())
}

// MaxQueueDepth reports the deepest combined queue observed.
func (s *Server) MaxQueueDepth() int { return s.maxDepth }
