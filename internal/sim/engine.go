// Package sim provides a small deterministic discrete-event simulation
// engine used by the HUSt storage-system model. Time is virtual and measured
// in nanoseconds (time.Duration); events are executed in non-decreasing
// timestamp order with FIFO tie-breaking, so a simulation driven by a fixed
// seed is fully reproducible.
package sim

import (
	"container/heap"
	"fmt"
	"time"
)

// Event is a scheduled callback. The callback runs with the engine clock set
// to the event time.
type Event struct {
	at   time.Duration
	seq  uint64 // FIFO tie-break for equal timestamps
	fn   func()
	dead bool
}

// Cancel marks the event so that its callback will not run. Cancelling an
// already-executed event has no effect.
func (e *Event) Cancel() { e.dead = true }

// At reports the virtual time at which the event is scheduled.
func (e *Event) At() time.Duration { return e.at }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*Event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

// Engine is a discrete-event simulation driver. The zero value is ready to
// use. Engine is not safe for concurrent use; a simulation is a single
// logical thread over virtual time.
type Engine struct {
	now    time.Duration
	next   uint64
	events eventHeap
	steps  uint64
}

// New returns a fresh engine with the clock at zero.
func New() *Engine { return &Engine{} }

// Now reports the current virtual time.
func (e *Engine) Now() time.Duration { return e.now }

// Steps reports how many events have executed.
func (e *Engine) Steps() uint64 { return e.steps }

// Pending reports how many scheduled (possibly cancelled) events remain.
func (e *Engine) Pending() int { return len(e.events) }

// At schedules fn to run at absolute virtual time t. Scheduling in the past
// panics: it would silently reorder causality.
func (e *Engine) At(t time.Duration, fn func()) *Event {
	if t < e.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", t, e.now))
	}
	ev := &Event{at: t, seq: e.next, fn: fn}
	e.next++
	heap.Push(&e.events, ev)
	return ev
}

// After schedules fn to run d after the current virtual time.
func (e *Engine) After(d time.Duration, fn func()) *Event {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	return e.At(e.now+d, fn)
}

// Step executes the single next event. It reports false when no runnable
// events remain.
func (e *Engine) Step() bool {
	for len(e.events) > 0 {
		ev := heap.Pop(&e.events).(*Event)
		if ev.dead {
			continue
		}
		e.now = ev.at
		e.steps++
		ev.fn()
		return true
	}
	return false
}

// Run executes events until the queue drains.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil executes events with timestamps <= deadline, leaving later events
// queued, and advances the clock to deadline.
func (e *Engine) RunUntil(deadline time.Duration) {
	for len(e.events) > 0 {
		// Peek.
		ev := e.events[0]
		if ev.dead {
			heap.Pop(&e.events)
			continue
		}
		if ev.at > deadline {
			break
		}
		e.Step()
	}
	if e.now < deadline {
		e.now = deadline
	}
}
