package sim

import (
	"testing"
	"time"
)

func TestEngineOrdersByTime(t *testing.T) {
	e := New()
	var got []int
	e.At(30*time.Millisecond, func() { got = append(got, 3) })
	e.At(10*time.Millisecond, func() { got = append(got, 1) })
	e.At(20*time.Millisecond, func() { got = append(got, 2) })
	e.Run()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("wrong order: %v", got)
	}
	if e.Now() != 30*time.Millisecond {
		t.Fatalf("clock = %v, want 30ms", e.Now())
	}
}

func TestEngineFIFOTieBreak(t *testing.T) {
	e := New()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(time.Millisecond, func() { got = append(got, i) })
	}
	e.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("tie-break not FIFO: %v", got)
		}
	}
}

func TestEngineAfterNested(t *testing.T) {
	e := New()
	var fired time.Duration
	e.After(5*time.Millisecond, func() {
		e.After(7*time.Millisecond, func() { fired = e.Now() })
	})
	e.Run()
	if fired != 12*time.Millisecond {
		t.Fatalf("nested After fired at %v, want 12ms", fired)
	}
}

func TestEngineCancel(t *testing.T) {
	e := New()
	ran := false
	ev := e.After(time.Millisecond, func() { ran = true })
	ev.Cancel()
	e.Run()
	if ran {
		t.Fatal("cancelled event ran")
	}
}

func TestEngineSchedulePastPanics(t *testing.T) {
	e := New()
	e.After(10*time.Millisecond, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.At(time.Millisecond, func() {})
	})
	e.Run()
}

func TestEngineNegativeDelayPanics(t *testing.T) {
	e := New()
	defer func() {
		if recover() == nil {
			t.Error("negative delay did not panic")
		}
	}()
	e.After(-time.Second, func() {})
}

func TestRunUntil(t *testing.T) {
	e := New()
	var got []int
	e.At(10*time.Millisecond, func() { got = append(got, 1) })
	e.At(20*time.Millisecond, func() { got = append(got, 2) })
	e.At(30*time.Millisecond, func() { got = append(got, 3) })
	e.RunUntil(20 * time.Millisecond)
	if len(got) != 2 {
		t.Fatalf("ran %d events, want 2", len(got))
	}
	if e.Now() != 20*time.Millisecond {
		t.Fatalf("clock = %v, want 20ms", e.Now())
	}
	if e.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", e.Pending())
	}
	e.Run()
	if len(got) != 3 {
		t.Fatalf("remaining event lost")
	}
}

func TestRunUntilAdvancesIdleClock(t *testing.T) {
	e := New()
	e.RunUntil(time.Second)
	if e.Now() != time.Second {
		t.Fatalf("idle clock = %v, want 1s", e.Now())
	}
}

func TestStepCountsOnlyLive(t *testing.T) {
	e := New()
	ev := e.After(time.Millisecond, func() {})
	ev.Cancel()
	e.After(2*time.Millisecond, func() {})
	e.Run()
	if e.Steps() != 1 {
		t.Fatalf("steps = %d, want 1", e.Steps())
	}
}

func TestServerSingleWorkerFIFO(t *testing.T) {
	e := New()
	s := NewServer(e, 1)
	var done []time.Duration
	for i := 0; i < 3; i++ {
		s.Submit(PriorityDemand, &Request{
			Service: 10 * time.Millisecond,
			Done:    func(wait, total time.Duration) { done = append(done, e.Now()) },
		})
	}
	e.Run()
	want := []time.Duration{10 * time.Millisecond, 20 * time.Millisecond, 30 * time.Millisecond}
	for i := range want {
		if done[i] != want[i] {
			t.Fatalf("completion %d at %v, want %v", i, done[i], want[i])
		}
	}
	if s.AvgWait(PriorityDemand) != 10*time.Millisecond {
		t.Fatalf("avg wait = %v, want 10ms", s.AvgWait(PriorityDemand))
	}
}

func TestServerDemandPreemptsPrefetchQueue(t *testing.T) {
	e := New()
	s := NewServer(e, 1)
	var order []string
	submit := func(pri int, name string) {
		s.Submit(pri, &Request{
			Service: 5 * time.Millisecond,
			Done:    func(wait, total time.Duration) { order = append(order, name) },
		})
	}
	// One request in service, then queue prefetch before demand; demand must
	// still be served next.
	submit(PriorityDemand, "first")
	submit(PriorityPrefetch, "pf1")
	submit(PriorityPrefetch, "pf2")
	submit(PriorityDemand, "urgent")
	e.Run()
	if order[0] != "first" || order[1] != "urgent" {
		t.Fatalf("priority order wrong: %v", order)
	}
	if order[2] != "pf1" || order[3] != "pf2" {
		t.Fatalf("prefetch order wrong: %v", order)
	}
}

func TestServerMultipleWorkers(t *testing.T) {
	e := New()
	s := NewServer(e, 2)
	var last time.Duration
	for i := 0; i < 4; i++ {
		s.Submit(PriorityDemand, &Request{
			Service: 10 * time.Millisecond,
			Done:    func(wait, total time.Duration) { last = e.Now() },
		})
	}
	e.Run()
	if last != 20*time.Millisecond {
		t.Fatalf("4 jobs on 2 workers finished at %v, want 20ms", last)
	}
}

func TestServerUtilization(t *testing.T) {
	e := New()
	s := NewServer(e, 1)
	s.Submit(PriorityDemand, &Request{Service: 10 * time.Millisecond})
	e.Run()
	e.RunUntil(20 * time.Millisecond)
	if u := s.Utilization(); u < 0.49 || u > 0.51 {
		t.Fatalf("utilization = %v, want ~0.5", u)
	}
}

func TestServerStats(t *testing.T) {
	e := New()
	s := NewServer(e, 1)
	for i := 0; i < 5; i++ {
		s.Submit(PriorityPrefetch, &Request{Service: time.Millisecond})
	}
	e.Run()
	if s.Served(PriorityPrefetch) != 5 {
		t.Fatalf("served = %d, want 5", s.Served(PriorityPrefetch))
	}
	if s.MaxQueueDepth() < 4 {
		t.Fatalf("max depth = %d, want >= 4", s.MaxQueueDepth())
	}
}
