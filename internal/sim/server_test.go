package sim

import (
	"testing"
	"time"
)

// TestServerCompletionStats distinguishes dispatch (Served) from completion
// (Completed): mid-service the two differ by exactly the in-flight count,
// and they converge when the engine drains.
func TestServerCompletionStats(t *testing.T) {
	e := New()
	s := NewServer(e, 2)
	for i := 0; i < 4; i++ {
		s.Submit(PriorityDemand, &Request{Service: 10 * time.Millisecond})
	}
	s.Submit(PriorityPrefetch, &Request{Service: 10 * time.Millisecond})

	// At t=0 two demands are in service, none complete.
	if got := s.Served(PriorityDemand); got != 2 {
		t.Fatalf("served(demand) = %d at t=0, want 2", got)
	}
	if got := s.Completed(PriorityDemand); got != 0 {
		t.Fatalf("completed(demand) = %d at t=0, want 0", got)
	}

	e.RunUntil(10 * time.Millisecond)
	if got := s.Completed(PriorityDemand); got != 2 {
		t.Fatalf("completed(demand) = %d at t=10ms, want 2", got)
	}
	if got := s.Completed(PriorityPrefetch); got != 0 {
		t.Fatalf("completed(prefetch) = %d at t=10ms, want 0 (demand runs first)", got)
	}

	e.Run()
	if got := s.Completed(PriorityDemand); got != 4 {
		t.Fatalf("completed(demand) = %d, want 4", got)
	}
	if got := s.Completed(PriorityPrefetch); got != 1 {
		t.Fatalf("completed(prefetch) = %d, want 1", got)
	}
	if s.Served(PriorityDemand) != s.Completed(PriorityDemand) ||
		s.Served(PriorityPrefetch) != s.Completed(PriorityPrefetch) {
		t.Fatal("served and completed diverge after drain")
	}
}

// TestServerDemandPreemptsPrefetchCompletions replays a contended mix and
// asserts preemption through the completion counters: every demand request
// completes before any queued prefetch is allowed to finish.
func TestServerDemandPreemptsPrefetchCompletions(t *testing.T) {
	e := New()
	s := NewServer(e, 1)
	var firstPrefetchDone time.Duration = -1
	var lastDemandDone time.Duration
	// Occupy the worker, then interleave queued prefetches and demands.
	s.Submit(PriorityDemand, &Request{Service: time.Millisecond,
		Done: func(_, _ time.Duration) { lastDemandDone = e.Now() }})
	for i := 0; i < 3; i++ {
		s.Submit(PriorityPrefetch, &Request{Service: time.Millisecond,
			Done: func(_, _ time.Duration) {
				if firstPrefetchDone < 0 {
					firstPrefetchDone = e.Now()
				}
			}})
		s.Submit(PriorityDemand, &Request{Service: time.Millisecond,
			Done: func(_, _ time.Duration) { lastDemandDone = e.Now() }})
	}
	e.Run()
	if s.Completed(PriorityDemand) != 4 || s.Completed(PriorityPrefetch) != 3 {
		t.Fatalf("completions = %d demand / %d prefetch, want 4/3",
			s.Completed(PriorityDemand), s.Completed(PriorityPrefetch))
	}
	if firstPrefetchDone <= lastDemandDone {
		t.Fatalf("prefetch completed at %v before last demand at %v",
			firstPrefetchDone, lastDemandDone)
	}
}

// TestServerQueueLimitDropsOldest bounds the prefetch queue and checks that
// overflow evicts the oldest queued prefetch (whose Done never runs) while
// demand requests are untouched.
func TestServerQueueLimitDropsOldest(t *testing.T) {
	e := New()
	s := NewServer(e, 1)
	s.LimitQueue(PriorityPrefetch, 2)

	var served []int
	// Fill the worker so everything else queues.
	s.Submit(PriorityDemand, &Request{Service: 10 * time.Millisecond})
	for i := 0; i < 5; i++ {
		id := i
		s.Submit(PriorityPrefetch, &Request{
			Service: time.Millisecond,
			Done:    func(_, _ time.Duration) { served = append(served, id) },
		})
	}
	e.Run()

	if got := s.Dropped(PriorityPrefetch); got != 3 {
		t.Fatalf("dropped = %d, want 3", got)
	}
	if got := s.Dropped(PriorityDemand); got != 0 {
		t.Fatalf("demand dropped = %d, want 0", got)
	}
	// Drop-oldest keeps the two newest prefetches.
	if len(served) != 2 || served[0] != 3 || served[1] != 4 {
		t.Fatalf("served prefetches %v, want [3 4]", served)
	}
	if got := s.Completed(PriorityPrefetch); got != 2 {
		t.Fatalf("completed(prefetch) = %d, want 2", got)
	}
	// Conservation: submitted = completed + dropped once drained.
	if s.Completed(PriorityPrefetch)+s.Dropped(PriorityPrefetch) != 5 {
		t.Fatal("prefetch accounting does not balance")
	}
}

// TestServerQueueLimitUnboundedByDefault checks that without LimitQueue no
// request is ever dropped.
func TestServerQueueLimitUnboundedByDefault(t *testing.T) {
	e := New()
	s := NewServer(e, 1)
	for i := 0; i < 100; i++ {
		s.Submit(PriorityPrefetch, &Request{Service: time.Microsecond})
	}
	e.Run()
	if s.Dropped(PriorityPrefetch) != 0 {
		t.Fatalf("dropped = %d without a limit", s.Dropped(PriorityPrefetch))
	}
	if s.Completed(PriorityPrefetch) != 100 {
		t.Fatalf("completed = %d, want 100", s.Completed(PriorityPrefetch))
	}
}

// TestServerServiceFnPricedAtDispatch checks that ServiceFn requests are
// priced when they enter service, not when submitted.
func TestServerServiceFnPricedAtDispatch(t *testing.T) {
	e := New()
	s := NewServer(e, 1)
	price := time.Millisecond
	s.Submit(PriorityDemand, &Request{Service: 10 * time.Millisecond})
	s.Submit(PriorityDemand, &Request{
		Service:   time.Hour, // must be ignored
		ServiceFn: func() time.Duration { return price },
	})
	price = 2 * time.Millisecond // repriced while queued
	e.Run()
	if got, want := e.Now(), 12*time.Millisecond; got != want {
		t.Fatalf("drained at %v, want %v (ServiceFn read at dispatch)", got, want)
	}
}
