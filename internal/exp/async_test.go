package exp

import (
	"strings"
	"testing"
	"time"

	"farmer/internal/hust"
	"farmer/internal/trace"
	"farmer/internal/tracegen"
)

// traceFor regenerates one paper trace at the test scale (generators are
// deterministic, so this matches the sweep's own copy).
func traceFor(t *testing.T, name string) *trace.Trace {
	t.Helper()
	p, ok := tracegen.ByName(name, smallOpt().Records)
	if !ok {
		t.Fatalf("unknown trace %q", name)
	}
	return p.MustGenerate()
}

func TestSyncVsAsyncSweep(t *testing.T) {
	rows := SyncVsAsync(smallOpt())
	if len(rows) != 12 { // 4 traces × {baseline, sync, async}
		t.Fatalf("rows = %d, want 12", len(rows))
	}
	byTrace := map[string]map[string]AsyncRow{}
	for _, r := range rows {
		if byTrace[r.Trace] == nil {
			byTrace[r.Trace] = map[string]AsyncRow{}
		}
		byTrace[r.Trace][r.Pipeline] = r
	}
	for name, runs := range byTrace {
		sync, async, base := runs["sync"], runs["async"], runs["baseline"]
		if sync.Fingerprint == 0 || sync.Fingerprint != async.Fingerprint {
			t.Fatalf("%s: sync fp %x vs async fp %x", name, sync.Fingerprint, async.Fingerprint)
		}
		if async.AvgDemandWait > base.AvgDemandWait {
			t.Fatalf("%s: async demand wait %v exceeds baseline %v",
				name, async.AvgDemandWait, base.AvgDemandWait)
		}
		if async.AvgResponse >= sync.AvgResponse {
			t.Fatalf("%s: async response %v not better than mining-heavy sync %v",
				name, async.AvgResponse, sync.AvgResponse)
		}
	}
	// Cross-check one trace against the sequential single-lock reference.
	hp := byTrace["HP"]["sync"]
	if ref := fingerprintReference(traceFor(t, "HP"), 0); hp.Fingerprint != ref {
		t.Fatalf("HP sync fingerprint %x, sequential reference %x", hp.Fingerprint, ref)
	}
	out := AsyncLatency(rows).String()
	for _, col := range []string{"Pipeline", "DemandWait", "PfDropped", "async"} {
		if !strings.Contains(out, col) {
			t.Fatalf("rendered table missing %q:\n%s", col, out)
		}
	}
}

// TestOptionsPreserveAsyncKnobs pins the withDefaults layering promise: a
// partially built Replay keeps its async pipeline knobs when the rest is
// filled from DefaultReplayConfig.
func TestOptionsPreserveAsyncKnobs(t *testing.T) {
	opt := Options{Replay: hust.ReplayConfig{MDS: hust.MDSConfig{
		AsyncPrefetch: true,
		MineTime:      5 * time.Millisecond,
		PrefetchQueue: 1,
		MinerWorkers:  2,
	}}}
	got := opt.withDefaults().Replay.MDS
	if !got.AsyncPrefetch || got.MineTime != 5*time.Millisecond ||
		got.PrefetchQueue != 1 || got.MinerWorkers != 2 {
		t.Fatalf("async knobs lost through defaulting: %+v", got)
	}
	if got.CacheCapacity == 0 || got.Workers == 0 {
		t.Fatalf("defaults not applied: %+v", got)
	}
}
