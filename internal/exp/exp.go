// Package exp contains one driver per figure and table of the paper's
// evaluation (§2.2, §5.2, §5.3, §5.4). Each driver generates the synthetic
// workloads, runs the storage simulation or the miner, and renders the same
// rows/series the paper reports, so `farmerctl figN` (or the benchmarks in
// the repository root) regenerate every artifact. EXPERIMENTS.md records
// paper-vs-measured values.
package exp

import (
	"runtime"
	"sync"
	"time"

	"farmer/internal/core"
	"farmer/internal/graph"
	"farmer/internal/hust"
	"farmer/internal/predictors"
	"farmer/internal/sim"
	"farmer/internal/trace"
	"farmer/internal/tracegen"
	"farmer/internal/vsm"
)

// Options tunes experiment scale. Zero values select defaults sized to run
// all experiments in a couple of minutes on a laptop.
type Options struct {
	// Records per generated trace.
	Records int
	// Replay configuration; zero value takes hust defaults.
	Replay hust.ReplayConfig
	// Parallelism bounds concurrent simulations; 0 = GOMAXPROCS.
	Parallelism int
	// Shards stripes the FARMER miner inside each simulated MDS: 0 matches
	// the MDS worker count, 1 forces the paper-exact single-lock model.
	// Sharded and single-lock mining produce identical results (see
	// core.ShardedModel); the knob exists to exercise and measure both.
	Shards int
	// AsyncPrefetch moves mining and prediction off every simulated MDS
	// demand path onto the shard-worker station (hust.MDSConfig), so the
	// paper experiments can be regenerated under the async pipeline.
	AsyncPrefetch bool
	// MineTime models the per-record mining CPU cost inside each MDS
	// (0 keeps the legacy free-mining calibration). Sync runs pay it on
	// the demand path; async runs on the mining station.
	MineTime time.Duration
	// ClusterServers sizes the multi-MDS cluster experiments (default 4).
	ClusterServers int
}

func (o Options) withDefaults() Options {
	if o.Records <= 0 {
		o.Records = 30000
	}
	if o.Replay.MDS.CacheCapacity == 0 {
		// A partially built Replay is replaced wholesale, but the async
		// pipeline knobs ride through so the layering promise below holds.
		mds := o.Replay.MDS
		o.Replay = hust.DefaultReplayConfig()
		o.Replay.MDS.MineTime = mds.MineTime
		o.Replay.MDS.AsyncPrefetch = mds.AsyncPrefetch
		o.Replay.MDS.PrefetchQueue = mds.PrefetchQueue
		o.Replay.MDS.MinerWorkers = mds.MinerWorkers
	}
	if o.Parallelism <= 0 {
		o.Parallelism = runtime.GOMAXPROCS(0)
	}
	if o.ClusterServers <= 0 {
		o.ClusterServers = 4
	}
	// Both knobs only layer on top of an explicitly configured Replay: a
	// caller-supplied Replay.MDS.AsyncPrefetch/MineTime must survive zero
	// Options values.
	if o.AsyncPrefetch {
		o.Replay.MDS.AsyncPrefetch = true
	}
	if o.MineTime > 0 {
		o.Replay.MDS.MineTime = o.MineTime
	}
	return o
}

// parallel runs jobs with bounded concurrency and waits for all.
func parallel(limit int, jobs []func()) {
	if limit <= 0 {
		limit = 1
	}
	sem := make(chan struct{}, limit)
	var wg sync.WaitGroup
	for _, job := range jobs {
		wg.Add(1)
		sem <- struct{}{}
		go func(fn func()) {
			defer wg.Done()
			defer func() { <-sem }()
			fn()
		}(job)
	}
	wg.Wait()
}

// farmerFactory builds an FPA-driven MDS for a trace; shards follows
// Options.Shards semantics.
func farmerFactory(cfg hust.MDSConfig, mc core.Config, shards int) func(*sim.Engine) (*hust.MDS, error) {
	mc.Shards = shards
	return func(e *sim.Engine) (*hust.MDS, error) {
		return hust.NewFARMERMDS(e, cfg, nil, mc)
	}
}

func nexusFactory(cfg hust.MDSConfig) func(*sim.Engine) (*hust.MDS, error) {
	return func(e *sim.Engine) (*hust.MDS, error) {
		return hust.NewMDS(e, cfg, nil, predictors.NewNexus(predictors.DefaultNexusConfig()))
	}
}

func lruFactory(cfg hust.MDSConfig) func(*sim.Engine) (*hust.MDS, error) {
	return func(e *sim.Engine) (*hust.MDS, error) {
		return hust.NewMDS(e, cfg, nil, predictors.NewNone())
	}
}

// farmerConfig returns the paper-default FARMER configuration adapted to the
// trace's attribute schema.
func farmerConfig(t *trace.Trace, weight, maxStrength float64) core.Config {
	cfg := core.DefaultConfig()
	cfg.Weight = weight
	cfg.MaxStrength = maxStrength
	cfg.Mask = vsm.DefaultMask(t.HasPaths)
	cfg.Graph = graph.DefaultConfig()
	return cfg
}

// genTraces generates the four paper workloads at the configured size, in
// the paper's order (LLNL, INS, RES, HP).
func genTraces(records int) []*trace.Trace {
	profiles := tracegen.Profiles(records)
	out := make([]*trace.Trace, len(profiles))
	jobs := make([]func(), len(profiles))
	for i, p := range profiles {
		i, p := i, p
		jobs[i] = func() { out[i] = p.MustGenerate() }
	}
	parallel(len(jobs), jobs)
	return out
}
