package exp

import (
	"fmt"

	"farmer/internal/core"
	"farmer/internal/hust"
	"farmer/internal/metrics"
	"farmer/internal/sim"
	"farmer/internal/trace"
	"farmer/internal/tracegen"
	"farmer/internal/vsm"
)

// Fig1 reproduces Figure 1: the probability of inter-file access when the
// successor statistic is conditioned on different semantic attributes, for
// all four traces. Higher probability under an attribute means that
// attribute exposes stronger sequential regularity.
func Fig1(opt Options) *metrics.Table {
	opt = opt.withDefaults()
	traces := genTraces(opt.Records)
	type cond struct {
		name string
		key  trace.AttrKey
		need bool // requires paths
	}
	conds := []cond{
		{"none", trace.KeyNone, false},
		{"uid", trace.KeyUID, false},
		{"pid", trace.KeyPID, false},
		{"host", trace.KeyHost, false},
		{"dir", trace.KeyDir, true},
		{"uid+pid", trace.KeyUIDPID, false},
	}
	tab := metrics.NewTable("Attribute", "LLNL", "INS", "RES", "HP")
	rows := make([][]string, len(conds))
	jobs := []func(){}
	for ci, c := range conds {
		ci, c := ci, c
		jobs = append(jobs, func() {
			row := make([]string, len(traces))
			for ti, tr := range traces {
				if c.need && !tr.HasPaths {
					row[ti] = "n/a"
					continue
				}
				p := trace.SuccessorProbability(tr, c.key)
				row[ti] = fmt.Sprintf("%.3f", p)
			}
			rows[ci] = row
		})
	}
	parallel(opt.Parallelism, jobs)
	for ci, c := range conds {
		tab.AddRow(c.name, rows[ci][0], rows[ci][1], rows[ci][2], rows[ci][3])
	}
	return tab
}

// Table2 reproduces the paper's Table 2 worked example of DPA vs IPA on the
// three semantic vectors of Table 1.
func Table2() *metrics.Table {
	a := vsm.Vector{Scalars: []string{"user1", "p1", "host1"}, Path: "/home/user1/paper/a"}
	b := vsm.Vector{Scalars: []string{"user1", "p2", "host1"}, Path: "/home/user1/paper/b"}
	c := vsm.Vector{Scalars: []string{"user2", "p3", "host2"}, Path: "/home/user2/c"}
	tab := metrics.NewTable("Pair", "DPA", "IPA")
	pairs := []struct {
		name string
		x, y *vsm.Vector
	}{{"sim(A,B)", &a, &b}, {"sim(A,C)", &a, &c}, {"sim(B,C)", &b, &c}}
	for _, p := range pairs {
		tab.AddRow(p.name, vsm.Sim(p.x, p.y, vsm.DPA), vsm.Sim(p.x, p.y, vsm.IPA))
	}
	return tab
}

// Fig3 reproduces Figure 3: cache hit ratio as a function of max_strength
// for weight p in {0, 0.3, 0.7, 1}, for the named trace ("" = all four; one
// table per trace is concatenated by the caller via Fig3All).
func Fig3(opt Options, traceName string) *metrics.Table {
	opt = opt.withDefaults()
	prof, ok := tracegen.ByName(traceName, opt.Records)
	if !ok {
		panic(fmt.Sprintf("exp: unknown trace %q", traceName))
	}
	tr := prof.MustGenerate()
	weights := []float64{0, 0.3, 0.7, 1}
	strengths := []float64{0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8}
	results := make([][]float64, len(weights))
	jobs := []func(){}
	for wi, w := range weights {
		results[wi] = make([]float64, len(strengths))
		for si, s := range strengths {
			wi, si, w, s := wi, si, w, s
			jobs = append(jobs, func() {
				mc := farmerConfig(tr, w, s)
				res, err := hust.Replay(tr, opt.Replay, farmerFactory(opt.Replay.MDS, mc, opt.Shards))
				if err != nil {
					panic(err)
				}
				results[wi][si] = res.Stats.Cache.HitRatio()
			})
		}
	}
	parallel(opt.Parallelism, jobs)
	header := []string{"max_strength"}
	for _, w := range weights {
		header = append(header, fmt.Sprintf("p=%.1f", w))
	}
	tab := metrics.NewTable(header...)
	for si, s := range strengths {
		cells := []interface{}{fmt.Sprintf("%.1f", s)}
		for wi := range weights {
			cells = append(cells, results[wi][si])
		}
		tab.AddRow(cells...)
	}
	return tab
}

// Fig5 reproduces Figure 5 (the attribute-combination table): cache hit
// ratios for all 15 combinations of four attributes, for HP (path schema)
// and INS/RES (file-id schema).
func Fig5(opt Options) *metrics.Table {
	opt = opt.withDefaults()
	hp := tracegen.HP(opt.Records).MustGenerate()
	ins := tracegen.INS(opt.Records).MustGenerate()
	res := tracegen.RES(opt.Records).MustGenerate()

	pathAttrs := []vsm.Attr{vsm.AttrUser, vsm.AttrProcess, vsm.AttrHost, vsm.AttrPath}
	fidAttrs := []vsm.Attr{vsm.AttrUser, vsm.AttrProcess, vsm.AttrHost, vsm.AttrFileID}
	pathCombos := vsm.Combinations(pathAttrs)
	fidCombos := vsm.Combinations(fidAttrs)

	hitRatio := func(tr *trace.Trace, mask vsm.Mask) float64 {
		mc := core.DefaultConfig()
		mc.Mask = mask
		res, err := hust.Replay(tr, opt.Replay, farmerFactory(opt.Replay.MDS, mc, opt.Shards))
		if err != nil {
			panic(err)
		}
		return res.Stats.Cache.HitRatio()
	}

	hpRatios := make([]float64, len(pathCombos))
	insRatios := make([]float64, len(fidCombos))
	resRatios := make([]float64, len(fidCombos))
	jobs := []func(){}
	for i := range pathCombos {
		i := i
		jobs = append(jobs, func() { hpRatios[i] = hitRatio(hp, pathCombos[i]) })
		jobs = append(jobs, func() { insRatios[i] = hitRatio(ins, fidCombos[i]) })
		jobs = append(jobs, func() { resRatios[i] = hitRatio(res, fidCombos[i]) })
	}
	parallel(opt.Parallelism, jobs)

	tab := metrics.NewTable("HP Combination", "HP", "INS/RES Combination", "INS", "RES")
	for i := range pathCombos {
		tab.AddRow(pathCombos[i].String(), hpRatios[i], fidCombos[i].String(), insRatios[i], resRatios[i])
	}
	return tab
}

// Fig6 reproduces Figure 6: average MDS response time versus max_strength on
// the HP trace.
func Fig6(opt Options) *metrics.Table {
	opt = opt.withDefaults()
	tr := tracegen.HP(opt.Records).MustGenerate()
	strengths := []float64{0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0}
	resp := make([]float64, len(strengths))
	jobs := []func(){}
	for i, s := range strengths {
		i, s := i, s
		jobs = append(jobs, func() {
			mc := farmerConfig(tr, 0.7, s)
			r, err := hust.Replay(tr, opt.Replay, farmerFactory(opt.Replay.MDS, mc, opt.Shards))
			if err != nil {
				panic(err)
			}
			resp[i] = float64(r.Stats.AvgResponse.Microseconds()) / 1000
		})
	}
	parallel(opt.Parallelism, jobs)
	tab := metrics.NewTable("max_strength", "AvgResponse(ms)")
	for i, s := range strengths {
		tab.AddRow(fmt.Sprintf("%.1f", s), fmt.Sprintf("%.3f", resp[i]))
	}
	return tab
}

// PolicyRun holds one (trace, policy) replay outcome, shared by Fig7/Fig8/
// Table3.
type PolicyRun struct {
	Trace    string
	Policy   string
	HitRatio float64
	Accuracy float64
	AvgResp  float64 // milliseconds
}

// ComparePolicies replays every trace under FPA, Nexus and LRU. It is the
// data source for Fig. 7, Fig. 8 and Table 3.
func ComparePolicies(opt Options) []PolicyRun {
	opt = opt.withDefaults()
	traces := genTraces(opt.Records)
	type job struct {
		tr      *trace.Trace
		policy  string
		factory func(*sim.Engine) (*hust.MDS, error)
	}
	var jobsSpec []job
	for _, tr := range traces {
		mc := farmerConfig(tr, 0.7, 0.4)
		jobsSpec = append(jobsSpec,
			job{tr, "FARMER", farmerFactory(opt.Replay.MDS, mc, opt.Shards)},
			job{tr, "Nexus", nexusFactory(opt.Replay.MDS)},
			job{tr, "LRU", lruFactory(opt.Replay.MDS)},
		)
	}
	out := make([]PolicyRun, len(jobsSpec))
	jobs := make([]func(), len(jobsSpec))
	for i, js := range jobsSpec {
		i, js := i, js
		jobs[i] = func() {
			res, err := hust.Replay(js.tr, opt.Replay, js.factory)
			if err != nil {
				panic(err)
			}
			out[i] = PolicyRun{
				Trace:    js.tr.Name,
				Policy:   js.policy,
				HitRatio: res.Stats.Cache.HitRatio(),
				Accuracy: res.Stats.Cache.PrefetchAccuracy(),
				AvgResp:  float64(res.Stats.AvgResponse.Microseconds()) / 1000,
			}
		}
	}
	parallel(opt.Parallelism, jobs)
	return out
}

// Fig7 renders the hit-ratio comparison (FPA vs Nexus vs LRU, four traces).
func Fig7(runs []PolicyRun) *metrics.Table {
	tab := metrics.NewTable("Trace", "FARMER", "Nexus", "LRU")
	addTracePolicyRows(tab, runs, func(r PolicyRun) float64 { return r.HitRatio })
	return tab
}

// Fig8 renders the average-response-time comparison in milliseconds.
func Fig8(runs []PolicyRun) *metrics.Table {
	tab := metrics.NewTable("Trace", "FARMER(ms)", "Nexus(ms)", "LRU(ms)")
	addTracePolicyRows(tab, runs, func(r PolicyRun) float64 { return r.AvgResp })
	return tab
}

// Table3 renders prefetching accuracy on the HP trace (paper: FARMER 64.04%,
// Nexus 43.04%).
func Table3(runs []PolicyRun) *metrics.Table {
	tab := metrics.NewTable("Trace", "Prefetching Accuracy")
	for _, r := range runs {
		if r.Trace == "HP" && r.Policy != "LRU" {
			tab.AddRow(r.Policy, fmt.Sprintf("%.2f%%", r.Accuracy*100))
		}
	}
	return tab
}

func addTracePolicyRows(tab *metrics.Table, runs []PolicyRun, get func(PolicyRun) float64) {
	order := []string{"LLNL", "INS", "RES", "HP"}
	policies := []string{"FARMER", "Nexus", "LRU"}
	for _, tr := range order {
		cells := []interface{}{tr}
		for _, p := range policies {
			for _, r := range runs {
				if r.Trace == tr && r.Policy == p {
					cells = append(cells, get(r))
				}
			}
		}
		if len(cells) == len(policies)+1 {
			tab.AddRow(cells...)
		}
	}
}

// Table4 reproduces the space-overhead table: FARMER correlation-state
// footprint per trace at max_strength 0.4.
func Table4(opt Options) *metrics.Table {
	opt = opt.withDefaults()
	traces := genTraces(opt.Records)
	sizes := make([]float64, len(traces))
	correl := make([]int, len(traces))
	jobs := make([]func(), len(traces))
	for i, tr := range traces {
		i, tr := i, tr
		jobs[i] = func() {
			m := core.New(farmerConfig(tr, 0.7, 0.4))
			m.FeedTrace(tr)
			st := m.Stats()
			sizes[i] = float64(st.MemoryBytes) / (1 << 20)
			correl[i] = st.Correlators
		}
	}
	parallel(opt.Parallelism, jobs)
	tab := metrics.NewTable("Trace", "Space (MB)", "Correlators")
	for i, tr := range traces {
		tab.AddRow(tr.Name, fmt.Sprintf("%.2f", sizes[i]), correl[i])
	}
	return tab
}

// AblationFootprint compares FARMER's filtered state against an unfiltered
// graph predictor's state on the same trace (§3.3's efficiency claim).
func AblationFootprint(opt Options, traceName string) *metrics.Table {
	opt = opt.withDefaults()
	prof, ok := tracegen.ByName(traceName, opt.Records)
	if !ok {
		panic(fmt.Sprintf("exp: unknown trace %q", traceName))
	}
	tr := prof.MustGenerate()

	farmer := core.New(farmerConfig(tr, 0.7, 0.4))
	farmer.FeedTrace(tr)
	fs := farmer.Stats()

	unfiltered := core.New(farmerConfig(tr, 0.7, 0.0))
	unfiltered.FeedTrace(tr)
	us := unfiltered.Stats()

	tab := metrics.NewTable("Model", "Correlators", "Memory (MB)")
	tab.AddRow("FARMER (max_strength=0.4)", fs.Correlators, fmt.Sprintf("%.2f", float64(fs.MemoryBytes)/(1<<20)))
	tab.AddRow("FARMER (unfiltered)", us.Correlators, fmt.Sprintf("%.2f", float64(us.MemoryBytes)/(1<<20)))
	return tab
}
