package exp

import (
	"farmer/internal/core"
	"farmer/internal/eval"
	"farmer/internal/metrics"
	"farmer/internal/predictors"
	"farmer/internal/trace"
	"farmer/internal/vsm"
)

// MiningQuality scores every predictor's mined successor sets against the
// workload ground truth (precision / recall / F1 at k = 4) on all four
// traces. This quantifies the paper's core claim — "FARMER can mine and
// evaluate file correlations more accurately and effectively" — without the
// cache in the loop.
func MiningQuality(opt Options) *metrics.Table {
	opt = opt.withDefaults()
	traces := genTraces(opt.Records)
	mk := func(tr *trace.Trace) []predictors.Predictor {
		cfg := core.DefaultConfig()
		cfg.Mask = vsm.DefaultMask(tr.HasPaths)
		return []predictors.Predictor{
			predictors.NewFPA(core.New(cfg)),
			predictors.NewNexus(predictors.DefaultNexusConfig()),
			predictors.NewProbabilityGraph(2, 0.1),
			predictors.NewLastSuccessor(),
			predictors.NewPBS(),
			predictors.NewPULS(),
		}
	}
	type cell struct{ q eval.Quality }
	results := make(map[string]map[string]cell) // trace -> policy -> quality
	var names []string
	jobs := []func(){}
	for _, tr := range traces {
		tr := tr
		results[tr.Name] = make(map[string]cell)
		ps := mk(tr)
		if names == nil {
			for _, p := range ps {
				names = append(names, p.Name())
			}
		}
		for _, p := range ps {
			p := p
			jobs = append(jobs, func() {
				q := eval.Score(tr, p, 4)
				results[tr.Name][p.Name()] = cell{q}
			})
		}
	}
	// One job per (trace, policy); results map is pre-populated per trace so
	// concurrent writes touch distinct inner maps... inner maps are shared
	// per trace — serialise by running one trace's jobs in sequence instead.
	// Simpler: bound to 1 writer per inner map via per-trace grouping.
	grouped := make([]func(), 0, len(traces))
	idx := 0
	perTrace := len(names)
	for range traces {
		lo, hi := idx, idx+perTrace
		idx = hi
		batch := jobs[lo:hi]
		grouped = append(grouped, func() {
			for _, j := range batch {
				j()
			}
		})
	}
	parallel(opt.Parallelism, grouped)

	tab := metrics.NewTable("Trace", "Policy", "Precision", "Recall", "F1")
	for _, tr := range traces {
		for _, name := range names {
			q := results[tr.Name][name].q
			tab.AddRow(tr.Name, name, q.Precision, q.Recall, q.F1)
		}
	}
	return tab
}
