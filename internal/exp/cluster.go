// Multi-MDS cluster experiment: global vs per-partition (local) mining (not
// a paper artifact — the paper's prototype runs one MDS; this quantifies
// what the partition layer's cross-MDS event routing buys a partitioned
// deployment, and what it costs in inter-server traffic).
package exp

import (
	"time"

	"farmer/internal/hust"
	"farmer/internal/metrics"
	"farmer/internal/replay"
)

// ClusterRow is one (trace, partitioner, mining mode) outcome of the
// cluster sweep.
type ClusterRow struct {
	Trace         string
	Partition     string // "hash", "group"
	Mining        string // "local" (per-partition miners), "global"
	Servers       int
	HitRatio      float64
	AvgResponse   time.Duration
	AvgDemandWait time.Duration
	Imbalance     float64
	// CrossRatio is the fraction of mining events shipped across MDS
	// boundaries (global rows; 0 for local).
	CrossRatio     float64
	MailboxDropped uint64
	// FingerprintOK reports that the global rows' merged mined state is
	// bit-identical to the sequential single-miner reference (always false
	// for local rows, whose per-server models are disjoint by design).
	FingerprintOK bool
}

// ClusterGlobalVsLocal replays every paper trace through an n-server
// cluster twice per partitioner — per-partition miners (each server mines
// only its sub-stream, on the demand path) versus the global miner (the
// cluster dispatcher fans events across servers, off the demand path) —
// under the mining-heavy calibration, and cross-checks each global run's
// merged state against the sequential reference.
func ClusterGlobalVsLocal(opt Options) []ClusterRow {
	opt = opt.withDefaults()
	if opt.Replay.MDS.MineTime == 0 {
		opt.Replay.MDS.MineTime = time.Millisecond
	}
	parts := []struct {
		name string
		fn   hust.Partitioner
	}{{"hash", hust.HashPartitioner}, {"group", hust.GroupPartitioner}}

	traces := genTraces(opt.Records)
	out := make([][]ClusterRow, len(traces))
	jobs := make([]func(), len(traces))
	for i, tr := range traces {
		i, tr := i, tr
		jobs[i] = func() {
			mc := farmerConfig(tr, 0.7, 0.4)
			ref := replay.MineSequential(tr, mc)
			for _, p := range parts {
				local, err := replay.LocalCluster(tr, opt.Replay, opt.ClusterServers, p.fn, mc)
				if err != nil {
					panic(err)
				}
				global, err := replay.GlobalCluster(tr, opt.Replay, opt.ClusterServers, p.fn, mc, hust.DefaultGlobalConfig())
				if err != nil {
					panic(err)
				}
				row := func(mode string, o replay.ClusterOutcome) ClusterRow {
					r := ClusterRow{
						Trace:         tr.Name,
						Partition:     p.name,
						Mining:        mode,
						Servers:       opt.ClusterServers,
						HitRatio:      o.Stats.HitRatio,
						AvgResponse:   o.Stats.AvgResponse,
						AvgDemandWait: o.Stats.AvgDemandWait,
						Imbalance:     o.Stats.Imbalance,
					}
					if g := o.Stats.Global; g != nil {
						r.CrossRatio = g.CrossRatio
						r.MailboxDropped = g.MailboxDropped
						r.FingerprintOK = o.Fingerprint == ref
					}
					return r
				}
				out[i] = append(out[i], row("local", local), row("global", global))
			}
		}
	}
	parallel(opt.Parallelism, jobs)
	var rows []ClusterRow
	for _, r := range out {
		rows = append(rows, r...)
	}
	return rows
}

// ClusterTable renders the cluster sweep.
func ClusterTable(rows []ClusterRow) *metrics.Table {
	tab := metrics.NewTable("Trace", "Partition", "Mining", "HitRatio", "AvgResp", "DemandWait", "Cross%", "BoxDrop", "GlobalFP")
	for _, r := range rows {
		fp := "-"
		if r.Mining == "global" {
			fp = "DIVERGED"
			if r.FingerprintOK {
				fp = "exact"
			}
		}
		tab.AddRow(r.Trace, r.Partition, r.Mining, r.HitRatio, r.AvgResponse, r.AvgDemandWait,
			100*r.CrossRatio, r.MailboxDropped, fp)
	}
	return tab
}
