package exp

import (
	"strings"
	"testing"
)

// smallOpt keeps experiment tests fast; the benchmarks run full scale.
func smallOpt() Options { return Options{Records: 6000} }

func TestFig1ShapesHold(t *testing.T) {
	tab := Fig1(smallOpt())
	out := tab.String()
	if !strings.Contains(out, "uid+pid") || !strings.Contains(out, "none") {
		t.Fatalf("missing rows:\n%s", out)
	}
	if tab.Rows() != 6 {
		t.Fatalf("rows = %d, want 6", tab.Rows())
	}
}

func TestTable2MatchesPaper(t *testing.T) {
	out := Table2().String()
	// DPA column: 5/7 = 0.7143, 1/7 = 0.1429; IPA: 2.75/4 = 0.6875,
	// 0.25/4 = 0.0625 — the paper's exact Table 2 values.
	for _, want := range []string{"0.7143", "0.1429", "0.6875", "0.0625"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Table 2 missing %s:\n%s", want, out)
		}
	}
}

func TestFig3RunsAndHasSweep(t *testing.T) {
	tab := Fig3(smallOpt(), "HP")
	if tab.Rows() != 7 { // strengths 0.2..0.8
		t.Fatalf("rows = %d", tab.Rows())
	}
	out := tab.String()
	if !strings.Contains(out, "p=0.7") {
		t.Fatalf("missing weight column:\n%s", out)
	}
}

func TestFig3UnknownTracePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unknown trace accepted")
		}
	}()
	Fig3(smallOpt(), "NFS")
}

func TestFig5Has15Combinations(t *testing.T) {
	tab := Fig5(smallOpt())
	if tab.Rows() != 15 {
		t.Fatalf("rows = %d, want 15", tab.Rows())
	}
	out := tab.String()
	if !strings.Contains(out, "{User, Process, Host, File Path}") {
		t.Fatalf("missing full combination:\n%s", out)
	}
}

func TestFig6Sweep(t *testing.T) {
	tab := Fig6(smallOpt())
	if tab.Rows() != 11 {
		t.Fatalf("rows = %d, want 11", tab.Rows())
	}
}

func TestComparePoliciesOrdering(t *testing.T) {
	runs := ComparePolicies(Options{Records: 12000})
	if len(runs) != 12 { // 4 traces x 3 policies
		t.Fatalf("runs = %d", len(runs))
	}
	get := func(tr, pol string) PolicyRun {
		for _, r := range runs {
			if r.Trace == tr && r.Policy == pol {
				return r
			}
		}
		t.Fatalf("missing run %s/%s", tr, pol)
		return PolicyRun{}
	}
	for _, tr := range []string{"LLNL", "INS", "RES", "HP"} {
		f, n, l := get(tr, "FARMER"), get(tr, "Nexus"), get(tr, "LRU")
		// The paper's headline ordering (Fig. 7): FPA >= Nexus >= LRU on
		// hit ratio. Allow tiny slack for the small test workload.
		if f.HitRatio < n.HitRatio-0.01 || f.HitRatio < l.HitRatio-0.01 {
			t.Errorf("%s: FARMER hit %.3f not best (Nexus %.3f LRU %.3f)", tr, f.HitRatio, n.HitRatio, l.HitRatio)
		}
		// Response-time ordering (Fig. 8): FPA fastest.
		if f.AvgResp > n.AvgResp+0.05 || f.AvgResp > l.AvgResp+0.05 {
			t.Errorf("%s: FARMER resp %.3f not best (Nexus %.3f LRU %.3f)", tr, f.AvgResp, n.AvgResp, l.AvgResp)
		}
	}
	// Table 3 shape: FARMER accuracy clearly above Nexus on HP.
	if f, n := get("HP", "FARMER"), get("HP", "Nexus"); f.Accuracy <= n.Accuracy {
		t.Errorf("HP accuracy: FARMER %.3f <= Nexus %.3f", f.Accuracy, n.Accuracy)
	}
}

func TestFigureRenderers(t *testing.T) {
	runs := []PolicyRun{
		{Trace: "HP", Policy: "FARMER", HitRatio: 0.55, Accuracy: 0.64, AvgResp: 0.9},
		{Trace: "HP", Policy: "Nexus", HitRatio: 0.45, Accuracy: 0.43, AvgResp: 1.1},
		{Trace: "HP", Policy: "LRU", HitRatio: 0.40, AvgResp: 1.2},
	}
	if out := Fig7(runs).String(); !strings.Contains(out, "0.5500") {
		t.Fatalf("Fig7 render:\n%s", out)
	}
	if out := Fig8(runs).String(); !strings.Contains(out, "0.9000") {
		t.Fatalf("Fig8 render:\n%s", out)
	}
	out := Table3(runs).String()
	if !strings.Contains(out, "64.00%") || strings.Contains(out, "LRU") {
		t.Fatalf("Table3 render:\n%s", out)
	}
}

func TestTable4SpaceBounded(t *testing.T) {
	tab := Table4(smallOpt())
	if tab.Rows() != 4 {
		t.Fatalf("rows = %d", tab.Rows())
	}
}

func TestAblationFootprintFilteringWins(t *testing.T) {
	tab := AblationFootprint(smallOpt(), "HP")
	out := tab.String()
	if !strings.Contains(out, "max_strength=0.4") || !strings.Contains(out, "unfiltered") {
		t.Fatalf("ablation table:\n%s", out)
	}
}

func TestMiningQualityTable(t *testing.T) {
	tab := MiningQuality(Options{Records: 8000})
	if tab.Rows() != 24 { // 4 traces x 6 policies
		t.Fatalf("rows = %d, want 24", tab.Rows())
	}
	out := tab.String()
	if !strings.Contains(out, "FARMER") || !strings.Contains(out, "Nexus") {
		t.Fatalf("missing policies:\n%s", out)
	}
}
