// Sync-vs-async demand-latency experiment: the measurement behind the async
// prefetch pipeline (not a paper artifact — the paper's prototype mines on
// the demand path; this quantifies what moving it off costs and buys).
package exp

import (
	"time"

	"farmer/internal/metrics"
	"farmer/internal/replay"
	"farmer/internal/trace"
)

// AsyncRow is one (trace, pipeline) outcome of the sync-vs-async sweep.
type AsyncRow struct {
	Trace         string
	Pipeline      string // "baseline" (no prefetch), "sync", "async"
	HitRatio      float64
	AvgResponse   time.Duration
	AvgDemandWait time.Duration
	MineAvgWait   time.Duration
	PrefetchDrop  uint64
	Fingerprint   uint64 // 0 for the baseline (nothing mined)
}

// SyncVsAsync replays every paper trace through the no-prefetch baseline,
// the synchronous FARMER pipeline and the asynchronous one, under a
// mining-heavy calibration (Options.MineTime, default 1ms when unset), and
// verifies in passing that sync and async mine bit-identical state.
func SyncVsAsync(opt Options) []AsyncRow {
	opt = opt.withDefaults()
	if opt.Replay.MDS.MineTime == 0 {
		opt.Replay.MDS.MineTime = time.Millisecond
	}
	traces := genTraces(opt.Records)
	out := make([][]AsyncRow, len(traces))
	jobs := make([]func(), len(traces))
	for i, tr := range traces {
		i, tr := i, tr
		jobs[i] = func() {
			mc := farmerConfig(tr, 0.7, 0.4)
			mc.Shards = opt.Shards
			cmp, err := replay.Compare(tr, opt.Replay, mc)
			if err != nil {
				panic(err)
			}
			if cmp.Sync.Fingerprint != cmp.Async.Fingerprint {
				panic("exp: sync and async pipelines mined different state on " + tr.Name)
			}
			row := func(name string, o replay.Outcome) AsyncRow {
				return AsyncRow{
					Trace:         tr.Name,
					Pipeline:      name,
					HitRatio:      o.Result.Stats.Cache.HitRatio(),
					AvgResponse:   o.Result.Stats.AvgResponse,
					AvgDemandWait: o.Result.Stats.AvgDemandWait,
					MineAvgWait:   o.Result.Stats.MineAvgWait,
					PrefetchDrop:  o.Result.Stats.PrefetchDropped,
					Fingerprint:   o.Fingerprint,
				}
			}
			out[i] = []AsyncRow{
				{
					Trace:         tr.Name,
					Pipeline:      "baseline",
					HitRatio:      cmp.Baseline.Stats.Cache.HitRatio(),
					AvgResponse:   cmp.Baseline.Stats.AvgResponse,
					AvgDemandWait: cmp.Baseline.Stats.AvgDemandWait,
				},
				row("sync", cmp.Sync),
				row("async", cmp.Async),
			}
		}
	}
	parallel(opt.Parallelism, jobs)
	var rows []AsyncRow
	for _, r := range out {
		rows = append(rows, r...)
	}
	return rows
}

// AsyncLatency renders the sync-vs-async sweep as a table.
func AsyncLatency(rows []AsyncRow) *metrics.Table {
	tab := metrics.NewTable("Trace", "Pipeline", "HitRatio", "AvgResp", "DemandWait", "MineWait", "PfDropped")
	for _, r := range rows {
		tab.AddRow(r.Trace, r.Pipeline, r.HitRatio, r.AvgResponse, r.AvgDemandWait, r.MineAvgWait, r.PrefetchDrop)
	}
	return tab
}

// fingerprintReference recomputes the sequential single-lock fingerprint
// for a trace — the exp tests cross-check SyncVsAsync rows against it.
func fingerprintReference(tr *trace.Trace, shards int) uint64 {
	mc := farmerConfig(tr, 0.7, 0.4)
	mc.Shards = shards
	return replay.MineSequential(tr, mc)
}
