package exp

import (
	"strings"
	"testing"
)

// TestClusterGlobalVsLocalSweep pins the cluster experiment's structural
// claims at test scale: every global run mines the exact sequential state
// drop-free, ships real cross-MDS traffic, and never pays for it on the
// demand path — global demand wait is no worse than the per-partition
// baseline's on every (trace, partitioner) pair.
func TestClusterGlobalVsLocalSweep(t *testing.T) {
	rows := ClusterGlobalVsLocal(smallOpt())
	if len(rows) != 16 { // 4 traces × {hash, group} × {local, global}
		t.Fatalf("rows = %d, want 16", len(rows))
	}
	type key struct{ trace, part string }
	local := map[key]ClusterRow{}
	global := map[key]ClusterRow{}
	for _, r := range rows {
		k := key{r.Trace, r.Partition}
		switch r.Mining {
		case "local":
			local[k] = r
		case "global":
			global[k] = r
		default:
			t.Fatalf("unknown mining mode %q", r.Mining)
		}
	}
	for k, g := range global {
		l, ok := local[k]
		if !ok {
			t.Fatalf("%v: no local baseline", k)
		}
		if !g.FingerprintOK {
			t.Errorf("%v: global merged state diverged from the sequential reference", k)
		}
		if g.MailboxDropped != 0 {
			t.Errorf("%v: %d mailbox drops at test scale", k, g.MailboxDropped)
		}
		if g.CrossRatio <= 0 {
			t.Errorf("%v: no cross-MDS traffic", k)
		}
		if g.AvgDemandWait > l.AvgDemandWait {
			t.Errorf("%v: global demand wait %v worse than local %v", k, g.AvgDemandWait, l.AvgDemandWait)
		}
	}
	out := ClusterTable(rows).String()
	for _, want := range []string{"hash", "group", "local", "global", "exact"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered table missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "DIVERGED") {
		t.Fatalf("table reports divergence:\n%s", out)
	}
}
