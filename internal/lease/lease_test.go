package lease

import (
	"errors"
	"testing"
	"time"
)

// fakeClock is a manually advanced clock so lease expiry is deterministic.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time            { return c.t }
func (c *fakeClock) advance(d time.Duration)   { c.t = c.t.Add(d) }
func newClock() *fakeClock                     { return &fakeClock{t: time.Unix(1_000_000, 0)} }
func holder(self string, c *fakeClock) *Holder { return NewHolder(self, time.Second, c.now) }

func TestAcquireAndRenew(t *testing.T) {
	c := newClock()
	h := holder("a", c)
	if h.Leading() {
		t.Fatal("leading before any acquire")
	}
	term, err := h.Acquire()
	if err != nil {
		t.Fatal(err)
	}
	if term.Epoch != 1 || term.Leader != "a" {
		t.Fatalf("got term %+v, want epoch 1 leader a", term)
	}
	if !h.Leading() {
		t.Fatal("not leading after acquire")
	}
	c.advance(900 * time.Millisecond)
	if err := h.Renew(); err != nil {
		t.Fatal(err)
	}
	c.advance(900 * time.Millisecond)
	if !h.Leading() {
		t.Fatal("renewal did not extend the lease")
	}
	c.advance(200 * time.Millisecond)
	if h.Leading() {
		t.Fatal("still leading past expiry")
	}
	// An expired leader may re-acquire: epoch moves forward.
	term2, err := h.Acquire()
	if err != nil {
		t.Fatal(err)
	}
	if term2.Epoch != 2 {
		t.Fatalf("re-acquire epoch %d, want 2", term2.Epoch)
	}
}

func TestAcquireRefusedWhileForeignLeaseLive(t *testing.T) {
	c := newClock()
	h := holder("b", c)
	if err := h.Observe(Term{Epoch: 3, Leader: "a"}); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Acquire(); !errors.Is(err, ErrLeaseHeld) {
		t.Fatalf("acquire under a live foreign lease: %v, want ErrLeaseHeld", err)
	}
	c.advance(2 * time.Second)
	term, err := h.Acquire()
	if err != nil {
		t.Fatal(err)
	}
	if term.Epoch != 4 || term.Leader != "b" {
		t.Fatalf("post-expiry acquire got %+v, want epoch 4 leader b", term)
	}
}

func TestObserveEpochRules(t *testing.T) {
	c := newClock()
	h := holder("f", c)
	if err := h.Observe(Term{Epoch: 2, Leader: "a"}); err != nil {
		t.Fatal(err)
	}
	// Lower epoch: stale.
	if err := h.Observe(Term{Epoch: 1, Leader: "z"}); !errors.Is(err, ErrStaleEpoch) {
		t.Fatalf("lower epoch observed: %v, want ErrStaleEpoch", err)
	}
	// Same epoch, different leader: stale (two leaders cannot share a term).
	if err := h.Observe(Term{Epoch: 2, Leader: "z"}); !errors.Is(err, ErrStaleEpoch) {
		t.Fatalf("same epoch different leader: %v, want ErrStaleEpoch", err)
	}
	// Same epoch, same leader: a renewal, refreshes the TTL.
	c.advance(900 * time.Millisecond)
	if err := h.Observe(Term{Epoch: 2, Leader: "a"}); err != nil {
		t.Fatal(err)
	}
	if term, left := h.Current(); term.Epoch != 2 || left != time.Second {
		t.Fatalf("renewal did not refresh: term %+v remaining %v", term, left)
	}
	// Higher epoch, new leader: adopted.
	if err := h.Observe(Term{Epoch: 5, Leader: "b"}); err != nil {
		t.Fatal(err)
	}
	if term, _ := h.Current(); term.Leader != "b" || term.Epoch != 5 {
		t.Fatalf("higher term not adopted: %+v", term)
	}
}

func TestObserveHigherEpochDeposesLeader(t *testing.T) {
	c := newClock()
	h := holder("a", c)
	if _, err := h.Acquire(); err != nil {
		t.Fatal(err)
	}
	if err := h.Observe(Term{Epoch: 2, Leader: "b"}); err != nil {
		t.Fatal(err)
	}
	if h.Leading() {
		t.Fatal("still leading after a higher epoch deposed self")
	}
	if !h.Deposed() {
		t.Fatal("not marked deposed")
	}
	if err := h.Renew(); !errors.Is(err, ErrStaleEpoch) {
		t.Fatalf("deposed renew: %v, want ErrStaleEpoch", err)
	}
	// Winning a later election clears the deposition.
	c.advance(2 * time.Second)
	if _, err := h.Acquire(); err != nil {
		t.Fatal(err)
	}
	if !h.Leading() || h.Deposed() {
		t.Fatal("re-elected leader still deposed")
	}
}

func TestVote(t *testing.T) {
	c := newClock()
	h := holder("f", c)
	if err := h.Observe(Term{Epoch: 2, Leader: "a"}); err != nil {
		t.Fatal(err)
	}
	// Equal or lower epoch: refused.
	if err := h.Vote(2, "b"); !errors.Is(err, ErrStaleEpoch) {
		t.Fatalf("vote at current epoch: %v, want ErrStaleEpoch", err)
	}
	// Higher epoch but sitting leader's lease still live: refused.
	if err := h.Vote(3, "b"); !errors.Is(err, ErrLeaseHeld) {
		t.Fatalf("vote under live lease: %v, want ErrLeaseHeld", err)
	}
	c.advance(2 * time.Second)
	if err := h.Vote(3, "b"); err != nil {
		t.Fatal(err)
	}
	// The vote adopts the candidate's term: no second vote in epoch 3.
	if err := h.Vote(3, "z"); !errors.Is(err, ErrStaleEpoch) {
		t.Fatalf("double vote in one epoch: %v, want ErrStaleEpoch", err)
	}
	if term, _ := h.Current(); term.Epoch != 3 || term.Leader != "b" {
		t.Fatalf("vote did not adopt candidate term: %+v", term)
	}
}

func TestVoteDeposesSittingSelf(t *testing.T) {
	c := newClock()
	h := holder("a", c)
	if _, err := h.Acquire(); err != nil {
		t.Fatal(err)
	}
	c.advance(2 * time.Second) // self's lease lapses
	if err := h.Vote(2, "b"); err != nil {
		t.Fatal(err)
	}
	if h.Leading() || !h.Deposed() {
		t.Fatal("voting another candidate in did not depose self")
	}
}

func TestDepose(t *testing.T) {
	c := newClock()
	h := holder("a", c)
	if _, err := h.Acquire(); err != nil {
		t.Fatal(err)
	}
	h.Depose()
	if h.Leading() {
		t.Fatal("leading after explicit depose")
	}
	if err := h.Renew(); !errors.Is(err, ErrStaleEpoch) {
		t.Fatalf("renew after depose: %v, want ErrStaleEpoch", err)
	}
}

func TestCurrentRemaining(t *testing.T) {
	c := newClock()
	h := holder("a", c)
	if term, left := h.Current(); term.Epoch != 0 || left != 0 {
		t.Fatalf("fresh holder: term %+v remaining %v", term, left)
	}
	if _, err := h.Acquire(); err != nil {
		t.Fatal(err)
	}
	c.advance(400 * time.Millisecond)
	if _, left := h.Current(); left != 600*time.Millisecond {
		t.Fatalf("remaining %v, want 600ms", left)
	}
}

// BenchmarkElectionAcquire is the bench-smoke row for the election path:
// one expiry-check-plus-claim under the holder lock.
func BenchmarkElectionAcquire(b *testing.B) {
	h := NewHolder("a", time.Hour, nil)
	for i := 0; i < b.N; i++ {
		if _, err := h.Acquire(); err != nil {
			b.Fatal(err)
		}
	}
}
