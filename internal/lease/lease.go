// Package lease is the epoch-versioned ownership layer: one monotone
// (epoch, leader) term per replicated miner, held for a TTL and renewed on
// the replication stream. It replaces the ad-hoc "first writable wins"
// promotion spread across the client failover sweep and the server's
// split-brain guard with a single rule: the highest epoch wins, writes
// against a lower epoch are rejected typed (ErrStaleEpoch), and a follower
// whose leader's lease expired elects itself by taking the next epoch.
//
// The package is pure coordination state — no wire, no goroutines, no real
// clock unless asked. serve.go owns the renewal/election loop and the
// quorum rules; Holder owns only the term algebra, so the invariants
// (epochs never regress, two leaders never coexist inside one Holder's
// view, a deposed leader stays deposed until it wins a new epoch) are
// testable with a fake clock.
package lease

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// ErrStaleEpoch rejects an action performed under an epoch lower than one
// already observed — a write from a deposed leader, a vote for a stale
// candidate, a grant that would regress the term. Clients treat it like
// ErrNotPrimary: seek the current leader and retry.
var ErrStaleEpoch = errors.New("stale lease epoch")

// ErrLeaseHeld refuses an acquisition while a live lease from another
// leader is still within its TTL — the one-leader-at-a-time rule.
var ErrLeaseHeld = errors.New("lease held by another leader")

// Term is one ownership term: Leader holds the write lease for Epoch.
// Epoch 0 is "no lease ever observed".
type Term struct {
	Epoch  uint64
	Leader string
}

// Holder tracks one node's view of the cluster's lease. It is the single
// source of truth for "may I serve writes" (Leading) and "is this peer's
// claim current" (Observe/Vote).
type Holder struct {
	self string
	ttl  time.Duration
	now  func() time.Time

	mu      sync.Mutex
	term    Term
	expiry  time.Time // zero = no live lease observed
	deposed bool      // self lost the lease to a higher epoch; stays set until self wins a new one
}

// NewHolder builds a Holder for the node named self with the given lease
// TTL. now injects a clock for tests; nil means time.Now.
func NewHolder(self string, ttl time.Duration, now func() time.Time) *Holder {
	if now == nil {
		now = time.Now
	}
	return &Holder{self: self, ttl: ttl, now: now}
}

// Self returns the node name this holder elects and renews as.
func (h *Holder) Self() string { return h.self }

// TTL returns the lease duration terms are held for.
func (h *Holder) TTL() time.Duration { return h.ttl }

// Current returns the last observed term and how much of its TTL remains
// (<= 0 when expired or never granted).
func (h *Holder) Current() (Term, time.Duration) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.expiry.IsZero() {
		return h.term, 0
	}
	return h.term, h.expiry.Sub(h.now())
}

// Leading reports whether self holds a live, un-deposed lease — the gate
// in front of every write.
func (h *Holder) Leading() bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.leadingLocked()
}

func (h *Holder) leadingLocked() bool {
	return h.term.Leader == h.self && !h.deposed &&
		!h.expiry.IsZero() && h.now().Before(h.expiry)
}

// Observe folds a term seen on the wire (a grant or a renewal) into this
// holder's view. A lower epoch — or the same epoch claimed by a different
// leader — is rejected with ErrStaleEpoch; an equal-or-higher term from
// the same or a new leader is adopted and its TTL refreshed. Observing a
// higher epoch while self was leading deposes self.
func (h *Holder) Observe(t Term) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	switch {
	case t.Epoch < h.term.Epoch:
		return fmt.Errorf("%w: observed epoch %d < current %d (leader %q)",
			ErrStaleEpoch, t.Epoch, h.term.Epoch, h.term.Leader)
	case t.Epoch == h.term.Epoch && t.Leader != h.term.Leader:
		return fmt.Errorf("%w: epoch %d already granted to %q, not %q",
			ErrStaleEpoch, t.Epoch, h.term.Leader, t.Leader)
	}
	if t.Epoch > h.term.Epoch && h.term.Leader == h.self && t.Leader != h.self {
		h.deposed = true
	}
	if t.Leader == h.self {
		h.deposed = false
	}
	h.term = t
	h.expiry = h.now().Add(h.ttl)
	return nil
}

// Renew extends self's own live lease by one TTL. It fails typed when self
// is not the current leader or has been deposed — the renewal loop turns
// that into "stop serving writes", never into a fresh claim.
func (h *Holder) Renew() error {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.term.Leader != h.self || h.deposed {
		return fmt.Errorf("%w: cannot renew epoch %d held by %q",
			ErrStaleEpoch, h.term.Epoch, h.term.Leader)
	}
	h.expiry = h.now().Add(h.ttl)
	return nil
}

// Acquire claims the next epoch for self. It refuses with ErrLeaseHeld
// while another leader's lease is still live (the election loop must wait
// out the TTL); otherwise it returns the newly held term — epoch strictly
// above everything this holder has observed — with self un-deposed.
func (h *Holder) Acquire() (Term, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.term.Leader != "" && h.term.Leader != h.self &&
		!h.expiry.IsZero() && h.now().Before(h.expiry) {
		return Term{}, fmt.Errorf("%w: %q holds epoch %d for another %v",
			ErrLeaseHeld, h.term.Leader, h.term.Epoch, h.expiry.Sub(h.now()))
	}
	h.term = Term{Epoch: h.term.Epoch + 1, Leader: h.self}
	h.expiry = h.now().Add(h.ttl)
	h.deposed = false
	return h.term, nil
}

// Vote decides a candidate's election request for epoch. The vote is
// granted — adopting the candidate's term, so this node cannot vote twice
// in one epoch or later accept a smaller one — only when the epoch is
// strictly above the current term AND the current lease has lapsed. A live
// lease means the sitting leader may still be serving; voting then would
// allow two leaders inside one TTL.
func (h *Holder) Vote(epoch uint64, candidate string) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	if epoch <= h.term.Epoch {
		return fmt.Errorf("%w: vote for epoch %d refused, already at %d (leader %q)",
			ErrStaleEpoch, epoch, h.term.Epoch, h.term.Leader)
	}
	if h.term.Leader != "" && h.term.Leader != candidate &&
		!h.expiry.IsZero() && h.now().Before(h.expiry) {
		return fmt.Errorf("%w: %q still holds epoch %d for another %v",
			ErrLeaseHeld, h.term.Leader, h.term.Epoch, h.expiry.Sub(h.now()))
	}
	if h.term.Leader == h.self && candidate != h.self {
		h.deposed = true
	}
	h.term = Term{Epoch: epoch, Leader: candidate}
	h.expiry = h.now().Add(h.ttl)
	return nil
}

// Depose marks self as no longer leader without learning the successor's
// term — used when a renewal is refused by a quorum. Writes stop
// immediately; the next Observe or Acquire decides what happens next.
func (h *Holder) Depose() {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.term.Leader == h.self {
		h.deposed = true
	}
}

// Deposed reports whether self lost the lease to a higher epoch and has
// not won a new one since.
func (h *Holder) Deposed() bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.deposed
}
