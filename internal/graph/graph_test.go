package graph

import (
	"math"
	"math/rand/v2"
	"sync"
	"testing"
	"testing/quick"

	"farmer/internal/trace"
)

func feedSeq(g *Graph, ids ...trace.FileID) {
	for _, id := range ids {
		g.Feed(id)
	}
}

// TestPaperLDAExample reproduces §3.2.2's ABCD example: after feeding
// A,B,C,D with window 3, N_AB = 1.0, N_AC = 0.9, N_AD = 0.8.
func TestPaperLDAExample(t *testing.T) {
	g := New(Config{Window: 3, Decrement: 0.1})
	feedSeq(g, 0, 1, 2, 3) // A B C D
	cases := []struct {
		to   trace.FileID
		want float64
	}{{1, 1.0}, {2, 0.9}, {3, 0.8}}
	for _, c := range cases {
		if got := g.Weight(0, c.to); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("N_A%c = %v, want %v", 'B'+c.to-1, got, c.want)
		}
	}
	// Total outbound credit of A.
	if got := g.Total(0); math.Abs(got-2.7) > 1e-12 {
		t.Errorf("N_A = %v, want 2.7", got)
	}
}

func TestFrequencyNormalisation(t *testing.T) {
	g := New(Config{Window: 1})
	feedSeq(g, 0, 1, 0, 1, 0, 2)
	// A's immediate successors: B, B, C -> F(A,B)=2/3, F(A,C)=1/3.
	if got := g.Frequency(0, 1); math.Abs(got-2.0/3.0) > 1e-12 {
		t.Errorf("F(A,B) = %v, want 2/3", got)
	}
	if got := g.Frequency(0, 2); math.Abs(got-1.0/3.0) > 1e-12 {
		t.Errorf("F(A,C) = %v, want 1/3", got)
	}
}

func TestSelfLoopSkipped(t *testing.T) {
	g := New(DefaultConfig())
	feedSeq(g, 5, 5, 5)
	if g.Weight(5, 5) != 0 {
		t.Fatal("self-loop recorded")
	}
	if g.Total(5) != 0 {
		t.Fatal("self-loop credited total")
	}
}

func TestWindowSlide(t *testing.T) {
	g := New(Config{Window: 2, Decrement: 0.1})
	feedSeq(g, 0, 1, 2, 3)
	// With window 2, file 0 should credit only 1 (dist 1 -> 1.0) and 2
	// (dist 2 -> 0.9); 3 is out of the window.
	if got := g.Weight(0, 3); got != 0 {
		t.Fatalf("edge beyond window: %v", got)
	}
	if got := g.Weight(0, 2); math.Abs(got-0.9) > 1e-12 {
		t.Fatalf("N_0,2 = %v, want 0.9", got)
	}
}

func TestResetWindow(t *testing.T) {
	g := New(DefaultConfig())
	feedSeq(g, 0, 1)
	g.ResetWindow()
	g.Feed(2)
	if g.Weight(1, 2) != 0 || g.Weight(0, 2) != 0 {
		t.Fatal("credit leaked across ResetWindow")
	}
}

func TestSuccessorsSorted(t *testing.T) {
	g := New(Config{Window: 3, Decrement: 0.1})
	feedSeq(g, 0, 1, 2, 3)
	succ := g.Successors(0)
	if len(succ) != 3 {
		t.Fatalf("successors = %d, want 3", len(succ))
	}
	for i := 1; i < len(succ); i++ {
		if succ[i].Weight > succ[i-1].Weight {
			t.Fatalf("successors not sorted: %+v", succ)
		}
	}
	if succ[0].To != 1 {
		t.Fatalf("strongest successor = %d, want 1", succ[0].To)
	}
}

func TestSuccessorsDeterministicTieBreak(t *testing.T) {
	g := New(Config{Window: 1})
	feedSeq(g, 0, 2, 0, 1) // edges 0->2 and 0->1, equal weight 1.0
	succ := g.Successors(0)
	if succ[0].To != 1 || succ[1].To != 2 {
		t.Fatalf("tie not broken by id: %+v", succ)
	}
}

func TestUnknownNode(t *testing.T) {
	g := New(DefaultConfig())
	if g.Successors(99) != nil || g.Weight(99, 1) != 0 || g.Frequency(99, 1) != 0 || g.Total(99) != 0 {
		t.Fatal("unknown node should be empty")
	}
}

func TestMaxSuccessorsEviction(t *testing.T) {
	g := New(Config{Window: 1, MaxSuccessors: 2})
	// 0->1 strengthened twice, 0->2 once, then 0->3 once: 3 must evict 2 or
	// be dropped; table stays at 2 entries and keeps the strongest edge.
	feedSeq(g, 0, 1, 0, 1, 0, 2, 0, 3)
	succ := g.Successors(0)
	if len(succ) != 2 {
		t.Fatalf("edge table size = %d, want 2", len(succ))
	}
	if succ[0].To != 1 {
		t.Fatalf("strongest edge lost: %+v", succ)
	}
}

func TestPrune(t *testing.T) {
	g := New(Config{Window: 1})
	feedSeq(g, 0, 1, 0, 1, 0, 1, 0, 2) // F(0,1)=0.75 F(0,2)=0.25
	removed := g.Prune(0.5)
	if removed != 1 {
		t.Fatalf("removed = %d, want 1", removed)
	}
	if g.Weight(0, 2) != 0 {
		t.Fatal("weak edge survived prune")
	}
	if g.Weight(0, 1) == 0 {
		t.Fatal("strong edge pruned")
	}
}

func TestPruneDropsEmptyNodes(t *testing.T) {
	g := New(Config{Window: 1})
	feedSeq(g, 0, 1)
	g.Prune(2.0) // everything below threshold
	if g.Nodes() != 0 {
		t.Fatalf("nodes = %d, want 0", g.Nodes())
	}
}

func TestNodesEdgesCount(t *testing.T) {
	g := New(Config{Window: 1})
	feedSeq(g, 0, 1, 2, 0, 2)
	if g.Nodes() != 3 {
		t.Fatalf("nodes = %d, want 3", g.Nodes())
	}
	if g.Edges() != 4 { // 0->1, 1->2, 2->0, 0->2
		t.Fatalf("edges = %d, want 4", g.Edges())
	}
}

func TestMemoryBytesGrowsWithEdges(t *testing.T) {
	g := New(Config{Window: 1, MaxSuccessors: 0})
	m0 := g.MemoryBytes()
	for i := trace.FileID(0); i < 100; i++ {
		g.Feed(i)
	}
	if g.MemoryBytes() <= m0 {
		t.Fatal("MemoryBytes did not grow")
	}
}

// Property: Total always equals the sum of out-edge weights when no eviction
// happens (MaxSuccessors disabled, since eviction intentionally keeps the
// denominator as full history).
func TestTotalMatchesEdgeSumProperty(t *testing.T) {
	f := func(seed uint64, n uint8) bool {
		rng := rand.New(rand.NewPCG(seed, 1))
		g := New(Config{Window: 3, Decrement: 0.1, MaxSuccessors: 0})
		for i := 0; i < int(n); i++ {
			g.Feed(trace.FileID(rng.IntN(8)))
		}
		for id := trace.FileID(0); id < 8; id++ {
			var sum float64
			for _, e := range g.Successors(id) {
				sum += e.Weight
			}
			if math.Abs(sum-g.Total(id)) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// Property: frequencies out of a node sum to <= 1 (equal when no eviction).
func TestFrequencySumProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 2))
		g := New(Config{Window: 2, Decrement: 0.1, MaxSuccessors: 0})
		for i := 0; i < 200; i++ {
			g.Feed(trace.FileID(rng.IntN(12)))
		}
		for id := trace.FileID(0); id < 12; id++ {
			var sum float64
			for _, e := range g.Successors(id) {
				sum += g.Frequency(id, e.To)
			}
			if sum > 1+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestLockedConcurrent(t *testing.T) {
	l := NewLocked(DefaultConfig())
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(seed, 3))
			for i := 0; i < 500; i++ {
				if rng.IntN(2) == 0 {
					l.Feed(trace.FileID(rng.IntN(16)))
				} else {
					l.Successors(trace.FileID(rng.IntN(16)))
					l.Frequency(trace.FileID(rng.IntN(16)), trace.FileID(rng.IntN(16)))
				}
			}
		}(uint64(w))
	}
	wg.Wait()
}

func TestConfigNormalize(t *testing.T) {
	g := New(Config{Window: -1, Decrement: -5, MinAssign: -1})
	feedSeq(g, 0, 1)
	if g.Weight(0, 1) != 1.0 {
		t.Fatal("normalised config broken")
	}
}

func TestMinAssignFloor(t *testing.T) {
	g := New(Config{Window: 5, Decrement: 0.5, MinAssign: 0.2})
	feedSeq(g, 0, 1, 2, 3, 4)
	// Distance 4 would be 1 - 3*0.5 = -0.5, floored to 0.2.
	if got := g.Weight(0, 4); math.Abs(got-0.2) > 1e-12 {
		t.Fatalf("floored credit = %v, want 0.2", got)
	}
}
