// Package graph implements the directed, weighted correlation graph that
// FARMER's Stage-2 (Constructing) maintains, and that the Nexus / Probability
// Graph / SD Graph baselines also build on. Nodes are files; an edge A->B
// accumulates Linear-Decremented-Assignment (LDA) credit every time B appears
// within a lookahead window after A (paper §3.2.2): the immediate successor
// earns 1.0, the next 0.9, then 0.8, decreasing by Decrement per step and
// clamped at MinAssign.
package graph

import (
	"sort"
	"sync"

	"farmer/internal/trace"
)

// Config controls window counting.
type Config struct {
	// Window is the lookahead distance: how many following accesses receive
	// successor credit. The paper (following Nexus) uses small windows;
	// default 3, matching the ABCD example (B:1.0 C:0.9 D:0.8).
	Window int
	// Decrement is the per-step LDA reduction; default 0.1.
	Decrement float64
	// MinAssign floors the credit; default 0.
	MinAssign float64
	// MaxSuccessors bounds each node's out-edge table; 0 means unbounded.
	// When full, the weakest edge is evicted (keeps memory bounded on
	// adversarial traces).
	MaxSuccessors int
}

// DefaultConfig returns the paper-faithful parameters.
func DefaultConfig() Config {
	return Config{Window: 3, Decrement: 0.1, MinAssign: 0, MaxSuccessors: 64}
}

// Normalized returns the config with defaults filled in exactly as New
// would apply them. Sharded ingestion uses it so the dispatcher's window
// bookkeeping matches the graph's own.
func (c Config) Normalized() Config {
	c.normalize()
	return c
}

func (c *Config) normalize() {
	if c.Window <= 0 {
		c.Window = 3
	}
	if c.Decrement < 0 {
		c.Decrement = 0.1
	}
	if c.MinAssign < 0 {
		c.MinAssign = 0
	}
}

// Edge is one successor relationship.
type Edge struct {
	To     trace.FileID
	Weight float64 // accumulated LDA credit N_xy
}

type node struct {
	total float64 // N_x: accumulated outbound credit (denominator of F)
	edges map[trace.FileID]float64
}

// Graph is the correlation graph. Feed is single-writer; read methods may be
// called concurrently with each other but not with Feed unless the caller
// wraps the graph in Locked.
type Graph struct {
	cfg    Config
	nodes  map[trace.FileID]*node
	window []trace.FileID // most recent accesses, oldest first
}

// New creates an empty graph.
func New(cfg Config) *Graph {
	cfg.normalize()
	return &Graph{cfg: cfg, nodes: make(map[trace.FileID]*node)}
}

// Feed records one access: every file currently in the lookahead window gains
// an LDA-weighted edge to the new file.
func (g *Graph) Feed(f trace.FileID) {
	for i := len(g.window) - 1; i >= 0; i-- {
		pred := g.window[i]
		if pred == f {
			continue
		}
		dist := len(g.window) - i // 1 = immediate predecessor
		credit := 1.0 - float64(dist-1)*g.cfg.Decrement
		if credit < g.cfg.MinAssign {
			credit = g.cfg.MinAssign
		}
		if credit <= 0 {
			continue
		}
		g.addEdge(pred, f, credit)
	}
	g.window = append(g.window, f)
	if len(g.window) > g.cfg.Window {
		copy(g.window, g.window[1:])
		g.window = g.window[:g.cfg.Window]
	}
}

// ResetWindow clears the lookahead window without discarding accumulated
// weights. Callers use this at stream boundaries (e.g. when interleaving
// per-process sub-streams) so credit never crosses streams.
func (g *Graph) ResetWindow() { g.window = g.window[:0] }

// Add accumulates w credit on the edge from->to without touching the
// graph's own lookahead window. It is the windowless primitive behind Feed:
// sharded ingestion computes LDA credits against a globally ordered window
// and applies them to the shard that owns the edge's source node.
func (g *Graph) Add(from, to trace.FileID, w float64) {
	if w <= 0 || from == to {
		return
	}
	g.addEdge(from, to, w)
}

func (g *Graph) addEdge(from, to trace.FileID, w float64) {
	n := g.nodes[from]
	if n == nil {
		n = &node{edges: make(map[trace.FileID]float64, 4)}
		g.nodes[from] = n
	}
	n.total += w
	if _, exists := n.edges[to]; !exists && g.cfg.MaxSuccessors > 0 && len(n.edges) >= g.cfg.MaxSuccessors {
		// Evict the weakest edge to stay within budget. Ties break toward the
		// lowest file id so eviction — and therefore the whole mined state —
		// is deterministic regardless of map iteration order.
		var victim trace.FileID
		minW := -1.0
		for id, ew := range n.edges {
			if minW < 0 || ew < minW || (ew == minW && id < victim) {
				minW = ew
				victim = id
			}
		}
		if minW >= 0 && w <= minW {
			return // new edge weaker than the weakest; drop it
		}
		delete(n.edges, victim)
	}
	n.edges[to] += w
}

// Weight returns the accumulated credit N_xy for edge from->to.
func (g *Graph) Weight(from, to trace.FileID) float64 {
	n := g.nodes[from]
	if n == nil {
		return 0
	}
	return n.edges[to]
}

// Total returns N_x, the accumulated outbound credit of a node.
func (g *Graph) Total(from trace.FileID) float64 {
	n := g.nodes[from]
	if n == nil {
		return 0
	}
	return n.total
}

// Frequency returns F(from,to) = N_xy / N_x (paper §3.2.2), or 0 when the
// node is unknown.
func (g *Graph) Frequency(from, to trace.FileID) float64 {
	n := g.nodes[from]
	if n == nil || n.total == 0 {
		return 0
	}
	return n.edges[to] / n.total
}

// Successors returns all out-edges of a node sorted by decreasing weight
// (ties broken by ascending id for determinism).
func (g *Graph) Successors(from trace.FileID) []Edge {
	n := g.nodes[from]
	if n == nil {
		return nil
	}
	out := make([]Edge, 0, len(n.edges))
	for id, w := range n.edges {
		out = append(out, Edge{To: id, Weight: w})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Weight != out[j].Weight {
			return out[i].Weight > out[j].Weight
		}
		return out[i].To < out[j].To
	})
	return out
}

// Nodes reports the number of files with at least one out-edge.
func (g *Graph) Nodes() int { return len(g.nodes) }

// Edges reports the total directed edge count.
func (g *Graph) Edges() int {
	n := 0
	for _, nd := range g.nodes {
		n += len(nd.edges)
	}
	return n
}

// MemoryBytes estimates the resident size of the graph's correlation state:
// per-node overhead plus per-edge entries. Used for the Table-4 space
// overhead experiment.
func (g *Graph) MemoryBytes() int64 {
	const (
		nodeOverhead = 64 // map entry + node struct + edge map header
		edgeBytes    = 16 // fileID + float64 (+ padding amortised)
	)
	var b int64
	for _, nd := range g.nodes {
		b += nodeOverhead + int64(len(nd.edges))*edgeBytes
	}
	return b
}

// Export visits every node (unspecified order) with its exact accumulated
// state: the outbound total N_x — which includes credit from since-evicted
// edges, so it is NOT derivable from the surviving edge weights — and the
// out-edges sorted by ascending file id. Return false to stop early. This is
// the read half of graph persistence: a checkpoint that omitted the graph
// would make every post-restore Frequency() start from zero and silently
// diverge from a continuously-mined model.
func (g *Graph) Export(fn func(from trace.FileID, total float64, edges []Edge) bool) {
	for id, nd := range g.nodes {
		out := make([]Edge, 0, len(nd.edges))
		for to, w := range nd.edges {
			out = append(out, Edge{To: to, Weight: w})
		}
		sort.Slice(out, func(i, j int) bool { return out[i].To < out[j].To })
		if !fn(id, nd.total, out) {
			return
		}
	}
}

// ExportNode returns one node in Export's shape — total plus out-edges
// sorted by ascending file id — or ok=false when the file has no node. The
// incremental checkpoint path uses it to re-serialize only dirty nodes
// instead of walking the whole graph.
func (g *Graph) ExportNode(from trace.FileID) (total float64, edges []Edge, ok bool) {
	nd, ok := g.nodes[from]
	if !ok {
		return 0, nil, false
	}
	out := make([]Edge, 0, len(nd.edges))
	for to, w := range nd.edges {
		out = append(out, Edge{To: to, Weight: w})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].To < out[j].To })
	return nd.total, out, true
}

// RestoreNode installs one exported node exactly — total and edge weights as
// given, replacing any existing node for the same file.
func (g *Graph) RestoreNode(from trace.FileID, total float64, edges []Edge) {
	n := &node{total: total, edges: make(map[trace.FileID]float64, len(edges))}
	for _, e := range edges {
		n.edges[e.To] = e.Weight
	}
	g.nodes[from] = n
}

// Window returns a copy of the lookahead window, oldest first.
func (g *Graph) Window() []trace.FileID {
	return append([]trace.FileID(nil), g.window...)
}

// SetWindow replaces the lookahead window (trimmed to the configured width,
// keeping the most recent entries) — the restore half of Window, so a
// checkpointed miner resumes crediting exactly the predecessors a
// continuously-fed one would.
func (g *Graph) SetWindow(w []trace.FileID) {
	if len(w) > g.cfg.Window {
		w = w[len(w)-g.cfg.Window:]
	}
	g.window = append(g.window[:0], w...)
}

// Prune removes edges whose frequency F falls below minFreq, dropping nodes
// that become edgeless. It returns the number of edges removed.
func (g *Graph) Prune(minFreq float64) int {
	removed := 0
	for id, nd := range g.nodes {
		if nd.total <= 0 {
			delete(g.nodes, id)
			continue
		}
		for to, w := range nd.edges {
			if w/nd.total < minFreq {
				delete(nd.edges, to)
				removed++
			}
		}
		if len(nd.edges) == 0 {
			delete(g.nodes, id)
		}
	}
	return removed
}

// Locked wraps a Graph with a mutex for concurrent Feed/read mixing.
type Locked struct {
	mu sync.RWMutex
	g  *Graph
}

// NewLocked returns a concurrency-safe wrapper around a new graph.
func NewLocked(cfg Config) *Locked { return &Locked{g: New(cfg)} }

// Feed records an access under the write lock.
func (l *Locked) Feed(f trace.FileID) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.g.Feed(f)
}

// Successors reads out-edges under the read lock.
func (l *Locked) Successors(from trace.FileID) []Edge {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.g.Successors(from)
}

// Frequency reads F(from,to) under the read lock.
func (l *Locked) Frequency(from, to trace.FileID) float64 {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.g.Frequency(from, to)
}
