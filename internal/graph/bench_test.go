package graph

import (
	"math/rand/v2"
	"testing"

	"farmer/internal/trace"
)

// BenchmarkFeed measures LDA window counting.
func BenchmarkFeed(b *testing.B) {
	g := New(DefaultConfig())
	rng := rand.New(rand.NewPCG(1, 1))
	ids := make([]trace.FileID, 4096)
	for i := range ids {
		ids[i] = trace.FileID(rng.IntN(2048))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Feed(ids[i%len(ids)])
	}
}

// BenchmarkSuccessors measures sorted out-edge retrieval.
func BenchmarkSuccessors(b *testing.B) {
	g := New(DefaultConfig())
	rng := rand.New(rand.NewPCG(2, 2))
	for i := 0; i < 100000; i++ {
		g.Feed(trace.FileID(rng.IntN(2048)))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Successors(trace.FileID(i % 2048))
	}
}
