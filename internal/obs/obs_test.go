package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"sync"
	"testing"
)

func TestNilSafety(t *testing.T) {
	var c *Counter
	c.Inc()
	c.Add(7)
	if c.Load() != 0 {
		t.Fatal("nil counter loaded nonzero")
	}
	var h *Histogram
	h.Observe(42)
	var r *Registry
	if r.Counter("x") != nil {
		t.Fatal("nil registry returned a counter")
	}
	if r.Histogram("x") != nil {
		t.Fatal("nil registry returned a histogram")
	}
	r.GaugeFunc("x", func() float64 { return 1 })
	r.CounterFunc("x", func() float64 { return 1 })
	r.GaugeEach("x", func(EmitFunc) {})
	r.CounterEach("x", func(EmitFunc) {})
	if r.Snapshot() != nil {
		t.Fatal("nil registry snapshotted samples")
	}
}

func TestCounterAndDedupe(t *testing.T) {
	r := New()
	a := r.Counter("reqs", L("tenant", "alpha"))
	b := r.Counter("reqs", L("tenant", "alpha"))
	if a != b {
		t.Fatal("same name+labels returned distinct counters")
	}
	other := r.Counter("reqs", L("tenant", "beta"))
	if a == other {
		t.Fatal("distinct labels shared a counter")
	}
	a.Inc()
	a.Add(2)
	other.Inc()
	snap := r.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("snapshot has %d samples, want 2", len(snap))
	}
	if snap[0].Value != 3 || snap[1].Value != 1 {
		t.Fatalf("values %v %v, want 3 1", snap[0].Value, snap[1].Value)
	}
	if snap[0].Kind != "counter" {
		t.Fatalf("kind %q, want counter", snap[0].Kind)
	}
}

func TestGaugeAndCounterFunc(t *testing.T) {
	r := New()
	v := 11.0
	r.GaugeFunc("depth", func() float64 { return v })
	r.CounterFunc("pos", func() float64 { return 2 * v })
	snap := r.Snapshot()
	if len(snap) != 2 || snap[0].Value != 11 || snap[1].Value != 22 {
		t.Fatalf("snapshot %+v", snap)
	}
	v = 13
	snap = r.Snapshot()
	if snap[0].Value != 13 || snap[1].Value != 26 {
		t.Fatalf("funcs not re-sampled: %+v", snap)
	}
}

func TestEachEmitsSortedDynamicSeries(t *testing.T) {
	r := New()
	r.GaugeEach("mailbox", func(emit EmitFunc) {
		// Emitted unsorted on purpose: Snapshot must order by label.
		emit([]Label{L("shard", "1")}, 5)
		emit([]Label{L("shard", "0")}, 3)
	})
	snap := r.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("snapshot has %d samples, want 2", len(snap))
	}
	if snap[0].Labels[0].Value != "0" || snap[1].Labels[0].Value != "1" {
		t.Fatalf("each samples unsorted: %+v", snap)
	}
	if snap[0].Value != 3 || snap[1].Value != 5 {
		t.Fatalf("each values %v %v", snap[0].Value, snap[1].Value)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := New()
	h := r.Histogram("lat")
	for _, v := range []uint64{0, 1, 2, 3, 900} {
		h.Observe(v)
	}
	snap := r.Snapshot()
	if len(snap) != 1 {
		t.Fatalf("snapshot %+v", snap)
	}
	s := snap[0]
	if s.Count != 5 || s.Value != 906 {
		t.Fatalf("count %d sum %v, want 5 906", s.Count, s.Value)
	}
	// Bucket i counts values with bits.Len64(v) == i, so cumulatively:
	// le=1 holds {0}, le=2 adds {1}, le=4 adds {2,3}, the tail all five.
	want := map[float64]uint64{1: 1, 2: 2, 4: 4}
	for _, b := range s.Buckets {
		if w, ok := want[b.LE]; ok && b.Count != w {
			t.Fatalf("bucket le=%v count %d, want %d", b.LE, b.Count, w)
		}
	}
	last := s.Buckets[len(s.Buckets)-1]
	if last.Count != 5 {
		t.Fatalf("tail bucket count %d, want 5", last.Count)
	}
}

func TestWritePrometheusFormat(t *testing.T) {
	r := New()
	r.Counter("farmer_frames_total").Add(9)
	r.GaugeFunc("farmer_depth", func() float64 { return 1.5 }, L("shard", "0"))
	r.Histogram("farmer_ckpt_ms").Observe(3)
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE farmer_frames_total counter",
		"farmer_frames_total 9",
		"# TYPE farmer_depth gauge",
		`farmer_depth{shard="0"} 1.5`,
		"# TYPE farmer_ckpt_ms histogram",
		`farmer_ckpt_ms_bucket{le="4"} 1`,
		`farmer_ckpt_ms_bucket{le="+Inf"} 1`,
		"farmer_ckpt_ms_sum 3",
		"farmer_ckpt_ms_count 1",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestWritePrometheusEscapesLabels(t *testing.T) {
	r := New()
	r.Counter("m", L("k", "a\"b\\c\nd")).Inc()
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `m{k="a\"b\\c\nd"} 1`) {
		t.Fatalf("label not escaped:\n%s", b.String())
	}
}

func TestWriteJSONRoundTrips(t *testing.T) {
	r := New()
	r.Counter("c").Add(4)
	r.Histogram("h").Observe(10)
	var b strings.Builder
	if err := r.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	var parsed struct {
		Metrics []struct {
			Name    string  `json:"name"`
			Kind    string  `json:"kind"`
			Value   float64 `json:"value"`
			Buckets []struct {
				LE    string `json:"le"`
				Count uint64 `json:"count"`
			} `json:"buckets"`
		} `json:"metrics"`
	}
	if err := json.Unmarshal([]byte(b.String()), &parsed); err != nil {
		t.Fatalf("WriteJSON output did not parse: %v\n%s", err, b.String())
	}
	if len(parsed.Metrics) != 2 || parsed.Metrics[0].Value != 4 {
		t.Fatalf("parsed %+v", parsed)
	}
	hist := parsed.Metrics[1]
	if hist.Kind != "histogram" || len(hist.Buckets) == 0 {
		t.Fatalf("histogram sample %+v", hist)
	}
	if last := hist.Buckets[len(hist.Buckets)-1]; last.LE != "+Inf" || last.Count != 1 {
		t.Fatalf("tail bucket %+v", last)
	}
}

// TestConcurrentUpdatesAndScrapes hammers counters, a histogram, and an
// Each callback from many goroutines while scraping — the race detector's
// view of the live-scrape guarantee, plus an exact final count.
func TestConcurrentUpdatesAndScrapes(t *testing.T) {
	r := New()
	c := r.Counter("total")
	h := r.Histogram("obs")
	r.GaugeEach("dyn", func(emit EmitFunc) {
		emit([]Label{L("i", "0")}, float64(c.Load()))
	})
	const workers, each = 8, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				c.Inc()
				h.Observe(uint64(seed*i) % 1024)
			}
		}(w + 1)
	}
	stop := make(chan struct{})
	var scrapes sync.WaitGroup
	scrapes.Add(1)
	go func() {
		defer scrapes.Done()
		var last float64
		for {
			select {
			case <-stop:
				return
			default:
			}
			if err := r.WritePrometheus(io.Discard); err != nil {
				t.Error(err)
				return
			}
			for _, s := range r.Snapshot() {
				if s.Name == "total" {
					if s.Value < last {
						t.Errorf("counter went backwards: %v -> %v", last, s.Value)
						return
					}
					last = s.Value
				}
			}
		}
	}()
	wg.Wait()
	close(stop)
	scrapes.Wait()
	if got := c.Load(); got != workers*each {
		t.Fatalf("final count %d, want %d", got, workers*each)
	}
	var total uint64
	for _, s := range r.Snapshot() {
		if s.Name == "obs" {
			total = s.Count
		}
	}
	if total != workers*each {
		t.Fatalf("histogram count %d, want %d", total, workers*each)
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{KindCounter: "counter", KindGauge: "gauge", KindHistogram: "histogram", Kind(9): "unknown"} {
		if got := k.String(); got != want {
			t.Fatalf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
}

func TestFmtValue(t *testing.T) {
	cases := map[float64]string{3: "3", 1.5: "1.5", 0: "0"}
	for v, want := range cases {
		if got := fmtValue(v); got != want {
			t.Fatalf("fmtValue(%v) = %q, want %q", v, got, want)
		}
	}
}

func ExampleRegistry_WritePrometheus() {
	r := New()
	r.Counter("farmer_rpc_frames_total").Add(3)
	r.GaugeEach("farmer_shard_mailbox_depth", func(emit EmitFunc) {
		for shard, depth := range []int{2, 0} {
			emit([]Label{L("shard", fmt.Sprint(shard))}, float64(depth))
		}
	})
	r.WritePrometheus(&strings.Builder{}) // or an http.ResponseWriter
	var b strings.Builder
	r.WritePrometheus(&b)
	fmt.Print(b.String())
	// Output:
	// # TYPE farmer_rpc_frames_total counter
	// farmer_rpc_frames_total 3
	// # TYPE farmer_shard_mailbox_depth gauge
	// farmer_shard_mailbox_depth{shard="0"} 2
	// farmer_shard_mailbox_depth{shard="1"} 0
}
