// Package obs is the live-metrics registry behind farmerd's -metrics-addr
// endpoint and the MsgObs control-plane frame. It is built for hot paths:
// updating a metric is one atomic operation on a cache-line-padded counter
// (no locks, no allocation, no map lookups), while everything that costs
// anything — name/label resolution, gauge callbacks, snapshot encoding —
// happens only at registration or scrape time.
//
// Three shapes cover every layer:
//
//   - Counter / Histogram: monotone atomics the instrumented code holds a
//     pointer to (resolved once, at construction). Both are nil-safe — a
//     layer that was never attached to a registry updates a nil pointer,
//     which is a no-op — so instrumentation needs no "is obs enabled?"
//     branches beyond the predictable nil check.
//   - GaugeFunc / CounterFunc: callbacks sampled at scrape time for values
//     some layer already maintains (dispatcher position, model memory,
//     checkpoint age). They add literally zero work to the hot path.
//   - GaugeEach / CounterEach: callbacks that emit a dynamic label set per
//     scrape (per-shard mailbox depth, per-follower replication lag,
//     per-tenant feeds) without pre-registering one series per member.
//
// Snapshot flattens the registry into samples; WritePrometheus and
// WriteJSON render them in Prometheus text exposition format and a JSON
// variant respectively.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/bits"
	"sort"
	"strings"
	"sync"

	"farmer/internal/metrics"
)

// Kind distinguishes how a sample should be interpreted (and rendered in
// the Prometheus TYPE line).
type Kind uint8

// Metric kinds.
const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return "unknown"
}

// Label is one name=value pair attached to a metric.
type Label struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Counter is a monotone counter. The zero value is usable; a nil *Counter
// is a no-op, so instrumented layers work unattached. The underlying
// atomic is padded out to its own cache line: counters for adjacent shards
// or connections never false-share.
type Counter struct {
	c metrics.Counter
	_ [56]byte
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.c.Inc()
	}
}

// Add adds delta.
func (c *Counter) Add(delta uint64) {
	if c != nil {
		c.c.Add(delta)
	}
}

// Load returns the current value (0 on nil).
func (c *Counter) Load() uint64 {
	if c == nil {
		return 0
	}
	return c.c.Load()
}

// histBuckets is one bucket per power of two: bucket i counts observations
// v with bits.Len64(v) == i, i.e. v in [2^(i-1), 2^i). Bucket 0 holds v==0.
const histBuckets = 65

// Histogram counts observations into power-of-two buckets. Observe is one
// atomic add (bucket pick is two instructions); nil *Histogram is a no-op.
// Rendered as a cumulative Prometheus histogram with le="2^i" bounds.
type Histogram struct {
	buckets [histBuckets]metrics.Counter
	sum     metrics.Counter
}

// Observe records one value.
func (h *Histogram) Observe(v uint64) {
	if h == nil {
		return
	}
	h.buckets[bits.Len64(v)].Inc()
	h.sum.Add(v)
}

// BucketCount is one cumulative histogram bucket in a Sample.
type BucketCount struct {
	LE    float64 `json:"-"` // upper bound, +Inf for the last
	Count uint64  `json:"count"`
}

// MarshalJSON renders the bucket with its bound as a string ("+Inf" for the
// tail bucket) — encoding/json refuses infinite float64s.
func (b BucketCount) MarshalJSON() ([]byte, error) {
	return json.Marshal(struct {
		LE    string `json:"le"`
		Count uint64 `json:"count"`
	}{fmtValue(b.LE), b.Count})
}

// Sample is one flattened metric value from Snapshot.
type Sample struct {
	Name    string        `json:"name"`
	Labels  []Label       `json:"labels,omitempty"`
	Kind    string        `json:"kind"`
	Value   float64       `json:"value"`
	Buckets []BucketCount `json:"buckets,omitempty"` // histograms only
	Count   uint64        `json:"count,omitempty"`   // histograms only
}

// EmitFunc receives samples from an Each-style callback.
type EmitFunc func(labels []Label, value float64)

// metric is one registered entry. Exactly one of ctr/hist/fn/each is set.
type metric struct {
	name   string
	labels []Label
	kind   Kind
	ctr    *Counter
	hist   *Histogram
	fn     func() float64
	each   func(emit EmitFunc)
}

// Registry holds registered metrics. Registration takes a mutex (cold
// path, usually once at startup); metric updates never touch the registry
// at all — they go straight to the atomic the caller holds. Snapshot and
// the writers hold the mutex only to walk the registration list.
type Registry struct {
	mu    sync.Mutex
	order []*metric
	byKey map[string]*metric
}

// New returns an empty registry.
func New() *Registry {
	return &Registry{byKey: make(map[string]*metric)}
}

// key canonicalizes name+labels for get-or-create dedupe.
func key(name string, labels []Label) string {
	if len(labels) == 0 {
		return name
	}
	var b strings.Builder
	b.WriteString(name)
	for _, l := range labels {
		b.WriteByte('\xff')
		b.WriteString(l.Key)
		b.WriteByte('\xfe')
		b.WriteString(l.Value)
	}
	return b.String()
}

// register installs m under its key, or returns the existing entry with
// the same name+labels. Nil registry returns nil (callers then hold nil
// counters, which no-op).
func (r *Registry) register(m *metric) *metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	k := key(m.name, m.labels)
	if prev, ok := r.byKey[k]; ok {
		return prev
	}
	r.byKey[k] = m
	r.order = append(r.order, m)
	return m
}

// Counter returns the counter registered under name+labels, creating it on
// first use. Safe to call from a nil registry (returns nil, a no-op
// counter).
func (r *Registry) Counter(name string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	m := r.register(&metric{name: name, labels: labels, kind: KindCounter, ctr: &Counter{}})
	return m.ctr
}

// Histogram returns the histogram registered under name+labels, creating
// it on first use. Nil registry returns a nil no-op histogram.
func (r *Registry) Histogram(name string, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	m := r.register(&metric{name: name, labels: labels, kind: KindHistogram, hist: &Histogram{}})
	return m.hist
}

// GaugeFunc registers a gauge whose value is fn(), sampled at scrape time.
// fn must be safe for concurrent use and should only read atomics or take
// leaf locks — it runs on the scrape path while the hot path is live.
func (r *Registry) GaugeFunc(name string, fn func() float64, labels ...Label) {
	if r == nil {
		return
	}
	r.register(&metric{name: name, labels: labels, kind: KindGauge, fn: fn})
}

// CounterFunc registers a monotone value some layer already maintains
// (e.g. the dispatcher's record position), exposed as a counter without
// the layer double-counting into a second atomic.
func (r *Registry) CounterFunc(name string, fn func() float64, labels ...Label) {
	if r == nil {
		return
	}
	r.register(&metric{name: name, labels: labels, kind: KindCounter, fn: fn})
}

// GaugeEach registers a callback that emits a dynamic set of labeled gauge
// samples per scrape — one series per shard, follower, or tenant, without
// registering members up front.
func (r *Registry) GaugeEach(name string, fn func(emit EmitFunc)) {
	if r == nil {
		return
	}
	r.register(&metric{name: name, kind: KindGauge, each: fn})
}

// CounterEach is GaugeEach with counter semantics (every emitted value is
// monotone per label set).
func (r *Registry) CounterEach(name string, fn func(emit EmitFunc)) {
	if r == nil {
		return
	}
	r.register(&metric{name: name, kind: KindCounter, each: fn})
}

// Snapshot flattens every registered metric into samples, in registration
// order (Each-style metrics emit their samples sorted by label for
// deterministic output). Safe to call concurrently with hot-path updates;
// values are individually atomic (a counter read mid-Add returns either
// the old or new value, never a torn one).
func (r *Registry) Snapshot() []Sample {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	order := append([]*metric(nil), r.order...)
	r.mu.Unlock()
	var out []Sample
	for _, m := range order {
		switch {
		case m.ctr != nil:
			out = append(out, Sample{Name: m.name, Labels: m.labels, Kind: m.kind.String(), Value: float64(m.ctr.Load())})
		case m.hist != nil:
			out = append(out, histSample(m))
		case m.fn != nil:
			out = append(out, Sample{Name: m.name, Labels: m.labels, Kind: m.kind.String(), Value: m.fn()})
		case m.each != nil:
			var batch []Sample
			m.each(func(labels []Label, v float64) {
				ls := append([]Label(nil), labels...)
				batch = append(batch, Sample{Name: m.name, Labels: ls, Kind: m.kind.String(), Value: v})
			})
			sort.Slice(batch, func(i, j int) bool {
				return labelKey(batch[i].Labels) < labelKey(batch[j].Labels)
			})
			out = append(out, batch...)
		}
	}
	return out
}

func labelKey(ls []Label) string { return key("", ls) }

// histSample renders a histogram into cumulative buckets, collapsing empty
// leading/trailing buckets so output stays small.
func histSample(m *metric) Sample {
	var counts [histBuckets]uint64
	var total uint64
	for i := range m.hist.buckets {
		counts[i] = m.hist.buckets[i].Load()
		total += counts[i]
	}
	s := Sample{Name: m.name, Labels: m.labels, Kind: m.kind.String(), Count: total, Value: float64(m.hist.sum.Load())}
	var cum uint64
	for i, c := range counts {
		cum += c
		if c == 0 && cum != total {
			continue // skip empty buckets before the tail
		}
		le := math.Inf(1)
		if i < histBuckets-1 {
			le = math.Pow(2, float64(i))
		}
		s.Buckets = append(s.Buckets, BucketCount{LE: le, Count: cum})
		if cum == total {
			break
		}
	}
	if n := len(s.Buckets); n == 0 || !math.IsInf(s.Buckets[n-1].LE, 1) {
		s.Buckets = append(s.Buckets, BucketCount{LE: math.Inf(1), Count: total})
	}
	return s
}

// escapeLabel escapes a label value for the Prometheus text format.
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, `\"`+"\n") {
		return v
	}
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// writeLabels renders {k="v",...} (empty string when no labels).
func writeLabels(b *strings.Builder, labels []Label, extra ...Label) {
	all := append(append([]Label(nil), labels...), extra...)
	if len(all) == 0 {
		return
	}
	b.WriteByte('{')
	for i, l := range all {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
}

// fmtValue renders a float the way Prometheus expects (integers without a
// trailing .0, +Inf spelled that way).
func fmtValue(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

// WritePrometheus renders the current snapshot in Prometheus text
// exposition format (version 0.0.4).
func (r *Registry) WritePrometheus(w io.Writer) error {
	var b strings.Builder
	lastType := ""
	for _, s := range r.Snapshot() {
		if tl := s.Name + " " + s.Kind; tl != lastType {
			fmt.Fprintf(&b, "# TYPE %s %s\n", s.Name, s.Kind)
			lastType = tl
		}
		if s.Kind == KindHistogram.String() {
			for _, bc := range s.Buckets {
				b.WriteString(s.Name)
				b.WriteString("_bucket")
				writeLabels(&b, s.Labels, L("le", fmtValue(bc.LE)))
				fmt.Fprintf(&b, " %d\n", bc.Count)
			}
			b.WriteString(s.Name)
			b.WriteString("_sum")
			writeLabels(&b, s.Labels)
			fmt.Fprintf(&b, " %s\n", fmtValue(s.Value))
			b.WriteString(s.Name)
			b.WriteString("_count")
			writeLabels(&b, s.Labels)
			fmt.Fprintf(&b, " %d\n", s.Count)
			continue
		}
		b.WriteString(s.Name)
		writeLabels(&b, s.Labels)
		b.WriteByte(' ')
		b.WriteString(fmtValue(s.Value))
		b.WriteByte('\n')
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteJSON renders the current snapshot as a JSON object
// {"metrics":[...]} — same samples as the Prometheus view, for consumers
// that would rather not parse the text format.
func (r *Registry) WriteJSON(w io.Writer) error {
	snap := r.Snapshot()
	if snap == nil {
		snap = []Sample{}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(struct {
		Metrics []Sample `json:"metrics"`
	}{snap})
}
