package rpc

import (
	"context"
	"fmt"
	"sync"

	"farmer/internal/trace"
)

// AckWindow is the client-side counterpart of the replication stream's
// ack-window machinery (see Replicator): a bounded FIFO of in-flight
// MsgFeed/MsgFeedBatch frames whose acks are resolved asynchronously, so a
// consistency-sensitive caller streams records at pipeline throughput
// instead of paying one round trip per acked Feed.
//
// The window preserves exactly the acked-feed contract, just at a coarser
// barrier: every frame is started in order on one FIFO connection, the
// oldest in-flight ack is reaped whenever the window is full, and Flush
// blocks until every outstanding ack arrived. The first failed ack is
// STICKY: later Feeds fail fast without sending (nothing is silently
// re-sent past a failure), Flush drains what is still in flight and
// surfaces that first error, and the caller recovers exactly as it would
// from a failed synchronous Feed — the stream is in doubt from the first
// unacked frame, so it re-reads the server's Stats().Fed and resumes from
// there. Flush clears the sticky error once surfaced; the window is then
// ready for the resumed stream.
//
// An AckWindow is safe for concurrent use, but callers interleaving Feeds
// from several goroutines get no useful ordering guarantee between them —
// the intended shape is one streaming writer plus any number of readers on
// the same pipelined Client.
type AckWindow struct {
	c *Client
	n int

	mu      sync.Mutex
	q       []*pending // in-flight frames, oldest first
	err     error      // first failed ack, sticky until Flush surfaces it
	scratch []byte     // reused encode buffer (start copies the body)
}

// NewAckWindow creates a window keeping up to n frames in flight on this
// client's connection; n < 1 is normalized to 1 (every Feed reaps the
// previous frame's ack — still one round trip ahead of the synchronous
// path).
func (c *Client) NewAckWindow(n int) *AckWindow {
	if n < 1 {
		n = 1
	}
	return &AckWindow{c: c, n: n, q: make([]*pending, 0, n)}
}

// Window reports the configured in-flight bound.
func (w *AckWindow) Window() int { return w.n }

// InFlight reports how many frames currently await their ack.
func (w *AckWindow) InFlight() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.q)
}

// Feed streams one record: the frame is started immediately and its ack is
// resolved later, by a subsequent Feed once the window is full, or by
// Flush. The returned error is either this window's sticky first failure
// (nothing was sent) or a failure to start/reap — in both cases the stream
// is in doubt and the caller resumes from the server's Stats().Fed after
// Flush.
func (w *AckWindow) Feed(ctx context.Context, r *trace.Record) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return w.err
	}
	w.scratch = trace.AppendRecord(w.scratch[:0], r)
	return w.startLocked(ctx, MsgFeed, w.scratch)
}

// FeedBatch streams a record batch, split into frames below the batch body
// bound exactly like Client.FeedBatch; each frame occupies one window slot.
func (w *AckWindow) FeedBatch(ctx context.Context, recs []trace.Record) error {
	if len(recs) == 0 {
		return nil
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return w.err
	}
	lo, size := 0, 4
	for i := range recs {
		sz := trace.RecordFixedLen + len(recs[i].Path)
		if size+sz > maxBatchBody && i > lo {
			w.scratch = appendRecords(w.scratch[:0], recs[lo:i])
			if err := w.startLocked(ctx, MsgFeedBatch, w.scratch); err != nil {
				return err
			}
			lo, size = i, 4
		}
		size += sz
	}
	w.scratch = appendRecords(w.scratch[:0], recs[lo:])
	return w.startLocked(ctx, MsgFeedBatch, w.scratch)
}

// startLocked reaps the oldest ack while the window is full, then starts
// one frame. Reaping holds w.mu — a second feeder simply queues behind the
// wait, which is the same backpressure a full window applies anyway.
func (w *AckWindow) startLocked(ctx context.Context, typ MsgType, body []byte) error {
	for len(w.q) >= w.n {
		if err := w.reapLocked(ctx); err != nil {
			return err
		}
	}
	p, err := w.c.start(typ, body)
	if err != nil {
		w.err = err
		return err
	}
	w.q = append(w.q, p)
	return nil
}

// reapLocked waits for the oldest in-flight ack. Any failure — a refused
// frame, a dead connection, a ctx expiry that abandons the ack — poisons
// the window: once one ack is unaccounted for, everything after it is in
// doubt too.
func (w *AckWindow) reapLocked(ctx context.Context) error {
	p := w.q[0]
	w.q = w.q[1:]
	if _, err := w.c.wait(ctx, p); err != nil {
		w.err = fmt.Errorf("rpc: windowed ack: %w", err)
		return w.err
	}
	return nil
}

// Flush is the barrier: it blocks until every in-flight frame is acked and
// returns the window's first failure (the sticky error, or the first reap
// error the drain itself hits). All remaining acks are collected either
// way, so no response leaks into a later call's slot, and the sticky error
// is cleared once returned — after a non-nil Flush the caller resumes from
// the server's Stats().Fed and the window carries the resumed stream.
func (w *AckWindow) Flush(ctx context.Context) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	for len(w.q) > 0 {
		p := w.q[0]
		w.q = w.q[1:]
		if _, err := w.c.wait(ctx, p); err != nil && w.err == nil {
			w.err = fmt.Errorf("rpc: windowed ack: %w", err)
		}
	}
	err := w.err
	w.err = nil
	return err
}

// Err reports the window's sticky first failure without blocking: nil means
// every ack reaped so far succeeded (frames still in flight may yet fail —
// Flush is the barrier that accounts for them all).
func (w *AckWindow) Err() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.err
}
