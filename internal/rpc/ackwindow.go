package rpc

import (
	"context"
	"fmt"
	"sync"
	"time"

	"farmer/internal/trace"
)

// AckWindow is the client-side counterpart of the replication stream's
// ack-window machinery (see Replicator): a bounded FIFO of in-flight
// MsgFeed/MsgFeedBatch frames whose acks are resolved asynchronously, so a
// consistency-sensitive caller streams records at pipeline throughput
// instead of paying one round trip per acked Feed.
//
// The window preserves exactly the acked-feed contract, just at a coarser
// barrier: every frame is started in order on one FIFO connection, the
// oldest in-flight ack is reaped whenever the window is full, and Flush
// blocks until every outstanding ack arrived. The first failed ack is
// STICKY: later Feeds fail fast without sending (nothing is silently
// re-sent past a failure), Flush drains what is still in flight and
// surfaces that first error, and the caller recovers exactly as it would
// from a failed synchronous Feed — the stream is in doubt from the first
// unacked frame, so it re-reads the server's Stats().Fed and resumes from
// there. Flush clears the sticky error once surfaced; the window is then
// ready for the resumed stream.
//
// An AckWindow is safe for concurrent use, but callers interleaving Feeds
// from several goroutines get no useful ordering guarantee between them —
// the intended shape is one streaming writer plus any number of readers on
// the same pipelined Client.
type AckWindow struct {
	c *Client

	mu      sync.Mutex
	n       int
	q       []ackSlot // in-flight frames, oldest first
	err     error     // first failed ack, sticky until Flush surfaces it
	scratch []byte    // reused encode buffer (start copies the body)

	// Adaptive mode (NewAdaptiveAckWindow): the window grows and shrinks
	// between 1 and max from the observed reap RTT — additive increase while
	// acks come back near the smoothed RTT, multiplicative decrease when one
	// blows past it (the server or the pipe is backing up, and more frames
	// in flight only deepen the queue).
	adaptive bool
	max      int
	ewmaNS   float64 // smoothed reap RTT; 0 = no sample yet
}

// ackSlot is one in-flight frame plus when it was started — the reap RTT
// (start→ack, which includes time queued behind the window) is the adaptive
// window's control signal.
type ackSlot struct {
	p     *pending
	start time.Time
}

// adaptiveDefaultMax bounds NewAdaptiveAckWindow's growth when the caller
// gives no cap of its own — the measured knee of the windowed feed path
// (ROADMAP item 2: gains flatten past w32; 64 leaves headroom for slower
// links without letting a burst queue unbounded frames).
const adaptiveDefaultMax = 64

// NewAckWindow creates a window keeping up to n frames in flight on this
// client's connection; n < 1 is normalized to 1 (every Feed reaps the
// previous frame's ack — still one round trip ahead of the synchronous
// path).
func (c *Client) NewAckWindow(n int) *AckWindow {
	if n < 1 {
		n = 1
	}
	return &AckWindow{c: c, n: n, q: make([]ackSlot, 0, n)}
}

// NewAdaptiveAckWindow creates a self-tuning window: it starts at 1 frame
// in flight and grows toward max while reap RTTs stay near the smoothed
// baseline, halving when one spikes past it. max < 1 means the default cap.
func (c *Client) NewAdaptiveAckWindow(max int) *AckWindow {
	if max < 1 {
		max = adaptiveDefaultMax
	}
	return &AckWindow{c: c, n: 1, adaptive: true, max: max, q: make([]ackSlot, 0, max)}
}

// Window reports the current in-flight bound (fixed, or the adaptive
// window's present size).
func (w *AckWindow) Window() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.n
}

// InFlight reports how many frames currently await their ack.
func (w *AckWindow) InFlight() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.q)
}

// Feed streams one record: the frame is started immediately and its ack is
// resolved later, by a subsequent Feed once the window is full, or by
// Flush. The returned error is either this window's sticky first failure
// (nothing was sent) or a failure to start/reap — in both cases the stream
// is in doubt and the caller resumes from the server's Stats().Fed after
// Flush.
func (w *AckWindow) Feed(ctx context.Context, r *trace.Record) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return w.err
	}
	w.scratch = trace.AppendRecord(w.scratch[:0], r)
	return w.startLocked(ctx, MsgFeed, w.scratch)
}

// FeedBatch streams a record batch, split into frames below the batch body
// bound exactly like Client.FeedBatch; each frame occupies one window slot.
func (w *AckWindow) FeedBatch(ctx context.Context, recs []trace.Record) error {
	if len(recs) == 0 {
		return nil
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return w.err
	}
	lo, size := 0, 4
	for i := range recs {
		sz := trace.RecordFixedLen + len(recs[i].Path)
		if size+sz > maxBatchBody && i > lo {
			w.scratch = appendRecords(w.scratch[:0], recs[lo:i])
			if err := w.startLocked(ctx, MsgFeedBatch, w.scratch); err != nil {
				return err
			}
			lo, size = i, 4
		}
		size += sz
	}
	w.scratch = appendRecords(w.scratch[:0], recs[lo:])
	return w.startLocked(ctx, MsgFeedBatch, w.scratch)
}

// startLocked reaps the oldest ack while the window is full, then starts
// one frame. Reaping holds w.mu — a second feeder simply queues behind the
// wait, which is the same backpressure a full window applies anyway.
func (w *AckWindow) startLocked(ctx context.Context, typ MsgType, body []byte) error {
	for len(w.q) >= w.n {
		if err := w.reapLocked(ctx); err != nil {
			return err
		}
	}
	p, err := w.c.start(typ, body)
	if err != nil {
		w.err = err
		return err
	}
	var start time.Time
	if w.adaptive {
		start = time.Now()
	}
	w.q = append(w.q, ackSlot{p: p, start: start})
	return nil
}

// reapLocked waits for the oldest in-flight ack. Any failure — a refused
// frame, a dead connection, a ctx expiry that abandons the ack — poisons
// the window: once one ack is unaccounted for, everything after it is in
// doubt too.
func (w *AckWindow) reapLocked(ctx context.Context) error {
	s := w.q[0]
	w.q = w.q[1:]
	if _, err := w.c.wait(ctx, s.p); err != nil {
		w.err = fmt.Errorf("rpc: windowed ack: %w", err)
		return w.err
	}
	if w.adaptive {
		w.adapt(time.Since(s.start))
	}
	return nil
}

// adapt is the AIMD rule, run per reaped ack under w.mu: an RTT within 2×
// the smoothed baseline grows the window by one (toward max); an RTT past
// 4× halves it and restarts the baseline at the spike, so a congested
// server is not judged against its idle latency forever.
func (w *AckWindow) adapt(rtt time.Duration) {
	ns := float64(rtt)
	if w.ewmaNS == 0 {
		w.ewmaNS = ns
		if w.n < w.max {
			w.n++
		}
		return
	}
	switch {
	case ns > 4*w.ewmaNS:
		w.n = max(1, w.n/2)
		w.ewmaNS = ns
		return
	case ns <= 2*w.ewmaNS && w.n < w.max:
		w.n++
	}
	w.ewmaNS += 0.2 * (ns - w.ewmaNS)
}

// Flush is the barrier: it blocks until every in-flight frame is acked and
// returns the window's first failure (the sticky error, or the first reap
// error the drain itself hits). All remaining acks are collected either
// way, so no response leaks into a later call's slot, and the sticky error
// is cleared once returned — after a non-nil Flush the caller resumes from
// the server's Stats().Fed and the window carries the resumed stream.
func (w *AckWindow) Flush(ctx context.Context) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	for len(w.q) > 0 {
		s := w.q[0]
		w.q = w.q[1:]
		if _, err := w.c.wait(ctx, s.p); err != nil && w.err == nil {
			w.err = fmt.Errorf("rpc: windowed ack: %w", err)
		}
	}
	err := w.err
	w.err = nil
	return err
}

// Err reports the window's sticky first failure without blocking: nil means
// every ack reaped so far succeeded (frames still in flight may yet fail —
// Flush is the barrier that accounts for them all).
func (w *AckWindow) Err() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.err
}
