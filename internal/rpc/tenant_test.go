package rpc

// Wire-level tests for the multi-tenant protocol surface: version-skew
// reporting in both directions, the auth gates in front of dispatch, the
// per-token tenant grant, and tenant-id routing through a Resolver.

import (
	"bufio"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"strings"
	"testing"
	"time"

	"farmer/internal/trace"
)

// mapResolver is the test Resolver: a fixed tenant -> backend map.
type mapResolver map[string]*minerBackend

func (m mapResolver) BackendFor(tenant string) (Backend, error) {
	b, ok := m[tenant]
	if !ok {
		return nil, fmt.Errorf("unknown tenant %q", tenant)
	}
	return b, nil
}

func (m mapResolver) Tenants() []TenantInfo {
	var infos []TenantInfo
	for name, b := range m {
		infos = append(infos, TenantInfo{Name: name, Stats: b.Stats()})
	}
	return infos
}

func startResolverServer(t *testing.T, r Resolver, opts ServerOptions) (string, func()) {
	t.Helper()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewResolverServer(r, opts)
	done := make(chan error, 1)
	go func() { done <- srv.Serve(lis) }()
	return lis.Addr().String(), func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
		if err := <-done; err != nil {
			t.Errorf("serve: %v", err)
		}
	}
}

// TestTenantClientAgainstOldServer: a tenant-aware client dialing a server
// that predates the tenant protocol gets ErrBadVersion with an upgrade
// hint, not a bare disconnect. The fake old server does what a v1 farmerd
// did with a frame whose version byte it does not know: hang up without
// answering.
func TestTenantClientAgainstOldServer(t *testing.T) {
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer lis.Close()
	go func() {
		for {
			conn, err := lis.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				// Read the client's hello, "fail to parse" it, hang up —
				// the v1 server's reaction to an unknown version byte.
				io.ReadAtLeast(c, make([]byte, 5), 5)
				c.Close()
			}(conn)
		}
	}()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	_, err = DialWith(ctx, lis.Addr().String(), DialOptions{Tenant: "alpha"})
	if !errors.Is(err, ErrBadVersion) {
		t.Fatalf("dial against old server: err %v, want ErrBadVersion", err)
	}
	if !strings.Contains(err.Error(), "upgrade the server") {
		t.Fatalf("error carries no upgrade hint: %v", err)
	}
}

// TestOldClientAgainstNewServer: the reverse skew. A v1 frame (version
// byte 1) is answered with one MsgErr frame naming CodeBadVersion and the
// upgrade, then the connection drops — the most an old decoder can be
// given.
func TestOldClientAgainstNewServer(t *testing.T) {
	addr, _, stop := startServer(t, newMinerBackend(1))
	defer stop()

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// A v1-shaped ping: u32 len, version=1, type, u64 id — no tenant byte.
	old := binary.LittleEndian.AppendUint32(nil, 10)
	old = append(old, 1, byte(MsgPing))
	old = binary.LittleEndian.AppendUint64(old, 7)
	if _, err := conn.Write(old); err != nil {
		t.Fatal(err)
	}

	f, err := ReadFrame(bufio.NewReader(conn))
	if err != nil {
		t.Fatalf("no version-mismatch answer before hangup: %v", err)
	}
	if f.Type != MsgErr {
		t.Fatalf("answer type %d, want MsgErr", f.Type)
	}
	werr := decodeWireError(f.Body)
	if !errors.Is(werr, ErrBadVersion) {
		t.Fatalf("answer error %v, want ErrBadVersion", werr)
	}
	if !strings.Contains(werr.Error(), "upgrade the client") {
		t.Fatalf("answer carries no upgrade hint: %v", werr)
	}
	// And then the hangup.
	if _, err := ReadFrame(bufio.NewReader(conn)); err == nil {
		t.Fatal("old-version connection was kept open")
	}
}

// TestAuthGates exercises the hello/auth gate order: unknown tokens fail
// the dial, out-of-grant tenant bindings fail the dial, unauthenticated
// frames are refused before dispatch, and a granted token passes.
func TestAuthGates(t *testing.T) {
	r := mapResolver{"": newMinerBackend(1), "a": newMinerBackend(1), "b": newMinerBackend(1)}
	addr, stop := startResolverServer(t, r, ServerOptions{AuthTokens: map[string][]string{
		"root":  {"*"},
		"tok-a": {"a"},
	}})
	defer stop()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	if _, err := DialWith(ctx, addr, DialOptions{Token: "nope"}); !errors.Is(err, ErrUnauthorized) {
		t.Fatalf("unknown token: err %v, want ErrUnauthorized", err)
	}
	if _, err := DialWith(ctx, addr, DialOptions{Tenant: "b", Token: "tok-a"}); !errors.Is(err, ErrUnauthorized) {
		t.Fatalf("out-of-grant binding: err %v, want ErrUnauthorized", err)
	}

	// No hello at all: every frame type is refused before dispatch.
	anon := dialT(t, addr)
	defer anon.Close()
	if _, err := anon.Ping(ctx); !errors.Is(err, ErrUnauthorized) {
		t.Fatalf("unauthenticated ping: err %v, want ErrUnauthorized", err)
	}
	if _, err := anon.Stats(ctx); !errors.Is(err, ErrUnauthorized) {
		t.Fatalf("unauthenticated stats: err %v, want ErrUnauthorized", err)
	}

	// Granted: tok-a on tenant a works end to end.
	ca, err := DialWith(ctx, addr, DialOptions{Tenant: "a", Token: "tok-a"})
	if err != nil {
		t.Fatal(err)
	}
	defer ca.Close()
	if _, err := ca.Ping(ctx); err != nil {
		t.Fatal(err)
	}
	rec := trace.Record{File: 1, Path: "/x"}
	if err := ca.Feed(ctx, &rec); err != nil {
		t.Fatal(err)
	}
	st, err := ca.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Fed != 1 {
		t.Fatalf("tenant a fed %d, want 1", st.Fed)
	}
	// The feed landed on tenant a's backend, nobody else's.
	if got := r["a"].Stats().Fed; got != 1 {
		t.Fatalf("backend a fed %d, want 1", got)
	}
	if got := r[""].Stats().Fed + r["b"].Stats().Fed; got != 0 {
		t.Fatalf("other backends fed %d, want 0", got)
	}
}

// TestTenantsListingFiltered: MsgTenants shows a restricted token only its
// granted tenants; a "*" token sees everything.
func TestTenantsListingFiltered(t *testing.T) {
	r := mapResolver{"": newMinerBackend(1), "a": newMinerBackend(1), "b": newMinerBackend(1)}
	addr, stop := startResolverServer(t, r, ServerOptions{AuthTokens: map[string][]string{
		"root":  {"*"},
		"tok-a": {"a"},
	}})
	defer stop()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	ca, err := DialWith(ctx, addr, DialOptions{Token: "tok-a"})
	if err != nil {
		t.Fatal(err)
	}
	defer ca.Close()
	infos, err := ca.Tenants(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 1 || infos[0].Name != "a" {
		t.Fatalf("restricted listing %+v, want exactly tenant a", infos)
	}

	root, err := DialWith(ctx, addr, DialOptions{Token: "root"})
	if err != nil {
		t.Fatal(err)
	}
	defer root.Close()
	infos, err = root.Tenants(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 3 {
		t.Fatalf("root listing has %d tenants, want 3: %+v", len(infos), infos)
	}
}

// TestInvalidTenantRefused: a malformed tenant id in a frame is refused at
// the gate (the dialing client validates too, so this goes through a raw
// frame).
func TestInvalidTenantRefused(t *testing.T) {
	addr, _, stop := startServer(t, newMinerBackend(1))
	defer stop()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write(AppendFrameTenant(nil, MsgPing, 3, ".hidden", nil)); err != nil {
		t.Fatal(err)
	}
	f, err := ReadFrame(bufio.NewReader(conn))
	if err != nil {
		t.Fatal(err)
	}
	if f.Type != MsgErr || f.ID != 3 {
		t.Fatalf("got frame %+v, want MsgErr id 3", f)
	}
	if werr := decodeWireError(f.Body); !strings.Contains(werr.Error(), "tenant") {
		t.Fatalf("refusal does not name the tenant id: %v", werr)
	}
}
