package rpc

// Wire-level MsgObs tests: the single-tenant fallback row, grant filtering,
// the unsupported-resolver error, the server's wire-counter registration,
// and the replicator's per-follower lag sampling.

import (
	"context"
	"sort"
	"strings"
	"testing"

	"farmer/internal/obs"
	"farmer/internal/trace"
)

// obsMapResolver is mapResolver plus an ObsResolver implementation built
// from each backend's stats.
type obsMapResolver struct{ mapResolver }

func (m obsMapResolver) TenantObs(topK int) []TenantObs {
	var rows []TenantObs
	for name, b := range m.mapResolver {
		st := b.Stats()
		rows = append(rows, TenantObs{Name: name, Fed: st.Fed})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].Name < rows[j].Name })
	return rows
}

// TestObsSingleTenantFallback: NewServer wraps a plain Backend (no
// TenantObs method) in singleResolver, whose fallback row is synthesized
// from Stats — plus the wire layer's feed-frame stamping.
func TestObsSingleTenantFallback(t *testing.T) {
	b := newMinerBackend(2)
	addr, _, stop := startServer(t, b)
	defer stop()
	c := dialT(t, addr)
	defer c.Close()
	ctx := context.Background()

	recs := []trace.Record{{File: 1, Path: "/a"}, {File: 2, Path: "/b"}, {File: 3, Path: "/c"}}
	if err := c.FeedBatch(ctx, recs); err != nil {
		t.Fatal(err)
	}
	rows, err := c.Obs(ctx, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0].Name != "" {
		t.Fatalf("rows %+v, want one default-tenant row", rows)
	}
	if rows[0].Fed != 3 || rows[0].FeedRecords != 3 || rows[0].FeedFrames != 1 {
		t.Fatalf("Fed=%d FeedRecords=%d FeedFrames=%d, want 3/3/1",
			rows[0].Fed, rows[0].FeedRecords, rows[0].FeedFrames)
	}
	if rows[0].MemoryBytes == 0 {
		t.Fatal("fallback row carried no footprint")
	}
}

// TestObsGrantFilteredAndCounters: a resolver-level TenantObs is filtered
// to the token's grant, and ServerOptions.Obs registers the wire counters
// (per-tenant families labeled with "default" for the empty tenant).
func TestObsGrantFilteredAndCounters(t *testing.T) {
	res := obsMapResolver{mapResolver{
		"":  newMinerBackend(1),
		"a": newMinerBackend(1),
		"b": newMinerBackend(1),
	}}
	reg := obs.New()
	addr, stop := startResolverServer(t, res, ServerOptions{
		Obs: reg,
		AuthTokens: map[string][]string{
			"root": {"*"},
			"only": {"a"},
		},
	})
	defer stop()
	ctx := context.Background()

	feed := func(tenant, token string, n int) {
		c, err := DialWith(ctx, addr, DialOptions{Tenant: tenant, Token: token})
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		recs := make([]trace.Record, n)
		for i := range recs {
			recs[i] = trace.Record{File: trace.FileID(i + 1), Path: "/x"}
		}
		if err := c.FeedBatch(ctx, recs); err != nil {
			t.Fatal(err)
		}
	}
	feed("", "root", 2)
	feed("a", "only", 4)

	root, err := DialWith(ctx, addr, DialOptions{Token: "root"})
	if err != nil {
		t.Fatal(err)
	}
	defer root.Close()
	rows, err := root.Obs(ctx, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 || rows[0].Name != "" || rows[1].Name != "a" || rows[2].Name != "b" {
		t.Fatalf("root sees %+v, want all three tenants sorted", rows)
	}
	if rows[1].FeedRecords != 4 || rows[2].FeedRecords != 0 {
		t.Fatalf("stamped FeedRecords a=%d b=%d, want 4 and 0", rows[1].FeedRecords, rows[2].FeedRecords)
	}

	restricted, err := DialWith(ctx, addr, DialOptions{Tenant: "a", Token: "only"})
	if err != nil {
		t.Fatal(err)
	}
	defer restricted.Close()
	rows, err = restricted.Obs(ctx, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0].Name != "a" {
		t.Fatalf("restricted token sees %+v, want only tenant a", rows)
	}

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	scrape := sb.String()
	for _, series := range []string{
		`farmer_rpc_tenant_feed_records_total{tenant="default"} 2`,
		`farmer_rpc_tenant_feed_records_total{tenant="a"} 4`,
		`farmer_rpc_tenant_feed_frames_total{tenant="a"} 1`,
		"farmer_rpc_connections_total",
		"farmer_rpc_bytes_read_total",
	} {
		if !strings.Contains(scrape, series) {
			t.Fatalf("scrape missing %q:\n%s", series, scrape)
		}
	}
}

// TestObsUnsupportedResolver: a resolver without TenantObs answers MsgObs
// with a typed application error, not a hangup.
func TestObsUnsupportedResolver(t *testing.T) {
	addr, stop := startResolverServer(t, mapResolver{"": newMinerBackend(1)}, ServerOptions{})
	defer stop()
	c := dialT(t, addr)
	defer c.Close()
	_, err := c.Obs(context.Background(), 1)
	if err == nil || !strings.Contains(err.Error(), "observability") {
		t.Fatalf("err = %v, want an unsupported-observability error", err)
	}
	// The connection survives the application error.
	if _, err := c.Ping(context.Background()); err != nil {
		t.Fatalf("ping after obs error: %v", err)
	}
}

// TestReplicatorLags: after a fully-acked ingest the attached follower's
// sampled lag is zero and its acked position equals the stream position.
func TestReplicatorLags(t *testing.T) {
	rec := &replicaRecorder{minerBackend: newMinerBackend(1)}
	addr, _, stop := startServer(t, rec)
	defer stop()

	r := NewReplicator(0, 0, nil)
	defer r.Close()
	if err := r.Attach(context.Background(), addr, func() (CatchupCut, error) {
		return CatchupCut{FileCount: 1, Snapshot: []byte("snap")}, nil
	}); err != nil {
		t.Fatal(err)
	}
	if lags := r.Lags(); len(lags) != 1 || lags[0].Lag != 0 {
		t.Fatalf("fresh attach lags %+v, want one caught-up follower", lags)
	}
	recs := []trace.Record{{File: 1, Path: "/p"}, {File: 2, Path: "/p"}}
	if err := r.Ingest(context.Background(), recs, func() error { return nil }); err != nil {
		t.Fatal(err)
	}
	lags := r.Lags()
	if len(lags) != 1 {
		t.Fatalf("lags %+v, want one follower", lags)
	}
	if lags[0].Addr != addr || lags[0].Acked != 2 || lags[0].Lag != 0 {
		t.Fatalf("lags[0] = %+v, want addr=%s acked=2 lag=0", lags[0], addr)
	}
}
