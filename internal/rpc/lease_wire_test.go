package rpc

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"farmer/internal/tracegen"
)

func TestLeaseInfoCodec(t *testing.T) {
	cases := []LeaseInfo{
		{},
		{Epoch: 1, Leader: "127.0.0.1:4727", TTLMS: 2000},
		{Epoch: 7, Leader: "b", TTLMS: 1, Self: true},
		{Epoch: 1 << 60, Leader: "10.0.0.9:9999", TTLMS: 500, Transfer: true},
		{Epoch: 3, Leader: "x", Self: true, Transfer: true},
	}
	for _, want := range cases {
		got, err := decodeLeaseInfo(appendLeaseInfo(nil, &want))
		if err != nil {
			t.Fatalf("%+v: %v", want, err)
		}
		if got != want {
			t.Fatalf("round trip %+v != %+v", got, want)
		}
	}

	body := appendLeaseInfo(nil, &LeaseInfo{Epoch: 2, Leader: "a"})
	if _, err := decodeLeaseInfo(body[:len(body)-1]); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := decodeLeaseInfo(body[:4]); err == nil {
		t.Fatal("truncated header accepted")
	}
	bad := append([]byte(nil), body...)
	bad[16] |= 1 << 7
	if _, err := decodeLeaseInfo(bad); err == nil {
		t.Fatal("unknown flag bits accepted")
	}
}

func TestLeaseReqCodec(t *testing.T) {
	for _, c := range []struct {
		epoch uint64
		cand  string
	}{{0, ""}, {1, "127.0.0.1:1"}, {1 << 40, "candidate.example:4727"}} {
		epoch, cand, err := decodeLeaseReq(appendLeaseReq(nil, c.epoch, c.cand))
		if err != nil {
			t.Fatal(err)
		}
		if epoch != c.epoch || cand != c.cand {
			t.Fatalf("round trip (%d, %q) != (%d, %q)", epoch, cand, c.epoch, c.cand)
		}
	}
	body := appendLeaseReq(nil, 5, "abc")
	if _, _, err := decodeLeaseReq(body[:len(body)-1]); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, _, err := decodeLeaseReq(body[:3]); err == nil {
		t.Fatal("truncated header accepted")
	}
}

func TestHandoffReqCodec(t *testing.T) {
	target, err := decodeHandoffReq(appendHandoffReq(nil, "10.1.2.3:4727"))
	if err != nil {
		t.Fatal(err)
	}
	if target != "10.1.2.3:4727" {
		t.Fatalf("round trip %q", target)
	}
	if _, err := decodeHandoffReq(appendHandoffReq(nil, "")); err == nil {
		t.Fatal("empty target accepted")
	}
	body := appendHandoffReq(nil, "x:1")
	if _, err := decodeHandoffReq(body[:len(body)-1]); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := decodeHandoffReq(body[:1]); err == nil {
		t.Fatal("truncated header accepted")
	}
}

func TestWireStatsCodec(t *testing.T) {
	for _, want := range [][]WireStat{
		nil,
		{{Type: MsgPing, Count: 3, SumNS: 12345}},
		{{Type: MsgFeed, Count: 1 << 40, SumNS: 1 << 50}, {Type: MsgLeaseGrant, Count: 1, SumNS: 9}},
	} {
		got, err := decodeWireStats(appendWireStats(nil, want))
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("round trip %d stats, want %d", len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("stat %d: %+v != %+v", i, got[i], want[i])
			}
		}
	}
	body := appendWireStats(nil, []WireStat{{Type: MsgPing, Count: 1, SumNS: 2}})
	if _, err := decodeWireStats(body[:len(body)-1]); err == nil {
		t.Fatal("truncated stats accepted")
	}
	if _, err := decodeWireStats(append(body, 0)); err == nil {
		t.Fatal("trailing bytes accepted")
	}
}

// leaseTestBackend bolts a scriptable lease/handoff surface onto the plain
// miner backend so the frame plumbing can be tested without a real Holder.
type leaseTestBackend struct {
	*minerBackend
	mu      sync.Mutex
	info    LeaseInfo
	voteErr error
	votes   []string
	grants  []LeaseInfo
	targets []string
}

func (b *leaseTestBackend) LeaseStatus() LeaseInfo {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.info
}

func (b *leaseTestBackend) LeaseVote(epoch uint64, candidate string) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.voteErr != nil {
		return b.voteErr
	}
	b.votes = append(b.votes, fmt.Sprintf("%d/%s", epoch, candidate))
	return nil
}

func (b *leaseTestBackend) LeaseGrant(conn uint64, info LeaseInfo) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if conn == 0 {
		return errors.New("grant delivered without a connection id")
	}
	b.grants = append(b.grants, info)
	return nil
}

func (b *leaseTestBackend) Handoff(target string) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.targets = append(b.targets, target)
	return nil
}

// TestLeaseFramesEndToEnd walks every lease frame through a real client and
// server: status queries return the backend's term verbatim (flags included),
// votes and grants deliver their arguments, handoff delivers its target, and
// a stale-epoch refusal travels typed.
func TestLeaseFramesEndToEnd(t *testing.T) {
	b := &leaseTestBackend{
		minerBackend: newMinerBackend(1),
		info:         LeaseInfo{Epoch: 42, Leader: "10.0.0.1:4727", TTLMS: 1500, Self: true},
	}
	addr, _, stop := startServer(t, b)
	defer stop()
	c := dialT(t, addr)
	defer c.Close()
	ctx := context.Background()

	info, err := c.LeaseStatus(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if info != b.info {
		t.Fatalf("status %+v, want %+v", info, b.info)
	}

	if err := c.LeaseVote(ctx, 43, "10.0.0.2:4727"); err != nil {
		t.Fatal(err)
	}
	grant := LeaseInfo{Epoch: 43, Leader: "10.0.0.2:4727", TTLMS: 1500, Transfer: true}
	if err := c.LeaseGrant(ctx, grant); err != nil {
		t.Fatal(err)
	}
	if err := c.Handoff(ctx, "10.0.0.3:4727"); err != nil {
		t.Fatal(err)
	}

	b.mu.Lock()
	votes, grants, targets := b.votes, b.grants, b.targets
	b.mu.Unlock()
	if len(votes) != 1 || votes[0] != "43/10.0.0.2:4727" {
		t.Fatalf("votes %v", votes)
	}
	if len(grants) != 1 || grants[0] != grant {
		t.Fatalf("grants %v, want %+v", grants, grant)
	}
	if len(targets) != 1 || targets[0] != "10.0.0.3:4727" {
		t.Fatalf("targets %v", targets)
	}

	// A refused vote travels as CodeStaleEpoch and unwraps typed.
	b.mu.Lock()
	b.voteErr = fmt.Errorf("vote refused: %w", ErrStaleEpoch)
	b.mu.Unlock()
	err = c.LeaseVote(ctx, 41, "10.0.0.2:4727")
	if !errors.Is(err, ErrStaleEpoch) {
		t.Fatalf("refused vote error %v is not ErrStaleEpoch", err)
	}

	// The connection survives the refusal.
	if _, err := c.Ping(ctx); err != nil {
		t.Fatalf("connection dead after refused vote: %v", err)
	}
}

// TestLeaseFramesUnsupported: lease and handoff frames against a backend
// without the surface are refused frame-by-frame, not by dropping the
// connection — a mixed-version cluster stays conversational.
func TestLeaseFramesUnsupported(t *testing.T) {
	addr, _, stop := startServer(t, newMinerBackend(1))
	defer stop()
	c := dialT(t, addr)
	defer c.Close()
	ctx := context.Background()

	if _, err := c.LeaseStatus(ctx); err == nil {
		t.Fatal("lease status served by a lease-less backend")
	}
	if err := c.LeaseVote(ctx, 2, "x:1"); err == nil {
		t.Fatal("vote served by a lease-less backend")
	}
	if err := c.Handoff(ctx, "x:1"); err == nil {
		t.Fatal("handoff served by a lease-less backend")
	}
	if _, err := c.Ping(ctx); err != nil {
		t.Fatalf("connection dead after unsupported frames: %v", err)
	}
}

// TestWireStatsEndToEnd: the server's per-message latency accounting is
// queryable over the wire and counts what actually ran.
func TestWireStatsEndToEnd(t *testing.T) {
	addr, _, stop := startServer(t, newMinerBackend(1))
	defer stop()
	c := dialT(t, addr)
	defer c.Close()
	ctx := context.Background()

	const pings = 4
	for i := 0; i < pings; i++ {
		if _, err := c.Ping(ctx); err != nil {
			t.Fatal(err)
		}
	}
	stats, err := c.WireStats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	var ping *WireStat
	for i := range stats {
		if stats[i].Type == MsgPing {
			ping = &stats[i]
		}
	}
	if ping == nil {
		t.Fatalf("no ping entry in %v", stats)
	}
	if ping.Count < pings {
		t.Fatalf("ping count %d, want >= %d", ping.Count, pings)
	}
	if ping.SumNS == 0 {
		t.Fatal("ping latency sum is zero")
	}
}

// TestAdaptiveAckWindowGrows: against a fast local server the adaptive
// window leaves its initial size of 1 and stays within its cap.
func TestAdaptiveAckWindowGrows(t *testing.T) {
	tr, err := tracegen.HP(3000).Generate()
	if err != nil {
		t.Fatal(err)
	}
	b := newMinerBackend(2)
	addr, _, stop := startServer(t, b)
	defer stop()
	c := dialT(t, addr)
	defer c.Close()
	ctx := context.Background()

	const cap = 32
	w := c.NewAdaptiveAckWindow(cap)
	if w.Window() != 1 {
		t.Fatalf("adaptive window starts at %d, want 1", w.Window())
	}
	maxSeen := 1
	for i := range tr.Records {
		if err := w.Feed(ctx, &tr.Records[i]); err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if n := w.Window(); n > maxSeen {
			maxSeen = n
		}
		if n := w.Window(); n > cap {
			t.Fatalf("window %d exceeds cap %d", n, cap)
		}
	}
	if err := w.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	if maxSeen < 2 {
		t.Fatalf("adaptive window never grew past %d against an idle local server", maxSeen)
	}
	if got := b.sm.Fed(); got != uint64(len(tr.Records)) {
		t.Fatalf("backend fed %d of %d", got, len(tr.Records))
	}
}

// TestAdaptiveAIMDRule pins the control law itself: additive growth near
// the smoothed RTT, halving on a spike (which also resets the baseline),
// floor of 1, ceiling of max.
func TestAdaptiveAIMDRule(t *testing.T) {
	w := &AckWindow{adaptive: true, n: 1, max: 8}

	// First sample: baseline set, one step of growth.
	w.adapt(time.Millisecond)
	if w.n != 2 || w.ewmaNS != float64(time.Millisecond) {
		t.Fatalf("after first sample n=%d ewma=%v", w.n, w.ewmaNS)
	}

	// Steady RTTs grow additively to the cap and no further.
	for i := 0; i < 20; i++ {
		w.adapt(time.Millisecond)
	}
	if w.n != w.max {
		t.Fatalf("steady RTTs grew window to %d, want cap %d", w.n, w.max)
	}

	// A spike past 4x the baseline halves the window and restarts the
	// baseline at the spike.
	w.adapt(10 * time.Millisecond)
	if w.n != w.max/2 {
		t.Fatalf("spike halved window to %d, want %d", w.n, w.max/2)
	}
	if w.ewmaNS != float64(10*time.Millisecond) {
		t.Fatalf("spike did not reset baseline: ewma=%v", w.ewmaNS)
	}

	// RTTs between 2x and 4x the baseline neither grow nor shrink.
	before := w.n
	w.adapt(25 * time.Millisecond)
	if w.n != before {
		t.Fatalf("3x-baseline RTT moved window %d -> %d", before, w.n)
	}

	// Repeated spikes floor at 1, never 0.
	for i := 0; i < 10; i++ {
		w.adapt(time.Duration(1<<uint(i)) * 100 * time.Millisecond)
	}
	if w.n < 1 {
		t.Fatalf("window collapsed to %d", w.n)
	}
}
