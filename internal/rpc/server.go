package rpc

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"farmer/internal/core"
	"farmer/internal/obs"
	"farmer/internal/partition"
	"farmer/internal/trace"
)

// Backend is the mining surface a Server puts on the wire — implemented by
// the farmer package's local miner, and by anything else that wants to
// speak the protocol. Requests on one connection are handled sequentially
// in arrival order; the backend only needs the same concurrency safety as
// core.ShardedModel (many connections may call it at once). Errors wrapping
// ErrNotPrimary travel as CodeNotPrimary (an un-promoted follower refusing
// a write); every other backend error travels as CodeInternal.
type Backend interface {
	Feed(r *trace.Record) error
	FeedBatch(recs []trace.Record) error
	Predict(f trace.FileID, k int) []trace.FileID
	CorrelatorList(f trace.FileID) []core.Correlator
	Stats() core.Stats
	ApplyEvents(evs []partition.Event) error
	Save() error
	Load() error
}

// ReplicaBackend is the optional replication surface: a backend that also
// implements it accepts MsgPromote/MsgCatchup/MsgReplicate/MsgGroups frames
// (a server whose backend does not answers CodeUnsupported). The conn
// argument identifies the connection a frame arrived on — the follower
// pins its replication source to the first connection that catches it up,
// and ConnClosed tells it that source is gone (which is what makes the
// follower promotable).
type ReplicaBackend interface {
	Backend
	Promote() error
	Catchup(conn uint64, cut CatchupCut) error
	// CatchupDelta applies one chunk of a delta catch-up: the follower
	// replays the missed records through its own miner and, on the final
	// chunk, verifies the primary's fingerprint against its post-replay
	// state. Any error tells the primary to fall back to a full cut.
	CatchupDelta(conn uint64, d CatchupDelta) error
	Replicate(conn uint64, pos uint64, recs []trace.Record) error
	ReplicateGroups(conn uint64, pos uint64, req GroupsReq) error
	Groups(req GroupsReq) (GroupsInfo, error)
	ConnClosed(conn uint64)
}

// LeaseBackend is the optional lease surface: a backend that also
// implements it answers MsgLeaseRequest/MsgLeaseGrant frames (see
// internal/lease). LeaseStatus reports the current term; LeaseVote decides
// a candidate's election request; LeaseGrant folds a leader's announced
// term in — the conn argument identifies the connection the grant arrived
// on, so a transfer grant can be required to travel the pinned replication
// link. Refusals wrap ErrStaleEpoch and travel as CodeStaleEpoch.
type LeaseBackend interface {
	LeaseStatus() LeaseInfo
	LeaseVote(epoch uint64, candidate string) error
	LeaseGrant(conn uint64, info LeaseInfo) error
}

// HandoffBackend is the optional live-handoff surface behind MsgHandoff
// (`farmerctl rebalance`): a lease-holding leader that implements it ships
// its state to the target farmerd and transfers the lease.
type HandoffBackend interface {
	Handoff(target string) error
}

// ObsResolver is the optional resolver surface behind MsgObs: one live
// observability row per tenant, each carrying up to topK correlation
// groups. The rpc layer stamps the FeedRecords/FeedFrames fields from its
// own per-tenant counters after the resolver builds the rows.
type ObsResolver interface {
	TenantObs(topK int) []TenantObs
}

// ObsBackend is the per-backend counterpart: a Backend that can report its
// own observability row (SingleTenant uses it to satisfy ObsResolver).
type ObsBackend interface {
	TenantObs(topK int) TenantObs
}

// Resolver maps a frame's tenant id to the backend serving that tenant —
// the seam between the tenant-agnostic wire layer and farmer's registry.
// BackendFor may create the tenant lazily; it returns an error wrapping
// ErrTenantBudget when admission control refuses (travels as
// CodeTenantBudget, so the one over-budget tenant fails without disturbing
// its neighbors). Tenants snapshots the live tenants for MsgTenants.
// Implementations must be safe for concurrent use.
type Resolver interface {
	BackendFor(tenant string) (Backend, error)
	Tenants() []TenantInfo
}

// singleResolver adapts the historical one-backend server: the default
// tenant resolves to it, any named tenant is refused.
type singleResolver struct{ b Backend }

func (s singleResolver) BackendFor(tenant string) (Backend, error) {
	if tenant != "" {
		return nil, fmt.Errorf("rpc: unknown tenant %q (single-tenant server)", tenant)
	}
	return s.b, nil
}

func (s singleResolver) Tenants() []TenantInfo {
	return []TenantInfo{{Name: "", Stats: s.b.Stats()}}
}

func (s singleResolver) TenantObs(topK int) []TenantObs {
	if ob, ok := s.b.(ObsBackend); ok {
		row := ob.TenantObs(topK)
		row.Name = ""
		return []TenantObs{row}
	}
	st := s.b.Stats()
	return []TenantObs{{
		Fed:         st.Fed,
		MemoryBytes: uint64(st.MemoryBytes),
		TapDepth:    uint64(st.TapDepth),
		TapDropped:  st.TapDropped,
		CkptAgeMS:   NeverCheckpointed,
	}}
}

// SingleTenant wraps one backend as a Resolver serving only the default
// tenant — what NewServer uses, and the composition for deployments that
// never name tenants.
func SingleTenant(b Backend) Resolver { return singleResolver{b} }

// ServerOptions parameterises NewResolverServer beyond the resolver.
type ServerOptions struct {
	// AuthTokens maps static bearer tokens to the tenant ids each may
	// address; the value "*" allows every tenant. A nil map disables auth
	// (every connection may address every tenant); a non-nil map makes the
	// hello mandatory — any other frame before a successful hello is
	// refused with CodeUnauthorized, before tenant dispatch.
	AuthTokens map[string][]string

	// Obs, when set, registers the server's wire-level metrics into the
	// registry: frames/bytes in and out, and per-tenant feed counts. The
	// server counts feeds regardless (MsgObs reports them either way);
	// the registry only adds the /metrics view.
	Obs *obs.Registry
}

// feedCounters is one tenant's wire-level feed accounting: how many
// Feed/FeedBatch frames this server handled for it and how many records
// they carried. Always maintained (MsgObs rows need the numbers whether or
// not a metrics registry is attached); the counters are padded atomics, so
// the hot feed path pays two uncontended adds.
type feedCounters struct {
	frames  obs.Counter
	records obs.Counter
}

// latCounter is one request type's latency accounting: frames handled and
// their summed handling time. Padded atomics — always on, two uncontended
// adds plus two clock reads per request (cheap next to a frame decode).
type latCounter struct {
	count obs.Counter
	sumNS obs.Counter
}

// latSlots covers every request type (responses 0x40+ never dispatch).
const latSlots = 64

// Server serves the FARMER wire protocol over a listener. One goroutine per
// connection reads and handles requests in order; responses go out through
// a per-connection batching writer, so a pipelining client pays one flush
// per burst rather than one per reply.
type Server struct {
	resolver Resolver
	auth     map[string]map[string]bool // token -> allowed tenants; nil disables auth
	authAll  map[string]bool            // tokens allowed every tenant ("*")

	connSeq atomic.Uint64

	// Wire-level observability. The three totals are nil-safe no-ops when no
	// registry is attached; feeds (tenant -> *feedCounters) is always live.
	obsFramesIn  *obs.Counter
	obsBytesIn   *obs.Counter
	obsBytesOut  *obs.Counter
	obsConns     *obs.Counter
	feeds        sync.Map
	feedTenantMu sync.Mutex // serializes feedCounters creation (cold path)

	// Per-request-type wire latency: always maintained (MsgWireStats reads
	// it whether or not a registry is attached); lat[t] indexes by request
	// MsgType. latHist mirrors the sums into labeled registry histograms
	// (farmer_rpc_latency_ns{msg=...}) when a registry is attached — ns, not
	// seconds, because obs histograms bucket integers by power of two.
	lat     [latSlots]latCounter
	latHist [latSlots]*obs.Histogram

	mu       sync.Mutex
	lis      net.Listener
	conns    map[net.Conn]struct{}
	draining bool
	done     chan struct{} // closed when Serve returns

	handling sync.WaitGroup // in-flight connection loops
}

// NewServer creates a single-tenant server for backend (no auth) — the
// pre-tenant constructor, kept for compositions that put one miner on the
// wire directly.
func NewServer(b Backend) *Server {
	return NewResolverServer(SingleTenant(b), ServerOptions{})
}

// NewResolverServer creates a server that routes each frame to the backend
// its tenant id resolves to.
func NewResolverServer(r Resolver, opts ServerOptions) *Server {
	s := &Server{resolver: r, conns: make(map[net.Conn]struct{}), done: make(chan struct{})}
	if opts.AuthTokens != nil {
		s.auth = make(map[string]map[string]bool, len(opts.AuthTokens))
		s.authAll = make(map[string]bool)
		for tok, tenants := range opts.AuthTokens {
			set := make(map[string]bool, len(tenants))
			for _, t := range tenants {
				if t == "*" {
					s.authAll[tok] = true
					continue
				}
				set[t] = true
			}
			s.auth[tok] = set
		}
	}
	if reg := opts.Obs; reg != nil {
		s.obsFramesIn = reg.Counter("farmer_rpc_frames_total")
		s.obsBytesIn = reg.Counter("farmer_rpc_bytes_read_total")
		s.obsBytesOut = reg.Counter("farmer_rpc_bytes_written_total")
		s.obsConns = reg.Counter("farmer_rpc_connections_total")
		reg.CounterEach("farmer_rpc_tenant_feed_records_total", func(emit obs.EmitFunc) {
			s.feeds.Range(func(k, v any) bool {
				emit([]obs.Label{obs.L("tenant", tenantLabel(k.(string)))}, float64(v.(*feedCounters).records.Load()))
				return true
			})
		})
		reg.CounterEach("farmer_rpc_tenant_feed_frames_total", func(emit obs.EmitFunc) {
			s.feeds.Range(func(k, v any) bool {
				emit([]obs.Label{obs.L("tenant", tenantLabel(k.(string)))}, float64(v.(*feedCounters).frames.Load()))
				return true
			})
		})
		for t := MsgType(1); t < MsgOK; t++ {
			s.latHist[t] = reg.Histogram("farmer_rpc_latency_ns", obs.L("msg", t.String()))
		}
	}
	return s
}

// WireStats snapshots the per-request-type latency accounting: one entry
// per type that handled at least one frame, in type order.
func (s *Server) WireStats() []WireStat {
	var out []WireStat
	for t := 0; t < latSlots; t++ {
		if n := s.lat[t].count.Load(); n > 0 {
			out = append(out, WireStat{Type: MsgType(t), Count: n, SumNS: s.lat[t].sumNS.Load()})
		}
	}
	return out
}

// tenantLabel names the default tenant in metric labels.
func tenantLabel(t string) string {
	if t == "" {
		return "default"
	}
	return t
}

// feedCountersFor returns the tenant's wire-level feed counters, creating
// them on first use. The double-checked map keeps the steady state at one
// lock-free sync.Map load; connState additionally caches the result per
// connection, so a bound connection never re-resolves.
func (s *Server) feedCountersFor(tenant string) *feedCounters {
	if v, ok := s.feeds.Load(tenant); ok {
		return v.(*feedCounters)
	}
	s.feedTenantMu.Lock()
	defer s.feedTenantMu.Unlock()
	if v, ok := s.feeds.Load(tenant); ok {
		return v.(*feedCounters)
	}
	fc := &feedCounters{}
	s.feeds.Store(tenant, fc)
	return fc
}

// Serve accepts connections on lis until Shutdown (or a listener error) and
// blocks meanwhile. After Shutdown it returns nil.
func (s *Server) Serve(lis net.Listener) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return errors.New("rpc: server already shut down")
	}
	s.lis = lis
	s.mu.Unlock()
	defer close(s.done)
	for {
		conn, err := lis.Accept()
		if err != nil {
			s.mu.Lock()
			draining := s.draining
			s.mu.Unlock()
			if draining {
				return nil
			}
			return fmt.Errorf("rpc: accept: %w", err)
		}
		s.mu.Lock()
		if s.draining {
			s.mu.Unlock()
			conn.Close()
			continue
		}
		s.conns[conn] = struct{}{}
		s.handling.Add(1)
		s.mu.Unlock()
		go s.serveConn(conn)
	}
}

// Shutdown drains the server gracefully: stop accepting, let every
// connection finish the request it is handling (plus any already-read
// pipeline), flush responses, then close. It waits until the drain
// completes or ctx expires, whichever is first.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	lis := s.lis
	// Unblock readers parked in ReadFrame; the connection loop finishes the
	// current request and exits on the read error.
	for conn := range s.conns {
		conn.SetReadDeadline(time.Now())
	}
	s.mu.Unlock()
	if lis != nil {
		lis.Close()
	}
	drained := make(chan struct{})
	go func() {
		s.handling.Wait()
		close(drained)
	}()
	select {
	case <-drained:
	case <-ctx.Done():
		// Force-close whatever is still open.
		s.mu.Lock()
		for conn := range s.conns {
			conn.Close()
		}
		s.mu.Unlock()
		return ctx.Err()
	}
	if lis != nil {
		select {
		case <-s.done:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	return nil
}

func (s *Server) removeConn(conn net.Conn) {
	s.mu.Lock()
	delete(s.conns, conn)
	s.mu.Unlock()
	conn.Close()
	s.handling.Done()
}

// serveConn is one connection's request loop: decode, handle, respond.
// Handling is strictly in read order, which makes the connection a FIFO
// event channel (the NetOwner invariant and the replication stream's
// ordering guarantee) and responses naturally ordered.
// MaxCatchupSnapshot bounds the per-connection accumulation of
// MsgCatchupChunk bytes, so a hostile peer cannot demand unbounded memory.
// A real snapshot of this size would not fit a follower's memory anyway
// (the decoded store roughly doubles it).
const MaxCatchupSnapshot = 2 << 30

// connState is one connection's server-side state: its identity (the
// replication source pin), the authenticated token's tenant grant, and the
// partially accumulated per-tenant catch-up snapshots.
type connState struct {
	id      uint64
	authed  bool            // hello accepted, or auth disabled
	all     bool            // token allows every tenant
	allowed map[string]bool // token's tenant grant (nil when unrestricted)

	catchup  map[string][]byte         // tenant -> accumulating snapshot
	replicas map[string]ReplicaBackend // tenants whose replica surface this conn touched

	// Per-connection cache of the last fed tenant's feed counters, so the
	// hot feed path resolves the sync.Map only when the tenant changes.
	feedTenant string
	feedCtrs   *feedCounters
}

// feedCtrsFor returns the frame's tenant's feed counters through the
// connection-local cache.
func (s *Server) feedCtrsFor(cs *connState, tenant string) *feedCounters {
	if cs.feedCtrs == nil || cs.feedTenant != tenant {
		cs.feedCtrs = s.feedCountersFor(tenant)
		cs.feedTenant = tenant
	}
	return cs.feedCtrs
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.removeConn(conn)
	s.obsConns.Inc()
	cs := &connState{id: s.connSeq.Add(1), authed: s.auth == nil}
	// Each touched tenant's backend learns the source link died even on an
	// abrupt drop — that notification is what clears a follower's primary
	// link and makes it promotable.
	defer func() {
		for _, rb := range cs.replicas {
			rb.ConnClosed(cs.id)
		}
	}()
	br := bufio.NewReaderSize(conn, 64<<10)
	bw := bufio.NewWriterSize(conn, 64<<10)
	in := getFrameBuf() // read buffer, reused across frames: handle is
	// synchronous and copies what it keeps, so the next read may clobber it
	defer putFrameBuf(in)
	var out []byte
	for {
		f, buf, err := readFrameBuf(br, in.b)
		in.b = buf
		if err != nil {
			if errors.Is(err, ErrBadVersion) {
				// An old-protocol peer: answer with the one frame its
				// decoder will at least partially parse, naming the upgrade,
				// before hanging up.
				bw.Write(AppendFrame(out[:0], MsgErr, 0,
					appendWireError(nil, CodeBadVersion,
						fmt.Sprintf("server speaks protocol v%d; upgrade the client", ProtocolVersion))))
			}
			// EOF, deadline (drain), or protocol garbage: flush what we owe
			// and drop the connection.
			bw.Flush()
			return
		}
		s.obsFramesIn.Inc()
		s.obsBytesIn.Add(uint64(4 + frameHeaderMin + len(f.Tenant) + len(f.Body)))
		t0 := time.Now()
		out = s.handle(out[:0], cs, &f)
		if t := f.Type; t < latSlots {
			ns := uint64(time.Since(t0))
			s.lat[t].count.Inc()
			s.lat[t].sumNS.Add(ns)
			s.latHist[t].Observe(ns)
		}
		s.obsBytesOut.Add(uint64(len(out)))
		if _, err := bw.Write(out); err != nil {
			return
		}
		// Write batching: only flush when no further request is already
		// buffered, so a pipelined burst is answered with one syscall.
		if br.Buffered() < 4 {
			if err := bw.Flush(); err != nil {
				return
			}
		}
	}
}

// handle executes one request and appends the response frame to dst. The
// order of the gates is the protocol's security story: hello/auth first
// (nothing dispatches unauthenticated), then the token's tenant grant, then
// tenant resolution (admission control), then the request itself.
func (s *Server) handle(dst []byte, cs *connState, f *Frame) []byte {
	conn := cs.id
	ok := func(body []byte) []byte { return AppendFrame(dst, MsgOK, f.ID, body) }
	fail := func(code Code, err error) []byte {
		return AppendFrame(dst, MsgErr, f.ID, appendWireError(nil, code, err.Error()))
	}
	// backendErr maps a backend refusal to its wire code: a follower's
	// not-primary refusal and a budget refusal keep their types across the
	// wire so a failing-over (or over-budget) client can match them.
	backendErr := func(err error) []byte {
		switch {
		case errors.Is(err, ErrStaleEpoch):
			return fail(CodeStaleEpoch, err)
		case errors.Is(err, ErrNotPrimary):
			return fail(CodeNotPrimary, err)
		case errors.Is(err, ErrTenantBudget):
			return fail(CodeTenantBudget, err)
		}
		return fail(CodeInternal, err)
	}

	if f.Type == MsgHello {
		token, err := decodeHello(f.Body)
		if err != nil {
			return fail(CodeBadRequest, err)
		}
		if s.auth != nil {
			allowed, found := s.auth[token]
			if !found {
				return fail(CodeUnauthorized, errors.New("rpc: unknown bearer token"))
			}
			// A tenant-bound client stamps its tenant on the hello like any
			// other frame; refusing an out-of-grant binding here fails the
			// dial itself, before a single request dispatches.
			if f.Tenant != "" && !s.authAll[token] && !allowed[f.Tenant] {
				return fail(CodeUnauthorized, fmt.Errorf("rpc: token not authorized for tenant %q", f.Tenant))
			}
			cs.allowed = allowed
			cs.all = s.authAll[token]
		}
		cs.authed = true
		return ok([]byte{ProtocolVersion})
	}
	if !cs.authed {
		return fail(CodeUnauthorized, errors.New("rpc: authentication required (send a hello with a bearer token first)"))
	}
	if err := ValidTenant(f.Tenant); err != nil {
		return fail(CodeBadRequest, err)
	}
	if f.Type == MsgTenants {
		// The listing is not tenant-addressed — any authenticated caller may
		// ask, and a restricted token sees only its granted tenants.
		infos := s.resolver.Tenants()
		if cs.allowed != nil && !cs.all {
			vis := infos[:0]
			for _, ti := range infos {
				if cs.allowed[ti.Name] {
					vis = append(vis, ti)
				}
			}
			infos = vis
		}
		return ok(appendTenantInfos(nil, infos))
	}
	if f.Type == MsgObs {
		// Control-plane like MsgTenants: not addressed to one tenant, and a
		// restricted token's listing is filtered to its grant.
		topK, err := decodeObsReq(f.Body)
		if err != nil {
			return fail(CodeBadRequest, err)
		}
		or, okObs := s.resolver.(ObsResolver)
		if !okObs {
			return fail(CodeUnsupported, errors.New("rpc: resolver does not support observability"))
		}
		rows := or.TenantObs(topK)
		if cs.allowed != nil && !cs.all {
			vis := rows[:0]
			for _, r := range rows {
				if cs.allowed[r.Name] {
					vis = append(vis, r)
				}
			}
			rows = vis
		}
		// The wire layer owns the feed-frame accounting: stamp it on the
		// rows the resolver built.
		for i := range rows {
			if v, found := s.feeds.Load(rows[i].Name); found {
				fc := v.(*feedCounters)
				rows[i].FeedRecords = fc.records.Load()
				rows[i].FeedFrames = fc.frames.Load()
			}
		}
		return ok(appendTenantObs(nil, rows))
	}
	if f.Type == MsgWireStats {
		// Control-plane like MsgObs: the latency table is server-wide.
		if len(f.Body) != 0 {
			return fail(CodeBadRequest, fmt.Errorf("rpc: wire stats request carries %d body bytes, want 0", len(f.Body)))
		}
		return ok(appendWireStats(nil, s.WireStats()))
	}
	if !cs.all && cs.allowed != nil && !cs.allowed[f.Tenant] {
		return fail(CodeUnauthorized, fmt.Errorf("rpc: token not authorized for tenant %q", f.Tenant))
	}

	b, err := s.resolver.BackendFor(f.Tenant)
	if err != nil {
		if errors.Is(err, ErrTenantBudget) {
			return fail(CodeTenantBudget, err)
		}
		return fail(CodeBadRequest, err)
	}
	// replica is the tenant's replication surface; touching it pins this
	// connection as a potential replication source for that tenant.
	replica := func() ReplicaBackend {
		rb, _ := b.(ReplicaBackend)
		if rb != nil {
			if cs.replicas == nil {
				cs.replicas = make(map[string]ReplicaBackend)
			}
			cs.replicas[f.Tenant] = rb
		}
		return rb
	}

	switch f.Type {
	case MsgPing:
		return ok(nil)
	case MsgFeed:
		r, rest, err := trace.ConsumeRecord(f.Body)
		if err == nil && len(rest) != 0 {
			err = fmt.Errorf("rpc: %d trailing bytes after record", len(rest))
		}
		if err != nil {
			return fail(CodeBadRequest, err)
		}
		if err := b.Feed(&r); err != nil {
			return backendErr(err)
		}
		fc := s.feedCtrsFor(cs, f.Tenant)
		fc.frames.Inc()
		fc.records.Inc()
		return ok(nil)
	case MsgFeedBatch:
		recs, err := consumeRecords(f.Body)
		if err != nil {
			return fail(CodeBadRequest, err)
		}
		if err := b.FeedBatch(recs); err != nil {
			return backendErr(err)
		}
		fc := s.feedCtrsFor(cs, f.Tenant)
		fc.frames.Inc()
		fc.records.Add(uint64(len(recs)))
		return ok(nil)
	case MsgPredict:
		file, k, err := decodePredictReq(f.Body)
		if err != nil {
			return fail(CodeBadRequest, err)
		}
		return ok(appendFileIDs(nil, b.Predict(file, k)))
	case MsgList:
		file, rest, err := consumeU32(f.Body)
		if err == nil && len(rest) != 0 {
			err = fmt.Errorf("rpc: %d trailing bytes after file id", len(rest))
		}
		if err != nil {
			return fail(CodeBadRequest, err)
		}
		return ok(appendCorrelators(nil, b.CorrelatorList(trace.FileID(file))))
	case MsgStats:
		return ok(appendStats(nil, b.Stats()))
	case MsgSave:
		if err := b.Save(); err != nil {
			return backendErr(err)
		}
		return ok(nil)
	case MsgLoad:
		if err := b.Load(); err != nil {
			return backendErr(err)
		}
		return ok(nil)
	case MsgApplyEvents:
		evs, err := consumeEvents(f.Body)
		if err != nil {
			return fail(CodeBadRequest, err)
		}
		if err := b.ApplyEvents(evs); err != nil {
			return backendErr(err)
		}
		return ok(nil)
	case MsgPromote:
		rb := replica()
		if rb == nil {
			return fail(CodeUnsupported, errReplicaUnsupported)
		}
		if err := rb.Promote(); err != nil {
			return backendErr(err)
		}
		return ok(nil)
	case MsgCatchupChunk:
		if rb := replica(); rb == nil {
			return fail(CodeUnsupported, errReplicaUnsupported)
		}
		if len(cs.catchup[f.Tenant])+len(f.Body) > MaxCatchupSnapshot {
			delete(cs.catchup, f.Tenant)
			return fail(CodeBadRequest, fmt.Errorf("rpc: catch-up snapshot exceeds %d bytes", MaxCatchupSnapshot))
		}
		if cs.catchup == nil {
			cs.catchup = make(map[string][]byte)
		}
		cs.catchup[f.Tenant] = append(cs.catchup[f.Tenant], f.Body...)
		return ok(nil)
	case MsgCatchup:
		rb := replica()
		if rb == nil {
			return fail(CodeUnsupported, errReplicaUnsupported)
		}
		cut, err := decodeCatchup(f.Body)
		if err != nil {
			return fail(CodeBadRequest, err)
		}
		if chunks := cs.catchup[f.Tenant]; len(chunks) > 0 {
			// Chunked transfer: this frame carries the final piece; the
			// rest arrived as MsgCatchupChunk frames on this connection,
			// reassembled per tenant so interleaved streams cannot mix.
			cut.Snapshot = append(chunks, cut.Snapshot...)
			delete(cs.catchup, f.Tenant)
		} else {
			// The decoded snapshot aliases the connection's reused read
			// buffer; the backend may hold it past this request (bootstrap
			// is cold, the copy is cheap).
			cut.Snapshot = append([]byte(nil), cut.Snapshot...)
		}
		if err := rb.Catchup(conn, cut); err != nil {
			return backendErr(err)
		}
		return ok(nil)
	case MsgCatchupDelta:
		rb := replica()
		if rb == nil {
			return fail(CodeUnsupported, errReplicaUnsupported)
		}
		d, err := decodeCatchupDelta(f.Body)
		if err != nil {
			return fail(CodeBadRequest, err)
		}
		if err := rb.CatchupDelta(conn, d); err != nil {
			return backendErr(err)
		}
		return ok(nil)
	case MsgReplicate:
		rb := replica()
		if rb == nil {
			return fail(CodeUnsupported, errReplicaUnsupported)
		}
		pos, kind, payload, err := decodeReplicate(f.Body)
		if err != nil {
			return fail(CodeBadRequest, err)
		}
		switch kind {
		case replKindRecords:
			recs, err := consumeRecords(payload)
			if err != nil {
				return fail(CodeBadRequest, err)
			}
			if err := rb.Replicate(conn, pos, recs); err != nil {
				return backendErr(err)
			}
		case replKindGroups:
			req, err := decodeGroupsReq(payload)
			if err != nil {
				return fail(CodeBadRequest, err)
			}
			if err := rb.ReplicateGroups(conn, pos, req); err != nil {
				return backendErr(err)
			}
		default:
			return fail(CodeBadRequest, fmt.Errorf("rpc: unknown replicate kind %d", kind))
		}
		return ok(nil)
	case MsgGroups:
		rb := replica()
		if rb == nil {
			return fail(CodeUnsupported, errReplicaUnsupported)
		}
		req, err := decodeGroupsReq(f.Body)
		if err != nil {
			return fail(CodeBadRequest, err)
		}
		info, err := rb.Groups(req)
		if err != nil {
			return backendErr(err)
		}
		return ok(appendGroupsInfo(nil, info))
	case MsgLeaseRequest:
		lb, _ := b.(LeaseBackend)
		if lb == nil {
			return fail(CodeUnsupported, errLeaseUnsupported)
		}
		epoch, candidate, err := decodeLeaseReq(f.Body)
		if err != nil {
			return fail(CodeBadRequest, err)
		}
		if epoch == 0 {
			// Status query.
			info := lb.LeaseStatus()
			return ok(appendLeaseInfo(nil, &info))
		}
		if err := lb.LeaseVote(epoch, candidate); err != nil {
			return backendErr(err)
		}
		return ok(nil)
	case MsgLeaseGrant:
		lb, _ := b.(LeaseBackend)
		if lb == nil {
			return fail(CodeUnsupported, errLeaseUnsupported)
		}
		info, err := decodeLeaseInfo(f.Body)
		if err != nil {
			return fail(CodeBadRequest, err)
		}
		if err := lb.LeaseGrant(conn, info); err != nil {
			return backendErr(err)
		}
		return ok(nil)
	case MsgHandoff:
		hb, _ := b.(HandoffBackend)
		if hb == nil {
			return fail(CodeUnsupported, errors.New("rpc: backend does not support live handoff"))
		}
		target, err := decodeHandoffReq(f.Body)
		if err != nil {
			return fail(CodeBadRequest, err)
		}
		if err := hb.Handoff(target); err != nil {
			return backendErr(err)
		}
		return ok(nil)
	default:
		return fail(CodeUnsupported, fmt.Errorf("rpc: unknown request type %d", f.Type))
	}
}

// errLeaseUnsupported answers lease frames sent to a server whose backend
// has no lease surface (leases disabled, or a pre-lease build).
var errLeaseUnsupported = errors.New("rpc: backend does not support leases")

// errReplicaUnsupported answers replication frames sent to a server whose
// backend has no replication surface.
var errReplicaUnsupported = errors.New("rpc: backend does not support replication")

// ListenAndServe listens on addr (TCP) and serves until Shutdown.
func (s *Server) ListenAndServe(addr string) error {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("rpc: listen %s: %w", addr, err)
	}
	return s.Serve(lis)
}
