package rpc

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"farmer/internal/core"
	"farmer/internal/partition"
	"farmer/internal/trace"
)

// Backend is the mining surface a Server puts on the wire — implemented by
// the farmer package's local miner, and by anything else that wants to
// speak the protocol. Requests on one connection are handled sequentially
// in arrival order; the backend only needs the same concurrency safety as
// core.ShardedModel (many connections may call it at once). Errors wrapping
// ErrNotPrimary travel as CodeNotPrimary (an un-promoted follower refusing
// a write); every other backend error travels as CodeInternal.
type Backend interface {
	Feed(r *trace.Record) error
	FeedBatch(recs []trace.Record) error
	Predict(f trace.FileID, k int) []trace.FileID
	CorrelatorList(f trace.FileID) []core.Correlator
	Stats() core.Stats
	ApplyEvents(evs []partition.Event) error
	Save() error
	Load() error
}

// ReplicaBackend is the optional replication surface: a backend that also
// implements it accepts MsgPromote/MsgCatchup/MsgReplicate/MsgGroups frames
// (a server whose backend does not answers CodeUnsupported). The conn
// argument identifies the connection a frame arrived on — the follower
// pins its replication source to the first connection that catches it up,
// and ConnClosed tells it that source is gone (which is what makes the
// follower promotable).
type ReplicaBackend interface {
	Backend
	Promote() error
	Catchup(conn uint64, cut CatchupCut) error
	Replicate(conn uint64, pos uint64, recs []trace.Record) error
	ReplicateGroups(conn uint64, pos uint64, req GroupsReq) error
	Groups(req GroupsReq) (GroupsInfo, error)
	ConnClosed(conn uint64)
}

// Server serves the FARMER wire protocol over a listener. One goroutine per
// connection reads and handles requests in order; responses go out through
// a per-connection batching writer, so a pipelining client pays one flush
// per burst rather than one per reply.
type Server struct {
	backend Backend
	replica ReplicaBackend // backend's replication surface, nil if absent

	connSeq atomic.Uint64

	mu       sync.Mutex
	lis      net.Listener
	conns    map[net.Conn]struct{}
	draining bool
	done     chan struct{} // closed when Serve returns

	handling sync.WaitGroup // in-flight connection loops
}

// NewServer creates a server for backend.
func NewServer(b Backend) *Server {
	rb, _ := b.(ReplicaBackend)
	return &Server{backend: b, replica: rb, conns: make(map[net.Conn]struct{}), done: make(chan struct{})}
}

// Serve accepts connections on lis until Shutdown (or a listener error) and
// blocks meanwhile. After Shutdown it returns nil.
func (s *Server) Serve(lis net.Listener) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return errors.New("rpc: server already shut down")
	}
	s.lis = lis
	s.mu.Unlock()
	defer close(s.done)
	for {
		conn, err := lis.Accept()
		if err != nil {
			s.mu.Lock()
			draining := s.draining
			s.mu.Unlock()
			if draining {
				return nil
			}
			return fmt.Errorf("rpc: accept: %w", err)
		}
		s.mu.Lock()
		if s.draining {
			s.mu.Unlock()
			conn.Close()
			continue
		}
		s.conns[conn] = struct{}{}
		s.handling.Add(1)
		s.mu.Unlock()
		go s.serveConn(conn)
	}
}

// Shutdown drains the server gracefully: stop accepting, let every
// connection finish the request it is handling (plus any already-read
// pipeline), flush responses, then close. It waits until the drain
// completes or ctx expires, whichever is first.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	lis := s.lis
	// Unblock readers parked in ReadFrame; the connection loop finishes the
	// current request and exits on the read error.
	for conn := range s.conns {
		conn.SetReadDeadline(time.Now())
	}
	s.mu.Unlock()
	if lis != nil {
		lis.Close()
	}
	drained := make(chan struct{})
	go func() {
		s.handling.Wait()
		close(drained)
	}()
	select {
	case <-drained:
	case <-ctx.Done():
		// Force-close whatever is still open.
		s.mu.Lock()
		for conn := range s.conns {
			conn.Close()
		}
		s.mu.Unlock()
		return ctx.Err()
	}
	if lis != nil {
		select {
		case <-s.done:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	return nil
}

func (s *Server) removeConn(conn net.Conn) {
	s.mu.Lock()
	delete(s.conns, conn)
	s.mu.Unlock()
	conn.Close()
	s.handling.Done()
}

// serveConn is one connection's request loop: decode, handle, respond.
// Handling is strictly in read order, which makes the connection a FIFO
// event channel (the NetOwner invariant and the replication stream's
// ordering guarantee) and responses naturally ordered.
// MaxCatchupSnapshot bounds the per-connection accumulation of
// MsgCatchupChunk bytes, so a hostile peer cannot demand unbounded memory.
// A real snapshot of this size would not fit a follower's memory anyway
// (the decoded store roughly doubles it).
const MaxCatchupSnapshot = 2 << 30

// connState is one connection's server-side state: its identity (the
// replication source pin) and the partially accumulated catch-up snapshot.
type connState struct {
	id      uint64
	catchup []byte
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.removeConn(conn)
	cs := &connState{id: s.connSeq.Add(1)}
	if s.replica != nil {
		// The backend learns the source link died even on an abrupt drop —
		// that notification is what clears a follower's primary link and
		// makes it promotable.
		defer s.replica.ConnClosed(cs.id)
	}
	br := bufio.NewReaderSize(conn, 64<<10)
	bw := bufio.NewWriterSize(conn, 64<<10)
	var out []byte
	for {
		f, err := ReadFrame(br)
		if err != nil {
			// EOF, deadline (drain), or protocol garbage — including a
			// version mismatch, which the peer's own ReadFrame check
			// surfaces on its side: flush what we owe and drop the
			// connection.
			bw.Flush()
			return
		}
		out = s.handle(out[:0], cs, &f)
		if _, err := bw.Write(out); err != nil {
			return
		}
		// Write batching: only flush when no further request is already
		// buffered, so a pipelined burst is answered with one syscall.
		if br.Buffered() < 4 {
			if err := bw.Flush(); err != nil {
				return
			}
		}
	}
}

// handle executes one request and appends the response frame to dst.
func (s *Server) handle(dst []byte, cs *connState, f *Frame) []byte {
	conn := cs.id
	ok := func(body []byte) []byte { return AppendFrame(dst, MsgOK, f.ID, body) }
	fail := func(code Code, err error) []byte {
		return AppendFrame(dst, MsgErr, f.ID, appendWireError(nil, code, err.Error()))
	}
	// backendErr maps a backend refusal to its wire code: a follower's
	// not-primary refusal keeps its type across the wire so a failing-over
	// client can match it.
	backendErr := func(err error) []byte {
		if errors.Is(err, ErrNotPrimary) {
			return fail(CodeNotPrimary, err)
		}
		return fail(CodeInternal, err)
	}
	switch f.Type {
	case MsgPing:
		return ok(nil)
	case MsgFeed:
		r, rest, err := trace.ConsumeRecord(f.Body)
		if err == nil && len(rest) != 0 {
			err = fmt.Errorf("rpc: %d trailing bytes after record", len(rest))
		}
		if err != nil {
			return fail(CodeBadRequest, err)
		}
		if err := s.backend.Feed(&r); err != nil {
			return backendErr(err)
		}
		return ok(nil)
	case MsgFeedBatch:
		recs, err := consumeRecords(f.Body)
		if err != nil {
			return fail(CodeBadRequest, err)
		}
		if err := s.backend.FeedBatch(recs); err != nil {
			return backendErr(err)
		}
		return ok(nil)
	case MsgPredict:
		file, k, err := decodePredictReq(f.Body)
		if err != nil {
			return fail(CodeBadRequest, err)
		}
		return ok(appendFileIDs(nil, s.backend.Predict(file, k)))
	case MsgList:
		file, rest, err := consumeU32(f.Body)
		if err == nil && len(rest) != 0 {
			err = fmt.Errorf("rpc: %d trailing bytes after file id", len(rest))
		}
		if err != nil {
			return fail(CodeBadRequest, err)
		}
		return ok(appendCorrelators(nil, s.backend.CorrelatorList(trace.FileID(file))))
	case MsgStats:
		return ok(appendStats(nil, s.backend.Stats()))
	case MsgSave:
		if err := s.backend.Save(); err != nil {
			return backendErr(err)
		}
		return ok(nil)
	case MsgLoad:
		if err := s.backend.Load(); err != nil {
			return backendErr(err)
		}
		return ok(nil)
	case MsgApplyEvents:
		evs, err := consumeEvents(f.Body)
		if err != nil {
			return fail(CodeBadRequest, err)
		}
		if err := s.backend.ApplyEvents(evs); err != nil {
			return backendErr(err)
		}
		return ok(nil)
	case MsgPromote:
		if s.replica == nil {
			return fail(CodeUnsupported, errReplicaUnsupported)
		}
		if err := s.replica.Promote(); err != nil {
			return backendErr(err)
		}
		return ok(nil)
	case MsgCatchupChunk:
		if s.replica == nil {
			return fail(CodeUnsupported, errReplicaUnsupported)
		}
		if len(cs.catchup)+len(f.Body) > MaxCatchupSnapshot {
			cs.catchup = nil
			return fail(CodeBadRequest, fmt.Errorf("rpc: catch-up snapshot exceeds %d bytes", MaxCatchupSnapshot))
		}
		cs.catchup = append(cs.catchup, f.Body...)
		return ok(nil)
	case MsgCatchup:
		if s.replica == nil {
			return fail(CodeUnsupported, errReplicaUnsupported)
		}
		cut, err := decodeCatchup(f.Body)
		if err != nil {
			return fail(CodeBadRequest, err)
		}
		if len(cs.catchup) > 0 {
			// Chunked transfer: this frame carries the final piece; the
			// rest arrived as MsgCatchupChunk frames on this connection.
			cut.Snapshot = append(cs.catchup, cut.Snapshot...)
			cs.catchup = nil
		}
		if err := s.replica.Catchup(conn, cut); err != nil {
			return backendErr(err)
		}
		return ok(nil)
	case MsgReplicate:
		if s.replica == nil {
			return fail(CodeUnsupported, errReplicaUnsupported)
		}
		pos, kind, payload, err := decodeReplicate(f.Body)
		if err != nil {
			return fail(CodeBadRequest, err)
		}
		switch kind {
		case replKindRecords:
			recs, err := consumeRecords(payload)
			if err != nil {
				return fail(CodeBadRequest, err)
			}
			if err := s.replica.Replicate(conn, pos, recs); err != nil {
				return backendErr(err)
			}
		case replKindGroups:
			req, err := decodeGroupsReq(payload)
			if err != nil {
				return fail(CodeBadRequest, err)
			}
			if err := s.replica.ReplicateGroups(conn, pos, req); err != nil {
				return backendErr(err)
			}
		default:
			return fail(CodeBadRequest, fmt.Errorf("rpc: unknown replicate kind %d", kind))
		}
		return ok(nil)
	case MsgGroups:
		if s.replica == nil {
			return fail(CodeUnsupported, errReplicaUnsupported)
		}
		req, err := decodeGroupsReq(f.Body)
		if err != nil {
			return fail(CodeBadRequest, err)
		}
		info, err := s.replica.Groups(req)
		if err != nil {
			return backendErr(err)
		}
		return ok(appendGroupsInfo(nil, info))
	default:
		return fail(CodeUnsupported, fmt.Errorf("rpc: unknown request type %d", f.Type))
	}
}

// errReplicaUnsupported answers replication frames sent to a server whose
// backend has no replication surface.
var errReplicaUnsupported = errors.New("rpc: backend does not support replication")

// ListenAndServe listens on addr (TCP) and serves until Shutdown.
func (s *Server) ListenAndServe(addr string) error {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("rpc: listen %s: %w", addr, err)
	}
	return s.Serve(lis)
}
