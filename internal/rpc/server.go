package rpc

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"farmer/internal/core"
	"farmer/internal/partition"
	"farmer/internal/trace"
)

// Backend is the mining surface a Server puts on the wire — implemented by
// the farmer package's local miner, and by anything else that wants to
// speak the protocol. Requests on one connection are handled sequentially
// in arrival order; the backend only needs the same concurrency safety as
// core.ShardedModel (many connections may call it at once).
type Backend interface {
	Feed(r *trace.Record) error
	FeedBatch(recs []trace.Record) error
	Predict(f trace.FileID, k int) []trace.FileID
	CorrelatorList(f trace.FileID) []core.Correlator
	Stats() core.Stats
	ApplyEvents(evs []partition.Event)
	Save() error
	Load() error
}

// Server serves the FARMER wire protocol over a listener. One goroutine per
// connection reads and handles requests in order; responses go out through
// a per-connection batching writer, so a pipelining client pays one flush
// per burst rather than one per reply.
type Server struct {
	backend Backend

	mu       sync.Mutex
	lis      net.Listener
	conns    map[net.Conn]struct{}
	draining bool
	done     chan struct{} // closed when Serve returns

	handling sync.WaitGroup // in-flight connection loops
}

// NewServer creates a server for backend.
func NewServer(b Backend) *Server {
	return &Server{backend: b, conns: make(map[net.Conn]struct{}), done: make(chan struct{})}
}

// Serve accepts connections on lis until Shutdown (or a listener error) and
// blocks meanwhile. After Shutdown it returns nil.
func (s *Server) Serve(lis net.Listener) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return errors.New("rpc: server already shut down")
	}
	s.lis = lis
	s.mu.Unlock()
	defer close(s.done)
	for {
		conn, err := lis.Accept()
		if err != nil {
			s.mu.Lock()
			draining := s.draining
			s.mu.Unlock()
			if draining {
				return nil
			}
			return fmt.Errorf("rpc: accept: %w", err)
		}
		s.mu.Lock()
		if s.draining {
			s.mu.Unlock()
			conn.Close()
			continue
		}
		s.conns[conn] = struct{}{}
		s.handling.Add(1)
		s.mu.Unlock()
		go s.serveConn(conn)
	}
}

// Shutdown drains the server gracefully: stop accepting, let every
// connection finish the request it is handling (plus any already-read
// pipeline), flush responses, then close. It waits until the drain
// completes or ctx expires, whichever is first.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	lis := s.lis
	// Unblock readers parked in ReadFrame; the connection loop finishes the
	// current request and exits on the read error.
	for conn := range s.conns {
		conn.SetReadDeadline(time.Now())
	}
	s.mu.Unlock()
	if lis != nil {
		lis.Close()
	}
	drained := make(chan struct{})
	go func() {
		s.handling.Wait()
		close(drained)
	}()
	select {
	case <-drained:
	case <-ctx.Done():
		// Force-close whatever is still open.
		s.mu.Lock()
		for conn := range s.conns {
			conn.Close()
		}
		s.mu.Unlock()
		return ctx.Err()
	}
	if lis != nil {
		select {
		case <-s.done:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	return nil
}

func (s *Server) removeConn(conn net.Conn) {
	s.mu.Lock()
	delete(s.conns, conn)
	s.mu.Unlock()
	conn.Close()
	s.handling.Done()
}

// serveConn is one connection's request loop: decode, handle, respond.
// Handling is strictly in read order, which makes the connection a FIFO
// event channel (the NetOwner invariant) and responses naturally ordered.
func (s *Server) serveConn(conn net.Conn) {
	defer s.removeConn(conn)
	br := bufio.NewReaderSize(conn, 64<<10)
	bw := bufio.NewWriterSize(conn, 64<<10)
	var out []byte
	for {
		f, err := ReadFrame(br)
		if err != nil {
			// EOF, deadline (drain), or protocol garbage — including a
			// version mismatch, which the peer's own ReadFrame check
			// surfaces on its side: flush what we owe and drop the
			// connection.
			bw.Flush()
			return
		}
		out = s.handle(out[:0], &f)
		if _, err := bw.Write(out); err != nil {
			return
		}
		// Write batching: only flush when no further request is already
		// buffered, so a pipelined burst is answered with one syscall.
		if br.Buffered() < 4 {
			if err := bw.Flush(); err != nil {
				return
			}
		}
	}
}

// handle executes one request and appends the response frame to dst.
func (s *Server) handle(dst []byte, f *Frame) []byte {
	ok := func(body []byte) []byte { return AppendFrame(dst, MsgOK, f.ID, body) }
	fail := func(code Code, err error) []byte {
		return AppendFrame(dst, MsgErr, f.ID, appendWireError(nil, code, err.Error()))
	}
	switch f.Type {
	case MsgPing:
		return ok(nil)
	case MsgFeed:
		r, rest, err := trace.ConsumeRecord(f.Body)
		if err == nil && len(rest) != 0 {
			err = fmt.Errorf("rpc: %d trailing bytes after record", len(rest))
		}
		if err != nil {
			return fail(CodeBadRequest, err)
		}
		if err := s.backend.Feed(&r); err != nil {
			return fail(CodeInternal, err)
		}
		return ok(nil)
	case MsgFeedBatch:
		recs, err := consumeRecords(f.Body)
		if err != nil {
			return fail(CodeBadRequest, err)
		}
		if err := s.backend.FeedBatch(recs); err != nil {
			return fail(CodeInternal, err)
		}
		return ok(nil)
	case MsgPredict:
		file, k, err := decodePredictReq(f.Body)
		if err != nil {
			return fail(CodeBadRequest, err)
		}
		return ok(appendFileIDs(nil, s.backend.Predict(file, k)))
	case MsgList:
		file, rest, err := consumeU32(f.Body)
		if err == nil && len(rest) != 0 {
			err = fmt.Errorf("rpc: %d trailing bytes after file id", len(rest))
		}
		if err != nil {
			return fail(CodeBadRequest, err)
		}
		return ok(appendCorrelators(nil, s.backend.CorrelatorList(trace.FileID(file))))
	case MsgStats:
		return ok(appendStats(nil, s.backend.Stats()))
	case MsgSave:
		if err := s.backend.Save(); err != nil {
			return fail(CodeInternal, err)
		}
		return ok(nil)
	case MsgLoad:
		if err := s.backend.Load(); err != nil {
			return fail(CodeInternal, err)
		}
		return ok(nil)
	case MsgApplyEvents:
		evs, err := consumeEvents(f.Body)
		if err != nil {
			return fail(CodeBadRequest, err)
		}
		s.backend.ApplyEvents(evs)
		return ok(nil)
	default:
		return fail(CodeUnsupported, fmt.Errorf("rpc: unknown request type %d", f.Type))
	}
}

// ListenAndServe listens on addr (TCP) and serves until Shutdown.
func (s *Server) ListenAndServe(addr string) error {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("rpc: listen %s: %w", addr, err)
	}
	return s.Serve(lis)
}
