package rpc

import (
	"context"
	"errors"
	"sync"
	"testing"

	"farmer/internal/core"
	"farmer/internal/trace"
	"farmer/internal/tracegen"
)

// faultBackend wraps minerBackend, failing every Feed/FeedBatch while armed.
type faultBackend struct {
	*minerBackend
	mu     sync.Mutex
	broken error
}

func (b *faultBackend) fault(err error) {
	b.mu.Lock()
	b.broken = err
	b.mu.Unlock()
}

func (b *faultBackend) Feed(r *trace.Record) error {
	b.mu.Lock()
	err := b.broken
	b.mu.Unlock()
	if err != nil {
		return err
	}
	return b.minerBackend.Feed(r)
}

func (b *faultBackend) FeedBatch(recs []trace.Record) error {
	b.mu.Lock()
	err := b.broken
	b.mu.Unlock()
	if err != nil {
		return err
	}
	return b.minerBackend.FeedBatch(recs)
}

// TestAckWindowFeedAndFlush: a windowed stream lands every record (the Flush
// barrier accounts for all in-flight acks) and mines state bit-identical to
// sequential feeding, while the window bound holds throughout.
func TestAckWindowFeedAndFlush(t *testing.T) {
	tr, err := tracegen.HP(3000).Generate()
	if err != nil {
		t.Fatal(err)
	}
	b := newMinerBackend(2)
	addr, _, stop := startServer(t, b)
	defer stop()
	c := dialT(t, addr)
	defer c.Close()
	ctx := context.Background()

	const n = 16
	w := c.NewAckWindow(n)
	if w.Window() != n {
		t.Fatalf("window %d, want %d", w.Window(), n)
	}
	for i := range tr.Records {
		if err := w.Feed(ctx, &tr.Records[i]); err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if f := w.InFlight(); f > n {
			t.Fatalf("record %d: %d frames in flight exceeds window %d", i, f, n)
		}
	}
	if err := w.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	if f := w.InFlight(); f != 0 {
		t.Fatalf("%d frames in flight after Flush", f)
	}
	if got := b.sm.Fed(); got != uint64(len(tr.Records)) {
		t.Fatalf("backend fed %d of %d", got, len(tr.Records))
	}

	ref := core.NewSharded(core.DefaultConfig())
	for i := range tr.Records {
		ref.Feed(&tr.Records[i])
	}
	fc := ref.TrackedFileCount()
	if got, want := core.StateFingerprint(b.sm, fc), core.StateFingerprint(ref, fc); got != want {
		t.Fatalf("windowed state fingerprint %x != sequential %x", got, want)
	}
}

// TestAckWindowFeedBatch: batches ride window slots frame by frame and land
// exactly once.
func TestAckWindowFeedBatch(t *testing.T) {
	tr, err := tracegen.HP(4000).Generate()
	if err != nil {
		t.Fatal(err)
	}
	b := newMinerBackend(1)
	addr, _, stop := startServer(t, b)
	defer stop()
	c := dialT(t, addr)
	defer c.Close()
	ctx := context.Background()

	w := c.NewAckWindow(4)
	for lo := 0; lo < len(tr.Records); lo += 512 {
		hi := lo + 512
		if hi > len(tr.Records) {
			hi = len(tr.Records)
		}
		if err := w.FeedBatch(ctx, tr.Records[lo:hi]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	if got := b.sm.Fed(); got != uint64(len(tr.Records)) {
		t.Fatalf("backend fed %d of %d", got, len(tr.Records))
	}
}

// TestAckWindowStickyErrorAndResume: the first failed ack poisons the
// window — later Feeds fail fast without sending — and Flush surfaces then
// clears it, after which the same window carries the resumed stream.
func TestAckWindowStickyErrorAndResume(t *testing.T) {
	tr, err := tracegen.HP(500).Generate()
	if err != nil {
		t.Fatal(err)
	}
	fb := &faultBackend{minerBackend: newMinerBackend(1)}
	addr, _, stop := startServer(t, fb)
	defer stop()
	c := dialT(t, addr)
	defer c.Close()
	ctx := context.Background()

	w := c.NewAckWindow(4)
	for i := 0; i < 8; i++ {
		if err := w.Feed(ctx, &tr.Records[i]); err != nil {
			t.Fatalf("healthy record %d: %v", i, err)
		}
	}
	fb.fault(errors.New("injected mining fault"))

	// Keep feeding until a reaped ack surfaces the fault.
	var first error
	for i := 8; i < len(tr.Records); i++ {
		if first = w.Feed(ctx, &tr.Records[i]); first != nil {
			break
		}
	}
	if first == nil {
		first = w.Flush(ctx)
	}
	if first == nil {
		t.Fatal("injected fault never surfaced")
	}

	// Sticky: the next Feed fails fast with the SAME first error, even
	// though the backend has already recovered — nothing is re-sent past a
	// failure until the caller flushes.
	fb.fault(nil)
	if err := w.Feed(ctx, &tr.Records[0]); !errors.Is(err, first) && err.Error() != first.Error() {
		t.Fatalf("post-fault Feed: got %v, want the sticky %v", err, first)
	}
	if w.Err() == nil {
		t.Fatal("Err lost the sticky failure")
	}

	// Flush drains, surfaces the first failure once, and clears it.
	if err := w.Flush(ctx); err == nil {
		t.Fatal("Flush swallowed the sticky failure")
	}
	if w.Err() != nil {
		t.Fatalf("sticky error survived Flush: %v", w.Err())
	}
	if w.InFlight() != 0 {
		t.Fatalf("%d frames in flight after Flush", w.InFlight())
	}

	// The cleared window carries the resumed stream.
	before := fb.minerBackend.sm.Fed()
	for i := 0; i < 32; i++ {
		if err := w.Feed(ctx, &tr.Records[i]); err != nil {
			t.Fatalf("resumed record %d: %v", i, err)
		}
	}
	if err := w.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	if got := fb.minerBackend.sm.Fed(); got != before+32 {
		t.Fatalf("resumed stream landed %d records, want 32", got-before)
	}
}

// TestAckWindowDisconnectPoisons: a connection loss fails the whole window
// with the typed in-doubt error.
func TestAckWindowDisconnectPoisons(t *testing.T) {
	tr, err := tracegen.HP(200).Generate()
	if err != nil {
		t.Fatal(err)
	}
	b := newMinerBackend(1)
	addr, _, stop := startServer(t, b)
	c := dialT(t, addr)
	defer c.Close()
	ctx := context.Background()

	w := c.NewAckWindow(64)
	for i := 0; i < 32; i++ {
		if err := w.Feed(ctx, &tr.Records[i]); err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
	}
	stop() // server gone: in-flight acks die with the connection
	err = w.Flush(ctx)
	for i := 0; err == nil && i < 64; i++ {
		err = w.Feed(ctx, &tr.Records[i%len(tr.Records)])
		if err == nil {
			err = w.Flush(ctx)
		}
	}
	if !errors.Is(err, ErrDisconnected) {
		t.Fatalf("window over a dead connection: got %v, want ErrDisconnected", err)
	}
}
