package rpc

import (
	"context"
	"sync"

	"farmer/internal/partition"
)

// DefaultNetOwnerWindow bounds a NetOwner's un-acked batches in flight.
const DefaultNetOwnerWindow = 64

// NetOwner adapts a Client into a partition.Owner: a dispatcher's event
// batches for one partition are shipped to a remote server as pipelined
// MsgApplyEvents requests. Because one connection delivers and the server
// handles requests strictly in arrival order, the remote model applies the
// batches in emission order — the FIFO invariant that keeps a remote
// partition bit-identical to a locally fed shard.
//
// ApplyEvents never waits a round trip: up to window batches ride the wire
// un-acked, and only when the window fills does the producer wait for the
// oldest ack (bounded memory, full pipelining). Errors are sticky and
// surface on Flush, Err, or the first ApplyEvents after the failure — an
// Owner cannot return one inline.
//
// Like the in-process shard owners, a NetOwner expects a single dispatching
// goroutine; it is not safe for concurrent ApplyEvents calls.
type NetOwner struct {
	c      *Client
	window int

	inflight []*pending
	err      error
	body     []byte // encode scratch, reused across batches

	mu sync.Mutex // guards err for the Err() side read
}

// NewNetOwner wraps an established client. window <= 0 selects
// DefaultNetOwnerWindow.
func NewNetOwner(c *Client, window int) *NetOwner {
	if window <= 0 {
		window = DefaultNetOwnerWindow
	}
	return &NetOwner{c: c, window: window}
}

var _ partition.Owner = (*NetOwner)(nil)

// ApplyEvents ships one batch. A transport or server error poisons the
// owner: subsequent batches are dropped (counted against nothing — the
// connection is already lost) and the error surfaces on Flush/Err.
func (o *NetOwner) ApplyEvents(evs []partition.Event) {
	if o.Err() != nil || len(evs) == 0 {
		return
	}
	o.body = appendEvents(o.body[:0], evs)
	p, err := o.c.start(MsgApplyEvents, o.body)
	if err != nil {
		o.setErr(err)
		return
	}
	o.inflight = append(o.inflight, p)
	if len(o.inflight) >= o.window {
		o.awaitOldest()
	}
}

// awaitOldest blocks for the oldest in-flight ack.
func (o *NetOwner) awaitOldest() {
	p := o.inflight[0]
	o.inflight = o.inflight[1:]
	if _, err := o.c.wait(context.Background(), p); err != nil {
		o.setErr(err)
	}
}

// Flush waits until every shipped batch is acked (or failed) and returns
// the first error. After a successful Flush the remote model has applied
// everything this owner ever shipped.
func (o *NetOwner) Flush() error {
	for len(o.inflight) > 0 {
		o.awaitOldest()
	}
	return o.Err()
}

// Err returns the sticky first error.
func (o *NetOwner) Err() error {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.err
}

func (o *NetOwner) setErr(err error) {
	o.mu.Lock()
	if o.err == nil {
		o.err = err
	}
	o.mu.Unlock()
}
