package rpc

// Boundary audit for the client's local oversize refusal (Client.start): the
// largest admissible body is exactly MaxFrame - frameHeaderMin - len(tenant)
// — the frame's length field counts version, type, id and the tenant length
// byte plus the tenant id itself, and the server's ReadFrame rejects only
// lengths STRICTLY above MaxFrame. These tests pin both edges against a live
// loopback server: the boundary body must round-trip (an off-by-one refusing
// it would waste a legal frame size; one admitting bound+1 would let the
// server kill the connection and fail every pipelined call).

import (
	"context"
	"errors"
	"testing"
)

// maxBody is the largest body the v2 frame admits for a tenant id of the
// given length — kept as an expression so the test recomputes the header
// arithmetic independently of Client.start's copy of it.
func maxBody(tenantLen int) int { return MaxFrame - frameHeaderMin - tenantLen }

func testOversizeBoundary(t *testing.T, c *Client, tenantLen int) {
	t.Helper()
	ctx := context.Background()
	buf := make([]byte, maxBody(tenantLen)+1)

	// Exactly at the bound: admitted locally AND accepted by the server
	// (MsgPing ignores its body, so the ack proves the frame survived
	// ReadFrame intact).
	p, err := c.start(MsgPing, buf[:maxBody(tenantLen)])
	if err != nil {
		t.Fatalf("boundary body (%d bytes) refused locally: %v", maxBody(tenantLen), err)
	}
	if _, err := c.wait(ctx, p); err != nil {
		t.Fatalf("boundary frame rejected by the live server: %v", err)
	}

	// One past the bound: refused locally with the typed error, before the
	// frame can reach the server and take the connection down.
	if _, err := c.start(MsgPing, buf); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("bound+1 body: got %v, want ErrFrameTooLarge", err)
	}

	// The refusal must have been local: the connection still serves.
	if _, err := c.Ping(ctx); err != nil {
		t.Fatalf("connection unhealthy after local oversize refusal: %v", err)
	}
}

func TestOversizeBoundaryDefaultTenant(t *testing.T) {
	addr, _, stop := startServer(t, newMinerBackend(1))
	defer stop()
	c := dialT(t, addr)
	defer c.Close()
	testOversizeBoundary(t, c, 0)
}

func TestOversizeBoundaryNamedTenant(t *testing.T) {
	const tenant = "alpha"
	addr, stop := startResolverServer(t, mapResolver{tenant: newMinerBackend(1)}, ServerOptions{})
	defer stop()
	c, err := DialWith(context.Background(), addr, DialOptions{Tenant: tenant})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	testOversizeBoundary(t, c, len(tenant))
}
