package rpc

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"farmer/internal/trace"
)

// Replicator is the primary half of farmerd replication: it owns the
// outbound replication stream to every attached follower and the single
// stream-position counter both ends agree on.
//
// The contract with the serving layer is that EVERY mutation of the mined
// stream goes through Ingest (records) or Groups (group-backup cuts): the
// mutation runs under the replicator's lock, so the local mine, the position
// assignment and the enqueue onto each follower connection are one atomic
// step, and each follower connection — a FIFO channel, like every rpc
// connection — carries the exact stream the primary mined, in order.
// Acks are awaited OUTSIDE the lock, so followers add latency but the
// pipeline stays full.
//
// Ingest returns only after every live follower acked, which is what makes
// the serving layer's client ack mean "this record survives the primary":
// zero acked-record loss on primary failure, the §4.3 recoverability claim
// replication exists for.
//
// A follower whose connection fails is detached and reported through the
// lost callback; the primary keeps serving (availability wins over replica
// count — the operator restarts the follower, which bootstraps again via
// catch-up).
type Replicator struct {
	mu         sync.Mutex
	pos        uint64
	followers  []*replFollower
	ackTimeout time.Duration
	lost       func(addr string, err error)
	dialOpts   DialOptions

	// Delta catch-up (EnableDeltaCatchup): the tail ring retains the last
	// tailCap ingested records — positions [tailBase, pos) — so a follower
	// restarting from its own on-disk checkpoint can be caught up by
	// replaying just the records it missed instead of shipping a full
	// snapshot. deltaFp non-nil is the armed flag.
	tailCap  int
	tail     []trace.Record
	tailBase uint64
	deltaFp  func() (fingerprint uint64, fileCount int)
}

type replFollower struct {
	addr string
	c    *Client
	// acked is the highest stream position this follower has acknowledged —
	// the subtrahend of the lag gauge (primary pos − acked pos). Updated by
	// whatever goroutine collects the ack, monotonically (awaits from
	// concurrent Ingest calls may observe acks out of order).
	acked atomic.Uint64
}

// ackTo raises the follower's acked position to pos (never lowers it).
func (f *replFollower) ackTo(pos uint64) {
	for {
		cur := f.acked.Load()
		if pos <= cur || f.acked.CompareAndSwap(cur, pos) {
			return
		}
	}
}

// FollowerLag is one attached follower's replication progress: the highest
// stream position it acked and how many records it trails the primary by.
// A caught-up follower reports Lag 0.
type FollowerLag struct {
	Addr  string
	Acked uint64
	Lag   uint64
}

// Lags samples every attached follower's replication lag — the read behind
// the farmer_repl_lag_records gauge and the MsgObs ReplLagMax field.
func (r *Replicator) Lags() []FollowerLag {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]FollowerLag, len(r.followers))
	for i, f := range r.followers {
		acked := f.acked.Load()
		var lag uint64
		if r.pos > acked {
			lag = r.pos - acked
		}
		out[i] = FollowerLag{Addr: f.addr, Acked: acked, Lag: lag}
	}
	return out
}

// NewReplicator creates a replicator whose stream starts at pos (the
// primary miner's current record count). ackTimeout bounds the wait for one
// follower's ack (<= 0 means unbounded): a follower that is connected but
// wedged — its process stopped, its disk stuck — never produces a transport
// error, and without the bound it would block every Ingest (and therefore
// every client write on the primary) forever; when the bound expires the
// follower is detached like a dead one. lost, if non-nil, is called once
// for each follower dropped after a replication failure.
func NewReplicator(pos uint64, ackTimeout time.Duration, lost func(addr string, err error)) *Replicator {
	return &Replicator{pos: pos, ackTimeout: ackTimeout, lost: lost}
}

// SetDialOptions sets the options every later Attach dials followers with:
// a tenant-bound replicator stamps its tenant id on every catch-up and
// replication frame (the follower reassembles per-tenant streams from
// per-tenant connections), and the token/TLS half authenticates against a
// follower running with -auth or -tls-cert. Call before the first Attach.
func (r *Replicator) SetDialOptions(opts DialOptions) {
	r.mu.Lock()
	r.dialOpts = opts
	r.mu.Unlock()
}

// EnableDeltaCatchup arms the delta catch-up path: the replicator retains
// the most recent tailCap ingested records, and Attach first offers a
// restarted follower — one whose Stats place its position inside that tail —
// a MsgCatchupDelta replay from its own position instead of a full snapshot.
// fp is consulted under the stream lock (the stream is quiescent) and must
// return the primary's current state fingerprint and tracked-file bound; the
// follower verifies the fingerprint after replaying the delta, so a delta
// attach ends with the same state guarantee as a full one. tailCap <= 0 is a
// no-op. Call before the first Attach.
func (r *Replicator) EnableDeltaCatchup(tailCap int, fp func() (fingerprint uint64, fileCount int)) {
	if tailCap <= 0 || fp == nil {
		return
	}
	r.mu.Lock()
	r.tailCap = tailCap
	r.deltaFp = fp
	r.tail = r.tail[:0]
	r.tailBase = r.pos
	r.mu.Unlock()
}

// Pos reports the current stream position (records ingested through the
// replicator plus the starting position).
func (r *Replicator) Pos() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.pos
}

// Followers reports the attached follower addresses.
func (r *Replicator) Followers() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	addrs := make([]string, len(r.followers))
	for i, f := range r.followers {
		addrs[i] = f.addr
	}
	return addrs
}

// Attach dials a follower, cuts a checkpoint of the primary's state and
// ships it as a MsgCatchup frame, then adds the follower to the live
// stream. cut runs under the replicator's lock — the stream is quiescent
// while the checkpoint is taken, so the cut and the attach are atomic: no
// record can slip between the snapshot and the first replicated frame. The
// returned error covers dialing, cutting and the follower's verification of
// the cut.
func (r *Replicator) Attach(ctx context.Context, addr string, cut func() (CatchupCut, error)) error {
	r.mu.Lock()
	opts := r.dialOpts
	deltaOn := r.deltaFp != nil
	r.mu.Unlock()
	c, err := DialWith(ctx, addr, opts)
	if err != nil {
		return fmt.Errorf("rpc: attaching follower %s: %w", addr, err)
	}
	if deltaOn {
		done, sent, derr := r.attachDelta(ctx, addr, c)
		if done {
			return derr
		}
		if sent {
			// The follower refused the replay mid-delta (an old server
			// answers CodeUnsupported here): fall back to the full cut on a
			// fresh connection — the refused transfer may have left frames
			// in flight on this one.
			c.Close()
			if c, err = DialWith(ctx, addr, opts); err != nil {
				return fmt.Errorf("rpc: attaching follower %s: %w", addr, err)
			}
		}
		// Offer inapplicable (no resumable position, or outside the tail):
		// nothing was sent, the same connection carries the full cut.
	}
	r.mu.Lock()
	cc, err := cut()
	if err != nil {
		r.mu.Unlock()
		c.Close()
		return fmt.Errorf("rpc: attaching follower %s: cutting checkpoint: %w", addr, err)
	}
	if cc.Pos != r.pos {
		// The miner was fed behind the replicator's back; refusing beats
		// shipping a stream the follower will refuse at the first frame.
		r.mu.Unlock()
		c.Close()
		return fmt.Errorf("rpc: attaching follower %s: checkpoint at position %d, stream at %d (miner fed outside the replicator?)",
			addr, cc.Pos, r.pos)
	}
	// A snapshot bigger than one frame ships as MsgCatchupChunk frames plus
	// a final MsgCatchup carrying the tail — the same FIFO connection
	// reassembles them in order, so a model of any size can bootstrap a
	// follower (MaxFrame bounds one frame, not the transfer).
	var pendings []*pending
	startErr := func() error {
		snap := cc.Snapshot
		for len(snap) > maxCatchupChunk {
			p, err := c.start(MsgCatchupChunk, snap[:maxCatchupChunk])
			if err != nil {
				return err
			}
			pendings = append(pendings, p)
			snap = snap[maxCatchupChunk:]
		}
		tail := cc
		tail.Snapshot = snap
		p, err := c.start(MsgCatchup, appendCatchup(nil, &tail))
		if err != nil {
			return err
		}
		pendings = append(pendings, p)
		return nil
	}()
	if startErr != nil {
		r.mu.Unlock()
		c.Close()
		return fmt.Errorf("rpc: attaching follower %s: %w", addr, startErr)
	}
	f := &replFollower{addr: addr, c: c}
	r.followers = append(r.followers, f)
	r.mu.Unlock()

	// Wait for the follower's verdicts outside the lock: later frames are
	// already FIFO-ordered behind the catch-up, so the stream stays correct
	// whether the acks arrive before or after them — but a refusal must
	// detach the follower and surface to the caller.
	for _, p := range pendings {
		if _, err := c.wait(ctx, p); err != nil {
			r.detach(f, err)
			return fmt.Errorf("rpc: follower %s refused catch-up: %w", addr, err)
		}
	}
	// The verified cut is the follower's first acked position; stream
	// frames enqueued behind the catch-up raise it from here.
	f.ackTo(cc.Pos)
	return nil
}

// maxCatchupChunk caps one catch-up frame's snapshot bytes, comfortably
// under MaxFrame (mirroring the feed path's maxBatchBody). Variable only so
// tests can force the chunked path on small snapshots.
var maxCatchupChunk = 8 << 20

// attachDelta offers a restarted follower a catch-up by record replay from
// its own position. done=true means the attach completed and err is its
// outcome; done=false means the offer did not apply and the caller should
// fall back to the full cut — on a fresh connection when sent reports delta
// frames already went out, on this same connection otherwise. The probe (the
// follower's Stats) runs outside the stream lock — an idle, unattached
// follower's position cannot move; the cut itself — position check,
// fingerprint, frame starts, follower registration — is atomic under the
// lock, exactly like the full path.
func (r *Replicator) attachDelta(ctx context.Context, addr string, c *Client) (done, sent bool, err error) {
	st, err := c.Stats(ctx)
	if err != nil || st.Fed == 0 {
		return false, false, nil
	}
	r.mu.Lock()
	if st.Fed < r.tailBase || st.Fed > r.pos {
		r.mu.Unlock()
		return false, false, nil
	}
	fp, fileCount := r.deltaFp()
	recs := r.tail[st.Fed-r.tailBase:]
	// A delta bigger than one frame ships as non-final MsgCatchupDelta
	// frames (each at its own cumulative position, replayed in FIFO order)
	// plus a final frame carrying the fingerprint the follower must match
	// after the whole replay. Zero missed records still ship one final
	// frame: the fingerprint check is the attach guarantee.
	var pendings []*pending
	startErr := func() error {
		pos := st.Fed
		for {
			n, size := 0, 0
			for n < len(recs) && size < maxCatchupChunk {
				size += 24 + len(recs[n].Path)
				n++
			}
			final := n == len(recs)
			d := CatchupDelta{FromPos: pos, Records: recs[:n], Final: final}
			if final {
				d.Fingerprint, d.FileCount = fp, fileCount
			}
			p, err := c.start(MsgCatchupDelta, appendCatchupDelta(nil, &d))
			if err != nil {
				return err
			}
			pendings = append(pendings, p)
			if final {
				return nil
			}
			pos += uint64(n)
			recs = recs[n:]
		}
	}()
	if startErr != nil {
		r.mu.Unlock()
		return false, true, nil
	}
	f := &replFollower{addr: addr, c: c}
	r.followers = append(r.followers, f)
	endPos := r.pos
	r.mu.Unlock()

	for _, p := range pendings {
		if _, werr := c.wait(ctx, p); werr != nil {
			// Not a lost follower — the caller retries with a full cut —
			// so detach without the lost callback.
			r.detachQuiet(f)
			return false, true, nil
		}
	}
	// The replay the follower just verified ends at the cut position.
	f.ackTo(endPos)
	return true, true, nil
}

// detachQuiet removes a follower without closing its connection or invoking
// the lost callback — used when a refused delta offer is about to be retried
// as a full cut.
func (r *Replicator) detachQuiet(f *replFollower) {
	r.mu.Lock()
	for i, g := range r.followers {
		if g == f {
			r.followers = append(r.followers[:i], r.followers[i+1:]...)
			break
		}
	}
	r.mu.Unlock()
}

// Ingest replicates one record batch: mine runs the local ingestion under
// the stream lock, then the batch is enqueued to every follower at the
// claimed position. It returns after every live follower acked (followers
// that fail are detached and reported, not waited for). mine's error aborts
// the step before anything is shipped.
func (r *Replicator) Ingest(ctx context.Context, recs []trace.Record, mine func() error) error {
	if len(recs) == 0 {
		return nil
	}
	r.mu.Lock()
	if err := mine(); err != nil {
		r.mu.Unlock()
		return err
	}
	var body []byte
	waits := r.enqueueLocked(func() []byte {
		if body == nil {
			body = appendReplicateRecords(nil, r.pos, recs)
		}
		return body
	}, r.pos+uint64(len(recs)))
	if r.deltaFp != nil {
		// Extend the catch-up tail. Trimming by reslice leaves the backing
		// array to append's usual reallocation; memory stays within a small
		// constant of tailCap records.
		r.tail = append(r.tail, recs...)
		if drop := len(r.tail) - r.tailCap; drop > 0 {
			r.tail = r.tail[drop:]
			r.tailBase += uint64(drop)
		}
	}
	r.pos += uint64(len(recs))
	r.mu.Unlock()
	r.await(ctx, waits)
	return nil
}

// Groups replicates a group-backup command: run executes the cut locally
// under the stream lock (at a definite position), and every follower
// receives the same command at the same position. run's error aborts the
// step before anything is shipped.
func (r *Replicator) Groups(ctx context.Context, req GroupsReq, run func() error) error {
	r.mu.Lock()
	if err := run(); err != nil {
		r.mu.Unlock()
		return err
	}
	var body []byte
	waits := r.enqueueLocked(func() []byte {
		if body == nil {
			body = appendReplicateGroups(nil, r.pos, &req)
		}
		return body
	}, r.pos)
	if r.deltaFp != nil {
		// A group cut is a command, not records: a follower resuming from
		// before it would replay the records but silently miss the cut, so
		// the resumable tail restarts at the current position.
		r.tail = r.tail[:0]
		r.tailBase = r.pos
	}
	r.mu.Unlock()
	r.await(ctx, waits)
	return nil
}

type replWait struct {
	f   *replFollower
	p   *pending
	pos uint64 // stream position after the frame applies (the ack's meaning)
}

// enqueueLocked starts one frame toward every follower, holding r.mu. post
// is the stream position the frame's ack will attest to. Followers whose
// connection refuses the enqueue are detached immediately.
func (r *Replicator) enqueueLocked(body func() []byte, post uint64) []replWait {
	waits := make([]replWait, 0, len(r.followers))
	for i := 0; i < len(r.followers); i++ {
		f := r.followers[i]
		p, err := f.c.start(MsgReplicate, body())
		if err != nil {
			r.followers = append(r.followers[:i], r.followers[i+1:]...)
			i--
			go r.report(f, err)
			continue
		}
		waits = append(waits, replWait{f, p, post})
	}
	return waits
}

// await collects acks; a failed — or ackTimeout-stuck — follower is
// detached.
func (r *Replicator) await(ctx context.Context, waits []replWait) {
	for _, w := range waits {
		wctx, cancel := ctx, context.CancelFunc(func() {})
		if r.ackTimeout > 0 {
			wctx, cancel = context.WithTimeout(ctx, r.ackTimeout)
		}
		_, err := w.f.c.wait(wctx, w.p)
		cancel()
		if err != nil {
			if errors.Is(err, context.DeadlineExceeded) {
				err = fmt.Errorf("no ack within %v (follower wedged?): %w", r.ackTimeout, err)
			}
			r.detach(w.f, err)
			continue
		}
		w.f.ackTo(w.pos)
	}
}

func (r *Replicator) detach(f *replFollower, err error) {
	r.mu.Lock()
	for i, g := range r.followers {
		if g == f {
			r.followers = append(r.followers[:i], r.followers[i+1:]...)
			break
		}
	}
	r.mu.Unlock()
	r.report(f, err)
}

func (r *Replicator) report(f *replFollower, err error) {
	f.c.Close()
	if r.lost != nil && !errors.Is(err, ErrClientClosed) {
		r.lost(f.addr, err)
	}
}

// RenewLease broadcasts the leader's term to every attached follower as a
// MsgLeaseGrant on the replication stream (FIFO behind any in-flight
// records). It reports how many followers acked the renewal and whether any
// refused it as stale — the leader's signal that a higher epoch exists and
// it must depose itself. A stale refusal does NOT detach the follower (its
// replication link is healthy; the leadership is what's wrong); transport
// errors detach as usual.
func (r *Replicator) RenewLease(ctx context.Context, info LeaseInfo) (acked int, stale bool) {
	r.mu.Lock()
	body := appendLeaseInfo(nil, &info)
	type grantWait struct {
		f *replFollower
		p *pending
	}
	waits := make([]grantWait, 0, len(r.followers))
	for i := 0; i < len(r.followers); i++ {
		f := r.followers[i]
		p, err := f.c.start(MsgLeaseGrant, body)
		if err != nil {
			r.followers = append(r.followers[:i], r.followers[i+1:]...)
			i--
			go r.report(f, err)
			continue
		}
		waits = append(waits, grantWait{f, p})
	}
	r.mu.Unlock()
	for _, w := range waits {
		wctx, cancel := ctx, context.CancelFunc(func() {})
		if r.ackTimeout > 0 {
			wctx, cancel = context.WithTimeout(ctx, r.ackTimeout)
		}
		_, err := w.f.c.wait(wctx, w.p)
		cancel()
		switch {
		case err == nil:
			acked++
		case errors.Is(err, ErrStaleEpoch):
			stale = true
		default:
			if errors.Is(err, context.DeadlineExceeded) {
				err = fmt.Errorf("no lease ack within %v (follower wedged?): %w", r.ackTimeout, err)
			}
			r.detach(w.f, err)
		}
	}
	return acked, stale
}

// TransferLease hands the lease to the attached follower at addr: the
// transfer grant is started on the follower's replication connection UNDER
// the stream lock — FIFO behind every record already enqueued, so the
// follower owns the complete acked stream the moment it adopts the term —
// and then commit runs, still under the lock, to mark the source stale
// (commit must not fail: after it, writes on the source refuse typed).
// The follower's ack is awaited outside the lock. An ack failure after the
// grant was sent leaves the source deposed — at worst an availability gap
// until the target's lease expires, never a double-leader window.
func (r *Replicator) TransferLease(ctx context.Context, addr string, info LeaseInfo, commit func()) error {
	info.Transfer = true
	r.mu.Lock()
	var target *replFollower
	for _, f := range r.followers {
		if f.addr == addr {
			target = f
			break
		}
	}
	if target == nil {
		r.mu.Unlock()
		return fmt.Errorf("rpc: lease transfer to %s: not an attached follower", addr)
	}
	p, err := target.c.start(MsgLeaseGrant, appendLeaseInfo(nil, &info))
	if err != nil {
		r.mu.Unlock()
		r.detach(target, err)
		return fmt.Errorf("rpc: lease transfer to %s: %w", addr, err)
	}
	commit()
	r.mu.Unlock()

	wctx, cancel := ctx, context.CancelFunc(func() {})
	if r.ackTimeout > 0 {
		wctx, cancel = context.WithTimeout(ctx, r.ackTimeout)
	}
	_, err = target.c.wait(wctx, p)
	cancel()
	if err != nil {
		return fmt.Errorf("rpc: lease transfer to %s: grant sent but not acked (source stays deposed): %w", addr, err)
	}
	return nil
}

// Close detaches every follower, draining their connections gracefully (a
// clean primary shutdown leaves followers fully caught up, ready for
// promotion).
func (r *Replicator) Close() {
	r.mu.Lock()
	followers := r.followers
	r.followers = nil
	r.mu.Unlock()
	for _, f := range followers {
		f.c.Close()
	}
}
