package rpc

import (
	"bufio"
	"bytes"
	"testing"

	"farmer/internal/partition"
	"farmer/internal/trace"
	"farmer/internal/vsm"
)

// FuzzFrameCodec feeds arbitrary bytes through the frame reader and every
// request-body decoder a server runs on untrusted input. Nothing may panic
// or allocate unboundedly; whatever decodes must re-encode to a decode-equal
// value (round-trip stability).
func FuzzFrameCodec(f *testing.F) {
	// Seed with one well-formed frame per message type that carries a body.
	rec := trace.Record{Seq: 1, File: 7, UID: 2, PID: 3, Host: 4, Dev: 5, Size: 6, Group: -1, Path: "/a/b"}
	f.Add(AppendFrame(nil, MsgFeed, 1, trace.AppendRecord(nil, &rec)))
	f.Add(AppendFrame(nil, MsgFeedBatch, 2, appendRecords(nil, []trace.Record{rec, rec})))
	f.Add(AppendFrame(nil, MsgPredict, 3, appendPredictReq(nil, 9, 4)))
	f.Add(AppendFrame(nil, MsgApplyEvents, 4, appendEvents(nil, []partition.Event{
		{Succ: 7, Vec: vsm.Vector{Scalars: []string{"u:1"}, Path: "/x"}, Seq: 1, Access: true},
		{Pred: 7, Succ: 9, Credit: 0.9, Seq: 2},
	})))
	f.Add(AppendFrame(nil, MsgErr, 5, appendWireError(nil, CodeInternal, "boom")))
	f.Add(AppendFrameTenant(nil, MsgFeed, 6, "tenant-a", trace.AppendRecord(nil, &rec)))
	f.Add(AppendFrameTenant(nil, MsgHello, 7, "t.0", appendHello(nil, "secret")))

	f.Fuzz(func(t *testing.T, data []byte) {
		fr, err := ReadFrame(bufio.NewReader(bytes.NewReader(data)))
		if err != nil {
			return
		}
		// Whatever decoded must re-encode byte-identically up to the frame
		// we consumed.
		re := AppendFrameTenant(nil, fr.Type, fr.ID, fr.Tenant, fr.Body)
		if !bytes.Equal(re, data[:len(re)]) {
			t.Fatalf("frame re-encode mismatch:\n in  %x\n out %x", data[:len(re)], re)
		}
		// Run the body decoders a server would; round-trip what succeeds.
		if r, rest, err := trace.ConsumeRecord(fr.Body); err == nil && len(rest) == 0 {
			if out := trace.AppendRecord(nil, &r); !bytes.Equal(out, fr.Body) {
				t.Fatalf("record re-encode mismatch")
			}
		}
		if recs, err := consumeRecords(fr.Body); err == nil {
			if out := appendRecords(nil, recs); !bytes.Equal(out, fr.Body) {
				t.Fatalf("batch re-encode mismatch")
			}
		}
		if evs, err := consumeEvents(fr.Body); err == nil {
			if out := appendEvents(nil, evs); !bytes.Equal(out, fr.Body) {
				t.Fatalf("events re-encode mismatch")
			}
		}
		consumeFileIDs(fr.Body)
		consumeCorrelators(fr.Body)
		consumeStats(fr.Body)
		decodePredictReq(fr.Body)
		if fr.Type == MsgErr {
			decodeWireError(fr.Body)
		}
	})
}
