// Package rpc puts the FARMER miner on the wire: a length-prefixed binary
// framing (reusing internal/trace's record codec), a pipelined client with
// per-connection write batching, a graceful-drain server, and a NetOwner
// adapter so a partition.Dispatcher can route mining events to a remote
// process.
//
// Frame layout (little-endian, like every codec in this repository):
//
//	u32 length            of everything after this field (max MaxFrame)
//	u8  version           ProtocolVersion; a mismatch fails the connection
//	u8  type              MsgType
//	u64 id                request id, echoed by the response (pipelining key)
//	u8  tenantLen         tenant id length (0 = the default tenant)
//	...tenant             tenant id bytes (see ValidTenant)
//	...body               per-type payload, see the Msg* constants
//
// Responses reuse the same frame: MsgOK carries the per-request result
// body, MsgErr carries `u16 code, u32 len, msg`. Requests on one
// connection are handled in arrival order and answered in that order, so a
// connection is a FIFO channel — the property NetOwner's bit-identical
// mining rests on. The tenant field namespaces every request: one farmerd
// hosts many independent miners, and a frame addresses exactly one of them
// (the empty tenant keeps single-miner deployments and `farmerctl ping`
// trivial).
package rpc

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"sync"

	"farmer/internal/core"
	"farmer/internal/lease"
	"farmer/internal/partition"
	"farmer/internal/trace"
	"farmer/internal/vsm"
)

// ProtocolVersion is the framing version byte. Bump it on any incompatible
// body or frame change; both ends refuse mismatched versions.
//
// Version history: 1 = the original tenantless frame; 2 = tenant id in the
// frame header plus the MsgHello auth handshake and MsgTenants listing.
const ProtocolVersion = 2

// MaxFrame bounds one frame's payload so a corrupt or hostile length field
// cannot demand an arbitrary allocation.
const MaxFrame = 1 << 26

// MaxTenantLen bounds a tenant id. Tenant ids name on-disk store
// directories, so the bound keeps paths sane everywhere.
const MaxTenantLen = 64

// ValidTenant reports whether name is usable as a tenant id: empty (the
// default tenant) or 1..MaxTenantLen characters from [a-zA-Z0-9._-], not
// starting with a dot. The charset makes a tenant id safe to use as a
// store directory name (farmerd -tenants-dir) without escaping, and the
// no-leading-dot rule excludes "." and ".." path traversal outright.
func ValidTenant(name string) error {
	if name == "" {
		return nil
	}
	if len(name) > MaxTenantLen {
		return fmt.Errorf("rpc: tenant id %q exceeds %d characters", name[:16]+"…", MaxTenantLen)
	}
	if name[0] == '.' {
		return fmt.Errorf("rpc: tenant id %q starts with a dot", name)
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '.', c == '_', c == '-':
		default:
			return fmt.Errorf("rpc: tenant id %q contains %q (allowed: letters, digits, '.', '_', '-')", name, c)
		}
	}
	return nil
}

// MsgType identifies a frame's body layout.
type MsgType uint8

// Request frames. Bodies:
//
//	MsgPing        (empty)                      → MsgOK (empty)
//	MsgFeed        trace.AppendRecord           → MsgOK (empty)
//	MsgFeedBatch   u32 count, records           → MsgOK (empty)
//	MsgPredict     u32 file, u32 k              → MsgOK u32 count, u32 files
//	MsgList        u32 file                     → MsgOK correlator list
//	MsgStats       (empty)                      → MsgOK stats body
//	MsgSave        (empty)                      → MsgOK (empty)
//	MsgLoad        (empty)                      → MsgOK (empty)
//	MsgApplyEvents u32 count, events            → MsgOK (empty)
//	MsgPromote     (empty)                      → MsgOK (empty)
//	MsgCatchup     catch-up cut                 → MsgOK (empty)
//	MsgReplicate   u64 pos, u8 kind, payload    → MsgOK (empty)
//	MsgGroups      groups request               → MsgOK groups info
const (
	MsgPing MsgType = iota + 1
	MsgFeed
	MsgFeedBatch
	MsgPredict
	MsgList
	MsgStats
	MsgSave
	MsgLoad
	MsgApplyEvents

	// Replication frames (see replicate.go and DESIGN.md "Replication &
	// failover"). MsgCatchup bootstraps a follower from the primary's
	// checkpoint cut; snapshots larger than one frame arrive as 0+
	// MsgCatchupChunk frames (raw snapshot bytes, accumulated per
	// connection) followed by the MsgCatchup carrying the final piece.
	// MsgReplicate streams the acked record feed (kind 0, the
	// trace.AppendRecord codec) and group-backup commands (kind 1);
	// MsgPromote asks a follower to start accepting writes — refused while
	// its primary's replication link is live (the split-brain guard).
	MsgPromote
	MsgCatchup
	MsgReplicate
	MsgGroups
	MsgCatchupChunk

	// MsgHello opens a connection (protocol v2): the body carries the
	// client's bearer token (empty when the server runs without auth), and
	// the MsgOK response body is the server's protocol version byte. A
	// server configured with auth refuses every other request type until a
	// hello presented a valid token — rejected before any frame dispatch.
	MsgHello
	// MsgTenants lists the live tenants: the MsgOK body is a TenantInfo
	// list (name + stats per tenant) — the read behind `farmerctl tenants`.
	MsgTenants
	// MsgCatchupDelta catches a restarted follower up from its own resumable
	// position with a chunked replay of the records it missed instead of a
	// full snapshot: u64 fromPos, u64 fingerprint, u32 fileCount, u8 flags
	// (bit 0 = final), u32 count + records. The fingerprint/fileCount fields
	// are zero on non-final chunks; the final chunk carries the primary's
	// current state fingerprint, which the follower verifies after replay
	// exactly like a full cut's. A server that predates the frame answers
	// CodeUnsupported, and the primary falls back to the full snapshot path.
	MsgCatchupDelta

	// MsgObs is the live-observability read behind `farmerctl top` and the
	// per-tenant columns of `farmerctl tenants`: request `u32 k, u8 flags`
	// (k = how many top correlation groups per tenant, 0 = none; flags
	// reserved), response a TenantObs list. Like MsgTenants it is
	// control-plane — not addressed to one tenant — and the listing is
	// filtered to the connection's granted tenants. (The name MsgStats was
	// already taken by the v0 single-miner stats frame; MsgObs is its
	// fleet-wide, per-tenant successor.)
	MsgObs

	// Lease frames (see internal/lease and DESIGN.md "Leases, epochs & live
	// handoff"). MsgLeaseRequest with epoch 0 is a status query — the MsgOK
	// body is the server's current LeaseInfo — and with epoch > 0 a vote
	// request for `candidate` at that epoch, answered empty-OK (vote granted)
	// or CodeStaleEpoch (term already taken, or the sitting leader's lease
	// is still live). MsgLeaseGrant announces a term: a renewal on the
	// replication stream, or — with the transfer flag — a live handoff that
	// makes the receiving follower the leader of the carried epoch.
	MsgLeaseRequest
	MsgLeaseGrant
	// MsgHandoff asks a leader to hand its lease (and its write role) to the
	// follower at the carried address, catching it up first if needed — the
	// frame behind `farmerctl rebalance`.
	MsgHandoff
	// MsgWireStats reads the server's per-request-type wire latency
	// accounting: empty request, response a WireStat list. Control-plane,
	// like MsgObs.
	MsgWireStats

	// Response frames.
	MsgOK  MsgType = 0x40
	MsgErr MsgType = 0x41
)

// String names a message type for metric labels and the `farmerctl top`
// latency table.
func (t MsgType) String() string {
	switch t {
	case MsgPing:
		return "ping"
	case MsgFeed:
		return "feed"
	case MsgFeedBatch:
		return "feed_batch"
	case MsgPredict:
		return "predict"
	case MsgList:
		return "list"
	case MsgStats:
		return "stats"
	case MsgSave:
		return "save"
	case MsgLoad:
		return "load"
	case MsgApplyEvents:
		return "apply_events"
	case MsgPromote:
		return "promote"
	case MsgCatchup:
		return "catchup"
	case MsgReplicate:
		return "replicate"
	case MsgGroups:
		return "groups"
	case MsgCatchupChunk:
		return "catchup_chunk"
	case MsgHello:
		return "hello"
	case MsgTenants:
		return "tenants"
	case MsgCatchupDelta:
		return "catchup_delta"
	case MsgObs:
		return "obs"
	case MsgLeaseRequest:
		return "lease_request"
	case MsgLeaseGrant:
		return "lease_grant"
	case MsgHandoff:
		return "handoff"
	case MsgWireStats:
		return "wire_stats"
	case MsgOK:
		return "ok"
	case MsgErr:
		return "err"
	}
	return fmt.Sprintf("msg_%d", uint8(t))
}

// Frame is one decoded wire frame.
type Frame struct {
	Type   MsgType
	ID     uint64
	Tenant string
	Body   []byte
}

// Framing errors.
var (
	ErrFrameTooLarge = errors.New("rpc: frame exceeds MaxFrame")
	// ErrBadVersion reports a protocol version mismatch — either a peer's
	// frame carried the wrong version byte, or (client-side) the server
	// closed the connection on our hello without answering, the signature
	// of a pre-tenant (v1) farmerd that drops unrecognized versions.
	ErrBadVersion = errors.New("rpc: protocol version mismatch")
)

// frameHeaderMin is the fixed payload prefix: version, type, id, tenantLen.
const frameHeaderMin = 1 + 1 + 8 + 1

// AppendFrame appends one encoded frame addressing the default tenant.
func AppendFrame(dst []byte, typ MsgType, id uint64, body []byte) []byte {
	return AppendFrameTenant(dst, typ, id, "", body)
}

// AppendFrameTenant appends one encoded frame addressing tenant. The tenant
// id must satisfy ValidTenant; longer ids are truncated at the length byte,
// so callers validate first.
func AppendFrameTenant(dst []byte, typ MsgType, id uint64, tenant string, body []byte) []byte {
	le := binary.LittleEndian
	dst = le.AppendUint32(dst, uint32(frameHeaderMin+len(tenant)+len(body)))
	dst = append(dst, ProtocolVersion, byte(typ))
	dst = le.AppendUint64(dst, id)
	dst = append(dst, byte(len(tenant)))
	dst = append(dst, tenant...)
	return append(dst, body...)
}

// ReadFrame decodes one frame from br. Body bytes are freshly allocated and
// safe to retain.
func ReadFrame(br *bufio.Reader) (Frame, error) {
	f, _, err := readFrameBuf(br, nil)
	return f, err
}

// readFrameBuf decodes one frame into buf (grown as needed) and returns the
// buffer for reuse. The frame's Body ALIASES the buffer — valid only until
// the next readFrameBuf call with it — which is what lets the server's
// request loop read the hot feed path without a per-frame allocation; pass
// nil to allocate fresh (ReadFrame's retain-safe contract).
func readFrameBuf(br *bufio.Reader, buf []byte) (Frame, []byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return Frame{}, buf, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n < 1 {
		return Frame{}, buf, fmt.Errorf("rpc: short frame: %d bytes", n)
	}
	if n > MaxFrame {
		return Frame{}, buf, fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, n)
	}
	if uint32(cap(buf)) < n {
		buf = make([]byte, n)
	}
	payload := buf[:n]
	if _, err := io.ReadFull(br, payload); err != nil {
		return Frame{}, buf, fmt.Errorf("rpc: truncated frame: %w", err)
	}
	// Version before the v2 length floor: a v1 frame (10-byte header) must
	// surface as a version mismatch — which the server answers with an
	// upgrade hint — not as anonymous protocol garbage.
	if payload[0] != ProtocolVersion {
		return Frame{}, buf, fmt.Errorf("%w: got %d, want %d", ErrBadVersion, payload[0], ProtocolVersion)
	}
	if n < frameHeaderMin {
		return Frame{}, buf, fmt.Errorf("rpc: short frame: %d bytes", n)
	}
	tl := int(payload[10])
	if frameHeaderMin+tl > int(n) {
		return Frame{}, buf, fmt.Errorf("rpc: tenant id truncated: %d bytes claimed, %d in frame", tl, int(n)-frameHeaderMin)
	}
	return Frame{
		Type:   MsgType(payload[1]),
		ID:     binary.LittleEndian.Uint64(payload[2:10]),
		Tenant: string(payload[frameHeaderMin : frameHeaderMin+tl]),
		Body:   payload[frameHeaderMin+tl:],
	}, buf, nil
}

// Code classifies a MsgErr response.
type Code uint16

const (
	// CodeBadRequest: the request body failed to decode or violated a
	// protocol invariant; retrying the same bytes cannot succeed.
	CodeBadRequest Code = 1
	// CodeInternal: the backend returned an error (persistence failure,
	// invalid state); the message carries the backend's text.
	CodeInternal Code = 2
	// Code 3 is reserved. (A draining server finishes the in-flight
	// pipeline and then closes the connection, so "shutting down" reaches
	// clients as a transport error, not an error frame.)

	// CodeUnsupported: the request type is unknown to this server.
	CodeUnsupported Code = 4

	// CodeNotPrimary: the server is an un-promoted replication follower and
	// the request mutates mined state; the caller should fail over to (or
	// promote) a writable server. Matched client-side by ErrNotPrimary.
	CodeNotPrimary Code = 5

	// CodeUnauthorized: the connection's bearer token is missing, unknown,
	// or not allowed the frame's tenant. Matched client-side by
	// ErrUnauthorized. The server closes the connection after answering.
	CodeUnauthorized Code = 6

	// CodeTenantBudget: admitting or growing the frame's tenant would
	// exceed a configured per-tenant resource budget (tenant count, memory
	// cap). Matched client-side by ErrTenantBudget; other tenants on the
	// same server are unaffected.
	CodeTenantBudget Code = 7

	// CodeBadVersion: the peer's frame carried a protocol version this
	// server does not speak. Answered once with the server's own version in
	// the message, then the connection closes. Matched by ErrBadVersion.
	CodeBadVersion Code = 8

	// CodeStaleEpoch: the request acted under a lease epoch lower than one
	// the server has observed — a write from a deposed leader, a vote for a
	// stale candidate, a grant that would regress the term. Matched
	// client-side by ErrStaleEpoch; the caller seeks the current leader.
	CodeStaleEpoch Code = 9
)

// ErrNotPrimary marks a write refused by an un-promoted replication
// follower. Server backends return errors wrapping it (the server answers
// CodeNotPrimary); client callers match it with errors.Is against the
// decoded *WireError — farmer.Dial's failover consumes exactly that.
var ErrNotPrimary = errors.New("rpc: not primary")

// ErrUnauthorized marks a request refused by the server's bearer-token
// auth before any dispatch: the token is missing, unknown, or not allowed
// the addressed tenant. Matched with errors.Is on either end.
var ErrUnauthorized = errors.New("rpc: unauthorized")

// ErrTenantBudget marks a request refused by per-tenant admission control:
// serving it would exceed a configured tenant budget (max tenants, memory
// cap). The refusal is typed so a caller can tell resource pressure from a
// failure — and the server stays healthy for every other tenant.
var ErrTenantBudget = errors.New("rpc: tenant budget exceeded")

// ErrStaleEpoch marks an action refused for carrying a lease epoch lower
// than one already observed. It is the lease package's sentinel so the
// coordination layer, the wire, and serve.go all agree on one identity;
// clients treat it like ErrNotPrimary (seek the current leader, retry).
var ErrStaleEpoch = lease.ErrStaleEpoch

// WireError is a MsgErr response surfaced to the caller.
type WireError struct {
	Code Code
	Msg  string
}

func (e *WireError) Error() string { return fmt.Sprintf("rpc: remote error %d: %s", e.Code, e.Msg) }

// Is maps wire error codes back to this package's sentinel errors, so
// errors.Is works identically on both ends of the connection.
func (e *WireError) Is(target error) bool {
	switch target {
	case ErrNotPrimary:
		return e.Code == CodeNotPrimary
	case ErrUnauthorized:
		return e.Code == CodeUnauthorized
	case ErrTenantBudget:
		return e.Code == CodeTenantBudget
	case ErrBadVersion:
		return e.Code == CodeBadVersion
	case ErrStaleEpoch:
		return e.Code == CodeStaleEpoch
	}
	return false
}

func appendWireError(dst []byte, code Code, msg string) []byte {
	le := binary.LittleEndian
	dst = le.AppendUint16(dst, uint16(code))
	dst = le.AppendUint32(dst, uint32(len(msg)))
	return append(dst, msg...)
}

func decodeWireError(body []byte) error {
	if len(body) < 6 {
		return fmt.Errorf("rpc: malformed error frame (%d bytes)", len(body))
	}
	le := binary.LittleEndian
	code := Code(le.Uint16(body[:2]))
	n := le.Uint32(body[2:6])
	if uint32(len(body)-6) < n {
		return fmt.Errorf("rpc: malformed error frame: message truncated")
	}
	return &WireError{Code: code, Msg: string(body[6 : 6+n])}
}

// ------------------------------------------------------------ body codecs

// Float64 fields travel as their exact bit patterns: a mined degree must
// survive the wire bit-identically for a remote miner to fingerprint equal
// to a local one.
func f64bits(v float64) uint64 { return math.Float64bits(v) }
func f64from(b uint64) float64 { return math.Float64frombits(b) }

func consumeU32(b []byte) (uint32, []byte, error) {
	if len(b) < 4 {
		return 0, nil, fmt.Errorf("rpc: truncated u32")
	}
	return binary.LittleEndian.Uint32(b[:4]), b[4:], nil
}

func consumeU64(b []byte) (uint64, []byte, error) {
	if len(b) < 8 {
		return 0, nil, fmt.Errorf("rpc: truncated u64")
	}
	return binary.LittleEndian.Uint64(b[:8]), b[8:], nil
}

// consumeCount reads a u32 element count and bounds it by what the
// remaining bytes could possibly hold (elemMin = the element's minimum
// encoded size), so a flipped count cannot demand a huge allocation.
func consumeCount(b []byte, elemMin int) (int, []byte, error) {
	n, rest, err := consumeU32(b)
	if err != nil {
		return 0, nil, err
	}
	if elemMin > 0 && int(n) > len(rest)/elemMin {
		return 0, nil, fmt.Errorf("rpc: count %d exceeds remaining %d bytes", n, len(rest))
	}
	return int(n), rest, nil
}

// appendRecords encodes a batch body: count + trace records.
func appendRecords(dst []byte, recs []trace.Record) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(recs)))
	for i := range recs {
		dst = trace.AppendRecord(dst, &recs[i])
	}
	return dst
}

func consumeRecords(b []byte) ([]trace.Record, error) {
	n, b, err := consumeCount(b, trace.RecordFixedLen)
	if err != nil {
		return nil, err
	}
	recs := make([]trace.Record, 0, n)
	for i := 0; i < n; i++ {
		var r trace.Record
		if r, b, err = trace.ConsumeRecord(b); err != nil {
			return nil, fmt.Errorf("rpc: record %d: %w", i, err)
		}
		recs = append(recs, r)
	}
	if len(b) != 0 {
		return nil, fmt.Errorf("rpc: %d trailing bytes after records", len(b))
	}
	return recs, nil
}

// appendFileIDs encodes a Predict result body.
func appendFileIDs(dst []byte, files []trace.FileID) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(files)))
	for _, f := range files {
		dst = binary.LittleEndian.AppendUint32(dst, uint32(f))
	}
	return dst
}

func consumeFileIDs(b []byte) ([]trace.FileID, error) {
	n, b, err := consumeCount(b, 4)
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, nil
	}
	out := make([]trace.FileID, n)
	for i := range out {
		var v uint32
		if v, b, err = consumeU32(b); err != nil {
			return nil, err
		}
		out[i] = trace.FileID(v)
	}
	return out, nil
}

// Correlator list body: u32 count, then (u32 file, u64 degree, u64 sim,
// u64 freq) with the float64 bit patterns — degrees survive the wire
// bit-exactly, which the cross-process fingerprint tests rely on.
func appendCorrelators(dst []byte, list []core.Correlator) []byte {
	le := binary.LittleEndian
	dst = le.AppendUint32(dst, uint32(len(list)))
	for _, c := range list {
		dst = le.AppendUint32(dst, uint32(c.File))
		dst = le.AppendUint64(dst, f64bits(c.Degree))
		dst = le.AppendUint64(dst, f64bits(c.Sim))
		dst = le.AppendUint64(dst, f64bits(c.Freq))
	}
	return dst
}

func consumeCorrelators(b []byte) ([]core.Correlator, error) {
	n, b, err := consumeCount(b, 28)
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, nil
	}
	list := make([]core.Correlator, n)
	for i := range list {
		var f uint32
		var deg, sim, freq uint64
		if f, b, err = consumeU32(b); err != nil {
			return nil, err
		}
		if deg, b, err = consumeU64(b); err != nil {
			return nil, err
		}
		if sim, b, err = consumeU64(b); err != nil {
			return nil, err
		}
		if freq, b, err = consumeU64(b); err != nil {
			return nil, err
		}
		list[i] = core.Correlator{
			File:   trace.FileID(f),
			Degree: f64from(deg),
			Sim:    f64from(sim),
			Freq:   f64from(freq),
		}
	}
	return list, nil
}

// Stats body: seven u64 fields in declaration order (Fed, TrackedFiles,
// Lists, Correlators, GraphNodes, GraphEdges, MemoryBytes).
func appendStats(dst []byte, st core.Stats) []byte {
	le := binary.LittleEndian
	dst = le.AppendUint64(dst, st.Fed)
	for _, v := range [...]int{st.TrackedFiles, st.Lists, st.Correlators, st.GraphNodes, st.GraphEdges} {
		dst = le.AppendUint64(dst, uint64(v))
	}
	return le.AppendUint64(dst, uint64(st.MemoryBytes))
}

func consumeStats(b []byte) (core.Stats, error) {
	if len(b) != 7*8 {
		return core.Stats{}, fmt.Errorf("rpc: stats body is %d bytes, want 56", len(b))
	}
	le := binary.LittleEndian
	u := func(i int) uint64 { return le.Uint64(b[i*8 : i*8+8]) }
	return core.Stats{
		Fed:          u(0),
		TrackedFiles: int(u(1)),
		Lists:        int(u(2)),
		Correlators:  int(u(3)),
		GraphNodes:   int(u(4)),
		GraphEdges:   int(u(5)),
		MemoryBytes:  int64(u(6)),
	}, nil
}

// Event body: u32 count, then per event
//
//	u8 flags (bit 0: access), u32 pred, u32 succ, u64 credit, u64 seq,
//	vector: u32 scalarCount, (u32 len, bytes)*, u32 pathLen, path
func appendEvents(dst []byte, evs []partition.Event) []byte {
	le := binary.LittleEndian
	dst = le.AppendUint32(dst, uint32(len(evs)))
	for i := range evs {
		ev := &evs[i]
		var flags byte
		if ev.Access {
			flags |= 1
		}
		dst = append(dst, flags)
		dst = le.AppendUint32(dst, uint32(ev.Pred))
		dst = le.AppendUint32(dst, uint32(ev.Succ))
		dst = le.AppendUint64(dst, f64bits(ev.Credit))
		dst = le.AppendUint64(dst, ev.Seq)
		dst = appendVector(dst, &ev.Vec)
	}
	return dst
}

func consumeEvents(b []byte) ([]partition.Event, error) {
	// Minimum event size: flags + ids + credit + seq + empty vector (8).
	n, b, err := consumeCount(b, 1+4+4+8+8+8)
	if err != nil {
		return nil, err
	}
	evs := make([]partition.Event, 0, n)
	for i := 0; i < n; i++ {
		if len(b) < 25 {
			return nil, fmt.Errorf("rpc: event %d truncated", i)
		}
		le := binary.LittleEndian
		var ev partition.Event
		if b[0]&^1 != 0 {
			return nil, fmt.Errorf("rpc: event %d: unknown flag bits %#x", i, b[0])
		}
		ev.Access = b[0]&1 != 0
		ev.Pred = trace.FileID(le.Uint32(b[1:5]))
		ev.Succ = trace.FileID(le.Uint32(b[5:9]))
		ev.Credit = f64from(le.Uint64(b[9:17]))
		ev.Seq = le.Uint64(b[17:25])
		b = b[25:]
		if ev.Vec, b, err = consumeVector(b); err != nil {
			return nil, fmt.Errorf("rpc: event %d vector: %w", i, err)
		}
		evs = append(evs, ev)
	}
	if len(b) != 0 {
		return nil, fmt.Errorf("rpc: %d trailing bytes after events", len(b))
	}
	return evs, nil
}

func appendVector(dst []byte, v *vsm.Vector) []byte {
	le := binary.LittleEndian
	dst = le.AppendUint32(dst, uint32(len(v.Scalars)))
	for _, sc := range v.Scalars {
		dst = le.AppendUint32(dst, uint32(len(sc)))
		dst = append(dst, sc...)
	}
	dst = le.AppendUint32(dst, uint32(len(v.Path)))
	return append(dst, v.Path...)
}

func consumeVector(b []byte) (vsm.Vector, []byte, error) {
	var v vsm.Vector
	n, b, err := consumeCount(b, 4)
	if err != nil {
		return v, nil, err
	}
	if n > 0 {
		v.Scalars = make([]string, 0, n)
	}
	str := func() (string, error) {
		var l uint32
		if l, b, err = consumeU32(b); err != nil {
			return "", err
		}
		if l > trace.MaxPathLen {
			return "", fmt.Errorf("rpc: unreasonable string length %d", l)
		}
		if uint32(len(b)) < l {
			return "", fmt.Errorf("rpc: string truncated: want %d bytes, have %d", l, len(b))
		}
		s := string(b[:l])
		b = b[l:]
		return s, nil
	}
	for i := 0; i < n; i++ {
		sc, err := str()
		if err != nil {
			return v, nil, err
		}
		v.Scalars = append(v.Scalars, sc)
	}
	path, err := str()
	if err != nil {
		return v, nil, err
	}
	v.Path = path
	return v, b, nil
}

// ------------------------------------------------------- replication bodies

// CatchupCut is one checkpoint cut of a primary's complete mined state: the
// stream position (records ingested — the cut's WAL position), the state
// fingerprint the follower verifies BEFORE installing, the dense FileID
// bound the fingerprint hashes over, and the kvstore snapshot bytes
// (Store.Snapshot framing) holding lists, vectors, graph and lookahead
// window.
type CatchupCut struct {
	Pos         uint64
	Fingerprint uint64
	FileCount   int
	Snapshot    []byte
}

// MsgCatchup body: u64 pos, u64 fingerprint, u32 fileCount, snapshot bytes.
func appendCatchup(dst []byte, cut *CatchupCut) []byte {
	le := binary.LittleEndian
	dst = le.AppendUint64(dst, cut.Pos)
	dst = le.AppendUint64(dst, cut.Fingerprint)
	dst = le.AppendUint32(dst, uint32(cut.FileCount))
	return append(dst, cut.Snapshot...)
}

func decodeCatchup(b []byte) (CatchupCut, error) {
	if len(b) < 20 {
		return CatchupCut{}, fmt.Errorf("rpc: catchup body is %d bytes, want >= 20", len(b))
	}
	le := binary.LittleEndian
	return CatchupCut{
		Pos:         le.Uint64(b[:8]),
		Fingerprint: le.Uint64(b[8:16]),
		FileCount:   int(le.Uint32(b[16:20])),
		Snapshot:    b[20:],
	}, nil
}

// CatchupDelta is one chunk of a delta catch-up: the records a restarted
// follower missed, replayed through its own miner (mining is deterministic,
// so replay from an identical base state reproduces the primary's state
// bit-identically). FromPos is the stream position BEFORE this chunk's
// records; the follower refuses a position that does not equal its own fed
// counter. Final marks the last chunk, whose Fingerprint/FileCount the
// follower verifies against its post-replay state.
type CatchupDelta struct {
	FromPos     uint64
	Fingerprint uint64
	FileCount   int
	Final       bool
	Records     []trace.Record
}

// MsgCatchupDelta body: u64 fromPos, u64 fingerprint, u32 fileCount,
// u8 flags (bit 0 = final), u32 count + records.
func appendCatchupDelta(dst []byte, d *CatchupDelta) []byte {
	le := binary.LittleEndian
	dst = le.AppendUint64(dst, d.FromPos)
	dst = le.AppendUint64(dst, d.Fingerprint)
	dst = le.AppendUint32(dst, uint32(d.FileCount))
	var flags byte
	if d.Final {
		flags |= 1
	}
	dst = append(dst, flags)
	return appendRecords(dst, d.Records)
}

func decodeCatchupDelta(b []byte) (CatchupDelta, error) {
	if len(b) < 21 {
		return CatchupDelta{}, fmt.Errorf("rpc: catchup delta body is %d bytes, want >= 21", len(b))
	}
	le := binary.LittleEndian
	flags := b[20]
	if flags&^byte(1) != 0 {
		return CatchupDelta{}, fmt.Errorf("rpc: catchup delta has unknown flag bits %#x", flags)
	}
	recs, err := consumeRecords(b[21:])
	if err != nil {
		return CatchupDelta{}, err
	}
	return CatchupDelta{
		FromPos:     le.Uint64(b[:8]),
		Fingerprint: le.Uint64(b[8:16]),
		FileCount:   int(le.Uint32(b[16:20])),
		Final:       flags&1 != 0,
		Records:     recs,
	}, nil
}

// Replicate frame kinds.
const (
	replKindRecords byte = 0 // payload: u32 count + trace.AppendRecord records
	replKindGroups  byte = 1 // payload: GroupsReq (a group-backup command)
)

// MsgReplicate body: u64 pos, u8 kind, payload. pos is the stream position
// BEFORE the payload applies; a follower refuses a position that does not
// equal its own record count, so a gap or reorder can never silently
// corrupt the replica.
func appendReplicateRecords(dst []byte, pos uint64, recs []trace.Record) []byte {
	dst = binary.LittleEndian.AppendUint64(dst, pos)
	dst = append(dst, replKindRecords)
	return appendRecords(dst, recs)
}

func appendReplicateGroups(dst []byte, pos uint64, req *GroupsReq) []byte {
	dst = binary.LittleEndian.AppendUint64(dst, pos)
	dst = append(dst, replKindGroups)
	return appendGroupsReq(dst, req)
}

func decodeReplicate(b []byte) (pos uint64, kind byte, payload []byte, err error) {
	if len(b) < 9 {
		return 0, 0, nil, fmt.Errorf("rpc: replicate body is %d bytes, want >= 9", len(b))
	}
	return binary.LittleEndian.Uint64(b[:8]), b[8], b[9:], nil
}

// GroupsReq parameterises a replica-group operation (paper §4.3): build
// groups over [0, FileCount) with mutual-correlation threshold MinDegree.
// Read reports the manager's current state without rebuilding or cutting —
// the verification read a follower always answers.
type GroupsReq struct {
	FileCount int
	MinDegree float64
	Read      bool
}

// MsgGroups body: u32 fileCount, u64 minDegree bits, u8 flags (bit 0 =
// read-only).
func appendGroupsReq(dst []byte, req *GroupsReq) []byte {
	le := binary.LittleEndian
	dst = le.AppendUint32(dst, uint32(req.FileCount))
	dst = le.AppendUint64(dst, f64bits(req.MinDegree))
	var flags byte
	if req.Read {
		flags |= 1
	}
	return append(dst, flags)
}

func decodeGroupsReq(b []byte) (GroupsReq, error) {
	if len(b) != 13 {
		return GroupsReq{}, fmt.Errorf("rpc: groups body is %d bytes, want 13", len(b))
	}
	le := binary.LittleEndian
	if b[12]&^1 != 0 {
		return GroupsReq{}, fmt.Errorf("rpc: groups request: unknown flag bits %#x", b[12])
	}
	return GroupsReq{
		FileCount: int(le.Uint32(b[:4])),
		MinDegree: f64from(le.Uint64(b[4:12])),
		Read:      b[12]&1 != 0,
	}, nil
}

// GroupsInfo summarises a replica-group manager: the fingerprint covers
// every group's membership and backup version, so a primary and a follower
// agree on it iff their group-atomic backups are identical.
type GroupsInfo struct {
	Fingerprint uint64
	Groups      int
	Versions    uint64 // sum of per-group backup versions (cut count)
}

func appendGroupsInfo(dst []byte, info GroupsInfo) []byte {
	le := binary.LittleEndian
	dst = le.AppendUint64(dst, info.Fingerprint)
	dst = le.AppendUint32(dst, uint32(info.Groups))
	return le.AppendUint64(dst, info.Versions)
}

func decodeGroupsInfo(b []byte) (GroupsInfo, error) {
	if len(b) != 20 {
		return GroupsInfo{}, fmt.Errorf("rpc: groups info is %d bytes, want 20", len(b))
	}
	le := binary.LittleEndian
	return GroupsInfo{
		Fingerprint: le.Uint64(b[:8]),
		Groups:      int(le.Uint32(b[8:12])),
		Versions:    le.Uint64(b[12:20]),
	}, nil
}

// ------------------------------------------------------- tenancy bodies

// MsgHello request body: u32 tokenLen, token bytes.
func appendHello(dst []byte, token string) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(token)))
	return append(dst, token...)
}

func decodeHello(b []byte) (token string, err error) {
	if len(b) < 4 {
		return "", fmt.Errorf("rpc: hello body is %d bytes, want >= 4", len(b))
	}
	n := binary.LittleEndian.Uint32(b[:4])
	if uint32(len(b)-4) != n {
		return "", fmt.Errorf("rpc: hello token length %d does not match body", n)
	}
	return string(b[4:]), nil
}

// TenantInfo is one live tenant in a MsgTenants response.
type TenantInfo struct {
	Name  string
	Stats core.Stats
}

// MsgTenants response body: u32 count, then per tenant u8 nameLen, name,
// stats (the 56-byte appendStats layout).
func appendTenantInfos(dst []byte, infos []TenantInfo) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(infos)))
	for i := range infos {
		dst = append(dst, byte(len(infos[i].Name)))
		dst = append(dst, infos[i].Name...)
		dst = appendStats(dst, infos[i].Stats)
	}
	return dst
}

func decodeTenantInfos(b []byte) ([]TenantInfo, error) {
	n, b, err := consumeCount(b, 1+7*8)
	if err != nil {
		return nil, err
	}
	infos := make([]TenantInfo, 0, n)
	for i := 0; i < n; i++ {
		if len(b) < 1 {
			return nil, fmt.Errorf("rpc: tenant %d truncated", i)
		}
		nl := int(b[0])
		b = b[1:]
		if len(b) < nl+7*8 {
			return nil, fmt.Errorf("rpc: tenant %d truncated", i)
		}
		name := string(b[:nl])
		st, err := consumeStats(b[nl : nl+7*8])
		if err != nil {
			return nil, fmt.Errorf("rpc: tenant %d: %w", i, err)
		}
		b = b[nl+7*8:]
		infos = append(infos, TenantInfo{Name: name, Stats: st})
	}
	if len(b) != 0 {
		return nil, fmt.Errorf("rpc: %d trailing bytes after tenants", len(b))
	}
	return infos, nil
}

// ------------------------------------------------------- lease bodies

// LeaseInfo is one lease term on the wire: the epoch, the leader's dial
// address (leader ids ARE addresses, so a client that learns the holder can
// go there), the remaining TTL, and two flags — Self ("the answering server
// is this leader") on status responses, Transfer ("adopt this term as your
// own and start serving writes") on handoff grants.
type LeaseInfo struct {
	Epoch    uint64
	Leader   string
	TTLMS    uint64
	Self     bool
	Transfer bool
}

const (
	leaseFlagSelf     byte = 1 << 0
	leaseFlagTransfer byte = 1 << 1
)

// LeaseInfo body: u64 epoch, u64 ttlMS, u8 flags, u8 leaderLen, leader.
func appendLeaseInfo(dst []byte, info *LeaseInfo) []byte {
	le := binary.LittleEndian
	dst = le.AppendUint64(dst, info.Epoch)
	dst = le.AppendUint64(dst, info.TTLMS)
	var flags byte
	if info.Self {
		flags |= leaseFlagSelf
	}
	if info.Transfer {
		flags |= leaseFlagTransfer
	}
	dst = append(dst, flags, byte(len(info.Leader)))
	return append(dst, info.Leader...)
}

func decodeLeaseInfo(b []byte) (LeaseInfo, error) {
	if len(b) < 18 {
		return LeaseInfo{}, fmt.Errorf("rpc: lease info is %d bytes, want >= 18", len(b))
	}
	le := binary.LittleEndian
	flags := b[16]
	if flags&^(leaseFlagSelf|leaseFlagTransfer) != 0 {
		return LeaseInfo{}, fmt.Errorf("rpc: lease info has unknown flag bits %#x", flags)
	}
	nl := int(b[17])
	if len(b) != 18+nl {
		return LeaseInfo{}, fmt.Errorf("rpc: lease info leader length %d does not match body", nl)
	}
	return LeaseInfo{
		Epoch:    le.Uint64(b[:8]),
		TTLMS:    le.Uint64(b[8:16]),
		Self:     flags&leaseFlagSelf != 0,
		Transfer: flags&leaseFlagTransfer != 0,
		Leader:   string(b[18:]),
	}, nil
}

// MsgLeaseRequest body: u64 epoch (0 = status query), u8 candLen, candidate.
func appendLeaseReq(dst []byte, epoch uint64, candidate string) []byte {
	dst = binary.LittleEndian.AppendUint64(dst, epoch)
	dst = append(dst, byte(len(candidate)))
	return append(dst, candidate...)
}

func decodeLeaseReq(b []byte) (epoch uint64, candidate string, err error) {
	if len(b) < 9 {
		return 0, "", fmt.Errorf("rpc: lease request is %d bytes, want >= 9", len(b))
	}
	nl := int(b[8])
	if len(b) != 9+nl {
		return 0, "", fmt.Errorf("rpc: lease request candidate length %d does not match body", nl)
	}
	return binary.LittleEndian.Uint64(b[:8]), string(b[9:]), nil
}

// MsgHandoff body: u16 addrLen, target address.
func appendHandoffReq(dst []byte, target string) []byte {
	dst = binary.LittleEndian.AppendUint16(dst, uint16(len(target)))
	return append(dst, target...)
}

func decodeHandoffReq(b []byte) (string, error) {
	if len(b) < 2 {
		return "", fmt.Errorf("rpc: handoff body is %d bytes, want >= 2", len(b))
	}
	n := int(binary.LittleEndian.Uint16(b[:2]))
	if len(b) != 2+n {
		return "", fmt.Errorf("rpc: handoff target length %d does not match body", n)
	}
	if n == 0 {
		return "", fmt.Errorf("rpc: handoff target is empty")
	}
	return string(b[2:]), nil
}

// WireStat is one request type's server-side latency accounting: how many
// frames of that type were handled and their summed handling time.
type WireStat struct {
	Type  MsgType
	Count uint64
	SumNS uint64
}

// MsgWireStats response body: u32 count, then per entry u8 type, u64 count,
// u64 sumNS.
func appendWireStats(dst []byte, stats []WireStat) []byte {
	le := binary.LittleEndian
	dst = le.AppendUint32(dst, uint32(len(stats)))
	for _, s := range stats {
		dst = append(dst, byte(s.Type))
		dst = le.AppendUint64(dst, s.Count)
		dst = le.AppendUint64(dst, s.SumNS)
	}
	return dst
}

func decodeWireStats(b []byte) ([]WireStat, error) {
	n, b, err := consumeCount(b, 1+8+8)
	if err != nil {
		return nil, err
	}
	le := binary.LittleEndian
	out := make([]WireStat, 0, n)
	for i := 0; i < n; i++ {
		if len(b) < 17 {
			return nil, fmt.Errorf("rpc: wire stat %d truncated", i)
		}
		out = append(out, WireStat{
			Type:  MsgType(b[0]),
			Count: le.Uint64(b[1:9]),
			SumNS: le.Uint64(b[9:17]),
		})
		b = b[17:]
	}
	if len(b) != 0 {
		return nil, fmt.Errorf("rpc: %d trailing bytes after wire stats", len(b))
	}
	return out, nil
}

// ------------------------------------------------------- observability bodies

// NeverCheckpointed is the CkptAgeMS value of a tenant that has never
// completed a checkpoint (or runs memory-only).
const NeverCheckpointed = ^uint64(0)

// ObsGroup is one correlation group in a TenantObs row: the seed file, its
// correlated members (strongest first), and the group strength (sum of the
// seed's Correlator-List degrees) — the paper's §4 artifacts, live.
type ObsGroup struct {
	Seed     trace.FileID
	Strength float64
	Files    []trace.FileID
}

// TenantObs is one tenant's live-observability row in a MsgObs response.
// FeedRecords/FeedFrames count what arrived over this server's wire (the
// rpc layer stamps them); everything else comes from the tenant's backend.
type TenantObs struct {
	Name          string
	Fed           uint64 // records mined (the model's stream position)
	MemoryBytes   uint64 // estimated correlation-state footprint
	TapDepth      uint64 // events queued on tap mailboxes right now
	TapDropped    uint64 // tap events dropped to lagging consumers
	FeedRecords   uint64 // records arrived via Feed/FeedBatch frames
	FeedFrames    uint64 // Feed/FeedBatch frames handled
	ReplLagMax    uint64 // worst follower lag in records (0 = caught up or none)
	Followers     uint64 // live replication followers
	CkptAgeMS     uint64 // ms since the last completed checkpoint; NeverCheckpointed if none
	CkptEpoch     uint64 // checkpoint epoch (m/epoch protocol)
	CkptFull      uint64 // full checkpoints completed
	CkptDelta     uint64 // incremental checkpoints completed
	PredPredicted uint64 // prefetch predictions issued
	PredHits      uint64 // predictions later confirmed by an access
	LeaseEpoch    uint64 // current lease epoch (0 = leases disabled or none observed)
	Groups        []ObsGroup
}

// tenantObsU64s is the fixed per-row section: the TenantObs uint64 fields
// in declaration order.
const tenantObsU64s = 15

// MsgObs request body: u32 k, u8 flags (must be 0).
func appendObsReq(dst []byte, k int) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(k))
	return append(dst, 0)
}

func decodeObsReq(b []byte) (int, error) {
	if len(b) != 5 {
		return 0, fmt.Errorf("rpc: obs body is %d bytes, want 5", len(b))
	}
	if b[4] != 0 {
		return 0, fmt.Errorf("rpc: obs request: unknown flag bits %#x", b[4])
	}
	return int(int32(binary.LittleEndian.Uint32(b[:4]))), nil
}

// MsgObs response body: u32 tenantCount, then per tenant u8 nameLen, name,
// 15 u64 fields (declaration order), u32 groupCount, and per group
// u32 seed, u64 strength bits, u32 fileCount, u32 files.
func appendTenantObs(dst []byte, rows []TenantObs) []byte {
	le := binary.LittleEndian
	dst = le.AppendUint32(dst, uint32(len(rows)))
	for i := range rows {
		r := &rows[i]
		dst = append(dst, byte(len(r.Name)))
		dst = append(dst, r.Name...)
		for _, v := range [tenantObsU64s]uint64{
			r.Fed, r.MemoryBytes, r.TapDepth, r.TapDropped,
			r.FeedRecords, r.FeedFrames, r.ReplLagMax, r.Followers,
			r.CkptAgeMS, r.CkptEpoch, r.CkptFull, r.CkptDelta,
			r.PredPredicted, r.PredHits, r.LeaseEpoch,
		} {
			dst = le.AppendUint64(dst, v)
		}
		dst = le.AppendUint32(dst, uint32(len(r.Groups)))
		for _, g := range r.Groups {
			dst = le.AppendUint32(dst, uint32(g.Seed))
			dst = le.AppendUint64(dst, f64bits(g.Strength))
			dst = appendFileIDs(dst, g.Files)
		}
	}
	return dst
}

func decodeTenantObs(b []byte) ([]TenantObs, error) {
	n, b, err := consumeCount(b, 1+tenantObsU64s*8+4)
	if err != nil {
		return nil, err
	}
	le := binary.LittleEndian
	rows := make([]TenantObs, 0, n)
	for i := 0; i < n; i++ {
		if len(b) < 1 {
			return nil, fmt.Errorf("rpc: obs row %d truncated", i)
		}
		nl := int(b[0])
		b = b[1:]
		if len(b) < nl+tenantObsU64s*8+4 {
			return nil, fmt.Errorf("rpc: obs row %d truncated", i)
		}
		var r TenantObs
		r.Name = string(b[:nl])
		b = b[nl:]
		for _, p := range [tenantObsU64s]*uint64{
			&r.Fed, &r.MemoryBytes, &r.TapDepth, &r.TapDropped,
			&r.FeedRecords, &r.FeedFrames, &r.ReplLagMax, &r.Followers,
			&r.CkptAgeMS, &r.CkptEpoch, &r.CkptFull, &r.CkptDelta,
			&r.PredPredicted, &r.PredHits, &r.LeaseEpoch,
		} {
			*p = le.Uint64(b[:8])
			b = b[8:]
		}
		var gn int
		if gn, b, err = consumeCount(b, 4+8+4); err != nil {
			return nil, fmt.Errorf("rpc: obs row %d groups: %w", i, err)
		}
		if gn > 0 {
			r.Groups = make([]ObsGroup, 0, gn)
		}
		for j := 0; j < gn; j++ {
			if len(b) < 4+8+4 {
				return nil, fmt.Errorf("rpc: obs row %d group %d truncated", i, j)
			}
			var g ObsGroup
			g.Seed = trace.FileID(le.Uint32(b[:4]))
			g.Strength = f64from(le.Uint64(b[4:12]))
			b = b[12:]
			var fn int
			if fn, b, err = consumeCount(b, 4); err != nil {
				return nil, fmt.Errorf("rpc: obs row %d group %d: %w", i, j, err)
			}
			if fn > 0 {
				g.Files = make([]trace.FileID, fn)
				for k := range g.Files {
					g.Files[k] = trace.FileID(le.Uint32(b[:4]))
					b = b[4:]
				}
			}
			r.Groups = append(r.Groups, g)
		}
		rows = append(rows, r)
	}
	if len(b) != 0 {
		return nil, fmt.Errorf("rpc: %d trailing bytes after obs rows", len(b))
	}
	return rows, nil
}

// ------------------------------------------------------- frame buffer pool

// framePool recycles encode buffers on the hot feed path: every request a
// Client starts and every body scratch FeedBatch builds comes from here and
// goes back once the bytes are on the wire, so a steady feed stream stops
// allocating per frame (ROADMAP item 2). Measured on
// BenchmarkLoopbackFeedBatch: 1995 -> 1544 B/op (-23%); ns/op unchanged
// within noise on a single core, where GC pressure is not the bottleneck.
var framePool = sync.Pool{New: func() any { return new(frameBuf) }}

type frameBuf struct{ b []byte }

// maxPooledFrame bounds what returns to the pool: a one-off huge frame (a
// catch-up snapshot chunk) must not pin megabytes inside it forever.
const maxPooledFrame = 1 << 20

func getFrameBuf() *frameBuf { return framePool.Get().(*frameBuf) }

func putFrameBuf(fb *frameBuf) {
	if fb == nil || cap(fb.b) > maxPooledFrame {
		return
	}
	fb.b = fb.b[:0]
	framePool.Put(fb)
}

// Predict request body.
func appendPredictReq(dst []byte, f trace.FileID, k int) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(f))
	return binary.LittleEndian.AppendUint32(dst, uint32(k))
}

func decodePredictReq(b []byte) (trace.FileID, int, error) {
	if len(b) != 8 {
		return 0, 0, fmt.Errorf("rpc: predict body is %d bytes, want 8", len(b))
	}
	le := binary.LittleEndian
	return trace.FileID(le.Uint32(b[:4])), int(int32(le.Uint32(b[4:8]))), nil
}
