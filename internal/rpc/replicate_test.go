package rpc

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"farmer/internal/trace"
)

// TestClientDisconnectedTyped: a connection that dies underneath the client
// fails the in-flight call AND every later call with an error matching
// ErrDisconnected — the typed contract farmer.Dial's reconnect consumes.
// (The old client surfaced an untyped sticky error, so callers had no way
// to distinguish "redial me" from an application failure.)
func TestClientDisconnectedTyped(t *testing.T) {
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer lis.Close()
	accepted := make(chan net.Conn, 1)
	go func() {
		c, err := lis.Accept()
		if err == nil {
			accepted <- c
		}
	}()
	client, err := Dial(context.Background(), lis.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	srvConn := <-accepted
	srvConn.Close() // the "transient" fault: peer drops the connection

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	r := trace.Record{File: 1, Path: "/x"}
	if err := client.Feed(ctx, &r); !errors.Is(err, ErrDisconnected) {
		t.Fatalf("in-flight call failed with %v, want ErrDisconnected", err)
	}
	// Sticky and typed on every later call: the client does not pretend to
	// recover (reconnection is the owner's job — it has the address list).
	if _, err := client.Stats(ctx); !errors.Is(err, ErrDisconnected) {
		t.Fatalf("later call failed with %v, want ErrDisconnected", err)
	}
}

// notPrimaryBackend refuses writes like an un-promoted follower.
type notPrimaryBackend struct{ *minerBackend }

func (b notPrimaryBackend) Feed(r *trace.Record) error {
	return fmt.Errorf("%w: test follower", ErrNotPrimary)
}

// TestNotPrimaryTravelsTyped: a backend refusal wrapping ErrNotPrimary
// reaches the client as a *WireError that still matches
// errors.Is(err, ErrNotPrimary), and the connection survives it.
func TestNotPrimaryTravelsTyped(t *testing.T) {
	addr, _, stop := startServer(t, notPrimaryBackend{newMinerBackend(1)})
	defer stop()
	client := dialT(t, addr)
	defer client.Close()
	ctx := context.Background()
	r := trace.Record{File: 1, Path: "/x"}
	err := client.Feed(ctx, &r)
	if !errors.Is(err, ErrNotPrimary) {
		t.Fatalf("refusal arrived as %v, want ErrNotPrimary", err)
	}
	var we *WireError
	if !errors.As(err, &we) || we.Code != CodeNotPrimary {
		t.Fatalf("refusal not a CodeNotPrimary wire error: %v", err)
	}
	if _, err := client.Ping(ctx); err != nil {
		t.Fatalf("connection dead after a typed refusal: %v", err)
	}
}

// TestReplicaFramesUnsupported: a server whose backend has no replication
// surface answers the replication frames with CodeUnsupported instead of
// dropping the connection.
func TestReplicaFramesUnsupported(t *testing.T) {
	addr, _, stop := startServer(t, newMinerBackend(1))
	defer stop()
	client := dialT(t, addr)
	defer client.Close()
	ctx := context.Background()
	var we *WireError
	if err := client.Promote(ctx); !errors.As(err, &we) || we.Code != CodeUnsupported {
		t.Fatalf("Promote on a plain backend: %v", err)
	}
	if _, err := client.Groups(ctx, GroupsReq{FileCount: 1}); !errors.As(err, &we) || we.Code != CodeUnsupported {
		t.Fatalf("Groups on a plain backend: %v", err)
	}
	if _, err := client.Ping(ctx); err != nil {
		t.Fatalf("connection dead after unsupported frames: %v", err)
	}
}

// replicaRecorder records the replication stream a primary's Replicator
// ships — the follower side as a bare ReplicaBackend.
type replicaRecorder struct {
	*minerBackend
	mu      sync.Mutex
	catchup []CatchupCut
	batches [][]trace.Record
	poss    []uint64
	src     uint64
}

func (b *replicaRecorder) Promote() error { return nil }
func (b *replicaRecorder) Catchup(conn uint64, cut CatchupCut) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.catchup = append(b.catchup, cut)
	b.src = conn
	return nil
}
func (b *replicaRecorder) CatchupDelta(conn uint64, d CatchupDelta) error {
	return fmt.Errorf("no resumable position")
}
func (b *replicaRecorder) Replicate(conn uint64, pos uint64, recs []trace.Record) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if conn != b.src {
		return fmt.Errorf("replicate from conn %d, caught up on %d", conn, b.src)
	}
	b.poss = append(b.poss, pos)
	b.batches = append(b.batches, recs)
	return nil
}
func (b *replicaRecorder) ReplicateGroups(conn uint64, pos uint64, req GroupsReq) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.poss = append(b.poss, pos)
	return nil
}
func (b *replicaRecorder) Groups(req GroupsReq) (GroupsInfo, error) { return GroupsInfo{}, nil }
func (b *replicaRecorder) ConnClosed(conn uint64)                   {}

// TestReplicatorStreamOrdering: the Replicator ships catch-up first, then
// every batch at a strictly contiguous position, whatever the interleaving
// of Ingest calls.
func TestReplicatorStreamOrdering(t *testing.T) {
	rec := &replicaRecorder{minerBackend: newMinerBackend(1)}
	addr, _, stop := startServer(t, rec)
	defer stop()

	const startPos = 7
	r := NewReplicator(startPos, 0, nil)
	defer r.Close()
	cut := CatchupCut{Pos: startPos, FileCount: 1, Snapshot: []byte("snap")}
	if err := r.Attach(context.Background(), addr, func() (CatchupCut, error) { return cut, nil }); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	pos := uint64(startPos)
	for i := 0; i < 20; i++ {
		n := 1 + i%3
		recs := make([]trace.Record, n)
		for j := range recs {
			recs[j] = trace.Record{File: trace.FileID(i), Path: "/p"}
		}
		if err := r.Ingest(ctx, recs, func() error { return nil }); err != nil {
			t.Fatal(err)
		}
		pos += uint64(n)
	}
	if got := r.Pos(); got != pos {
		t.Fatalf("replicator position %d, want %d", got, pos)
	}

	rec.mu.Lock()
	defer rec.mu.Unlock()
	if len(rec.catchup) != 1 || rec.catchup[0].Pos != startPos || string(rec.catchup[0].Snapshot) != "snap" {
		t.Fatalf("catch-up not delivered intact: %+v", rec.catchup)
	}
	want := uint64(startPos)
	for i, p := range rec.poss {
		if p != want {
			t.Fatalf("batch %d at position %d, want %d (gap or reorder)", i, p, want)
		}
		want += uint64(len(rec.batches[i]))
	}
	if want != pos {
		t.Fatalf("stream ends at %d, want %d", want, pos)
	}
}

// TestReplicatorDetachesDeadFollower: a follower that dies mid-stream is
// dropped (reported via the lost callback) and the primary keeps ingesting.
func TestReplicatorDetachesDeadFollower(t *testing.T) {
	rec := &replicaRecorder{minerBackend: newMinerBackend(1)}
	addr, srv, _ := startServer(t, rec)

	lost := make(chan string, 1)
	r := NewReplicator(0, 0, func(addr string, err error) { lost <- addr })
	defer r.Close()
	if err := r.Attach(context.Background(), addr, func() (CatchupCut, error) {
		return CatchupCut{}, nil
	}); err != nil {
		t.Fatal(err)
	}
	if got := r.Followers(); len(got) != 1 {
		t.Fatalf("followers = %v", got)
	}

	// Kill the follower server abruptly.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	srv.Shutdown(ctx)

	recs := []trace.Record{{File: 1, Path: "/x"}}
	deadline := time.Now().Add(10 * time.Second)
	for len(r.Followers()) > 0 {
		if time.Now().After(deadline) {
			t.Fatal("dead follower never detached")
		}
		if err := r.Ingest(context.Background(), recs, func() error { return nil }); err != nil {
			t.Fatal(err)
		}
	}
	select {
	case a := <-lost:
		if a != addr {
			t.Fatalf("lost %q, want %q", a, addr)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("lost callback never fired")
	}
}

// TestGroupsAndLoadOverTheWire covers the remaining request surface against
// a replica-capable backend: MsgGroups (read flag round trip), MsgLoad and
// a kind-1 (group command) replicate frame, plus the MsgErr formatting.
func TestGroupsAndLoadOverTheWire(t *testing.T) {
	rec := &replicaRecorder{minerBackend: newMinerBackend(1)}
	addr, _, stop := startServer(t, rec)
	defer stop()
	client := dialT(t, addr)
	defer client.Close()
	ctx := context.Background()

	info, err := client.Groups(ctx, GroupsReq{FileCount: 9, MinDegree: 0.5, Read: true})
	if err != nil {
		t.Fatal(err)
	}
	if info != (GroupsInfo{}) {
		t.Fatalf("recorder backend returned %+v", info)
	}
	if err := client.Load(ctx); err != nil {
		t.Fatal(err)
	}
	if err := client.Promote(ctx); err != nil {
		t.Fatal(err)
	}

	r := NewReplicator(3, 0, nil)
	defer r.Close()
	if err := r.Attach(ctx, addr, func() (CatchupCut, error) { return CatchupCut{Pos: 3}, nil }); err != nil {
		t.Fatal(err)
	}
	req := GroupsReq{FileCount: 7, MinDegree: 0.25}
	if err := r.Groups(ctx, req, func() error { return nil }); err != nil {
		t.Fatal(err)
	}
	// The command landed at the stream position.
	deadline := time.Now().Add(5 * time.Second)
	for {
		rec.mu.Lock()
		n := len(rec.poss)
		rec.mu.Unlock()
		if n == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("group command never arrived")
		}
		time.Sleep(time.Millisecond)
	}
	rec.mu.Lock()
	if rec.poss[0] != 3 {
		t.Fatalf("group command at position %d, want 3", rec.poss[0])
	}
	rec.mu.Unlock()

	// A local run error aborts before shipping.
	boom := errors.New("boom")
	if err := r.Groups(ctx, req, func() error { return boom }); !errors.Is(err, boom) {
		t.Fatalf("Groups run error: %v", err)
	}

	we := &WireError{Code: CodeInternal, Msg: "hello"}
	if s := we.Error(); !strings.Contains(s, "hello") {
		t.Fatalf("WireError.Error() = %q", s)
	}
}

// TestGroupsReqCodec pins the request/response body round trips.
func TestGroupsReqCodec(t *testing.T) {
	for _, req := range []GroupsReq{
		{FileCount: 0, MinDegree: 0, Read: false},
		{FileCount: 12345, MinDegree: 0.4, Read: true},
	} {
		got, err := decodeGroupsReq(appendGroupsReq(nil, &req))
		if err != nil {
			t.Fatal(err)
		}
		if got != req {
			t.Fatalf("round trip %+v != %+v", got, req)
		}
	}
	if _, err := decodeGroupsReq([]byte{1, 2}); err == nil {
		t.Fatal("short groups request accepted")
	}
	bad := appendGroupsReq(nil, &GroupsReq{})
	bad[12] = 0xFF
	if _, err := decodeGroupsReq(bad); err == nil {
		t.Fatal("unknown flag bits accepted")
	}
	info := GroupsInfo{Fingerprint: 7, Groups: 3, Versions: 9}
	got, err := decodeGroupsInfo(appendGroupsInfo(nil, info))
	if err != nil || got != info {
		t.Fatalf("info round trip: %+v, %v", got, err)
	}
	if _, err := decodeGroupsInfo([]byte{1}); err == nil {
		t.Fatal("short groups info accepted")
	}
}

// TestCatchupChunked: a snapshot larger than one catch-up frame ships as
// MsgCatchupChunk frames plus the final MsgCatchup, and the follower
// reassembles it byte-exact — the path a >MaxFrame model takes.
func TestCatchupChunked(t *testing.T) {
	old := maxCatchupChunk
	maxCatchupChunk = 1024 // force the chunked path on a small snapshot
	defer func() { maxCatchupChunk = old }()

	rec := &replicaRecorder{minerBackend: newMinerBackend(1)}
	addr, _, stop := startServer(t, rec)
	defer stop()

	snap := make([]byte, 10*1024+37) // not a multiple of the chunk size
	for i := range snap {
		snap[i] = byte(i * 31)
	}
	r := NewReplicator(5, 0, nil)
	defer r.Close()
	cut := CatchupCut{Pos: 5, Fingerprint: 9, FileCount: 3, Snapshot: snap}
	if err := r.Attach(context.Background(), addr, func() (CatchupCut, error) { return cut, nil }); err != nil {
		t.Fatal(err)
	}
	rec.mu.Lock()
	defer rec.mu.Unlock()
	if len(rec.catchup) != 1 {
		t.Fatalf("follower saw %d catch-ups, want 1", len(rec.catchup))
	}
	got := rec.catchup[0]
	if got.Pos != 5 || got.Fingerprint != 9 || got.FileCount != 3 {
		t.Fatalf("catch-up header mangled: %+v", got)
	}
	if !bytes.Equal(got.Snapshot, snap) {
		t.Fatalf("reassembled snapshot differs: %d bytes vs %d", len(got.Snapshot), len(snap))
	}
}

// blockingReplica wedges on every Replicate until released — the
// connected-but-stuck follower shape.
type blockingReplica struct {
	*replicaRecorder
	release chan struct{}
}

func (b *blockingReplica) Replicate(conn uint64, pos uint64, recs []trace.Record) error {
	<-b.release
	return nil
}

// TestReplicatorDetachesWedgedFollower: a follower that accepts the
// connection but never acks is detached after the ack timeout instead of
// blocking the primary's writes forever.
func TestReplicatorDetachesWedgedFollower(t *testing.T) {
	rec := &blockingReplica{
		replicaRecorder: &replicaRecorder{minerBackend: newMinerBackend(1)},
		release:         make(chan struct{}),
	}
	addr, _, _ := startServer(t, rec)
	defer close(rec.release) // unwedge the handler so the test binary exits

	lost := make(chan string, 1)
	r := NewReplicator(0, 50*time.Millisecond, func(addr string, err error) {
		if !strings.Contains(err.Error(), "wedged") {
			t.Errorf("lost reason %v, want the wedged hint", err)
		}
		lost <- addr
	})
	defer r.Close()
	if err := r.Attach(context.Background(), addr, func() (CatchupCut, error) { return CatchupCut{}, nil }); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if err := r.Ingest(context.Background(), []trace.Record{{File: 1, Path: "/x"}}, func() error { return nil }); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("Ingest blocked %v on a wedged follower", elapsed)
	}
	select {
	case <-lost:
	case <-time.After(5 * time.Second):
		t.Fatal("wedged follower never detached")
	}
	if got := r.Followers(); len(got) != 0 {
		t.Fatalf("wedged follower still attached: %v", got)
	}
}
