package rpc

import (
	"bufio"
	"bytes"
	"context"
	"errors"
	"fmt"
	"net"
	"reflect"
	"sync"
	"testing"
	"time"

	"farmer/internal/core"
	"farmer/internal/partition"
	"farmer/internal/trace"
	"farmer/internal/tracegen"
	"farmer/internal/vsm"
)

// minerBackend is the test backend: a real sharded miner, plus knobs for
// failure injection.
type minerBackend struct {
	sm      *core.ShardedModel
	saveErr error
	saves   int

	mu  sync.Mutex
	fed int
}

func newMinerBackend(shards int) *minerBackend {
	cfg := core.DefaultConfig()
	cfg.Shards = shards
	return &minerBackend{sm: core.NewSharded(cfg)}
}

func (b *minerBackend) Feed(r *trace.Record) error {
	b.mu.Lock()
	b.fed++
	b.mu.Unlock()
	b.sm.Feed(r)
	return nil
}
func (b *minerBackend) FeedBatch(recs []trace.Record) error          { b.sm.FeedBatch(recs); return nil }
func (b *minerBackend) Predict(f trace.FileID, k int) []trace.FileID { return b.sm.Predict(f, k) }
func (b *minerBackend) CorrelatorList(f trace.FileID) []core.Correlator {
	return b.sm.CorrelatorList(f)
}
func (b *minerBackend) Stats() core.Stats                       { return b.sm.Stats() }
func (b *minerBackend) ApplyEvents(evs []partition.Event) error { b.sm.ApplyExternal(evs); return nil }
func (b *minerBackend) Save() error                             { b.saves++; return b.saveErr }
func (b *minerBackend) Load() error                             { return nil }

// startServer runs a server on a loopback listener and returns its address
// plus a stop function that asserts a clean drain.
func startServer(t *testing.T, b Backend) (string, *Server, func()) {
	t.Helper()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(b)
	done := make(chan error, 1)
	go func() { done <- srv.Serve(lis) }()
	stop := func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
		if err := <-done; err != nil {
			t.Errorf("serve: %v", err)
		}
	}
	return lis.Addr().String(), srv, stop
}

func dialT(t *testing.T, addr string) *Client {
	t.Helper()
	c, err := Dial(context.Background(), addr)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestFrameRoundTrip(t *testing.T) {
	body := []byte("hello wire")
	buf := AppendFrame(nil, MsgFeed, 42, body)
	f, err := ReadFrame(bufio.NewReader(bytes.NewReader(buf)))
	if err != nil {
		t.Fatal(err)
	}
	if f.Type != MsgFeed || f.ID != 42 || string(f.Body) != string(body) {
		t.Fatalf("round trip got %+v", f)
	}
}

func TestFrameRejectsVersionAndSize(t *testing.T) {
	buf := AppendFrame(nil, MsgPing, 1, nil)
	buf[4] = 99 // version byte
	if _, err := ReadFrame(bufio.NewReader(bytes.NewReader(buf))); !errors.Is(err, ErrBadVersion) {
		t.Fatalf("want ErrBadVersion, got %v", err)
	}
	huge := []byte{0xff, 0xff, 0xff, 0xff}
	if _, err := ReadFrame(bufio.NewReader(bytes.NewReader(huge))); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("want ErrFrameTooLarge, got %v", err)
	}
}

func TestEventBodyRoundTrip(t *testing.T) {
	evs := []partition.Event{
		{Succ: 7, Vec: vsm.Vector{Scalars: []string{"u:1", "p:2"}, Path: "/a/b"}, Seq: 1, Access: true},
		{Pred: 7, Succ: 9, Credit: 0.9, Vec: vsm.Vector{Scalars: []string{"u:1"}}, Seq: 2},
		{Pred: 3, Succ: 9, Credit: 1, Seq: 2},
	}
	got, err := consumeEvents(appendEvents(nil, evs))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(evs, got) {
		t.Fatalf("events round trip:\n want %+v\n got  %+v", evs, got)
	}
}

func TestClientServerEndToEnd(t *testing.T) {
	b := newMinerBackend(2)
	addr, _, stop := startServer(t, b)
	defer stop()
	c := dialT(t, addr)
	defer c.Close()
	ctx := context.Background()

	if _, err := c.Ping(ctx); err != nil {
		t.Fatal(err)
	}

	tr, err := tracegen.HP(2000).Generate()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if err := c.Feed(ctx, &tr.Records[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.FeedBatch(ctx, tr.Records[100:]); err != nil {
		t.Fatal(err)
	}

	st, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Fed != uint64(len(tr.Records)) {
		t.Fatalf("remote fed %d, want %d", st.Fed, len(tr.Records))
	}
	if want := b.sm.Stats(); st != want {
		t.Fatalf("stats over the wire %+v != local %+v", st, want)
	}

	// Every list must cross the wire bit-exactly.
	for f := 0; f < tr.FileCount; f++ {
		want := b.sm.CorrelatorList(trace.FileID(f))
		got, err := c.CorrelatorList(ctx, trace.FileID(f))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("file %d list differs over the wire", f)
		}
		wantP := b.sm.Predict(trace.FileID(f), 4)
		gotP, err := c.Predict(ctx, trace.FileID(f), 4)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(wantP, gotP) {
			t.Fatalf("file %d prediction differs over the wire", f)
		}
	}
}

func TestServerErrorPropagation(t *testing.T) {
	b := newMinerBackend(1)
	b.saveErr = fmt.Errorf("disk on fire")
	addr, _, stop := startServer(t, b)
	defer stop()
	c := dialT(t, addr)
	defer c.Close()

	err := c.Save(context.Background())
	var we *WireError
	if !errors.As(err, &we) || we.Code != CodeInternal || we.Msg != "disk on fire" {
		t.Fatalf("want CodeInternal wire error, got %v", err)
	}
	// The connection must survive an application error.
	if _, err := c.Ping(context.Background()); err != nil {
		t.Fatalf("connection dead after error response: %v", err)
	}
	if b.saves != 1 {
		t.Fatalf("backend saw %d saves", b.saves)
	}
}

func TestServerRejectsMalformedBody(t *testing.T) {
	addr, _, stop := startServer(t, newMinerBackend(1))
	defer stop()
	c := dialT(t, addr)
	defer c.Close()

	_, err := c.call(context.Background(), MsgPredict, []byte{1, 2, 3})
	var we *WireError
	if !errors.As(err, &we) || we.Code != CodeBadRequest {
		t.Fatalf("want CodeBadRequest, got %v", err)
	}
	_, err = c.call(context.Background(), MsgType(0xEE), nil)
	if !errors.As(err, &we) || we.Code != CodeUnsupported {
		t.Fatalf("want CodeUnsupported, got %v", err)
	}
}

// TestPipelining issues a burst of concurrent calls over one connection and
// checks they all complete (matched by id, not by order).
func TestPipelining(t *testing.T) {
	b := newMinerBackend(2)
	addr, _, stop := startServer(t, b)
	defer stop()
	c := dialT(t, addr)
	defer c.Close()

	tr, err := tracegen.HP(4000).Generate()
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ctx := context.Background()
			for i := w; i < len(tr.Records); i += 8 {
				if err := c.Feed(ctx, &tr.Records[i]); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	st, err := c.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.Fed != uint64(len(tr.Records)) {
		t.Fatalf("fed %d, want %d", st.Fed, len(tr.Records))
	}
}

// TestGracefulDrain shuts the server down while a client has in-flight
// work; the in-flight request must complete, later ones must fail cleanly.
func TestGracefulDrain(t *testing.T) {
	b := newMinerBackend(1)
	addr, srv, _ := startServer(t, b)
	c := dialT(t, addr)
	defer c.Close()

	if _, err := c.Ping(context.Background()); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	// The drained server must refuse new work with a transport error, not
	// hang.
	if _, err := c.Ping(context.Background()); err == nil {
		t.Fatal("ping succeeded against a drained server")
	}
}

func TestClientContextCancel(t *testing.T) {
	b := newMinerBackend(1)
	addr, _, stop := startServer(t, b)
	defer stop()
	c := dialT(t, addr)
	defer c.Close()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := c.Feed(ctx, &trace.Record{File: 1}); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	// The client must remain usable after an abandoned call.
	if _, err := c.Ping(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestNetOwnerBitIdentical routes a dispatcher's events to a remote miner
// over the wire and checks the remote mined state equals a locally fed
// model, bit for bit.
func TestNetOwnerBitIdentical(t *testing.T) {
	tr, err := tracegen.HP(3000).Generate()
	if err != nil {
		t.Fatal(err)
	}
	mc := core.DefaultConfig()

	// Reference: plain sequential model.
	ref := core.New(mc)
	ref.FeedTrace(tr)

	b := newMinerBackend(2) // remote server stripes internally
	addr, _, stop := startServer(t, b)
	defer stop()
	c := dialT(t, addr)
	defer c.Close()
	owner := NewNetOwner(c, 16)

	d := partition.NewDispatcher(partition.Config{
		Owners:      1,
		Partitioner: partition.Hash,
		Mask:        mc.Mask,
		PathAlg:     mc.PathAlg,
		Graph:       mc.Graph,
	})
	var batch []partition.Event
	for i := range tr.Records {
		batch = batch[:0]
		d.Dispatch(&tr.Records[i], func(_ int, ev partition.Event) { batch = append(batch, ev) })
		owner.ApplyEvents(batch)
	}
	if err := owner.Flush(); err != nil {
		t.Fatal(err)
	}
	for f := 0; f < tr.FileCount; f++ {
		want := ref.CorrelatorList(trace.FileID(f))
		got := b.sm.CorrelatorList(trace.FileID(f))
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("file %d: remote mined state differs from sequential reference", f)
		}
	}
}

// TestFeedBatchChunksOversizedBatches: a batch bigger than one frame's
// budget splits into pipelined frames; the remote still mines everything in
// order, and a single absurd body is refused client-side instead of
// poisoning the connection.
func TestFeedBatchChunksOversizedBatches(t *testing.T) {
	old := maxBatchBody
	maxBatchBody = 512 // force many frames
	defer func() { maxBatchBody = old }()

	b := newMinerBackend(2)
	addr, _, stop := startServer(t, b)
	defer stop()
	c := dialT(t, addr)
	defer c.Close()

	tr, err := tracegen.HP(3000).Generate()
	if err != nil {
		t.Fatal(err)
	}
	if err := c.FeedBatch(context.Background(), tr.Records); err != nil {
		t.Fatal(err)
	}
	if got := b.sm.Fed(); got != uint64(len(tr.Records)) {
		t.Fatalf("chunked batch fed %d, want %d", got, len(tr.Records))
	}
	// Order preserved across frames: state equals a locally fed miner.
	cfg := core.DefaultConfig()
	cfg.Shards = 2
	local := core.NewSharded(cfg)
	local.FeedBatch(tr.Records)
	for f := 0; f < tr.FileCount; f += 11 {
		if !reflect.DeepEqual(local.CorrelatorList(trace.FileID(f)), b.sm.CorrelatorList(trace.FileID(f))) {
			t.Fatalf("file %d differs after chunked batch", f)
		}
	}

	// Oversize single frame: local refusal, connection survives.
	if _, err := c.start(MsgFeed, make([]byte, MaxFrame)); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("oversize body: %v", err)
	}
	if _, err := c.Ping(context.Background()); err != nil {
		t.Fatalf("connection poisoned by refused frame: %v", err)
	}
}
