package rpc

import (
	"reflect"
	"testing"

	"farmer/internal/trace"
)

func TestObsReqRoundTrip(t *testing.T) {
	for _, k := range []int{0, 1, 10, 1 << 20} {
		got, err := decodeObsReq(appendObsReq(nil, k))
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if got != k {
			t.Fatalf("k round-tripped %d -> %d", k, got)
		}
	}
	if _, err := decodeObsReq([]byte{1, 2, 3}); err == nil {
		t.Fatal("short obs request decoded")
	}
	if _, err := decodeObsReq([]byte{0, 0, 0, 0, 0xff}); err == nil {
		t.Fatal("unknown flag bits decoded")
	}
}

func TestTenantObsRoundTrip(t *testing.T) {
	rows := []TenantObs{
		{
			Name: "", Fed: 1, MemoryBytes: 2, TapDepth: 3, TapDropped: 4,
			FeedRecords: 5, FeedFrames: 6, ReplLagMax: 7, Followers: 8,
			CkptAgeMS: NeverCheckpointed, CkptEpoch: 10, CkptFull: 11,
			CkptDelta: 12, PredPredicted: 13, PredHits: 14,
		},
		{
			Name: "alpha", Fed: 1 << 40,
			Groups: []ObsGroup{
				{Seed: 9, Strength: 3.25, Files: []trace.FileID{10, 11, 12}},
				{Seed: 2, Strength: 0.5},
			},
		},
		{Name: "beta"},
	}
	got, err := decodeTenantObs(appendTenantObs(nil, rows))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, rows) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, rows)
	}
}

func TestTenantObsTruncationRefused(t *testing.T) {
	full := appendTenantObs(nil, []TenantObs{{
		Name: "alpha", Fed: 7,
		Groups: []ObsGroup{{Seed: 1, Strength: 2, Files: []trace.FileID{3, 4}}},
	}})
	// Every proper prefix must decode as an error, never panic or succeed.
	for cut := 0; cut < len(full); cut++ {
		if _, err := decodeTenantObs(full[:cut]); err == nil {
			t.Fatalf("truncation at %d/%d bytes decoded cleanly", cut, len(full))
		}
	}
}
