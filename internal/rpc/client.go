package rpc

import (
	"bufio"
	"context"
	"crypto/tls"
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"farmer/internal/core"
	"farmer/internal/trace"
)

// ErrClientClosed reports a call issued after Close, or one interrupted by
// it.
var ErrClientClosed = errors.New("rpc: client closed")

// ErrDisconnected reports that the client's connection failed underneath it:
// the transport error is sticky, so every outstanding and later call returns
// an error wrapping ErrDisconnected. A Client never reconnects itself — one
// connection is one FIFO stream, and splicing a new socket under pipelined
// requests would reorder them — so callers that can re-establish state
// (farmer.Dial's failover, which redials and re-promotes) match this error
// with errors.Is and swap in a fresh Client. Before it existed, the sticky
// error was untyped and callers had no sanctioned way to tell "this
// connection is dead, redial" from an application error — one transient
// fault wedged the client forever.
var ErrDisconnected = errors.New("rpc: disconnected")

// pending is one in-flight request; the reader delivers the matching
// response frame (or the client fails it with an error).
type pending struct {
	id  uint64
	ch  chan Frame // buffered 1
	buf *frameBuf  // response frame's read buffer (Body aliases it); owned by the waiter
}

// pendingPool recycles pending slots — and with them their one-buffered
// channels — so a windowed ack stream (AckWindow, NetOwner, FeedBatch
// pipelining) stops paying two allocations per request. Slots return to the
// pool only from the receive path in wait: a slot whose channel was closed
// by fail, or whose response was abandoned on ctx expiry (the reader may
// still send into it), is simply dropped for the GC. Together with the
// pooled response-read buffer in readLoop, measured on
// BenchmarkAckWindowFeed/w32: 1029 -> 823 B/op (-20%), 23 -> 19 allocs/op.
var pendingPool = sync.Pool{New: func() any { return &pending{ch: make(chan Frame, 1)} }}

// recycle returns p and any response buffer it carries to their pools. Only
// legal after receiving a frame from p.ch: the channel is then empty, still
// open, and no other goroutine holds p.
func (p *pending) recycle() {
	if p.buf != nil {
		putFrameBuf(p.buf)
		p.buf = nil
	}
	pendingPool.Put(p)
}

// Client speaks the wire protocol over one connection, with request
// pipelining: any number of calls may be outstanding, each matched to its
// response by id. Requests are written through a dedicated goroutine that
// coalesces a burst into one flush (per-connection write batching). Safe
// for concurrent use.
//
// A Client is bound to one tenant: every frame it sends carries the tenant
// id from its DialOptions (empty = the default tenant), so the server
// routes the whole connection's traffic to that tenant's miner.
type Client struct {
	conn   net.Conn
	tenant string
	token  string

	sawFrame atomic.Bool // any response frame ever decoded (version probe)

	mu      sync.Mutex
	nextID  uint64
	waiting map[uint64]*pending
	err     error // first transport error, sticky
	closed  bool
	failed  bool // fail ran (done is closed)

	out      chan *frameBuf
	quit     chan struct{} // closed by Close: writer flushes and exits
	done     chan struct{} // closed when the reader exits
	writerWG sync.WaitGroup
}

// DialOptions parameterises DialWith. The zero value reproduces Dial: TCP,
// default tenant, no token, no TLS.
type DialOptions struct {
	// Tenant binds every frame this client sends to one tenant id (see
	// ValidTenant); empty addresses the server's default tenant.
	Tenant string
	// Token is the bearer token presented in the connection's hello. A
	// server configured with auth refuses everything else until the hello
	// carried a token allowed the connection's tenants.
	Token string
	// TLS, when non-nil, wraps the connection in TLS with this config —
	// the client half of farmerd -tls-cert/-tls-key.
	TLS *tls.Config
}

// Dial connects to a FARMER rpc server at a TCP addr, honoring ctx for the
// connection attempt — DialWith with default options.
func Dial(ctx context.Context, addr string) (*Client, error) {
	return DialWith(ctx, addr, DialOptions{})
}

// DialWith connects to a FARMER rpc server and performs the protocol hello:
// the token is presented (auth happens before any other frame dispatch) and
// the server's protocol version is confirmed. A pre-tenant (v1) server
// drops the hello without answering; DialWith reports that as ErrBadVersion
// with an upgrade hint rather than a generic connection error.
func DialWith(ctx context.Context, addr string, opts DialOptions) (*Client, error) {
	if err := ValidTenant(opts.Tenant); err != nil {
		return nil, err
	}
	var conn net.Conn
	var err error
	if opts.TLS != nil {
		d := tls.Dialer{Config: opts.TLS}
		conn, err = d.DialContext(ctx, "tcp", addr)
	} else {
		var d net.Dialer
		conn, err = d.DialContext(ctx, "tcp", addr)
	}
	if err != nil {
		return nil, fmt.Errorf("rpc: dial %s: %w", addr, err)
	}
	c := newClient(conn, opts)
	// Tenant-aware (or authenticating) clients open with the hello — it
	// presents the token before anything else and doubles as the version
	// probe. A default-tenant, tokenless Dial skips it, staying trivially
	// compatible with servers (and tests) that never answer unprompted.
	if opts.Tenant != "" || opts.Token != "" {
		if err := c.hello(ctx); err != nil {
			c.Close()
			return nil, fmt.Errorf("rpc: hello %s: %w", addr, err)
		}
	}
	return c, nil
}

// NewClient wraps an established connection (default tenant, no hello —
// valid against servers that run without auth).
func NewClient(conn net.Conn) *Client { return newClient(conn, DialOptions{}) }

func newClient(conn net.Conn, opts DialOptions) *Client {
	c := &Client{
		conn:    conn,
		tenant:  opts.Tenant,
		token:   opts.Token,
		waiting: make(map[uint64]*pending),
		out:     make(chan *frameBuf, 256),
		quit:    make(chan struct{}),
		done:    make(chan struct{}),
	}
	c.writerWG.Add(1)
	go c.writeLoop()
	go c.readLoop()
	return c
}

// hello runs the connection-opening handshake. The EOF-without-any-frame
// signature — the server read our v2 frame and hung up without answering —
// is how a v1 farmerd treats a version it does not speak, so that case is
// reported as ErrBadVersion with an upgrade hint instead of a bare
// disconnect.
func (c *Client) hello(ctx context.Context) error {
	_, err := c.call(ctx, MsgHello, appendHello(nil, c.token))
	if err != nil && errors.Is(err, ErrDisconnected) && !c.sawFrame.Load() {
		return fmt.Errorf("%w: server closed the connection on a v%d hello without answering — it likely speaks an older protocol version; upgrade the server (%v)",
			ErrBadVersion, ProtocolVersion, err)
	}
	return err
}

// writeLoop drains queued frames, coalescing everything available into one
// buffered write and a single flush — the per-connection write batching
// that lets a pipelined burst of Feeds cost one syscall.
func (c *Client) writeLoop() {
	defer c.writerWG.Done()
	bw := bufio.NewWriterSize(c.conn, 64<<10)
	for {
		var buf *frameBuf
		select {
		case buf = <-c.out:
		case <-c.quit:
			bw.Flush()
			return
		}
		// bufio.Writer.Write has copied (or written out) the bytes by the
		// time it returns, so the buffer recycles immediately.
		bw.Write(buf.b)
		putFrameBuf(buf)
	batch:
		for {
			select {
			case more := <-c.out:
				bw.Write(more.b)
				putFrameBuf(more)
			default:
				break batch
			}
		}
		if err := bw.Flush(); err != nil {
			// Fail fast: the reader would eventually observe the broken
			// connection too, but a peer that only broke our write half
			// (or a long read timeout) would leave pending calls hanging
			// meanwhile. fail is idempotent, so racing the reader is fine;
			// closing the conn unparks the reader so it exits promptly.
			c.fail(err)
			c.conn.Close()
			return
		}
	}
}

// readLoop matches response frames to pending calls. On transport error it
// fails every outstanding and future call with that error.
func (c *Client) readLoop() {
	br := bufio.NewReaderSize(c.conn, 64<<10)
	for {
		// Each response reads into a pooled buffer the frame's Body aliases.
		// Ownership travels with the pending to the waiter (the channel send
		// publishes p.buf), which recycles it once the body is consumed; a
		// response nobody is waiting for recycles here.
		fb := getFrameBuf()
		f, b, err := readFrameBuf(br, fb.b)
		fb.b = b
		if err != nil {
			putFrameBuf(fb)
			c.fail(err)
			return
		}
		c.sawFrame.Store(true)
		c.mu.Lock()
		p := c.waiting[f.ID]
		delete(c.waiting, f.ID)
		c.mu.Unlock()
		if p == nil {
			putFrameBuf(fb)
			continue
		}
		p.buf = fb
		p.ch <- f
	}
}

// fail marks the client broken and releases every waiter. Idempotent: the
// writer and the reader may both observe the same broken connection.
func (c *Client) fail(err error) {
	c.mu.Lock()
	if c.failed {
		c.mu.Unlock()
		return
	}
	c.failed = true
	if c.err == nil {
		if c.closed {
			c.err = ErrClientClosed
		} else {
			c.err = fmt.Errorf("%w: %v", ErrDisconnected, err)
		}
	}
	waiting := c.waiting
	c.waiting = make(map[uint64]*pending)
	c.mu.Unlock()
	close(c.done)
	for _, p := range waiting {
		close(p.ch)
	}
}

// start enqueues one request and returns its pending slot. The body is
// copied into the frame buffer, so the caller may reuse it.
func (c *Client) start(typ MsgType, body []byte) (*pending, error) {
	if len(body) > MaxFrame-frameHeaderMin-len(c.tenant) {
		// Refuse locally: the server's ReadFrame would reject the frame and
		// drop the connection, failing every pipelined call with it.
		return nil, fmt.Errorf("%w: %d-byte body", ErrFrameTooLarge, len(body))
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrClientClosed
	}
	if c.err != nil {
		err := c.err
		c.mu.Unlock()
		return nil, err
	}
	c.nextID++
	id := c.nextID
	p := pendingPool.Get().(*pending)
	p.id = id
	c.waiting[id] = p
	c.mu.Unlock()

	fb := getFrameBuf()
	fb.b = AppendFrameTenant(fb.b, typ, id, c.tenant, body)
	select {
	case c.out <- fb:
		return p, nil
	case <-c.done:
		putFrameBuf(fb)
		c.forget(id)
		return nil, c.lastErr()
	}
}

// wait blocks for p's response, honoring ctx. A ctx expiry abandons the
// response — the pending slot is forgotten immediately (the reader discards
// the reply on arrival), so an abandoner's Close does not drain-wait for a
// response nobody wants; the connection stays healthy.
func (c *Client) wait(ctx context.Context, p *pending) ([]byte, error) {
	select {
	case f, ok := <-p.ch:
		if !ok {
			// fail closed the channel: a closed channel cannot be reused, so
			// the slot (which carries no buffer) is left to the GC.
			return nil, c.lastErr()
		}
		if f.Type == MsgErr {
			err := decodeWireError(f.Body) // copies the message out of the buffer
			p.recycle()
			return nil, err
		}
		if f.Type != MsgOK {
			p.recycle()
			return nil, fmt.Errorf("rpc: unexpected response type %d", f.Type)
		}
		body := f.Body
		if len(body) == 0 {
			// The ack hot path: nothing to hand the caller, so the slot and
			// its response buffer both recycle — a steady windowed feed
			// stream stops allocating per ack.
			p.recycle()
			return nil, nil
		}
		// A non-empty body aliases p.buf and is handed to the caller, which
		// may retain it (ReadFrame's historical contract): the buffer leaves
		// the pool's custody, but the slot itself still recycles.
		p.buf = nil
		p.recycle()
		return body, nil
	case <-ctx.Done():
		// Abandoned: the reader may still deliver into p.ch later, so
		// neither the slot nor the buffer it would carry can be recycled.
		c.forget(p.id)
		return nil, ctx.Err()
	}
}

func (c *Client) forget(id uint64) {
	c.mu.Lock()
	delete(c.waiting, id)
	c.mu.Unlock()
}

func (c *Client) lastErr() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.err != nil {
		return c.err
	}
	return ErrClientClosed
}

// call is the synchronous request/response path.
func (c *Client) call(ctx context.Context, typ MsgType, body []byte) ([]byte, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	p, err := c.start(typ, body)
	if err != nil {
		return nil, err
	}
	return c.wait(ctx, p)
}

// Ping round-trips an empty frame and reports the wall-clock latency.
func (c *Client) Ping(ctx context.Context) (time.Duration, error) {
	t0 := time.Now()
	_, err := c.call(ctx, MsgPing, nil)
	return time.Since(t0), err
}

// Feed ships one record to the remote miner and waits for its ack.
func (c *Client) Feed(ctx context.Context, r *trace.Record) error {
	_, err := c.call(ctx, MsgFeed, trace.AppendRecord(nil, r))
	return err
}

// maxBatchBody caps one FeedBatch frame's encoded body, comfortably under
// MaxFrame: larger batches are split into pipelined frames rather than
// tripping the server's frame bound and killing the connection. Variable
// only so tests can force the split path on small batches.
var maxBatchBody = 8 << 20

// FeedBatch ships the batch as one or more pipelined frames (split at
// maxBatchBody); the server mines each with all shards in parallel, in
// order, and FeedBatch returns once every frame is acked.
func (c *Client) FeedBatch(ctx context.Context, recs []trace.Record) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	var pendings []*pending
	// start copies the body into the frame buffer, so one pooled scratch
	// serves every chunk — the hot feed path stops allocating per frame.
	scratch := getFrameBuf()
	defer putFrameBuf(scratch)
	ship := func(chunk []trace.Record) error {
		if len(chunk) == 0 {
			return nil
		}
		scratch.b = appendRecords(scratch.b[:0], chunk)
		p, err := c.start(MsgFeedBatch, scratch.b)
		if err != nil {
			return err
		}
		pendings = append(pendings, p)
		return nil
	}
	lo, size := 0, 4
	var shipErr error
	for i := range recs {
		sz := trace.RecordFixedLen + len(recs[i].Path)
		if size+sz > maxBatchBody && i > lo {
			if shipErr = ship(recs[lo:i]); shipErr != nil {
				break
			}
			lo, size = i, 4
		}
		size += sz
	}
	if shipErr == nil {
		shipErr = ship(recs[lo:])
	}
	// Collect every ack even after an error so no response leaks.
	for _, p := range pendings {
		if _, err := c.wait(ctx, p); err != nil && shipErr == nil {
			shipErr = err
		}
	}
	return shipErr
}

// Predict asks the remote miner for up to k successors of f.
func (c *Client) Predict(ctx context.Context, f trace.FileID, k int) ([]trace.FileID, error) {
	body, err := c.call(ctx, MsgPredict, appendPredictReq(nil, f, k))
	if err != nil {
		return nil, err
	}
	return consumeFileIDs(body)
}

// CorrelatorList fetches f's full Correlator List with bit-exact degrees.
func (c *Client) CorrelatorList(ctx context.Context, f trace.FileID) ([]core.Correlator, error) {
	body, err := c.call(ctx, MsgList, binary.LittleEndian.AppendUint32(nil, uint32(f)))
	if err != nil {
		return nil, err
	}
	return consumeCorrelators(body)
}

// Stats fetches the remote miner's footprint snapshot.
func (c *Client) Stats(ctx context.Context) (core.Stats, error) {
	body, err := c.call(ctx, MsgStats, nil)
	if err != nil {
		return core.Stats{}, err
	}
	return consumeStats(body)
}

// Save checkpoints the remote miner into its server-side store.
func (c *Client) Save(ctx context.Context) error {
	_, err := c.call(ctx, MsgSave, nil)
	return err
}

// Load restores the remote miner from its server-side store.
func (c *Client) Load(ctx context.Context) error {
	_, err := c.call(ctx, MsgLoad, nil)
	return err
}

// Promote asks the server to start accepting writes. A primary (or any
// standalone server) answers OK as a no-op; an un-promoted follower accepts
// only if its primary's replication link is down, and otherwise answers
// CodeNotPrimary (match with errors.Is(err, ErrNotPrimary)) — the
// split-brain guard a failing-over client relies on.
func (c *Client) Promote(ctx context.Context) error {
	_, err := c.call(ctx, MsgPromote, nil)
	return err
}

// Catchup ships a checkpoint cut to a follower and waits for it to verify
// and install it — the bootstrap half of the replication stream.
func (c *Client) Catchup(ctx context.Context, cut *CatchupCut) error {
	_, err := c.call(ctx, MsgCatchup, appendCatchup(nil, cut))
	return err
}

// Groups runs a replica-group operation on the server: with req.Read it
// reports the manager's current fingerprint; otherwise the server rebuilds
// groups from its mined state and cuts a group-atomic backup of every group
// (on a replicating primary, the cut is forwarded to followers at the same
// stream position).
func (c *Client) Groups(ctx context.Context, req GroupsReq) (GroupsInfo, error) {
	body, err := c.call(ctx, MsgGroups, appendGroupsReq(nil, &req))
	if err != nil {
		return GroupsInfo{}, err
	}
	return decodeGroupsInfo(body)
}

// LeaseStatus asks the server for its current lease term (epoch 0 means
// leases are disabled or none was ever observed). A pre-lease server
// answers CodeUnsupported.
func (c *Client) LeaseStatus(ctx context.Context) (LeaseInfo, error) {
	body, err := c.call(ctx, MsgLeaseRequest, appendLeaseReq(nil, 0, ""))
	if err != nil {
		return LeaseInfo{}, err
	}
	return decodeLeaseInfo(body)
}

// LeaseVote asks the server to vote candidate into epoch. Granted = nil;
// refused = ErrStaleEpoch (the term is taken, or the sitting leader's lease
// is still live).
func (c *Client) LeaseVote(ctx context.Context, epoch uint64, candidate string) error {
	_, err := c.call(ctx, MsgLeaseRequest, appendLeaseReq(nil, epoch, candidate))
	return err
}

// LeaseGrant announces a lease term to the server: a renewal from the
// leader, or — with info.Transfer — a handoff that makes the receiving
// follower the leader of the carried epoch.
func (c *Client) LeaseGrant(ctx context.Context, info LeaseInfo) error {
	_, err := c.call(ctx, MsgLeaseGrant, appendLeaseInfo(nil, &info))
	return err
}

// Handoff asks the server (a lease-holding leader) to hand its write role
// to the farmerd at target, catching it up first when needed — the wire
// half of `farmerctl rebalance`.
func (c *Client) Handoff(ctx context.Context, target string) error {
	_, err := c.call(ctx, MsgHandoff, appendHandoffReq(nil, target))
	return err
}

// WireStats reads the server's per-request-type latency accounting.
// Control-plane, like Obs.
func (c *Client) WireStats(ctx context.Context) ([]WireStat, error) {
	body, err := c.call(ctx, MsgWireStats, nil)
	if err != nil {
		return nil, err
	}
	return decodeWireStats(body)
}

// Tenants lists the tenants live on the server with a stats snapshot each —
// the wire half of `farmerctl tenants`.
func (c *Client) Tenants(ctx context.Context) ([]TenantInfo, error) {
	body, err := c.call(ctx, MsgTenants, nil)
	if err != nil {
		return nil, err
	}
	return decodeTenantInfos(body)
}

// Obs asks the server for its live observability rows — one per tenant the
// connection may see, each with up to topK correlation groups (0 = rows
// only). Control-plane, like Tenants.
func (c *Client) Obs(ctx context.Context, topK int) ([]TenantObs, error) {
	body, err := c.call(ctx, MsgObs, appendObsReq(nil, topK))
	if err != nil {
		return nil, err
	}
	return decodeTenantObs(body)
}

// Close drains gracefully: no new calls are accepted, outstanding responses
// are awaited briefly, then the connection closes. Idempotent.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.mu.Unlock()

	// Give in-flight calls a bounded window to complete (graceful drain).
	deadline := time.NewTimer(5 * time.Second)
	defer deadline.Stop()
	tick := time.NewTicker(time.Millisecond)
	defer tick.Stop()
drain:
	for {
		c.mu.Lock()
		n := len(c.waiting)
		c.mu.Unlock()
		if n == 0 {
			break
		}
		select {
		case <-tick.C:
		case <-deadline.C:
			break drain
		case <-c.done:
			break drain
		}
	}
	close(c.quit)
	// Bound the writer's final flush: a peer that stopped reading leaves
	// the write blocked on TCP backpressure, and only a deadline (or
	// closing the conn) unblocks it — without this, Wait could hang forever
	// and conn.Close would never run.
	c.conn.SetWriteDeadline(time.Now().Add(2 * time.Second))
	c.writerWG.Wait()
	err := c.conn.Close()
	<-c.done // reader exits on the closed connection
	return err
}
