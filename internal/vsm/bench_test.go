package vsm

import "testing"

var benchA = Vector{Scalars: []string{"u:1", "p:3", "h:2"}, Path: "/home/user1/project/src/main.go"}
var benchB = Vector{Scalars: []string{"u:1", "p:4", "h:2"}, Path: "/home/user1/project/src/util.go"}

// BenchmarkSimIPA measures the paper's chosen similarity path.
func BenchmarkSimIPA(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Sim(&benchA, &benchB, IPA)
	}
}

// BenchmarkSimDPA measures the divided-path alternative.
func BenchmarkSimDPA(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Sim(&benchA, &benchB, DPA)
	}
}
