// Package vsm implements the Vector Space Model machinery FARMER borrows
// from information retrieval (paper §3.2.1): files are represented as
// semantic vectors of attribute items and compared with the set-overlap
// similarity
//
//	sim(A, B) = |A ∩ B| / max(|A|, |B|)
//
// The file-path attribute gets special treatment. Under the Divided Path
// Algorithm (DPA) every path component is its own vector item; under the
// Integrated Path Algorithm (IPA) — the variant the paper selects — the whole
// path is a single item whose intersection contribution is the fractional
// component-wise similarity of the two paths. IPA prevents deep directories
// from drowning out the other attributes.
package vsm

import "strings"

// Attr identifies one semantic attribute extracted from a file request.
type Attr uint8

// The attributes the paper mines. File path and file id are alternatives:
// HP/LLNL-style traces carry paths, INS/RES-style traces carry file ids plus
// device ids.
const (
	AttrUser Attr = iota
	AttrProcess
	AttrHost
	AttrPath
	AttrFileID
	AttrDevice
	NumAttrs
)

var attrNames = [...]string{"User", "Process", "Host", "File Path", "File ID", "Device"}

// String returns the attribute's display name as used in the paper's tables.
func (a Attr) String() string {
	if int(a) < len(attrNames) {
		return attrNames[a]
	}
	return "Attr?"
}

// Mask is a set of attributes enabled for similarity computation. The
// Fig. 5 experiment sweeps all combinations of four attributes.
type Mask uint8

// Has reports whether the attribute is enabled.
func (m Mask) Has(a Attr) bool { return m&(1<<a) != 0 }

// With returns a copy of the mask with the attribute enabled.
func (m Mask) With(a Attr) Mask { return m | (1 << a) }

// Without returns a copy of the mask with the attribute disabled.
func (m Mask) Without(a Attr) Mask { return m &^ (1 << a) }

// Count reports how many attributes are enabled.
func (m Mask) Count() int {
	n := 0
	for a := Attr(0); a < NumAttrs; a++ {
		if m.Has(a) {
			n++
		}
	}
	return n
}

// String renders the mask as the paper writes combinations, e.g.
// "{User, Process, File Path}".
func (m Mask) String() string {
	var parts []string
	for a := Attr(0); a < NumAttrs; a++ {
		if m.Has(a) {
			parts = append(parts, a.String())
		}
	}
	if len(parts) == 0 {
		return "{}"
	}
	return "{" + strings.Join(parts, ", ") + "}"
}

// MaskOf builds a mask from attributes.
func MaskOf(attrs ...Attr) Mask {
	var m Mask
	for _, a := range attrs {
		m = m.With(a)
	}
	return m
}

// AllPathMask is the full HP-trace combination {User, Process, Host, File Path}.
var AllPathMask = MaskOf(AttrUser, AttrProcess, AttrHost, AttrPath)

// AllFileIDMask is the full INS/RES combination {User, Process, Host, File ID}.
var AllFileIDMask = MaskOf(AttrUser, AttrProcess, AttrHost, AttrFileID)

// Vector is a file's semantic vector. Scalar items (user, process, host,
// file id, device) are discrete tokens; Path is kept separately because DPA
// and IPA treat it differently.
type Vector struct {
	Scalars []string // discrete attribute items, e.g. "u:12", "p:344"
	Path    string   // full path, or "" when the trace has no paths
}

// Len reports the number of vector items under the given path algorithm.
// Under DPA the path contributes one item per component; under IPA it
// contributes a single item.
func (v *Vector) Len(alg PathAlg) int {
	n := len(v.Scalars)
	if v.Path == "" {
		return n
	}
	switch alg {
	case DPA:
		return n + len(SplitPath(v.Path))
	default: // IPA
		return n + 1
	}
}

// PathAlg selects the path treatment.
type PathAlg uint8

// The two path algorithms from §3.2.1.
const (
	IPA PathAlg = iota // integrated path (paper's choice)
	DPA                // divided path
)

// String returns "IPA" or "DPA".
func (a PathAlg) String() string {
	if a == DPA {
		return "DPA"
	}
	return "IPA"
}

// SplitPath splits a slash path into its components: "/home/u/a" ->
// ["home", "u", "a"]. Empty components are dropped.
func SplitPath(p string) []string {
	parts := strings.Split(p, "/")
	out := parts[:0]
	for _, c := range parts {
		if c != "" {
			out = append(out, c)
		}
	}
	return out
}

// PathSimilarity is the component-wise similarity of two paths used by IPA:
// |components(A) ∩ components(B)| / max component count, counting multiset
// intersection. The paper's Table 2 example: /home/user1/paper/a vs
// /home/user1/paper/b -> 3/4 = 0.75.
func PathSimilarity(a, b string) float64 {
	if a == "" || b == "" {
		return 0
	}
	ca := SplitPath(a)
	cb := SplitPath(b)
	if len(ca) == 0 || len(cb) == 0 {
		return 0
	}
	inter := multisetIntersection(ca, cb)
	maxLen := len(ca)
	if len(cb) > maxLen {
		maxLen = len(cb)
	}
	return float64(inter) / float64(maxLen)
}

func multisetIntersection(a, b []string) int {
	counts := make(map[string]int, len(a))
	for _, x := range a {
		counts[x]++
	}
	n := 0
	for _, x := range b {
		if counts[x] > 0 {
			counts[x]--
			n++
		}
	}
	return n
}

// Sim computes the semantic distance sim(A,B) between two vectors under the
// given path algorithm (paper Function 1 + Table 2).
//
// DPA: every scalar and every path component is one item; the result is
// |A∩B| / max(|A|,|B|) over all items.
//
// IPA: every scalar is one item and the whole path is a single item whose
// intersection weight is PathSimilarity(A.Path, B.Path); the result is
// (|scalars(A)∩scalars(B)| + pathSim) / max(|A|,|B|) with |A| counting the
// path as one item.
func Sim(a, b *Vector, alg PathAlg) float64 {
	la, lb := a.Len(alg), b.Len(alg)
	if la == 0 || lb == 0 {
		return 0
	}
	maxLen := la
	if lb > maxLen {
		maxLen = lb
	}
	var inter float64
	switch alg {
	case DPA:
		itemsA := append(append([]string(nil), a.Scalars...), SplitPath(a.Path)...)
		itemsB := append(append([]string(nil), b.Scalars...), SplitPath(b.Path)...)
		inter = float64(multisetIntersection(itemsA, itemsB))
	default: // IPA
		inter = float64(multisetIntersection(a.Scalars, b.Scalars))
		if a.Path != "" && b.Path != "" {
			inter += PathSimilarity(a.Path, b.Path)
		}
	}
	s := inter / float64(maxLen)
	if s > 1 {
		s = 1
	}
	return s
}
