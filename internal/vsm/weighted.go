package vsm

import (
	"fmt"
	"math"

	"farmer/internal/trace"
)

// Weighted similarity — the paper's §7 future work: "multiple regression
// can be used to learn more about association between file correlations and
// attributes". WeightedSim generalises Sim with one weight per attribute;
// Regression learns those weights from labelled access pairs by logistic
// regression on per-attribute match indicators.

// Weights assigns one non-negative weight per attribute. The unweighted
// model is all-ones.
type Weights [NumAttrs]float64

// UniformWeights returns the all-ones weights (equivalent to plain Sim over
// the same mask).
func UniformWeights() Weights {
	var w Weights
	for i := range w {
		w[i] = 1
	}
	return w
}

// matchVector computes the per-attribute match indicator between two
// records under a mask. Scalar attributes contribute 0/1; the path
// attribute contributes its fractional component similarity.
func matchVector(a, b *trace.Record, mask Mask) [NumAttrs]float64 {
	var mv [NumAttrs]float64
	eq := func(x, y uint32) float64 {
		if x == y {
			return 1
		}
		return 0
	}
	if mask.Has(AttrUser) {
		mv[AttrUser] = eq(a.UID, b.UID)
	}
	if mask.Has(AttrProcess) {
		mv[AttrProcess] = eq(a.PID, b.PID)
	}
	if mask.Has(AttrHost) {
		mv[AttrHost] = eq(a.Host, b.Host)
	}
	if mask.Has(AttrFileID) {
		mv[AttrFileID] = eq(uint32(a.File), uint32(b.File))
	}
	if mask.Has(AttrDevice) {
		mv[AttrDevice] = eq(a.Dev, b.Dev)
	}
	if mask.Has(AttrPath) && a.Path != "" && b.Path != "" {
		mv[AttrPath] = PathSimilarity(a.Path, b.Path)
	}
	return mv
}

// WeightedSim is the weighted semantic distance: the weighted mean of
// per-attribute match indicators over the enabled attributes,
//
//	sim_w(A,B) = Σ w_i·m_i / Σ w_i
//
// which reduces to the IPA Sim (up to the max-vs-sum normalisation) at
// uniform weights and lets a learned Weights emphasise informative
// attributes.
func WeightedSim(a, b *trace.Record, mask Mask, w Weights) float64 {
	mv := matchVector(a, b, mask)
	var num, den float64
	for attr := Attr(0); attr < NumAttrs; attr++ {
		if !mask.Has(attr) {
			continue
		}
		wi := w[attr]
		if wi < 0 {
			wi = 0
		}
		num += wi * mv[attr]
		den += wi
	}
	if den == 0 {
		return 0
	}
	return num / den
}

// Pair is one labelled training example: the attribute records of two file
// accesses and whether the files are truly correlated.
type Pair struct {
	A, B       *trace.Record
	Correlated bool
}

// Regression learns attribute weights by logistic regression on match
// vectors: P(correlated) = σ(b + Σ w_i·m_i), trained with batch gradient
// descent. Positive learned coefficients become the attribute weights
// (clamped at zero — an attribute that anti-predicts correlation is simply
// unused, keeping WeightedSim a similarity).
type Regression struct {
	Mask     Mask
	Rate     float64 // learning rate; default 0.5
	Epochs   int     // default 200
	L2       float64 // ridge penalty; default 0.001
	coef     [NumAttrs]float64
	bias     float64
	trained  bool
	examples int
}

// Fit trains on labelled pairs. It fails on an empty or single-class set.
func (r *Regression) Fit(pairs []Pair) error {
	if len(pairs) == 0 {
		return fmt.Errorf("vsm: no training pairs")
	}
	pos := 0
	for _, p := range pairs {
		if p.Correlated {
			pos++
		}
	}
	if pos == 0 || pos == len(pairs) {
		return fmt.Errorf("vsm: training pairs are single-class (%d/%d positive)", pos, len(pairs))
	}
	if r.Rate <= 0 {
		r.Rate = 0.5
	}
	if r.Epochs <= 0 {
		r.Epochs = 200
	}
	if r.L2 < 0 {
		r.L2 = 0
	}
	// Precompute match vectors.
	mvs := make([][NumAttrs]float64, len(pairs))
	ys := make([]float64, len(pairs))
	for i, p := range pairs {
		mvs[i] = matchVector(p.A, p.B, r.Mask)
		if p.Correlated {
			ys[i] = 1
		}
	}
	n := float64(len(pairs))
	for epoch := 0; epoch < r.Epochs; epoch++ {
		var gradB float64
		var grad [NumAttrs]float64
		for i := range mvs {
			z := r.bias
			for a := Attr(0); a < NumAttrs; a++ {
				z += r.coef[a] * mvs[i][a]
			}
			p := 1 / (1 + math.Exp(-z))
			diff := p - ys[i]
			gradB += diff
			for a := Attr(0); a < NumAttrs; a++ {
				grad[a] += diff * mvs[i][a]
			}
		}
		r.bias -= r.Rate * gradB / n
		for a := Attr(0); a < NumAttrs; a++ {
			r.coef[a] -= r.Rate * (grad[a]/n + r.L2*r.coef[a])
		}
	}
	r.trained = true
	r.examples = len(pairs)
	return nil
}

// Weights converts the learned coefficients into similarity weights
// (negative coefficients clamp to zero).
func (r *Regression) Weights() (Weights, error) {
	if !r.trained {
		return Weights{}, fmt.Errorf("vsm: regression not fitted")
	}
	var w Weights
	for a := Attr(0); a < NumAttrs; a++ {
		if c := r.coef[a]; c > 0 {
			w[a] = c
		}
	}
	return w, nil
}

// Coef exposes a learned coefficient (tests, diagnostics).
func (r *Regression) Coef(a Attr) float64 { return r.coef[a] }

// Predict returns P(correlated) for a pair under the learned model.
func (r *Regression) Predict(a, b *trace.Record) float64 {
	mv := matchVector(a, b, r.Mask)
	z := r.bias
	for attr := Attr(0); attr < NumAttrs; attr++ {
		z += r.coef[attr] * mv[attr]
	}
	return 1 / (1 + math.Exp(-z))
}

// TrainingPairsFromTrace builds a labelled pair set from a trace with
// ground-truth groups: adjacent-in-window same-group accesses are positive;
// window-adjacent cross-group accesses are negative. maxPairs bounds the
// set (0 = 10,000).
func TrainingPairsFromTrace(t *trace.Trace, window, maxPairs int) []Pair {
	if window <= 0 {
		window = 3
	}
	if maxPairs <= 0 {
		maxPairs = 10000
	}
	var pairs []Pair
	for i := 1; i < len(t.Records) && len(pairs) < maxPairs; i++ {
		lo := i - window
		if lo < 0 {
			lo = 0
		}
		for j := lo; j < i; j++ {
			a, b := &t.Records[j], &t.Records[i]
			if a.File == b.File {
				continue
			}
			if a.Group < 0 && b.Group < 0 {
				continue // two noise records teach nothing
			}
			pairs = append(pairs, Pair{A: a, B: b, Correlated: a.Group >= 0 && a.Group == b.Group})
			if len(pairs) == maxPairs {
				break
			}
		}
	}
	return pairs
}
