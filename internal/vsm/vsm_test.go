package vsm

import (
	"math"
	"testing"
	"testing/quick"

	"farmer/internal/trace"
)

// The paper's Table 1/2 worked example:
//
//	A = user1 p1 host1 /home/user1/paper/a
//	B = user1 p2 host1 /home/user1/paper/b
//	C = user2 p3 host2 /home/user2/c
var (
	tabA = Vector{Scalars: []string{"user1", "p1", "host1"}, Path: "/home/user1/paper/a"}
	tabB = Vector{Scalars: []string{"user1", "p2", "host1"}, Path: "/home/user1/paper/b"}
	tabC = Vector{Scalars: []string{"user2", "p3", "host2"}, Path: "/home/user2/c"}
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

// TestPaperTable2DPA checks the DPA column of Table 2:
// sim(A,B)=5/7, sim(A,C)=1/7, sim(B,C)=1/7.
func TestPaperTable2DPA(t *testing.T) {
	if got := Sim(&tabA, &tabB, DPA); !almost(got, 5.0/7.0) {
		t.Errorf("DPA sim(A,B) = %v, want 5/7", got)
	}
	if got := Sim(&tabA, &tabC, DPA); !almost(got, 1.0/7.0) {
		t.Errorf("DPA sim(A,C) = %v, want 1/7", got)
	}
	if got := Sim(&tabB, &tabC, DPA); !almost(got, 1.0/7.0) {
		t.Errorf("DPA sim(B,C) = %v, want 1/7", got)
	}
}

// TestPaperTable2IPA checks the IPA column of Table 2:
// sim(A,B)=2.75/4, sim(A,C)=0.25/4, sim(B,C)=0.25/4.
//
// Paths /home/user1/paper/a vs /home/user1/paper/b share 3 of max 4
// components -> path item contributes 0.75; user1+host1 match -> 2; total
// 2.75 over max vector length 4.
func TestPaperTable2IPA(t *testing.T) {
	if got := Sim(&tabA, &tabB, IPA); !almost(got, 2.75/4.0) {
		t.Errorf("IPA sim(A,B) = %v, want 2.75/4", got)
	}
	if got := Sim(&tabA, &tabC, IPA); !almost(got, 0.25/4.0) {
		t.Errorf("IPA sim(A,C) = %v, want 0.25/4", got)
	}
	if got := Sim(&tabB, &tabC, IPA); !almost(got, 0.25/4.0) {
		t.Errorf("IPA sim(B,C) = %v, want 0.25/4", got)
	}
}

// TestPaperPathSimilarity checks the intermediate 3/4 directory similarity
// quoted in §3.2.1.
func TestPaperPathSimilarity(t *testing.T) {
	if got := PathSimilarity("/home/user1/paper/a", "/home/user1/paper/b"); !almost(got, 0.75) {
		t.Errorf("PathSimilarity = %v, want 0.75", got)
	}
}

// TestIPADeepDirectoryRobustness reproduces the paper's argument for IPA: an
// executable and the library it links share user+process but have disjoint
// deep paths. DPA drowns the scalar match; IPA preserves it.
func TestIPADeepDirectoryRobustness(t *testing.T) {
	exe := Vector{Scalars: []string{"u:1", "p:9"}, Path: "/home/alice/projects/app/build/bin/app"}
	lib := Vector{Scalars: []string{"u:1", "p:9"}, Path: "/usr/lib/x86_64/libm.so"}
	dpa := Sim(&exe, &lib, DPA)
	ipa := Sim(&exe, &lib, IPA)
	if ipa <= dpa {
		t.Fatalf("IPA (%v) should exceed DPA (%v) for disjoint deep paths", ipa, dpa)
	}
	// IPA: 2 scalar matches, 0 path sim, max len 3 -> 2/3.
	if !almost(ipa, 2.0/3.0) {
		t.Fatalf("IPA = %v, want 2/3", ipa)
	}
}

func TestSimIdentity(t *testing.T) {
	if got := Sim(&tabA, &tabA, IPA); !almost(got, 1.0) {
		t.Errorf("IPA self-sim = %v, want 1", got)
	}
	if got := Sim(&tabA, &tabA, DPA); !almost(got, 1.0) {
		t.Errorf("DPA self-sim = %v, want 1", got)
	}
}

func TestSimEmpty(t *testing.T) {
	empty := Vector{}
	if got := Sim(&empty, &tabA, IPA); got != 0 {
		t.Errorf("sim(empty, A) = %v, want 0", got)
	}
	if got := Sim(&empty, &empty, DPA); got != 0 {
		t.Errorf("sim(empty, empty) = %v, want 0", got)
	}
}

func TestSimPathOnlyVectors(t *testing.T) {
	a := Vector{Path: "/a/b/c"}
	b := Vector{Path: "/a/b/d"}
	// IPA: single path item, similarity 2/3 -> sim = (2/3)/1.
	if got := Sim(&a, &b, IPA); !almost(got, 2.0/3.0) {
		t.Errorf("IPA path-only = %v, want 2/3", got)
	}
	// DPA: items {a,b,c} vs {a,b,d} -> 2/3.
	if got := Sim(&a, &b, DPA); !almost(got, 2.0/3.0) {
		t.Errorf("DPA path-only = %v, want 2/3", got)
	}
}

func TestSplitPath(t *testing.T) {
	cases := []struct {
		in   string
		want int
	}{
		{"/home/u/a", 3},
		{"home/u/a", 3},
		{"//double//slash/", 2},
		{"/", 0},
		{"", 0},
	}
	for _, c := range cases {
		if got := SplitPath(c.in); len(got) != c.want {
			t.Errorf("SplitPath(%q) = %v, want %d parts", c.in, got, c.want)
		}
	}
}

func TestMultisetIntersectionCountsDuplicates(t *testing.T) {
	a := []string{"x", "x", "y"}
	b := []string{"x", "x", "x"}
	if got := multisetIntersection(a, b); got != 2 {
		t.Fatalf("multiset intersection = %d, want 2", got)
	}
}

// Property: Sim is symmetric and within [0,1] under both algorithms.
func TestSimProperties(t *testing.T) {
	f := func(sa, sb []uint8, pa, pb bool) bool {
		mk := func(tokens []uint8, withPath bool, path string) Vector {
			v := Vector{}
			for _, tok := range tokens {
				v.Scalars = append(v.Scalars, "t:"+string(rune('a'+tok%16)))
			}
			if withPath {
				v.Path = path
			}
			return v
		}
		a := mk(sa, pa, "/x/y/z")
		b := mk(sb, pb, "/x/q/z")
		for _, alg := range []PathAlg{IPA, DPA} {
			s1 := Sim(&a, &b, alg)
			s2 := Sim(&b, &a, alg)
			if math.Abs(s1-s2) > 1e-12 {
				return false
			}
			if s1 < 0 || s1 > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMaskOps(t *testing.T) {
	m := MaskOf(AttrUser, AttrPath)
	if !m.Has(AttrUser) || !m.Has(AttrPath) || m.Has(AttrProcess) {
		t.Fatalf("mask membership wrong: %v", m)
	}
	if m.Count() != 2 {
		t.Fatalf("Count = %d, want 2", m.Count())
	}
	if got := m.Without(AttrUser); got.Has(AttrUser) {
		t.Fatal("Without failed")
	}
	if got := m.String(); got != "{User, File Path}" {
		t.Fatalf("String = %q", got)
	}
	if got := Mask(0).String(); got != "{}" {
		t.Fatalf("empty mask String = %q", got)
	}
}

func TestCombinations(t *testing.T) {
	attrs := []Attr{AttrUser, AttrProcess, AttrHost, AttrPath}
	combos := Combinations(attrs)
	if len(combos) != 15 {
		t.Fatalf("4 attributes should give 15 combinations, got %d", len(combos))
	}
	seen := map[Mask]bool{}
	for _, m := range combos {
		if seen[m] {
			t.Fatalf("duplicate combination %v", m)
		}
		seen[m] = true
		if m.Count() == 0 {
			t.Fatal("empty combination emitted")
		}
	}
	// Sizes must be non-decreasing (paper's table orders singletons first).
	for i := 1; i < len(combos); i++ {
		if combos[i].Count() < combos[i-1].Count() {
			t.Fatalf("combinations not ordered by size at %d", i)
		}
	}
}

func TestExtractor(t *testing.T) {
	r := trace.Record{UID: 7, PID: 42, Host: 3, File: 11, Dev: 2, Path: "/home/u7/f"}
	e := NewExtractor(AllPathMask)
	v := e.Extract(&r)
	if len(v.Scalars) != 3 {
		t.Fatalf("scalars = %v, want 3 items (user, process, host)", v.Scalars)
	}
	if v.Path != "/home/u7/f" {
		t.Fatalf("path = %q", v.Path)
	}
	e2 := NewExtractor(MaskOf(AttrFileID, AttrDevice))
	v2 := e2.Extract(&r)
	if len(v2.Scalars) != 2 || v2.Path != "" {
		t.Fatalf("file-id extraction wrong: %+v", v2)
	}
}

func TestExtractorNamespacing(t *testing.T) {
	// User 5 must not collide with process 5.
	a := trace.Record{UID: 5, PID: 1}
	b := trace.Record{UID: 1, PID: 5}
	e := NewExtractor(MaskOf(AttrUser, AttrProcess))
	if got := e.Similarity(&a, &b); got != 0 {
		t.Fatalf("cross-attribute collision: sim = %v, want 0", got)
	}
}

func TestExtractorSimilarityFullMatch(t *testing.T) {
	a := trace.Record{UID: 5, PID: 9, Host: 2, Path: "/h/u/f"}
	e := NewExtractor(AllPathMask)
	if got := e.Similarity(&a, &a); !almost(got, 1) {
		t.Fatalf("self similarity = %v, want 1", got)
	}
}

func TestDefaultMask(t *testing.T) {
	if DefaultMask(true) != AllPathMask {
		t.Fatal("DefaultMask(true) != AllPathMask")
	}
	if DefaultMask(false) != AllFileIDMask {
		t.Fatal("DefaultMask(false) != AllFileIDMask")
	}
}

func TestVectorLen(t *testing.T) {
	v := Vector{Scalars: []string{"a", "b"}, Path: "/x/y/z"}
	if got := v.Len(IPA); got != 3 {
		t.Fatalf("IPA len = %d, want 3", got)
	}
	if got := v.Len(DPA); got != 5 {
		t.Fatalf("DPA len = %d, want 5", got)
	}
	noPath := Vector{Scalars: []string{"a"}}
	if got := noPath.Len(DPA); got != 1 {
		t.Fatalf("no-path DPA len = %d, want 1", got)
	}
}

func TestPathAlgString(t *testing.T) {
	if IPA.String() != "IPA" || DPA.String() != "DPA" {
		t.Fatal("PathAlg String wrong")
	}
}
