package vsm

import (
	"math"
	"testing"

	"farmer/internal/trace"
	"farmer/internal/tracegen"
)

func recAt(f trace.FileID, uid, pid, host uint32, path string) *trace.Record {
	return &trace.Record{File: f, UID: uid, PID: pid, Host: host, Path: path}
}

func TestWeightedSimUniformMatchesIntuition(t *testing.T) {
	a := recAt(1, 1, 2, 3, "/d/a")
	b := recAt(2, 1, 9, 3, "/d/b")
	// Matches: user 1, host 1, process 0, path 1/2 -> mean (1+0+1+0.5)/4.
	got := WeightedSim(a, b, AllPathMask, UniformWeights())
	if math.Abs(got-0.625) > 1e-12 {
		t.Fatalf("uniform weighted sim = %v, want 0.625", got)
	}
}

func TestWeightedSimZeroWeightsIgnoreAttr(t *testing.T) {
	a := recAt(1, 1, 2, 3, "/d/a")
	b := recAt(2, 9, 2, 9, "/e/b")
	w := UniformWeights()
	w[AttrUser] = 0
	w[AttrHost] = 0
	w[AttrPath] = 0
	// Only process remains: exact match -> 1.
	if got := WeightedSim(a, b, AllPathMask, w); got != 1 {
		t.Fatalf("process-only weighted sim = %v, want 1", got)
	}
}

func TestWeightedSimEmpty(t *testing.T) {
	a := recAt(1, 1, 2, 3, "")
	if got := WeightedSim(a, a, 0, UniformWeights()); got != 0 {
		t.Fatalf("empty-mask sim = %v", got)
	}
	var zero Weights
	if got := WeightedSim(a, a, AllPathMask, zero); got != 0 {
		t.Fatalf("zero-weight sim = %v", got)
	}
}

func TestWeightedSimNegativeWeightClamped(t *testing.T) {
	a := recAt(1, 1, 2, 3, "/d/a")
	w := UniformWeights()
	w[AttrUser] = -5
	got := WeightedSim(a, a, MaskOf(AttrUser, AttrProcess), w)
	if got != 1 { // only process effectively enabled; self-match = 1
		t.Fatalf("negative weight not clamped: %v", got)
	}
}

func TestRegressionRejectsBadSets(t *testing.T) {
	r := &Regression{Mask: AllPathMask}
	if err := r.Fit(nil); err == nil {
		t.Fatal("empty set accepted")
	}
	a := recAt(1, 1, 1, 1, "/d/a")
	b := recAt(2, 1, 1, 1, "/d/b")
	if err := r.Fit([]Pair{{a, b, true}, {a, b, true}}); err == nil {
		t.Fatal("single-class set accepted")
	}
	if _, err := r.Weights(); err == nil {
		t.Fatal("weights before fit accepted")
	}
}

// TestRegressionLearnsInformativeAttribute: build pairs where the process
// id perfectly predicts correlation while the host id is pure noise; the
// learned process coefficient must dominate the host coefficient.
func TestRegressionLearnsInformativeAttribute(t *testing.T) {
	var pairs []Pair
	for i := 0; i < 400; i++ {
		correlated := i%2 == 0
		pid := uint32(7)
		pidB := pid
		if !correlated {
			pidB = 99 // mismatch on uncorrelated pairs
		}
		hostA := uint32(i % 3)
		hostB := uint32((i / 2) % 3) // uncorrelated with the label
		a := recAt(trace.FileID(i), 1, pid, hostA, "")
		b := recAt(trace.FileID(i+1000), 1, pidB, hostB, "")
		pairs = append(pairs, Pair{a, b, correlated})
	}
	r := &Regression{Mask: MaskOf(AttrProcess, AttrHost)}
	if err := r.Fit(pairs); err != nil {
		t.Fatal(err)
	}
	if r.Coef(AttrProcess) <= r.Coef(AttrHost) {
		t.Fatalf("process coef %.3f <= host coef %.3f", r.Coef(AttrProcess), r.Coef(AttrHost))
	}
	w, err := r.Weights()
	if err != nil {
		t.Fatal(err)
	}
	if w[AttrProcess] <= 0 {
		t.Fatalf("informative attribute got weight %v", w[AttrProcess])
	}
	// Prediction sanity: matched-pid pair scores above mismatched.
	pm := r.Predict(recAt(1, 1, 7, 0, ""), recAt(2, 1, 7, 0, ""))
	px := r.Predict(recAt(1, 1, 7, 0, ""), recAt(2, 1, 99, 0, ""))
	if pm <= px {
		t.Fatalf("P(match)=%v <= P(mismatch)=%v", pm, px)
	}
}

// TestRegressionOnGeneratedTrace: train on ground-truth labels from the HP
// workload; learned weights must separate correlated from uncorrelated
// pairs better than chance.
func TestRegressionOnGeneratedTrace(t *testing.T) {
	tr := tracegen.HP(20000).MustGenerate()
	pairs := TrainingPairsFromTrace(tr, 3, 8000)
	if len(pairs) < 1000 {
		t.Fatalf("too few training pairs: %d", len(pairs))
	}
	train, test := pairs[:len(pairs)/2], pairs[len(pairs)/2:]
	r := &Regression{Mask: AllPathMask}
	if err := r.Fit(train); err != nil {
		t.Fatal(err)
	}
	// Accuracy at threshold 0.5 on held-out pairs.
	correct, total := 0, 0
	for _, p := range test {
		pred := r.Predict(p.A, p.B) >= 0.5
		if pred == p.Correlated {
			correct++
		}
		total++
	}
	acc := float64(correct) / float64(total)
	if acc < 0.75 {
		t.Fatalf("held-out accuracy %.3f below 0.75", acc)
	}
}

func TestTrainingPairsLabels(t *testing.T) {
	tr := tracegen.HP(5000).MustGenerate()
	pairs := TrainingPairsFromTrace(tr, 3, 2000)
	pos, neg := 0, 0
	for _, p := range pairs {
		if p.Correlated {
			if p.A.Group != p.B.Group || p.A.Group < 0 {
				t.Fatal("positive pair with mismatched groups")
			}
			pos++
		} else {
			neg++
		}
	}
	if pos == 0 || neg == 0 {
		t.Fatalf("degenerate label split: %d/%d", pos, neg)
	}
	if len(pairs) > 2000 {
		t.Fatalf("maxPairs not respected: %d", len(pairs))
	}
}
