package vsm

import (
	"strconv"

	"farmer/internal/trace"
)

// Extractor is FARMER's Stage-1 component (paper §3.1): it turns a file
// request into the semantic vector for the requested file, restricted to the
// attributes enabled in the mask. The HUSt prototype calls this the
// "extractor" filter.
type Extractor struct {
	Mask Mask
	Alg  PathAlg
}

// NewExtractor returns an extractor for the given attribute combination
// using the paper's preferred IPA path handling.
func NewExtractor(mask Mask) *Extractor {
	return &Extractor{Mask: mask, Alg: IPA}
}

// Extract builds the semantic vector for a record. Scalar tokens are
// prefixed with their attribute tag so that, e.g., user 5 never collides
// with process 5 — the paper's Table 1 shows attribute values as distinct
// namespaced entries.
func (e *Extractor) Extract(r *trace.Record) Vector {
	var v Vector
	add := func(tag string, val uint32) {
		v.Scalars = append(v.Scalars, tag+strconv.FormatUint(uint64(val), 10))
	}
	if e.Mask.Has(AttrUser) {
		add("u:", r.UID)
	}
	if e.Mask.Has(AttrProcess) {
		add("p:", r.PID)
	}
	if e.Mask.Has(AttrHost) {
		add("h:", r.Host)
	}
	if e.Mask.Has(AttrFileID) {
		add("f:", uint32(r.File))
	}
	if e.Mask.Has(AttrDevice) {
		add("d:", r.Dev)
	}
	if e.Mask.Has(AttrPath) && r.Path != "" {
		v.Path = r.Path
	}
	return v
}

// Similarity extracts both vectors and compares them under the extractor's
// path algorithm.
func (e *Extractor) Similarity(a, b *trace.Record) float64 {
	va := e.Extract(a)
	vb := e.Extract(b)
	return Sim(&va, &vb, e.Alg)
}

// DefaultMask picks the natural full attribute combination for a trace:
// {User, Process, Host, File Path} when the trace has paths,
// {User, Process, Host, File ID} otherwise — matching how the paper treats
// HP/LLNL versus INS/RES.
func DefaultMask(hasPaths bool) Mask {
	if hasPaths {
		return AllPathMask
	}
	return AllFileIDMask
}

// Combinations enumerates all non-empty subsets of the given attributes in a
// stable order (by increasing popcount, then bit pattern), mirroring the
// paper's Fig. 5 table rows.
func Combinations(attrs []Attr) []Mask {
	n := len(attrs)
	var out []Mask
	for size := 1; size <= n; size++ {
		for bits := 1; bits < 1<<n; bits++ {
			if popcount(bits) != size {
				continue
			}
			var m Mask
			for i := 0; i < n; i++ {
				if bits&(1<<i) != 0 {
					m = m.With(attrs[i])
				}
			}
			out = append(out, m)
		}
	}
	return out
}

func popcount(x int) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}
