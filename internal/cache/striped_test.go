package cache

import (
	"fmt"
	"sync"
	"testing"

	"farmer/internal/trace"
)

// applySequence drives one access sequence against any Cache: a mix of
// demand accesses, prefetches and invalidations keyed off the step index.
func applySequence(c Cache, n int, files int) {
	for i := 0; i < n; i++ {
		f := trace.FileID(i % files)
		switch i % 5 {
		case 0, 1, 2:
			c.Access(f)
		case 3:
			c.Prefetch(trace.FileID((i * 7) % files))
		case 4:
			if i%15 == 4 {
				c.Invalidate(f)
			} else {
				c.Access(trace.FileID((i * 3) % files))
			}
		}
	}
}

// TestStripedMetricsMatchLRU: on an identical access sequence with capacity
// covering the working set (no evictions anywhere), every metrics counter of
// the striped cache equals the single-lock LRU's — striping only relocates
// entries, it never changes what hits, misses, or prefetch accounting mean.
func TestStripedMetricsMatchLRU(t *testing.T) {
	const files = 300
	for _, stripes := range []int{1, 2, 8, 16} {
		t.Run(fmt.Sprintf("stripes=%d", stripes), func(t *testing.T) {
			single := NewLRU(2 * files)
			striped := NewStripedLRU(2*files*stripes, stripes) // per-stripe cap >= working set
			applySequence(single, 10_000, files)
			applySequence(striped, 10_000, files)
			if got, want := striped.Metrics(), single.Metrics(); got != want {
				t.Errorf("running metrics diverge:\nstriped %+v\nsingle  %+v", got, want)
			}
			if got, want := striped.Finish(), single.Finish(); got != want {
				t.Errorf("finished metrics diverge:\nstriped %+v\nsingle  %+v", got, want)
			}
			if got, want := striped.Len(), single.Len(); got != want {
				t.Errorf("Len: striped %d, single %d", got, want)
			}
		})
	}
}

// TestStripedAccountingInvariants: under eviction pressure the global totals
// still obey the LRU's accounting identities.
func TestStripedAccountingInvariants(t *testing.T) {
	c := NewStripedLRU(64, 8)
	applySequence(c, 20_000, 1000)
	m := c.Finish()
	if m.Hits > m.Lookups {
		t.Errorf("hits %d > lookups %d", m.Hits, m.Lookups)
	}
	if m.PrefetchUsed+m.PrefetchWasted != m.Prefetched {
		t.Errorf("prefetch accounting: used %d + wasted %d != issued %d",
			m.PrefetchUsed, m.PrefetchWasted, m.Prefetched)
	}
	if m.PrefetchHits != m.PrefetchUsed {
		t.Errorf("prefetch hits %d != used %d (each entry counts once)", m.PrefetchHits, m.PrefetchUsed)
	}
	if c.Len() > c.Capacity() {
		t.Errorf("resident %d exceeds capacity %d", c.Len(), c.Capacity())
	}
}

// TestStripedConstruction pins the rounding and panic contracts.
func TestStripedConstruction(t *testing.T) {
	if got := NewStripedLRU(100, 5).Stripes(); got != 8 {
		t.Errorf("stripes rounded to %d, want 8", got)
	}
	if got := NewStripedLRU(100, 0).Stripes(); got != 1 {
		t.Errorf("stripes normalized to %d, want 1", got)
	}
	if got := NewStripedLRU(100, 8).Capacity(); got != 100 {
		t.Errorf("capacity %d, want the configured 100", got)
	}
	for _, bad := range []func(){
		func() { NewStripedLRU(0, 1) },
		func() { NewStripedLRU(4, 8) }, // capacity below stripe count
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			bad()
		}()
	}
}

// TestStripedConcurrent hammers all operations from many goroutines — the
// -race run is the assertion; the metrics check afterwards only needs to be
// internally consistent.
func TestStripedConcurrent(t *testing.T) {
	c := NewStripedLRU(1024, 16)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; i < 5000; i++ {
				f := trace.FileID((seed*31 + i) % 4096)
				switch i % 4 {
				case 0, 1:
					c.Access(f)
				case 2:
					c.Prefetch(f)
				case 3:
					c.Invalidate(f)
				}
				if i%512 == 0 {
					_ = c.Metrics()
					_ = c.Len()
				}
			}
		}(g)
	}
	wg.Wait()
	m := c.Finish()
	if m.PrefetchUsed+m.PrefetchWasted != m.Prefetched {
		t.Errorf("prefetch accounting diverged under concurrency: %+v", m)
	}
}

// BenchmarkCacheAccessParallel compares the single-lock LRU (serialized by
// an external mutex, as a concurrent deployment would have to) against the
// striped cache under parallel demand traffic.
func BenchmarkCacheAccessParallel(b *testing.B) {
	b.Run("single-lock", func(b *testing.B) {
		c := NewLRU(1 << 14)
		var mu sync.Mutex
		var ctr int64
		b.RunParallel(func(pb *testing.PB) {
			i := ctr * 1_000_003
			ctr++
			for pb.Next() {
				i++
				mu.Lock()
				c.Access(trace.FileID(i % (1 << 15)))
				mu.Unlock()
			}
		})
	})
	b.Run("striped", func(b *testing.B) {
		c := NewStripedLRU(1<<14, 16)
		var ctr int64
		b.RunParallel(func(pb *testing.PB) {
			i := ctr * 1_000_003
			ctr++
			for pb.Next() {
				i++
				c.Access(trace.FileID(i % (1 << 15)))
			}
		})
	})
}

func TestStripedContains(t *testing.T) {
	c := NewStripedLRU(64, 4)
	if c.Contains(9) {
		t.Fatal("empty cache contains 9")
	}
	c.Access(9)
	if !c.Contains(9) {
		t.Fatal("cache lost 9 right after access")
	}
}
