package cache

import (
	"math/rand/v2"
	"testing"

	"farmer/internal/trace"
)

// BenchmarkAccess measures demand lookups with eviction pressure.
func BenchmarkAccess(b *testing.B) {
	c := NewLRU(1024)
	rng := rand.New(rand.NewPCG(1, 1))
	ids := make([]trace.FileID, 8192)
	for i := range ids {
		ids[i] = trace.FileID(rng.IntN(4096))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(ids[i%len(ids)])
	}
}

// BenchmarkPrefetch measures prefetch insertions.
func BenchmarkPrefetch(b *testing.B) {
	c := NewLRU(1024)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Prefetch(trace.FileID(i % 4096))
	}
}
