// Package cache provides the metadata cache used by the simulated MDS: an
// LRU replacement cache whose entries remember whether they were inserted on
// demand or by prefetching, so experiments can report cache hit ratio and
// prefetching accuracy (the fraction of prefetched entries that were used
// before eviction — the paper's Table 3 metric).
package cache

import (
	"container/list"

	"farmer/internal/trace"
)

// Source records how an entry entered the cache.
type Source uint8

// Entry sources.
const (
	SourceDemand Source = iota
	SourcePrefetch
)

type entry struct {
	file   trace.FileID
	source Source
	used   bool // a prefetched entry becomes used on its first demand hit
}

// Metrics aggregates cache behaviour over a run.
type Metrics struct {
	Lookups        uint64 // demand lookups
	Hits           uint64 // demand hits (any source)
	PrefetchHits   uint64 // demand hits on not-yet-used prefetched entries
	Prefetched     uint64 // prefetch insertions (excluding already-cached)
	PrefetchUsed   uint64 // prefetched entries that served >= 1 demand hit
	PrefetchWasted uint64 // prefetched entries evicted (or still resident at
	// Finish) without ever serving a hit
	Evictions uint64
}

// HitRatio is demand hits / demand lookups.
func (m Metrics) HitRatio() float64 {
	if m.Lookups == 0 {
		return 0
	}
	return float64(m.Hits) / float64(m.Lookups)
}

// PrefetchAccuracy is used prefetches / issued prefetches (Table 3).
func (m Metrics) PrefetchAccuracy() float64 {
	if m.Prefetched == 0 {
		return 0
	}
	return float64(m.PrefetchUsed) / float64(m.Prefetched)
}

// LRU is a fixed-capacity least-recently-used cache over file ids. It is not
// safe for concurrent use; the DES-driven MDS is single-threaded.
type LRU struct {
	capacity int
	ll       *list.List // front = most recent
	items    map[trace.FileID]*list.Element
	m        Metrics
}

// NewLRU creates a cache holding up to capacity entries; capacity must be
// positive.
func NewLRU(capacity int) *LRU {
	if capacity <= 0 {
		panic("cache: capacity must be positive")
	}
	return &LRU{
		capacity: capacity,
		ll:       list.New(),
		items:    make(map[trace.FileID]*list.Element, capacity),
	}
}

// Capacity returns the configured capacity.
func (c *LRU) Capacity() int { return c.capacity }

// Len returns the resident entry count.
func (c *LRU) Len() int { return c.ll.Len() }

// Contains reports residency without touching recency or metrics.
func (c *LRU) Contains(f trace.FileID) bool {
	_, ok := c.items[f]
	return ok
}

// Access performs a demand lookup: on a hit the entry is refreshed and true
// is returned; on a miss the entry is inserted as a demand entry (evicting
// LRU if needed) and false is returned.
func (c *LRU) Access(f trace.FileID) bool {
	c.m.Lookups++
	if el, ok := c.items[f]; ok {
		c.m.Hits++
		e := el.Value.(*entry)
		if e.source == SourcePrefetch && !e.used {
			e.used = true
			c.m.PrefetchHits++
			c.m.PrefetchUsed++
		}
		c.ll.MoveToFront(el)
		return true
	}
	c.insert(f, SourceDemand)
	return false
}

// Prefetch inserts f as a prefetched entry. If f is already resident the
// call is a no-op (it does not refresh recency: prefetching must not protect
// stale entries). It returns true when a new entry was inserted.
func (c *LRU) Prefetch(f trace.FileID) bool {
	if _, ok := c.items[f]; ok {
		return false
	}
	c.m.Prefetched++
	c.insert(f, SourcePrefetch)
	return true
}

func (c *LRU) insert(f trace.FileID, src Source) {
	for c.ll.Len() >= c.capacity {
		c.evictOldest()
	}
	el := c.ll.PushFront(&entry{file: f, source: src})
	c.items[f] = el
}

func (c *LRU) evictOldest() {
	el := c.ll.Back()
	if el == nil {
		return
	}
	e := el.Value.(*entry)
	c.ll.Remove(el)
	delete(c.items, e.file)
	c.m.Evictions++
	if e.source == SourcePrefetch && !e.used {
		c.m.PrefetchWasted++
	}
}

// Invalidate drops an entry (metadata update/unlink). It reports whether the
// entry was resident.
func (c *LRU) Invalidate(f trace.FileID) bool {
	el, ok := c.items[f]
	if !ok {
		return false
	}
	e := el.Value.(*entry)
	c.ll.Remove(el)
	delete(c.items, f)
	if e.source == SourcePrefetch && !e.used {
		c.m.PrefetchWasted++
	}
	return true
}

// Finish folds still-resident never-used prefetched entries into the wasted
// count and returns the final metrics. The cache remains usable.
func (c *LRU) Finish() Metrics {
	m := c.m
	for el := c.ll.Front(); el != nil; el = el.Next() {
		e := el.Value.(*entry)
		if e.source == SourcePrefetch && !e.used {
			m.PrefetchWasted++
		}
	}
	return m
}

// Metrics returns a snapshot of the running metrics (without the Finish
// residual-waste fold).
func (c *LRU) Metrics() Metrics { return c.m }
