package cache

import (
	"sync"

	"farmer/internal/trace"
)

// Cache is the surface the single-lock LRU and the StripedLRU share, so the
// MDS demand path can run either: the paper-exact single-threaded simulator
// keeps the lock-free LRU, a concurrent deployment selects striping.
type Cache interface {
	Access(f trace.FileID) bool
	Prefetch(f trace.FileID) bool
	Contains(f trace.FileID) bool
	Invalidate(f trace.FileID) bool
	Len() int
	Capacity() int
	Metrics() Metrics
	Finish() Metrics
}

var (
	_ Cache = (*LRU)(nil)
	_ Cache = (*StripedLRU)(nil)
)

// stripe is one lock's worth of the striped cache. The padding rounds each
// stripe out to a multiple of the cache line, so the slice lays adjacent
// stripes' mutexes on distinct lines: without it eight stripes' locks pack
// into 64 bytes and every Access ping-pongs the line between cores —
// exactly the false sharing striping exists to remove.
type stripe struct {
	mu  sync.Mutex
	lru *LRU
	_   [64 - 16]byte // sizeof(Mutex)=8 + sizeof(ptr)=8, padded to one line
}

// StripedLRU is the concurrent counterpart of LRU: the key space is split
// across power-of-two stripes by the same Fibonacci FileID hash the
// partition layer stripes shards with, and each stripe is an independent
// single-lock LRU holding its share of the capacity. Stripes never touch
// each other's state, so readers and writers contend only within a stripe.
//
// Metrics totals are summed over stripes. On a workload where no stripe
// evicts, every counter matches the single-lock LRU fed the same sequence
// exactly (each key's hits, insertions and invalidations land identically —
// only eviction ORDER is local to a stripe rather than global, and with no
// evictions there is no order to differ on).
type StripedLRU struct {
	stripes []stripe
	mask    uint64
	cap     int
}

// NewStripedLRU creates a striped cache holding up to capacity entries
// across the given number of stripes; stripes is rounded up to a power of
// two (minimum 1) and capacity must be at least the stripe count, so every
// stripe holds at least one entry.
func NewStripedLRU(capacity, stripes int) *StripedLRU {
	if capacity <= 0 {
		panic("cache: capacity must be positive")
	}
	n := 1
	for n < stripes {
		n <<= 1
	}
	if capacity < n {
		panic("cache: capacity below stripe count")
	}
	c := &StripedLRU{stripes: make([]stripe, n), mask: uint64(n - 1), cap: capacity}
	per := (capacity + n - 1) / n
	for i := range c.stripes {
		c.stripes[i].lru = NewLRU(per)
	}
	return c
}

// stripeFor hashes f to its stripe: Fibonacci hashing on the upper
// half-word (the partition layer's stripe function), cheap enough for the
// demand path and spreading contiguously allocated file ids evenly.
func (c *StripedLRU) stripeFor(f trace.FileID) *stripe {
	return &c.stripes[(uint64(f)*0x9E3779B97F4A7C15>>32)&c.mask]
}

// Stripes reports the stripe count.
func (c *StripedLRU) Stripes() int { return len(c.stripes) }

// Capacity returns the configured total capacity.
func (c *StripedLRU) Capacity() int { return c.cap }

// Len returns the resident entry count, summed over stripes.
func (c *StripedLRU) Len() int {
	var n int
	for i := range c.stripes {
		s := &c.stripes[i]
		s.mu.Lock()
		n += s.lru.Len()
		s.mu.Unlock()
	}
	return n
}

// Access performs a demand lookup (see LRU.Access) on f's stripe.
func (c *StripedLRU) Access(f trace.FileID) bool {
	s := c.stripeFor(f)
	s.mu.Lock()
	hit := s.lru.Access(f)
	s.mu.Unlock()
	return hit
}

// Prefetch inserts f as a prefetched entry (see LRU.Prefetch).
func (c *StripedLRU) Prefetch(f trace.FileID) bool {
	s := c.stripeFor(f)
	s.mu.Lock()
	ins := s.lru.Prefetch(f)
	s.mu.Unlock()
	return ins
}

// Contains reports residency without touching recency or metrics.
func (c *StripedLRU) Contains(f trace.FileID) bool {
	s := c.stripeFor(f)
	s.mu.Lock()
	ok := s.lru.Contains(f)
	s.mu.Unlock()
	return ok
}

// Invalidate drops an entry (see LRU.Invalidate).
func (c *StripedLRU) Invalidate(f trace.FileID) bool {
	s := c.stripeFor(f)
	s.mu.Lock()
	ok := s.lru.Invalidate(f)
	s.mu.Unlock()
	return ok
}

// Metrics sums the running per-stripe metrics.
func (c *StripedLRU) Metrics() Metrics {
	var out Metrics
	for i := range c.stripes {
		s := &c.stripes[i]
		s.mu.Lock()
		out.add(s.lru.Metrics())
		s.mu.Unlock()
	}
	return out
}

// Finish folds each stripe's residual prefetch waste and returns the summed
// metrics (see LRU.Finish). The cache remains usable.
func (c *StripedLRU) Finish() Metrics {
	var out Metrics
	for i := range c.stripes {
		s := &c.stripes[i]
		s.mu.Lock()
		out.add(s.lru.Finish())
		s.mu.Unlock()
	}
	return out
}

// add accumulates another snapshot into m.
func (m *Metrics) add(o Metrics) {
	m.Lookups += o.Lookups
	m.Hits += o.Hits
	m.PrefetchHits += o.PrefetchHits
	m.Prefetched += o.Prefetched
	m.PrefetchUsed += o.PrefetchUsed
	m.PrefetchWasted += o.PrefetchWasted
	m.Evictions += o.Evictions
}
