package cache

import (
	"math/rand/v2"
	"testing"
	"testing/quick"

	"farmer/internal/trace"
)

func TestAccessMissThenHit(t *testing.T) {
	c := NewLRU(4)
	if c.Access(1) {
		t.Fatal("first access should miss")
	}
	if !c.Access(1) {
		t.Fatal("second access should hit")
	}
	m := c.Metrics()
	if m.Lookups != 2 || m.Hits != 1 {
		t.Fatalf("metrics = %+v", m)
	}
	if got := m.HitRatio(); got != 0.5 {
		t.Fatalf("hit ratio = %v, want 0.5", got)
	}
}

func TestLRUEvictionOrder(t *testing.T) {
	c := NewLRU(2)
	c.Access(1)
	c.Access(2)
	c.Access(1) // refresh 1; LRU is now 2
	c.Access(3) // evicts 2
	if c.Contains(2) {
		t.Fatal("2 should have been evicted")
	}
	if !c.Contains(1) || !c.Contains(3) {
		t.Fatal("1 and 3 should be resident")
	}
	if c.Metrics().Evictions != 1 {
		t.Fatalf("evictions = %d", c.Metrics().Evictions)
	}
}

func TestPrefetchHitAccounting(t *testing.T) {
	c := NewLRU(4)
	if !c.Prefetch(7) {
		t.Fatal("prefetch insert failed")
	}
	if !c.Access(7) {
		t.Fatal("prefetched entry should hit")
	}
	m := c.Finish()
	if m.Prefetched != 1 || m.PrefetchUsed != 1 || m.PrefetchHits != 1 {
		t.Fatalf("metrics = %+v", m)
	}
	if m.PrefetchAccuracy() != 1.0 {
		t.Fatalf("accuracy = %v, want 1", m.PrefetchAccuracy())
	}
	if m.PrefetchWasted != 0 {
		t.Fatalf("wasted = %d, want 0", m.PrefetchWasted)
	}
}

func TestPrefetchWasteOnEviction(t *testing.T) {
	c := NewLRU(2)
	c.Prefetch(1)
	c.Access(2)
	c.Access(3) // evicts 1 (prefetched, never used)
	m := c.Metrics()
	if m.PrefetchWasted != 1 {
		t.Fatalf("wasted = %d, want 1", m.PrefetchWasted)
	}
	if m.PrefetchAccuracy() != 0 {
		t.Fatalf("accuracy = %v, want 0", m.PrefetchAccuracy())
	}
}

func TestPrefetchWasteAtFinish(t *testing.T) {
	c := NewLRU(4)
	c.Prefetch(1)
	c.Prefetch(2)
	c.Access(1)
	m := c.Finish()
	if m.PrefetchUsed != 1 || m.PrefetchWasted != 1 {
		t.Fatalf("metrics = %+v", m)
	}
	if got := m.PrefetchAccuracy(); got != 0.5 {
		t.Fatalf("accuracy = %v, want 0.5", got)
	}
}

func TestPrefetchExistingIsNoop(t *testing.T) {
	c := NewLRU(4)
	c.Access(1)
	if c.Prefetch(1) {
		t.Fatal("prefetch of resident entry should be a no-op")
	}
	if c.Metrics().Prefetched != 0 {
		t.Fatal("no-op prefetch counted")
	}
}

func TestPrefetchDoesNotRefreshRecency(t *testing.T) {
	c := NewLRU(2)
	c.Access(1)
	c.Access(2)
	c.Prefetch(1) // must not move 1 to front
	c.Access(3)   // evicts 1, the LRU entry
	if c.Contains(1) {
		t.Fatal("prefetch refreshed recency")
	}
}

func TestPrefetchedHitCountsOncePerEntry(t *testing.T) {
	c := NewLRU(4)
	c.Prefetch(1)
	c.Access(1)
	c.Access(1)
	m := c.Metrics()
	if m.PrefetchUsed != 1 || m.PrefetchHits != 1 {
		t.Fatalf("double-counted prefetch use: %+v", m)
	}
	if m.Hits != 2 {
		t.Fatalf("hits = %d, want 2", m.Hits)
	}
}

func TestInvalidate(t *testing.T) {
	c := NewLRU(4)
	c.Access(1)
	if !c.Invalidate(1) {
		t.Fatal("Invalidate missed resident entry")
	}
	if c.Invalidate(1) {
		t.Fatal("Invalidate hit absent entry")
	}
	c.Prefetch(2)
	c.Invalidate(2)
	if c.Metrics().PrefetchWasted != 1 {
		t.Fatal("invalidated unused prefetch not counted as waste")
	}
}

func TestCapacityPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero capacity accepted")
		}
	}()
	NewLRU(0)
}

func TestLenAndCapacity(t *testing.T) {
	c := NewLRU(3)
	for f := trace.FileID(0); f < 10; f++ {
		c.Access(f)
	}
	if c.Len() != 3 || c.Capacity() != 3 {
		t.Fatalf("len=%d cap=%d", c.Len(), c.Capacity())
	}
}

// Property: residency count never exceeds capacity, and the conservation law
// Prefetched = PrefetchUsed + PrefetchWasted holds after Finish.
func TestConservationProperty(t *testing.T) {
	f := func(seed uint64, capSel uint8, ops uint16) bool {
		capacity := int(capSel%31) + 1
		c := NewLRU(capacity)
		rng := rand.New(rand.NewPCG(seed, 3))
		for i := 0; i < int(ops); i++ {
			file := trace.FileID(rng.IntN(capacity * 3))
			switch rng.IntN(3) {
			case 0:
				c.Access(file)
			case 1:
				c.Prefetch(file)
			case 2:
				c.Invalidate(file)
			}
			if c.Len() > capacity {
				return false
			}
		}
		m := c.Finish()
		return m.Prefetched == m.PrefetchUsed+m.PrefetchWasted
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: hits never exceed lookups and prefetch hits never exceed hits.
func TestMetricBoundsProperty(t *testing.T) {
	f := func(seed uint64) bool {
		c := NewLRU(8)
		rng := rand.New(rand.NewPCG(seed, 4))
		for i := 0; i < 500; i++ {
			file := trace.FileID(rng.IntN(24))
			if rng.IntN(2) == 0 {
				c.Access(file)
			} else {
				c.Prefetch(file)
			}
		}
		m := c.Metrics()
		return m.Hits <= m.Lookups && m.PrefetchHits <= m.Hits
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestEmptyMetrics(t *testing.T) {
	var m Metrics
	if m.HitRatio() != 0 || m.PrefetchAccuracy() != 0 {
		t.Fatal("zero-division not guarded")
	}
}
