// Package tracegen synthesises file-system workloads with the structure the
// FARMER paper's traces exhibit, since the original LLNL / INS / RES / HP
// traces are not publicly distributable (see DESIGN.md §2 for the
// substitution argument).
//
// The generative model: a workload is a population of *correlation groups* —
// ordered sets of files that one user's program accesses together (source
// files and their objects, an application's config+data+log, a parallel
// job's per-rank checkpoint files). Several concurrent *streams* (user,
// host, program) run sessions over Zipf-popular groups; the OS scheduler
// interleaves the streams, which is exactly the effect the paper blames for
// the inaccuracy of sequence-only predictors (§6). A tunable fraction of
// accesses is attribute-random background noise.
//
// Every record carries the ground-truth group id (or -1 for noise), which
// miners never see but experiments use to score accuracy.
package tracegen

import (
	"fmt"
	"math"
	"math/rand/v2"
	"time"

	"farmer/internal/trace"
)

// Profile parameterises a synthetic workload.
type Profile struct {
	Name    string
	Records int
	Seed    uint64

	Users           int
	Hosts           int
	ProgramsPerUser int

	Groups       int // number of correlation groups
	GroupSizeMin int // files per group, inclusive bounds
	GroupSizeMax int
	GroupRevisit float64 // probability a finished stream re-runs a recent group

	NoiseFiles int     // pool of uncorrelated files
	NoiseRatio float64 // fraction of accesses drawn from the noise pool

	Streams     int     // concurrently interleaved access streams
	BurstMin    int     // scheduler quantum: consecutive accesses per stream
	BurstMax    int     //   before switching (both default to 1 when zero)
	SessionSkip float64 // probability a session skips a file (imperfect runs)
	// PartialSession is the probability a session covers only a contiguous
	// run of its group instead of the whole group. Partial runs are what
	// make pure-semantic prefetching (p=1) waste cache on members the
	// session never reaches, so the access-frequency term earns its keep.
	PartialSession float64
	// AliasFraction is the probability that a group is a semantic alias of
	// an earlier group: same user, same program, same directory — think of
	// one developer's gcc run over two different projects in the same tree
	// (the paper's §2 example). Aliased groups are indistinguishable to a
	// pure-semantic miner (p=1) but trivially separable by access frequency,
	// which is what makes the combined degree (p≈0.7) win.
	AliasFraction float64
	// TeamSize makes each group a shared project touched by several users:
	// every session picks one team member as the requesting user (with that
	// member's own program instance). A file's semantic vector then carries
	// whichever user last touched it, so pure-semantic similarity between
	// true group members degrades while access frequency is unaffected —
	// the second mechanism behind the paper's p = 0.7 optimum. 0 or 1
	// disables sharing.
	TeamSize     int
	ZipfS        float64 // group popularity skew (s > 1: heavier head)
	HasPaths     bool    // HP/LLNL style (paths) vs INS/RES style (fid+dev)
	Devices      int     // device-id space for path-less traces
	MeanGapMicro int     // mean inter-arrival time in microseconds
}

// Validate reports profile errors.
func (p Profile) Validate() error {
	switch {
	case p.Records <= 0:
		return fmt.Errorf("tracegen: Records = %d", p.Records)
	case p.Users <= 0 || p.Hosts <= 0 || p.ProgramsPerUser <= 0:
		return fmt.Errorf("tracegen: population empty (users=%d hosts=%d progs=%d)", p.Users, p.Hosts, p.ProgramsPerUser)
	case p.Groups <= 0 || p.GroupSizeMin < 2 || p.GroupSizeMax < p.GroupSizeMin:
		return fmt.Errorf("tracegen: bad group shape (groups=%d size=[%d,%d])", p.Groups, p.GroupSizeMin, p.GroupSizeMax)
	case p.NoiseRatio < 0 || p.NoiseRatio >= 1:
		return fmt.Errorf("tracegen: NoiseRatio = %v outside [0,1)", p.NoiseRatio)
	case p.NoiseRatio > 0 && p.NoiseFiles <= 0:
		return fmt.Errorf("tracegen: NoiseRatio %v with no noise files", p.NoiseRatio)
	case p.Streams <= 0:
		return fmt.Errorf("tracegen: Streams = %d", p.Streams)
	}
	return nil
}

// group is one correlation group: files accessed in order by one owner.
type group struct {
	id    int32
	files []trace.FileID
	uid   uint32
	pid   uint32 // program id that runs this group
	host  uint32
	dev   uint32
	dir   string   // directory holding the group's files (path traces)
	team  []uint32 // additional users sharing the group (TeamSize > 1)
}

// sessionIdentity picks the requesting user and program instance for one
// session over the group.
func (g *group) sessionIdentity(rng *rand.Rand, programsPerUser int) (uid, pid uint32) {
	uid = g.uid
	if len(g.team) > 0 {
		uid = g.team[rng.IntN(len(g.team))]
	}
	if uid == g.uid {
		return uid, g.pid
	}
	// A teammate runs their own instance of the same program slot.
	return uid, uid*uint32(programsPerUser) + g.pid%uint32(programsPerUser)
}

// stream is one interleaved access source.
type stream struct {
	host    uint32
	g       *group // current session's group (nil when idle)
	pos     int
	end     int      // session covers g.files[pos:end]
	uid     uint32   // requesting user for this session
	pid     uint32   // requesting program instance for this session
	history []*group // recently run groups, for revisits
}

// Generate builds the trace. The result is deterministic in the profile.
func (p Profile) Generate() (*trace.Trace, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewPCG(p.Seed, 0x9E3779B97F4A7C15))

	t := &trace.Trace{Name: p.Name, HasPaths: p.HasPaths}

	// Build groups and their files.
	groups := make([]*group, p.Groups)
	var nextFile trace.FileID
	var paths []string
	for i := range groups {
		size := p.GroupSizeMin
		if p.GroupSizeMax > p.GroupSizeMin {
			size += rng.IntN(p.GroupSizeMax - p.GroupSizeMin + 1)
		}
		var g *group
		if i > 0 && p.AliasFraction > 0 && rng.Float64() < p.AliasFraction {
			// Semantic alias: same owner, program, host, device and
			// directory as an earlier group, but a disjoint file set.
			base := groups[rng.IntN(i)]
			g = &group{id: int32(i), uid: base.uid, pid: base.pid, host: base.host, dev: base.dev, dir: base.dir}
		} else {
			uid := uint32(rng.IntN(p.Users))
			g = &group{
				id:   int32(i),
				uid:  uid,
				pid:  uid*uint32(p.ProgramsPerUser) + uint32(rng.IntN(p.ProgramsPerUser)),
				host: uint32(rng.IntN(p.Hosts)),
				dev:  uint32(rng.IntN(max(p.Devices, 1))),
			}
			g.dir = fmt.Sprintf("/home/user%d/proj%d", g.uid, i)
		}
		for j := 0; j < size; j++ {
			g.files = append(g.files, nextFile)
			if p.HasPaths {
				paths = append(paths, fmt.Sprintf("%s/f%d", g.dir, int(nextFile)))
			}
			nextFile++
		}
		// Sessions traverse the group in a fixed but id-uncorrelated order,
		// so access order carries information that file ids do not.
		rng.Shuffle(len(g.files), func(a, b int) { g.files[a], g.files[b] = g.files[b], g.files[a] })
		if p.TeamSize > 1 {
			g.team = append(g.team, g.uid)
			for len(g.team) < p.TeamSize {
				g.team = append(g.team, uint32(rng.IntN(p.Users)))
			}
		}
		groups[i] = g
	}
	// Noise pool.
	noiseBase := nextFile
	for j := 0; j < p.NoiseFiles; j++ {
		if p.HasPaths {
			paths = append(paths, fmt.Sprintf("/var/misc/d%d/n%d", j%17, j))
		}
		nextFile++
	}
	t.FileCount = int(nextFile)
	t.Paths = paths

	// Zipf CDF over groups.
	cdf := zipfCDF(p.Groups, p.ZipfS, rng)

	// Streams.
	streams := make([]*stream, p.Streams)
	for i := range streams {
		streams[i] = &stream{host: uint32(rng.IntN(p.Hosts))}
	}

	pickGroup := func(s *stream) *group {
		if len(s.history) > 0 && rng.Float64() < p.GroupRevisit {
			return s.history[rng.IntN(len(s.history))]
		}
		g := groups[sampleCDF(cdf, rng)]
		s.history = append(s.history, g)
		if len(s.history) > 8 {
			s.history = s.history[1:]
		}
		return g
	}

	meanGap := p.MeanGapMicro
	if meanGap <= 0 {
		meanGap = 50
	}
	burstMin, burstMax := p.BurstMin, p.BurstMax
	if burstMin <= 0 {
		burstMin = 1
	}
	if burstMax < burstMin {
		burstMax = burstMin
	}
	var cur *stream
	burstLeft := 0
	var now time.Duration
	t.Records = make([]trace.Record, 0, p.Records)
	ops := [...]trace.Op{trace.OpOpen, trace.OpRead, trace.OpStat, trace.OpWrite}

	for len(t.Records) < p.Records {
		now += time.Duration(rng.ExpFloat64()*float64(meanGap)) * time.Microsecond
		rec := trace.Record{
			Seq:  uint64(len(t.Records)),
			Time: now,
			Op:   ops[rng.IntN(len(ops))],
			Size: uint32(1024 + rng.IntN(128*1024)),
		}
		if p.NoiseRatio > 0 && rng.Float64() < p.NoiseRatio {
			// Background noise: random file, random attribution.
			f := noiseBase + trace.FileID(rng.IntN(p.NoiseFiles))
			rec.File = f
			rec.UID = uint32(rng.IntN(p.Users))
			rec.PID = uint32(p.Users*p.ProgramsPerUser + rng.IntN(64)) // transient pids
			rec.Host = uint32(rng.IntN(p.Hosts))
			rec.Dev = uint32(rng.IntN(max(p.Devices, 1)))
			rec.Group = -1
			if p.HasPaths {
				rec.Path = paths[f]
			}
			t.Records = append(t.Records, rec)
			continue
		}
		// Pick a stream. The scheduler gives each stream a burst of
		// consecutive accesses (its quantum) before switching; burst length
		// 1 degenerates to uniform interleaving.
		if cur == nil || burstLeft <= 0 {
			cur = streams[rng.IntN(len(streams))]
			burstLeft = burstMin
			if burstMax > burstMin {
				burstLeft += rng.IntN(burstMax - burstMin + 1)
			}
		}
		s := cur
		burstLeft--
		if s.g == nil {
			s.g = pickGroup(s)
			s.pos = 0
			s.end = len(s.g.files)
			s.uid, s.pid = s.g.sessionIdentity(rng, p.ProgramsPerUser)
			if p.PartialSession > 0 && rng.Float64() < p.PartialSession && len(s.g.files) > 2 {
				// Cover a contiguous run of at least 2 files.
				runLen := 2 + rng.IntN(len(s.g.files)-1)
				if runLen > len(s.g.files) {
					runLen = len(s.g.files)
				}
				s.pos = rng.IntN(len(s.g.files) - runLen + 1)
				s.end = s.pos + runLen
			}
		}
		// Possibly skip a file within the session.
		if p.SessionSkip > 0 && rng.Float64() < p.SessionSkip && s.pos < s.end-1 {
			s.pos++
		}
		g := s.g
		f := g.files[s.pos]
		rec.File = f
		rec.UID = s.uid
		rec.PID = s.pid
		rec.Host = s.host
		rec.Dev = g.dev
		rec.Group = g.id
		if p.HasPaths {
			rec.Path = paths[f]
		}
		t.Records = append(t.Records, rec)
		s.pos++
		if s.pos >= s.end {
			s.g = nil // session complete
		}
	}
	return t, nil
}

// MustGenerate is Generate for tests and examples with known-good profiles.
func (p Profile) MustGenerate() *trace.Trace {
	t, err := p.Generate()
	if err != nil {
		panic(err)
	}
	return t
}

// GroundTruth maps each file to its correlation group's member set, derived
// from the generated trace's Group annotations. Files with group -1 map to
// nil. Experiments use it to score predictions without peeking during
// mining.
func GroundTruth(t *trace.Trace) map[trace.FileID][]trace.FileID {
	groups := map[int32][]trace.FileID{}
	seen := map[trace.FileID]int32{}
	for i := range t.Records {
		r := &t.Records[i]
		if r.Group < 0 {
			continue
		}
		if _, ok := seen[r.File]; !ok {
			seen[r.File] = r.Group
			groups[r.Group] = append(groups[r.Group], r.File)
		}
	}
	out := make(map[trace.FileID][]trace.FileID, len(seen))
	for f, g := range seen {
		out[f] = groups[g]
	}
	return out
}

func zipfCDF(n int, s float64, rng *rand.Rand) []float64 {
	if s <= 0 {
		s = 1.0
	}
	// Random permutation of ranks so group id does not encode popularity.
	weights := make([]float64, n)
	perm := rng.Perm(n)
	var sum float64
	for i := 0; i < n; i++ {
		w := 1.0 / math.Pow(float64(perm[i]+1), s)
		weights[i] = w
		sum += w
	}
	cdf := make([]float64, n)
	acc := 0.0
	for i, w := range weights {
		acc += w / sum
		cdf[i] = acc
	}
	cdf[n-1] = 1.0
	return cdf
}

func sampleCDF(cdf []float64, rng *rand.Rand) int {
	x := rng.Float64()
	lo, hi := 0, len(cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if cdf[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

func newRNG(seed uint64) *rand.Rand { return rand.New(rand.NewPCG(seed, 1)) }
