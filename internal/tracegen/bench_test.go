package tracegen

import "testing"

// BenchmarkGenerateHP measures workload synthesis throughput.
func BenchmarkGenerateHP(b *testing.B) {
	p := HP(20000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := p.Generate(); err != nil {
			b.Fatal(err)
		}
	}
}
