package tracegen

import (
	"reflect"
	"testing"
	"testing/quick"

	"farmer/internal/trace"
)

func smallProfile() Profile {
	p := HP(5000)
	return p
}

func TestGenerateValidTrace(t *testing.T) {
	for _, p := range Profiles(4000) {
		tr, err := p.Generate()
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("%s: invalid trace: %v", p.Name, err)
		}
		if tr.Len() != 4000 {
			t.Fatalf("%s: %d records, want 4000", p.Name, tr.Len())
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	p := smallProfile()
	a := p.MustGenerate()
	b := p.MustGenerate()
	if !reflect.DeepEqual(a.Records, b.Records) {
		t.Fatal("same profile produced different traces")
	}
}

func TestSeedChangesTrace(t *testing.T) {
	p := smallProfile()
	a := p.MustGenerate()
	p.Seed++
	b := p.MustGenerate()
	if reflect.DeepEqual(a.Records, b.Records) {
		t.Fatal("different seeds produced identical traces")
	}
}

func TestValidateRejects(t *testing.T) {
	bad := []Profile{
		{},
		{Records: 10},
		{Records: 10, Users: 1, Hosts: 1, ProgramsPerUser: 1},
		{Records: 10, Users: 1, Hosts: 1, ProgramsPerUser: 1, Groups: 1, GroupSizeMin: 1, GroupSizeMax: 1, Streams: 1},
		func() Profile { p := HP(100); p.NoiseRatio = 1.5; return p }(),
		func() Profile { p := HP(100); p.NoiseRatio = 0.5; p.NoiseFiles = 0; return p }(),
		func() Profile { p := HP(100); p.Streams = 0; return p }(),
	}
	for i, p := range bad {
		if _, err := p.Generate(); err == nil {
			t.Errorf("bad profile %d accepted", i)
		}
	}
}

func TestPathPresenceMatchesProfile(t *testing.T) {
	hp := HP(2000).MustGenerate()
	for i := range hp.Records {
		if hp.Records[i].Path == "" {
			t.Fatal("HP record missing path")
		}
	}
	ins := INS(2000).MustGenerate()
	for i := range ins.Records {
		if ins.Records[i].Path != "" {
			t.Fatal("INS record unexpectedly has a path")
		}
	}
}

func TestNoiseRatioApproximate(t *testing.T) {
	p := HP(20000)
	tr := p.MustGenerate()
	noise := 0
	for i := range tr.Records {
		if tr.Records[i].Group < 0 {
			noise++
		}
	}
	got := float64(noise) / float64(tr.Len())
	if got < p.NoiseRatio-0.05 || got > p.NoiseRatio+0.05 {
		t.Fatalf("noise fraction = %v, want ~%v", got, p.NoiseRatio)
	}
}

// TestGroupAttributesConsistent: all non-noise accesses to a group must come
// from the group's bounded team (at most TeamSize distinct users), and each
// team member always uses the same program instance — the semantic signal
// FARMER mines.
func TestGroupAttributesConsistent(t *testing.T) {
	p := HP(10000)
	tr := p.MustGenerate()
	uidsOf := map[int32]map[uint32]struct{}{}
	pidOf := map[int32]map[uint32]uint32{} // group -> uid -> pid
	for i := range tr.Records {
		r := &tr.Records[i]
		if r.Group < 0 {
			continue
		}
		us := uidsOf[r.Group]
		if us == nil {
			us = map[uint32]struct{}{}
			uidsOf[r.Group] = us
		}
		us[r.UID] = struct{}{}
		if len(us) > p.TeamSize {
			t.Fatalf("group %d touched by %d users, team size %d", r.Group, len(us), p.TeamSize)
		}
		pm := pidOf[r.Group]
		if pm == nil {
			pm = map[uint32]uint32{}
			pidOf[r.Group] = pm
		}
		if prev, ok := pm[r.UID]; ok && prev != r.PID {
			t.Fatalf("group %d user %d seen with pids %d and %d", r.Group, r.UID, prev, r.PID)
		}
		pm[r.UID] = r.PID
	}
}

// TestGroupFilesShareDirectory: files of one group live in one directory
// (the paper's "users deposit related files in one specific directory").
func TestGroupFilesShareDirectory(t *testing.T) {
	tr := HP(10000).MustGenerate()
	dirOf := map[int32]string{}
	for i := range tr.Records {
		r := &tr.Records[i]
		if r.Group < 0 {
			continue
		}
		d := r.Dir()
		if prev, ok := dirOf[r.Group]; ok && prev != d {
			t.Fatalf("group %d spans directories %q and %q", r.Group, prev, d)
		}
		dirOf[r.Group] = d
	}
}

// TestConditioningHelps: the Fig.-1 property must hold on every profile —
// conditioning the successor statistic on (uid,pid) beats no conditioning.
func TestConditioningHelps(t *testing.T) {
	for _, p := range Profiles(20000) {
		tr := p.MustGenerate()
		pNone := trace.SuccessorProbability(tr, trace.KeyNone)
		pPid := trace.SuccessorProbability(tr, trace.KeyUIDPID)
		if pPid <= pNone {
			t.Errorf("%s: conditioning did not help (none=%.3f uidpid=%.3f)", p.Name, pNone, pPid)
		}
	}
}

// TestINSMoreRegularThanRES: the profiles must preserve the paper's
// regularity ordering, which drives the hit-ratio ordering in Fig. 3/7.
func TestINSMoreRegularThanRES(t *testing.T) {
	ins := INS(20000).MustGenerate()
	res := RES(20000).MustGenerate()
	pi := trace.SuccessorProbability(ins, trace.KeyUIDPID)
	pr := trace.SuccessorProbability(res, trace.KeyUIDPID)
	if pi <= pr {
		t.Fatalf("INS regularity %.3f should exceed RES %.3f", pi, pr)
	}
}

func TestGroundTruth(t *testing.T) {
	tr := HP(10000).MustGenerate()
	gt := GroundTruth(tr)
	if len(gt) == 0 {
		t.Fatal("no ground truth extracted")
	}
	for f, members := range gt {
		found := false
		for _, m := range members {
			if m == f {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("file %d not a member of its own group", f)
		}
	}
	// A noise file must not appear in the map.
	for i := range tr.Records {
		r := &tr.Records[i]
		if r.Group < 0 {
			if _, ok := gt[r.File]; ok {
				t.Fatalf("noise file %d has ground truth", r.File)
			}
		}
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"LLNL", "INS", "RES", "HP"} {
		p, ok := ByName(name, 100)
		if !ok || p.Name != name {
			t.Fatalf("ByName(%q) failed", name)
		}
	}
	if _, ok := ByName("NFS", 100); ok {
		t.Fatal("unknown profile found")
	}
}

func TestZipfCDFProperty(t *testing.T) {
	f := func(seed uint64, n uint8, sSel uint8) bool {
		groups := int(n%50) + 2
		s := 0.5 + float64(sSel%20)/10
		p := Profile{Seed: seed}
		_ = p
		rng := newRNG(seed)
		cdf := zipfCDF(groups, s, rng)
		if len(cdf) != groups {
			return false
		}
		prev := 0.0
		for _, v := range cdf {
			if v < prev-1e-12 {
				return false
			}
			prev = v
		}
		return cdf[groups-1] == 1.0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestSampleCDFBounds(t *testing.T) {
	rng := newRNG(1)
	cdf := zipfCDF(10, 1.0, rng)
	for i := 0; i < 1000; i++ {
		idx := sampleCDF(cdf, rng)
		if idx < 0 || idx >= 10 {
			t.Fatalf("sample %d out of range", idx)
		}
	}
}

func TestFileCountCoversAllRecords(t *testing.T) {
	for _, p := range Profiles(3000) {
		tr := p.MustGenerate()
		for i := range tr.Records {
			if int(tr.Records[i].File) >= tr.FileCount {
				t.Fatalf("%s: file id beyond FileCount", p.Name)
			}
		}
		if tr.HasPaths && len(tr.Paths) != tr.FileCount {
			t.Fatalf("%s: paths table incomplete", p.Name)
		}
	}
}
