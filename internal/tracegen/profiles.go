package tracegen

// The four workload profiles mirror the published characteristics of the
// paper's traces (§2.2) at laptop scale. Record counts are parameters so
// tests can run small instances and the benchmark harness larger ones.
//
//   - LLNL: parallel scientific applications on an 800-node Linux cluster.
//     Few users, many cooperating processes per application, large
//     correlated file sets (per-rank dumps), strong regularity but heavy
//     cross-node interleaving. Full paths.
//   - INS: HP-UX instructional lab, 20 machines. Undergraduate coursework is
//     extremely repetitive: a small set of popular groups re-run constantly,
//     so predictors reach very high hit ratios (the paper's Fig. 3 shows
//     ~0.9+). No path attribute — file id + device id instead.
//   - RES: HP-UX research desktops, 13 machines. Diverse, noisy, large
//     working set; the hardest workload (paper hit ratios 0.2–0.45). No
//     path attribute.
//   - HP: 10-day time-sharing server, 236 users. Rich full-path attribute;
//     moderate regularity (paper hit ratios 0.3–0.55). This is where
//     semantic mining pays off most.

// LLNL returns the parallel-scientific profile.
func LLNL(records int) Profile {
	return Profile{
		Name:            "LLNL",
		Records:         records,
		Seed:            0x11A317,
		Users:           8,
		Hosts:           64,
		ProgramsPerUser: 4,
		Groups:          220,
		GroupSizeMin:    8,
		GroupSizeMax:    24,
		GroupRevisit:    0.30,
		NoiseFiles:      4000,
		NoiseRatio:      0.22,
		Streams:         48,
		BurstMin:        1,
		BurstMax:        4,
		SessionSkip:     0.04,
		PartialSession:  0.35,
		AliasFraction:   0.30,
		TeamSize:        4,
		ZipfS:           0.9,
		HasPaths:        true,
		Devices:         4,
		MeanGapMicro:    20,
	}
}

// INS returns the instructional-lab profile.
func INS(records int) Profile {
	return Profile{
		Name:            "INS",
		Records:         records,
		Seed:            0x195,
		Users:           80,
		Hosts:           20,
		ProgramsPerUser: 3,
		Groups:          60,
		GroupSizeMin:    3,
		GroupSizeMax:    8,
		GroupRevisit:    0.65,
		NoiseFiles:      300,
		NoiseRatio:      0.04,
		Streams:         10,
		BurstMin:        4,
		BurstMax:        8,
		SessionSkip:     0.02,
		PartialSession:  0.30,
		AliasFraction:   0.30,
		TeamSize:        2,
		ZipfS:           1.3,
		HasPaths:        false,
		Devices:         20,
		MeanGapMicro:    120,
	}
}

// RES returns the research-desktop profile.
func RES(records int) Profile {
	return Profile{
		Name:            "RES",
		Records:         records,
		Seed:            0x4E5,
		Users:           30,
		Hosts:           13,
		ProgramsPerUser: 6,
		Groups:          400,
		GroupSizeMin:    3,
		GroupSizeMax:    10,
		GroupRevisit:    0.15,
		NoiseFiles:      6000,
		NoiseRatio:      0.30,
		Streams:         26,
		BurstMin:        2,
		BurstMax:        5,
		SessionSkip:     0.08,
		PartialSession:  0.60,
		AliasFraction:   0.40,
		TeamSize:        2,
		ZipfS:           0.75,
		HasPaths:        false,
		Devices:         13,
		MeanGapMicro:    200,
	}
}

// HP returns the time-sharing-server profile.
func HP(records int) Profile {
	return Profile{
		Name:            "HP",
		Records:         records,
		Seed:            0x48,
		Users:           236,
		Hosts:           1,
		ProgramsPerUser: 4,
		Groups:          300,
		GroupSizeMin:    4,
		GroupSizeMax:    12,
		GroupRevisit:    0.35,
		NoiseFiles:      3000,
		NoiseRatio:      0.20,
		Streams:         32,
		BurstMin:        2,
		BurstMax:        6,
		SessionSkip:     0.05,
		PartialSession:  0.50,
		AliasFraction:   0.40,
		TeamSize:        3,
		ZipfS:           1.0,
		HasPaths:        true,
		Devices:         1,
		MeanGapMicro:    80,
	}
}

// Profiles returns all four paper profiles at the given record count, in the
// paper's order.
func Profiles(records int) []Profile {
	return []Profile{LLNL(records), INS(records), RES(records), HP(records)}
}

// ByName returns the profile with the given (case-sensitive) name.
func ByName(name string, records int) (Profile, bool) {
	for _, p := range Profiles(records) {
		if p.Name == name {
			return p, true
		}
	}
	return Profile{}, false
}
