// Package prefetch hangs an asynchronous Predict/prefetch pipeline off the
// sharded miner's post-ingest event taps (core.ShardedModel.Tap), so the
// metadata demand path never waits on mining or prediction.
//
// Dataflow:
//
//	ingest (MDS demand path)           async (shard workers / pipeline)
//	────────────────────────           ─────────────────────────────────
//	ShardedModel.Feed ──► EventTap ──► consume: Predict(file, k)
//	     (never blocks:  bounded,            │
//	      drop-oldest)   per shard)          ▼
//	                                   Queue (bounded, drop-oldest,
//	                                          dropped-prefetch Counter)
//	                                         │
//	                                         ▼
//	                                   submit loop ──► Sink.Prefetch
//	                                                   (e.g. MDS prefetch
//	                                                    priority queue)
//
// Backpressure degrades prefetch coverage, never demand latency: when a
// mining burst outruns the consumers the tap drops its oldest notifications,
// and when the sink (the prefetch I/O path) is slower than prediction the
// candidate queue drops its oldest candidates. Both losses are counted and
// surfaced through Stats.
package prefetch

import (
	"sync"
	"sync/atomic"

	"farmer/internal/core"
	"farmer/internal/metrics"
	"farmer/internal/trace"
)

// Candidate is one prefetch the pipeline wants issued: fetch File because
// Trigger (ingest sequence Seq) was just accessed and File correlates.
type Candidate struct {
	Trigger trace.FileID
	File    trace.FileID
	Seq     uint64
}

// Sink receives prefetch submissions from the pipeline's submit loop (one
// goroutine; implementations need not be safe for concurrent use unless
// they are shared elsewhere).
type Sink interface {
	Prefetch(c Candidate)
}

// SinkFunc adapts a function to the Sink interface.
type SinkFunc func(c Candidate)

// Prefetch implements Sink.
func (f SinkFunc) Prefetch(c Candidate) { f(c) }

// DefaultQueueCap bounds the candidate queue when Config.QueueCap <= 0.
const DefaultQueueCap = 1024

// Queue is a bounded FIFO of prefetch candidates with drop-oldest overflow:
// a full queue evicts its oldest candidate (counted on the dropped Counter)
// rather than ever blocking the producer. It is safe for concurrent use.
type Queue struct {
	mu       sync.Mutex
	nonEmpty *sync.Cond
	buf      []Candidate // ring buffer
	head, n  int
	closed   bool
	pushed   uint64
	dropped  *metrics.Counter
}

// NewQueue creates a queue holding up to capacity candidates
// (DefaultQueueCap when <= 0). Drops are counted on dropped; pass nil for a
// private counter.
func NewQueue(capacity int, dropped *metrics.Counter) *Queue {
	if capacity <= 0 {
		capacity = DefaultQueueCap
	}
	if dropped == nil {
		dropped = &metrics.Counter{}
	}
	q := &Queue{buf: make([]Candidate, capacity), dropped: dropped}
	q.nonEmpty = sync.NewCond(&q.mu)
	return q
}

// Push appends c, evicting the oldest queued candidate when full. It
// reports false (and discards c uncounted) after Close.
func (q *Queue) Push(c Candidate) bool {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return false
	}
	if q.n == len(q.buf) {
		q.head = (q.head + 1) % len(q.buf)
		q.n--
		q.dropped.Inc()
	}
	q.buf[(q.head+q.n)%len(q.buf)] = c
	q.n++
	q.pushed++
	q.nonEmpty.Signal()
	q.mu.Unlock()
	return true
}

// Pop removes the oldest candidate without blocking.
func (q *Queue) Pop() (Candidate, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.popLocked()
}

// PopWait blocks until a candidate is available or the queue is closed and
// empty (the false return — queued candidates remain poppable after Close).
func (q *Queue) PopWait() (Candidate, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for q.n == 0 && !q.closed {
		q.nonEmpty.Wait()
	}
	return q.popLocked()
}

func (q *Queue) popLocked() (Candidate, bool) {
	if q.n == 0 {
		return Candidate{}, false
	}
	c := q.buf[q.head]
	q.head = (q.head + 1) % len(q.buf)
	q.n--
	return c, true
}

// Close stops accepting pushes and wakes blocked PopWait callers once the
// queue drains. Idempotent.
func (q *Queue) Close() {
	q.mu.Lock()
	q.closed = true
	q.nonEmpty.Broadcast()
	q.mu.Unlock()
}

// Len reports the queued candidate count.
func (q *Queue) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.n
}

// Pushed reports how many candidates were accepted (including later drops).
func (q *Queue) Pushed() uint64 {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.pushed
}

// Dropped reports how many candidates were evicted by overflow.
func (q *Queue) Dropped() uint64 { return q.dropped.Load() }

// Config tunes a Pipeline.
type Config struct {
	// K is the prefetch degree: candidates predicted per ingest event.
	// Default 4.
	K int
	// QueueCap bounds the candidate queue (DefaultQueueCap when <= 0).
	QueueCap int
	// TapBuffer is the per-shard tap channel size
	// (core.DefaultTapBuffer when <= 0).
	TapBuffer int
}

// Stats is a snapshot of pipeline throughput and loss accounting. The
// conservation law Predicted == Submitted + QueueDropped + queue.Len()
// holds exactly after Stop.
type Stats struct {
	Events       uint64 // tap events consumed
	TapDropped   uint64 // tap notifications lost to consumer lag
	Predicted    uint64 // candidates produced by Predict
	Submitted    uint64 // candidates delivered to the sink
	QueueDropped uint64 // candidates evicted from the bounded queue
	Hits         uint64 // predictions later confirmed by an ingest event
}

// Accuracy is the observed prediction hit rate: the fraction of issued
// predictions whose file was accessed (ingested) while still inside the
// pipeline's recently-predicted window. 0 when nothing was predicted.
func (s Stats) Accuracy() float64 {
	if s.Predicted == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Predicted)
}

// hitWindow bounds the recently-predicted set the hit/accuracy accounting
// checks ingest events against: a prediction counts as a hit only if its
// file is accessed before hitWindow newer predictions evict it — a rolling
// stand-in for "was the prefetch still resident when the access came".
const hitWindow = 4096

// hitTracker is the bounded recently-predicted set. One small mutex-guarded
// map+ring shared by all shard consumers: a predicted file's later access
// event arrives on the file's own shard, not the predicting trigger's, so
// the set cannot be per-consumer. The lock is leaf and the critical
// sections are O(1); consumers are off the demand path by construction.
type hitTracker struct {
	mu   sync.Mutex
	set  map[trace.FileID]struct{}
	ring [hitWindow]trace.FileID
	n    int // ring entries written (head = n % hitWindow)
}

// add records a fresh prediction, evicting the oldest once the window is
// full. Duplicate predictions keep one set entry (the ring may hold stale
// slots; eviction of an already-hit file is a no-op).
func (h *hitTracker) add(f trace.FileID) {
	h.mu.Lock()
	if h.set == nil {
		h.set = make(map[trace.FileID]struct{}, hitWindow)
	}
	if _, dup := h.set[f]; !dup {
		if h.n >= hitWindow {
			delete(h.set, h.ring[h.n%hitWindow])
		}
		h.ring[h.n%hitWindow] = f
		h.n++
		h.set[f] = struct{}{}
	}
	h.mu.Unlock()
}

// take reports whether f was recently predicted, consuming the entry (one
// access confirms one prediction).
func (h *hitTracker) take(f trace.FileID) bool {
	h.mu.Lock()
	_, ok := h.set[f]
	if ok {
		delete(h.set, f)
	}
	h.mu.Unlock()
	return ok
}

// Pipeline is the running async prefetcher: per-shard consumer goroutines
// draining an EventTap, a bounded candidate queue, and one submit loop
// feeding the sink. Create with Start, end with Stop.
type Pipeline struct {
	pred interface {
		Predict(f trace.FileID, k int) []trace.FileID
	}
	sink Sink
	cfg  Config
	tap  *core.EventTap
	q    *Queue

	consumers sync.WaitGroup
	submitter sync.WaitGroup
	stopOnce  sync.Once

	events    atomic.Uint64
	predicted atomic.Uint64
	submitted atomic.Uint64
	hits      atomic.Uint64
	ht        hitTracker
}

// Start taps the model and launches the pipeline: one consumer goroutine
// per shard (preserving each shard's event order) plus the submit loop.
// The sink receives candidates until Stop; a nil sink discards them (the
// pipeline still predicts and accounts — useful for measurement runs).
func Start(m *core.ShardedModel, sink Sink, cfg Config) *Pipeline {
	if cfg.K <= 0 {
		cfg.K = 4
	}
	if sink == nil {
		sink = SinkFunc(func(Candidate) {})
	}
	p := &Pipeline{
		pred: m,
		sink: sink,
		cfg:  cfg,
		tap:  m.Tap(cfg.TapBuffer),
		q:    NewQueue(cfg.QueueCap, nil),
	}
	for i := 0; i < p.tap.Shards(); i++ {
		p.consumers.Add(1)
		go p.consume(i)
	}
	p.submitter.Add(1)
	go p.submitLoop()
	return p
}

func (p *Pipeline) consume(shard int) {
	defer p.consumers.Done()
	for ev := range p.tap.Chan(shard) {
		p.events.Add(1)
		// Hit accounting first: this access confirms (at most) one earlier
		// prediction of the same file, before this event's own predictions
		// enter the window.
		if p.ht.take(ev.File) {
			p.hits.Add(1)
		}
		for _, f := range p.pred.Predict(ev.File, p.cfg.K) {
			p.predicted.Add(1)
			p.ht.add(f)
			p.q.Push(Candidate{Trigger: ev.File, File: f, Seq: ev.Seq})
		}
	}
}

func (p *Pipeline) submitLoop() {
	defer p.submitter.Done()
	for {
		c, ok := p.q.PopWait()
		if !ok {
			return
		}
		p.sink.Prefetch(c)
		p.submitted.Add(1)
	}
}

// Stop shuts the pipeline down in drain order: the tap closes (consumers
// finish the queued events), then the candidate queue closes (the submit
// loop delivers every remaining candidate), then Stop returns. Idempotent.
func (p *Pipeline) Stop() {
	p.stopOnce.Do(func() {
		p.tap.Close()
		p.consumers.Wait()
		p.q.Close()
		p.submitter.Wait()
	})
}

// Stats returns the current accounting snapshot (exact after Stop).
func (p *Pipeline) Stats() Stats {
	return Stats{
		Events:       p.events.Load(),
		TapDropped:   p.tap.Dropped(),
		Predicted:    p.predicted.Load(),
		Submitted:    p.submitted.Load(),
		QueueDropped: p.q.Dropped(),
		Hits:         p.hits.Load(),
	}
}
