package prefetch

import (
	"sync"
	"testing"
	"time"

	"farmer/internal/core"
	"farmer/internal/metrics"
	"farmer/internal/trace"
	"farmer/internal/tracegen"
)

func cand(n uint64) Candidate {
	return Candidate{Trigger: trace.FileID(n), File: trace.FileID(n + 1), Seq: n}
}

func TestQueueFIFO(t *testing.T) {
	q := NewQueue(8, nil)
	for i := uint64(0); i < 5; i++ {
		q.Push(cand(i))
	}
	for i := uint64(0); i < 5; i++ {
		c, ok := q.Pop()
		if !ok || c.Seq != i {
			t.Fatalf("pop %d: got %+v ok=%v", i, c, ok)
		}
	}
	if _, ok := q.Pop(); ok {
		t.Fatal("pop on empty queue succeeded")
	}
}

func TestQueueDropOldest(t *testing.T) {
	var dropped metrics.Counter
	q := NewQueue(4, &dropped)
	for i := uint64(0); i < 10; i++ {
		q.Push(cand(i))
	}
	if got := dropped.Load(); got != 6 {
		t.Fatalf("dropped = %d, want 6", got)
	}
	if got := q.Dropped(); got != 6 {
		t.Fatalf("q.Dropped() = %d, want 6", got)
	}
	if got := q.Pushed(); got != 10 {
		t.Fatalf("pushed = %d, want 10", got)
	}
	// The newest 4 candidates survive, in order.
	for i := uint64(6); i < 10; i++ {
		c, ok := q.Pop()
		if !ok || c.Seq != i {
			t.Fatalf("retained candidate: got %+v ok=%v, want seq %d", c, ok, i)
		}
	}
}

func TestQueueCloseDrains(t *testing.T) {
	q := NewQueue(8, nil)
	q.Push(cand(1))
	q.Push(cand(2))
	q.Close()
	if ok := q.Push(cand(3)); ok {
		t.Fatal("push after close succeeded")
	}
	if c, ok := q.PopWait(); !ok || c.Seq != 1 {
		t.Fatalf("PopWait after close lost queued candidate: %+v ok=%v", c, ok)
	}
	if c, ok := q.PopWait(); !ok || c.Seq != 2 {
		t.Fatalf("PopWait after close lost queued candidate: %+v ok=%v", c, ok)
	}
	if _, ok := q.PopWait(); ok {
		t.Fatal("PopWait on closed empty queue returned a candidate")
	}
	q.Close() // idempotent
}

func TestQueuePopWaitBlocks(t *testing.T) {
	q := NewQueue(4, nil)
	got := make(chan Candidate, 1)
	go func() {
		c, _ := q.PopWait()
		got <- c
	}()
	time.Sleep(5 * time.Millisecond) // let the popper block
	q.Push(cand(7))
	select {
	case c := <-got:
		if c.Seq != 7 {
			t.Fatalf("PopWait returned %+v, want seq 7", c)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("PopWait never woke up")
	}
}

// collectSink records every submitted candidate.
type collectSink struct {
	mu    sync.Mutex
	cands []Candidate
}

func (s *collectSink) Prefetch(c Candidate) {
	s.mu.Lock()
	s.cands = append(s.cands, c)
	s.mu.Unlock()
}

// TestPipelineEndToEnd runs the full async pipeline over a real sharded
// miner while it ingests a trace, then checks the accounting conservation
// laws and that the mined state was untouched by concurrent prediction.
func TestPipelineEndToEnd(t *testing.T) {
	tr, err := tracegen.HP(4000).Generate()
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.DefaultConfig()
	cfg.Shards = 4
	sm := core.NewSharded(cfg)
	sink := &collectSink{}
	p := Start(sm, sink, Config{K: 4, QueueCap: 1 << 16, TapBuffer: len(tr.Records)})
	sm.FeedTraceParallel(tr)
	p.Stop()
	p.Stop() // idempotent

	st := p.Stats()
	if st.Events != uint64(len(tr.Records)) {
		t.Fatalf("events = %d, want %d (oversized tap must not drop)", st.Events, len(tr.Records))
	}
	if st.TapDropped != 0 {
		t.Fatalf("tap dropped %d events with oversized buffer", st.TapDropped)
	}
	if st.Predicted != st.Submitted+st.QueueDropped {
		t.Fatalf("conservation violated: predicted %d != submitted %d + dropped %d",
			st.Predicted, st.Submitted, st.QueueDropped)
	}
	if uint64(len(sink.cands)) != st.Submitted {
		t.Fatalf("sink saw %d candidates, stats say %d", len(sink.cands), st.Submitted)
	}
	if st.Submitted == 0 {
		t.Fatal("pipeline submitted nothing on a correlated trace")
	}
	for _, c := range sink.cands {
		if c.File == c.Trigger {
			t.Fatalf("self-prefetch candidate %+v", c)
		}
		if c.Seq == 0 || c.Seq > uint64(len(tr.Records)) {
			t.Fatalf("candidate with out-of-range seq: %+v", c)
		}
	}
}

// gateSink blocks every submission until released, simulating a prefetch
// I/O path slower than prediction.
type gateSink struct {
	gate <-chan struct{}
	n    int
}

func (s *gateSink) Prefetch(Candidate) {
	<-s.gate
	s.n++
}

// TestPipelineBackpressure checks that a slow sink never blocks ingestion:
// the bounded queue absorbs the burst, drops the oldest candidates, and the
// drop counter plus the conservation law account for every prediction.
func TestPipelineBackpressure(t *testing.T) {
	tr, err := tracegen.HP(3000).Generate()
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.DefaultConfig()
	cfg.Shards = 2
	sm := core.NewSharded(cfg)
	gate := make(chan struct{})
	sink := &gateSink{gate: gate}
	p := Start(sm, sink, Config{K: 4, QueueCap: 16, TapBuffer: len(tr.Records)})

	done := make(chan struct{})
	go func() {
		sm.FeedTraceParallel(tr) // must complete with the sink stalled
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("ingestion blocked behind a stalled prefetch sink")
	}
	close(gate) // release the sink and drain
	p.Stop()

	st := p.Stats()
	if st.QueueDropped == 0 {
		t.Fatalf("no drops with a 16-slot queue against %d predictions", st.Predicted)
	}
	if st.Predicted != st.Submitted+st.QueueDropped {
		t.Fatalf("conservation violated: predicted %d != submitted %d + dropped %d",
			st.Predicted, st.Submitted, st.QueueDropped)
	}
	if uint64(sink.n) != st.Submitted {
		t.Fatalf("sink served %d, stats say %d", sink.n, st.Submitted)
	}
}

// TestPipelineNilSinkDiscards checks that a nil sink is a supported
// measurement mode, not a background-goroutine panic.
func TestPipelineNilSinkDiscards(t *testing.T) {
	tr, err := tracegen.HP(1000).Generate()
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.DefaultConfig()
	cfg.Shards = 2
	sm := core.NewSharded(cfg)
	p := Start(sm, nil, Config{K: 4, TapBuffer: len(tr.Records)})
	sm.FeedTraceParallel(tr)
	p.Stop()
	st := p.Stats()
	if st.Predicted == 0 || st.Predicted != st.Submitted+st.QueueDropped {
		t.Fatalf("nil-sink accounting: predicted %d submitted %d dropped %d",
			st.Predicted, st.Submitted, st.QueueDropped)
	}
}
