// Package replica implements FARMER-enabled reliability (paper §4.3): files
// with strong inter-file correlations are grouped into logical replica
// groups, and backup/recovery of a replica group is an atomic operation so
// strongly-correlated files stay mutually consistent.
package replica

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"farmer/internal/core"
	"farmer/internal/trace"
)

// GroupID identifies a replica group.
type GroupID int

// Manager assigns files to replica groups from mined correlations and
// tracks per-group backup versions with atomic group commit.
type Manager struct {
	mu       sync.RWMutex
	groups   map[GroupID][]trace.FileID
	ofFile   map[trace.FileID]GroupID
	versions map[GroupID]uint64
	// backups[g][v] holds the file set captured at version v.
	backups map[GroupID]map[uint64][]trace.FileID
}

// NewManager returns an empty manager.
func NewManager() *Manager {
	return &Manager{
		groups:   make(map[GroupID][]trace.FileID),
		ofFile:   make(map[trace.FileID]GroupID),
		versions: make(map[GroupID]uint64),
		backups:  make(map[GroupID]map[uint64][]trace.FileID),
	}
}

// BuildGroups derives replica groups from a mined model: files whose mutual
// correlation degree clears minDegree land in one group (greedy, strongest
// lists first), everything else gets a singleton group.
func (mgr *Manager) BuildGroups(m *core.Model, fileCount int, minDegree float64) error {
	if fileCount <= 0 {
		return fmt.Errorf("replica: fileCount %d", fileCount)
	}
	mgr.mu.Lock()
	defer mgr.mu.Unlock()
	if len(mgr.groups) > 0 {
		return errors.New("replica: groups already built")
	}
	type seed struct {
		f trace.FileID
		s float64
	}
	seeds := make([]seed, 0, fileCount)
	for f := 0; f < fileCount; f++ {
		id := trace.FileID(f)
		var s float64
		for _, c := range m.CorrelatorList(id) {
			s += c.Degree
		}
		seeds = append(seeds, seed{id, s})
	}
	sort.Slice(seeds, func(i, j int) bool {
		if seeds[i].s != seeds[j].s {
			return seeds[i].s > seeds[j].s
		}
		return seeds[i].f < seeds[j].f
	})
	next := GroupID(0)
	for _, sd := range seeds {
		if _, done := mgr.ofFile[sd.f]; done {
			continue
		}
		members := []trace.FileID{sd.f}
		mgr.ofFile[sd.f] = next
		for _, c := range m.CorrelatorList(sd.f) {
			if c.Degree < minDegree {
				break
			}
			if int(c.File) >= fileCount {
				continue
			}
			if _, done := mgr.ofFile[c.File]; done {
				continue
			}
			mgr.ofFile[c.File] = next
			members = append(members, c.File)
		}
		mgr.groups[next] = members
		next++
	}
	return nil
}

// GroupOf returns the replica group of a file.
func (mgr *Manager) GroupOf(f trace.FileID) (GroupID, bool) {
	mgr.mu.RLock()
	defer mgr.mu.RUnlock()
	g, ok := mgr.ofFile[f]
	return g, ok
}

// Members returns a copy of a group's file set.
func (mgr *Manager) Members(g GroupID) []trace.FileID {
	mgr.mu.RLock()
	defer mgr.mu.RUnlock()
	return append([]trace.FileID(nil), mgr.groups[g]...)
}

// Groups reports the number of replica groups.
func (mgr *Manager) Groups() int {
	mgr.mu.RLock()
	defer mgr.mu.RUnlock()
	return len(mgr.groups)
}

// Backup atomically captures a group: either every member is recorded under
// the new version or the backup does not happen. It returns the new version.
func (mgr *Manager) Backup(g GroupID) (uint64, error) {
	mgr.mu.Lock()
	defer mgr.mu.Unlock()
	members, ok := mgr.groups[g]
	if !ok {
		return 0, fmt.Errorf("replica: unknown group %d", g)
	}
	v := mgr.versions[g] + 1
	snap := append([]trace.FileID(nil), members...)
	byVer := mgr.backups[g]
	if byVer == nil {
		byVer = make(map[uint64][]trace.FileID)
		mgr.backups[g] = byVer
	}
	byVer[v] = snap
	mgr.versions[g] = v
	return v, nil
}

// Recover returns the file set of a group at a version; the whole set is
// returned or an error — never a partial group.
func (mgr *Manager) Recover(g GroupID, version uint64) ([]trace.FileID, error) {
	mgr.mu.RLock()
	defer mgr.mu.RUnlock()
	byVer, ok := mgr.backups[g]
	if !ok {
		return nil, fmt.Errorf("replica: group %d has no backups", g)
	}
	snap, ok := byVer[version]
	if !ok {
		return nil, fmt.Errorf("replica: group %d has no version %d", g, version)
	}
	return append([]trace.FileID(nil), snap...), nil
}

// Version reports a group's latest backup version (0 = never backed up).
func (mgr *Manager) Version(g GroupID) uint64 {
	mgr.mu.RLock()
	defer mgr.mu.RUnlock()
	return mgr.versions[g]
}
