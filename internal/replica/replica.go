// Package replica implements FARMER-enabled reliability (paper §4.3): files
// with strong inter-file correlations are grouped into logical replica
// groups, and backup/recovery of a replica group is an atomic operation so
// strongly-correlated files stay mutually consistent.
package replica

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"sync"

	"farmer/internal/core"
	"farmer/internal/trace"
)

// GroupID identifies a replica group.
type GroupID int

// Source is the mined-state read surface grouping needs; core.Model and
// core.ShardedModel both satisfy it, so groups can be built from a
// single-lock miner, a sharded ensemble, or a replication follower's
// replica of either.
type Source interface {
	CorrelatorList(f trace.FileID) []core.Correlator
}

// Manager assigns files to replica groups from mined correlations and
// tracks per-group backup versions with atomic group commit.
type Manager struct {
	mu       sync.RWMutex
	groups   map[GroupID][]trace.FileID
	ofFile   map[trace.FileID]GroupID
	versions map[GroupID]uint64
	// backups[g][v] holds the file set captured at version v.
	backups map[GroupID]map[uint64][]trace.FileID
}

// NewManager returns an empty manager.
func NewManager() *Manager {
	return &Manager{
		groups:   make(map[GroupID][]trace.FileID),
		ofFile:   make(map[trace.FileID]GroupID),
		versions: make(map[GroupID]uint64),
		backups:  make(map[GroupID]map[uint64][]trace.FileID),
	}
}

// BuildGroups derives replica groups from a mined model: files whose mutual
// correlation degree clears minDegree land in one group (greedy, strongest
// lists first), everything else gets a singleton group. It is the one-shot
// form — a manager that already holds groups refuses; use Rebuild to
// regroup as the mined model evolves.
func (mgr *Manager) BuildGroups(m Source, fileCount int, minDegree float64) error {
	if fileCount <= 0 {
		return fmt.Errorf("replica: fileCount %d", fileCount)
	}
	mgr.mu.Lock()
	defer mgr.mu.Unlock()
	if len(mgr.groups) > 0 {
		return errors.New("replica: groups already built")
	}
	mgr.rebuildLocked(m, fileCount, minDegree)
	return nil
}

// Rebuild regroups from the model's CURRENT mined state, replacing the
// previous grouping atomically — readers and Backup never observe a partial
// regroup. Backup versions and retained backup snapshots survive (they are
// keyed by group id, which stays stable for the strongest seeds and is the
// monotonic counter the replication fingerprint compares), so a regroup
// racing a backup is safe under -race and a replicated pair that executes
// the same (rebuild, backup) sequence at the same stream position reaches
// the same fingerprint.
func (mgr *Manager) Rebuild(m Source, fileCount int, minDegree float64) error {
	if fileCount <= 0 {
		return fmt.Errorf("replica: fileCount %d", fileCount)
	}
	mgr.mu.Lock()
	defer mgr.mu.Unlock()
	mgr.groups = make(map[GroupID][]trace.FileID)
	mgr.ofFile = make(map[trace.FileID]GroupID)
	mgr.rebuildLocked(m, fileCount, minDegree)
	return nil
}

// rebuildLocked computes the grouping, holding mgr.mu. Deterministic: seeds
// are ordered by total degree (ties toward the lowest id), so two managers
// over bit-identical models produce identical groups.
func (mgr *Manager) rebuildLocked(m Source, fileCount int, minDegree float64) {
	type seed struct {
		f trace.FileID
		s float64
	}
	seeds := make([]seed, 0, fileCount)
	for f := 0; f < fileCount; f++ {
		id := trace.FileID(f)
		var s float64
		for _, c := range m.CorrelatorList(id) {
			s += c.Degree
		}
		seeds = append(seeds, seed{id, s})
	}
	sort.Slice(seeds, func(i, j int) bool {
		if seeds[i].s != seeds[j].s {
			return seeds[i].s > seeds[j].s
		}
		return seeds[i].f < seeds[j].f
	})
	next := GroupID(0)
	for _, sd := range seeds {
		if _, done := mgr.ofFile[sd.f]; done {
			continue
		}
		members := []trace.FileID{sd.f}
		mgr.ofFile[sd.f] = next
		for _, c := range m.CorrelatorList(sd.f) {
			if c.Degree < minDegree {
				break
			}
			if int(c.File) >= fileCount {
				continue
			}
			if _, done := mgr.ofFile[c.File]; done {
				continue
			}
			mgr.ofFile[c.File] = next
			members = append(members, c.File)
		}
		mgr.groups[next] = members
		next++
	}
}

// GroupOf returns the replica group of a file.
func (mgr *Manager) GroupOf(f trace.FileID) (GroupID, bool) {
	mgr.mu.RLock()
	defer mgr.mu.RUnlock()
	g, ok := mgr.ofFile[f]
	return g, ok
}

// Members returns a copy of a group's file set.
func (mgr *Manager) Members(g GroupID) []trace.FileID {
	mgr.mu.RLock()
	defer mgr.mu.RUnlock()
	return append([]trace.FileID(nil), mgr.groups[g]...)
}

// Groups reports the number of replica groups.
func (mgr *Manager) Groups() int {
	mgr.mu.RLock()
	defer mgr.mu.RUnlock()
	return len(mgr.groups)
}

// Backup atomically captures a group: either every member is recorded under
// the new version or the backup does not happen. It returns the new version.
func (mgr *Manager) Backup(g GroupID) (uint64, error) {
	mgr.mu.Lock()
	defer mgr.mu.Unlock()
	members, ok := mgr.groups[g]
	if !ok {
		return 0, fmt.Errorf("replica: unknown group %d", g)
	}
	v := mgr.versions[g] + 1
	snap := append([]trace.FileID(nil), members...)
	byVer := mgr.backups[g]
	if byVer == nil {
		byVer = make(map[uint64][]trace.FileID)
		mgr.backups[g] = byVer
	}
	byVer[v] = snap
	mgr.versions[g] = v
	return v, nil
}

// Recover returns the file set of a group at a version; the whole set is
// returned or an error — never a partial group.
func (mgr *Manager) Recover(g GroupID, version uint64) ([]trace.FileID, error) {
	mgr.mu.RLock()
	defer mgr.mu.RUnlock()
	byVer, ok := mgr.backups[g]
	if !ok {
		return nil, fmt.Errorf("replica: group %d has no backups", g)
	}
	snap, ok := byVer[version]
	if !ok {
		return nil, fmt.Errorf("replica: group %d has no version %d", g, version)
	}
	return append([]trace.FileID(nil), snap...), nil
}

// Version reports a group's latest backup version (0 = never backed up).
func (mgr *Manager) Version(g GroupID) uint64 {
	mgr.mu.RLock()
	defer mgr.mu.RUnlock()
	return mgr.versions[g]
}

// BackupAll cuts a backup of EVERY group under one lock acquisition: the
// whole cut observes a single consistent grouping (a concurrent Rebuild
// lands entirely before or entirely after it, never inside), which is the
// "backup of a replica group is an atomic operation" rule of paper §4.3
// promoted to the full group set. It returns the number of groups cut.
func (mgr *Manager) BackupAll() int {
	mgr.mu.Lock()
	defer mgr.mu.Unlock()
	for g, members := range mgr.groups {
		v := mgr.versions[g] + 1
		byVer := mgr.backups[g]
		if byVer == nil {
			byVer = make(map[uint64][]trace.FileID)
			mgr.backups[g] = byVer
		}
		byVer[v] = append([]trace.FileID(nil), members...)
		mgr.versions[g] = v
	}
	return len(mgr.groups)
}

// Fingerprint hashes the manager's observable replication state — every
// group's id, membership (in stored order, which Rebuild makes
// deterministic) and backup version. A primary and a follower that executed
// the same (rebuild, backup) commands over bit-identical mined state agree
// on the fingerprint; any divergence in grouping or in cut history shows up
// as a mismatch.
func (mgr *Manager) Fingerprint() uint64 {
	mgr.mu.RLock()
	defer mgr.mu.RUnlock()
	ids := make([]GroupID, 0, len(mgr.groups))
	for g := range mgr.groups {
		ids = append(ids, g)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	h := fnv.New64a()
	var buf [8]byte
	wr := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	wr(uint64(len(ids)))
	for _, g := range ids {
		wr(uint64(g))
		wr(mgr.versions[g])
		members := mgr.groups[g]
		wr(uint64(len(members)))
		for _, f := range members {
			wr(uint64(f))
		}
	}
	return h.Sum64()
}

// VersionTotal reports the sum of every group's backup version — a cheap
// monotonic cut counter the wire's GroupsInfo carries.
func (mgr *Manager) VersionTotal() uint64 {
	mgr.mu.RLock()
	defer mgr.mu.RUnlock()
	var total uint64
	for _, v := range mgr.versions {
		total += v
	}
	return total
}
