package replica

import (
	"sync"
	"testing"
	"time"

	"farmer/internal/core"
	"farmer/internal/trace"
	"farmer/internal/tracegen"
	"farmer/internal/vsm"
)

func minedModel(t *testing.T) (*core.Model, int) {
	t.Helper()
	tr := tracegen.HP(8000).MustGenerate()
	cfg := core.DefaultConfig()
	cfg.Mask = vsm.DefaultMask(true)
	m := core.New(cfg)
	m.FeedTrace(tr)
	return m, tr.FileCount
}

func TestBuildGroupsPartition(t *testing.T) {
	m, files := minedModel(t)
	mgr := NewManager()
	if err := mgr.BuildGroups(m, files, 0.4); err != nil {
		t.Fatal(err)
	}
	// Every file is in exactly one group.
	count := 0
	for g := GroupID(0); int(g) < mgr.Groups(); g++ {
		count += len(mgr.Members(g))
	}
	if count != files {
		t.Fatalf("groups cover %d files, want %d", count, files)
	}
	for f := 0; f < files; f++ {
		if _, ok := mgr.GroupOf(trace.FileID(f)); !ok {
			t.Fatalf("file %d ungrouped", f)
		}
	}
	if mgr.Groups() >= files {
		t.Fatal("no multi-member replica groups formed")
	}
}

func TestBuildGroupsTwiceFails(t *testing.T) {
	m, files := minedModel(t)
	mgr := NewManager()
	if err := mgr.BuildGroups(m, files, 0.4); err != nil {
		t.Fatal(err)
	}
	if err := mgr.BuildGroups(m, files, 0.4); err == nil {
		t.Fatal("second BuildGroups accepted")
	}
}

func TestBuildGroupsValidation(t *testing.T) {
	m, _ := minedModel(t)
	if err := NewManager().BuildGroups(m, 0, 0.4); err == nil {
		t.Fatal("fileCount 0 accepted")
	}
}

func TestBackupRecoverAtomicity(t *testing.T) {
	m, files := minedModel(t)
	mgr := NewManager()
	if err := mgr.BuildGroups(m, files, 0.4); err != nil {
		t.Fatal(err)
	}
	var g GroupID
	for id := GroupID(0); int(id) < mgr.Groups(); id++ {
		if len(mgr.Members(id)) > 1 {
			g = id
			break
		}
	}
	members := mgr.Members(g)
	v1, err := mgr.Backup(g)
	if err != nil {
		t.Fatal(err)
	}
	if v1 != 1 || mgr.Version(g) != 1 {
		t.Fatalf("version = %d", v1)
	}
	v2, _ := mgr.Backup(g)
	if v2 != 2 {
		t.Fatalf("second backup version = %d", v2)
	}
	got, err := mgr.Recover(g, v1)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(members) {
		t.Fatalf("recovered %d members, want %d (atomic group)", len(got), len(members))
	}
}

func TestRecoverErrors(t *testing.T) {
	mgr := NewManager()
	if _, err := mgr.Recover(0, 1); err == nil {
		t.Fatal("recover of unknown group accepted")
	}
	if _, err := mgr.Backup(99); err == nil {
		t.Fatal("backup of unknown group accepted")
	}
}

func TestConcurrentBackups(t *testing.T) {
	m, files := minedModel(t)
	mgr := NewManager()
	if err := mgr.BuildGroups(m, files, 0.4); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if _, err := mgr.Backup(0); err != nil {
					t.Error(err)
					return
				}
				mgr.Members(0)
				mgr.GroupOf(0)
			}
		}()
	}
	wg.Wait()
	if mgr.Version(0) != 400 {
		t.Fatalf("version = %d, want 400 (no lost updates)", mgr.Version(0))
	}
}

// TestRebuildReplacesGroups: a regroup over evolved mined state replaces
// the grouping atomically and deterministically (two managers rebuilt from
// the same model fingerprint identically), and backup versions survive.
func TestRebuildReplacesGroups(t *testing.T) {
	m, files := minedModel(t)
	mgr := NewManager()
	if err := mgr.BuildGroups(m, files, 0.4); err != nil {
		t.Fatal(err)
	}
	if mgr.BackupAll() != mgr.Groups() {
		t.Fatal("BackupAll did not cut every group")
	}
	cuts := mgr.VersionTotal()
	if cuts == 0 {
		t.Fatal("no versions after BackupAll")
	}
	if err := mgr.Rebuild(m, files, 0.5); err != nil {
		t.Fatal(err)
	}
	if mgr.Groups() == 0 {
		t.Fatal("rebuild produced no groups")
	}
	if got := mgr.VersionTotal(); got != cuts {
		t.Fatalf("rebuild disturbed backup versions: %d != %d", got, cuts)
	}

	other := NewManager()
	if err := other.Rebuild(m, files, 0.5); err != nil {
		t.Fatal(err)
	}
	other.BackupAll()
	mgr2 := NewManager()
	if err := mgr2.Rebuild(m, files, 0.5); err != nil {
		t.Fatal(err)
	}
	mgr2.BackupAll()
	if other.Fingerprint() != mgr2.Fingerprint() {
		t.Fatal("deterministic rebuild fingerprints differ")
	}
}

// TestRegroupRacesBackup drives Rebuild against Backup/BackupAll/readers
// from many goroutines — the -race coverage for the replication path, where
// a primary's periodic regroup can race a client-commanded group backup.
// Every observation must be of a complete grouping: a Backup that wins a
// group id mid-race still captures that group's full member set.
func TestRegroupRacesBackup(t *testing.T) {
	m, files := minedModel(t)
	mgr := NewManager()
	if err := mgr.BuildGroups(m, files, 0.4); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		degrees := []float64{0.4, 0.45, 0.5, 0.55}
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if err := mgr.Rebuild(m, files, degrees[i%len(degrees)]); err != nil {
				t.Errorf("rebuild: %v", err)
				return
			}
		}
	}()
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				switch i % 4 {
				case 0:
					mgr.BackupAll()
				case 1:
					if _, err := mgr.Backup(GroupID(i % 8)); err == nil {
						if v := mgr.Version(GroupID(i % 8)); v == 0 {
							t.Errorf("backup succeeded but version is 0")
							return
						}
					}
				case 2:
					if g, ok := mgr.GroupOf(trace.FileID(i)); ok {
						members := mgr.Members(g)
						found := false
						for _, f := range members {
							if f == trace.FileID(i) {
								found = true
								break
							}
						}
						// A Rebuild between GroupOf and Members may have
						// reassigned the file; what must never happen is an
						// empty group.
						if len(members) == 0 {
							t.Errorf("group %d empty", g)
							return
						}
						_ = found
					}
				case 3:
					mgr.Fingerprint()
					mgr.VersionTotal()
				}
			}
		}(w)
	}
	time.Sleep(50 * time.Millisecond) // let rebuilds overlap the workers
	close(stop)
	wg.Wait()
}
