package replica

import (
	"sync"
	"testing"

	"farmer/internal/core"
	"farmer/internal/trace"
	"farmer/internal/tracegen"
	"farmer/internal/vsm"
)

func minedModel(t *testing.T) (*core.Model, int) {
	t.Helper()
	tr := tracegen.HP(8000).MustGenerate()
	cfg := core.DefaultConfig()
	cfg.Mask = vsm.DefaultMask(true)
	m := core.New(cfg)
	m.FeedTrace(tr)
	return m, tr.FileCount
}

func TestBuildGroupsPartition(t *testing.T) {
	m, files := minedModel(t)
	mgr := NewManager()
	if err := mgr.BuildGroups(m, files, 0.4); err != nil {
		t.Fatal(err)
	}
	// Every file is in exactly one group.
	count := 0
	for g := GroupID(0); int(g) < mgr.Groups(); g++ {
		count += len(mgr.Members(g))
	}
	if count != files {
		t.Fatalf("groups cover %d files, want %d", count, files)
	}
	for f := 0; f < files; f++ {
		if _, ok := mgr.GroupOf(trace.FileID(f)); !ok {
			t.Fatalf("file %d ungrouped", f)
		}
	}
	if mgr.Groups() >= files {
		t.Fatal("no multi-member replica groups formed")
	}
}

func TestBuildGroupsTwiceFails(t *testing.T) {
	m, files := minedModel(t)
	mgr := NewManager()
	if err := mgr.BuildGroups(m, files, 0.4); err != nil {
		t.Fatal(err)
	}
	if err := mgr.BuildGroups(m, files, 0.4); err == nil {
		t.Fatal("second BuildGroups accepted")
	}
}

func TestBuildGroupsValidation(t *testing.T) {
	m, _ := minedModel(t)
	if err := NewManager().BuildGroups(m, 0, 0.4); err == nil {
		t.Fatal("fileCount 0 accepted")
	}
}

func TestBackupRecoverAtomicity(t *testing.T) {
	m, files := minedModel(t)
	mgr := NewManager()
	if err := mgr.BuildGroups(m, files, 0.4); err != nil {
		t.Fatal(err)
	}
	var g GroupID
	for id := GroupID(0); int(id) < mgr.Groups(); id++ {
		if len(mgr.Members(id)) > 1 {
			g = id
			break
		}
	}
	members := mgr.Members(g)
	v1, err := mgr.Backup(g)
	if err != nil {
		t.Fatal(err)
	}
	if v1 != 1 || mgr.Version(g) != 1 {
		t.Fatalf("version = %d", v1)
	}
	v2, _ := mgr.Backup(g)
	if v2 != 2 {
		t.Fatalf("second backup version = %d", v2)
	}
	got, err := mgr.Recover(g, v1)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(members) {
		t.Fatalf("recovered %d members, want %d (atomic group)", len(got), len(members))
	}
}

func TestRecoverErrors(t *testing.T) {
	mgr := NewManager()
	if _, err := mgr.Recover(0, 1); err == nil {
		t.Fatal("recover of unknown group accepted")
	}
	if _, err := mgr.Backup(99); err == nil {
		t.Fatal("backup of unknown group accepted")
	}
}

func TestConcurrentBackups(t *testing.T) {
	m, files := minedModel(t)
	mgr := NewManager()
	if err := mgr.BuildGroups(m, files, 0.4); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if _, err := mgr.Backup(0); err != nil {
					t.Error(err)
					return
				}
				mgr.Members(0)
				mgr.GroupOf(0)
			}
		}()
	}
	wg.Wait()
	if mgr.Version(0) != 400 {
		t.Fatalf("version = %d, want 400 (no lost updates)", mgr.Version(0))
	}
}
