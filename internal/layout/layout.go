// Package layout implements FARMER-enabled file data layout (paper §4.2):
// strongly correlated small files are merged into contiguous on-disk groups
// so that a batch of correlated reads becomes one sequential I/O instead of
// many random ones. Only read-mostly files are grouped (the paper's initial
// policy); a Planner derives groups from sorted Correlator Lists and a
// simple disk model quantifies the batched-I/O win.
package layout

import (
	"fmt"
	"sort"
	"time"

	"farmer/internal/core"
	"farmer/internal/trace"
)

// Config controls group formation.
type Config struct {
	// MaxGroupBytes bounds a group's total size (contiguous allocation unit).
	MaxGroupBytes int64
	// MinDegree is the minimum correlation degree for co-placement.
	MinDegree float64
	// MaxGroupFiles bounds member count per group.
	MaxGroupFiles int
}

// DefaultConfig uses a 1 MiB allocation unit, matching the paper's
// observation that average files are 108–189 KB so several correlated files
// fit one unit.
func DefaultConfig() Config {
	return Config{MaxGroupBytes: 1 << 20, MinDegree: 0.4, MaxGroupFiles: 16}
}

// Group is a set of files placed contiguously, in placement order.
type Group struct {
	Files []trace.FileID
	Bytes int64
}

// Plan is a complete placement: every file appears in exactly one group
// (singleton groups for uncorrelated files).
type Plan struct {
	Groups []Group
	index  map[trace.FileID]int
}

// GroupOf returns the index of the group holding f, or -1.
func (p *Plan) GroupOf(f trace.FileID) int {
	if i, ok := p.index[f]; ok {
		return i
	}
	return -1
}

// Colocated reports whether two files share a group.
func (p *Plan) Colocated(a, b trace.FileID) bool {
	ga, gb := p.GroupOf(a), p.GroupOf(b)
	return ga >= 0 && ga == gb
}

// Build derives a placement plan from a mined FARMER model. sizes maps each
// file to its byte size; files absent from sizes get singleton groups.
// Greedy agglomeration: files are visited in decreasing total correlation
// strength; each seed pulls in its Correlator List in degree order while the
// group respects the byte and member bounds.
func Build(m *core.Model, fileCount int, sizes func(trace.FileID) int64, cfg Config) (*Plan, error) {
	if fileCount <= 0 {
		return nil, fmt.Errorf("layout: fileCount %d", fileCount)
	}
	if cfg.MaxGroupBytes <= 0 || cfg.MaxGroupFiles <= 0 {
		return nil, fmt.Errorf("layout: non-positive group bounds")
	}
	type seed struct {
		f        trace.FileID
		strength float64
	}
	seeds := make([]seed, 0, fileCount)
	for f := 0; f < fileCount; f++ {
		id := trace.FileID(f)
		var s float64
		for _, c := range m.CorrelatorList(id) {
			s += c.Degree
		}
		seeds = append(seeds, seed{id, s})
	}
	sort.Slice(seeds, func(i, j int) bool {
		if seeds[i].strength != seeds[j].strength {
			return seeds[i].strength > seeds[j].strength
		}
		return seeds[i].f < seeds[j].f
	})

	plan := &Plan{index: make(map[trace.FileID]int, fileCount)}
	placed := make([]bool, fileCount)
	place := func(g *Group, f trace.FileID) {
		g.Files = append(g.Files, f)
		g.Bytes += sizes(f)
		placed[f] = true
	}
	for _, sd := range seeds {
		if placed[sd.f] {
			continue
		}
		g := Group{}
		place(&g, sd.f)
		for _, c := range m.CorrelatorList(sd.f) {
			if len(g.Files) >= cfg.MaxGroupFiles {
				break
			}
			if c.Degree < cfg.MinDegree {
				break // list is sorted; nothing stronger follows
			}
			if int(c.File) >= fileCount || placed[c.File] {
				continue
			}
			if g.Bytes+sizes(c.File) > cfg.MaxGroupBytes {
				continue
			}
			place(&g, c.File)
		}
		idx := len(plan.Groups)
		for _, f := range g.Files {
			plan.index[f] = idx
		}
		plan.Groups = append(plan.Groups, g)
	}
	return plan, nil
}

// DiskModel quantifies the I/O cost of serving an access sequence under a
// plan: the first read of a group costs a seek plus the whole group's
// transfer (batched read into cache); subsequent accesses to group members
// within the cache window are free; ungrouped or re-fetched files cost a
// seek plus their own transfer.
type DiskModel struct {
	Seek      time.Duration
	Bandwidth float64 // bytes/second
	// CacheWindow is how many distinct group fetches stay buffered.
	CacheWindow int
}

// DefaultDiskModel matches the OSD model elsewhere in the repository.
func DefaultDiskModel() DiskModel {
	return DiskModel{Seek: 5 * time.Millisecond, Bandwidth: 80e6, CacheWindow: 64}
}

// CostResult summarises a simulated replay over the disk model.
type CostResult struct {
	IOs       int
	Time      time.Duration
	BytesRead int64
}

// Cost replays accesses and returns total I/O count and time under the plan.
// A nil plan means every access is an independent random read.
func (d DiskModel) Cost(accesses []trace.FileID, sizes func(trace.FileID) int64, plan *Plan) CostResult {
	var res CostResult
	transfer := func(bytes int64) time.Duration {
		return time.Duration(float64(bytes) / d.Bandwidth * float64(time.Second))
	}
	if plan == nil {
		for _, f := range accesses {
			res.IOs++
			res.BytesRead += sizes(f)
			res.Time += d.Seek + transfer(sizes(f))
		}
		return res
	}
	window := make(map[int]int) // group -> recency stamp
	stamp := 0
	for _, f := range accesses {
		g := plan.GroupOf(f)
		if g < 0 {
			res.IOs++
			res.BytesRead += sizes(f)
			res.Time += d.Seek + transfer(sizes(f))
			continue
		}
		if _, ok := window[g]; ok {
			window[g] = stamp // refresh
			stamp++
			continue // served from the batched buffer
		}
		// Fetch the whole group with one sequential I/O.
		var bytes int64
		for _, member := range plan.Groups[g].Files {
			bytes += sizes(member)
		}
		res.IOs++
		res.BytesRead += bytes
		res.Time += d.Seek + transfer(bytes)
		window[g] = stamp
		stamp++
		if len(window) > d.CacheWindow {
			// Evict the least recently used group.
			lruG, lruS := -1, stamp
			for gid, s := range window {
				if s < lruS {
					lruG, lruS = gid, s
				}
			}
			delete(window, lruG)
		}
	}
	return res
}
