package layout

import (
	"testing"
	"time"

	"farmer/internal/core"
	"farmer/internal/trace"
	"farmer/internal/tracegen"
	"farmer/internal/vsm"
)

func minedModel(t *testing.T, records int) (*core.Model, *trace.Trace) {
	t.Helper()
	tr := tracegen.HP(records).MustGenerate()
	cfg := core.DefaultConfig()
	cfg.Mask = vsm.DefaultMask(true)
	m := core.New(cfg)
	m.FeedTrace(tr)
	return m, tr
}

func fixedSize(sz int64) func(trace.FileID) int64 {
	return func(trace.FileID) int64 { return sz }
}

func TestBuildCoversEveryFile(t *testing.T) {
	m, tr := minedModel(t, 8000)
	plan, err := Build(m, tr.FileCount, fixedSize(128<<10), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for f := 0; f < tr.FileCount; f++ {
		if plan.GroupOf(trace.FileID(f)) < 0 {
			t.Fatalf("file %d unplaced", f)
		}
	}
	// No file in two groups.
	seen := map[trace.FileID]bool{}
	for _, g := range plan.Groups {
		for _, f := range g.Files {
			if seen[f] {
				t.Fatalf("file %d placed twice", f)
			}
			seen[f] = true
		}
	}
}

func TestBuildRespectsBounds(t *testing.T) {
	m, tr := minedModel(t, 8000)
	cfg := Config{MaxGroupBytes: 256 << 10, MinDegree: 0.4, MaxGroupFiles: 3}
	plan, err := Build(m, tr.FileCount, fixedSize(100<<10), cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range plan.Groups {
		if len(g.Files) > cfg.MaxGroupFiles {
			t.Fatalf("group exceeds member bound: %d", len(g.Files))
		}
		if g.Bytes > cfg.MaxGroupBytes {
			t.Fatalf("group exceeds byte bound: %d", g.Bytes)
		}
	}
}

func TestBuildGroupsCorrelatedFiles(t *testing.T) {
	m, tr := minedModel(t, 12000)
	plan, err := Build(m, tr.FileCount, fixedSize(64<<10), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	multi := 0
	for _, g := range plan.Groups {
		if len(g.Files) > 1 {
			multi++
		}
	}
	if multi == 0 {
		t.Fatal("no multi-file groups formed on a correlated workload")
	}
}

func TestBuildValidation(t *testing.T) {
	m, _ := minedModel(t, 1000)
	if _, err := Build(m, 0, fixedSize(1), DefaultConfig()); err == nil {
		t.Fatal("fileCount 0 accepted")
	}
	if _, err := Build(m, 10, fixedSize(1), Config{}); err == nil {
		t.Fatal("zero bounds accepted")
	}
}

// TestLayoutSpeedsUpCorrelatedReplay (E12): replaying the workload's
// demand sequence over the grouped plan must need fewer I/Os and less time
// than ungrouped random reads.
func TestLayoutSpeedsUpCorrelatedReplay(t *testing.T) {
	m, tr := minedModel(t, 12000)
	sizes := fixedSize(128 << 10)
	plan, err := Build(m, tr.FileCount, sizes, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	var accesses []trace.FileID
	for i := range tr.Records {
		accesses = append(accesses, tr.Records[i].File)
	}
	dm := DefaultDiskModel()
	grouped := dm.Cost(accesses, sizes, plan)
	random := dm.Cost(accesses, sizes, nil)
	if grouped.IOs >= random.IOs {
		t.Fatalf("grouped IOs %d >= random IOs %d", grouped.IOs, random.IOs)
	}
	if grouped.Time >= random.Time {
		t.Fatalf("grouped time %v >= random time %v", grouped.Time, random.Time)
	}
}

func TestDiskModelSingleton(t *testing.T) {
	dm := DiskModel{Seek: 10 * time.Millisecond, Bandwidth: 1e6, CacheWindow: 2}
	sizes := fixedSize(1e6) // 1s transfer each
	res := dm.Cost([]trace.FileID{1, 2, 3}, sizes, nil)
	if res.IOs != 3 {
		t.Fatalf("IOs = %d", res.IOs)
	}
	want := 3 * (10*time.Millisecond + time.Second)
	if res.Time != want {
		t.Fatalf("time = %v, want %v", res.Time, want)
	}
}

func TestDiskModelWindowEviction(t *testing.T) {
	// Two groups, window of 1: alternating access pattern re-fetches.
	plan := &Plan{
		Groups: []Group{{Files: []trace.FileID{0}}, {Files: []trace.FileID{1}}},
		index:  map[trace.FileID]int{0: 0, 1: 1},
	}
	dm := DiskModel{Seek: time.Millisecond, Bandwidth: 1e9, CacheWindow: 1}
	sizes := fixedSize(1000)
	res := dm.Cost([]trace.FileID{0, 1, 0, 1}, sizes, plan)
	if res.IOs != 4 {
		t.Fatalf("window eviction broken: IOs = %d, want 4", res.IOs)
	}
	res2 := dm.Cost([]trace.FileID{0, 0, 1, 1}, sizes, plan)
	if res2.IOs != 2 {
		t.Fatalf("window reuse broken: IOs = %d, want 2", res2.IOs)
	}
}

func TestColocated(t *testing.T) {
	plan := &Plan{
		Groups: []Group{{Files: []trace.FileID{0, 1}}, {Files: []trace.FileID{2}}},
		index:  map[trace.FileID]int{0: 0, 1: 0, 2: 1},
	}
	if !plan.Colocated(0, 1) {
		t.Fatal("0 and 1 should be colocated")
	}
	if plan.Colocated(0, 2) {
		t.Fatal("0 and 2 should not be colocated")
	}
	if plan.Colocated(0, 99) {
		t.Fatal("unknown file colocated")
	}
}
