package kvstore

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand/v2"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"testing"
	"testing/quick"
)

func TestBTreeBasic(t *testing.T) {
	bt := newBTree(2) // tiny degree to force splits
	for i := 0; i < 100; i++ {
		bt.Put([]byte(fmt.Sprintf("k%03d", i)), []byte(fmt.Sprintf("v%d", i)))
	}
	if bt.Len() != 100 {
		t.Fatalf("len = %d", bt.Len())
	}
	for i := 0; i < 100; i++ {
		v, ok := bt.Get([]byte(fmt.Sprintf("k%03d", i)))
		if !ok || string(v) != fmt.Sprintf("v%d", i) {
			t.Fatalf("get k%03d = %q ok=%v", i, v, ok)
		}
	}
	if _, ok := bt.Get([]byte("missing")); ok {
		t.Fatal("phantom key")
	}
}

func TestBTreeOverwrite(t *testing.T) {
	bt := newBTree(2)
	bt.Put([]byte("a"), []byte("1"))
	if bt.Put([]byte("a"), []byte("2")) {
		t.Fatal("overwrite reported as insert")
	}
	if bt.Len() != 1 {
		t.Fatalf("len = %d", bt.Len())
	}
	v, _ := bt.Get([]byte("a"))
	if string(v) != "2" {
		t.Fatalf("value = %q", v)
	}
}

func TestBTreeDelete(t *testing.T) {
	bt := newBTree(2)
	keys := []string{}
	for i := 0; i < 200; i++ {
		k := fmt.Sprintf("k%03d", i)
		keys = append(keys, k)
		bt.Put([]byte(k), []byte("v"))
	}
	rng := rand.New(rand.NewPCG(1, 1))
	rng.Shuffle(len(keys), func(i, j int) { keys[i], keys[j] = keys[j], keys[i] })
	for i, k := range keys {
		if !bt.Delete([]byte(k)) {
			t.Fatalf("delete %q failed", k)
		}
		if bt.Delete([]byte(k)) {
			t.Fatalf("double delete %q succeeded", k)
		}
		if bt.Len() != len(keys)-i-1 {
			t.Fatalf("len = %d after %d deletes", bt.Len(), i+1)
		}
		// Remaining keys stay reachable.
		if i%37 == 0 {
			for _, rest := range keys[i+1:] {
				if _, ok := bt.Get([]byte(rest)); !ok {
					t.Fatalf("key %q lost after deleting %q", rest, k)
				}
			}
		}
	}
}

func TestBTreeAscendRange(t *testing.T) {
	bt := newBTree(2)
	for i := 0; i < 50; i++ {
		bt.Put([]byte(fmt.Sprintf("k%02d", i)), nil)
	}
	var got []string
	bt.Ascend([]byte("k10"), []byte("k15"), func(k, v []byte) bool {
		got = append(got, string(k))
		return true
	})
	want := []string{"k10", "k11", "k12", "k13", "k14"}
	if len(got) != len(want) {
		t.Fatalf("range scan = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("range scan = %v", got)
		}
	}
}

func TestBTreeAscendEarlyStop(t *testing.T) {
	bt := newBTree(2)
	for i := 0; i < 50; i++ {
		bt.Put([]byte(fmt.Sprintf("k%02d", i)), nil)
	}
	n := 0
	bt.Ascend(nil, nil, func(k, v []byte) bool {
		n++
		return n < 7
	})
	if n != 7 {
		t.Fatalf("early stop visited %d", n)
	}
}

// Property: the tree agrees with a reference map under random puts/deletes,
// and Ascend yields sorted keys.
func TestBTreeMatchesMapProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 9))
		bt := newBTree(2)
		ref := map[string]string{}
		for i := 0; i < 400; i++ {
			k := fmt.Sprintf("k%02d", rng.IntN(60))
			switch rng.IntN(3) {
			case 0, 1:
				v := fmt.Sprintf("v%d", i)
				bt.Put([]byte(k), []byte(v))
				ref[k] = v
			case 2:
				bt.Delete([]byte(k))
				delete(ref, k)
			}
		}
		if bt.Len() != len(ref) {
			return false
		}
		for k, v := range ref {
			got, ok := bt.Get([]byte(k))
			if !ok || string(got) != v {
				return false
			}
		}
		var keys []string
		bt.Ascend(nil, nil, func(k, v []byte) bool {
			keys = append(keys, string(k))
			return true
		})
		return sort.StringsAreSorted(keys) && len(keys) == len(ref)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestStoreInMemory(t *testing.T) {
	s, err := Open("")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Put([]byte("a"), []byte("1")); err != nil {
		t.Fatal(err)
	}
	v, ok := s.Get([]byte("a"))
	if !ok || string(v) != "1" {
		t.Fatalf("get = %q ok=%v", v, ok)
	}
	if err := s.Put([]byte(""), nil); err == nil {
		t.Fatal("empty key accepted")
	}
	if err := s.Delete([]byte("a")); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get([]byte("a")); ok {
		t.Fatal("deleted key visible")
	}
}

func TestStoreGetReturnsCopy(t *testing.T) {
	s, _ := Open("")
	defer s.Close()
	s.Put([]byte("k"), []byte("abc"))
	v, _ := s.Get([]byte("k"))
	v[0] = 'X'
	v2, _ := s.Get([]byte("k"))
	if string(v2) != "abc" {
		t.Fatal("Get aliases internal storage")
	}
}

func TestStoreWALRecovery(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "meta.wal")
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if err := s.Put([]byte(fmt.Sprintf("k%02d", i)), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	s.Delete([]byte("k10"))
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Len() != 49 {
		t.Fatalf("recovered %d keys, want 49", s2.Len())
	}
	if _, ok := s2.Get([]byte("k10")); ok {
		t.Fatal("deleted key resurrected")
	}
	v, ok := s2.Get([]byte("k42"))
	if !ok || string(v) != "v42" {
		t.Fatalf("recovered k42 = %q ok=%v", v, ok)
	}
}

func TestStoreRecoveryTornTail(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "meta.wal")
	s, _ := Open(path)
	s.Put([]byte("good"), []byte("1"))
	s.Close()
	// Append garbage simulating a torn write.
	f, _ := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	f.Write([]byte{0xde, 0xad, 0xbe})
	f.Close()

	if _, err := Open(path); !errors.Is(err, ErrCorruptWAL) {
		t.Fatalf("torn tail must refuse to open, got err=%v", err)
	}
	// Repair cuts the torn suffix; the store then opens with the intact
	// prefix.
	kept, dropped, err := Repair(path)
	if err != nil {
		t.Fatal(err)
	}
	if kept != 1 || dropped != 3 {
		t.Fatalf("repair kept %d records, dropped %d bytes; want 1, 3", kept, dropped)
	}
	s2, err := Open(path)
	if err != nil {
		t.Fatalf("open after repair: %v", err)
	}
	defer s2.Close()
	if _, ok := s2.Get([]byte("good")); !ok {
		t.Fatal("intact record lost")
	}
}

func TestStoreRecoveryCorruptCRC(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "meta.wal")
	s, _ := Open(path)
	s.Put([]byte("a"), []byte("1"))
	s.Put([]byte("b"), []byte("2"))
	s.Close()
	// Flip a byte in the last record's payload.
	data, _ := os.ReadFile(path)
	data[len(data)-1] ^= 0xFF
	os.WriteFile(path, data, 0o644)

	if _, err := Open(path); !errors.Is(err, ErrCorruptWAL) {
		t.Fatalf("bit flip must refuse to open, got err=%v", err)
	}
	if kept, _, err := Repair(path); err != nil || kept != 1 {
		t.Fatalf("repair kept %d (err %v), want the 1 intact record", kept, err)
	}
	s2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if _, ok := s2.Get([]byte("a")); !ok {
		t.Fatal("first record lost")
	}
	if _, ok := s2.Get([]byte("b")); ok {
		t.Fatal("corrupt record applied")
	}
}

// openFDs counts this process's open file descriptors.
func openFDs(t *testing.T) int {
	t.Helper()
	ents, err := os.ReadDir("/proc/self/fd")
	if err != nil {
		t.Skipf("cannot enumerate fds: %v", err)
	}
	return len(ents)
}

// TestStoreOpenCorruptNoFDLeak: a refused Open must not leave the WAL file
// descriptor behind, however many times it is retried.
func TestStoreOpenCorruptNoFDLeak(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "meta.wal")
	s, _ := Open(path)
	s.Put([]byte("a"), []byte("1"))
	s.Close()
	data, _ := os.ReadFile(path)
	data[len(data)-1] ^= 0xFF
	os.WriteFile(path, data, 0o644)

	before := openFDs(t)
	for i := 0; i < 64; i++ {
		if _, err := Open(path); err == nil {
			t.Fatal("corrupt store opened")
		}
	}
	if after := openFDs(t); after > before {
		t.Fatalf("fd leak: %d open before, %d after 64 failed opens", before, after)
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	s, _ := Open("")
	defer s.Close()
	for i := 0; i < 30; i++ {
		s.Put([]byte(fmt.Sprintf("k%02d", i)), []byte("v"))
	}
	var buf bytes.Buffer
	if err := s.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	s2, _ := Open("")
	defer s2.Close()
	if err := s2.LoadSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	if s2.Len() != 30 {
		t.Fatalf("loaded %d keys", s2.Len())
	}
}

func TestStoreScan(t *testing.T) {
	s, _ := Open("")
	defer s.Close()
	for i := 0; i < 10; i++ {
		s.Put([]byte(fmt.Sprintf("k%d", i)), nil)
	}
	n := 0
	s.Scan([]byte("k3"), []byte("k7"), func(k, v []byte) bool { n++; return true })
	if n != 4 {
		t.Fatalf("scan visited %d, want 4", n)
	}
}

func TestStoreConcurrent(t *testing.T) {
	s, _ := Open("")
	defer s.Close()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(uint64(id), 5))
			for i := 0; i < 300; i++ {
				k := []byte(fmt.Sprintf("k%d", rng.IntN(64)))
				switch rng.IntN(3) {
				case 0:
					s.Put(k, []byte("v"))
				case 1:
					s.Get(k)
				case 2:
					s.Delete(k)
				}
			}
		}(w)
	}
	wg.Wait()
}

// TestRecoveryRandomCorruptionProperty: flip a random byte anywhere in the
// WAL; Open must always detect it (never half-load silently), and after
// Repair the store must open with an intact prefix of the committed puts.
func TestRecoveryRandomCorruptionProperty(t *testing.T) {
	f := func(seed uint64) bool {
		dir := t.TempDir()
		path := filepath.Join(dir, "meta.wal")
		s, err := Open(path)
		if err != nil {
			return false
		}
		for i := 0; i < 20; i++ {
			if err := s.Put([]byte(fmt.Sprintf("k%02d", i)), []byte{byte(i)}); err != nil {
				return false
			}
		}
		s.Close()
		data, err := os.ReadFile(path)
		if err != nil {
			return false
		}
		rng := rand.New(rand.NewPCG(seed, 11))
		pos := rng.IntN(len(data))
		data[pos] ^= byte(1 + rng.IntN(255))
		if err := os.WriteFile(path, data, 0o644); err != nil {
			return false
		}
		if _, err := Open(path); !errors.Is(err, ErrCorruptWAL) {
			return false // any single flip must be detected and refused
		}
		if _, _, err := Repair(path); err != nil {
			return false
		}
		s2, err := Open(path)
		if err != nil {
			return false
		}
		defer s2.Close()
		// Repaired state must be a prefix of the committed puts: if k exists
		// its value must be intact.
		for i := 0; i < 20; i++ {
			v, ok := s2.Get([]byte(fmt.Sprintf("k%02d", i)))
			if ok && (len(v) != 1 || v[0] != byte(i)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestCompactBoundsWALGrowth: repeated full-state rewrites grow the log by
// one copy per round; Compact shrinks it back to ~one copy, preserves every
// live key, stays openable, and keeps accepting durable writes.
func TestCompactBoundsWALGrowth(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "meta.wal")
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	val := bytes.Repeat([]byte("v"), 128)
	for round := 0; round < 10; round++ {
		for i := 0; i < 50; i++ {
			if err := s.Put([]byte(fmt.Sprintf("k%02d", i)), val); err != nil {
				t.Fatal(err)
			}
		}
	}
	grown, _ := os.Stat(path)
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	compacted, _ := os.Stat(path)
	if compacted.Size() >= grown.Size()/5 {
		t.Fatalf("compaction barely helped: %d -> %d bytes", grown.Size(), compacted.Size())
	}
	// Writes after compaction must still be durable.
	if err := s.Put([]byte("post"), []byte("1")); err != nil {
		t.Fatal(err)
	}
	s.Close()

	s2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Len() != 51 {
		t.Fatalf("recovered %d keys after compact, want 51", s2.Len())
	}
	if v, ok := s2.Get([]byte("k07")); !ok || !bytes.Equal(v, val) {
		t.Fatal("live key lost or corrupted by compaction")
	}
	if _, ok := s2.Get([]byte("post")); !ok {
		t.Fatal("post-compaction write lost")
	}
}

// TestCompactInMemoryNoop: Compact on a volatile store is a no-op.
func TestCompactInMemoryNoop(t *testing.T) {
	s, _ := Open("")
	defer s.Close()
	s.Put([]byte("a"), []byte("1"))
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get([]byte("a")); !ok {
		t.Fatal("key lost")
	}
}

// TestCompactFailureRefusesSilentVolatility: if compaction cannot reattach
// a WAL, the store must refuse later mutations rather than silently
// becoming in-memory (a checkpointing daemon would believe its saves are
// durable).
func TestCompactFailureRefusesSilentVolatility(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "meta.wal")
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.Put([]byte("a"), []byte("1"))
	// Simulate the terminal failure mode directly: WAL lost, not
	// reattachable.
	s.mu.Lock()
	s.wal.close()
	s.wal = nil
	s.walErr = errors.New("simulated reattach failure")
	s.mu.Unlock()

	if err := s.Put([]byte("b"), []byte("2")); err == nil {
		t.Fatal("Put succeeded with no durable log")
	}
	if err := s.Delete([]byte("a")); err == nil {
		t.Fatal("Delete succeeded with no durable log")
	}
	if err := s.Compact(); err == nil {
		t.Fatal("Compact reported success with no durable log")
	}
}

// TestCompactSurvivesReopen: after Compact the store must recover from the
// renamed log alone — the path a crash immediately after compaction takes.
// (The parent-directory fsync Compact performs cannot be asserted from user
// space; this pins the on-disk layout the sync makes durable.)
func TestCompactSurvivesReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "compact.wal")
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		k := []byte{byte(i)}
		if err := s.Put(k, []byte("v1")); err != nil {
			t.Fatal(err)
		}
		if err := s.Put(k, []byte("v2")); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	// A compacted log holds exactly one record per live key, and no temp
	// file survives.
	if _, err := os.Stat(path + ".compact"); !os.IsNotExist(err) {
		t.Fatalf("temp compaction file left behind: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Len() != 100 {
		t.Fatalf("recovered %d keys, want 100", s2.Len())
	}
	if v, ok := s2.Get([]byte{7}); !ok || string(v) != "v2" {
		t.Fatalf("key 7 = %q, %v", v, ok)
	}
}
