package kvstore

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
)

// Store is a durable ordered key-value store: an in-memory B-tree fronted by
// a CRC-framed write-ahead log. It is safe for concurrent use.
type Store struct {
	mu     sync.RWMutex
	tree   *btree
	wal    *walWriter // nil for a purely in-memory store
	walErr error      // set when the WAL was lost (failed compaction); mutations refuse
	path   string
	stats  WriteStats
}

// WriteStats counts the mutations a store has accepted — Puts, Deletes and
// the WAL frame bytes they encode (counted even for in-memory stores, where
// no log is written). Checkpoint code uses the deltas between readings as
// the observable cost of a save; maintenance rewrites (Compact,
// LoadSnapshot) are not counted.
type WriteStats struct {
	Puts    int64
	Deletes int64
	Bytes   int64
}

// WriteStats returns the cumulative mutation counters.
func (s *Store) WriteStats() WriteStats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.stats
}

// ErrCorruptWAL reports that recovery met a frame whose CRC, structure or
// length does not check out — a truncated tail or a bit flip. Open refuses
// the store rather than silently loading the prefix; Repair truncates the
// log at the last intact record when the operator decides that loss is
// acceptable.
var ErrCorruptWAL = errors.New("kvstore: corrupt or truncated wal")

// Open creates or recovers a store whose WAL lives at path. An empty path
// yields a volatile in-memory store. A WAL that fails CRC or framing checks
// anywhere — truncated tail included — returns an error wrapping
// ErrCorruptWAL and leaves no file descriptor open; it never half-loads.
func Open(path string) (*Store, error) {
	s := &Store{tree: newBTree(32), path: path}
	if path == "" {
		return s, nil
	}
	if err := s.recover(); err != nil {
		return nil, err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("kvstore: opening wal: %w", err)
	}
	s.wal = newWALWriter(f)
	return s, nil
}

func (s *Store) recover() error {
	// O_RDWR: recovery may need to truncate a torn batch tail (a crash
	// mid-checkpoint) so the log stays well-formed for future appends.
	f, err := os.OpenFile(s.path, os.O_RDWR, 0)
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("kvstore: recovering: %w", err)
	}
	defer f.Close()
	r := newWALReader(f)
	apply := func(rec walRecord) {
		switch rec.op {
		case walPut:
			s.tree.Put(rec.key, rec.value)
		case walDelete:
			s.tree.Delete(rec.key)
		}
	}
	// A walBegin opens a batch: its records are buffered and only applied
	// when the walCommit marker arrives. A log that ends inside a batch —
	// clean EOF or a torn record — is a crash mid-atomic-checkpoint: the
	// whole batch is discarded and the file truncated back to just before
	// the walBegin, leaving the pre-batch state intact.
	var (
		inBatch  bool
		batchOff int64
		batch    []walRecord
	)
	dropTorn := func() error {
		if err := f.Truncate(batchOff); err != nil {
			return fmt.Errorf("kvstore: dropping torn batch: %w", err)
		}
		return f.Sync()
	}
	for {
		prevOff := r.goodOff
		rec, err := r.next()
		if errors.Is(err, io.EOF) {
			if inBatch {
				return dropTorn()
			}
			return nil
		}
		if errors.Is(err, errCorrupt) {
			if inBatch {
				return dropTorn()
			}
			return fmt.Errorf("kvstore: %s: record %d at offset %d: %w",
				s.path, r.records, r.goodOff, ErrCorruptWAL)
		}
		if err != nil {
			return err
		}
		switch rec.op {
		case walBegin:
			if inBatch {
				return fmt.Errorf("kvstore: %s: nested batch begin at offset %d: %w",
					s.path, prevOff, ErrCorruptWAL)
			}
			inBatch, batchOff, batch = true, prevOff, batch[:0]
		case walCommit:
			if !inBatch {
				return fmt.Errorf("kvstore: %s: stray batch commit at offset %d: %w",
					s.path, prevOff, ErrCorruptWAL)
			}
			for _, br := range batch {
				apply(br)
			}
			inBatch, batch = false, batch[:0]
		default:
			if inBatch {
				batch = append(batch, rec)
			} else {
				apply(rec)
			}
		}
	}
}

// Repair truncates the WAL at path after its last intact record, dropping
// the corrupt or torn suffix Open refuses to load. It returns how many
// records survive and how many bytes were cut. Repair of an intact (or
// absent) WAL is a no-op.
func Repair(path string) (kept int, dropped int64, err error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if errors.Is(err, os.ErrNotExist) {
		return 0, 0, nil
	}
	if err != nil {
		return 0, 0, fmt.Errorf("kvstore: repairing: %w", err)
	}
	defer f.Close()
	size, err := f.Seek(0, io.SeekEnd)
	if err != nil {
		return 0, 0, err
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return 0, 0, err
	}
	r := newWALReader(f)
	for {
		_, err := r.next()
		if errors.Is(err, io.EOF) {
			return r.records, 0, nil
		}
		if errors.Is(err, errCorrupt) {
			if err := f.Truncate(r.goodOff); err != nil {
				return r.records, 0, fmt.Errorf("kvstore: truncating wal: %w", err)
			}
			return r.records, size - r.goodOff, f.Sync()
		}
		if err != nil {
			return r.records, 0, err
		}
	}
}

// Get returns a copy of the value for key.
func (s *Store) Get(key []byte) ([]byte, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	v, ok := s.tree.Get(key)
	if !ok {
		return nil, false
	}
	return append([]byte(nil), v...), true
}

// Put stores key=value durably (WAL first, then the tree).
func (s *Store) Put(key, value []byte) error {
	if len(key) == 0 {
		return errors.New("kvstore: empty key")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.walErr; err != nil {
		// The durable log is gone (failed compaction); refusing beats
		// silently succeeding in memory only.
		return fmt.Errorf("kvstore: wal unavailable: %w", err)
	}
	if s.wal != nil {
		if err := s.wal.append(walRecord{op: walPut, key: key, value: value}); err != nil {
			return err
		}
	}
	s.tree.Put(key, append([]byte(nil), value...))
	s.stats.Puts++
	s.stats.Bytes += walFrameSize(len(key), len(value))
	return nil
}

// Delete removes key. Deleting an absent key is not an error.
func (s *Store) Delete(key []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.walErr; err != nil {
		return fmt.Errorf("kvstore: wal unavailable: %w", err)
	}
	if s.wal != nil {
		if err := s.wal.append(walRecord{op: walDelete, key: key}); err != nil {
			return err
		}
	}
	s.tree.Delete(key)
	s.stats.Deletes++
	s.stats.Bytes += walFrameSize(len(key), 0)
	return nil
}

// Batch stages puts and deletes that commit atomically. The staged records
// are framed between walBegin/walCommit markers and applied to the tree only
// after the commit marker is written, so recovery after a crash mid-batch
// discards the half-written batch wholesale (a checkpoint is either entirely
// present or entirely absent — never torn). Keys and values are copied when
// staged; callers may reuse their buffers.
type Batch struct {
	recs []walRecord
	st   WriteStats
}

// Put stages key=value.
func (b *Batch) Put(key, value []byte) error {
	if len(key) == 0 {
		return errors.New("kvstore: empty key")
	}
	b.recs = append(b.recs, walRecord{
		op:    walPut,
		key:   append([]byte(nil), key...),
		value: append([]byte(nil), value...),
	})
	b.st.Puts++
	b.st.Bytes += walFrameSize(len(key), len(value))
	return nil
}

// Delete stages removal of key. Deleting an absent key is not an error.
func (b *Batch) Delete(key []byte) error {
	if len(key) == 0 {
		return errors.New("kvstore: empty key")
	}
	b.recs = append(b.recs, walRecord{op: walDelete, key: append([]byte(nil), key...)})
	b.st.Deletes++
	b.st.Bytes += walFrameSize(len(key), 0)
	return nil
}

// Len reports the number of staged records.
func (b *Batch) Len() int { return len(b.recs) }

// Batch runs fn to stage a set of mutations, then commits them atomically:
// one walBegin frame, the staged records, one walCommit frame, a single
// flush, and only then the tree application. fn runs WITHOUT the store lock
// (so it may read the model under the model's own locks); an error from fn
// abandons the batch untouched. A write error mid-commit poisons the WAL
// (walErr) — a later append could otherwise land inside the unterminated
// batch and be silently discarded by recovery.
func (s *Store) Batch(fn func(*Batch) error) error {
	var b Batch
	if err := fn(&b); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.walErr; err != nil {
		return fmt.Errorf("kvstore: wal unavailable: %w", err)
	}
	if s.wal != nil {
		werr := s.wal.stage(walRecord{op: walBegin})
		for i := 0; werr == nil && i < len(b.recs); i++ {
			werr = s.wal.stage(b.recs[i])
		}
		if werr == nil {
			werr = s.wal.stage(walRecord{op: walCommit})
		}
		if werr == nil {
			werr = s.wal.flush()
		}
		if werr != nil {
			s.walErr = werr
			return fmt.Errorf("kvstore: batch commit: %w", werr)
		}
	}
	for _, rec := range b.recs {
		switch rec.op {
		case walPut:
			s.tree.Put(rec.key, rec.value)
		case walDelete:
			s.tree.Delete(rec.key)
		}
	}
	s.stats.Puts += b.st.Puts
	s.stats.Deletes += b.st.Deletes
	s.stats.Bytes += b.st.Bytes
	return nil
}

// Len reports the number of live keys.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.tree.Len()
}

// Scan visits keys in [from, to) in order; nil bounds are open. fn must not
// mutate the store.
func (s *Store) Scan(from, to []byte, fn func(key, value []byte) bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	s.tree.Ascend(from, to, fn)
}

// Snapshot writes a point-in-time copy of the store to w (length-prefixed
// key/value pairs, CRC-framed like the WAL).
func (s *Store) Snapshot(w io.Writer) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	sw := newWALWriter(nopCloser{w})
	var err error
	s.tree.Ascend(nil, nil, func(k, v []byte) bool {
		err = sw.append(walRecord{op: walPut, key: k, value: v})
		return err == nil
	})
	if err != nil {
		return err
	}
	return sw.flush()
}

// LoadSnapshot replaces the store contents with a snapshot produced by
// Snapshot. The WAL (if any) is appended with the loaded state so recovery
// stays consistent.
func (s *Store) LoadSnapshot(r io.Reader) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	tree := newBTree(32)
	wr := newWALReader(r)
	for {
		rec, err := wr.next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return err
		}
		if rec.op != walPut {
			return fmt.Errorf("kvstore: snapshot contains op %d: %w", rec.op, ErrCorruptWAL)
		}
		tree.Put(rec.key, rec.value)
		if s.wal != nil {
			if err := s.wal.append(rec); err != nil {
				return err
			}
		}
	}
	s.tree = tree
	return nil
}

// Compact rewrites the WAL as one Put per live key, atomically replacing
// the log file (write to a temp file, fsync, rename). A store that is
// checkpointed repeatedly — every save appends full state — stays bounded
// at roughly one copy of the live data instead of growing by one copy per
// checkpoint. No-op for an in-memory store. Crash-safe: an interrupted
// compaction leaves the original log untouched (plus a harmless temp file).
func (s *Store) Compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.path == "" {
		return nil
	}
	if err := s.walErr; err != nil {
		return fmt.Errorf("kvstore: wal unavailable: %w", err)
	}
	if s.wal == nil {
		return errors.New("kvstore: compacting a closed store")
	}
	tmp := s.path + ".compact"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("kvstore: compacting: %w", err)
	}
	w := newWALWriter(f)
	var werr error
	s.tree.Ascend(nil, nil, func(k, v []byte) bool {
		werr = w.append(walRecord{op: walPut, key: k, value: v})
		return werr == nil
	})
	if werr == nil {
		werr = w.flush()
	}
	if werr == nil {
		werr = f.Sync()
	}
	if err := f.Close(); werr == nil {
		werr = err
	}
	if werr != nil {
		os.Remove(tmp)
		return fmt.Errorf("kvstore: compacting: %w", werr)
	}
	if err := s.wal.close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("kvstore: compacting: closing old wal: %w", err)
	}
	s.wal = nil // old handle is gone; restored below or the store refuses writes
	if err := os.Rename(tmp, s.path); err != nil {
		os.Remove(tmp)
		// The old log still exists on disk; reattach to it so the store
		// stays durable despite the failed swap.
		return s.reattachWAL(fmt.Errorf("kvstore: compacting: %w", err))
	}
	// Crash-consistency rule: rename(2) only promises the swap is durable
	// once the PARENT DIRECTORY is synced — fsyncing the file covers its
	// contents, not the directory entry pointing at it. Without this, a
	// crash right after compaction can resurrect the old (pre-compaction)
	// WAL, silently undoing every checkpoint the compaction folded in.
	if err := syncDir(s.path); err != nil {
		return s.reattachWAL(fmt.Errorf("kvstore: compacting: syncing directory: %w", err))
	}
	return s.reattachWAL(nil)
}

// syncDir fsyncs the directory containing path.
func syncDir(path string) error {
	d, err := os.Open(filepath.Dir(path))
	if err != nil {
		return err
	}
	serr := d.Sync()
	if cerr := d.Close(); serr == nil {
		serr = cerr
	}
	return serr
}

// reattachWAL reopens the append handle on s.path after Compact dropped the
// old one, holding s.mu. On failure the store marks its WAL lost (walErr):
// every later mutation refuses rather than silently succeeding in memory —
// a checkpointing daemon must never believe writes are durable when they
// are not. cause, if non-nil, is the error that got us here and wins.
func (s *Store) reattachWAL(cause error) error {
	f, err := os.OpenFile(s.path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		s.walErr = err
		if cause != nil {
			return cause
		}
		return fmt.Errorf("kvstore: compacting: reopening wal: %w", err)
	}
	s.wal = newWALWriter(f)
	return cause
}

// Close flushes and closes the WAL.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.wal == nil {
		return nil
	}
	err := s.wal.close()
	s.wal = nil
	return err
}

// ------------------------------------------------------------------- WAL

type walOp uint8

const (
	walPut walOp = iota + 1
	walDelete
	// walBegin/walCommit bracket an atomic batch (empty key and value).
	// Recovery buffers the records between them and applies the batch only
	// when the commit marker is intact; an unterminated batch is truncated
	// away. Logs written before these ops existed contain neither and
	// recover exactly as before.
	walBegin
	walCommit
)

// walFrameSize is the on-disk size of one WAL frame: u32 crc + u8 op +
// u32 klen + u32 vlen + key + value.
func walFrameSize(klen, vlen int) int64 { return int64(4 + 9 + klen + vlen) }

type walRecord struct {
	op    walOp
	key   []byte
	value []byte
}

// errCorrupt is the reader-level corruption marker; it wraps ErrCorruptWAL
// so every path that surfaces it (Open, Repair, LoadSnapshot) matches
// errors.Is(err, ErrCorruptWAL).
var errCorrupt = fmt.Errorf("%w record", ErrCorruptWAL)

// Frame: u32 crc (of everything after), u8 op, u32 klen, u32 vlen, key, value.
type walWriter struct {
	w  io.WriteCloser
	bw *bufio.Writer
}

type nopCloser struct{ io.Writer }

func (nopCloser) Close() error { return nil }

func newWALWriter(w io.WriteCloser) *walWriter {
	return &walWriter{w: w, bw: bufio.NewWriter(w)}
}

// stage writes one frame into the buffered writer without flushing — the
// building block batch commits use to pay one flush for many records.
func (w *walWriter) stage(rec walRecord) error {
	payload := make([]byte, 1+4+4+len(rec.key)+len(rec.value))
	payload[0] = byte(rec.op)
	binary.LittleEndian.PutUint32(payload[1:5], uint32(len(rec.key)))
	binary.LittleEndian.PutUint32(payload[5:9], uint32(len(rec.value)))
	copy(payload[9:], rec.key)
	copy(payload[9+len(rec.key):], rec.value)
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], crc32.ChecksumIEEE(payload))
	if _, err := w.bw.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.bw.Write(payload)
	return err
}

func (w *walWriter) append(rec walRecord) error {
	if err := w.stage(rec); err != nil {
		return err
	}
	return w.bw.Flush()
}

func (w *walWriter) flush() error { return w.bw.Flush() }

func (w *walWriter) close() error {
	if err := w.bw.Flush(); err != nil {
		w.w.Close()
		return err
	}
	return w.w.Close()
}

type walReader struct {
	br      *bufio.Reader
	goodOff int64 // offset just past the last fully verified record
	records int   // records verified so far
}

func newWALReader(r io.Reader) *walReader { return &walReader{br: bufio.NewReader(r)} }

func (r *walReader) next() (walRecord, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r.br, hdr[:]); err != nil {
		if errors.Is(err, io.ErrUnexpectedEOF) {
			return walRecord{}, errCorrupt
		}
		return walRecord{}, err
	}
	wantCRC := binary.LittleEndian.Uint32(hdr[:])
	var meta [9]byte
	if _, err := io.ReadFull(r.br, meta[:]); err != nil {
		return walRecord{}, errCorrupt
	}
	klen := binary.LittleEndian.Uint32(meta[1:5])
	vlen := binary.LittleEndian.Uint32(meta[5:9])
	if klen > 1<<24 || vlen > 1<<28 {
		return walRecord{}, errCorrupt
	}
	payload := make([]byte, 9+klen+vlen)
	copy(payload, meta[:])
	if _, err := io.ReadFull(r.br, payload[9:]); err != nil {
		return walRecord{}, errCorrupt
	}
	if crc32.ChecksumIEEE(payload) != wantCRC {
		return walRecord{}, errCorrupt
	}
	rec := walRecord{
		op:    walOp(payload[0]),
		key:   append([]byte(nil), payload[9:9+klen]...),
		value: append([]byte(nil), payload[9+klen:]...),
	}
	switch rec.op {
	case walPut, walDelete:
	case walBegin, walCommit:
		if klen != 0 || vlen != 0 {
			return walRecord{}, errCorrupt
		}
	default:
		return walRecord{}, errCorrupt
	}
	r.goodOff += int64(4 + len(payload))
	r.records++
	return rec, nil
}
