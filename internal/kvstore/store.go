package kvstore

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
)

// Store is a durable ordered key-value store: an in-memory B-tree fronted by
// a CRC-framed write-ahead log. It is safe for concurrent use.
type Store struct {
	mu   sync.RWMutex
	tree *btree
	wal  *walWriter // nil for a purely in-memory store
	path string
}

// Open creates or recovers a store whose WAL lives at path. An empty path
// yields a volatile in-memory store.
func Open(path string) (*Store, error) {
	s := &Store{tree: newBTree(32), path: path}
	if path == "" {
		return s, nil
	}
	if err := s.recover(); err != nil {
		return nil, err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("kvstore: opening wal: %w", err)
	}
	s.wal = newWALWriter(f)
	return s, nil
}

func (s *Store) recover() error {
	f, err := os.Open(s.path)
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("kvstore: recovering: %w", err)
	}
	defer f.Close()
	r := newWALReader(f)
	for {
		rec, err := r.next()
		if errors.Is(err, io.EOF) {
			return nil
		}
		if errors.Is(err, errCorrupt) {
			// Torn tail: everything before it already applied; stop here.
			return nil
		}
		if err != nil {
			return err
		}
		switch rec.op {
		case walPut:
			s.tree.Put(rec.key, rec.value)
		case walDelete:
			s.tree.Delete(rec.key)
		}
	}
}

// Get returns a copy of the value for key.
func (s *Store) Get(key []byte) ([]byte, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	v, ok := s.tree.Get(key)
	if !ok {
		return nil, false
	}
	return append([]byte(nil), v...), true
}

// Put stores key=value durably (WAL first, then the tree).
func (s *Store) Put(key, value []byte) error {
	if len(key) == 0 {
		return errors.New("kvstore: empty key")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.wal != nil {
		if err := s.wal.append(walRecord{op: walPut, key: key, value: value}); err != nil {
			return err
		}
	}
	s.tree.Put(key, append([]byte(nil), value...))
	return nil
}

// Delete removes key. Deleting an absent key is not an error.
func (s *Store) Delete(key []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.wal != nil {
		if err := s.wal.append(walRecord{op: walDelete, key: key}); err != nil {
			return err
		}
	}
	s.tree.Delete(key)
	return nil
}

// Len reports the number of live keys.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.tree.Len()
}

// Scan visits keys in [from, to) in order; nil bounds are open. fn must not
// mutate the store.
func (s *Store) Scan(from, to []byte, fn func(key, value []byte) bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	s.tree.Ascend(from, to, fn)
}

// Snapshot writes a point-in-time copy of the store to w (length-prefixed
// key/value pairs, CRC-framed like the WAL).
func (s *Store) Snapshot(w io.Writer) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	sw := newWALWriter(nopCloser{w})
	var err error
	s.tree.Ascend(nil, nil, func(k, v []byte) bool {
		err = sw.append(walRecord{op: walPut, key: k, value: v})
		return err == nil
	})
	if err != nil {
		return err
	}
	return sw.flush()
}

// LoadSnapshot replaces the store contents with a snapshot produced by
// Snapshot. The WAL (if any) is appended with the loaded state so recovery
// stays consistent.
func (s *Store) LoadSnapshot(r io.Reader) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	tree := newBTree(32)
	wr := newWALReader(r)
	for {
		rec, err := wr.next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return err
		}
		tree.Put(rec.key, rec.value)
		if s.wal != nil {
			if err := s.wal.append(rec); err != nil {
				return err
			}
		}
	}
	s.tree = tree
	return nil
}

// Close flushes and closes the WAL.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.wal == nil {
		return nil
	}
	err := s.wal.close()
	s.wal = nil
	return err
}

// ------------------------------------------------------------------- WAL

type walOp uint8

const (
	walPut walOp = iota + 1
	walDelete
)

type walRecord struct {
	op    walOp
	key   []byte
	value []byte
}

var errCorrupt = errors.New("kvstore: corrupt wal record")

// Frame: u32 crc (of everything after), u8 op, u32 klen, u32 vlen, key, value.
type walWriter struct {
	w  io.WriteCloser
	bw *bufio.Writer
}

type nopCloser struct{ io.Writer }

func (nopCloser) Close() error { return nil }

func newWALWriter(w io.WriteCloser) *walWriter {
	return &walWriter{w: w, bw: bufio.NewWriter(w)}
}

func (w *walWriter) append(rec walRecord) error {
	payload := make([]byte, 1+4+4+len(rec.key)+len(rec.value))
	payload[0] = byte(rec.op)
	binary.LittleEndian.PutUint32(payload[1:5], uint32(len(rec.key)))
	binary.LittleEndian.PutUint32(payload[5:9], uint32(len(rec.value)))
	copy(payload[9:], rec.key)
	copy(payload[9+len(rec.key):], rec.value)
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], crc32.ChecksumIEEE(payload))
	if _, err := w.bw.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := w.bw.Write(payload); err != nil {
		return err
	}
	return w.bw.Flush()
}

func (w *walWriter) flush() error { return w.bw.Flush() }

func (w *walWriter) close() error {
	if err := w.bw.Flush(); err != nil {
		w.w.Close()
		return err
	}
	return w.w.Close()
}

type walReader struct {
	br *bufio.Reader
}

func newWALReader(r io.Reader) *walReader { return &walReader{br: bufio.NewReader(r)} }

func (r *walReader) next() (walRecord, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r.br, hdr[:]); err != nil {
		if errors.Is(err, io.ErrUnexpectedEOF) {
			return walRecord{}, errCorrupt
		}
		return walRecord{}, err
	}
	wantCRC := binary.LittleEndian.Uint32(hdr[:])
	var meta [9]byte
	if _, err := io.ReadFull(r.br, meta[:]); err != nil {
		return walRecord{}, errCorrupt
	}
	klen := binary.LittleEndian.Uint32(meta[1:5])
	vlen := binary.LittleEndian.Uint32(meta[5:9])
	if klen > 1<<24 || vlen > 1<<28 {
		return walRecord{}, errCorrupt
	}
	payload := make([]byte, 9+klen+vlen)
	copy(payload, meta[:])
	if _, err := io.ReadFull(r.br, payload[9:]); err != nil {
		return walRecord{}, errCorrupt
	}
	if crc32.ChecksumIEEE(payload) != wantCRC {
		return walRecord{}, errCorrupt
	}
	rec := walRecord{
		op:    walOp(payload[0]),
		key:   append([]byte(nil), payload[9:9+klen]...),
		value: append([]byte(nil), payload[9+klen:]...),
	}
	if rec.op != walPut && rec.op != walDelete {
		return walRecord{}, errCorrupt
	}
	return rec, nil
}
