package kvstore

import (
	"encoding/binary"
	"testing"
)

// BenchmarkPutGet measures the in-memory store (the MDS hot path).
func BenchmarkPutGet(b *testing.B) {
	s, err := Open("")
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	key := make([]byte, 8)
	val := make([]byte, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		binary.LittleEndian.PutUint64(key, uint64(i%65536))
		if i%2 == 0 {
			if err := s.Put(key, val); err != nil {
				b.Fatal(err)
			}
		} else {
			s.Get(key)
		}
	}
}

// BenchmarkBTreeGet isolates index lookups.
func BenchmarkBTreeGet(b *testing.B) {
	bt := newBTree(32)
	key := make([]byte, 8)
	for i := 0; i < 65536; i++ {
		binary.LittleEndian.PutUint64(key, uint64(i))
		bt.Put(key, nil)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		binary.LittleEndian.PutUint64(key, uint64(i%65536))
		bt.Get(key)
	}
}
