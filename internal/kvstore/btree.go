// Package kvstore is the metadata store behind the simulated MDS — the role
// Berkeley DB plays in the HUSt prototype (paper §5.1: "The metadata
// information of files and objects are stored in the Berkeley DB"). It
// offers an ordered key space (in-memory B-tree), a write-ahead log with CRC
// framing for durability, and point-in-time snapshots, which is the slice of
// Berkeley DB behaviour the experiments depend on.
package kvstore

import (
	"bytes"
	"sort"
)

// btree is a classic in-memory B-tree over []byte keys with copy-on-insert
// leaves. Degree t: every node except the root holds between t-1 and 2t-1
// keys.
type btree struct {
	root *bnode
	t    int
	size int
}

type item struct {
	key   []byte
	value []byte
}

type bnode struct {
	items    []item
	children []*bnode // nil for leaves
}

func newBTree(degree int) *btree {
	if degree < 2 {
		degree = 32
	}
	return &btree{root: &bnode{}, t: degree}
}

func (n *bnode) leaf() bool { return len(n.children) == 0 }

// find returns the index of the first item >= key and whether it is an exact
// match.
func (n *bnode) find(key []byte) (int, bool) {
	i := sort.Search(len(n.items), func(i int) bool {
		return bytes.Compare(n.items[i].key, key) >= 0
	})
	if i < len(n.items) && bytes.Equal(n.items[i].key, key) {
		return i, true
	}
	return i, false
}

// Get returns the value for key, or nil, false.
func (t *btree) Get(key []byte) ([]byte, bool) {
	n := t.root
	for {
		i, ok := n.find(key)
		if ok {
			return n.items[i].value, true
		}
		if n.leaf() {
			return nil, false
		}
		n = n.children[i]
	}
}

// Put inserts or replaces. It reports whether the key was new.
func (t *btree) Put(key, value []byte) bool {
	if len(t.root.items) == 2*t.t-1 {
		old := t.root
		t.root = &bnode{children: []*bnode{old}}
		t.root.split(0, t.t)
	}
	inserted := t.root.insertNonFull(key, value, t.t)
	if inserted {
		t.size++
	}
	return inserted
}

// split divides child i of n around its median.
func (n *bnode) split(i, t int) {
	child := n.children[i]
	mid := t - 1
	median := child.items[mid]
	right := &bnode{items: append([]item(nil), child.items[mid+1:]...)}
	if !child.leaf() {
		right.children = append([]*bnode(nil), child.children[t:]...)
		child.children = child.children[:t]
	}
	child.items = child.items[:mid]
	n.items = append(n.items, item{})
	copy(n.items[i+1:], n.items[i:])
	n.items[i] = median
	n.children = append(n.children, nil)
	copy(n.children[i+2:], n.children[i+1:])
	n.children[i+1] = right
}

func (n *bnode) insertNonFull(key, value []byte, t int) bool {
	for {
		i, ok := n.find(key)
		if ok {
			n.items[i].value = value
			return false
		}
		if n.leaf() {
			n.items = append(n.items, item{})
			copy(n.items[i+1:], n.items[i:])
			n.items[i] = item{key: append([]byte(nil), key...), value: value}
			return true
		}
		if len(n.children[i].items) == 2*t-1 {
			n.split(i, t)
			cmp := bytes.Compare(key, n.items[i].key)
			if cmp == 0 {
				n.items[i].value = value
				return false
			}
			if cmp > 0 {
				i++
			}
		}
		n = n.children[i]
	}
}

// Delete removes key, reporting whether it was present. For simplicity it
// uses lazy deletion by tombstoning: the item is removed from the node with
// standard B-tree rebalancing omitted in favour of a rebuild threshold —
// but a full rebalancing delete is implemented below to keep scans O(log n).
func (t *btree) Delete(key []byte) bool {
	if t.root == nil {
		return false
	}
	deleted := t.root.delete(key, t.t)
	if deleted {
		t.size--
	}
	if len(t.root.items) == 0 && !t.root.leaf() {
		t.root = t.root.children[0]
	}
	return deleted
}

func (n *bnode) delete(key []byte, t int) bool {
	i, ok := n.find(key)
	if ok {
		if n.leaf() {
			n.items = append(n.items[:i], n.items[i+1:]...)
			return true
		}
		// Replace with predecessor from the left subtree (growing it first
		// if minimal).
		if len(n.children[i].items) >= t {
			pred := n.children[i].max()
			n.items[i] = pred
			return n.children[i].delete(pred.key, t)
		}
		if len(n.children[i+1].items) >= t {
			succ := n.children[i+1].min()
			n.items[i] = succ
			return n.children[i+1].delete(succ.key, t)
		}
		n.merge(i)
		return n.children[i].delete(key, t)
	}
	if n.leaf() {
		return false
	}
	// Ensure the child we descend into has >= t items.
	if len(n.children[i].items) < t {
		n.fill(i, t)
		// fill may have merged children; re-find.
		i, ok = n.find(key)
		if ok {
			return n.delete(key, t)
		}
		if i > len(n.children)-1 {
			i = len(n.children) - 1
		}
	}
	return n.children[i].delete(key, t)
}

func (n *bnode) min() item {
	for !n.leaf() {
		n = n.children[0]
	}
	return n.items[0]
}

func (n *bnode) max() item {
	for !n.leaf() {
		n = n.children[len(n.children)-1]
	}
	return n.items[len(n.items)-1]
}

// fill grows child i to at least t items by borrowing or merging.
func (n *bnode) fill(i, t int) {
	switch {
	case i > 0 && len(n.children[i-1].items) >= t:
		// Borrow from left sibling.
		child, left := n.children[i], n.children[i-1]
		child.items = append([]item{n.items[i-1]}, child.items...)
		n.items[i-1] = left.items[len(left.items)-1]
		left.items = left.items[:len(left.items)-1]
		if !left.leaf() {
			child.children = append([]*bnode{left.children[len(left.children)-1]}, child.children...)
			left.children = left.children[:len(left.children)-1]
		}
	case i < len(n.children)-1 && len(n.children[i+1].items) >= t:
		// Borrow from right sibling.
		child, right := n.children[i], n.children[i+1]
		child.items = append(child.items, n.items[i])
		n.items[i] = right.items[0]
		right.items = right.items[1:]
		if !right.leaf() {
			child.children = append(child.children, right.children[0])
			right.children = right.children[1:]
		}
	case i < len(n.children)-1:
		n.merge(i)
	default:
		n.merge(i - 1)
	}
}

// merge folds child i+1 and separator i into child i.
func (n *bnode) merge(i int) {
	child, right := n.children[i], n.children[i+1]
	child.items = append(child.items, n.items[i])
	child.items = append(child.items, right.items...)
	child.children = append(child.children, right.children...)
	n.items = append(n.items[:i], n.items[i+1:]...)
	n.children = append(n.children[:i+1], n.children[i+2:]...)
}

// Len reports the number of keys.
func (t *btree) Len() int { return t.size }

// Ascend visits keys in [from, to) in order (nil bounds are open) until fn
// returns false.
func (t *btree) Ascend(from, to []byte, fn func(key, value []byte) bool) {
	t.root.ascend(from, to, fn)
}

func (n *bnode) ascend(from, to []byte, fn func(key, value []byte) bool) bool {
	start := 0
	if from != nil {
		start, _ = n.find(from)
	}
	for i := start; i <= len(n.items); i++ {
		if !n.leaf() {
			if !n.children[i].ascend(from, to, fn) {
				return false
			}
		}
		if i == len(n.items) {
			break
		}
		k := n.items[i].key
		if from != nil && bytes.Compare(k, from) < 0 {
			continue
		}
		if to != nil && bytes.Compare(k, to) >= 0 {
			return false
		}
		if !fn(k, n.items[i].value) {
			return false
		}
	}
	return true
}
