package partition

import (
	"sync"

	"farmer/internal/metrics"
)

// DefaultMailboxCap bounds a Mailbox when NewMailbox is given a
// non-positive capacity.
const DefaultMailboxCap = 4096

// Mailbox is a bounded FIFO buffer of events in flight toward one remote
// owner — the inter-MDS counterpart of the in-process event taps. Producers
// never block: a full mailbox evicts its OLDEST undelivered event (counted
// on the dropped Counter), so a mining burst degrades remote model fidelity
// instead of stalling the dispatcher. Push order is preserved, which is
// what keeps a drained remote bit-identical to the sequential mine while
// nothing is dropped.
//
// Mailbox implements Owner (ApplyEvents = Push), so a Dispatcher can fan
// out to a mix of local shards and remote mailboxes through one interface.
// It is safe for concurrent use.
type Mailbox struct {
	mu      sync.Mutex
	buf     []Event // ring buffer
	head, n int
	pushed  uint64
	dropped *metrics.Counter
}

// NewMailbox creates a mailbox holding up to capacity events
// (DefaultMailboxCap when <= 0). Drops are counted on dropped; pass nil for
// a private counter.
func NewMailbox(capacity int, dropped *metrics.Counter) *Mailbox {
	if capacity <= 0 {
		capacity = DefaultMailboxCap
	}
	if dropped == nil {
		dropped = &metrics.Counter{}
	}
	return &Mailbox{buf: make([]Event, capacity), dropped: dropped}
}

// ApplyEvents implements Owner by enqueueing the batch.
func (b *Mailbox) ApplyEvents(evs []Event) { b.Push(evs...) }

// Push appends events, evicting the oldest queued event for each one that
// does not fit.
func (b *Mailbox) Push(evs ...Event) {
	b.mu.Lock()
	for _, ev := range evs {
		if b.n == len(b.buf) {
			b.head = (b.head + 1) % len(b.buf)
			b.n--
			b.dropped.Inc()
		}
		b.buf[(b.head+b.n)%len(b.buf)] = ev
		b.n++
		b.pushed++
	}
	b.mu.Unlock()
}

// Pop removes and returns the oldest queued event. Callers metering
// delivery (e.g. releasing only the events whose modeled network latency
// has elapsed) pop selectively instead of Drain.
func (b *Mailbox) Pop() (Event, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.n == 0 {
		return Event{}, false
	}
	ev := b.buf[b.head]
	b.head = (b.head + 1) % len(b.buf)
	b.n--
	return ev, true
}

// Drain removes every queued event in FIFO order and hands them to apply
// as one batch. It returns the number of events delivered. apply runs with
// the mailbox unlocked, so an owner may push from within it.
func (b *Mailbox) Drain(apply func(evs []Event)) int {
	b.mu.Lock()
	n := b.n
	if n == 0 {
		b.mu.Unlock()
		return 0
	}
	first := b.buf[b.head:min(b.head+n, len(b.buf))]
	var second []Event
	if rest := n - len(first); rest > 0 {
		second = b.buf[:rest]
	}
	// Copy out so concurrent pushes cannot overwrite the slices while apply
	// runs unlocked.
	out := make([]Event, 0, n)
	out = append(out, first...)
	out = append(out, second...)
	b.head = (b.head + n) % len(b.buf)
	b.n = 0
	b.mu.Unlock()
	apply(out)
	return n
}

// Len reports the queued event count.
func (b *Mailbox) Len() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.n
}

// Pushed reports how many events were accepted (including later drops).
func (b *Mailbox) Pushed() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.pushed
}

// Dropped reports how many events overflow evicted before delivery.
func (b *Mailbox) Dropped() uint64 { return b.dropped.Load() }
