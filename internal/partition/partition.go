// Package partition is the reusable dispatch layer behind every partitioned
// FARMER deployment: one sequenced replay of the global access stream fans
// the expensive per-file mining work out to the owners of the affected
// state, whatever those owners are — the in-process shards of a
// core.ShardedModel, or the metadata servers of a multi-MDS cluster
// exchanging events over bounded mailboxes.
//
// The layer exists because all FARMER mined state is keyed by the
// predecessor FileID: file x's Correlator List, its graph node (N_x and
// every N_xy) and its semantic vector live together, and nowhere else. A
// Dispatcher therefore needs to run only Stage 1 (attribute extraction) and
// the lookahead-window bookkeeping in global stream order; Stages 2-4 —
// edge credit, degree re-evaluation, list resorting — become Events routed
// to the Owner of the predecessor's partition. Per-owner FIFO delivery in
// global stream order plus disjoint per-owner state make an N-way
// partitioned mine produce exactly the state a single sequential Model
// reaches on the same stream.
package partition

import "farmer/internal/trace"

// Partitioner maps a file to the index of the partition owning its mined
// state, out of n partitions. Implementations must be deterministic and
// return values in [0, n).
type Partitioner func(f trace.FileID, n int) int

// Stripe is the FileID-striping partitioner core.ShardedModel has always
// used: Fibonacci hashing on the upper half-word, so contiguously allocated
// correlation groups spread evenly across stripes.
func Stripe(f trace.FileID, n int) int {
	if n <= 1 {
		return 0
	}
	return int((uint64(f) * 0x9E3779B97F4A7C15 >> 32) % uint64(n))
}

// Hash spreads files uniformly across partitions (Fibonacci hashing) — the
// multi-MDS cluster's default placement, and the pessimistic case for
// correlation locality.
func Hash(f trace.FileID, n int) int {
	if n <= 1 {
		return 0
	}
	return int(uint64(f) * 0x9E3779B97F4A7C15 % uint64(n))
}

// GroupSpan is the placement-unit width of Group: runs of GroupSpan adjacent
// file ids land on one partition.
const GroupSpan = 16

// Group co-locates runs of adjacent file ids (the workload generators
// allocate a correlation group's files contiguously, so this approximates
// correlation-aware placement via the paper's §4.2 grouping).
func Group(f trace.FileID, n int) int {
	if n <= 1 {
		return 0
	}
	return int(uint64(f) / GroupSpan % uint64(n))
}
