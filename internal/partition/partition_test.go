package partition

import (
	"testing"

	"farmer/internal/graph"
	"farmer/internal/trace"
	"farmer/internal/vsm"
)

func TestPartitionersDeterministicAndInRange(t *testing.T) {
	for _, part := range []struct {
		name string
		fn   Partitioner
	}{{"stripe", Stripe}, {"hash", Hash}, {"group", Group}} {
		for f := 0; f < 10000; f++ {
			for _, n := range []int{1, 2, 3, 4, 7} {
				a := part.fn(trace.FileID(f), n)
				b := part.fn(trace.FileID(f), n)
				if a != b || a < 0 || a >= n {
					t.Fatalf("%s partitioner broken: f=%d n=%d -> %d,%d", part.name, f, n, a, b)
				}
			}
		}
	}
}

func TestGroupCoLocatesAdjacentIDs(t *testing.T) {
	for base := 0; base < 1024; base += GroupSpan {
		want := Group(trace.FileID(base), 4)
		for off := 1; off < GroupSpan; off++ {
			if got := Group(trace.FileID(base+off), 4); got != want {
				t.Fatalf("file %d on partition %d, run base %d on %d", base+off, got, base, want)
			}
		}
	}
}

func testRecord(f trace.FileID) trace.Record {
	return trace.Record{File: f, Path: "/u/a/b", UID: 1, PID: 2}
}

// recorder captures every emitted event per owner.
type recorder struct{ evs []Event }

func (r *recorder) ApplyEvents(evs []Event) { r.evs = append(r.evs, evs...) }

func newDispatcher(owners int, part Partitioner) *Dispatcher {
	return NewDispatcher(Config{
		Owners:      owners,
		Partitioner: part,
		Mask:        vsm.AllPathMask,
		PathAlg:     vsm.IPA,
		Graph:       graph.DefaultConfig(),
	})
}

// TestDispatchLDACredits: the edge events for one record must mirror
// graph.Feed's linear decremented assignment — most recent predecessor
// first at credit 1.0, decremented per step, floored at MinAssign, window
// duplicates skipped.
func TestDispatchLDACredits(t *testing.T) {
	d := newDispatcher(1, nil)
	owner := &recorder{}
	for _, f := range []trace.FileID{10, 11, 12} {
		r := testRecord(f)
		d.Fan([]Owner{owner}, &r)
	}
	owner.evs = nil
	r := testRecord(13)
	d.Fan([]Owner{owner}, &r)

	if len(owner.evs) != 4 {
		t.Fatalf("events = %d, want access + 3 edges", len(owner.evs))
	}
	if !owner.evs[0].Access || owner.evs[0].Succ != 13 {
		t.Fatalf("first event not the access: %+v", owner.evs[0])
	}
	wantPred := []trace.FileID{12, 11, 10}
	wantCredit := []float64{1.0, 0.9, 0.8}
	for i, ev := range owner.evs[1:] {
		if ev.Access || ev.Pred != wantPred[i] || ev.Succ != 13 || ev.Credit != wantCredit[i] {
			t.Fatalf("edge %d = %+v, want pred %d credit %v", i, ev, wantPred[i], wantCredit[i])
		}
	}
}

func TestDispatchSkipsSelfAndTrimsWindow(t *testing.T) {
	d := newDispatcher(1, nil)
	owner := &recorder{}
	for _, f := range []trace.FileID{5, 5} {
		r := testRecord(f)
		d.Fan([]Owner{owner}, &r)
	}
	edges := 0
	for _, ev := range owner.evs {
		if !ev.Access {
			edges++
		}
	}
	if edges != 0 {
		t.Fatalf("self-edge emitted: %d edge events", edges)
	}
	// Window never exceeds the normalized graph window.
	for f := trace.FileID(0); f < 20; f++ {
		r := testRecord(f)
		d.Fan([]Owner{owner}, &r)
	}
	if w := len(d.window); w != d.gcfg.Window {
		t.Fatalf("window length %d, want %d", w, d.gcfg.Window)
	}
}

// TestDispatchRoutesByPartitioner: every event must land on the owner of
// the state it touches — owner(Succ) for access events, owner(Pred) for
// edge events — and sequence numbers must be contiguous from 1.
func TestDispatchRoutesByPartitioner(t *testing.T) {
	const owners = 4
	d := newDispatcher(owners, Hash)
	var seq uint64
	for f := trace.FileID(0); f < 200; f++ {
		r := testRecord(f % 37)
		got := d.Dispatch(&r, func(owner int, ev Event) {
			key := ev.Succ
			if !ev.Access {
				key = ev.Pred
			}
			if want := Hash(key, owners); owner != want {
				t.Fatalf("event %+v routed to %d, want %d", ev, owner, want)
			}
		})
		seq++
		if got != seq {
			t.Fatalf("sequence %d, want %d", got, seq)
		}
	}
	if d.Dispatched() != seq {
		t.Fatalf("Dispatched() = %d, want %d", d.Dispatched(), seq)
	}
	if d.Advance(3) != seq+3 {
		t.Fatalf("Advance did not extend the sequence")
	}
}

func TestDispatcherPanicsOnZeroOwners(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for zero owners")
		}
	}()
	NewDispatcher(Config{Owners: 0})
}

func TestMailboxFIFOAndDrain(t *testing.T) {
	mb := NewMailbox(8, nil)
	for i := 0; i < 5; i++ {
		mb.Push(Event{Seq: uint64(i + 1)})
	}
	var got []Event
	n := mb.Drain(func(evs []Event) { got = append(got, evs...) })
	if n != 5 || len(got) != 5 {
		t.Fatalf("drained %d/%d events", n, len(got))
	}
	for i, ev := range got {
		if ev.Seq != uint64(i+1) {
			t.Fatalf("event %d out of order: %+v", i, ev)
		}
	}
	if mb.Len() != 0 || mb.Drain(func([]Event) { t.Fatal("apply on empty drain") }) != 0 {
		t.Fatal("mailbox not empty after drain")
	}
	if mb.Pushed() != 5 || mb.Dropped() != 0 {
		t.Fatalf("accounting: pushed %d dropped %d", mb.Pushed(), mb.Dropped())
	}
}

// TestMailboxPopReleasesInOrder: Pop hands out single events FIFO and
// interoperates with Drain (metered delivery).
func TestMailboxPopReleasesInOrder(t *testing.T) {
	mb := NewMailbox(8, nil)
	if _, ok := mb.Pop(); ok {
		t.Fatal("Pop from empty mailbox succeeded")
	}
	mb.Push(Event{Seq: 1}, Event{Seq: 2}, Event{Seq: 3})
	if ev, ok := mb.Pop(); !ok || ev.Seq != 1 {
		t.Fatalf("first pop = %+v, %v", ev, ok)
	}
	var rest []Event
	mb.Drain(func(evs []Event) { rest = append(rest, evs...) })
	if len(rest) != 2 || rest[0].Seq != 2 || rest[1].Seq != 3 {
		t.Fatalf("drain after pop = %+v", rest)
	}
}

// TestMailboxDropOldest: overflow evicts the head, keeps push order, and
// counts every loss.
func TestMailboxDropOldest(t *testing.T) {
	mb := NewMailbox(4, nil)
	for i := 1; i <= 10; i++ {
		mb.Push(Event{Seq: uint64(i)})
	}
	var got []Event
	mb.Drain(func(evs []Event) { got = append(got, evs...) })
	if len(got) != 4 {
		t.Fatalf("kept %d events, want 4", len(got))
	}
	for i, ev := range got {
		if want := uint64(7 + i); ev.Seq != want {
			t.Fatalf("slot %d seq %d, want %d (newest survive)", i, ev.Seq, want)
		}
	}
	if mb.Dropped() != 6 {
		t.Fatalf("dropped %d, want 6", mb.Dropped())
	}
}

// TestMailboxWrapAround: drain after the ring head has wrapped still
// delivers FIFO.
func TestMailboxWrapAround(t *testing.T) {
	mb := NewMailbox(4, nil)
	mb.Push(Event{Seq: 1}, Event{Seq: 2}, Event{Seq: 3})
	mb.Drain(func([]Event) {})
	mb.Push(Event{Seq: 4}, Event{Seq: 5}, Event{Seq: 6}) // wraps
	var got []Event
	mb.Drain(func(evs []Event) { got = append(got, evs...) })
	for i, ev := range got {
		if ev.Seq != uint64(4+i) {
			t.Fatalf("wrap drain out of order: %+v", got)
		}
	}
}
