// RoutingTable makes shard ownership explicit and epoch-versioned. The
// Dispatcher historically assumed hash-owns-everything: partition index i is
// owner i, forever. Live rebalancing breaks that assumption — during a
// handoff a shard has TWO owners (the old one still applying the stream,
// the new one catching up), and after it the shard lives somewhere the
// partitioner alone cannot know. The table versions every change with an
// epoch, mirroring the lease layer: observers (metrics, the rebalance
// orchestration, tests) can tell "nothing changed" from "changed and
// changed back", and a handoff is provably two transitions — begin (dual
// ownership, epoch+1) and commit (sole new owner, epoch+1 again).
package partition

import (
	"fmt"
	"sync"
)

// RoutingTable maps shards (partition indices) to owners, versioned per
// epoch. Safe for concurrent use; reads on the dispatch path are one
// RLock + slice index.
type RoutingTable struct {
	mu      sync.RWMutex
	epoch   uint64
	owner   []int
	pending map[int]int // shard -> incoming owner during a handoff window
}

// NewRoutingTable builds the identity routing over shards partitions and
// owners owners: shard i is owned by i mod owners — exactly the implicit
// assumption the Dispatcher made, now stated where it can change.
func NewRoutingTable(shards, owners int) *RoutingTable {
	if shards < 1 || owners < 1 {
		panic(fmt.Sprintf("partition: routing table needs shards >= 1 and owners >= 1, got %d/%d", shards, owners))
	}
	t := &RoutingTable{owner: make([]int, shards)}
	for i := range t.owner {
		t.owner[i] = i % owners
	}
	return t
}

// Epoch reports the table's version: it advances on every BeginHandoff,
// Commit and Abort, and never regresses.
func (t *RoutingTable) Epoch() uint64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.epoch
}

// Shards reports how many shards the table routes.
func (t *RoutingTable) Shards() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.owner)
}

// Owners resolves a shard: primary is the owner events route to, and when
// a handoff window is open for the shard, dual is the incoming owner that
// must ALSO observe the stream (hasDual true). Outside a window dual is
// meaningless and hasDual false.
func (t *RoutingTable) Owners(shard int) (primary, dual int, hasDual bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	primary = t.owner[shard]
	dual, hasDual = t.pending[shard]
	return primary, dual, hasDual
}

// OwnerOf resolves a shard to its primary owner — the dispatch-path read.
func (t *RoutingTable) OwnerOf(shard int) int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.owner[shard]
}

// BeginHandoff opens a handoff window moving shard to owner `to`: the shard
// keeps its current primary (which continues applying the live stream)
// while `to` is recorded as the dual destination, and the epoch advances.
// It fails if a window is already open for the shard or the move is a
// no-op.
func (t *RoutingTable) BeginHandoff(shard, to int) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if shard < 0 || shard >= len(t.owner) {
		return fmt.Errorf("partition: handoff of unknown shard %d (table has %d)", shard, len(t.owner))
	}
	if _, open := t.pending[shard]; open {
		return fmt.Errorf("partition: shard %d already in a handoff window", shard)
	}
	if t.owner[shard] == to {
		return fmt.Errorf("partition: shard %d already owned by %d", shard, to)
	}
	if t.pending == nil {
		t.pending = make(map[int]int)
	}
	t.pending[shard] = to
	t.epoch++
	return nil
}

// Commit closes the shard's handoff window: the dual destination becomes
// the sole owner and the epoch advances. It fails when no window is open.
func (t *RoutingTable) Commit(shard int) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	to, open := t.pending[shard]
	if !open {
		return fmt.Errorf("partition: commit of shard %d without an open handoff window", shard)
	}
	t.owner[shard] = to
	delete(t.pending, shard)
	t.epoch++
	return nil
}

// Abort closes the shard's handoff window without moving ownership (the
// catch-up failed; the incumbent keeps serving). The epoch still advances:
// observers saw the window open, so they must see it close.
func (t *RoutingTable) Abort(shard int) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, open := t.pending[shard]; !open {
		return fmt.Errorf("partition: abort of shard %d without an open handoff window", shard)
	}
	delete(t.pending, shard)
	t.epoch++
	return nil
}

// Snapshot returns the owner of every shard at a consistent point — the
// observability read.
func (t *RoutingTable) Snapshot() (epoch uint64, owners []int) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.epoch, append([]int(nil), t.owner...)
}
