package partition

import (
	"fmt"
	"sync/atomic"

	"farmer/internal/graph"
	"farmer/internal/trace"
	"farmer/internal/vsm"
)

// Event is one unit of mining work routed to the owner of the state it
// touches. Access events install the freshly extracted semantic vector of
// Succ on owner(Succ); edge events add LDA credit to Pred->Succ and
// re-evaluate R(Pred, Succ) on owner(Pred), carrying Succ's vector because
// the owning partition does not store it.
type Event struct {
	Pred   trace.FileID
	Succ   trace.FileID
	Credit float64
	Vec    vsm.Vector
	Seq    uint64 // global ingest sequence of the record that produced it
	Access bool
}

// Owner is a sink consuming the ordered event stream of one partition: a
// local core.Model shard, a Mailbox draining toward a remote metadata
// server, or any other application target. Every batch an Owner receives is
// FIFO in global stream order; applying batches in arrival order reproduces
// the sequential mine exactly.
type Owner interface {
	ApplyEvents(evs []Event)
}

// Config parameterises a Dispatcher. Owners must be >= 1; a nil Partitioner
// defaults to Stripe.
type Config struct {
	Owners      int
	Partitioner Partitioner
	// Routing, when non-nil, indirects partition index -> owner through an
	// epoch-versioned RoutingTable, so shards can move between owners live
	// (farmerctl rebalance). Nil keeps the historical identity assumption:
	// partition i IS owner i. The table must route at least Owners shards.
	Routing *RoutingTable
	// Mask and PathAlg configure the Stage-1 extractor; Graph supplies the
	// lookahead window and LDA parameters (normalized like graph.New).
	Mask    vsm.Mask
	PathAlg vsm.PathAlg
	Graph   graph.Config
}

// Dispatcher replays the access stream in global order, runs Stage 1
// (semantic extraction) once per record, and emits the per-owner events
// that complete Stages 2-4. It is the single sequencing point of a
// partitioned deployment; Dispatch is not safe for concurrent use and
// callers serialize around it.
type Dispatcher struct {
	owners  int
	part    Partitioner
	routing *RoutingTable // nil = identity (partition i is owner i)
	gcfg    graph.Config
	ex      *vsm.Extractor
	window  []trace.FileID
	seq     atomic.Uint64
}

// NewDispatcher builds a dispatcher; it panics on a non-positive owner
// count (programmer error, matching core's constructor conventions).
func NewDispatcher(cfg Config) *Dispatcher {
	if cfg.Owners < 1 {
		panic(fmt.Sprintf("partition: owner count %d", cfg.Owners))
	}
	part := cfg.Partitioner
	if part == nil {
		part = Stripe
	}
	if cfg.Routing != nil && cfg.Routing.Shards() < cfg.Owners {
		panic(fmt.Sprintf("partition: routing table covers %d shards, dispatcher has %d owners",
			cfg.Routing.Shards(), cfg.Owners))
	}
	ex := vsm.NewExtractor(cfg.Mask)
	ex.Alg = cfg.PathAlg
	return &Dispatcher{
		owners:  cfg.Owners,
		part:    part,
		routing: cfg.Routing,
		gcfg:    cfg.Graph.Normalized(),
		ex:      ex,
	}
}

// route resolves a partition index to the owner currently serving it.
func (d *Dispatcher) route(shard int) int {
	if d.routing == nil {
		return shard
	}
	return d.routing.OwnerOf(shard)
}

// Owners reports the partition count.
func (d *Dispatcher) Owners() int { return d.owners }

// OwnerOf reports which owner serves a file's mined state — the file's
// partition index, routed through the RoutingTable when one is attached.
func (d *Dispatcher) OwnerOf(f trace.FileID) int { return d.route(d.part(f, d.owners)) }

// Routing returns the attached routing table (nil when ownership is the
// identity mapping).
func (d *Dispatcher) Routing() *RoutingTable { return d.routing }

// Dispatched reports how many records have been sequenced. Safe to read
// concurrently with Dispatch.
func (d *Dispatcher) Dispatched() uint64 { return d.seq.Load() }

// Advance claims n sequence numbers without dispatching — the bookkeeping
// hook for fast paths that bypass event routing (a single-owner ensemble
// feeding its one Model directly) yet must keep the global counter exact.
// It returns the last sequence number claimed.
func (d *Dispatcher) Advance(n uint64) uint64 { return d.seq.Add(n) }

// Dispatch sequences one record and emits its events: the access event to
// the owner of r.File, then one edge event per lookahead-window slot (most
// recent first, exactly as graph.Feed assigns LDA credit — a predecessor
// occupying two slots emits two events, and slots holding the accessed
// file itself are skipped), each to the owner of its predecessor. It
// returns the record's global sequence number. Callers must serialize
// Dispatch calls; emit runs synchronously on the caller's goroutine.
func (d *Dispatcher) Dispatch(r *trace.Record, emit func(owner int, ev Event)) uint64 {
	seq := d.seq.Add(1)
	v := d.ex.Extract(r)
	emit(d.route(d.part(r.File, d.owners)), Event{Succ: r.File, Vec: v, Seq: seq, Access: true})
	for i := len(d.window) - 1; i >= 0; i-- {
		pred := d.window[i]
		if pred == r.File {
			continue
		}
		dist := len(d.window) - i // 1 = immediate predecessor
		credit := 1.0 - float64(dist-1)*d.gcfg.Decrement
		if credit < d.gcfg.MinAssign {
			credit = d.gcfg.MinAssign
		}
		emit(d.route(d.part(pred, d.owners)), Event{Pred: pred, Succ: r.File, Credit: credit, Vec: v, Seq: seq})
	}
	d.window = append(d.window, r.File)
	if len(d.window) > d.gcfg.Window {
		copy(d.window, d.window[1:])
		d.window = d.window[:d.gcfg.Window]
	}
	return seq
}

// Fan dispatches one record straight to a set of owners, one single-event
// batch per emission. owners must have length Owners(). It is the simplest
// composition — suitable for streaming ingestion where each owner applies
// synchronously; batching callers use Dispatch with their own staging.
func (d *Dispatcher) Fan(owners []Owner, r *trace.Record) uint64 {
	var one [1]Event
	return d.Dispatch(r, func(owner int, ev Event) {
		one[0] = ev
		owners[owner].ApplyEvents(one[:])
	})
}

// ResetWindow forgets the lookahead window (stream boundary) while keeping
// the sequence counter.
func (d *Dispatcher) ResetWindow() { d.window = d.window[:0] }

// Window returns a copy of the lookahead window, oldest first. Callers
// serialize with Dispatch, like every window operation.
func (d *Dispatcher) Window() []trace.FileID {
	return append([]trace.FileID(nil), d.window...)
}

// PrimeWindow replaces the lookahead window (trimmed to the configured
// width, keeping the most recent entries) without dispatching or advancing
// the sequence — how a checkpoint-bootstrapped replica resumes crediting
// exactly the predecessors the checkpointing dispatcher would have.
func (d *Dispatcher) PrimeWindow(w []trace.FileID) {
	if len(w) > d.gcfg.Window {
		w = w[len(w)-d.gcfg.Window:]
	}
	d.window = append(d.window[:0], w...)
}
