package partition

import (
	"testing"

	"farmer/internal/trace"
)

func TestRoutingTableIdentity(t *testing.T) {
	rt := NewRoutingTable(8, 4)
	for s := 0; s < 8; s++ {
		if got := rt.OwnerOf(s); got != s%4 {
			t.Fatalf("shard %d owned by %d, want %d", s, got, s%4)
		}
	}
	if rt.Epoch() != 0 {
		t.Fatalf("fresh table epoch %d, want 0", rt.Epoch())
	}
	if rt.Shards() != 8 {
		t.Fatalf("shards %d, want 8", rt.Shards())
	}
}

func TestRoutingTableHandoffLifecycle(t *testing.T) {
	rt := NewRoutingTable(4, 2)

	// Begin: primary unchanged, dual recorded, epoch bumped.
	if err := rt.BeginHandoff(1, 0); err != nil {
		t.Fatal(err)
	}
	if rt.Epoch() != 1 {
		t.Fatalf("epoch after begin %d, want 1", rt.Epoch())
	}
	primary, dual, hasDual := rt.Owners(1)
	if primary != 1 || dual != 0 || !hasDual {
		t.Fatalf("mid-handoff owners (%d, %d, %t), want (1, 0, true)", primary, dual, hasDual)
	}
	if rt.OwnerOf(1) != 1 {
		t.Fatal("primary moved before commit")
	}

	// A second window on the same shard is refused.
	if err := rt.BeginHandoff(1, 0); err == nil {
		t.Fatal("double handoff window accepted")
	}

	// Commit: ownership moves, window closes, epoch bumps again.
	if err := rt.Commit(1); err != nil {
		t.Fatal(err)
	}
	if rt.Epoch() != 2 {
		t.Fatalf("epoch after commit %d, want 2", rt.Epoch())
	}
	if rt.OwnerOf(1) != 0 {
		t.Fatalf("shard 1 owned by %d after commit, want 0", rt.OwnerOf(1))
	}
	if _, _, hasDual := rt.Owners(1); hasDual {
		t.Fatal("handoff window still open after commit")
	}

	// Commit without a window is an error.
	if err := rt.Commit(1); err == nil {
		t.Fatal("commit without a window accepted")
	}

	// Abort: window closes, ownership stays, epoch still advances.
	if err := rt.BeginHandoff(2, 1); err != nil {
		t.Fatal(err)
	}
	if err := rt.Abort(2); err != nil {
		t.Fatal(err)
	}
	if rt.OwnerOf(2) != 0 {
		t.Fatalf("abort moved shard 2 to %d", rt.OwnerOf(2))
	}
	if rt.Epoch() != 4 {
		t.Fatalf("epoch after abort %d, want 4", rt.Epoch())
	}
	if err := rt.Abort(2); err == nil {
		t.Fatal("abort without a window accepted")
	}

	// No-op moves and unknown shards are refused.
	if err := rt.BeginHandoff(0, 0); err == nil {
		t.Fatal("no-op handoff accepted")
	}
	if err := rt.BeginHandoff(9, 0); err == nil {
		t.Fatal("unknown shard accepted")
	}
}

func TestRoutingTableSnapshot(t *testing.T) {
	rt := NewRoutingTable(3, 3)
	if err := rt.BeginHandoff(2, 0); err != nil {
		t.Fatal(err)
	}
	if err := rt.Commit(2); err != nil {
		t.Fatal(err)
	}
	epoch, owners := rt.Snapshot()
	if epoch != 2 {
		t.Fatalf("snapshot epoch %d, want 2", epoch)
	}
	want := []int{0, 1, 0}
	for i, o := range owners {
		if o != want[i] {
			t.Fatalf("snapshot owners %v, want %v", owners, want)
		}
	}
	// The snapshot is a copy: mutating it does not touch the table.
	owners[0] = 99
	if rt.OwnerOf(0) != 0 {
		t.Fatal("snapshot aliases the live table")
	}
}

// TestDispatcherRouting proves the dispatcher consults the routing table:
// after moving every shard to owner 0, every event lands on owner 0 while
// the partitioner still spreads partition indices.
func TestDispatcherRouting(t *testing.T) {
	rt := NewRoutingTable(4, 4)
	d := NewDispatcher(Config{Owners: 4, Routing: rt})
	rec := trace.Record{File: 3, Path: "/a/b"}

	if d.OwnerOf(3) != Stripe(3, 4) {
		t.Fatalf("identity routing broken: owner %d", d.OwnerOf(3))
	}
	for s := 1; s < 4; s++ {
		if err := rt.BeginHandoff(s, 0); err != nil {
			t.Fatal(err)
		}
		if err := rt.Commit(s); err != nil {
			t.Fatal(err)
		}
	}
	seen := map[int]bool{}
	d.Dispatch(&rec, func(owner int, _ Event) { seen[owner] = true })
	for owner := range seen {
		if owner != 0 {
			t.Fatalf("event routed to owner %d after all shards moved to 0", owner)
		}
	}
	if d.OwnerOf(3) != 0 {
		t.Fatalf("OwnerOf ignores the routing table: %d", d.OwnerOf(3))
	}
}

// BenchmarkHandoffRouting measures the dispatch-path cost of the routing
// indirection: one RLock + slice index per emitted event.
func BenchmarkHandoffRouting(b *testing.B) {
	rt := NewRoutingTable(16, 16)
	d := NewDispatcher(Config{Owners: 16, Routing: rt})
	rec := trace.Record{File: 7, Path: "/bench/file"}
	emit := func(int, Event) {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec.File = trace.FileID(i & 1023)
		d.Dispatch(&rec, emit)
	}
}
