// Package predictors implements the file-access predictors the paper
// compares against or cites (§6): Last Successor, First Successor, Recent
// Popularity, Probability Graph (Griffioen & Appleton), SD Graph (SEER),
// Nexus (Gu et al., CCGRID'06), the program/user-conditioned variants PBS
// and PULS, and an adapter wrapping the FARMER model so every policy drives
// the same prefetching cache in the storage simulator.
package predictors

import (
	"sort"

	"farmer/internal/core"
	"farmer/internal/graph"
	"farmer/internal/trace"
)

// Predictor is a streaming successor predictor. Record observes one access;
// Predict proposes up to k files expected to be accessed soon after f.
// Implementations need not be safe for concurrent use.
type Predictor interface {
	// Name identifies the policy in experiment tables.
	Name() string
	// Record observes an access (with attributes).
	Record(r *trace.Record)
	// Predict returns up to k prefetch candidates for a demand access to f,
	// strongest first.
	Predict(f trace.FileID, k int) []trace.FileID
}

// ---------------------------------------------------------------- trivial

// LastSuccessor predicts the file that followed f the last time f was
// accessed.
type LastSuccessor struct {
	last map[trace.FileID]trace.FileID
	prev trace.FileID
	warm bool
}

// NewLastSuccessor returns an empty Last-Successor predictor.
func NewLastSuccessor() *LastSuccessor {
	return &LastSuccessor{last: make(map[trace.FileID]trace.FileID)}
}

// Name implements Predictor.
func (p *LastSuccessor) Name() string { return "LS" }

// Record implements Predictor.
func (p *LastSuccessor) Record(r *trace.Record) {
	if p.warm && p.prev != r.File {
		p.last[p.prev] = r.File
	}
	p.prev = r.File
	p.warm = true
}

// Predict implements Predictor.
func (p *LastSuccessor) Predict(f trace.FileID, k int) []trace.FileID {
	if k < 1 {
		return nil
	}
	if s, ok := p.last[f]; ok {
		return []trace.FileID{s}
	}
	return nil
}

// FirstSuccessor predicts the file that followed f the first time f was
// accessed; it never changes its mind (stable but stale).
type FirstSuccessor struct {
	first map[trace.FileID]trace.FileID
	prev  trace.FileID
	warm  bool
}

// NewFirstSuccessor returns an empty First-Successor predictor.
func NewFirstSuccessor() *FirstSuccessor {
	return &FirstSuccessor{first: make(map[trace.FileID]trace.FileID)}
}

// Name implements Predictor.
func (p *FirstSuccessor) Name() string { return "FS" }

// Record implements Predictor.
func (p *FirstSuccessor) Record(r *trace.Record) {
	if p.warm && p.prev != r.File {
		if _, ok := p.first[p.prev]; !ok {
			p.first[p.prev] = r.File
		}
	}
	p.prev = r.File
	p.warm = true
}

// Predict implements Predictor.
func (p *FirstSuccessor) Predict(f trace.FileID, k int) []trace.FileID {
	if k < 1 {
		return nil
	}
	if s, ok := p.first[f]; ok {
		return []trace.FileID{s}
	}
	return nil
}

// RecentPopularity implements the "best j of last k successors" scheme
// (Amer et al., IPCCC'02): it predicts the successor that appears at least j
// times among f's last k observed successors.
type RecentPopularity struct {
	j, k    int
	history map[trace.FileID][]trace.FileID
	prev    trace.FileID
	warm    bool
}

// NewRecentPopularity returns a best-j-of-k predictor; j=2, k=4 when
// arguments are non-positive.
func NewRecentPopularity(j, k int) *RecentPopularity {
	if j <= 0 {
		j = 2
	}
	if k < j {
		k = 2 * j
	}
	return &RecentPopularity{j: j, k: k, history: make(map[trace.FileID][]trace.FileID)}
}

// Name implements Predictor.
func (p *RecentPopularity) Name() string { return "RecentPopularity" }

// Record implements Predictor.
func (p *RecentPopularity) Record(r *trace.Record) {
	if p.warm && p.prev != r.File {
		h := append(p.history[p.prev], r.File)
		if len(h) > p.k {
			h = h[len(h)-p.k:]
		}
		p.history[p.prev] = h
	}
	p.prev = r.File
	p.warm = true
}

// Predict implements Predictor.
func (p *RecentPopularity) Predict(f trace.FileID, k int) []trace.FileID {
	if k < 1 {
		return nil
	}
	h := p.history[f]
	if len(h) == 0 {
		return nil
	}
	counts := make(map[trace.FileID]int, len(h))
	for _, s := range h {
		counts[s]++
	}
	type cand struct {
		f trace.FileID
		n int
	}
	cands := make([]cand, 0, len(counts))
	for s, n := range counts {
		if n >= p.j {
			cands = append(cands, cand{s, n})
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].n != cands[j].n {
			return cands[i].n > cands[j].n
		}
		return cands[i].f < cands[j].f
	})
	if len(cands) > k {
		cands = cands[:k]
	}
	out := make([]trace.FileID, len(cands))
	for i, c := range cands {
		out[i] = c.f
	}
	return out
}

// ---------------------------------------------------------- graph family

// graphPredictor is the shared machinery of Probability Graph, SD Graph and
// Nexus: a correlation graph fed with (optionally attribute-scoped) access
// streams, predicting the top-k strongest successors above a frequency
// floor.
type graphPredictor struct {
	name    string
	g       *graph.Graph
	minFreq float64
}

func (p *graphPredictor) Name() string { return p.name }

func (p *graphPredictor) Record(r *trace.Record) { p.g.Feed(r.File) }

func (p *graphPredictor) Predict(f trace.FileID, k int) []trace.FileID {
	if k < 1 {
		return nil
	}
	var out []trace.FileID
	for _, e := range p.g.Successors(f) {
		if p.g.Frequency(f, e.To) < p.minFreq {
			continue
		}
		out = append(out, e.To)
		if len(out) == k {
			break
		}
	}
	return out
}

// NewProbabilityGraph builds Griffioen & Appleton's probability graph:
// window-based successor counts with uniform (non-decremented) credit and a
// minimum-chance cutoff.
func NewProbabilityGraph(window int, minChance float64) Predictor {
	if window <= 0 {
		window = 2
	}
	return &graphPredictor{
		name:    "ProbGraph",
		g:       graph.New(graph.Config{Window: window, Decrement: 0, MaxSuccessors: 64}),
		minFreq: minChance,
	}
}

// NewSDGraph builds SEER's semantic-distance graph: like the probability
// graph but with a wider observation window and no cutoff (ranking only).
func NewSDGraph(window int) Predictor {
	if window <= 0 {
		window = 4
	}
	return &graphPredictor{
		name: "SDGraph",
		g:    graph.New(graph.Config{Window: window, Decrement: 0, MaxSuccessors: 64}),
	}
}

// Nexus is the paper's main baseline (Gu et al.): a weighted-graph metadata
// prefetcher using linear decremented assignment within a lookahead window
// and aggressive top-k prefetching.
type Nexus struct {
	graphPredictor
}

// NexusConfig parameterises Nexus.
type NexusConfig struct {
	Window    int     // lookahead window; Nexus' default is 3
	Decrement float64 // LDA step; 0.1
	MinFreq   float64 // prediction floor; Nexus prefetches aggressively, so ~0
}

// DefaultNexusConfig returns the published Nexus parameters. The small
// frequency floor drops one-off noise edges, without which the aggressive
// top-k policy floods the cache with never-repeated successors.
func DefaultNexusConfig() NexusConfig {
	return NexusConfig{Window: 3, Decrement: 0.1, MinFreq: 0.15}
}

// NewNexus builds a Nexus predictor.
func NewNexus(cfg NexusConfig) *Nexus {
	if cfg.Window <= 0 {
		cfg.Window = 3
	}
	if cfg.Decrement <= 0 {
		cfg.Decrement = 0.1
	}
	return &Nexus{graphPredictor{
		name:    "Nexus",
		g:       graph.New(graph.Config{Window: cfg.Window, Decrement: cfg.Decrement, MaxSuccessors: 64}),
		minFreq: cfg.MinFreq,
	}}
}

// ------------------------------------------------- conditioned successors

// scoped keys per-stream state by an attribute of the access, implementing
// PBS (program-based successors) and PULS (program- and user-based last
// successor): the successor relation is learned within each attribute
// stream, which removes cross-stream interleaving noise.
type scoped struct {
	name string
	key  func(*trace.Record) uint64
	last map[uint64]trace.FileID               // per-stream previous file
	succ map[trace.FileID]map[trace.FileID]int // successor counts
}

func newScoped(name string, key func(*trace.Record) uint64) *scoped {
	return &scoped{
		name: name,
		key:  key,
		last: make(map[uint64]trace.FileID),
		succ: make(map[trace.FileID]map[trace.FileID]int),
	}
}

// NewPBS returns the Program-Based Successor predictor.
func NewPBS() Predictor {
	return newScoped("PBS", func(r *trace.Record) uint64 { return uint64(r.PID) })
}

// NewPULS returns the Program- and User-based Last Successor predictor.
func NewPULS() Predictor {
	return newScoped("PULS", func(r *trace.Record) uint64 {
		return uint64(r.UID)<<32 | uint64(r.PID)
	})
}

// Name implements Predictor.
func (p *scoped) Name() string { return p.name }

// Record implements Predictor.
func (p *scoped) Record(r *trace.Record) {
	k := p.key(r)
	if prev, ok := p.last[k]; ok && prev != r.File {
		m := p.succ[prev]
		if m == nil {
			m = make(map[trace.FileID]int, 2)
			p.succ[prev] = m
		}
		m[r.File]++
	}
	p.last[k] = r.File
}

// Predict implements Predictor.
func (p *scoped) Predict(f trace.FileID, k int) []trace.FileID {
	if k < 1 {
		return nil
	}
	m := p.succ[f]
	if len(m) == 0 {
		return nil
	}
	type cand struct {
		f trace.FileID
		n int
	}
	cands := make([]cand, 0, len(m))
	for s, n := range m {
		cands = append(cands, cand{s, n})
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].n != cands[j].n {
			return cands[i].n > cands[j].n
		}
		return cands[i].f < cands[j].f
	})
	if len(cands) > k {
		cands = cands[:k]
	}
	out := make([]trace.FileID, len(cands))
	for i, c := range cands {
		out[i] = c.f
	}
	return out
}

// ------------------------------------------------------------------ FARMER

// Miner is the mining surface FPA drives: the single-lock core.Model and
// the FileID-striped core.ShardedModel both satisfy it, so a multi-worker
// MDS can swap in the sharded miner without touching the prefetch path.
type Miner interface {
	Feed(r *trace.Record)
	Predict(f trace.FileID, k int) []trace.FileID
	Stats() core.Stats
}

// FPA adapts a FARMER miner to the Predictor interface — the
// FARMER-enabled Prefetching Algorithm of §4.1/§5.
type FPA struct {
	m Miner
}

// NewFPA wraps a FARMER miner (core.Model or core.ShardedModel).
func NewFPA(m Miner) *FPA { return &FPA{m: m} }

// Miner exposes the underlying FARMER miner (for stats).
func (p *FPA) Miner() Miner { return p.m }

// Model exposes the underlying single-lock model, or nil when the FPA
// drives a sharded miner.
func (p *FPA) Model() *core.Model {
	m, _ := p.m.(*core.Model)
	return m
}

// Name implements Predictor.
func (p *FPA) Name() string { return "FARMER" }

// Record implements Predictor.
func (p *FPA) Record(r *trace.Record) { p.m.Feed(r) }

// Predict implements Predictor.
func (p *FPA) Predict(f trace.FileID, k int) []trace.FileID { return p.m.Predict(f, k) }

// None is the no-prefetch policy (plain LRU caching in the simulator).
type None struct{}

// NewNone returns the no-op predictor.
func NewNone() None { return None{} }

// Name implements Predictor.
func (None) Name() string { return "LRU" }

// Record implements Predictor.
func (None) Record(*trace.Record) {}

// Predict implements Predictor.
func (None) Predict(trace.FileID, int) []trace.FileID { return nil }
