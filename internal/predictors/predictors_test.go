package predictors

import (
	"math/rand/v2"
	"testing"

	"farmer/internal/core"
	"farmer/internal/trace"
	"farmer/internal/tracegen"
)

func rec(f trace.FileID, pid, uid uint32) *trace.Record {
	return &trace.Record{File: f, PID: pid, UID: uid}
}

func feedSeq(p Predictor, files ...trace.FileID) {
	for _, f := range files {
		p.Record(rec(f, 1, 1))
	}
}

func TestLastSuccessor(t *testing.T) {
	p := NewLastSuccessor()
	feedSeq(p, 0, 1, 0, 2)
	got := p.Predict(0, 1)
	if len(got) != 1 || got[0] != 2 {
		t.Fatalf("LS should predict most recent successor 2, got %v", got)
	}
	if p.Predict(9, 1) != nil {
		t.Fatal("unknown file predicted")
	}
	if p.Predict(0, 0) != nil {
		t.Fatal("k=0 returned candidates")
	}
}

func TestLastSuccessorIgnoresSelfRepeat(t *testing.T) {
	p := NewLastSuccessor()
	feedSeq(p, 0, 0, 1)
	if got := p.Predict(0, 1); len(got) != 1 || got[0] != 1 {
		t.Fatalf("self-repeat broke LS: %v", got)
	}
}

func TestFirstSuccessor(t *testing.T) {
	p := NewFirstSuccessor()
	feedSeq(p, 0, 1, 0, 2)
	got := p.Predict(0, 1)
	if len(got) != 1 || got[0] != 1 {
		t.Fatalf("FS should stick with first successor 1, got %v", got)
	}
}

func TestRecentPopularity(t *testing.T) {
	p := NewRecentPopularity(2, 4)
	// Successors of 0: 1, 2, 1, 1 -> 1 appears 3 times, 2 once; j=2 keeps 1.
	feedSeq(p, 0, 1, 0, 2, 0, 1, 0, 1)
	got := p.Predict(0, 2)
	if len(got) != 1 || got[0] != 1 {
		t.Fatalf("RecentPopularity = %v, want [1]", got)
	}
}

func TestRecentPopularityWindowSlides(t *testing.T) {
	p := NewRecentPopularity(2, 2)
	// Last 2 successors of 0 become 3,3 after feeding; early 1s must age out.
	feedSeq(p, 0, 1, 0, 1, 0, 3, 0, 3)
	got := p.Predict(0, 1)
	if len(got) != 1 || got[0] != 3 {
		t.Fatalf("window did not slide: %v", got)
	}
}

func TestRecentPopularityDefaults(t *testing.T) {
	p := NewRecentPopularity(0, 0)
	feedSeq(p, 0, 1, 0, 1)
	if got := p.Predict(0, 1); len(got) != 1 {
		t.Fatalf("default j-of-k broken: %v", got)
	}
}

func TestNexusRanksByLDAWeight(t *testing.T) {
	p := NewNexus(DefaultNexusConfig())
	// 0,1,2 repeatedly: edge 0->1 gets 1.0 per round, 0->2 gets 0.9.
	for i := 0; i < 5; i++ {
		feedSeq(p, 0, 1, 2)
	}
	got := p.Predict(0, 2)
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("Nexus ranking = %v, want [1 2]", got)
	}
}

func TestNexusMinFreqFloor(t *testing.T) {
	cfg := DefaultNexusConfig()
	cfg.MinFreq = 0.9
	p := NewNexus(cfg)
	feedSeq(p, 0, 1, 0, 2) // F(0,1)=0.5, F(0,2)=0.5 < 0.9
	if got := p.Predict(0, 4); got != nil {
		t.Fatalf("floor not applied: %v", got)
	}
}

func TestProbabilityGraphCutoff(t *testing.T) {
	p := NewProbabilityGraph(1, 0.4)
	// successors of 0: 1 x3, 2 x1 -> chances 0.75 / 0.25.
	feedSeq(p, 0, 1, 0, 1, 0, 1, 0, 2)
	got := p.Predict(0, 4)
	if len(got) != 1 || got[0] != 1 {
		t.Fatalf("ProbGraph = %v, want [1]", got)
	}
}

func TestSDGraphRanksAll(t *testing.T) {
	p := NewSDGraph(2)
	feedSeq(p, 0, 1, 2)
	got := p.Predict(0, 4)
	if len(got) != 2 {
		t.Fatalf("SDGraph = %v, want two candidates", got)
	}
}

// TestPBSSeparatesPrograms: interleaved programs must not pollute each
// other's successor tables.
func TestPBSSeparatesPrograms(t *testing.T) {
	p := NewPBS()
	// Program 1: 0 -> 1. Program 2: 5 -> 6. Interleaved globally.
	for i := 0; i < 4; i++ {
		p.Record(rec(0, 1, 1))
		p.Record(rec(5, 2, 2))
		p.Record(rec(1, 1, 1))
		p.Record(rec(6, 2, 2))
	}
	if got := p.Predict(0, 1); len(got) != 1 || got[0] != 1 {
		t.Fatalf("PBS Predict(0) = %v, want [1]", got)
	}
	if got := p.Predict(5, 1); len(got) != 1 || got[0] != 6 {
		t.Fatalf("PBS Predict(5) = %v, want [6]", got)
	}
}

// TestPULSSeparatesUserProgramPairs: same program id under different users
// must be distinct streams for PULS but merged for PBS.
func TestPULSSeparatesUserProgramPairs(t *testing.T) {
	puls := NewPULS()
	pbs := NewPBS()
	feed := func(p Predictor) {
		for i := 0; i < 4; i++ {
			p.Record(rec(0, 7, 1))  // user 1 running program 7: 0 -> 1
			p.Record(rec(10, 7, 2)) // user 2, same program: 10 -> 11
			p.Record(rec(1, 7, 1))
			p.Record(rec(11, 7, 2))
		}
	}
	feed(puls)
	feed(pbs)
	if got := puls.Predict(0, 1); len(got) != 1 || got[0] != 1 {
		t.Fatalf("PULS Predict(0) = %v, want [1]", got)
	}
	// PBS merges the two users into one program stream, where user 2's file
	// 10 always directly follows 0 — PBS learns the wrong successor, which
	// is exactly why PULS adds the user condition.
	got := pbs.Predict(0, 1)
	if len(got) != 1 || got[0] != 10 {
		t.Fatalf("PBS merged stream should mislearn successor 10, got %v", got)
	}
}

func TestFPAAdapter(t *testing.T) {
	cfg := core.DefaultConfig()
	cfg.MaxStrength = 0.0
	m := core.New(cfg)
	p := NewFPA(m)
	if p.Name() != "FARMER" {
		t.Fatal("name")
	}
	for i := 0; i < 6; i++ {
		p.Record(&trace.Record{File: 0, UID: 1, PID: 1, Path: "/d/a"})
		p.Record(&trace.Record{File: 1, UID: 1, PID: 1, Path: "/d/b"})
	}
	if got := p.Predict(0, 1); len(got) != 1 || got[0] != 1 {
		t.Fatalf("FPA Predict = %v, want [1]", got)
	}
	if p.Model() != m {
		t.Fatal("Model accessor broken")
	}
}

func TestNonePredictor(t *testing.T) {
	p := NewNone()
	p.Record(rec(0, 1, 1))
	if p.Predict(0, 4) != nil {
		t.Fatal("None predicted something")
	}
	if p.Name() != "LRU" {
		t.Fatal("None should present as LRU in tables")
	}
}

// TestAllPredictorsRunOnRealWorkload smoke-tests every policy on a generated
// trace: no panics, sane outputs, deterministic predictions.
func TestAllPredictorsRunOnRealWorkload(t *testing.T) {
	tr := tracegen.HP(8000).MustGenerate()
	make := func() []Predictor {
		cfg := core.DefaultConfig()
		return []Predictor{
			NewLastSuccessor(),
			NewFirstSuccessor(),
			NewRecentPopularity(2, 4),
			NewProbabilityGraph(2, 0.1),
			NewSDGraph(4),
			NewNexus(DefaultNexusConfig()),
			NewPBS(),
			NewPULS(),
			NewFPA(core.New(cfg)),
			NewNone(),
		}
	}
	ps := make()
	for i := range tr.Records {
		for _, p := range ps {
			p.Record(&tr.Records[i])
		}
	}
	rng := rand.New(rand.NewPCG(1, 1))
	for _, p := range ps {
		for i := 0; i < 50; i++ {
			f := trace.FileID(rng.IntN(tr.FileCount))
			got := p.Predict(f, 4)
			if len(got) > 4 {
				t.Fatalf("%s returned %d > k candidates", p.Name(), len(got))
			}
			for _, s := range got {
				if s == f {
					t.Fatalf("%s predicted the file itself", p.Name())
				}
			}
		}
	}
	// Determinism: two identical runs agree.
	ps2 := make()
	for i := range tr.Records {
		for _, p := range ps2 {
			p.Record(&tr.Records[i])
		}
	}
	for i := range ps {
		for f := trace.FileID(0); f < 100; f++ {
			a := ps[i].Predict(f, 3)
			b := ps2[i].Predict(f, 3)
			if len(a) != len(b) {
				t.Fatalf("%s nondeterministic", ps[i].Name())
			}
			for j := range a {
				if a[j] != b[j] {
					t.Fatalf("%s nondeterministic at file %d", ps[i].Name(), f)
				}
			}
		}
	}
}
