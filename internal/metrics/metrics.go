// Package metrics provides the small statistics toolkit the experiment
// harness uses: streaming mean/max, a log-bucketed latency histogram with
// percentile estimation, and fixed-width table rendering for the paper's
// figures and tables.
package metrics

import (
	"fmt"
	"math"
	"strings"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing event counter safe for concurrent
// use — the accounting primitive shared by pipeline stages that run on
// different goroutines (e.g. dropped-prefetch counts between the async
// prediction workers and the stats reader). The zero value is ready to use.
type Counter struct{ n atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.n.Add(1) }

// Add folds delta occurrences in.
func (c *Counter) Add(delta uint64) { c.n.Add(delta) }

// Load reports the current count.
func (c *Counter) Load() uint64 { return c.n.Load() }

// Welford accumulates mean and variance in one pass.
type Welford struct {
	n    uint64
	mean float64
	m2   float64
}

// Add folds one observation in.
func (w *Welford) Add(x float64) {
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// N reports the observation count.
func (w *Welford) N() uint64 { return w.n }

// Mean reports the running mean (0 when empty).
func (w *Welford) Mean() float64 { return w.mean }

// Variance reports the sample variance (0 for < 2 observations).
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// StdDev reports the sample standard deviation.
func (w *Welford) StdDev() float64 { return math.Sqrt(w.Variance()) }

// LatencyHist is a log2-bucketed duration histogram from 1µs to ~17min.
type LatencyHist struct {
	buckets [31]uint64
	count   uint64
	sum     time.Duration
	max     time.Duration
}

func bucketOf(d time.Duration) int {
	us := d.Microseconds()
	if us < 1 {
		return 0
	}
	b := 0
	for us > 0 && b < 30 {
		us >>= 1
		b++
	}
	return b
}

// Observe records one latency.
func (h *LatencyHist) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.buckets[bucketOf(d)]++
	h.count++
	h.sum += d
	if d > h.max {
		h.max = d
	}
}

// Count reports the number of observations.
func (h *LatencyHist) Count() uint64 { return h.count }

// Mean reports the average latency.
func (h *LatencyHist) Mean() time.Duration {
	if h.count == 0 {
		return 0
	}
	return h.sum / time.Duration(h.count)
}

// Max reports the largest observation.
func (h *LatencyHist) Max() time.Duration { return h.max }

// Quantile estimates the q-quantile (0 < q <= 1) from bucket upper bounds.
func (h *LatencyHist) Quantile(q float64) time.Duration {
	if h.count == 0 || q <= 0 {
		return 0
	}
	if q > 1 {
		q = 1
	}
	target := uint64(math.Ceil(q * float64(h.count)))
	var acc uint64
	for b, n := range h.buckets {
		acc += n
		if acc >= target {
			// Upper bound of bucket b is 2^b microseconds.
			return time.Duration(1<<uint(b)) * time.Microsecond
		}
	}
	return h.max
}

// Merge folds another histogram into h.
func (h *LatencyHist) Merge(o *LatencyHist) {
	for i := range h.buckets {
		h.buckets[i] += o.buckets[i]
	}
	h.count += o.count
	h.sum += o.sum
	if o.max > h.max {
		h.max = o.max
	}
}

// Table renders aligned experiment tables.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table { return &Table{header: header} }

// AddRow appends a row; cells are formatted with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.4f", v)
		case time.Duration:
			row[i] = fmt.Sprintf("%.3fms", float64(v)/float64(time.Millisecond))
		default:
			row[i] = fmt.Sprint(c)
		}
	}
	t.rows = append(t.rows, row)
}

// Rows reports the number of data rows.
func (t *Table) Rows() int { return len(t.rows) }

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.header))
	for i, hcell := range t.header {
		widths[i] = len(hcell)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[min(i, len(widths)-1)], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}
