package metrics

import (
	"math"
	"math/rand/v2"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestWelfordAgainstDirect(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))
	var w Welford
	var xs []float64
	for i := 0; i < 1000; i++ {
		x := rng.NormFloat64()*3 + 10
		xs = append(xs, x)
		w.Add(x)
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	mean := sum / float64(len(xs))
	var ss float64
	for _, x := range xs {
		ss += (x - mean) * (x - mean)
	}
	variance := ss / float64(len(xs)-1)
	if math.Abs(w.Mean()-mean) > 1e-9 {
		t.Fatalf("mean %v vs %v", w.Mean(), mean)
	}
	if math.Abs(w.Variance()-variance) > 1e-6 {
		t.Fatalf("variance %v vs %v", w.Variance(), variance)
	}
	if w.N() != 1000 {
		t.Fatalf("n = %d", w.N())
	}
}

func TestWelfordEmpty(t *testing.T) {
	var w Welford
	if w.Mean() != 0 || w.Variance() != 0 || w.StdDev() != 0 {
		t.Fatal("empty Welford not zero")
	}
}

func TestHistMeanMax(t *testing.T) {
	var h LatencyHist
	h.Observe(1 * time.Millisecond)
	h.Observe(3 * time.Millisecond)
	if h.Count() != 2 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Mean() != 2*time.Millisecond {
		t.Fatalf("mean = %v", h.Mean())
	}
	if h.Max() != 3*time.Millisecond {
		t.Fatalf("max = %v", h.Max())
	}
}

func TestHistQuantileMonotone(t *testing.T) {
	var h LatencyHist
	rng := rand.New(rand.NewPCG(2, 2))
	for i := 0; i < 5000; i++ {
		h.Observe(time.Duration(rng.ExpFloat64()*2000) * time.Microsecond)
	}
	q50 := h.Quantile(0.5)
	q95 := h.Quantile(0.95)
	q99 := h.Quantile(0.99)
	if q50 > q95 || q95 > q99 {
		t.Fatalf("quantiles not monotone: %v %v %v", q50, q95, q99)
	}
	if h.Quantile(1.0) > h.Max()*2 {
		t.Fatalf("q100 = %v far above max %v", h.Quantile(1.0), h.Max())
	}
}

func TestHistQuantileBracketsExactValue(t *testing.T) {
	var h LatencyHist
	for i := 0; i < 100; i++ {
		h.Observe(100 * time.Microsecond)
	}
	q := h.Quantile(0.5)
	// 100µs lives in bucket with upper bound 128µs.
	if q < 100*time.Microsecond || q > 256*time.Microsecond {
		t.Fatalf("quantile = %v, want within a bucket of 100µs", q)
	}
}

func TestHistNegativeClamped(t *testing.T) {
	var h LatencyHist
	h.Observe(-time.Second)
	if h.Max() != 0 {
		t.Fatalf("negative not clamped: %v", h.Max())
	}
}

func TestHistMerge(t *testing.T) {
	var a, b LatencyHist
	a.Observe(time.Millisecond)
	b.Observe(3 * time.Millisecond)
	a.Merge(&b)
	if a.Count() != 2 || a.Mean() != 2*time.Millisecond || a.Max() != 3*time.Millisecond {
		t.Fatalf("merge wrong: count=%d mean=%v max=%v", a.Count(), a.Mean(), a.Max())
	}
}

func TestHistEmptyQuantile(t *testing.T) {
	var h LatencyHist
	if h.Quantile(0.5) != 0 || h.Mean() != 0 {
		t.Fatal("empty hist not zero")
	}
}

// Property: quantile never decreases in q.
func TestQuantileMonotoneProperty(t *testing.T) {
	f := func(seed uint64, n uint8) bool {
		var h LatencyHist
		rng := rand.New(rand.NewPCG(seed, 7))
		for i := 0; i < int(n)+1; i++ {
			h.Observe(time.Duration(rng.IntN(1_000_000)) * time.Microsecond)
		}
		prev := time.Duration(0)
		for q := 0.1; q <= 1.0; q += 0.1 {
			v := h.Quantile(q)
			if v < prev {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestTableRendering(t *testing.T) {
	tab := NewTable("Trace", "Hit Ratio", "Latency")
	tab.AddRow("HP", 0.55214, 1500*time.Microsecond)
	tab.AddRow("INS", 0.93884, 900*time.Microsecond)
	out := tab.String()
	if !strings.Contains(out, "0.5521") || !strings.Contains(out, "1.500ms") {
		t.Fatalf("formatting wrong:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 { // header, separator, 2 rows
		t.Fatalf("line count = %d:\n%s", len(lines), out)
	}
	if tab.Rows() != 2 {
		t.Fatalf("Rows = %d", tab.Rows())
	}
}
