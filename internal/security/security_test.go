package security

import (
	"testing"

	"farmer/internal/core"
	"farmer/internal/graph"
	"farmer/internal/trace"
	"farmer/internal/tracegen"
	"farmer/internal/vsm"
)

// chainModel mines a deterministic strong chain 0 -> 1 -> 2 so propagation
// paths are predictable.
func chainModel(t *testing.T) *core.Model {
	t.Helper()
	cfg := core.DefaultConfig()
	cfg.MaxStrength = 0.1
	cfg.Graph = graph.Config{Window: 1}
	m := core.New(cfg)
	paths := []string{"/d/x0", "/d/x1", "/d/x2"}
	for i := 0; i < 10; i++ {
		for _, f := range []trace.FileID{0, 1, 2} {
			m.Feed(&trace.Record{File: f, UID: 1, PID: 1, Host: 1, Path: paths[f]})
		}
		m.ResetWindow()
	}
	// Degrees along the chain: sim = (3 scalars + path 1/2)/4 = 0.875,
	// F = 1.0 -> R = 0.7*0.875 + 0.3 = 0.9125 < 1.
	return m
}

func TestManagerValidation(t *testing.T) {
	m := chainModel(t)
	if _, err := NewManager(nil, DefaultConfig()); err == nil {
		t.Fatal("nil model accepted")
	}
	if _, err := NewManager(m, Config{MinStrength: 0}); err == nil {
		t.Fatal("zero MinStrength accepted")
	}
	if _, err := NewManager(m, Config{MinStrength: 0.5, MaxHops: -1}); err == nil {
		t.Fatal("negative MaxHops accepted")
	}
}

func TestInstallPropagatesOneHop(t *testing.T) {
	m := chainModel(t)
	mgr, err := NewManager(m, Config{MinStrength: 0.5, MaxHops: 1})
	if err != nil {
		t.Fatal(err)
	}
	reached := mgr.Install(0, Rule{Principal: 7, Action: ActionRead, Effect: Deny})
	if len(reached) == 0 {
		t.Fatal("rule did not propagate")
	}
	if mgr.Allowed(0, 7, ActionRead) {
		t.Fatal("direct deny ignored")
	}
	if mgr.Allowed(reached[0], 7, ActionRead) {
		t.Fatal("propagated deny ignored")
	}
	// Other principals and actions stay open.
	if !mgr.Allowed(0, 8, ActionRead) || !mgr.Allowed(0, 7, ActionWrite) {
		t.Fatal("deny leaked to other principal/action")
	}
}

func TestPropagationRespectsMaxHops(t *testing.T) {
	m := chainModel(t)
	// Degrees 0->1 and 1->2 are ~0.93; two hops product ~0.87.
	one, _ := NewManager(m, Config{MinStrength: 0.5, MaxHops: 1})
	two, _ := NewManager(m, Config{MinStrength: 0.5, MaxHops: 2})
	r1 := one.Install(0, Rule{Principal: 1, Action: ActionWrite, Effect: Deny})
	r2 := two.Install(0, Rule{Principal: 1, Action: ActionWrite, Effect: Deny})
	if len(r2) <= len(r1) {
		t.Fatalf("2-hop propagation (%d files) not wider than 1-hop (%d)", len(r2), len(r1))
	}
}

func TestPropagationRespectsMinStrength(t *testing.T) {
	m := chainModel(t)
	strict, _ := NewManager(m, Config{MinStrength: 0.999, MaxHops: 3})
	reached := strict.Install(0, Rule{Principal: 1, Action: ActionRead, Effect: Deny})
	if len(reached) != 0 {
		t.Fatalf("near-1 threshold still propagated: %v", reached)
	}
}

func TestPropagatedMarkedAndWeaker(t *testing.T) {
	m := chainModel(t)
	mgr, _ := NewManager(m, DefaultConfig())
	reached := mgr.Install(0, Rule{Principal: 3, Action: ActionRead, Effect: Allow})
	if len(reached) == 0 {
		t.Fatal("no propagation")
	}
	direct := mgr.Rules(0)
	if len(direct) != 1 || direct[0].Propagated || direct[0].Strength != 1.0 {
		t.Fatalf("direct rule wrong: %+v", direct)
	}
	prop := mgr.Rules(reached[0])
	if len(prop) != 1 || !prop[0].Propagated || prop[0].Strength >= 1.0 {
		t.Fatalf("propagated rule wrong: %+v", prop)
	}
}

func TestDirectRuleDominatesPropagated(t *testing.T) {
	m := chainModel(t)
	mgr, _ := NewManager(m, DefaultConfig())
	mgr.Install(0, Rule{Principal: 5, Action: ActionRead, Effect: Deny}) // propagates to 1
	mgr.Install(1, Rule{Principal: 5, Action: ActionRead, Effect: Deny}) // direct install on 1
	for _, r := range mgr.Rules(1) {
		if r.Principal == 5 && r.Propagated {
			t.Fatal("direct rule did not replace propagated duplicate")
		}
	}
}

func TestSecureDeleteSetClosure(t *testing.T) {
	m := chainModel(t)
	mgr, _ := NewManager(m, Config{MinStrength: 0.5, MaxHops: 2})
	set := mgr.SecureDeleteSet(0)
	if len(set) < 3 {
		t.Fatalf("delete set %v should cover the chain", set)
	}
	if set[0] != 0 {
		t.Fatalf("delete set must include the root: %v", set)
	}
}

func TestOnRealWorkload(t *testing.T) {
	tr := tracegen.HP(8000).MustGenerate()
	cfg := core.DefaultConfig()
	cfg.Mask = vsm.DefaultMask(true)
	model := core.New(cfg)
	model.FeedTrace(tr)
	mgr, err := NewManager(model, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Install on the file with the longest list and check propagation hit
	// correlated files.
	var hot trace.FileID
	best := 0
	for f := 0; f < tr.FileCount; f++ {
		if n := len(model.CorrelatorList(trace.FileID(f))); n > best {
			hot, best = trace.FileID(f), n
		}
	}
	if best == 0 {
		t.Skip("no correlations mined")
	}
	reached := mgr.Install(hot, Rule{Principal: 1, Action: ActionDelete, Effect: Deny})
	if len(reached) == 0 {
		t.Fatal("no propagation on real workload")
	}
	for _, f := range reached {
		if mgr.Allowed(f, 1, ActionDelete) {
			t.Fatalf("propagated deny not enforced on %d", f)
		}
	}
}
