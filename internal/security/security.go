// Package security implements FARMER-enabled security (paper §4.3): when a
// user configures a rule-based access policy on a file, the rule propagates
// automatically to files strongly correlated with it, including transitive
// propagation with degree decay, plus correlation-aware secure delete.
package security

import (
	"fmt"
	"sort"
	"sync"

	"farmer/internal/core"
	"farmer/internal/trace"
)

// Action is the access class a rule governs.
type Action uint8

// Rule actions.
const (
	ActionRead Action = iota
	ActionWrite
	ActionDelete
)

var actionNames = [...]string{"read", "write", "delete"}

// String returns the action name.
func (a Action) String() string {
	if int(a) < len(actionNames) {
		return actionNames[a]
	}
	return "action?"
}

// Effect is allow or deny.
type Effect uint8

// Rule effects. Deny dominates when rules conflict.
const (
	Allow Effect = iota
	Deny
)

// String returns "allow" or "deny".
func (e Effect) String() string {
	if e == Deny {
		return "deny"
	}
	return "allow"
}

// Rule is one access-control entry.
type Rule struct {
	Principal uint32 // user id the rule applies to
	Action    Action
	Effect    Effect
	// Propagated marks rules installed by correlation propagation rather
	// than directly by an administrator.
	Propagated bool
	// Strength is the correlation degree along the propagation path (1.0
	// for directly-installed rules).
	Strength float64
}

// Config tunes propagation.
type Config struct {
	// MinStrength stops propagation when the path degree product drops
	// below this bound.
	MinStrength float64
	// MaxHops bounds transitive propagation depth.
	MaxHops int
}

// DefaultConfig propagates across one or two strong hops.
func DefaultConfig() Config { return Config{MinStrength: 0.5, MaxHops: 2} }

// Manager holds rules and propagates them along mined correlations.
type Manager struct {
	cfg   Config
	model *core.Model

	mu    sync.RWMutex
	rules map[trace.FileID][]Rule
}

// NewManager builds a manager over a mined model.
func NewManager(model *core.Model, cfg Config) (*Manager, error) {
	if model == nil {
		return nil, fmt.Errorf("security: nil model")
	}
	if cfg.MinStrength <= 0 || cfg.MinStrength > 1 {
		return nil, fmt.Errorf("security: MinStrength %v outside (0,1]", cfg.MinStrength)
	}
	if cfg.MaxHops < 0 {
		return nil, fmt.Errorf("security: negative MaxHops")
	}
	return &Manager{cfg: cfg, model: model, rules: make(map[trace.FileID][]Rule)}, nil
}

// Install sets a rule on a file and propagates it to correlated files whose
// path degree product stays at or above MinStrength, up to MaxHops away.
// It returns the files (excluding the root) that received a propagated rule.
func (m *Manager) Install(f trace.FileID, r Rule) []trace.FileID {
	r.Propagated = false
	r.Strength = 1.0
	m.mu.Lock()
	defer m.mu.Unlock()
	m.addRule(f, r)

	var reached []trace.FileID
	visited := map[trace.FileID]bool{f: true}
	type frontier struct {
		f        trace.FileID
		strength float64
	}
	queue := []frontier{{f, 1.0}}
	for hop := 0; hop < m.cfg.MaxHops; hop++ {
		var next []frontier
		for _, cur := range queue {
			for _, c := range m.model.CorrelatorList(cur.f) {
				s := cur.strength * c.Degree
				if s < m.cfg.MinStrength || visited[c.File] {
					continue
				}
				visited[c.File] = true
				pr := r
				pr.Propagated = true
				pr.Strength = s
				m.addRule(c.File, pr)
				reached = append(reached, c.File)
				next = append(next, frontier{c.File, s})
			}
		}
		queue = next
	}
	sort.Slice(reached, func(i, j int) bool { return reached[i] < reached[j] })
	return reached
}

// addRule appends holding m.mu; an exact duplicate (principal+action)
// keeps the stronger entry, with direct rules dominating propagated ones.
func (m *Manager) addRule(f trace.FileID, r Rule) {
	rules := m.rules[f]
	for i := range rules {
		if rules[i].Principal == r.Principal && rules[i].Action == r.Action && rules[i].Effect == r.Effect {
			if !r.Propagated || (rules[i].Propagated && r.Strength > rules[i].Strength) {
				rules[i] = r
			}
			return
		}
	}
	m.rules[f] = append(rules, r)
}

// Allowed evaluates an access: deny rules dominate; with no matching rule
// the default is allow (open policy, matching HUSt's default).
func (m *Manager) Allowed(f trace.FileID, principal uint32, a Action) bool {
	m.mu.RLock()
	defer m.mu.RUnlock()
	allowed := true
	for _, r := range m.rules[f] {
		if r.Principal != principal || r.Action != a {
			continue
		}
		if r.Effect == Deny {
			return false
		}
		allowed = true
	}
	return allowed
}

// Rules returns a copy of a file's rule list.
func (m *Manager) Rules(f trace.FileID) []Rule {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return append([]Rule(nil), m.rules[f]...)
}

// SecureDeleteSet returns the correlation closure that a secure delete of f
// should scrub together (paper: "secured delete" over correlated files):
// f plus every file reachable with path degree >= MinStrength.
func (m *Manager) SecureDeleteSet(f trace.FileID) []trace.FileID {
	m.mu.RLock()
	defer m.mu.RUnlock()
	visited := map[trace.FileID]bool{f: true}
	queue := []trace.FileID{f}
	strength := map[trace.FileID]float64{f: 1.0}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, c := range m.model.CorrelatorList(cur) {
			s := strength[cur] * c.Degree
			if s < m.cfg.MinStrength || visited[c.File] {
				continue
			}
			visited[c.File] = true
			strength[c.File] = s
			queue = append(queue, c.File)
		}
	}
	out := make([]trace.FileID, 0, len(visited))
	for id := range visited {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
