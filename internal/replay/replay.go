// Package replay is the deterministic trace-replay harness behind the async
// prefetch pipeline's correctness claims. It runs the same trace through the
// synchronous and asynchronous pipelines under the virtual-time engine and
// exposes what the tests assert:
//
//   - a Fingerprint of the complete mined state (every Correlator List,
//     degrees compared at full float64 precision), so "bit-identical mined
//     state" is one uint64 comparison;
//   - a Comparison bundling the no-prefetch baseline with the sync and
//     async FARMER replays of one trace, so demand-latency regressions are
//     directly visible;
//   - RunPipeline, which drives the real goroutine-based prefetch.Pipeline
//     (tap consumers, bounded queue, submit loop) over the same trace so
//     the concurrent path is exercised under -race and cross-checked
//     against the sequential mine.
//
// Everything here is virtual-time or barrier-synchronized, so results are
// reproducible run-to-run.
package replay

import (
	"fmt"

	"farmer/internal/core"
	"farmer/internal/hust"
	"farmer/internal/predictors"
	"farmer/internal/prefetch"
	"farmer/internal/sim"
	"farmer/internal/trace"
)

// lister is the read surface a fingerprint needs; core.Model and
// core.ShardedModel both satisfy it.
type lister interface {
	CorrelatorList(f trace.FileID) []core.Correlator
}

// Fingerprint hashes the complete mined correlation state over the dense
// FileID space [0, fileCount): list lengths, successor ids and the exact
// float64 bits of every degree component. Two miners agree on the
// fingerprint iff their mined state is bit-identical. It delegates to
// core.StateFingerprint, the same hash the replication layer verifies
// catch-up transfers with, so the harness and the wire agree by
// construction.
func Fingerprint(m lister, fileCount int) uint64 {
	return core.StateFingerprint(m, fileCount)
}

// MineSequential feeds the trace through the paper-exact single-lock Model
// and fingerprints the result — the reference every other path must match.
func MineSequential(tr *trace.Trace, mc core.Config) uint64 {
	mc.Shards = 0
	m := core.New(mc)
	m.FeedTrace(tr)
	return Fingerprint(m, tr.FileCount)
}

// Outcome is one FARMER replay: the simulation result plus the miner's
// mined-state fingerprint.
type Outcome struct {
	Result      hust.Result
	Fingerprint uint64
}

// FARMER replays tr through a FARMER MDS built from cfg/mc and fingerprints
// the mined state afterwards.
func FARMER(tr *trace.Trace, cfg hust.ReplayConfig, mc core.Config) (Outcome, error) {
	var mds *hust.MDS
	res, err := hust.Replay(tr, cfg, func(e *sim.Engine) (*hust.MDS, error) {
		m, err := hust.NewFARMERMDS(e, cfg.MDS, nil, mc)
		mds = m
		return m, err
	})
	if err != nil {
		return Outcome{}, err
	}
	miner, err := minerOf(mds)
	if err != nil {
		return Outcome{}, err
	}
	return Outcome{Result: res, Fingerprint: Fingerprint(miner, tr.FileCount)}, nil
}

func minerOf(m *hust.MDS) (*core.ShardedModel, error) {
	fpa, ok := m.Predictor().(*predictors.FPA)
	if !ok {
		return nil, fmt.Errorf("replay: MDS predictor %q is not a FARMER FPA", m.Predictor().Name())
	}
	sm, ok := fpa.Miner().(*core.ShardedModel)
	if !ok {
		return nil, fmt.Errorf("replay: FPA does not drive a sharded miner")
	}
	return sm, nil
}

// Comparison bundles the three replays of one trace the async-pipeline
// claims rest on: a no-prefetch baseline (no mining cost), the synchronous
// FARMER pipeline (mining on the demand path), and the asynchronous one
// (mining on the shard-worker station).
type Comparison struct {
	Baseline hust.Result
	Sync     Outcome
	Async    Outcome
}

// Compare replays tr three ways under identical arrival processes. cfg.MDS
// carries the mining-cost (MineTime) and backpressure (PrefetchQueue)
// knobs; AsyncPrefetch is overridden per leg. The baseline leg clears
// MineTime and disables prefetching.
func Compare(tr *trace.Trace, cfg hust.ReplayConfig, mc core.Config) (Comparison, error) {
	var out Comparison

	base := cfg
	base.MDS.MineTime = 0
	base.MDS.AsyncPrefetch = false
	base.MDS.PrefetchK = 0
	res, err := hust.Replay(tr, base, func(e *sim.Engine) (*hust.MDS, error) {
		return hust.NewMDS(e, base.MDS, nil, predictors.NewNone())
	})
	if err != nil {
		return out, err
	}
	out.Baseline = res

	sync := cfg
	sync.MDS.AsyncPrefetch = false
	if out.Sync, err = FARMER(tr, sync, mc); err != nil {
		return out, err
	}

	async := cfg
	async.MDS.AsyncPrefetch = true
	if out.Async, err = FARMER(tr, async, mc); err != nil {
		return out, err
	}
	return out, nil
}

// ClusterOutcome is one multi-MDS cluster replay: the aggregate simulation
// stats, the merged mined-state fingerprint (0 for per-partition clusters,
// whose servers mine disjoint local models), and the cluster itself for
// follow-on persistence or prediction checks.
type ClusterOutcome struct {
	Stats       hust.ClusterStats
	Fingerprint uint64
	Cluster     *hust.Cluster
}

// GlobalCluster replays tr through an n-server global-mining cluster
// (cluster-level dispatcher, inter-MDS mailboxes) and fingerprints the
// merged model — directly comparable against MineSequential, because a
// drop-free global cluster mines bit-identical state.
func GlobalCluster(tr *trace.Trace, cfg hust.ReplayConfig, n int, part hust.Partitioner,
	mc core.Config, gcfg hust.GlobalConfig) (ClusterOutcome, error) {
	stats, c, err := hust.ReplayGlobalCluster(tr, cfg, n, part, mc, gcfg)
	if err != nil {
		return ClusterOutcome{}, err
	}
	return ClusterOutcome{
		Stats:       stats,
		Fingerprint: Fingerprint(c.GlobalMiner(), tr.FileCount),
		Cluster:     c,
	}, nil
}

// LocalCluster replays tr through the per-partition baseline: every server
// runs its own FARMER miner over only the sub-stream it observes (mining on
// the demand path, as the paper's prototype does).
func LocalCluster(tr *trace.Trace, cfg hust.ReplayConfig, n int, part hust.Partitioner,
	mc core.Config) (ClusterOutcome, error) {
	mc.Shards = 1
	stats, err := hust.ReplayCluster(tr, cfg, n, part, func(i int, e *sim.Engine) (*hust.MDS, error) {
		return hust.NewFARMERMDS(e, cfg.MDS, nil, mc)
	})
	if err != nil {
		return ClusterOutcome{}, err
	}
	return ClusterOutcome{Stats: stats}, nil
}

// PipelineOutcome is one RunPipeline execution: the mined-state fingerprint
// after the concurrent ingest and the pipeline's loss accounting.
type PipelineOutcome struct {
	Fingerprint uint64
	Stats       prefetch.Stats
}

// RunPipeline ingests the trace into a fresh sharded miner in batches while
// a real prefetch.Pipeline (goroutine tap consumers, bounded queue, submit
// loop) runs against it, delivering candidates to sink (discarded when
// nil). It returns after the pipeline has fully drained, so the fingerprint
// and stats are stable.
func RunPipeline(tr *trace.Trace, mc core.Config, pcfg prefetch.Config, sink prefetch.Sink) PipelineOutcome {
	sm := core.NewSharded(mc)
	p := prefetch.Start(sm, sink, pcfg)
	const chunk = 512
	for lo := 0; lo < len(tr.Records); lo += chunk {
		hi := lo + chunk
		if hi > len(tr.Records) {
			hi = len(tr.Records)
		}
		sm.FeedBatch(tr.Records[lo:hi])
	}
	p.Stop()
	return PipelineOutcome{Fingerprint: Fingerprint(sm, tr.FileCount), Stats: p.Stats()}
}
