package replay

// The replication half of the replay harness's correctness claims
// (ISSUE 5 acceptance criteria):
//
//	(a) a primary→follower farmerd pair mines a bit-identical model
//	    fingerprint on HP/50k — including a follower that bootstrapped
//	    from a mid-stream catch-up checkpoint rather than record zero;
//	(b) killing the primary mid-trace loses no acked record: a client
//	    using multi-address farmer.Dial completes the trace against the
//	    promoted follower and the final state equals the sequential
//	    reference mine of the full trace.

import (
	"bytes"
	"context"
	"errors"
	"net"
	"testing"
	"time"

	"farmer"
	"farmer/internal/core"
	"farmer/internal/kvstore"
	"farmer/internal/rpc"
	"farmer/internal/tracegen"
)

// startServeRole serves a miner with an arbitrary ServeConfig and returns a
// stop that tolerates drain errors — the shape the kill-the-primary tests
// need (a crash is not a clean drain).
func startServeRole(t testing.TB, m *farmer.LocalMiner, cfg farmer.ServeConfig) (addr string, stop func() error) {
	t.Helper()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- farmer.Serve(ctx, lis, m, cfg) }()
	return lis.Addr().String(), func() error {
		cancel()
		select {
		case err := <-done:
			return err
		case <-time.After(15 * time.Second):
			t.Fatal("serve did not stop")
			return nil
		}
	}
}

// TestReplicatedPairBitIdenticalHP50k is acceptance criterion (a): on the
// HP/50k trace, a primary that already mined 20k records bootstraps a
// follower via catch-up (checkpoint snapshot + position + fingerprint) and
// streams the remaining 30k as they are acked; primary, follower and the
// sequential reference all fingerprint identically, at different shard
// counts on every node.
func TestReplicatedPairBitIdenticalHP50k(t *testing.T) {
	tr := tracegen.HP(50000).MustGenerate()
	mc := core.DefaultConfig()
	ref := MineSequential(tr, mc)
	ctx := context.Background()
	const preFed = 20000

	follower, err := farmer.Open(farmer.DefaultConfig(), farmer.WithShards(2))
	if err != nil {
		t.Fatal(err)
	}
	defer follower.Close()
	fAddr, fStop := startServeRole(t, follower, farmer.ServeConfig{Follower: true})
	defer fStop()

	primary, err := farmer.Open(farmer.DefaultConfig(), farmer.WithShards(4))
	if err != nil {
		t.Fatal(err)
	}
	defer primary.Close()
	// The primary mined 20k records before the follower existed: the
	// catch-up must carry lists, vectors, graph and lookahead window for
	// the follower to continue bit-identically.
	if err := primary.FeedBatch(ctx, tr.Records[:preFed]); err != nil {
		t.Fatal(err)
	}
	pAddr, pStop := startServeRole(t, primary, farmer.ServeConfig{ReplicateTo: []string{fAddr}})
	defer pStop()

	client, err := farmer.Dial(ctx, pAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	const chunk = 1024
	for lo := preFed; lo < len(tr.Records); lo += chunk {
		hi := min(lo+chunk, len(tr.Records))
		if err := client.FeedBatch(ctx, tr.Records[lo:hi]); err != nil {
			t.Fatal(err)
		}
	}

	if got := Fingerprint(primary.Sharded(), tr.FileCount); got != ref {
		t.Fatalf("primary fingerprint %#x != sequential %#x", got, ref)
	}
	// Every client ack waited for the follower's ack, so the follower is
	// already byte-complete — no settling sleep needed.
	if got := Fingerprint(follower.Sharded(), tr.FileCount); got != ref {
		t.Fatalf("follower fingerprint %#x != sequential %#x", got, ref)
	}
	if fed := follower.Sharded().Fed(); fed != uint64(len(tr.Records)) {
		t.Fatalf("follower fed %d, want %d", fed, len(tr.Records))
	}
}

// TestFailoverLosesNoAckedRecord is acceptance criterion (b) in-process:
// the primary dies abruptly mid-trace (connections cut, no goodbye), the
// multi-address client fails over to the follower — which promotes because
// its primary link dropped — and the harness resumes from the survivor's
// Fed count. Nothing acked is lost, nothing is double-mined: the promoted
// follower finishes the trace bit-identical to the sequential reference.
func TestFailoverLosesNoAckedRecord(t *testing.T) {
	tr := tracegen.HP(50000).MustGenerate()
	mc := core.DefaultConfig()
	ref := MineSequential(tr, mc)
	ctx := context.Background()

	follower, err := farmer.Open(farmer.DefaultConfig(), farmer.WithShards(2))
	if err != nil {
		t.Fatal(err)
	}
	defer follower.Close()
	fAddr, fStop := startServeRole(t, follower, farmer.ServeConfig{Follower: true})
	defer fStop()

	primary, err := farmer.Open(farmer.DefaultConfig(), farmer.WithShards(3))
	if err != nil {
		t.Fatal(err)
	}
	defer primary.Close()
	pAddr, pStop := startServeRole(t, primary, farmer.ServeConfig{
		ReplicateTo: []string{fAddr},
		// A near-zero drain makes the stop a crash: in-flight pipelines are
		// cut, not drained.
		DrainTimeout: time.Millisecond,
	})

	client, err := farmer.Dial(ctx, pAddr, farmer.WithFailover(fAddr))
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	const chunk = 512
	const killAt = 25000
	killed := false
	acked := uint64(0)
	lo := 0
	for lo < len(tr.Records) {
		if !killed && lo >= killAt {
			pStop() // SIGKILL-shaped: ignore the drain error, the process is gone
			killed = true
		}
		hi := min(lo+chunk, len(tr.Records))
		err := client.FeedBatch(ctx, tr.Records[lo:hi])
		if err == nil {
			acked = uint64(hi)
			lo = hi
			continue
		}
		if !errors.Is(err, farmer.ErrDisconnected) {
			t.Fatalf("feed failed with %v at record %d", err, lo)
		}
		// In-doubt batch: resume from the survivor's exact position.
		st, serr := client.Stats(ctx)
		if serr != nil {
			t.Fatalf("failover stats: %v", serr)
		}
		if st.Fed < acked {
			t.Fatalf("ACKED RECORD LOST: survivor holds %d records, %d were acked", st.Fed, acked)
		}
		lo = int(st.Fed)
	}
	if !killed {
		t.Fatal("primary was never killed")
	}

	st, err := client.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Fed != uint64(len(tr.Records)) {
		t.Fatalf("survivor fed %d, want %d", st.Fed, len(tr.Records))
	}
	if got := Fingerprint(follower.Sharded(), tr.FileCount); got != ref {
		t.Fatalf("promoted follower fingerprint %#x != sequential %#x (lost or double-mined records)", got, ref)
	}
}

// TestFollowerRejectsMismatchedCatchup is the satellite wire test: a
// CATCHUP whose claimed fingerprint does not match the snapshot it carries
// is refused with the follower's state untouched, and a correct catch-up on
// the same connection then succeeds.
func TestFollowerRejectsMismatchedCatchup(t *testing.T) {
	tr := tracegen.HP(5000).MustGenerate()
	ctx := context.Background()

	follower, err := farmer.Open(farmer.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer follower.Close()
	fAddr, fStop := startServeRole(t, follower, farmer.ServeConfig{Follower: true})
	defer fStop()

	// A would-be primary with real mined state, cut by the same path the
	// replicator uses (SaveMerged → snapshot), but claiming a corrupted
	// fingerprint.
	source, err := farmer.Open(farmer.DefaultConfig(), farmer.WithShards(2))
	if err != nil {
		t.Fatal(err)
	}
	defer source.Close()
	if err := source.FeedBatch(ctx, tr.Records); err != nil {
		t.Fatal(err)
	}
	mem, err := kvstore.Open("")
	if err != nil {
		t.Fatal(err)
	}
	defer mem.Close()
	if err := source.Sharded().SaveMerged(mem); err != nil {
		t.Fatal(err)
	}
	var snap bytes.Buffer
	if err := mem.Snapshot(&snap); err != nil {
		t.Fatal(err)
	}
	fc := source.Sharded().TrackedFileCount()
	cut := rpc.CatchupCut{
		Pos:         source.Sharded().Fed(),
		Fingerprint: core.StateFingerprint(source.Sharded(), fc),
		FileCount:   fc,
		Snapshot:    snap.Bytes(),
	}

	c, err := rpc.Dial(ctx, fAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	bad := cut
	bad.Fingerprint ^= 1
	if err := c.Catchup(ctx, &bad); err == nil {
		t.Fatal("follower accepted a catch-up with a mismatched fingerprint")
	}
	if fed := follower.Sharded().Fed(); fed != 0 {
		t.Fatalf("rejected catch-up left state behind: fed=%d", fed)
	}

	if err := c.Catchup(ctx, &cut); err != nil {
		t.Fatalf("correct catch-up refused: %v", err)
	}
	if fed := follower.Sharded().Fed(); fed != uint64(len(tr.Records)) {
		t.Fatalf("follower installed %d records, want %d", fed, len(tr.Records))
	}
	if got, want := Fingerprint(follower.Sharded(), tr.FileCount), Fingerprint(source.Sharded(), tr.FileCount); got != want {
		t.Fatalf("installed state %#x != source %#x", got, want)
	}
}
