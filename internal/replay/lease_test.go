package replay

// The lease layer's in-process correctness claims (ISSUE 10):
//
//	(a) `farmerctl rebalance` — a live handoff from a standalone source to
//	    a fresh follower — moves the lease and the mined state with a final
//	    fingerprint bit-identical to the sequential reference, while the
//	    deposed source refuses writes typed;
//	(b) the multi-address client's failover sweep prefers the lease holder:
//	    an old primary that is perfectly reachable but no longer holds the
//	    lease must not win the sweep just by answering first.

import (
	"context"
	"errors"
	"testing"
	"time"

	"farmer"
	"farmer/internal/core"
	"farmer/internal/rpc"
	"farmer/internal/tracegen"
)

// TestRebalanceLiveBitIdentical: feed half the trace into a lease-holding
// standalone daemon, hand off to a fresh follower mid-stream, feed the rest
// through the same multi-address client (which reroutes on the typed
// stale-epoch refusal), and prove the target's final state bit-identical to
// mining the whole trace sequentially — nothing lost, nothing double-mined.
func TestRebalanceLiveBitIdentical(t *testing.T) {
	tr := tracegen.HP(20000).MustGenerate()
	mc := core.DefaultConfig()
	ref := MineSequential(tr, mc)
	ctx := context.Background()
	const ttl = time.Second

	target, err := farmer.Open(farmer.DefaultConfig(), farmer.WithShards(2))
	if err != nil {
		t.Fatal(err)
	}
	defer target.Close()
	tAddr, tStop := startServeRole(t, target, farmer.ServeConfig{Follower: true, LeaseTTL: ttl})
	defer tStop()

	source, err := farmer.Open(farmer.DefaultConfig(), farmer.WithShards(3))
	if err != nil {
		t.Fatal(err)
	}
	defer source.Close()
	sAddr, sStop := startServeRole(t, source, farmer.ServeConfig{LeaseTTL: ttl})
	defer sStop()

	client, err := farmer.Dial(ctx, sAddr, farmer.WithFailover(tAddr))
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	half := len(tr.Records) / 2
	const chunk = 1024
	for lo := 0; lo < half; lo += chunk {
		if err := client.FeedBatch(ctx, tr.Records[lo:min(lo+chunk, half)]); err != nil {
			t.Fatal(err)
		}
	}

	// The live handoff: ship state over catch-up, transfer the lease.
	if err := client.Handoff(ctx, tAddr); err != nil {
		t.Fatalf("handoff: %v", err)
	}

	// The same client finishes the trace; the source's typed refusal steers
	// every remaining batch to the new lease holder transparently.
	for lo := half; lo < len(tr.Records); lo += chunk {
		if err := client.FeedBatch(ctx, tr.Records[lo:min(lo+chunk, len(tr.Records))]); err != nil {
			t.Fatalf("post-handoff feed at %d: %v", lo, err)
		}
	}

	st, err := client.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Fed != uint64(len(tr.Records)) {
		t.Fatalf("target fed %d, want %d", st.Fed, len(tr.Records))
	}
	if got := Fingerprint(target.Sharded(), tr.FileCount); got != ref {
		t.Fatalf("handed-off state fingerprint %#x != sequential %#x", got, ref)
	}
	info, err := client.LeaseStatus(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !info.Self || info.Epoch != 2 {
		t.Fatalf("post-handoff lease %+v, want the target leading at epoch 2", info)
	}

	// The deposed source refuses writes typed — no silent divergence. A raw
	// protocol client sees the refusal undecorated by failover.
	rc, err := rpc.Dial(ctx, sAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	if err := rc.Feed(ctx, &tr.Records[0]); !errors.Is(err, rpc.ErrStaleEpoch) {
		t.Fatalf("deposed source refused with %v, want ErrStaleEpoch", err)
	}
	if fed := source.Sharded().Fed(); fed != uint64(len(tr.Records))/2 {
		t.Fatalf("deposed source mined past the handoff: fed=%d", fed)
	}
}

// TestDialSweepPrefersLeaseHolder is the failover-sweep regression (ISSUE 10
// satellite): a FRESH multi-address client whose first address is a
// reachable daemon without the lease must land its writes on the lease
// holder. Before leases, Promote on a reachable non-follower answered
// "already primary" and the sweep stuck to the old daemon, silently losing
// the writes to its refusals.
func TestDialSweepPrefersLeaseHolder(t *testing.T) {
	tr := tracegen.HP(4000).MustGenerate()
	ctx := context.Background()
	const ttl = time.Second

	target, err := farmer.Open(farmer.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer target.Close()
	tAddr, tStop := startServeRole(t, target, farmer.ServeConfig{Follower: true, LeaseTTL: ttl})
	defer tStop()

	source, err := farmer.Open(farmer.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer source.Close()
	sAddr, sStop := startServeRole(t, source, farmer.ServeConfig{LeaseTTL: ttl})
	defer sStop()

	// Depose the source: hand the lease to the target.
	admin, err := farmer.Dial(ctx, sAddr)
	if err != nil {
		t.Fatal(err)
	}
	if err := admin.Handoff(ctx, tAddr); err != nil {
		t.Fatalf("handoff: %v", err)
	}
	admin.Close()

	// A fresh client listing the DEPOSED daemon first: it is reachable and
	// answers everything — except it no longer holds the lease.
	client, err := farmer.Dial(ctx, sAddr, farmer.WithFailover(tAddr))
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if err := client.FeedBatch(ctx, tr.Records); err != nil {
		t.Fatalf("feed through a deposed first address: %v", err)
	}

	if fed := source.Sharded().Fed(); fed != 0 {
		t.Fatalf("the sweep steered %d records to the deposed daemon", fed)
	}
	if fed := target.Sharded().Fed(); fed != uint64(len(tr.Records)) {
		t.Fatalf("lease holder fed %d, want %d", fed, len(tr.Records))
	}
	info, err := client.LeaseStatus(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !info.Self {
		t.Fatalf("client settled on a non-holder: %+v", info)
	}
}
