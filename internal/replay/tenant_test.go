package replay

// The multi-tenant half of the replay harness's correctness claims: one
// farmerd serving many tenants must give each tenant exactly the model it
// would have mined alone.
//
//	(a) two tenants feeding interleaved through one daemon mine
//	    bit-identical state to their isolated sequential reference mines —
//	    tenant streams never bleed into each other (or into the default
//	    tenant);
//	(b) SIGKILLing a multi-tenant primary mid-trace preserves BOTH
//	    tenants on the promoted follower with zero acked-record loss;
//	(c) an unknown bearer token, an out-of-grant tenant and an over-budget
//	    tenant are all refused with the typed sentinels — without
//	    disturbing any other tenant's stream.

import (
	"context"
	"errors"
	"os/exec"
	"path/filepath"
	"testing"
	"time"

	"farmer"
	"farmer/internal/core"
	"farmer/internal/trace"
	"farmer/internal/tracegen"
)

// TestMultiTenantInterleavedBitIdentical is claim (a): tenants "alpha" and
// "beta" (different workload profiles) interleave batches through one
// multi-tenant farmerd alongside default-tenant traffic; every stream
// fingerprints identically to its isolated reference.
func TestMultiTenantInterleavedBitIdentical(t *testing.T) {
	trA := tracegen.HP(8000).MustGenerate()
	trB := tracegen.INS(8000).MustGenerate()
	trD := tracegen.RES(4000).MustGenerate()
	mc := core.DefaultConfig()
	refA := MineSequential(trA, mc)
	refB := MineSequential(trB, mc)
	refD := MineSequential(trD, mc)
	ctx := context.Background()

	def, err := farmer.Open(farmer.DefaultConfig(), farmer.WithShards(2))
	if err != nil {
		t.Fatal(err)
	}
	defer def.Close()
	addr, stop := startServeRole(t, def, farmer.ServeConfig{
		Tenants: &farmer.TenantsConfig{Dir: t.TempDir(), Shards: 3},
	})
	defer stop()

	dial := func(opts ...farmer.DialOption) *farmer.RemoteMiner {
		m, err := farmer.Dial(ctx, addr, opts...)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { m.Close() })
		return m
	}
	cA := dial(farmer.WithTenant("alpha"))
	cB := dial(farmer.WithTenant("beta"))
	cD := dial()

	// Interleave: alpha, beta and the default tenant advance in lockstep
	// chunks over one shared daemon, so any cross-tenant bleed corrupts at
	// least one fingerprint.
	const chunk = 512
	feed := func(c *farmer.RemoteMiner, recs []trace.Record, lo int) int {
		if lo >= len(recs) {
			return lo
		}
		hi := min(lo+chunk, len(recs))
		if err := c.FeedBatch(ctx, recs[lo:hi]); err != nil {
			t.Fatalf("feed at %d: %v", lo, err)
		}
		return hi
	}
	a, b, d := 0, 0, 0
	for a < len(trA.Records) || b < len(trB.Records) || d < len(trD.Records) {
		a = feed(cA, trA.Records, a)
		b = feed(cB, trB.Records, b)
		d = feed(cD, trD.Records, d)
	}

	for _, tc := range []struct {
		name string
		c    *farmer.RemoteMiner
		n    int
		fc   int
		ref  uint64
	}{
		{"alpha", cA, len(trA.Records), trA.FileCount, refA},
		{"beta", cB, len(trB.Records), trB.FileCount, refB},
		{"default", cD, len(trD.Records), trD.FileCount, refD},
	} {
		st, err := tc.c.Stats(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if st.Fed != uint64(tc.n) {
			t.Fatalf("tenant %s fed %d, want %d", tc.name, st.Fed, tc.n)
		}
		if got := Fingerprint(remoteLister{t, tc.c}, tc.fc); got != tc.ref {
			t.Fatalf("tenant %s fingerprint %#x != isolated reference %#x (streams bled)", tc.name, got, tc.ref)
		}
	}

	// The tenants listing sees all three live streams.
	ts, err := cD.Tenants(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(ts) != 3 {
		t.Fatalf("tenants listing has %d entries, want 3: %+v", len(ts), ts)
	}
	if ts[0].Name != "" || ts[1].Name != "alpha" || ts[2].Name != "beta" {
		t.Fatalf("tenants listing order %q %q %q, want default,alpha,beta", ts[0].Name, ts[1].Name, ts[2].Name)
	}
}

// TestMultiTenantAuthAndBudgetTyped is claim (c): the edge refuses an
// unknown token, an out-of-grant tenant, an unauthenticated connection and
// an over-budget tenant with ErrUnauthorized / ErrTenantBudget — while an
// authorized neighbor tenant keeps feeding undisturbed.
func TestMultiTenantAuthAndBudgetTyped(t *testing.T) {
	ctx := context.Background()
	def, err := farmer.Open(farmer.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer def.Close()
	addr, stop := startServeRole(t, def, farmer.ServeConfig{
		AuthTokens: map[string][]string{
			"admin-secret": {"*"},
			"alpha-secret": {"alpha"},
		},
		Tenants: &farmer.TenantsConfig{
			Dir:    t.TempDir(),
			Budget: farmer.TenantBudget{MaxMemoryBytes: 1}, // any mined state is over
		},
	})
	defer stop()

	// Unknown token: refused at the hello, before any frame dispatches.
	if _, err := farmer.Dial(ctx, addr, farmer.WithToken("wrong")); !errors.Is(err, farmer.ErrUnauthorized) {
		t.Fatalf("unknown token: err %v, want ErrUnauthorized", err)
	}
	// Out-of-grant tenant: the token is real but not granted "beta".
	if _, err := farmer.Dial(ctx, addr, farmer.WithTenant("beta"), farmer.WithToken("alpha-secret")); !errors.Is(err, farmer.ErrUnauthorized) {
		t.Fatalf("out-of-grant tenant: err %v, want ErrUnauthorized", err)
	}
	// No token at all: the connection opens (no hello is sent) but the
	// first frame is refused — auth is mandatory once AuthTokens is set.
	anon, err := farmer.Dial(ctx, addr)
	if err != nil {
		t.Fatal(err)
	}
	defer anon.Close()
	tr := tracegen.HP(3000).MustGenerate()
	if err := anon.Feed(ctx, &tr.Records[0]); !errors.Is(err, farmer.ErrUnauthorized) {
		t.Fatalf("unauthenticated feed: err %v, want ErrUnauthorized", err)
	}

	// The budgeted tenant is admitted while empty, then refused once its
	// model footprint clears MaxMemoryBytes=1 at a stride recheck.
	piggy, err := farmer.Dial(ctx, addr, farmer.WithTenant("piggy"), farmer.WithToken("admin-secret"))
	if err != nil {
		t.Fatal(err)
	}
	defer piggy.Close()
	var budgetErr error
	for i := 0; i < 10 && budgetErr == nil; i++ {
		budgetErr = piggy.FeedBatch(ctx, tr.Records)
	}
	if !errors.Is(budgetErr, farmer.ErrTenantBudget) {
		t.Fatalf("over-budget tenant: err %v, want ErrTenantBudget", budgetErr)
	}

	// The refusals above disturbed nobody: alpha still feeds and reads.
	alpha, err := farmer.Dial(ctx, addr, farmer.WithTenant("alpha"), farmer.WithToken("alpha-secret"))
	if err != nil {
		t.Fatal(err)
	}
	defer alpha.Close()
	// Keep alpha under the shared budget's stride so its own feeds never
	// trip the footprint check: a single small batch.
	small := tr.Records[:64]
	if err := alpha.FeedBatch(ctx, small); err != nil {
		t.Fatalf("neighbor tenant disturbed: %v", err)
	}
	st, err := alpha.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Fed != uint64(len(small)) {
		t.Fatalf("neighbor tenant fed %d, want %d", st.Fed, len(small))
	}
}

// TestMultiTenantFailoverReauth is claim (b) in-process plus the Dial
// re-auth satellite: a tenant-bound, token-authenticated client fails over
// from a killed multi-tenant primary to its follower; the redial
// re-authenticates and re-binds the tenant, no acked record is lost, and
// the tenant's final state matches the sequential reference.
func TestMultiTenantFailoverReauth(t *testing.T) {
	tr := tracegen.HP(20000).MustGenerate()
	trB := tracegen.INS(6000).MustGenerate()
	mc := core.DefaultConfig()
	ref := MineSequential(tr, mc)
	refB := MineSequential(trB, mc)
	ctx := context.Background()

	auth := map[string][]string{
		"admin-secret": {"*"},
		"alpha-secret": {"alpha"},
		"beta-secret":  {"beta"},
	}
	fDef, err := farmer.Open(farmer.DefaultConfig(), farmer.WithShards(2))
	if err != nil {
		t.Fatal(err)
	}
	defer fDef.Close()
	fAddr, fStop := startServeRole(t, fDef, farmer.ServeConfig{
		Follower:   true,
		AuthTokens: auth,
		Tenants:    &farmer.TenantsConfig{Dir: t.TempDir(), Shards: 2},
	})
	defer fStop()

	pDef, err := farmer.Open(farmer.DefaultConfig(), farmer.WithShards(3))
	if err != nil {
		t.Fatal(err)
	}
	defer pDef.Close()
	pAddr, pStop := startServeRole(t, pDef, farmer.ServeConfig{
		ReplicateTo:  []string{fAddr},
		ReplicaToken: "admin-secret",
		AuthTokens:   auth,
		Tenants:      &farmer.TenantsConfig{Dir: t.TempDir(), Shards: 3},
		// A near-zero drain makes the stop a crash: connections are cut,
		// not drained — the in-process stand-in for SIGKILL.
		DrainTimeout: time.Millisecond,
	})

	alpha, err := farmer.Dial(ctx, pAddr,
		farmer.WithTenant("alpha"), farmer.WithToken("alpha-secret"), farmer.WithFailover(fAddr))
	if err != nil {
		t.Fatal(err)
	}
	defer alpha.Close()
	beta, err := farmer.Dial(ctx, pAddr,
		farmer.WithTenant("beta"), farmer.WithToken("beta-secret"), farmer.WithFailover(fAddr))
	if err != nil {
		t.Fatal(err)
	}
	defer beta.Close()

	// Beta finishes its whole trace before the kill: a quiet tenant must
	// survive the failover intact even though no frame of its own is in
	// flight when the primary dies.
	const chunk = 512
	for lo := 0; lo < len(trB.Records); lo += chunk {
		hi := min(lo+chunk, len(trB.Records))
		if err := beta.FeedBatch(ctx, trB.Records[lo:hi]); err != nil {
			t.Fatal(err)
		}
	}

	const killAt = 10000
	killed := false
	acked := uint64(0)
	lo := 0
	for lo < len(tr.Records) {
		if !killed && lo >= killAt {
			pStop() // crash the primary; the drain error is the point
			killed = true
		}
		hi := min(lo+chunk, len(tr.Records))
		err := alpha.FeedBatch(ctx, tr.Records[lo:hi])
		if err == nil {
			acked = uint64(hi)
			lo = hi
			continue
		}
		if !errors.Is(err, farmer.ErrDisconnected) {
			t.Fatalf("feed failed with %v at record %d", err, lo)
		}
		// In-doubt batch: the redial re-authenticated with alpha-secret
		// and re-bound tenant alpha, or this Stats call could not succeed.
		st, serr := alpha.Stats(ctx)
		if serr != nil {
			t.Fatalf("failover stats: %v", serr)
		}
		if st.Fed < acked {
			t.Fatalf("ACKED RECORD LOST: survivor holds %d records, %d were acked", st.Fed, acked)
		}
		lo = int(st.Fed)
	}
	if !killed {
		t.Fatal("primary was never killed")
	}

	st, err := alpha.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Fed != uint64(len(tr.Records)) {
		t.Fatalf("survivor fed %d alpha records, want %d", st.Fed, len(tr.Records))
	}
	if got := Fingerprint(remoteLister{t, alpha}, tr.FileCount); got != ref {
		t.Fatalf("promoted alpha fingerprint %#x != sequential %#x", got, ref)
	}
	// The quiet tenant's stream survived whole as well (reads go through
	// the same failed-over, re-authenticated path).
	stB, err := beta.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if stB.Fed != uint64(len(trB.Records)) {
		t.Fatalf("survivor fed %d beta records, want %d", stB.Fed, len(trB.Records))
	}
	if got := Fingerprint(remoteLister{t, beta}, trB.FileCount); got != refB {
		t.Fatalf("promoted beta fingerprint %#x != sequential %#x", got, refB)
	}
}

// TestMultiTenantFailoverSIGKILL is claim (b) at the process level: real
// multi-tenant farmerd binaries, a real SIGKILL. Two tenants feed
// interleaved through the primary; the kill lands while both streams are
// in flight; both clients fail over and finish; both tenants end
// bit-identical to their sequential references with zero acked-record
// loss.
func TestMultiTenantFailoverSIGKILL(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess test skipped in -short mode")
	}
	bin := filepath.Join(t.TempDir(), "farmerd")
	build := exec.Command("go", "build", "-o", bin, "farmer/cmd/farmerd")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building farmerd: %v\n%s", err, out)
	}

	trA := tracegen.HP(15000).MustGenerate()
	trB := tracegen.INS(15000).MustGenerate()
	mc := core.DefaultConfig()
	refA := MineSequential(trA, mc)
	refB := MineSequential(trB, mc)
	ctx := context.Background()

	follower := startFarmerdProc(t, bin, "-follow", "-shards", "2", "-tenants-dir", t.TempDir())
	defer follower.stop()
	primary := startFarmerdProc(t, bin, "-shards", "2", "-tenants-dir", t.TempDir(),
		"-replicate-to", follower.addr)
	killed := false
	defer func() {
		if !killed {
			primary.sigkill()
		}
	}()

	dialTenant := func(tenant string) *farmer.RemoteMiner {
		m, err := farmer.Dial(ctx, primary.addr,
			farmer.WithTenant(tenant), farmer.WithFailover(follower.addr))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { m.Close() })
		return m
	}
	cA := dialTenant("alpha")
	cB := dialTenant("beta")

	// One feeder per tenant; each drives its own stream with the standard
	// failover loop (resume from the survivor's Fed count on a cut). from/to
	// index the tenant's full trace, so a post-failover resume (lo = Fed)
	// stays in the stream's own coordinates.
	feedRange := func(c *farmer.RemoteMiner, recs []trace.Record, from, to, killAt int) {
		const chunk = 256
		acked := uint64(from)
		lo := from
		for lo < to {
			if killAt > 0 && !killed && lo >= killAt {
				primary.sigkill()
				killed = true
			}
			hi := min(lo+chunk, to)
			cctx, cancel := context.WithTimeout(ctx, 30*time.Second)
			err := c.FeedBatch(cctx, recs[lo:hi])
			cancel()
			if err == nil {
				acked = uint64(hi)
				lo = hi
				continue
			}
			if !errors.Is(err, farmer.ErrDisconnected) {
				t.Fatalf("feed failed with %v at record %d", err, lo)
			}
			st, serr := c.Stats(ctx)
			if serr != nil {
				t.Fatalf("failover stats: %v", serr)
			}
			if st.Fed < acked {
				t.Fatalf("ACKED RECORD LOST: survivor holds %d records, %d were acked", st.Fed, acked)
			}
			lo = int(st.Fed)
		}
	}
	// Interleave coarsely: half of beta, then alpha end to end (the kill
	// fires mid-alpha, after beta's first half replicated), then beta's
	// rest across the failover — beta's first post-kill write re-binds and
	// re-promotes its own tenant on the follower.
	half := len(trB.Records) / 2
	feedRange(cB, trB.Records, 0, half, 0)
	feedRange(cA, trA.Records, 0, len(trA.Records), len(trA.Records)/3)
	if !killed {
		t.Fatal("primary was never killed")
	}
	st, err := cB.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Fed < uint64(half) {
		t.Fatalf("ACKED RECORD LOST: beta survivor holds %d records, %d were acked", st.Fed, half)
	}
	feedRange(cB, trB.Records, int(st.Fed), len(trB.Records), 0)

	for _, tc := range []struct {
		name string
		c    *farmer.RemoteMiner
		n    int
		fc   int
		ref  uint64
	}{
		{"alpha", cA, len(trA.Records), trA.FileCount, refA},
		{"beta", cB, len(trB.Records), trB.FileCount, refB},
	} {
		st, err := tc.c.Stats(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if st.Fed != uint64(tc.n) {
			t.Fatalf("tenant %s: survivor fed %d, want %d", tc.name, st.Fed, tc.n)
		}
		if got := Fingerprint(remoteLister{t, tc.c}, tc.fc); got != tc.ref {
			t.Fatalf("tenant %s: promoted fingerprint %#x != sequential %#x", tc.name, got, tc.ref)
		}
	}
}
