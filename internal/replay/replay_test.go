package replay

import (
	"testing"
	"time"

	"farmer/internal/core"
	"farmer/internal/hust"
	"farmer/internal/prefetch"
	"farmer/internal/tracegen"
	"farmer/internal/vsm"
)

func miningHeavyConfig() hust.ReplayConfig {
	cfg := hust.DefaultReplayConfig()
	// Mining-heavy profile: each record costs 1ms of mining CPU — half a
	// store miss — so a synchronous MDS pays it on every demand request.
	cfg.MDS.MineTime = time.Millisecond
	return cfg
}

// TestSyncAsyncBitIdenticalMinedState is the harness's core claim: the same
// trace replayed through the synchronous and asynchronous pipelines — and
// through the paper-exact sequential Model — mines exactly the same state.
func TestSyncAsyncBitIdenticalMinedState(t *testing.T) {
	tr, err := tracegen.HP(8000).Generate()
	if err != nil {
		t.Fatal(err)
	}
	mc := core.DefaultConfig()
	mc.Mask = vsm.DefaultMask(tr.HasPaths)

	cmp, err := Compare(tr, miningHeavyConfig(), mc)
	if err != nil {
		t.Fatal(err)
	}
	ref := MineSequential(tr, mc)
	if cmp.Sync.Fingerprint != ref {
		t.Fatalf("sync replay mined state %x, sequential reference %x", cmp.Sync.Fingerprint, ref)
	}
	if cmp.Async.Fingerprint != ref {
		t.Fatalf("async replay mined state %x, sequential reference %x", cmp.Async.Fingerprint, ref)
	}
}

// TestAsyncNoDemandLatencyRegression is the harness's performance claim
// under the mining-heavy profile: the async pipeline's demand wait is no
// worse than the no-prefetch baseline's, while the synchronous pipeline —
// mining on the demand path — is strictly worse than both.
func TestAsyncNoDemandLatencyRegression(t *testing.T) {
	tr, err := tracegen.HP(8000).Generate()
	if err != nil {
		t.Fatal(err)
	}
	mc := core.DefaultConfig()
	mc.Mask = vsm.DefaultMask(tr.HasPaths)

	cmp, err := Compare(tr, miningHeavyConfig(), mc)
	if err != nil {
		t.Fatal(err)
	}
	base := cmp.Baseline.Stats.AvgDemandWait
	syncW := cmp.Sync.Result.Stats.AvgDemandWait
	asyncW := cmp.Async.Result.Stats.AvgDemandWait
	t.Logf("demand AvgWait: baseline=%v sync=%v async=%v", base, syncW, asyncW)
	t.Logf("avg response: baseline=%v sync=%v async=%v",
		cmp.Baseline.Stats.AvgResponse, cmp.Sync.Result.Stats.AvgResponse, cmp.Async.Result.Stats.AvgResponse)
	if asyncW > base {
		t.Fatalf("async demand wait %v regressed past the no-prefetch baseline %v", asyncW, base)
	}
	if syncW <= asyncW {
		t.Fatalf("mining-heavy sync wait %v should exceed async wait %v", syncW, asyncW)
	}
	// Prefetching must still be alive and accounted in async mode.
	st := cmp.Async.Result.Stats
	if st.PrefetchIssued == 0 {
		t.Fatal("async pipeline issued no prefetches")
	}
	if st.PrefetchIssued != st.PrefetchDone+st.PrefetchDropped {
		t.Fatalf("prefetch accounting: issued %d != done %d + dropped %d",
			st.PrefetchIssued, st.PrefetchDone, st.PrefetchDropped)
	}
	// The async run must beat the synchronous one end-to-end as well.
	if cmp.Async.Result.Stats.AvgResponse >= cmp.Sync.Result.Stats.AvgResponse {
		t.Fatalf("async avg response %v not better than sync %v",
			cmp.Async.Result.Stats.AvgResponse, cmp.Sync.Result.Stats.AvgResponse)
	}
}

// TestBoundedQueueDegradesCoverageNotLatency tightens the prefetch queue to
// one slot under the same mining-heavy profile: drops must appear in the
// stats, and demand wait must stay at the unbounded async level.
func TestBoundedQueueDegradesCoverageNotLatency(t *testing.T) {
	tr, err := tracegen.HP(8000).Generate()
	if err != nil {
		t.Fatal(err)
	}
	mc := core.DefaultConfig()
	mc.Mask = vsm.DefaultMask(tr.HasPaths)

	cfg := miningHeavyConfig()
	cfg.MDS.PrefetchQueue = 1
	cfg.MDS.PrefetchBatch = false
	cfg.ArrivalGap = 100 * time.Microsecond // overload so the queue actually fills
	cmp, err := Compare(tr, cfg, mc)
	if err != nil {
		t.Fatal(err)
	}
	st := cmp.Async.Result.Stats
	if st.PrefetchDropped == 0 {
		t.Fatal("1-slot prefetch queue under overload dropped nothing")
	}
	if st.PrefetchIssued != st.PrefetchDone+st.PrefetchDropped {
		t.Fatalf("prefetch accounting: issued %d != done %d + dropped %d",
			st.PrefetchIssued, st.PrefetchDone, st.PrefetchDropped)
	}
	// Dropping prefetches must not corrupt mining.
	if ref := MineSequential(tr, mc); cmp.Async.Fingerprint != ref {
		t.Fatalf("bounded-queue async mined state %x, reference %x", cmp.Async.Fingerprint, ref)
	}
}

// TestConcurrentPipelineMatchesSequentialMine exercises the REAL async
// pipeline — goroutine tap consumers, bounded candidate queue, submit loop —
// against concurrent batch ingestion, and checks the mined state still
// matches the sequential reference exactly (run under -race in CI).
func TestConcurrentPipelineMatchesSequentialMine(t *testing.T) {
	tr, err := tracegen.HP(8000).Generate()
	if err != nil {
		t.Fatal(err)
	}
	mc := core.DefaultConfig()
	mc.Mask = vsm.DefaultMask(tr.HasPaths)
	mc.Shards = 4

	out := RunPipeline(tr, mc, prefetch.Config{K: 4, QueueCap: 4096}, nil)
	if ref := MineSequential(tr, mc); out.Fingerprint != ref {
		t.Fatalf("concurrent pipeline mined state %x, sequential reference %x", out.Fingerprint, ref)
	}
	st := out.Stats
	if st.Events+st.TapDropped != uint64(len(tr.Records)) {
		t.Fatalf("tap accounting: consumed %d + dropped %d != %d records",
			st.Events, st.TapDropped, len(tr.Records))
	}
	if st.Predicted != st.Submitted+st.QueueDropped {
		t.Fatalf("candidate accounting: predicted %d != submitted %d + dropped %d",
			st.Predicted, st.Submitted, st.QueueDropped)
	}
}

// TestCompareIsDeterministic runs the full comparison twice and demands
// identical fingerprints and identical virtual-time latency figures —
// the property that makes the harness usable as a regression gate.
func TestCompareIsDeterministic(t *testing.T) {
	tr, err := tracegen.HP(5000).Generate()
	if err != nil {
		t.Fatal(err)
	}
	mc := core.DefaultConfig()
	mc.Mask = vsm.DefaultMask(tr.HasPaths)

	a, err := Compare(tr, miningHeavyConfig(), mc)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Compare(tr, miningHeavyConfig(), mc)
	if err != nil {
		t.Fatal(err)
	}
	if a.Sync.Fingerprint != b.Sync.Fingerprint || a.Async.Fingerprint != b.Async.Fingerprint {
		t.Fatal("fingerprints differ between identical runs")
	}
	if a.Async.Result.Stats.AvgDemandWait != b.Async.Result.Stats.AvgDemandWait ||
		a.Sync.Result.Stats.AvgResponse != b.Sync.Result.Stats.AvgResponse ||
		a.Baseline.Stats.AvgDemandWait != b.Baseline.Stats.AvgDemandWait {
		t.Fatal("virtual-time latency figures differ between identical runs")
	}
}
