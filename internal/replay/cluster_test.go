package replay

import (
	"reflect"
	"testing"

	"farmer/internal/core"
	"farmer/internal/hust"
	"farmer/internal/kvstore"
	"farmer/internal/trace"
	"farmer/internal/tracegen"
	"farmer/internal/vsm"
)

func clusterTrace(t *testing.T, records int) (*trace.Trace, core.Config) {
	t.Helper()
	tr, err := tracegen.HP(records).Generate()
	if err != nil {
		t.Fatal(err)
	}
	mc := core.DefaultConfig()
	mc.Mask = vsm.DefaultMask(tr.HasPaths)
	return tr, mc
}

// TestGlobalClusterBitIdenticalMinedState is the tentpole claim: an
// n-server cluster mining through the cluster-level dispatcher and
// inter-MDS mailboxes produces a merged model bit-identical to the
// paper-exact sequential Model on the same trace — under both the uniform
// hash placement and the correlation-aware group placement.
func TestGlobalClusterBitIdenticalMinedState(t *testing.T) {
	tr, mc := clusterTrace(t, 8000)
	ref := MineSequential(tr, mc)
	for _, tc := range []struct {
		name string
		part hust.Partitioner
	}{{"hash", hust.HashPartitioner}, {"group", hust.GroupPartitioner}} {
		out, err := GlobalCluster(tr, miningHeavyConfig(), 4, tc.part, mc, hust.DefaultGlobalConfig())
		if err != nil {
			t.Fatal(err)
		}
		g := out.Stats.Global
		if g == nil || g.Fed != uint64(len(tr.Records)) {
			t.Fatalf("%s: global stats missing or short: %+v", tc.name, g)
		}
		if g.MailboxDropped != 0 {
			t.Fatalf("%s: %d events dropped; equivalence only holds drop-free", tc.name, g.MailboxDropped)
		}
		if g.CrossEvents == 0 {
			t.Fatalf("%s: no cross-MDS traffic — the cluster is not mining globally", tc.name)
		}
		if out.Fingerprint != ref {
			t.Fatalf("%s: cluster mined state %x, sequential reference %x", tc.name, out.Fingerprint, ref)
		}
	}
}

// TestGlobalClusterMergedPersistenceResize: the cluster's ensemble saves
// once and reloads at other stripe counts with identical predictions — the
// resize-between-runs story, end to end from a simulated cluster.
func TestGlobalClusterMergedPersistenceResize(t *testing.T) {
	tr, mc := clusterTrace(t, 6000)
	out, err := GlobalCluster(tr, miningHeavyConfig(), 3, hust.HashPartitioner, mc, hust.DefaultGlobalConfig())
	if err != nil {
		t.Fatal(err)
	}
	ens := out.Cluster.GlobalMiner()
	st, err := kvstore.Open("")
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if err := ens.SaveMerged(st); err != nil {
		t.Fatal(err)
	}
	for _, shards := range []int{1, 5} {
		c := mc
		c.Shards = shards
		re := core.NewSharded(c)
		if err := re.LoadMerged(st); err != nil {
			t.Fatal(err)
		}
		if re.Fed() != uint64(len(tr.Records)) {
			t.Fatalf("shards=%d: fed %d, want %d", shards, re.Fed(), len(tr.Records))
		}
		for f := 0; f < tr.FileCount; f++ {
			id := trace.FileID(f)
			if !reflect.DeepEqual(ens.Predict(id, 6), re.Predict(id, 6)) {
				t.Fatalf("shards=%d: predictions differ for file %d", shards, f)
			}
		}
	}
}

// TestGlobalClusterNoDemandWaitRegression: global mining keeps the demand
// path clean. Under the mining-heavy profile the per-partition baseline
// pays mining on every demand request; the global cluster routes it through
// mailboxes and mining stations, so its demand-weighted queueing delay must
// be no worse.
func TestGlobalClusterNoDemandWaitRegression(t *testing.T) {
	tr, mc := clusterTrace(t, 8000)
	cfg := miningHeavyConfig()
	local, err := LocalCluster(tr, cfg, 4, hust.HashPartitioner, mc)
	if err != nil {
		t.Fatal(err)
	}
	global, err := GlobalCluster(tr, cfg, 4, hust.HashPartitioner, mc, hust.DefaultGlobalConfig())
	if err != nil {
		t.Fatal(err)
	}
	if global.Stats.AvgDemandWait > local.Stats.AvgDemandWait {
		t.Fatalf("global demand wait %v worse than per-partition baseline %v",
			global.Stats.AvgDemandWait, local.Stats.AvgDemandWait)
	}
	if global.Stats.Demand != local.Stats.Demand {
		t.Fatalf("demand counts diverge: %d vs %d", global.Stats.Demand, local.Stats.Demand)
	}
}

// TestGlobalClusterBoundedMailboxDegradesGracefully: a pathologically tiny
// mailbox must shed events (counted), not stall or crash, and the run still
// completes with every demand served.
func TestGlobalClusterBoundedMailboxDegradesGracefully(t *testing.T) {
	tr, mc := clusterTrace(t, 4000)
	gcfg := hust.DefaultGlobalConfig()
	gcfg.MailboxCap = 2
	out, err := GlobalCluster(tr, miningHeavyConfig(), 4, hust.HashPartitioner, mc, gcfg)
	if err != nil {
		t.Fatal(err)
	}
	if out.Stats.Demand != uint64(len(tr.Records)) {
		t.Fatalf("demand %d, want %d", out.Stats.Demand, len(tr.Records))
	}
	if out.Stats.Global.MailboxDropped == 0 {
		t.Fatal("2-slot mailboxes dropped nothing on a 4k-record trace")
	}
}
