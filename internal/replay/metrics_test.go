package replay

// Metrics smoke over a real replicated pair: the primary's /metrics endpoint
// must account for the whole fed trace, see its follower, and report the
// per-follower lag gauge back at zero once the windowed feed has drained.
// Runs in the CI failover job next to the SIGKILL proof.

import (
	"context"
	"io"
	"net/http"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"farmer"
	"farmer/internal/tracegen"
)

// scrapeMetrics GETs the Prometheus view of a farmerd metrics endpoint.
func scrapeMetrics(t *testing.T, addr string) string {
	t.Helper()
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: status %d", resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

// seriesValue sums every series of name in a Prometheus text body and
// reports whether any was present.
func seriesValue(body, name string) (float64, bool) {
	var sum float64
	found := false
	for _, line := range strings.Split(body, "\n") {
		if !strings.HasPrefix(line, name) {
			continue
		}
		rest := line[len(name):]
		if !strings.HasPrefix(rest, " ") && !strings.HasPrefix(rest, "{") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		v, err := strconv.ParseFloat(line[i+1:], 64)
		if err != nil {
			return 0, false
		}
		sum += v
		found = true
	}
	return sum, found
}

func TestReplicationLagMetricsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess test skipped in -short mode")
	}
	bin := filepath.Join(t.TempDir(), "farmerd")
	build := exec.Command("go", "build", "-o", bin, "farmer/cmd/farmerd")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building farmerd: %v\n%s", err, out)
	}

	follower := startFarmerdProc(t, bin, "-follow", "-shards", "2")
	defer follower.stop()
	primary := startFarmerdProc(t, bin, "-shards", "2",
		"-replicate-to", follower.addr, "-metrics-addr", "127.0.0.1:0")
	defer primary.stop()
	if primary.metricsAddr == "" {
		t.Fatal("primary never announced its metrics endpoint")
	}

	tr := tracegen.HP(8000).MustGenerate()
	ctx := context.Background()
	client, err := farmer.Dial(ctx, primary.addr, farmer.WithAckWindow(8))
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	const chunk = 512
	for lo := 0; lo < len(tr.Records); lo += chunk {
		hi := min(lo+chunk, len(tr.Records))
		if err := client.FeedBatch(ctx, tr.Records[lo:hi]); err != nil {
			t.Fatalf("feed at record %d: %v", lo, err)
		}
	}
	if err := client.Flush(ctx); err != nil {
		t.Fatal(err)
	}

	// Every fed record is acked, and acks imply replication — the lag gauge
	// must return to zero. Poll briefly for the follower's final ack frame.
	deadline := time.Now().Add(10 * time.Second)
	var body string
	for {
		body = scrapeMetrics(t, primary.metricsAddr)
		lag, ok := seriesValue(body, "farmer_repl_lag_records")
		if ok && lag == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("replication lag never returned to 0 (present=%v lag=%v):\n%s", ok, lag, body)
		}
		time.Sleep(100 * time.Millisecond)
	}

	if v, _ := seriesValue(body, "farmer_repl_followers"); v != 1 {
		t.Fatalf("farmer_repl_followers = %v, want 1", v)
	}
	if !strings.Contains(body, `farmer_repl_lag_records{follower="`) {
		t.Fatalf("lag gauge missing its follower label:\n%s", body)
	}
	if v, _ := seriesValue(body, "farmer_ingest_records_total"); v != float64(len(tr.Records)) {
		t.Fatalf("farmer_ingest_records_total = %v, want %d", v, len(tr.Records))
	}
}
